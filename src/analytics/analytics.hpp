// Vulnerability analytics over fades.run/1 artifacts and fades.journal/1
// checkpoints - the offline half of the paper's results analysis (Section
// 5): fold per-experiment records into per-component vulnerability rankings,
// per-PC / per-instruction attribution tables (CFA-style root cause: which
// instruction was in flight when the fault landed), derating fractions and
// fault-latency histograms.
//
// Determinism contract: every statistic is integer or fixed-point (basis
// points, round-half-up) and every table is sorted with a total order, so a
// report built from byte-identical inputs is byte-identical - including
// across --jobs counts and checkpoint/resume, which the campaign layer
// already guarantees for the inputs themselves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/types.hpp"
#include "obs/json.hpp"

namespace fades::analytics {

/// One loaded input file: where it came from, which schema it carried and
/// the per-experiment records recovered from it.
struct CampaignInput {
  std::string path;
  std::string schema;  // "fades.run/1" or "fades.journal/1"
  std::string name;    // artifact name; journals use the file path
  std::vector<campaign::ExperimentRecord> records;
  /// Journal outcomes that were quarantined (no record to fold).
  std::uint64_t quarantined = 0;
};

/// Load a fades.run/1 artifact - either the single-document JSON form or
/// the streaming JSONL form; both are detected from the content. Raises
/// ConfigError on malformed input or a foreign schema.
CampaignInput loadRunArtifact(const std::string& path);

/// Load a fades.journal/1 checkpoint journal, recovering the embedded
/// records of committed outcome lines. Tolerates a torn trailing line the
/// same way campaign resume does. Quarantined outcomes carry no record and
/// are counted but not folded.
CampaignInput loadJournal(const std::string& path);

/// Load a mix of files and directories. Directories are scanned one level
/// deep in sorted path order (determinism does not depend on readdir
/// order); each file is classified by the schema string in its content.
/// Files with neither schema raise ConfigError.
std::vector<CampaignInput> loadInputs(const std::vector<std::string>& paths);

/// Outcome tally plus derating fractions in basis points (1/100 of a
/// percent, round half up) - the silent/latent/failure decomposition the
/// paper reports per fault model, here computed per slice.
struct OutcomeSlice {
  std::uint64_t experiments = 0;
  std::uint64_t failures = 0;
  std::uint64_t latents = 0;
  std::uint64_t silents = 0;
  unsigned failureBp = 0;
  unsigned latentBp = 0;
  unsigned silentBp = 0;

  void add(campaign::Outcome outcome);
  void finalize();  // computes the basis-point fields
};

struct ComponentStats {
  std::string component;
  OutcomeSlice slice;
};

struct PcStats {
  std::int64_t pc = -1;  // -1 = experiments without a golden-run trace
  std::int64_t opcode = -1;
  std::string mnemonic;  // mc8051 decode of `opcode`; "?" when untraced
  OutcomeSlice slice;
};

struct InstructionStats {
  std::string mnemonic;  // register/indirect forms collapse onto families
  OutcomeSlice slice;
};

/// Fault-latency histogram bucket: experiments whose first observable
/// divergence happened `lo..hi` cycles after injection (power-of-two
/// bounds; the last bucket is open-ended in rendering only).
struct LatencyBucket {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t count = 0;
};

struct VulnerabilityReport {
  OutcomeSlice totals;
  std::uint64_t inputs = 0;        // files folded
  std::uint64_t quarantined = 0;   // journal outcomes without a record
  std::uint64_t traced = 0;        // records with PC attribution
  std::uint64_t detected = 0;      // records with a detect cycle
  std::vector<ComponentStats> components;      // failureBp desc, name asc
  std::vector<PcStats> pcs;                    // pc asc
  std::vector<InstructionStats> instructions;  // failureBp desc, name asc
  std::vector<LatencyBucket> latency;          // lo asc
};

/// Fold loaded inputs into one report. Record order inside each input and
/// input order in the vector do not affect the output (tables are keyed and
/// sorted), so any directory layout of the same records ranks identically.
VulnerabilityReport buildReport(const std::vector<CampaignInput>& inputs);

/// Versioned fades.report/1 document: schema, aggregate input counts,
/// totals and every table. Deliberately path-free: reports built from
/// byte-identical records are byte-identical even when the input files live
/// under different names (the --jobs 1 vs --jobs 8 comparison).
obs::Json toJson(const VulnerabilityReport& report);

/// Human-readable markdown: component ranking, top instruction and PC
/// tables, latency histogram.
std::string toMarkdown(const VulnerabilityReport& report);

/// Per-component ranking as CSV (campaign::renderCsv quoting).
std::string toCsv(const VulnerabilityReport& report);

}  // namespace fades::analytics
