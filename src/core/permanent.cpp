#include "core/permanent.hpp"

#include <set>

#include "common/error.hpp"
#include "synth/fabric.hpp"

namespace fades::core {

using common::ErrorKind;
using common::require;
using common::Rng;
using fpga::CbField;

const char* toString(PermanentFaultModel m) {
  switch (m) {
    case PermanentFaultModel::StuckAt0: return "stuck-at-0";
    case PermanentFaultModel::StuckAt1: return "stuck-at-1";
    case PermanentFaultModel::OpenLine: return "open-line";
    case PermanentFaultModel::StuckOpen: return "stuck-open";
    case PermanentFaultModel::Bridging: return "bridging";
  }
  return "?";
}

std::vector<std::uint32_t> PermanentFaults::targets(PermanentFaultModel model,
                                                    Unit unit) const {
  const auto& impl = tool_.implementation();
  std::vector<std::uint32_t> out;
  switch (model) {
    case PermanentFaultModel::StuckAt0:
    case PermanentFaultModel::StuckAt1:
      for (auto i : impl.lutsInUnit(unit)) {
        if (impl.luts[i].out.valid()) out.push_back(i);
      }
      for (auto i : impl.flopsInUnit(unit)) out.push_back(i | kFlopFlag);
      break;
    case PermanentFaultModel::OpenLine:
    case PermanentFaultModel::StuckOpen:
    case PermanentFaultModel::Bridging:
      for (std::uint32_t i = 0; i < impl.routes.size(); ++i) {
        const auto& r = impl.routes[i];
        if (r.wireNodes.empty()) continue;
        if (unit != Unit::None && r.unit != unit) continue;
        out.push_back(i);
      }
      break;
  }
  require(!out.empty(), ErrorKind::InjectionError,
          std::string("no permanent-fault targets for ") + toString(model));
  return out;
}

Outcome PermanentFaults::runExperiment(PermanentFaultModel model,
                                       std::uint32_t target, Rng& rng,
                                       double* modeledSeconds) {
  auto& dev = tool_.dev_;
  auto& port = tool_.port_;
  const auto& impl = tool_.implementation();

  port.resetMeter();
  tool_.chargeExperimentBaseline();
  dev.restoreState(tool_.checkpoints_.front());

  // ---- inject (one reconfiguration session, never removed mid-run) -------
  std::vector<std::pair<std::size_t, bool>> restoreBits;
  std::uint16_t originalTable = 0;
  fpga::CbCoord lutCb{};
  bool usedShortPolicy = false;
  bool isLutStuck = false;

  port.beginSession();
  switch (model) {
    case PermanentFaultModel::StuckAt0:
    case PermanentFaultModel::StuckAt1: {
      const bool v = (model == PermanentFaultModel::StuckAt1);
      if (target & kFlopFlag) {
        const auto& site = impl.flops[target & ~kFlopFlag];
        const std::pair<CbField, bool> set[] = {{CbField::SrMode, v},
                                                {CbField::InvLsr, true}};
        port.updateCbFieldsBlind(site.cb, set);
        restoreBits.emplace_back(
            dev.layout().cbFieldBit(site.cb, CbField::InvLsr), false);
        restoreBits.emplace_back(
            dev.layout().cbFieldBit(site.cb, CbField::SrMode), site.init);
      } else {
        const auto& site = impl.luts[target];
        lutCb = site.cb;
        originalTable = site.table;
        isLutStuck = true;
        port.setLutTableBlind(site.cb, v ? 0xFFFF : 0x0000);
      }
      break;
    }
    case PermanentFaultModel::OpenLine:
    case PermanentFaultModel::StuckOpen: {
      // Open one transistor of the routed net: a connection-box switch for
      // open-line, a programmable-matrix switch for stuck-open.
      const auto& route = impl.routes[target];
      const bool wantPm = (model == PermanentFaultModel::StuckOpen);
      std::vector<std::size_t> order(route.transistorBits.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(i)]);
      }
      std::size_t chosen = route.transistorBits.size();
      for (auto i : order) {
        const auto meaning = dev.decodeLogicBit(route.transistorBits[i]);
        const bool isPm =
            meaning.kind == fpga::BitMeaning::Kind::PmSwitch;
        if (isPm == wantPm) {
          chosen = i;
          break;
        }
      }
      if (chosen == route.transistorBits.size()) chosen = order[0];
      port.setLogicBit(route.transistorBits[chosen], false);
      restoreBits.emplace_back(route.transistorBits[chosen], true);
      break;
    }
    case PermanentFaultModel::Bridging: {
      // Close a transistor between this net and a NEIGHBOURING USED net;
      // the short resolves as wired-AND (dominant low).
      const auto& route = impl.routes[target];
      const auto& nodes = dev.nodes();
      std::set<std::uint32_t> own(route.wireNodes.begin(),
                                  route.wireNodes.end());
      std::vector<std::uint32_t> order = route.wireNodes;
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.below(i)]);
      }
      bool done = false;
      for (auto w : order) {
        synth::forEachNeighbor(
            dev.layout(), nodes, w,
            [&](std::uint32_t nb, std::size_t bit) {
              if (done || dev.logicBit(bit)) return;
              const auto k = nodes.info(nb).kind;
              if (k != fpga::NodeKind::HSeg && k != fpga::NodeKind::VSeg) {
                return;
              }
              if (!tool_.usedNodes_.count(nb) || own.count(nb)) return;
              dev.setShortPolicy(fpga::ShortPolicy::WiredAnd);
              usedShortPolicy = true;
              port.setLogicBit(bit, true);
              restoreBits.emplace_back(bit, false);
              done = true;
            });
        if (done) break;
      }
      require(done, ErrorKind::InjectionError,
              "no adjacent foreign net to bridge to");
      break;
    }
  }
  port.endSession();  // land the defect before evaluating the fabric
  try {
    dev.settle();
  } catch (const common::FadesError&) {
    // The defect created combinational feedback (a bridge can close a loop
    // through the logic). The cycle-accurate emulator cannot evaluate an
    // oscillating circuit, so restore and report the site as unusable.
    if (isLutStuck) port.setLutTableBlind(lutCb, originalTable);
    if (!restoreBits.empty()) port.setLogicBitsBlind(restoreBits);
    if (usedShortPolicy) dev.setShortPolicy(fpga::ShortPolicy::Error);
    dev.settle();
    common::raise(ErrorKind::InjectionError,
                  "defect creates combinational feedback");
  }

  // ---- observe the whole run ------------------------------------------------
  Observation faulty;
  bool diverged = false;
  while (!diverged && dev.cycle() < tool_.runCycles_) {
    const std::uint64_t w = tool_.outputWord();
    diverged |= (w != tool_.golden_.outputs[faulty.outputs.size()]);
    faulty.outputs.push_back(w);
    dev.step();
  }

  Outcome outcome;
  if (diverged) {
    tool_.captureFinalStateViaPort(faulty, /*chargeOnly=*/true);
    outcome = Outcome::Failure;
  } else {
    faulty.outputs.resize(tool_.runCycles_);
    tool_.captureFinalStateViaPort(faulty, /*chargeOnly=*/false);
    outcome = campaign::classify(tool_.golden_, faulty);
  }

  // ---- restore the configuration for the next experiment -------------------
  port.beginSession();
  if (isLutStuck) port.setLutTableBlind(lutCb, originalTable);
  if (!restoreBits.empty()) port.setLogicBitsBlind(restoreBits);
  port.endSession();
  if (usedShortPolicy) dev.setShortPolicy(fpga::ShortPolicy::Error);
  dev.settle();

  if (modeledSeconds != nullptr) {
    *modeledSeconds =
        tool_.meterSeconds() +
        static_cast<double>(tool_.runCycles_) / tool_.opt_.fpgaClockHz +
        tool_.opt_.hostPerExperimentSeconds;
  }
  return outcome;
}

campaign::CampaignResult PermanentFaults::runCampaign(
    const PermanentCampaignSpec& spec) {
  campaign::CampaignResult result;
  const auto pool = targets(spec.model, spec.unit);
  for (unsigned e = 0; e < spec.experiments; ++e) {
    // Some sites cannot host a given defect (e.g. no foreign net adjacent
    // to bridge to); redraw the target like the paper's tool would.
    for (unsigned attempt = 0;; ++attempt) {
      Rng erng(common::streamSeed(spec.seed, std::uint64_t{e} * 97 + attempt));
      const auto target = pool[erng.below(pool.size())];
      double seconds = 0;
      try {
        // Evaluate the experiment before add(): `seconds` is an out-param
        // and argument evaluation order is unspecified.
        const Outcome o = runExperiment(spec.model, target, erng, &seconds);
        result.add(o, seconds);
        break;
      } catch (const common::FadesError& err) {
        if (err.kind() != ErrorKind::InjectionError || attempt >= 20) throw;
      }
    }
  }
  return result;
}

}  // namespace fades::core
