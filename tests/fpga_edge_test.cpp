// Edge-case and error-path tests for the FPGA substrate: partial frames,
// invalid addresses, boundary pass transistors, spec validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fpga/bitstream_io.hpp"
#include "fpga/device.hpp"
#include "fpga/layout.hpp"

namespace fades::fpga {
namespace {

using common::ErrorKind;
using common::FadesError;

TEST(LayoutEdge, LastMinorOfColumnMayBePartial) {
  ConfigLayout l(DeviceSpec::small());
  for (unsigned col = 0; col <= l.spec().cols; ++col) {
    const unsigned minors = l.minorsOfColumn(col);
    ASSERT_GT(minors, 0u);
    unsigned total = 0;
    for (unsigned m = 0; m < minors; ++m) {
      const unsigned bits =
          l.logicFrameBitCount(FrameAddr{Plane::Logic, col, m});
      ASSERT_GT(bits, 0u);
      ASSERT_LE(bits, l.frameBits());
      if (m + 1 < minors) EXPECT_EQ(bits, l.frameBits());
      total += bits;
    }
    // Frames tile the column exactly.
    const std::size_t colBits =
        l.logicFrameFirstBit(FrameAddr{Plane::Logic, col, minors - 1}) +
        l.logicFrameBitCount(FrameAddr{Plane::Logic, col, minors - 1}) -
        l.logicFrameFirstBit(FrameAddr{Plane::Logic, col, 0});
    EXPECT_EQ(total, colBits);
  }
}

TEST(LayoutEdge, EveryLogicBitMapsIntoItsFrame) {
  ConfigLayout l(DeviceSpec::small());
  // Walk a sample of addresses including the very last bit.
  for (std::size_t bit :
       {std::size_t{0}, l.logicPlaneBits() / 3, l.logicPlaneBits() / 2,
        l.logicPlaneBits() - 1}) {
    const FrameAddr f = l.frameOfLogicBit(bit);
    const std::size_t first = l.logicFrameFirstBit(f);
    EXPECT_LE(first, bit);
    EXPECT_LT(bit - first, l.logicFrameBitCount(f));
  }
  EXPECT_THROW(l.frameOfLogicBit(l.logicPlaneBits()), FadesError);
}

TEST(LayoutEdge, SpecValidationRejectsBadGeometry) {
  DeviceSpec bad = DeviceSpec::small();
  bad.cols = 13;  // not a multiple of memBlocks (2)
  EXPECT_THROW(ConfigLayout{bad}, FadesError);
  DeviceSpec tiny = DeviceSpec::small();
  tiny.rows = 1;
  EXPECT_THROW(ConfigLayout{tiny}, FadesError);
  DeviceSpec crowded = DeviceSpec::small();
  crowded.memBlocks = 6;  // 12 cols / 6 = 2 columns per block: too few
  EXPECT_THROW(ConfigLayout{crowded}, FadesError);
}

TEST(DeviceEdge, BoundaryPmSwitchesAreInert) {
  Device dev(DeviceSpec::small());
  const auto& l = dev.layout();
  // PM(0, 0) has no west or south segment: WE / NS / WS must decode as
  // non-transistors (setting them changes nothing electrically).
  for (PmSwitch sw : {PmSwitch::WE, PmSwitch::NS, PmSwitch::WS}) {
    const auto m = dev.decodeLogicBit(l.pmSwitchBit(PmCoord{0, 0}, 0, sw));
    EXPECT_FALSE(m.isTransistor);
  }
  // EN at PM(0,0) connects HSeg(0,0) and VSeg(0,0): real.
  const auto en =
      dev.decodeLogicBit(l.pmSwitchBit(PmCoord{0, 0}, 0, PmSwitch::EN));
  EXPECT_TRUE(en.isTransistor);
}

TEST(DeviceEdge, FrameWriteRejectsShortPayload) {
  Device dev(DeviceSpec::small());
  std::vector<std::uint8_t> tooShort(3, 0);
  EXPECT_THROW(dev.writeLogicFrame(FrameAddr{Plane::Logic, 0, 0}, tooShort),
               FadesError);
}

TEST(DeviceEdge, BramFrameAddressValidation) {
  Device dev(DeviceSpec::small());
  EXPECT_THROW(dev.readBramFrame(99, 0), FadesError);
  EXPECT_THROW(dev.readBramFrame(0, 999), FadesError);
  std::vector<std::uint8_t> frame(dev.spec().frameBytes, 0xFF);
  EXPECT_THROW(dev.writeBramFrame(99, 0, frame), FadesError);
  EXPECT_NO_THROW(dev.writeBramFrame(0, 0, frame));
  EXPECT_TRUE(dev.bramBit(0));
}

TEST(DeviceEdge, CaptureFrameColumnValidation) {
  Device dev(DeviceSpec::small());
  EXPECT_THROW(dev.readCaptureFrame(dev.spec().cols), FadesError);
}

TEST(DeviceEdge, StateRestoreShapeChecked) {
  Device a(DeviceSpec::small());
  Device b(DeviceSpec::medium());
  const auto state = b.captureState();
  EXPECT_THROW(a.restoreState(state), FadesError);
}

TEST(DeviceEdge, BitstreamSizeChecked) {
  Device dev(DeviceSpec::small());
  Bitstream wrong{common::BitVector(10), common::BitVector(10)};
  EXPECT_THROW(dev.writeFullBitstream(wrong), FadesError);
}

TEST(DeviceEdge, PadIndexValidation) {
  Device dev(DeviceSpec::small());
  EXPECT_THROW(dev.setPadInput(dev.spec().padCount(), true), FadesError);
}

TEST(DeviceEdge, UnconnectedFabricReadsZero) {
  // An output pad connected to a floating (driverless) segment reads 0.
  Device dev(DeviceSpec::small());
  dev.setLogicBit(dev.layout().padFieldBit(3, PadField::Used), true);
  dev.setLogicBit(dev.layout().padFieldBit(3, PadField::IsOutput), true);
  dev.setLogicBit(dev.layout().padConnBit(3, false, 2), true);
  dev.settle();
  EXPECT_FALSE(dev.padValue(3));
}

// --------------------------------------- bitstream container hardening -----

Bitstream patternBitstream() {
  // Deliberately non-byte-aligned sizes so the rounding paths are exercised.
  Bitstream bs{common::BitVector(301), common::BitVector(97)};
  for (std::size_t i = 0; i < bs.logic.size(); i += 3) bs.logic.set(i, true);
  for (std::size_t i = 0; i < bs.bram.size(); i += 5) bs.bram.set(i, true);
  return bs;
}

/// Deserializing `bytes` must raise ConfigError whose message carries the
/// `fragment` - corrupt files are diagnosed from the message alone.
void expectConfigError(const std::vector<std::uint8_t>& bytes,
                       const std::string& fragment) {
  try {
    deserializeBitstream(DeviceSpec::small(), bytes);
    FAIL() << "corrupt container accepted (wanted '" << fragment << "')";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::ConfigError);
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(BitstreamIo, SerializeDeserializeRoundTrips) {
  const Bitstream original = patternBitstream();
  const auto bytes = serializeBitstream(DeviceSpec::small(), original);
  const Bitstream copy = deserializeBitstream(DeviceSpec::small(), bytes);
  ASSERT_EQ(copy.logic.size(), original.logic.size());
  ASSERT_EQ(copy.bram.size(), original.bram.size());
  for (std::size_t i = 0; i < original.logic.size(); ++i) {
    ASSERT_EQ(copy.logic.get(i), original.logic.get(i)) << "logic bit " << i;
  }
  for (std::size_t i = 0; i < original.bram.size(); ++i) {
    ASSERT_EQ(copy.bram.get(i), original.bram.get(i)) << "bram bit " << i;
  }
}

TEST(BitstreamIo, EveryTruncationIsATypedErrorWithAByteOffset) {
  const auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    try {
      deserializeBitstream(DeviceSpec::small(), cut);
      FAIL() << "container truncated to " << len << " byte(s) accepted";
    } catch (const FadesError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::ConfigError) << "length " << len;
      EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
          << "length " << len << ": " << e.what();
    }
  }
}

TEST(BitstreamIo, BadMagicAndVersionAreRejected) {
  auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  auto bad = bytes;
  bad[0] ^= 0xFF;
  expectConfigError(bad, "magic");
  bad = bytes;
  bad[4] += 1;  // version field starts at byte 4
  expectConfigError(bad, "version");
}

TEST(BitstreamIo, GeometryMismatchIsRejected) {
  const auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  EXPECT_THROW(deserializeBitstream(DeviceSpec::medium(), bytes), FadesError);
}

TEST(BitstreamIo, HugeDeclaredBitCountsAreRejectedBeforeAllocation) {
  // The declared counts are attacker-controlled 64-bit values; a container
  // declaring ~2^64 bits must fail the bounds check, not wrap it and
  // allocate. Logic count lives at bytes 28-35, bram count at 36-43.
  const auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  auto bad = bytes;
  for (std::size_t i = 28; i < 36; ++i) bad[i] = 0xFF;
  expectConfigError(bad, "logic bit count");
  bad = bytes;
  for (std::size_t i = 36; i < 44; ++i) bad[i] = 0xFF;
  expectConfigError(bad, "bram bit count");
}

TEST(BitstreamIo, PayloadCorruptionFailsTheCrc) {
  auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  bytes[44] ^= 0x10;  // first payload byte, right after the two bit counts
  expectConfigError(bytes, "CRC mismatch");
}

TEST(BitstreamIo, CrcWordCorruptionIsDetected) {
  auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  bytes[bytes.size() - 1] ^= 0x01;
  expectConfigError(bytes, "CRC mismatch");
}

TEST(BitstreamIo, TrailingGarbageIsRejected) {
  auto bytes = serializeBitstream(DeviceSpec::small(), patternBitstream());
  bytes.push_back(0x00);
  expectConfigError(bytes, "trailing");
}

TEST(BitstreamIo, SaveLoadRoundTripsAndLeavesNoTmp) {
  const std::string path = "fpga_edge_bitstream.bin";
  const Bitstream original = patternBitstream();
  saveBitstream(path, DeviceSpec::small(), original);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  const Bitstream loaded = loadBitstream(path, DeviceSpec::small());
  EXPECT_EQ(loaded.logic.size(), original.logic.size());
  EXPECT_EQ(loaded.bram.size(), original.bram.size());
  EXPECT_EQ(loaded.logic.popcount(), original.logic.popcount());
  EXPECT_EQ(loaded.bram.popcount(), original.bram.popcount());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fades::fpga
