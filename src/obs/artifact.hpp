// Machine-readable run artifacts.
//
// A RunArtifact is the versioned on-disk record of one run - a fault
// campaign, a bench binary, an ad-hoc experiment. It carries the spec that
// produced the run, the per-experiment records, a metrics snapshot and the
// cost-model breakdown, and serializes either as one pretty-printed JSON
// document or as JSONL (header line, one line per record, summary line) for
// streaming consumers. The schema string gates compatibility: consumers
// check "fades.run/1" before trusting field layout.
#pragma once

#include <string>

#include "obs/json.hpp"

namespace fades::obs {

class RunArtifact {
 public:
  static constexpr const char* kSchema = "fades.run/1";

  /// `kind` classifies the producer ("campaign", "bench", ...); `name`
  /// identifies the run within the kind.
  RunArtifact(std::string kind, std::string name);

  void setSpec(Json spec) { spec_ = std::move(spec); }
  void addRecord(Json record) { records_.push(std::move(record)); }
  void setMetrics(Json metrics) { metrics_ = std::move(metrics); }
  void setCost(Json cost) { cost_ = std::move(cost); }
  /// Attach an additional named section (tables, trace, notes, ...).
  void setSection(const std::string& key, Json value);

  std::size_t recordCount() const { return records_.size(); }

  /// Single-document form: schema, kind, name, spec, records, metrics,
  /// cost, then extra sections in insertion order.
  Json toJson() const;

  /// Streaming form: {"schema",...,"spec"} header line, {"record": ...} per
  /// experiment, {"metrics","cost",...} summary line.
  std::string toJsonl() const;

  void writeJson(const std::string& path, int indent = 2) const;
  void writeJsonl(const std::string& path) const;

 private:
  std::string kind_;
  std::string name_;
  Json spec_;
  Json records_ = Json::array();
  Json metrics_;
  Json cost_;
  Json sections_ = Json::object();
};

/// Write text to a file, throwing std::runtime_error on I/O failure.
void writeFile(const std::string& path, const std::string& text);

}  // namespace fades::obs
