// Liveness-based fault-list pruning (the pre-campaign half of the
// ROADMAP's "fault-list pruning + vulnerability analytics" item).
//
// One golden run of the workload fixes the complete fault-free trajectory,
// and against that trajectory most injections are provably equivalent:
//
//  - a bit-flip into a flop whose next-state input never picks it up is
//    overwritten before anything reads it (provably Silent);
//  - a bit-flip that sits dormant until a fixed golden cycle first exposes
//    it reaches that cycle with the identical machine state no matter when
//    inside the dormant window it was injected (one representative covers
//    the whole window);
//  - a bit-flip never consumed before the workload ends survives untouched
//    into the final state capture (provably Latent);
//  - a fault on a net whose forward cone reaches no flop input, no memory
//    input and no observed output can never become visible at all.
//
// buildPlan() replays a campaign's per-experiment draws (the same
// (spec.seed, index) streams both injectors consume), classifies every
// experiment against the golden trace, and folds the provable equivalences
// into a campaign::PrunePlan. The analysis is deliberately conservative:
// any (fault model, target kind) combination it cannot vouch for is left
// alone and those experiments simply run normally.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "campaign/prune_plan.hpp"
#include "campaign/types.hpp"
#include "netlist/netlist.hpp"
#include "sim/trace.hpp"
#include "synth/implement.hpp"

namespace fades::prune {

/// A campaign target handle resolved to the netlist element it faults.
struct TargetSite {
  enum class Kind : std::uint8_t {
    Flop,    // state bit of one flip-flop
    RamBit,  // one stored memory bit (ram, row, bit)
    Net,     // value of one net (LUT output / routed signal)
    Opaque,  // tool-specific mechanism the analysis cannot reason about
  };
  Kind kind = Kind::Opaque;
  netlist::FlopId flop{};
  netlist::RamId ram{};
  std::uint32_t row = 0;
  unsigned bit = 0;
  netlist::NetId net{};
};

/// Resolves a tool's target-pool handle to its netlist site. Each injector
/// encodes handles differently, so each supplies its own decoder.
using TargetDecoder = std::function<TargetSite(std::uint32_t handle)>;
/// The tool's human-readable target name (FadesTool::targetName
/// conventions for FADES, std::to_string(handle) for VFIT) - used for the
/// plan's informational `target` field.
using TargetNamer = std::function<std::string(std::uint32_t handle)>;

/// Handle decoder for FADES target pools over an implementation.
TargetDecoder fadesDecoder(const synth::Implementation& impl,
                           campaign::TargetClass cls);
/// Handle decoder for VFIT target pools over the source netlist.
TargetDecoder vfitDecoder(const netlist::Netlist& netlist,
                          campaign::TargetClass cls);

struct AnalysisInputs {
  /// Source netlist (must be validated); also the model the trace was
  /// recorded from. Not owned.
  const netlist::Netlist* netlist = nullptr;
  /// Golden trace of exactly the campaign's workload length. Not owned.
  const sim::GoldenTrace* trace = nullptr;
  std::uint64_t runCycles = 0;
  /// Output ports whose traces define Failure (the tool's observedOutputs).
  std::vector<std::string> observedOutputs;
  TargetDecoder decode;
  TargetNamer name;
  /// Set when the tool's modeled cost of an experiment depends only on
  /// (fault model, active window), never on WHICH element is faulted -
  /// VFIT's command-counting cost model. Lets fates that fix the outcome
  /// regardless of target (provably Silent, provably Latent, dead targets)
  /// merge across targets instead of per-target, which is where the bulk of
  /// the collapse comes from. FADES keeps per-target classes: its
  /// reconfiguration traffic is metered per frame address.
  bool uniformCostAcrossTargets = false;
};

/// Fold the campaign's experiment list into a fades.prune/1 plan. Only
/// provably-equivalent experiments are collapsed:
///  - BitFlip on Flop sites: full per-cycle fate analysis (overwrite-
///    before-read, exposure-window, persist-to-end, dead state bit);
///  - BitFlip on RamBit sites: golden address-event windows (a row's flip
///    is exposed at its next read and erased by its next write, both of
///    which happen exactly at the row's golden address events);
///  - Pulse / Indetermination on Net sites and Indetermination on Flop
///    sites: dead-target collapse only, keyed by the active window so the
///    members' modeled costs stay identical;
///  - everything else: untouched (no classes).
campaign::PrunePlan buildPlan(const campaign::CampaignSpec& spec,
                              std::span<const std::uint32_t> pool,
                              const AnalysisInputs& inputs);

}  // namespace fades::prune
