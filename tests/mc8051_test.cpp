#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "mc8051/assembler.hpp"
#include "mc8051/core.hpp"
#include "mc8051/isa.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace fades::mc8051 {
namespace {

using common::FadesError;
using sim::Simulator;

// ------------------------------------------------------------ assembler -----

TEST(Assembler, BasicEncodings) {
  const auto p = assemble(R"(
    MOV A, #0x42
    MOV R3, #7
    ADD A, R3
    MOV 0x30, A
    NOP
  )");
  EXPECT_EQ(p.bytes, (std::vector<std::uint8_t>{0x74, 0x42, 0x78 + 3, 7,
                                                0x28 + 3, 0xF5, 0x30, 0x00}));
}

TEST(Assembler, IndirectAndExchange) {
  const auto p = assemble(R"(
    MOV R0, #0x30
    MOV @R0, #5
    MOV A, @R0
    XCH A, R1
    XCH A, 0x31
  )");
  EXPECT_EQ(p.bytes,
            (std::vector<std::uint8_t>{0x78, 0x30, 0x76, 5, 0xE6, 0xC8 + 1,
                                       0xC5, 0x31}));
}

TEST(Assembler, BranchesAndLabels) {
  const auto p = assemble(R"(
    start: DJNZ R2, start
           SJMP start
    end:   SJMP $
  )");
  // DJNZ R2,start: offset -2 (back to its own start).
  EXPECT_EQ(p.bytes[0], 0xD8 + 2);
  EXPECT_EQ(p.bytes[1], 0xFE);
  // SJMP start at address 2: target 0, offset -4.
  EXPECT_EQ(p.bytes[2], 0x80);
  EXPECT_EQ(p.bytes[3], 0xFC);
  // SJMP $: offset -2.
  EXPECT_EQ(p.bytes[5], 0xFE);
  EXPECT_EQ(p.symbol("end"), 4u);
}

TEST(Assembler, SfrNamesAndMovDirDirOperandOrder) {
  const auto p = assemble("MOV P1, PSW");
  // MCS-51 encodes MOV dir,dir as: 0x85, src, dst.
  EXPECT_EQ(p.bytes, (std::vector<std::uint8_t>{0x85, SFR_PSW, SFR_P1}));
}

TEST(Assembler, DirectivesOrgDbEqu) {
  const auto p = assemble(R"(
    val: .equ 0x2A
         MOV A, #val
         .org 0x10
         .db 1, 2, 0xFF
  )");
  EXPECT_EQ(p.bytes.size(), 0x13u);
  EXPECT_EQ(p.bytes[1], 0x2A);
  EXPECT_EQ(p.bytes[0x10], 1);
  EXPECT_EQ(p.bytes[0x12], 0xFF);
}

TEST(Assembler, ErrorsAreDiagnosed) {
  EXPECT_THROW(assemble("FROB A, #1"), FadesError);
  EXPECT_THROW(assemble("MOV A"), FadesError);
  EXPECT_THROW(assemble("SJMP missing_label"), FadesError);
  // Branch out of range.
  std::string longSrc = "start: NOP\n";
  for (int i = 0; i < 200; ++i) longSrc += "NOP\n";
  longSrc += "SJMP start\n";
  EXPECT_THROW(assemble(longSrc), FadesError);
}

TEST(Isa, LengthsMatchAssembledSizes) {
  // Cross-check instructionLength against what the assembler emits.
  struct Case {
    const char* src;
    unsigned len;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"NOP", 1},      {"RET", 1},          {"INC A", 1},
           {"MOV A, R5", 1}, {"MOV A, @R1", 1},  {"ADD A, #1", 2},
           {"MOV A, 0x30", 2}, {"PUSH PSW", 2},  {"DJNZ R1, $", 2},
           {"LJMP $", 3},   {"MOV 0x30, #1", 3}, {"CJNE A, #5, $", 3}}) {
    const auto p = assemble(c.src);
    EXPECT_EQ(p.bytes.size(), c.len) << c.src;
    EXPECT_EQ(instructionLength(p.bytes[0]), c.len) << c.src;
  }
  EXPECT_EQ(instructionLength(0xA5), 0u);  // a hole in the map
}

// ------------------------------------------------------------------ ISS -----

TEST(Iss, ArithmeticFlags) {
  const auto p = assemble(R"(
    MOV A, #0x7F
    ADD A, #0x01
  )");
  Iss iss(p.bytes);
  iss.stepInstruction();
  iss.stepInstruction();
  EXPECT_EQ(iss.acc(), 0x80);
  EXPECT_FALSE(iss.carry());
  EXPECT_TRUE(iss.psw() & (1 << PSW_OV));  // 0x7F + 1 overflows signed
  EXPECT_TRUE(iss.psw() & (1 << PSW_AC));  // carry out of bit 3
  EXPECT_TRUE(iss.psw() & (1 << PSW_P));   // 0x80 has odd parity
}

TEST(Iss, SubbBorrowChain) {
  const auto p = assemble(R"(
    CLR C
    MOV A, #0x10
    SUBB A, #0x20
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 3; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.acc(), 0xF0);
  EXPECT_TRUE(iss.carry());  // borrow
}

TEST(Iss, BankedRegisters) {
  const auto p = assemble(R"(
    MOV R0, #0x11      ; bank 0: iram[0]
    MOV PSW, #0x08     ; RS0=1 -> bank 1
    MOV R0, #0x22      ; bank 1: iram[8]
    MOV PSW, #0x00
    MOV A, R0
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 5; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.iram(0), 0x11);
  EXPECT_EQ(iss.iram(8), 0x22);
  EXPECT_EQ(iss.acc(), 0x11);
}

TEST(Iss, StackCallReturn) {
  const auto p = assemble(R"(
          MOV  SP, #0x50
          LCALL sub
          MOV  P0, #1
    end:  SJMP $
    sub:  MOV  P1, #9
          RET
  )");
  Iss iss(p.bytes);
  while (iss.p0() != 1) iss.stepInstruction();
  EXPECT_EQ(iss.p1(), 9);
  EXPECT_EQ(iss.sp(), 0x50);  // balanced
}

TEST(Iss, CjneSetsCarryLikeCompare) {
  const auto p = assemble(R"(
    MOV A, #5
    CJNE A, #9, low
    low: NOP
  )");
  Iss iss(p.bytes);
  iss.stepInstruction();
  iss.stepInstruction();
  EXPECT_TRUE(iss.carry());  // 5 < 9
}

TEST(Iss, MultiplyAndDivide) {
  const auto p = assemble(R"(
    MOV A, #0xC9     ; 201
    MOV B, #0x2A     ; 42
    MUL AB           ; 8442 = 0x20FA
    MOV 0x30, A      ; low
    MOV A, B
    MOV 0x31, A      ; high
    MOV A, #201
    MOV B, #42
    DIV AB           ; q=4, r=33
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 9; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.iram(0x30), 0xFA);
  EXPECT_EQ(iss.iram(0x31), 0x20);
  EXPECT_EQ(iss.acc(), 4);
  EXPECT_EQ(iss.b(), 33);
  EXPECT_FALSE(iss.carry());
  EXPECT_FALSE(iss.psw() & (1 << PSW_OV));
}

TEST(Iss, MulOverflowAndDivByZeroFlags) {
  {
    Iss iss(assemble("MOV A,#16\nMOV B,#16\nMUL AB").bytes);
    for (int i = 0; i < 3; ++i) iss.stepInstruction();
    EXPECT_EQ(iss.acc(), 0);
    EXPECT_EQ(iss.b(), 1);
    EXPECT_TRUE(iss.psw() & (1 << PSW_OV));  // product exceeds 8 bits
  }
  {
    Iss iss(assemble("MOV A,#77\nMOV B,#0\nDIV AB").bytes);
    for (int i = 0; i < 3; ++i) iss.stepInstruction();
    EXPECT_TRUE(iss.psw() & (1 << PSW_OV));  // division by zero
    EXPECT_EQ(iss.acc(), 0xFF);
    EXPECT_EQ(iss.b(), 77);
  }
}

TEST(Iss, RotatesThroughCarry) {
  const auto p = assemble(R"(
    SETB C
    MOV A, #0x80
    RLC A
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 3; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.acc(), 0x01);
  EXPECT_TRUE(iss.carry());
}

TEST(Iss, CycleCountsFollowTheFsm) {
  struct Case {
    const char* src;
    unsigned cycles;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"NOP", 2},            // FETCH, DECODE
           {"INC A", 3},          // + EXEC
           {"MOV A, #1", 4},      // + OP1
           {"MOV A, 0x30", 5},    // + OP1 + RD
           {"MOV A, R2", 4},      // + RD
           {"MOV A, @R0", 5},     // + RDRI + RD
           {"MOV @R0, A", 4},     // + RDRI
           {"MOV 0x30, #1", 5},   // + OP1 + OP2
           {"MOV 0x30, 0x31", 6}, // + OP1 + OP2 + RD
           {"CJNE A, #1, $", 5},  // + OP1 + OP2
           {"DJNZ R0, $", 5},     // + OP1 + RD  (R0 starts 0 -> wraps, jumps)
           {"LJMP $", 5},
           {"LCALL $", 6},
           {"RET", 5}}) {
    Iss iss(assemble(c.src).bytes);
    EXPECT_EQ(iss.stepInstruction(), c.cycles) << c.src;
  }
}

TEST(Isa, OpcodeNamesCoverTheImplementedSubset) {
  // Every implemented opcode decodes to a real mnemonic; holes decode to "?".
  for (unsigned op = 0; op < 256; ++op) {
    const std::string name = opcodeName(static_cast<std::uint8_t>(op));
    if (instructionLength(static_cast<std::uint8_t>(op)) != 0) {
      EXPECT_NE(name, "?") << "opcode " << op;
    } else {
      EXPECT_EQ(name, "?") << "opcode " << op;
    }
  }
  EXPECT_STREQ(opcodeName(0x00), "NOP");
  EXPECT_STREQ(opcodeName(0x28 + 3), "ADD A,Rn");  // family collapses
  EXPECT_STREQ(opcodeName(0xE6), "MOV A,@Ri");
  EXPECT_STREQ(opcodeName(0xE7), "MOV A,@Ri");
}

TEST(Iss, TracePcPerCycleNamesTheInstructionInFlight) {
  const auto p = assemble(R"(
    MOV A, #1
    INC A
    SJMP $
  )");
  Iss iss(p.bytes);
  const auto trace = iss.tracePcPerCycle(12);
  ASSERT_EQ(trace.size(), 12u);
  // MOV A,#1 occupies cycles 0-3, INC A cycles 4-6, then SJMP $ forever.
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(trace[c].pc, 0u) << c;
    EXPECT_EQ(trace[c].opcode, 0x74) << c;
  }
  for (unsigned c = 4; c < 7; ++c) {
    EXPECT_EQ(trace[c].pc, 2u) << c;
    EXPECT_EQ(trace[c].opcode, 0x04) << c;
  }
  for (unsigned c = 7; c < 12; ++c) {
    EXPECT_EQ(trace[c].pc, 3u) << c;
    EXPECT_EQ(trace[c].opcode, 0x80) << c;
  }
  // The tracer resets afterwards: a fresh run from cycle 0 is unperturbed.
  EXPECT_EQ(iss.cycleCount(), 0u);
  EXPECT_EQ(iss.pc(), 0u);
}

TEST(Iss, TraceMatchesStepInstructionCycleAccounting) {
  const Workload w = bubblesort(5);
  Iss iss(w.bytes);
  const auto trace = iss.tracePcPerCycle(w.cycles);
  ASSERT_EQ(trace.size(), w.cycles);
  // Replaying instruction-by-instruction visits the same (pc, cycles) runs.
  iss.reset();
  std::size_t cursor = 0;
  while (cursor < trace.size()) {
    const std::uint16_t pc = iss.pc();
    const unsigned spent = iss.stepInstruction();
    for (unsigned k = 0; k < spent && cursor < trace.size(); ++k, ++cursor) {
      EXPECT_EQ(trace[cursor].pc, pc) << "cycle " << cursor;
    }
  }
}

// ----------------------------------------------------------- workloads -----

TEST(Workloads, BubblesortSortsAndChecksums) {
  const Workload w = bubblesort(8);
  Iss iss(w.bytes);
  iss.runCycles(w.cycles);
  // Array ascending 1..8 at 0x30.
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(iss.iram(static_cast<std::uint8_t>(0x30 + i)), i + 1);
  }
  EXPECT_EQ(iss.p0(), w.expectedP0);
  EXPECT_EQ(iss.p1(), w.expectedP1);
}

TEST(Workloads, BubblesortCycleScaleMatchesPaperBallpark) {
  // The paper's Bubblesort took 1303 cycles on their 8051; ours should be
  // the same order of magnitude at a comparable size.
  const Workload w = bubblesort(8);
  EXPECT_GT(w.cycles, 400u);
  EXPECT_LT(w.cycles, 6000u);
}

TEST(Workloads, ChecksumAndFibonacci) {
  const Workload c = checksum(12);
  Iss issC(c.bytes);
  issC.runCycles(c.cycles);
  EXPECT_EQ(issC.p0(), c.expectedP0);
  EXPECT_EQ(issC.p1(), c.expectedP1);

  const Workload f = fibonacci(10);
  Iss issF(f.bytes);
  issF.runCycles(f.cycles);
  EXPECT_EQ(issF.p0(), 0x5A);
  EXPECT_EQ(issF.p1(), 89);  // fib(11) = 89
}

// ---------------------------------------------------------- RTL vs ISS -----

struct RtlIss {
  netlist::Netlist nl;
  std::unique_ptr<Simulator> simulator;
  Iss iss;

  explicit RtlIss(const std::vector<std::uint8_t>& program)
      : nl(buildCore(program)), iss(program) {
    simulator = std::make_unique<Simulator>(nl);
  }

  void compareAfter(std::uint64_t cycles) {
    simulator->run(cycles);
    iss.runCycles(cycles);
    EXPECT_EQ(simulator->portValue("acc"), iss.acc());
    EXPECT_EQ(simulator->portValue("sp"), iss.sp());
    EXPECT_EQ(simulator->portValue("p0"), iss.p0());
    EXPECT_EQ(simulator->portValue("p1"), iss.p1());
    EXPECT_EQ(simulator->portValue("pc"), iss.pc());
    netlist::RamId iramId{};
    for (std::uint32_t r = 0; r < nl.ramCount(); ++r) {
      if (nl.ram(netlist::RamId{r}).name == "iram") iramId = netlist::RamId{r};
    }
    ASSERT_TRUE(iramId.valid());
    for (unsigned a = 0; a < 128; ++a) {
      ASSERT_EQ(simulator->ramWord(iramId, a), iss.iram(a))
          << "iram[" << a << "]";
    }
  }
};

TEST(Core, BubblesortMatchesIssExactly) {
  const Workload w = bubblesort(8);
  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
  EXPECT_EQ(rig.simulator->portValue("p1"), w.expectedP1);
}

TEST(Core, ChecksumMatchesIss) {
  const Workload w = checksum(10);
  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
}

TEST(Core, FibonacciMatchesIss) {
  const Workload w = fibonacci(9);
  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
}

TEST(Core, CycleAccurateAgainstIss) {
  // Compare at several intermediate cuts, not only the quiescent end.
  const Workload w = bubblesort(4);
  for (std::uint64_t cut : {11ull, 47ull, 101ull, 257ull}) {
    RtlIss rig(w.bytes);
    rig.iss.runCycles(cut);
    rig.simulator->run(rig.iss.cycleCount());  // align to the ISS boundary
    EXPECT_EQ(rig.simulator->portValue("pc"), rig.iss.pc()) << cut;
    EXPECT_EQ(rig.simulator->portValue("acc"), rig.iss.acc()) << cut;
  }
}

TEST(Core, InstructionStressProgram) {
  // Exercise every implemented instruction family at least once.
  const char* src = R"(
        MOV  SP, #0x58
        MOV  A, #0x3C
        MOV  B, A
        MOV  0x30, #0x11
        MOV  0x31, 0x30
        MOV  R0, #0x31
        INC  @R0
        MOV  A, @R0
        ADD  A, #0x01
        ADDC A, 0x30
        SUBB A, R0
        ANL  A, #0xF7
        ORL  A, #0x08
        XRL  A, 0x30
        RL   A
        RLC  A
        RR   A
        RRC  A
        CPL  A
        XCH  A, 0x30
        XCH  A, R3
        PUSH 0x30
        POP  0x32
        MOV  R5, #3
    lp: INC  0x33
        DEC  A
        DJNZ R5, lp
        CJNE A, #0, ne
        NOP
    ne: LCALL sub
        MOV  A, R7
        MOV  P1, A
        MOV  P0, #0x77
    end: SJMP $
    sub: MOV  R7, #0x66
        SETB C
        CPL  C
        CLR  C
        RET
  )";
  const auto p = assemble(src);
  RtlIss rig(p.bytes);
  Iss probe(p.bytes);
  std::uint64_t guard = 0;
  while (probe.p0() != 0x77 && ++guard < 10000) probe.stepInstruction();
  ASSERT_EQ(probe.p0(), 0x77);
  rig.compareAfter(probe.cycleCount() + 8);
}

TEST(Core, MulDivMatchIssExhaustively) {
  // Sweep a grid of operand pairs through MUL and DIV on the RTL core and
  // compare both result registers against the ISS.
  for (unsigned a = 3; a < 256; a += 41) {
    for (unsigned c = 0; c < 256; c += 37) {
      std::ostringstream src;
      src << "MOV A,#" << a << "\nMOV B,#" << c << "\nMUL AB\n"
          << "MOV 0x40, A\nMOV A,B\nMOV 0x41, A\n"
          << "MOV A,#" << a << "\nMOV B,#" << c << "\nDIV AB\n"
          << "MOV P1, A\nMOV P0,#1\nend: SJMP $\n";
      const auto p = assemble(src.str());
      RtlIss rig(p.bytes);
      Iss probe(p.bytes);
      while (probe.p0() != 1) probe.stepInstruction();
      rig.compareAfter(probe.cycleCount() + 4);
    }
  }
}

// ------------------------------------------------- ISA conformance table ----
//
// One lockstep case per Op enumerator. Every case runs the same prologue
// (which places distinctive values in ACC, B, CY, R0-R7 and two scratch
// bytes), then the opcode under test, then an epilogue that snapshots PSW
// into iram[0x3F] and raises a completion marker on P0. The RTL core and
// the ISS execute the identical program and must agree on ACC, SP, P0, P1,
// PC and all 128 bytes of internal RAM - so data results, stack effects and
// every PSW flag (CY/AC/OV/P) are all covered by one comparison.
//
// The table is the single source of truth: each entry names its Op
// enumerator, so an opcode removed or renamed in isa.hpp is a compile
// error here, and TableCoversEveryImplementedOpcode sweeps the full
// [0x00, 0xFF] encoding space to fail when the decoder implements an
// opcode the table does not exercise (or vice versa).

struct IsaConformanceCase {
  Op op;             // canonical opcode (family base for +n / +i forms)
  const char* name;  // gtest-safe case name
  const char* body;  // snippet inserted between the shared prologue/epilogue
};

constexpr const char* kIsaPrologue =
    "MOV SP, #0x50\n"
    "MOV 0x30, #0x5A\n"
    "MOV 0x31, #0xC3\n"
    "MOV R0, #0x30\n"
    "MOV R1, #0x31\n"
    "MOV R2, #0x02\n"
    "MOV R3, #0x7F\n"
    "MOV R4, #0xFE\n"
    "MOV R5, #0x01\n"
    "MOV R6, #0x80\n"
    "MOV R7, #0x0F\n"
    "MOV B, #0x11\n"
    "MOV A, #0x96\n"
    "SETB C\n";

constexpr const char* kIsaEpilogue =
    "\nMOV 0x3F, PSW\n"
    "MOV P0, #0x99\n"
    "fin: SJMP $\n";

constexpr IsaConformanceCase kIsaConformance[] = {
    {OP_NOP, "NOP", "NOP"},
    {OP_LJMP, "LJMP", "LJMP lj\nMOV 0x32, #1\nlj: NOP"},
    {OP_RR_A, "RR_A", "RR A"},
    {OP_INC_A, "INC_A", "INC A"},
    {OP_INC_DIR, "INC_DIR", "INC 0x30"},
    {OP_INC_IND, "INC_IND", "INC @R0"},
    {OP_INC_RN, "INC_RN", "INC R2"},
    {OP_LCALL, "LCALL", "LCALL cs\nSJMP cd\ncs: INC R2\nRET\ncd: NOP"},
    {OP_RRC_A, "RRC_A", "RRC A"},
    {OP_DEC_A, "DEC_A", "DEC A"},
    {OP_DEC_DIR, "DEC_DIR", "DEC 0x31"},
    {OP_DEC_IND, "DEC_IND", "DEC @R1"},
    {OP_DEC_RN, "DEC_RN", "DEC R5"},  // 1 -> 0 crosses the zero boundary
    {OP_RET, "RET", "LCALL rs\nSJMP rd\nrs: MOV 0x32, #0x21\nRET\nrd: NOP"},
    {OP_RL_A, "RL_A", "RL A"},
    // 0x96 + 0x6A == 0x100: sets CY and leaves ACC zero.
    {OP_ADD_IMM, "ADD_IMM", "ADD A, #0x6A"},
    {OP_ADD_DIR, "ADD_DIR", "ADD A, 0x30"},
    {OP_ADD_IND, "ADD_IND", "ADD A, @R0"},
    // 0x96 + 0x7F: signed overflow plus auxiliary carry.
    {OP_ADD_RN, "ADD_RN", "ADD A, R3"},
    {OP_RLC_A, "RLC_A", "RLC A"},
    {OP_ADDC_IMM, "ADDC_IMM", "ADDC A, #0x69"},
    {OP_ADDC_DIR, "ADDC_DIR", "ADDC A, 0x31"},
    {OP_ADDC_IND, "ADDC_IND", "ADDC A, @R1"},
    {OP_ADDC_RN, "ADDC_RN", "ADDC A, R4"},
    {OP_JC, "JC", "JC jc1\nMOV 0x32, #1\njc1: CLR C\nJC jc2\nMOV 0x33, #2\njc2: NOP"},
    {OP_ORL_A_IMM, "ORL_A_IMM", "ORL A, #0x0F"},
    {OP_ORL_A_DIR, "ORL_A_DIR", "ORL A, 0x30"},
    {OP_ORL_A_RN, "ORL_A_RN", "ORL A, R6"},
    {OP_JNC, "JNC", "JNC nc1\nMOV 0x32, #3\nnc1: CLR C\nJNC nc2\nMOV 0x33, #4\nnc2: NOP"},
    // 0x96 / 0x11: quotient 8 remainder 14, clears CY and OV.
    {OP_DIV_AB, "DIV_AB", "DIV AB"},
    // 0x96 * 0x11 == 0x09F6 > 0xFF: sets OV, clears CY.
    {OP_MUL_AB, "MUL_AB", "MUL AB"},
    {OP_ANL_A_IMM, "ANL_A_IMM", "ANL A, #0x3C"},
    {OP_ANL_A_DIR, "ANL_A_DIR", "ANL A, 0x30"},
    {OP_ANL_A_RN, "ANL_A_RN", "ANL A, R7"},
    {OP_JZ, "JZ", "JZ z1\nMOV 0x32, #5\nz1: CLR A\nJZ z2\nMOV 0x33, #6\nz2: NOP"},
    {OP_XRL_A_IMM, "XRL_A_IMM", "XRL A, #0xFF"},
    {OP_XRL_A_DIR, "XRL_A_DIR", "XRL A, 0x30"},
    {OP_XRL_A_RN, "XRL_A_RN", "XRL A, R4"},
    {OP_JNZ, "JNZ", "JNZ n1\nMOV 0x32, #7\nn1: CLR A\nJNZ n2\nMOV 0x33, #8\nn2: NOP"},
    {OP_MOV_A_IMM, "MOV_A_IMM", "MOV A, #0x21"},
    {OP_MOV_DIR_IMM, "MOV_DIR_IMM", "MOV 0x35, #0x77"},
    {OP_MOV_IND_IMM, "MOV_IND_IMM", "MOV @R0, #0x44"},
    {OP_MOV_RN_IMM, "MOV_RN_IMM", "MOV R4, #0x13"},
    {OP_SJMP, "SJMP", "SJMP sj\nMOV 0x32, #9\nsj: NOP"},
    {OP_MOV_DIR_DIR, "MOV_DIR_DIR", "MOV 0x36, 0x30"},
    {OP_MOV_DIR_RN, "MOV_DIR_RN", "MOV 0x37, R7"},
    // 0x96 - 0x17 - CY(1): exercises the borrow chain.
    {OP_SUBB_IMM, "SUBB_IMM", "SUBB A, #0x17"},
    {OP_SUBB_DIR, "SUBB_DIR", "SUBB A, 0x31"},  // result underflows: sets CY
    {OP_SUBB_IND, "SUBB_IND", "SUBB A, @R0"},
    {OP_SUBB_RN, "SUBB_RN", "SUBB A, R2"},
    {OP_MOV_RN_DIR, "MOV_RN_DIR", "MOV R3, 0x30"},
    {OP_CPL_C, "CPL_C", "CPL C"},
    {OP_CJNE_A_IMM, "CJNE_A_IMM",
     "CJNE A, #0x96, ce\nMOV 0x32, #10\nce: CJNE A, #0xA0, cf\nMOV 0x33, #11\ncf: NOP"},
    {OP_CJNE_A_DIR, "CJNE_A_DIR", "CJNE A, 0x30, cg\nMOV 0x32, #12\ncg: NOP"},
    {OP_CJNE_IND_IMM, "CJNE_IND_IMM", "CJNE @R0, #0x5A, ch\nMOV 0x32, #13\nch: NOP"},
    {OP_CJNE_RN_IMM, "CJNE_RN_IMM", "CJNE R2, #0x03, ci\nMOV 0x32, #14\nci: NOP"},
    {OP_PUSH, "PUSH", "PUSH 0x30"},
    {OP_CLR_C, "CLR_C", "CLR C"},
    {OP_XCH_A_DIR, "XCH_A_DIR", "XCH A, 0x31"},
    {OP_XCH_A_RN, "XCH_A_RN", "XCH A, R6"},
    {OP_POP, "POP", "PUSH 0x30\nPOP 0x38"},
    {OP_SETB_C, "SETB_C", "CLR C\nSETB C"},
    {OP_DJNZ_DIR, "DJNZ_DIR", "MOV 0x39, #2\ndj: DJNZ 0x39, dj"},
    {OP_DJNZ_RN, "DJNZ_RN", "dk: DJNZ R2, dk"},
    {OP_CLR_A, "CLR_A", "CLR A"},
    {OP_MOV_A_DIR, "MOV_A_DIR", "MOV A, 0x31"},
    {OP_MOV_A_IND, "MOV_A_IND", "MOV A, @R1"},
    {OP_MOV_A_RN, "MOV_A_RN", "MOV A, R4"},
    {OP_CPL_A, "CPL_A", "CPL A"},
    {OP_MOV_DIR_A, "MOV_DIR_A", "MOV 0x3A, A"},
    {OP_MOV_IND_A, "MOV_IND_A", "MOV @R1, A"},
    {OP_MOV_RN_A, "MOV_RN_A", "MOV R0, A"},
};

// isa.hpp currently defines 72 opcodes. The sweep test below enforces the
// real invariant (table <-> decoder agreement); this just makes an edit to
// either side show up as a compile-time diff instead of a silent skew.
static_assert(std::size(kIsaConformance) == 72,
              "keep kIsaConformance in sync with the Op enum in isa.hpp");

// Reduce an arbitrary encoding to the canonical Op the table uses. In the
// MCS-51 map, low nibbles 0x8..0xF are register forms (+n) and low nibbles
// 0x6..0x7 are indirect forms (+i); every other opcode is its own canon.
std::uint8_t canonicalOpcode(std::uint8_t opcode) {
  const unsigned nibble = opcode & 0x0F;
  if (nibble >= 0x8) return opcode & 0xF8;
  if (nibble == 0x6 || nibble == 0x7) return opcode & 0xFE;
  return opcode;
}

TEST(IsaConformance, TableCoversEveryImplementedOpcode) {
  std::set<std::uint8_t> tabled;
  for (const auto& c : kIsaConformance) {
    EXPECT_TRUE(tabled.insert(c.op).second)
        << "duplicate table entry " << c.name;
    EXPECT_TRUE(isImplemented(c.op))
        << c.name << " is in the table but not in the decoder";
  }
  for (unsigned opcode = 0; opcode < 256; ++opcode) {
    const auto op = static_cast<std::uint8_t>(opcode);
    if (!isImplemented(op)) continue;
    EXPECT_TRUE(tabled.count(canonicalOpcode(op)))
        << "opcode 0x" << std::hex << opcode
        << " is implemented but has no conformance case";
  }
}

class IsaConformance : public ::testing::TestWithParam<IsaConformanceCase> {};

TEST_P(IsaConformance, RtlMatchesIssInLockstep) {
  const IsaConformanceCase& c = GetParam();
  const std::string src =
      std::string(kIsaPrologue) + c.body + kIsaEpilogue;
  const auto p = assemble(src);
  // The snippet must actually contain the opcode it claims to exercise.
  bool found = false;
  for (std::size_t i = 0; i < p.bytes.size();
       i += instructionLength(p.bytes[i])) {
    ASSERT_NE(instructionLength(p.bytes[i]), 0u);
    if (canonicalOpcode(p.bytes[i]) == c.op) found = true;
  }
  ASSERT_TRUE(found) << c.name << " snippet never executes its opcode";

  Iss probe(p.bytes);
  std::uint64_t guard = 0;
  while (probe.p0() != 0x99 && ++guard < 10000) probe.stepInstruction();
  ASSERT_EQ(probe.p0(), 0x99) << c.name << " never reached the end marker";

  RtlIss rig(p.bytes);
  rig.compareAfter(probe.cycleCount() + 8);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, IsaConformance,
                         ::testing::ValuesIn(kIsaConformance),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(Workloads, DotProductUsesMultiplier) {
  const Workload w = dotproduct(6);
  Iss iss(w.bytes);
  iss.runCycles(w.cycles);
  EXPECT_EQ(iss.p0(), w.expectedP0);
  EXPECT_EQ(iss.p1(), w.expectedP1);

  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
  EXPECT_EQ(rig.simulator->portValue("p1"), w.expectedP1);
}


}  // namespace
}  // namespace fades::mc8051
