#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <exception>
#include <map>

#include "campaign/artifact.hpp"
#include "campaign/parallel.hpp"
#include "common/stats.hpp"
#include "obs/artifact.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fades::bench {

namespace {

unsigned envCount(const char* name, unsigned defaultCount) {
  if (const char* v = std::getenv(name)) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return defaultCount;
}

BenchRun* gActiveRun = nullptr;

/// --jobs from the command line; -1 = not given (fall back to FADES_JOBS,
/// then serial). A given 0 is legitimate: the parallel runner maps it to
/// one worker per hardware thread.
int gJobsArg = -1;

}  // namespace

BenchRun::BenchRun(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        jsonPath_ = argv[i + 1];
      } else {
        jsonPath_ = "BENCH_" + name_ + ".json";
      }
    } else if (std::string(argv[i]) == "--jobs" && i + 1 < argc) {
      gJobsArg = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    }
  }
  gActiveRun = this;
  FADES_LOG(Debug) << "bench start" << obs::kv("name", name_)
                   << obs::kv("json", jsonPath_.empty() ? "-" : jsonPath_);
}

BenchRun::~BenchRun() {
  if (gActiveRun == this) gActiveRun = nullptr;
  if (jsonPath_.empty()) return;
  obs::RunArtifact artifact("bench", name_);
  obs::Json spec = obs::Json::object();
  spec.set("binary", obs::Json("bench_" + name_));
  if (const char* faults = std::getenv("FADES_FAULTS")) {
    spec.set("fades_faults", obs::Json(std::string(faults)));
  }
  artifact.setSpec(spec);
  artifact.setSection("tables", tables_);
  artifact.setSection("campaigns", campaigns_);
  if (scalars_.size() != 0) artifact.setSection("scalars", scalars_);
  artifact.setMetrics(obs::Registry::global().snapshotJson());
  artifact.setSection("trace", obs::TraceBuffer::global().chromeTraceJson());
  try {
    artifact.writeJson(jsonPath_);
    std::printf("Wrote run artifact: %s\n", jsonPath_.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to write %s: %s\n", jsonPath_.c_str(),
                 e.what());
  }
}

void BenchRun::addTable(const std::string& title,
                        const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  obs::Json t = obs::Json::object();
  t.set("title", obs::Json(title));
  obs::Json h = obs::Json::array();
  for (const auto& cell : header) h.push(obs::Json(cell));
  t.set("header", h);
  obs::Json rs = obs::Json::array();
  for (const auto& row : rows) {
    obs::Json r = obs::Json::array();
    for (const auto& cell : row) r.push(obs::Json(cell));
    rs.push(r);
  }
  t.set("rows", rs);
  tables_.push(std::move(t));
}

void BenchRun::addCampaign(const std::string& label,
                           const campaign::CampaignResult& result) {
  obs::Json c = obs::Json::object();
  c.set("label", obs::Json(label));
  c.set("result", campaign::toJson(result));
  campaigns_.push(std::move(c));
}

void BenchRun::addScalar(const std::string& name, double value) {
  scalars_.set(name, obs::Json(value));
}

void recordCampaign(const std::string& label,
                    const campaign::CampaignResult& result) {
  if (gActiveRun != nullptr && gActiveRun->recording()) {
    gActiveRun->addCampaign(label, result);
  }
}

void recordScalar(const std::string& name, double value) {
  if (gActiveRun != nullptr && gActiveRun->recording()) {
    gActiveRun->addScalar(name, value);
  }
}

unsigned classifyCount(unsigned defaultCount) {
  return envCount("FADES_FAULTS", defaultCount);
}

unsigned timingCount(unsigned defaultCount) {
  const unsigned n = envCount("FADES_FAULTS", defaultCount);
  return n < defaultCount ? n : defaultCount;
}

unsigned jobs() {
  if (gJobsArg >= 0) return static_cast<unsigned>(gJobsArg);
  if (const char* v = std::getenv("FADES_JOBS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 0) return static_cast<unsigned>(n);
  }
  return 1;
}

namespace {

// Everything a replica's behavior depends on, so a recycled tool address
// (some benches build short-lived tools on the stack) never reuses a runner
// configured for a different tool.
std::string toolFingerprint(core::FadesTool& tool) {
  const auto& o = tool.options();
  const auto& spec = tool.device().spec();
  std::string fp = spec.name + "/" + std::to_string(spec.clockPeriodNs) +
                   "/" + std::to_string(tool.runCycles()) + "/" +
                   std::to_string(static_cast<int>(o.bitFlipVia)) +
                   std::to_string(static_cast<int>(o.delayVia)) +
                   std::to_string(o.fullDownloadForDelay) +
                   std::to_string(o.oscillatingIndetermination) +
                   std::to_string(o.keepRecords) +
                   std::to_string(o.sessionFrameCache) + "/" +
                   std::to_string(o.fpgaClockHz) + "/" +
                   std::to_string(o.hostPerExperimentSeconds) + "/" +
                   std::to_string(o.checkpointInterval) + "/" +
                   std::to_string(o.linkFaults.readCrcRate) + "," +
                   std::to_string(o.linkFaults.writeFailRate) + "," +
                   std::to_string(o.linkFaults.timeoutRate) + "/" +
                   std::to_string(o.linkRetry.maxRetries) + "," +
                   std::to_string(o.linkRetry.backoffBaseSeconds) + "," +
                   std::to_string(o.linkRetry.backoffFactor) + "," +
                   std::to_string(o.linkRetry.backoffCapSeconds) + "/" +
                   std::to_string(o.experimentAttempts);
  for (const auto& out : o.observedOutputs) fp += "," + out;
  return fp;
}

struct CachedRunner {
  const synth::Implementation* impl = nullptr;
  std::string fingerprint;
  std::unique_ptr<campaign::ParallelCampaignRunner> runner;
};

// One runner per tool: replicas are expensive (each pays the bitstream
// download and golden run), so band sweeps and repeat campaigns over the
// same tool reuse them.
std::map<const core::FadesTool*, CachedRunner> gRunners;

}  // namespace

campaign::CampaignResult runCampaign(core::FadesTool& tool,
                                     const campaign::CampaignSpec& spec) {
  const unsigned n = jobs();
  if (n == 1) return tool.runCampaign(spec);
  auto& cached = gRunners[&tool];
  const std::string fp = toolFingerprint(tool);
  if (!cached.runner || cached.impl != &tool.implementation() ||
      cached.fingerprint != fp) {
    campaign::ParallelOptions popt;
    popt.jobs = n;
    popt.progressInterval = tool.options().progressInterval;
    popt.experimentAttempts = tool.options().experimentAttempts;
    cached.impl = &tool.implementation();
    cached.fingerprint = fp;
    cached.runner = std::make_unique<campaign::ParallelCampaignRunner>(
        core::fadesEngineFactory(tool.implementation(), tool.runCycles(),
                                 tool.options(), tool.device().spec()),
        popt);
  }
  return cached.runner->run(spec);
}

System8051::System8051()
    : workload_(mc8051::bubblesort(6)),
      nl_(mc8051::buildCore(workload_.bytes)),
      impl_(synth::implement(nl_, fpga::DeviceSpec::virtex1000Like())) {}

core::FadesOptions System8051::fadesOptions() const {
  core::FadesOptions opt;
  opt.observedOutputs = {"p0", "p1"};
  return opt;
}

core::FadesTool& System8051::fades() {
  if (!fades_) {
    device_ = std::make_unique<fpga::Device>(impl_.spec);
    fades_ = std::make_unique<core::FadesTool>(*device_, impl_,
                                               workload_.cycles,
                                               fadesOptions());
  }
  return *fades_;
}

core::FadesTool& System8051::fadesForDelay() {
  if (!fadesDelay_) {
    // Measure the fault-free critical path, then rebuild the device with a
    // clock period sitting just above it so that injected delays can push
    // individual paths past setup.
    fpga::Device probe(impl_.spec);
    probe.writeFullBitstream(impl_.bitstream);
    probe.setTimingEnabled(true);
    probe.settle();
    const double maxArrival = probe.timingReport().maxArrivalNs;

    fpga::DeviceSpec spec = impl_.spec;
    spec.clockPeriodNs = maxArrival + spec.ffSetupNs + 0.35;
    delayDevice_ = std::make_unique<fpga::Device>(spec);
    fadesDelay_ = std::make_unique<core::FadesTool>(
        *delayDevice_, impl_, workload_.cycles, fadesOptions());
  }
  return *fadesDelay_;
}

vfit::VfitTool& System8051::vfit() {
  if (!vfit_) {
    vfit::VfitOptions opt;
    opt.observedOutputs = {"p0", "p1"};
    vfit_ = std::make_unique<vfit::VfitTool>(nl_, workload_.cycles, opt);
  }
  return *vfit_;
}

void System8051::printHeadline() const {
  const auto& s = impl_.stats;
  std::printf(
      "System under test: MC8051 subset + %s (%llu cycles; paper: 1303)\n"
      "Implementation on %s: %u LUTs, %u FFs, %u memory blocks "
      "(paper: 5310 LUTs, 637 FFs of 24576)\n\n",
      workload_.name.c_str(),
      static_cast<unsigned long long>(workload_.cycles),
      impl_.spec.name.c_str(), s.luts, s.flops, s.memBlocks);
}

std::string withPaper(double measured, const std::string& paper,
                      int decimals) {
  return common::fixed(measured, decimals) + " (paper: " + paper + ")";
}

std::string pct3(const campaign::CampaignResult& r) {
  return common::fixed(r.failurePct(), 1) + " / " +
         common::fixed(r.latentPct(), 1) + " / " +
         common::fixed(r.silentPct(), 1);
}

void printTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  if (gActiveRun != nullptr && gActiveRun->recording()) {
    gActiveRun->addTable(title, header, rows);
  }
  std::printf("%s\n%s\n", title.c_str(),
              common::renderTable(header, rows).c_str());
}

std::vector<campaign::CampaignResult> bandSweep(
    core::FadesTool& tool, campaign::FaultModel model,
    campaign::TargetClass targets, netlist::Unit unit, unsigned experiments,
    std::uint64_t seed, std::vector<std::uint32_t> pool) {
  std::vector<campaign::CampaignResult> out;
  for (const auto& band : campaign::DurationBand::paperBands()) {
    campaign::CampaignSpec spec;
    spec.model = model;
    spec.targets = targets;
    spec.unit = static_cast<int>(unit);
    spec.band = band;
    spec.experiments = experiments;
    spec.seed = seed;
    spec.targetPool = pool;
    out.push_back(runCampaign(tool, spec));
    recordCampaign(std::string(campaign::toString(model)) + ", " +
                       std::string(campaign::toString(targets)) + ", " +
                       band.label + " cycles",
                   out.back());
  }
  return out;
}

namespace {
std::map<const core::FadesTool*, std::vector<std::uint32_t>> gEligible;
}

std::vector<std::uint32_t> eligibleFlops(core::FadesTool& tool) {
  auto it = gEligible.find(&tool);
  if (it != gEligible.end()) return it->second;
  common::Rng rng(0xE11616);
  const auto all = tool.targets(campaign::FaultModel::BitFlip,
                                campaign::TargetClass::SequentialFF,
                                netlist::Unit::None);
  const int probes =
      static_cast<int>(std::max<std::size_t>(4, 1500 / all.size()));
  std::vector<std::uint32_t> eligible;
  for (auto ff : all) {
    for (int p = 0; p < probes; ++p) {
      common::Rng erng = rng.fork(ff * 37 + p);
      const auto cycle = erng.below(tool.runCycles());
      if (tool.runExperiment(campaign::FaultModel::BitFlip,
                             campaign::TargetClass::SequentialFF, ff, cycle,
                             1.0, erng) == campaign::Outcome::Failure) {
        eligible.push_back(ff);
        break;
      }
    }
  }
  gEligible[&tool] = eligible;
  return eligible;
}

std::vector<std::string> eligibleFlopNames(core::FadesTool& tool) {
  std::vector<std::string> out;
  for (auto ff : eligibleFlops(tool)) {
    out.push_back(tool.targetName(campaign::TargetClass::SequentialFF, ff));
  }
  return out;
}

std::vector<std::uint32_t> eligibleSequentialLines(core::FadesTool& tool) {
  const auto names = eligibleFlopNames(tool);
  std::vector<std::uint32_t> out;
  const auto& impl = tool.implementation();
  for (std::uint32_t i = 0; i < impl.routes.size(); ++i) {
    const auto& r = impl.routes[i];
    if (!r.sequentialSource || r.wireNodes.empty()) continue;
    for (const auto& n : names) {
      if (r.signalName == n) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace fades::bench
