#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/netlist.hpp"

namespace fades::netlist {
namespace {

using common::ErrorKind;
using common::FadesError;

// ------------------------------------------------------------ gate ops -----

struct GateTruthCase {
  GateOp op;
  // expected output for inputs (a,b,c) enumerated as bits of an index
  std::array<bool, 8> expected;
};

class GateEvalTest : public ::testing::TestWithParam<GateTruthCase> {};

TEST_P(GateEvalTest, MatchesTruthTable) {
  const auto& p = GetParam();
  for (int i = 0; i < 8; ++i) {
    const bool a = i & 1, b = i & 2, c = i & 4;
    EXPECT_EQ(evalGate(p.op, a, b, c), p.expected[i])
        << toString(p.op) << " a=" << a << " b=" << b << " c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GateEvalTest,
    ::testing::Values(
        GateTruthCase{GateOp::Const0, {0, 0, 0, 0, 0, 0, 0, 0}},
        GateTruthCase{GateOp::Const1, {1, 1, 1, 1, 1, 1, 1, 1}},
        GateTruthCase{GateOp::Buf, {0, 1, 0, 1, 0, 1, 0, 1}},
        GateTruthCase{GateOp::Not, {1, 0, 1, 0, 1, 0, 1, 0}},
        GateTruthCase{GateOp::And, {0, 0, 0, 1, 0, 0, 0, 1}},
        GateTruthCase{GateOp::Or, {0, 1, 1, 1, 0, 1, 1, 1}},
        GateTruthCase{GateOp::Xor, {0, 1, 1, 0, 0, 1, 1, 0}},
        GateTruthCase{GateOp::Nand, {1, 1, 1, 0, 1, 1, 1, 0}},
        GateTruthCase{GateOp::Nor, {1, 0, 0, 0, 1, 0, 0, 0}},
        GateTruthCase{GateOp::Xnor, {1, 0, 0, 1, 1, 0, 0, 1}},
        // Mux: c ? b : a
        GateTruthCase{GateOp::Mux, {0, 1, 0, 1, 0, 0, 1, 1}}),
    [](const auto& info) { return toString(info.param.op); });

TEST(GateOps, Arity) {
  EXPECT_EQ(arity(GateOp::Const0), 0u);
  EXPECT_EQ(arity(GateOp::Const1), 0u);
  EXPECT_EQ(arity(GateOp::Buf), 1u);
  EXPECT_EQ(arity(GateOp::Not), 1u);
  EXPECT_EQ(arity(GateOp::And), 2u);
  EXPECT_EQ(arity(GateOp::Mux), 3u);
}

// ---------------------------------------------------------- construction ----

TEST(Netlist, BuildAndQuerySmallCircuit) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  const NetId b = nl.addNet("b");
  nl.addInputPort("a", {a});
  nl.addInputPort("b", {b});
  const GateId g = nl.addGate(GateOp::And, a, b);
  const NetId y = nl.gate(g).out;
  nl.setNetName(y, "y");
  nl.addOutputPort("y", {y});

  nl.validate();
  EXPECT_EQ(nl.netCount(), 3u);
  EXPECT_EQ(nl.gateCount(), 1u);
  EXPECT_EQ(nl.findNet("y"), y);
  EXPECT_NE(nl.findInput("a"), nullptr);
  EXPECT_NE(nl.findOutput("y"), nullptr);
  EXPECT_EQ(nl.findInput("z"), nullptr);
  EXPECT_EQ(nl.driverOf(y).kind, Netlist::DriverKind::Gate);
  EXPECT_EQ(nl.driverOf(a).kind, Netlist::DriverKind::Input);
}

TEST(Netlist, DoubleDriverRejected) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  nl.addInputPort("a", {a});
  const NetId y = nl.addNet("y");
  nl.addGate(GateOp::Buf, a, {}, {}, Unit::None, y);
  EXPECT_THROW(nl.addGate(GateOp::Not, a, {}, {}, Unit::None, y), FadesError);
}

TEST(Netlist, UndrivenNetRejectedByValidate) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  nl.addInputPort("a", {a});
  nl.addNet("floating");
  try {
    nl.validate();
    FAIL() << "expected throw";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::NetlistError);
    EXPECT_NE(std::string(e.what()).find("floating"), std::string::npos);
  }
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  const NetId b = nl.addNet("b");
  nl.addGate(GateOp::Not, b, {}, {}, Unit::None, a);
  nl.addGate(GateOp::Buf, a, {}, {}, Unit::None, b);
  try {
    nl.validate();
    FAIL() << "expected throw";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::NetlistError);
  }
}

TEST(Netlist, FlopBreaksCycle) {
  Netlist nl;
  const NetId d = nl.addNet("d");
  const FlopId f = nl.addFlop(d, false, Unit::Registers, "state");
  const NetId q = nl.flop(f).q;
  nl.addGate(GateOp::Not, q, {}, {}, Unit::None, d);  // toggle flop
  nl.addOutputPort("q", {q});
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, MissingGateInputRejected) {
  Netlist nl;
  EXPECT_THROW(nl.addGate(GateOp::And, NetId{}, NetId{}), FadesError);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  nl.addInputPort("a", {a});
  const GateId g1 = nl.addGate(GateOp::Not, a);
  const GateId g2 = nl.addGate(GateOp::Not, nl.gate(g1).out);
  const GateId g3 = nl.addGate(GateOp::And, nl.gate(g1).out, nl.gate(g2).out);
  const auto order = nl.topoOrder();
  auto pos = [&](GateId id) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(g1), pos(g2));
  EXPECT_LT(pos(g2), pos(g3));
  EXPECT_EQ(order.size(), 3u);
}

// ----------------------------------------------------------------- RAM -----

TEST(Netlist, RamConstruction) {
  Netlist nl;
  std::vector<NetId> addr, din;
  for (int i = 0; i < 4; ++i) addr.push_back(nl.addNet());
  for (int i = 0; i < 8; ++i) din.push_back(nl.addNet());
  const NetId we = nl.addNet("we");
  nl.addInputPort("addr", addr);
  nl.addInputPort("din", din);
  nl.addInputPort("we", {we});

  const RamId id = nl.addRam(4, 8, addr, din, we, {}, Unit::Ram, "mem");
  const auto& ram = nl.ram(id);
  EXPECT_EQ(ram.depth(), 16u);
  EXPECT_EQ(ram.dataOut.size(), 8u);
  EXPECT_FALSE(ram.isRom());
  nl.addOutputPort("dout", ram.dataOut);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, RomHasNoWritePort) {
  Netlist nl;
  std::vector<NetId> addr;
  for (int i = 0; i < 3; ++i) addr.push_back(nl.addNet());
  nl.addInputPort("addr", addr);
  std::vector<std::uint8_t> init(8, 0);
  init[5] = 0xAB;
  const RamId id = nl.addRam(3, 8, addr, {}, NetId{}, init, Unit::Ram, "rom");
  EXPECT_TRUE(nl.ram(id).isRom());
  EXPECT_EQ(nl.ram(id).initWord(5), 0xABu);
  nl.addOutputPort("dout", nl.ram(id).dataOut);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, RamInitWordRoundTrip) {
  Netlist nl;
  std::vector<NetId> addr;
  for (int i = 0; i < 2; ++i) addr.push_back(nl.addNet());
  nl.addInputPort("addr", addr);
  const RamId id = nl.addRam(2, 13, addr, {}, NetId{}, {}, Unit::Ram, "r");
  nl.ram(id).setInitWord(3, 0x1FFF);
  EXPECT_EQ(nl.ram(id).initWord(3), 0x1FFFu);
  nl.ram(id).setInitWord(3, 0x0155);
  EXPECT_EQ(nl.ram(id).initWord(3), 0x0155u);
}

TEST(Netlist, RamWidthMismatchRejected) {
  Netlist nl;
  std::vector<NetId> addr{nl.addNet()};
  nl.addInputPort("a", addr);
  EXPECT_THROW(nl.addRam(2, 8, addr, {}, NetId{}, {}, Unit::Ram, "bad"),
               FadesError);
}

// --------------------------------------------------------------- stats -----

TEST(Netlist, StatsCountPerUnit) {
  Netlist nl;
  const NetId a = nl.addNet("a");
  nl.addInputPort("a", {a});
  nl.addGate(GateOp::Not, a, {}, {}, Unit::Alu);
  nl.addGate(GateOp::Buf, a, {}, {}, Unit::Alu);
  nl.addGate(GateOp::Buf, a, {}, {}, Unit::Fsm);
  nl.addFlop(a, false, Unit::Registers, "r0");
  const auto s = nl.stats();
  EXPECT_EQ(s.gates, 3u);
  EXPECT_EQ(s.flops, 1u);
  EXPECT_EQ(s.gatesPerUnit.at(Unit::Alu), 2u);
  EXPECT_EQ(s.gatesPerUnit.at(Unit::Fsm), 1u);
  EXPECT_EQ(s.flopsPerUnit.at(Unit::Registers), 1u);
  EXPECT_EQ(s.inputBits, 1u);
}

TEST(Netlist, UnitNames) {
  EXPECT_STREQ(toString(Unit::Alu), "alu");
  EXPECT_STREQ(toString(Unit::MemCtrl), "memctrl");
  EXPECT_STREQ(toString(Unit::Fsm), "fsm");
}

}  // namespace
}  // namespace fades::netlist
