#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "fpga/device.hpp"
#include "rtl/builder.hpp"
#include "sim/simulator.hpp"
#include "synth/implement.hpp"
#include "synth/techmap.hpp"

namespace fades::synth {
namespace {

using common::Rng;
using fpga::Device;
using fpga::DeviceSpec;
using netlist::Netlist;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;
using rtl::Register;
using sim::Simulator;

// -------------------------------------------------------------- techmap -----

TEST(Techmap, ConstantAndBufferFolding) {
  Builder b;
  auto a = b.inputBit("a");
  // y = (a AND 1) OR 0 -> just a, through a buffer chain.
  auto y = b.lor(b.land(a, b.one()), b.zero());
  b.output("y", y);
  Netlist nl = b.finish();
  const auto mapped = techmap(nl);
  // One LUT suffices (or zero if folding reduced to the input itself; the
  // visible net is gate-driven here, so exactly one).
  EXPECT_LE(mapped.luts.size(), 1u);
  if (!mapped.luts.empty()) {
    EXPECT_EQ(mapped.luts[0].leafCount, 1u);
    EXPECT_EQ(mapped.luts[0].table & 0x3, 0x2u);  // identity in i0
  }
}

TEST(Techmap, ConeMergingRespectsLutCapacity) {
  Builder b;
  Bus in = b.input("in", 8);
  // 8-input AND tree: needs at least ceil over 4-LUTs = 3 LUTs, and the
  // greedy cover should not need more than 4.
  auto y = b.andAll(in);
  b.output("y", y);
  Netlist nl = b.finish();
  const auto mapped = techmap(nl);
  EXPECT_GE(mapped.luts.size(), 3u);
  EXPECT_LE(mapped.luts.size(), 4u);
  for (const auto& l : mapped.luts) EXPECT_LE(l.leafCount, 4u);
}

TEST(Techmap, SharedSubexpressionBecomesItsOwnLut) {
  Builder b;
  auto a = b.inputBit("a");
  auto c = b.inputBit("c");
  auto shared = b.lxor(a, c);  // consumed twice -> must be a physical LUT
  b.output("y1", b.land(shared, a));
  b.output("y2", b.lor(shared, c));
  Netlist nl = b.finish();
  const auto mapped = techmap(nl);
  EXPECT_EQ(mapped.luts.size(), 3u);
}

TEST(Techmap, MappedTablesMatchGateSemantics) {
  // Random 2-level logic: exhaustively verify every LUT's table against
  // direct netlist evaluation through the simulator.
  Builder b;
  Bus in = b.input("in", 4);
  auto t1 = b.lxor(b.land(in[0], in[1]), in[2]);
  auto t2 = b.lor(b.lnot(in[3]), t1);
  auto t3 = b.lmux(in[0], t2, t1);
  b.output("y", t3);
  Netlist nl = b.finish();
  Simulator s(nl);
  const auto mapped = techmap(nl);

  for (unsigned v = 0; v < 16; ++v) {
    s.setInput("in", v);
    s.settle();
    for (const auto& lut : mapped.luts) {
      std::vector<bool> leaves;
      for (unsigned k = 0; k < lut.leafCount; ++k) {
        leaves.push_back(s.netValue(lut.leaves[k]));
      }
      EXPECT_EQ(evalMappedLut(lut, leaves), s.netValue(lut.out))
          << "net " << nl.netName(lut.out) << " input " << v;
    }
  }
}

// ------------------------------------------------ emulate == simulate -----

/// Drives the simulator and the configured device in lock-step and compares
/// all outputs every cycle.
struct Equivalence {
  Netlist nl;
  std::unique_ptr<Simulator> simulator;
  std::unique_ptr<Device> device;
  std::unique_ptr<Implementation> impl;
  std::unique_ptr<EmulatedSystem> system;

  void build(Netlist&& netlist, const DeviceSpec& spec) {
    nl = std::move(netlist);
    simulator = std::make_unique<Simulator>(nl);
    impl = std::make_unique<Implementation>(implement(nl, spec));
    device = std::make_unique<Device>(spec);
    device->writeFullBitstream(impl->bitstream);
    system = std::make_unique<EmulatedSystem>(*device, *impl);
  }

  void setInputs(const std::string& port, std::uint64_t v) {
    simulator->setInput(port, v);
    system->setInput(port, v);
  }

  ::testing::AssertionResult outputsMatch() {
    simulator->settle();
    system->settle();
    for (const auto& p : nl.outputs()) {
      const auto sv = simulator->portValue(p.name);
      const auto dv = system->portValue(p.name);
      if (sv != dv) {
        return ::testing::AssertionFailure()
               << "port " << p.name << ": sim=" << sv << " fpga=" << dv
               << " at cycle " << simulator->cycle();
      }
    }
    return ::testing::AssertionSuccess();
  }

  void step() {
    simulator->step();
    system->step();
  }
};

TEST(Implement, CounterMatchesSimulator) {
  Builder b;
  b.setUnit(Unit::Registers);
  Register count = b.makeRegister("count", 8, 0);
  b.setUnit(Unit::Alu);
  b.connect(count, b.increment(count.q));
  b.output("count", count.q);

  Equivalence eq;
  eq.build(b.finish(), DeviceSpec::small());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(eq.outputsMatch());
    eq.step();
  }
  EXPECT_EQ(eq.system->portValue("count"), 50u);
}

TEST(Implement, CombinationalAluSliceMatches) {
  Builder b;
  Bus a = b.input("a", 4);
  Bus c = b.input("c", 4);
  auto sum = b.add(a, c, {});
  b.output("sum", sum.sum);
  b.output("cout", sum.carryOut);
  b.output("eq", b.eq(a, c));

  Equivalence eq;
  eq.build(b.finish(), DeviceSpec::small());
  for (unsigned x = 0; x < 16; ++x) {
    for (unsigned y = 0; y < 16; ++y) {
      eq.setInputs("a", x);
      eq.setInputs("c", y);
      ASSERT_TRUE(eq.outputsMatch()) << x << "+" << y;
    }
  }
}

TEST(Implement, RamCircuitMatches) {
  Builder b;
  Bus addr = b.input("addr", 4);
  Bus din = b.input("din", 8);
  auto we = b.inputBit("we");
  Bus dout = b.ram("mem", 4, 8, addr, din, we);
  b.output("dout", dout);

  Equivalence eq;
  eq.build(b.finish(), DeviceSpec::small());
  Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    eq.setInputs("addr", rng.below(16));
    eq.setInputs("din", rng.below(256));
    eq.setInputs("we", rng.below(2));
    ASSERT_TRUE(eq.outputsMatch()) << "iteration " << i;
    eq.step();
  }
}

TEST(Implement, RomWithInitMatches) {
  Builder b;
  Bus addr = b.input("addr", 4);
  std::vector<std::uint8_t> init(16);
  for (int i = 0; i < 16; ++i) init[i] = static_cast<std::uint8_t>(i * 13 + 7);
  b.output("data", b.rom("rom", 4, 8, addr, init));
  Equivalence eq;
  eq.build(b.finish(), DeviceSpec::small());
  for (unsigned a = 0; a < 16; ++a) {
    eq.setInputs("addr", a);
    eq.step();
    ASSERT_TRUE(eq.outputsMatch()) << "addr " << a;
    EXPECT_EQ(eq.system->portValue("data"), (a * 13 + 7) & 0xFF);
  }
}

/// Random sequential circuits: registers with random next-state logic.
Netlist randomCircuit(std::uint64_t seed, unsigned gateBudget) {
  Rng rng(seed);
  Builder b;
  Bus in = b.input("in", 6);
  std::vector<Register> regs;
  const unsigned nRegs = 3 + static_cast<unsigned>(rng.below(4));
  for (unsigned r = 0; r < nRegs; ++r) {
    regs.push_back(b.makeRegister("r" + std::to_string(r), 4, rng.below(16)));
  }
  // Pool of usable nets.
  std::vector<rtl::NetId> pool = in;
  for (const auto& r : regs) {
    pool.insert(pool.end(), r.q.begin(), r.q.end());
  }
  for (unsigned g = 0; g < gateBudget; ++g) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    rtl::NetId out;
    switch (rng.below(5)) {
      case 0: out = b.land(pick(), pick()); break;
      case 1: out = b.lor(pick(), pick()); break;
      case 2: out = b.lxor(pick(), pick()); break;
      case 3: out = b.lnot(pick()); break;
      default: out = b.lmux(pick(), pick(), pick()); break;
    }
    pool.push_back(out);
  }
  for (auto& r : regs) {
    Bus d;
    for (int k = 0; k < 4; ++k) d.push_back(pool[rng.below(pool.size())]);
    b.connect(r, d);
  }
  Bus outBus;
  for (int k = 0; k < 8; ++k) outBus.push_back(pool[rng.below(pool.size())]);
  b.output("out", outBus);
  return b.finish();
}

class RandomCircuitEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuitEquivalence, DeviceMatchesSimulatorForManyCycles) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Equivalence eq;
  eq.build(randomCircuit(seed, 40), DeviceSpec::small());
  Rng rng(seed ^ 0xABCDEF);
  for (int cycle = 0; cycle < 120; ++cycle) {
    eq.setInputs("in", rng.below(64));
    ASSERT_TRUE(eq.outputsMatch()) << "seed " << seed << " cycle " << cycle;
    eq.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitEquivalence,
                         ::testing::Range(1, 13));

// --------------------------------------------------------- location map -----

TEST(Implement, LocationMapCoversAllRegisters) {
  Builder b;
  b.setUnit(Unit::Registers);
  Register acc = b.makeRegister("acc", 8, 0);
  b.setUnit(Unit::Fsm);
  Register state = b.makeRegister("state", 3, 1);
  b.setUnit(Unit::Alu);
  b.connect(acc, b.increment(acc.q));
  b.connect(state, b.increment(state.q));
  b.output("acc", acc.q);
  b.output("state", state.q);
  Netlist nl = b.finish();
  const auto impl = implement(nl, DeviceSpec::small());

  // Every HDL register bit has a located CB.
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(impl.findFlop("acc[" + std::to_string(i) + "]"), nullptr);
  }
  EXPECT_EQ(impl.findFlop("acc[3]")->unit, Unit::Registers);
  EXPECT_EQ(impl.findFlop("state[0]")->unit, Unit::Fsm);
  EXPECT_EQ(impl.flopsInUnit(Unit::Registers).size(), 8u);
  EXPECT_EQ(impl.flopsInUnit(Unit::Fsm).size(), 3u);
  // Units separate combinational logic too.
  EXPECT_FALSE(impl.lutsInUnit(Unit::Alu).empty());
  // All flop sites land on distinct CBs.
  std::set<std::pair<int, int>> sites;
  for (const auto& f : impl.flops) {
    EXPECT_TRUE(sites.insert({f.cb.x, f.cb.y}).second);
  }
}

TEST(Implement, RoutesCarrySequentialFlag) {
  Builder b;
  b.setUnit(Unit::Registers);
  Register r = b.makeRegister("r", 2, 0);
  b.setUnit(Unit::Alu);
  b.connect(r, b.bXor(r.q, b.constant(3, 2)));
  b.output("r", r.q);
  Netlist nl = b.finish();
  const auto impl = implement(nl, DeviceSpec::small());
  const auto seq = impl.routesInUnit(Unit::None, true);
  EXPECT_FALSE(seq.empty());
  for (auto i : seq) {
    EXPECT_TRUE(impl.routes[i].sequentialSource);
    EXPECT_FALSE(impl.routes[i].wireNodes.empty());
    EXPECT_FALSE(impl.routes[i].transistorBits.empty());
  }
}

TEST(Implement, RamLocationMapAddressesBits) {
  Builder b;
  Bus addr = b.input("addr", 4);
  Bus din = b.input("din", 8);
  b.setUnit(Unit::Ram);
  Bus dout = b.ram("mem", 4, 8, addr, din, b.inputBit("we"));
  b.output("dout", dout);
  Netlist nl = b.finish();
  const auto impl = implement(nl, DeviceSpec::small());
  const auto* ram = impl.findRam("mem");
  ASSERT_NE(ram, nullptr);
  EXPECT_EQ(ram->dataBits, 8u);
  const auto [block, bit] = ram->bitAddress(5, 3);
  EXPECT_LT(block, DeviceSpec::small().memBlocks);
  EXPECT_EQ(bit, 5u * 8u + 3u);
}

TEST(Implement, StatsAreConsistent) {
  Equivalence eq;
  eq.build(randomCircuit(99, 60), DeviceSpec::small());
  const auto& s = eq.impl->stats;
  EXPECT_EQ(s.luts, eq.impl->luts.size());
  EXPECT_EQ(s.flops, eq.impl->flops.size());
  EXPECT_EQ(s.routedNets, eq.impl->routes.size());
  EXPECT_GT(s.configBits, 0u);
  EXPECT_EQ(s.configBits, eq.impl->bitstream.logic.popcount());
}

TEST(Implement, TooManyMemoriesRejected) {
  Builder b;
  Bus addr = b.input("addr", 4);
  // The small device has 2 memory blocks; ask for 3.
  for (int i = 0; i < 3; ++i) {
    b.output("d" + std::to_string(i),
             b.rom("rom" + std::to_string(i), 4, 8, addr,
                   std::vector<std::uint8_t>(16, 7)));
  }
  Netlist nl = b.finish();
  try {
    implement(nl, DeviceSpec::small());
    FAIL() << "expected capacity error";
  } catch (const common::FadesError& e) {
    EXPECT_EQ(e.kind(), common::ErrorKind::CapacityError);
  }
}

TEST(Implement, TooDeepMemoryRejected) {
  Builder b;
  Bus addr = b.input("addr", 10);
  // 1024 x 8 = 8192 bits > the small device's 2048-bit blocks at width 8.
  b.output("d", b.rom("deep", 10, 8, addr,
                      std::vector<std::uint8_t>(1024, 1)));
  Netlist nl = b.finish();
  EXPECT_THROW(implement(nl, DeviceSpec::small()), common::FadesError);
}

TEST(Implement, WideMemorySplitsAcrossBlocks) {
  Builder b;
  Bus addr = b.input("addr", 3);
  std::vector<std::uint8_t> init(8 * 3, 0);  // 20-bit rows -> 3 bytes each
  init[0] = 0xAB;
  init[1] = 0xCD;
  init[2] = 0x01;  // row 0 = 0x1CDAB
  b.output("d", b.rom("wide", 3, 20, addr, init));
  Netlist nl = b.finish();
  const auto impl = implement(nl, DeviceSpec::small());
  const auto* site = impl.findRam("wide");
  ASSERT_NE(site, nullptr);
  ASSERT_EQ(site->slices.size(), 2u);  // 16 + 4
  EXPECT_EQ(site->slices[0].width + site->slices[1].width, 20u);

  // And it still reads correctly end to end.
  fpga::Device dev(DeviceSpec::small());
  dev.writeFullBitstream(impl.bitstream);
  EmulatedSystem sys(dev, impl);
  sys.setInput("addr", 0);
  sys.step();
  EXPECT_EQ(sys.portValue("d"), 0x1CDABu);
}

TEST(Implement, SeedChangesPlacementNotBehaviour) {
  Builder b1, b2;
  for (Builder* b : {&b1, &b2}) {
    Bus a = b->input("a", 4);
    Bus c = b->input("c", 4);
    b->output("y", b->add(a, c, {}).sum);
  }
  Netlist n1 = b1.finish(), n2 = b2.finish();
  SynthOptions o1, o2;
  o1.seed = 1;
  o2.seed = 999;
  const auto i1 = implement(n1, DeviceSpec::small(), o1);
  const auto i2 = implement(n2, DeviceSpec::small(), o2);
  // Different bitstreams (placement differs) ...
  EXPECT_NE(i1.bitstream.logic, i2.bitstream.logic);
  // ... same function.
  fpga::Device d1(DeviceSpec::small()), d2(DeviceSpec::small());
  d1.writeFullBitstream(i1.bitstream);
  d2.writeFullBitstream(i2.bitstream);
  EmulatedSystem s1(d1, i1), s2(d2, i2);
  for (unsigned a = 0; a < 16; a += 3) {
    for (unsigned c = 0; c < 16; c += 2) {
      s1.setInput("a", a);
      s1.setInput("c", c);
      s2.setInput("a", a);
      s2.setInput("c", c);
      s1.settle();
      s2.settle();
      ASSERT_EQ(s1.portValue("y"), s2.portValue("y"));
    }
  }
}

TEST(Implement, TooManyCellsRejected) {
  Builder b;
  // 200 registers cannot fit in a 12x12 device (144 CBs).
  for (int i = 0; i < 200; ++i) {
    Register r = b.makeRegister("r" + std::to_string(i), 1, 0);
    b.connect(r, Bus{b.lnot(r.q[0])});
  }
  Netlist nl = b.finish();
  EXPECT_THROW(implement(nl, DeviceSpec::small()), common::FadesError);
}

}  // namespace
}  // namespace fades::synth
