// Fault-injection campaign on the MC8051 microcontroller, configurable from
// the command line - the closest analogue of the paper's FADES experiments
// set-up tool (Figure 9).
//
// Usage:
//   campaign_8051 [--tool fades|vfit|autonomous] [--engine event|compiled]
//                 [--jobs N|auto] [--no-cache] [--link-faults R]
//                 [--checkpoint FILE] [--resume] [--fsync]
//                 [model] [targets] [unit] [faults] [band] [artifact.json]
//     --tool   which injector runs the campaign: fades (run-time
//              reconfiguration on the emulated FPGA, the default), vfit
//              (simulator commands on the HDL model) or autonomous
//              (injection support compiled into the design - masks, shadow
//              state and single-cycle restore; zero configuration bytes
//              per injection).
//     --engine execution engine for the simulator-backed tools: event
//              (event-driven replay, default) or compiled (63 experiments
//              per bit-parallel wave). Outcomes and artifacts are
//              bit-identical either way; only wall-clock changes. Requires
//              --tool vfit or autonomous.
//     --jobs N shard the campaign across N worker threads, each with its
//              own device replica ("auto" = one per hardware thread; env
//              FADES_JOBS is the fallback; default 1). Changes wall-clock
//              only: outcomes, records, modeled times and the written
//              artifact are bit-identical for every N.
//     --no-cache disable the session-scoped frame transaction cache in the
//              configuration port. Like --jobs this changes wall-clock
//              only; the artifact stays bit-identical either way.
//     --link-faults R emulate an unreliable board link: each transfer hits
//              a readback CRC mismatch / transient write failure with
//              probability R (and a timeout with R/10), retried with
//              bounded exponential backoff. Deterministic per campaign
//              seed, and the artifact stays byte-identical to a fault-free
//              run (persistent failures quarantine the experiment).
//     --checkpoint FILE append every completed experiment to a crash-safe
//              JSONL journal; with --resume, journaled experiments are
//              folded back in instead of re-run, producing an artifact
//              byte-identical to an uninterrupted run.
//     --resume requires --checkpoint; tolerates a torn trailing journal
//              line from a killed run.
//     --fsync  fsync the journal after every record (power-loss
//              durability; default flushes to the OS only).
//     --prune  liveness-based fault-list pruning: derive a fades.prune/1
//              plan from the golden run, execute one representative per
//              provably-equivalent class and synthesize the collapsed
//              members from it. Outcome totals, records and the written
//              artifact stay byte-identical to the unpruned campaign
//              (collapsed records additionally carry `pruned_from`); only
//              the executed-experiment count - and so wall-clock - drops.
//              Requires --tool fades or vfit and no --link-faults.
//     --prune-plan FILE with --prune, also write the derived plan JSON
//              (equivalence classes + collapse accounting) to FILE.
//     model    bitflip | pulse | delay | indet        (default bitflip)
//     targets  ff | memory | lut | seqline | combline  (default ff)
//     unit     any | registers | ram | alu | mem | fsm (default any)
//     faults   experiment count, > 0                   (default 200)
//     band     sub | short | long                      (default short)
//     artifact write a fades.run/1 JSON (or .jsonl) run artifact here,
//              with one record per experiment
//
// Example: ./build/examples/campaign_8051 --jobs 8 pulse lut alu 300 long
//          run.json
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "campaign/artifact.hpp"
#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "campaign/prune_plan.hpp"
#include "campaign/types.hpp"
#include "netlist/netlist.hpp"
#include "service/jobspec.hpp"
#include "sim/engine.hpp"

using namespace fades;

namespace {

constexpr const char* kUsage =
    "usage: campaign_8051 [--tool fades|vfit|autonomous]\n"
    "                     [--engine event|compiled]\n"
    "                     [--jobs N|auto] [--no-cache] [--link-faults R]\n"
    "                     [--checkpoint FILE] [--resume] [--fsync]\n"
    "                     [--prune] [--prune-plan FILE]\n"
    "                     [model] [targets] [unit] [faults] [band]\n"
    "                     [artifact.json]\n"
    "  model   bitflip | pulse | delay | indet         (default bitflip)\n"
    "  targets ff | memory | lut | seqline | combline  (default ff)\n"
    "  unit    any | registers | ram | alu | mem | fsm (default any)\n"
    "  faults  experiment count, > 0                   (default 200)\n"
    "  band    sub | short | long                      (default short)\n";

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

/// Strict positive-integer parse: rejects empty input, non-digits, zero and
/// overflow instead of inheriting strtoul's silent 0 / wraparound.
unsigned parsePositive(const std::string& text, const char* what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    usageError(std::string(what) + " expects a positive integer, got '" +
               text + "'");
  }
  errno = 0;
  const unsigned long value = std::strtoul(text.c_str(), nullptr, 10);
  if (errno != 0 || value == 0 || value > UINT_MAX) {
    usageError(std::string(what) + " expects a positive integer, got '" +
               text + "'");
  }
  return static_cast<unsigned>(value);
}

/// Worker count: a positive integer, or "auto" for one per hardware thread.
unsigned parseJobs(const std::string& text, const char* what) {
  if (text == "auto") return 0;  // runner resolves 0 to hardware concurrency
  return parsePositive(text, what);
}

double parseRate(const std::string& text, const char* what) {
  if (text.empty()) usageError(std::string(what) + " expects a probability");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() || !(value >= 0.0) ||
      value >= 1.0) {
    usageError(std::string(what) + " expects a probability in [0, 1), got '" +
               text + "'");
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags may appear anywhere; everything else is positional.
  unsigned jobs = 1;
  bool frameCache = true;
  double linkFaultRate = 0.0;
  std::string checkpointPath;
  bool resume = false;
  bool fsyncEachRecord = false;
  bool prune = false;
  std::string prunePlanPath;
  std::string toolArg = "fades";
  std::string engineArg;
  if (const char* env = std::getenv("FADES_JOBS")) {
    jobs = parseJobs(env, "FADES_JOBS");
  }
  std::vector<std::string> positional;
  auto flagValue = [&](int& i, const char* flag) {
    if (i + 1 >= argc) usageError(std::string(flag) + " needs a value");
    return std::string(argv[++i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs") {
      jobs = parseJobs(flagValue(i, "--jobs"), "--jobs");
    } else if (a == "--no-cache") {
      frameCache = false;
    } else if (a == "--link-faults") {
      linkFaultRate = parseRate(flagValue(i, "--link-faults"), "--link-faults");
    } else if (a == "--checkpoint") {
      checkpointPath = flagValue(i, "--checkpoint");
    } else if (a == "--resume") {
      resume = true;
    } else if (a == "--fsync") {
      fsyncEachRecord = true;
    } else if (a == "--prune") {
      prune = true;
    } else if (a == "--prune-plan") {
      prunePlanPath = flagValue(i, "--prune-plan");
      prune = true;
    } else if (a == "--tool") {
      toolArg = flagValue(i, "--tool");
    } else if (a == "--engine") {
      engineArg = flagValue(i, "--engine");
    } else if (!a.empty() && a[0] == '-') {
      usageError("unknown flag '" + a + "'");
    } else {
      positional.push_back(a);
    }
  }
  if (resume && checkpointPath.empty()) {
    usageError("--resume requires --checkpoint FILE");
  }
  if (toolArg != "fades" && toolArg != "vfit" && toolArg != "autonomous") {
    usageError("--tool expects fades, vfit or autonomous, got '" + toolArg +
               "'");
  }
  sim::EngineKind engineKind = sim::EngineKind::EventDriven;
  if (!engineArg.empty()) {
    if (toolArg == "fades") {
      usageError("--engine requires --tool vfit or autonomous (FADES drives "
                 "the FPGA)");
    }
    if (!sim::engineKindFromString(engineArg, engineKind)) {
      usageError("--engine expects event or compiled, got '" + engineArg +
                 "'");
    }
  }
  if (toolArg != "fades" && linkFaultRate > 0.0) {
    usageError("--link-faults requires --tool fades (the other injectors "
               "move no frames over a board link)");
  }
  if (prune && toolArg == "autonomous") {
    usageError("--prune requires --tool fades or vfit (the autonomous "
               "backend cannot synthesize collapsed outcomes)");
  }
  if (prune && linkFaultRate > 0.0) {
    usageError("--prune requires a reliable link: a faulted link can "
               "quarantine a class representative its members would have "
               "survived, breaking byte-identity with the unpruned run");
  }
  if (positional.size() > 6) {
    usageError("too many positional arguments");
  }
  auto arg = [&](std::size_t i, const char* def) {
    return i < positional.size() ? positional[i] : std::string(def);
  };
  const std::string modelArg = arg(0, "bitflip");
  const std::string targetArg = arg(1, "ff");
  const std::string unitArg = arg(2, "any");
  const unsigned faults = parsePositive(arg(3, "200"), "faults");
  const std::string bandArg = arg(4, "short");
  const std::string artifactPath = arg(5, "");

  // The job spec is the same structure the distributed service ships to
  // workers, and the system is built through the same service::buildSystem -
  // so "coordinator + workers" and "this CLI at --jobs 1" produce artifacts
  // that are byte-identical by construction, not by parallel maintenance of
  // two setups.
  service::JobSpec job;
  job.tool = toolArg;
  job.engine = engineArg.empty() ? "event" : engineArg;
  job.workload = "bubblesort6";
  job.linkFaultRate = linkFaultRate;
  job.prune = prune;
  // Console detail only for small campaigns, but an artifact request keeps
  // the per-experiment records regardless so the JSON carries every row.
  job.keepRecords = faults <= 40 || !artifactPath.empty();
  job.name = modelArg + "_" + targetArg + "_" + unitArg;
  job.spec.experiments = faults;
  job.spec.seed = 2006;
  job.spec.model = modelArg == "pulse"   ? campaign::FaultModel::Pulse
               : modelArg == "delay" ? campaign::FaultModel::Delay
               : modelArg == "indet" ? campaign::FaultModel::Indetermination
                                     : campaign::FaultModel::BitFlip;
  job.spec.targets = targetArg == "memory"     ? campaign::TargetClass::MemoryBlockBit
                 : targetArg == "lut"      ? campaign::TargetClass::CombinationalLut
                 : targetArg == "seqline"  ? campaign::TargetClass::SequentialLine
                 : targetArg == "combline" ? campaign::TargetClass::CombinationalLine
                                           : campaign::TargetClass::SequentialFF;
  job.spec.unit = static_cast<int>(unitArg == "registers" ? netlist::Unit::Registers
                               : unitArg == "ram"      ? netlist::Unit::Ram
                               : unitArg == "alu"      ? netlist::Unit::Alu
                               : unitArg == "mem"      ? netlist::Unit::MemCtrl
                               : unitArg == "fsm"      ? netlist::Unit::Fsm
                                                       : netlist::Unit::None);
  job.spec.band = bandArg == "sub"    ? campaign::DurationBand::subCycle()
              : bandArg == "long" ? campaign::DurationBand::longBand()
                                  : campaign::DurationBand::shortBand();
  const campaign::CampaignSpec& spec = job.spec;

  std::printf("Building the MC8051 + Bubblesort system...\n");
  service::BuildKnobs knobs;
  knobs.sessionFrameCache = frameCache;
  const auto system = service::buildSystem(job, knobs);

  // Both jobs paths run every experiment through the same stateless
  // per-index derivation, so the runner yields bit-identical results for
  // any worker count - only the wall-clock changes.
  campaign::ParallelOptions popt;
  popt.jobs = jobs;
  popt.progressInterval = 100;
  campaign::PrunePlan plan;
  if (prune) {
    std::printf("Deriving the fault-list prune plan from the golden run...\n");
    plan = service::buildPrunePlan(*system);
    std::printf("%s\n", campaign::accountingLine(plan).c_str());
    if (!prunePlanPath.empty()) {
      const std::string text = campaign::toJson(plan).dump(2) + "\n";
      FILE* f = std::fopen(prunePlanPath.c_str(), "w");
      bool ok = f != nullptr &&
                std::fwrite(text.data(), 1, text.size(), f) == text.size();
      if (f != nullptr) ok = (std::fclose(f) == 0) && ok;
      if (!ok) {
        std::fprintf(stderr, "error: cannot write prune plan to %s\n",
                     prunePlanPath.c_str());
        return 1;
      }
      std::printf("Wrote prune plan: %s (%zu classes)\n",
                  prunePlanPath.c_str(), plan.classes.size());
    }
    popt.prunePlan = &plan;
  }
  std::unique_ptr<campaign::CampaignJournal> journal;
  if (!checkpointPath.empty()) {
    journal = std::make_unique<campaign::CampaignJournal>(
        checkpointPath, fsyncEachRecord ? campaign::FsyncPolicy::EachRecord
                                        : campaign::FsyncPolicy::Never);
    popt.journal = journal.get();
    popt.resume = resume;
  }
  campaign::ParallelCampaignRunner runner(system->factory, popt);

  std::printf("Running %u %s faults on %s",
              spec.experiments, campaign::toString(spec.model),
              campaign::toString(spec.targets));
  std::printf(" (tool %s%s%s, unit %s, duration %s cycles, %u worker%s)...\n",
              toolArg.c_str(), toolArg != "fades" ? " engine " : "",
              toolArg != "fades" ? sim::toString(engineKind) : "",
              unitArg.c_str(), spec.band.label.c_str(), runner.jobs(),
              runner.jobs() == 1 ? "" : "s");
  const auto result = runner.run(spec);

  std::printf("\nResults of %zu experiments:\n", result.total());
  std::printf("  failures: %5zu (%.2f %%)\n", result.failures,
              result.failurePct());
  std::printf("  latent:   %5zu (%.2f %%)\n", result.latents,
              result.latentPct());
  std::printf("  silent:   %5zu (%.2f %%)\n", result.silents,
              result.silentPct());
  std::printf("  modeled emulation time: %.3f s/fault (total %.0f s for the "
              "campaign)\n",
              result.modeledSeconds.mean(), result.modeledSeconds.sum());
  if (!result.quarantined.empty()) {
    std::printf("  quarantined: %zu experiment(s) after persistent transient "
                "errors:\n",
                result.quarantined.size());
    for (const auto& q : result.quarantined) {
      std::printf("    #%llu  %s (%u attempts): %s\n",
                  static_cast<unsigned long long>(q.index),
                  common::toString(q.kind), q.attempts, q.error.c_str());
    }
  }
  if (faults <= 40) {
    for (const auto& r : result.records) {
      std::printf("    cycle %5llu  %-10s  dur %5.2f  %s\n",
                  static_cast<unsigned long long>(r.injectCycle),
                  r.targetName.c_str(), r.durationCycles,
                  campaign::toString(r.outcome));
    }
  }
  if (!artifactPath.empty()) {
    // Exclude the process metrics snapshot: it reflects replica setup and
    // scheduling, which would break the artifact's --jobs byte-identity.
    const auto artifact = campaign::toRunArtifact(
        result, modelArg + "_" + targetArg + "_" + unitArg,
        /*includeMetrics=*/false);
    // Don't let a bad path abort after minutes of campaign: report and fail.
    try {
      if (artifactPath.size() > 6 &&
          artifactPath.substr(artifactPath.size() - 6) == ".jsonl") {
        artifact.writeJsonl(artifactPath);
      } else {
        artifact.writeJson(artifactPath);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("Wrote run artifact: %s (%zu records)\n",
                artifactPath.c_str(), artifact.recordCount());
  }
  return 0;
}
