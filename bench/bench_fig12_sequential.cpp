// Figure 12: delay and indetermination faults into sequential logic, by
// fault duration. Paper trends: failure percentage grows with duration for
// both; indeterminations approach bit-flip severity (29.53 / 45.9 / 61.4 %
// failures), delays are notably less likely to fail (5.7 / 18.6 / 31.67 %)
// because the correct value is merely late.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("fig12_sequential", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = classifyCount(300);
  const unsigned nDelay = std::min(n, 150u);

  // Like the paper, faults are confined to the registers that the location
  // scan found capable of causing failures (Section 6.3).
  const auto pool = eligibleFlops(sys.fades());
  std::printf("Eligible FFs: %zu\n\n", pool.size());
  const auto indet =
      bandSweep(sys.fades(), FaultModel::Indetermination,
                TargetClass::SequentialFF, Unit::None, n, 5, pool);
  const auto delayPool = eligibleSequentialLines(sys.fades());
  const auto delay =
      bandSweep(sys.fadesForDelay(), FaultModel::Delay,
                TargetClass::SequentialLine, Unit::None, nDelay, 5,
                delayPool);

  const char* bands[3] = {"<1", "1-10", "11-20"};
  const char* paperIndet[3] = {"29.53", "45.90", "61.40"};
  const char* paperDelay[3] = {"5.70", "18.60", "31.67"};

  std::vector<std::vector<std::string>> rows;
  for (int b = 0; b < 3; ++b) {
    rows.push_back({"indetermination", bands[b], pct3(indet[b]),
                    paperIndet[b]});
  }
  for (int b = 0; b < 3; ++b) {
    rows.push_back({"delay", bands[b], pct3(delay[b]), paperDelay[b]});
  }
  printTable("Figure 12 - faults into sequential logic (" +
                 std::to_string(n) + " / " + std::to_string(nDelay) +
                 " faults per band)",
             {"fault model", "duration (cycles)",
              "failure / latent / silent %", "paper failure %"},
             rows);

  // Trend check for the reader: failures must grow with duration.
  std::printf("Trend: indetermination failures %s, delay failures %s "
              "(paper: both increase with duration)\n",
              indet[0].failurePct() <= indet[2].failurePct() ? "increase"
                                                             : "DECREASE",
              delay[0].failurePct() <= delay[2].failurePct() ? "increase"
                                                             : "DECREASE");
  return 0;
}
