# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_mc8051[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_crosstool[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_fpga_edge[1]_include.cmake")
