file(REMOVE_RECURSE
  "libfades_synth.a"
)
