#include "campaign/prune_plan.hpp"

#include <algorithm>

#include "campaign/artifact.hpp"
#include "common/error.hpp"

namespace fades::campaign {

using common::ErrorKind;
using common::require;
using obs::Json;

const char* toString(PruneReason reason) {
  switch (reason) {
    case PruneReason::DeadTarget: return "dead-target";
    case PruneReason::OverwriteBeforeRead: return "overwrite-before-read";
    case PruneReason::QuiescentUntilRead: return "quiescent-until-read";
    case PruneReason::OutOfWindow: return "out-of-window";
  }
  return "?";
}

bool pruneReasonFromString(std::string_view text, PruneReason& out) {
  for (PruneReason r :
       {PruneReason::DeadTarget, PruneReason::OverwriteBeforeRead,
        PruneReason::QuiescentUntilRead, PruneReason::OutOfWindow}) {
    if (text == toString(r)) {
      out = r;
      return true;
    }
  }
  return false;
}

std::uint64_t PrunePlan::collapsedCount() const {
  std::uint64_t n = 0;
  for (const auto& c : classes) n += c.members.size();
  return n;
}

double PrunePlan::collapseFactor() const {
  const std::uint64_t executed = executedCount();
  if (executed == 0) return 1.0;
  return static_cast<double>(spec.experiments) /
         static_cast<double>(executed);
}

std::uint64_t PrunePlan::countForReason(PruneReason reason) const {
  std::uint64_t n = 0;
  for (const auto& c : classes) {
    if (c.reason == reason) n += c.members.size();
  }
  return n;
}

std::vector<std::int32_t> PrunePlan::memberClassIndex() const {
  std::vector<std::int32_t> index(spec.experiments, -1);
  for (std::size_t k = 0; k < classes.size(); ++k) {
    for (const std::uint64_t m : classes[k].members) {
      index[m] = static_cast<std::int32_t>(k);
    }
  }
  return index;
}

void PrunePlan::validate() const {
  std::vector<std::uint8_t> seen(spec.experiments, 0);
  for (const auto& c : classes) {
    require(c.representative < spec.experiments, ErrorKind::InvalidArgument,
            "prune plan: representative index out of range");
    require(!c.members.empty(), ErrorKind::InvalidArgument,
            "prune plan: class with no collapsed members");
    for (const std::uint64_t m : c.members) {
      require(m < spec.experiments, ErrorKind::InvalidArgument,
              "prune plan: member index out of range");
      require(m != c.representative, ErrorKind::InvalidArgument,
              "prune plan: representative listed as its own member");
      require(!seen[m], ErrorKind::InvalidArgument,
              "prune plan: experiment collapsed into two classes");
      seen[m] = 1;
    }
  }
  for (const auto& c : classes) {
    require(!seen[c.representative], ErrorKind::InvalidArgument,
            "prune plan: representative collapsed as a member elsewhere");
  }
}

std::string specKey(const CampaignSpec& spec) { return toJson(spec).dump(); }

Json toJson(const PrunePlan& plan) {
  Json j = Json::object();
  j.set("schema", Json(std::string(PrunePlan::kSchema)));
  j.set("spec", toJson(plan.spec));
  j.set("run_cycles", Json(plan.runCycles));
  j.set("pool_size", Json(plan.poolSize));
  Json classes = Json::array();
  for (const auto& c : plan.classes) {
    Json cj = Json::object();
    cj.set("representative", Json(c.representative));
    cj.set("reason", Json(std::string(toString(c.reason))));
    cj.set("target", Json(c.target));
    if (c.windowBegin >= 0) {
      Json window = Json::array();
      window.push(Json(c.windowBegin));
      window.push(Json(c.windowEnd));
      cj.set("window", std::move(window));
    } else {
      cj.set("window", Json());
    }
    Json members = Json::array();
    for (const std::uint64_t m : c.members) members.push(Json(m));
    cj.set("members", std::move(members));
    classes.push(std::move(cj));
  }
  j.set("classes", std::move(classes));
  Json summary = Json::object();
  summary.set("experiments",
              Json(static_cast<std::uint64_t>(plan.spec.experiments)));
  summary.set("executed", Json(plan.executedCount()));
  summary.set("collapsed", Json(plan.collapsedCount()));
  summary.set("collapse_factor", Json(plan.collapseFactor()));
  Json byReason = Json::object();
  for (PruneReason r :
       {PruneReason::DeadTarget, PruneReason::OverwriteBeforeRead,
        PruneReason::QuiescentUntilRead, PruneReason::OutOfWindow}) {
    byReason.set(toString(r), Json(plan.countForReason(r)));
  }
  summary.set("by_reason", std::move(byReason));
  j.set("summary", std::move(summary));
  return j;
}

namespace {

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

bool specFromJson(const Json& j, CampaignSpec& out, std::string* error) {
  if (!j.isObject()) return fail(error, "spec is not an object");
  const Json* model = j.find("model");
  const Json* targets = j.find("targets");
  if (model == nullptr || !model->isString() ||
      !faultModelFromString(model->asString(), out.model)) {
    return fail(error, "spec has no valid fault model");
  }
  if (targets == nullptr || !targets->isString() ||
      !targetClassFromString(targets->asString(), out.targets)) {
    return fail(error, "spec has no valid target class");
  }
  const Json* unit = j.find("unit");
  const Json* experiments = j.find("experiments");
  const Json* seed = j.find("seed");
  const Json* band = j.find("band");
  if (unit == nullptr || !unit->isNumber() || experiments == nullptr ||
      !experiments->isNumber() || seed == nullptr || !seed->isNumber()) {
    return fail(error, "spec misses unit/experiments/seed");
  }
  out.unit = static_cast<int>(unit->asInt());
  out.experiments = static_cast<unsigned>(experiments->asInt());
  out.seed = static_cast<std::uint64_t>(seed->asInt());
  if (band == nullptr || !band->isObject()) {
    return fail(error, "spec misses band");
  }
  const Json* label = band->find("label");
  const Json* minC = band->find("min_cycles");
  const Json* maxC = band->find("max_cycles");
  if (label == nullptr || !label->isString() || minC == nullptr ||
      !minC->isNumber() || maxC == nullptr || !maxC->isNumber()) {
    return fail(error, "spec has no valid duration band");
  }
  out.band.label = label->asString();
  out.band.minCycles = minC->asNumber();
  out.band.maxCycles = maxC->asNumber();
  return true;
}

}  // namespace

bool prunePlanFromJson(const Json& j, PrunePlan& out, std::string* error) {
  out = PrunePlan{};
  if (!j.isObject()) return fail(error, "prune plan is not an object");
  const Json* schema = j.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->asString() != PrunePlan::kSchema) {
    return fail(error,
                std::string("prune plan is not ") + PrunePlan::kSchema);
  }
  const Json* spec = j.find("spec");
  if (spec == nullptr || !specFromJson(*spec, out.spec, error)) return false;
  const Json* runCycles = j.find("run_cycles");
  const Json* poolSize = j.find("pool_size");
  if (runCycles == nullptr || !runCycles->isNumber() || poolSize == nullptr ||
      !poolSize->isNumber()) {
    return fail(error, "prune plan misses run_cycles/pool_size");
  }
  out.runCycles = static_cast<std::uint64_t>(runCycles->asInt());
  out.poolSize = static_cast<std::uint64_t>(poolSize->asInt());
  const Json* classes = j.find("classes");
  if (classes == nullptr || !classes->isArray()) {
    return fail(error, "prune plan misses classes");
  }
  for (const Json& cj : classes->items()) {
    if (!cj.isObject()) return fail(error, "prune class is not an object");
    PruneClass c;
    const Json* rep = cj.find("representative");
    const Json* reason = cj.find("reason");
    const Json* target = cj.find("target");
    const Json* members = cj.find("members");
    if (rep == nullptr || !rep->isNumber() || reason == nullptr ||
        !reason->isString() ||
        !pruneReasonFromString(reason->asString(), c.reason) ||
        target == nullptr || !target->isString() || members == nullptr ||
        !members->isArray()) {
      return fail(error, "prune class misses representative/reason/target/"
                         "members");
    }
    c.representative = static_cast<std::uint64_t>(rep->asInt());
    c.target = target->asString();
    if (const Json* window = cj.find("window");
        window != nullptr && window->isArray() && window->size() == 2) {
      c.windowBegin = window->items()[0].asInt();
      c.windowEnd = window->items()[1].asInt();
    }
    for (const Json& m : members->items()) {
      if (!m.isNumber()) return fail(error, "prune member is not an index");
      c.members.push_back(static_cast<std::uint64_t>(m.asInt()));
    }
    out.classes.push_back(std::move(c));
  }
  try {
    out.validate();
  } catch (const common::FadesError& e) {
    return fail(error, e.what());
  }
  return true;
}

std::string accountingLine(const PrunePlan& plan) {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "prune plan: experiments=%llu executed=%llu collapsed=%llu "
      "factor=%.2fx dead_target=%llu overwrite_before_read=%llu "
      "quiescent_until_read=%llu out_of_window=%llu",
      static_cast<unsigned long long>(plan.spec.experiments),
      static_cast<unsigned long long>(plan.executedCount()),
      static_cast<unsigned long long>(plan.collapsedCount()),
      plan.collapseFactor(),
      static_cast<unsigned long long>(
          plan.countForReason(PruneReason::DeadTarget)),
      static_cast<unsigned long long>(
          plan.countForReason(PruneReason::OverwriteBeforeRead)),
      static_cast<unsigned long long>(
          plan.countForReason(PruneReason::QuiescentUntilRead)),
      static_cast<unsigned long long>(
          plan.countForReason(PruneReason::OutOfWindow)));
  return std::string(buffer);
}

}  // namespace fades::campaign
