// CompiledEquivalence: the compiled bit-parallel engine is proven
// bit-identical to the event-driven simulator.
//
//   * net-for-net, cycle-for-cycle state equality on random builder designs
//     under random scalar fault commands (force / release / deposit), driven
//     through the abstract Engine interface;
//   * campaign experiments field-for-field across the fault-model x
//     target-class matrix (runCampaignWave vs runCampaignExperiment);
//   * whole-campaign artifact string equality across engines, wave
//     boundaries, --jobs counts and checkpoint spacing;
//   * the MC8051 + Bubblesort workload, FF and RAM campaigns.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/artifact.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/rng.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "netlist/netlist.hpp"
#include "rtl/builder.hpp"
#include "sim/compiled.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "vfit/vfit.hpp"

namespace fades {
namespace {

using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::TargetClass;
using common::Rng;
using netlist::Netlist;
using rtl::Builder;
using rtl::Bus;

// Random sequential design: registers, xor/mux cloud, and (on most seeds) a
// synchronous-read RAM whose address, data and write-enable come from the
// random logic - the structure class where engine divergence would hide.
Netlist randomDesign(std::uint64_t seed, unsigned gates, bool withRam) {
  Rng rng(seed);
  Builder b;
  Bus in = b.input("in", 8);
  std::vector<rtl::NetId> pool = in;
  std::vector<rtl::Register> regs;
  for (unsigned r = 0; r < 3; ++r) {
    regs.push_back(b.makeRegister("q" + std::to_string(r), 4,
                                  rng.below(16)));
    pool.insert(pool.end(), regs.back().q.begin(), regs.back().q.end());
  }
  auto pick = [&] { return pool[rng.below(pool.size())]; };
  for (unsigned g = 0; g < gates; ++g) {
    pool.push_back(rng.coin() ? b.lxor(pick(), pick())
                              : b.lmux(pick(), pick(), pick()));
  }
  if (withRam) {
    Bus addr, din;
    for (int k = 0; k < 3; ++k) addr.push_back(pick());
    for (int k = 0; k < 4; ++k) din.push_back(pick());
    std::vector<std::uint8_t> init(8);
    for (auto& v : init) v = static_cast<std::uint8_t>(rng.below(16));
    Bus q = b.ram("m", 3, 4, addr, din, pick(), init);
    pool.insert(pool.end(), q.begin(), q.end());
    for (int k = 0; k < 4; ++k) {
      pool.push_back(b.lxor(pick(), pick()));
    }
  }
  for (auto& r : regs) {
    Bus d;
    for (int k = 0; k < 4; ++k) d.push_back(pick());
    b.connect(r, d);
  }
  Bus named;
  for (int k = 0; k < 4; ++k) named.push_back(b.lxor(pick(), pick()));
  b.nameBus("sig", named);
  for (auto n : named) pool.push_back(n);
  Bus out;
  for (int k = 0; k < 8; ++k) out.push_back(pick());
  b.output("out", out);
  return b.finish();
}

// -------------------------------------------- net-for-net random designs -----

TEST(CompiledEquivalence, RandomDesignsNetForNetUnderFaultCommands) {
  // ~200 random designs; every net compared every cycle while random
  // scalar simulator commands (the VFIT injection vocabulary) hit both
  // engines through the same abstract interface.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const bool withRam = seed % 4 != 0;
    const Netlist nl = randomDesign(seed, 30, withRam);
    const std::unique_ptr<sim::Engine> ev =
        sim::makeEngine(sim::EngineKind::EventDriven, nl);
    const std::unique_ptr<sim::Engine> cp =
        sim::makeEngine(sim::EngineKind::Compiled, nl);

    Rng rng(seed * 7919 + 1);
    std::vector<netlist::NetId> forceable;
    for (const auto& g : nl.gates()) forceable.push_back(g.out);

    for (int c = 0; c < 25; ++c) {
      const std::uint64_t stimulus = rng.below(256);
      for (sim::Engine* e : {ev.get(), cp.get()}) e->setInput("in", stimulus);

      // Random fault command, identical on both engines.
      const unsigned op = static_cast<unsigned>(rng.below(6));
      if (op == 0 && !forceable.empty()) {
        const auto net = forceable[rng.below(forceable.size())];
        const bool v = rng.coin();
        for (sim::Engine* e : {ev.get(), cp.get()}) e->force(net, v);
      } else if (op == 1 && !forceable.empty()) {
        const auto net = forceable[rng.below(forceable.size())];
        for (sim::Engine* e : {ev.get(), cp.get()}) e->release(net);
      } else if (op == 2 && nl.flopCount() != 0) {
        const netlist::FlopId f{
            static_cast<std::uint32_t>(rng.below(nl.flopCount()))};
        const bool v = rng.coin();
        for (sim::Engine* e : {ev.get(), cp.get()}) e->depositFlop(f, v);
      } else if (op == 3 && nl.ramCount() != 0) {
        const netlist::RamId r{0};
        const std::size_t row = rng.below(nl.ram(r).depth());
        const std::uint64_t v = rng.below(16);
        for (sim::Engine* e : {ev.get(), cp.get()}) e->depositRam(r, row, v);
      }
      for (sim::Engine* e : {ev.get(), cp.get()}) e->step();

      for (std::uint32_t n = 0; n < nl.netCount(); ++n) {
        ASSERT_EQ(ev->netValue(netlist::NetId{n}),
                  cp->netValue(netlist::NetId{n}))
            << "seed " << seed << " cycle " << c << " net " << n << " ("
            << nl.netName(netlist::NetId{n}) << ")";
      }
      for (std::uint32_t f = 0; f < nl.flopCount(); ++f) {
        ASSERT_EQ(ev->flopState(netlist::FlopId{f}),
                  cp->flopState(netlist::FlopId{f}))
            << "seed " << seed << " cycle " << c << " flop " << f;
      }
      for (std::uint32_t r = 0; r < nl.ramCount(); ++r) {
        for (std::size_t row = 0; row < nl.ram(netlist::RamId{r}).depth();
             ++row) {
          ASSERT_EQ(ev->ramWord(netlist::RamId{r}, row),
                    cp->ramWord(netlist::RamId{r}, row))
              << "seed " << seed << " cycle " << c << " ram " << r << " row "
              << row;
        }
      }
    }
  }
}

// --------------------------------------- campaign experiment equivalence -----

Netlist campaignDesign() { return randomDesign(42, 40, true); }

void expectOutcomeEq(const campaign::ExperimentOutcome& a,
                     const campaign::ExperimentOutcome& b,
                     const std::string& what) {
  EXPECT_EQ(a.index, b.index) << what;
  EXPECT_EQ(a.outcome, b.outcome) << what << " index " << a.index;
  EXPECT_EQ(a.modeledSeconds, b.modeledSeconds) << what;
  EXPECT_EQ(a.configSeconds, b.configSeconds) << what;
  EXPECT_EQ(a.workloadSeconds, b.workloadSeconds) << what;
  EXPECT_EQ(a.hostSeconds, b.hostSeconds) << what;
  EXPECT_EQ(a.hasRecord, b.hasRecord) << what;
  if (a.hasRecord && b.hasRecord) {
    EXPECT_EQ(a.record.targetName, b.record.targetName) << what;
    EXPECT_EQ(a.record.injectCycle, b.record.injectCycle) << what;
    EXPECT_EQ(a.record.durationCycles, b.record.durationCycles) << what;
    EXPECT_EQ(a.record.outcome, b.record.outcome) << what;
    EXPECT_EQ(a.record.modeledSeconds, b.record.modeledSeconds) << what;
    EXPECT_EQ(a.record.component, b.record.component) << what;
  }
}

struct ModelClass {
  FaultModel model;
  TargetClass targets;
};

TEST(CompiledEquivalence, CampaignExperimentsFieldForFieldAcrossMatrix) {
  const Netlist nl = campaignDesign();
  vfit::VfitOptions opt;
  opt.observedOutputs = {"out"};
  opt.keepRecords = true;
  opt.engine = sim::EngineKind::Compiled;
  vfit::VfitTool tool(nl, 150, opt);

  const std::vector<ModelClass> matrix = {
      {FaultModel::BitFlip, TargetClass::SequentialFF},
      {FaultModel::BitFlip, TargetClass::MemoryBlockBit},
      {FaultModel::Pulse, TargetClass::CombinationalLut},
      {FaultModel::Pulse, TargetClass::CbInputLine},
      {FaultModel::Indetermination, TargetClass::SequentialFF},
      {FaultModel::Indetermination, TargetClass::CombinationalLut},
  };
  for (const auto& mc : matrix) {
    for (const auto& band : campaign::DurationBand::paperBands()) {
      CampaignSpec spec;
      spec.model = mc.model;
      spec.targets = mc.targets;
      spec.band = band;
      spec.experiments = 30;
      spec.seed = 77;
      const auto pool = tool.campaignPool(spec);

      std::vector<unsigned> indices(spec.experiments);
      for (unsigned i = 0; i < spec.experiments; ++i) indices[i] = i;
      const auto wave = tool.runCampaignWave(spec, pool, indices);
      ASSERT_EQ(wave.size(), spec.experiments);
      for (unsigned i = 0; i < spec.experiments; ++i) {
        const auto serial = tool.runCampaignExperiment(spec, pool, i);
        expectOutcomeEq(wave[i], serial,
                        std::string(campaign::toString(mc.model)) + "/" +
                            campaign::toString(mc.targets) + "/" + band.label);
      }
    }
  }
}

TEST(CompiledEquivalence, PartialWavesAndSubsetsMatchFullWaves) {
  // Lane assignment must not matter: any index subset, in any wave split,
  // returns exactly the per-index outcomes.
  const Netlist nl = campaignDesign();
  vfit::VfitOptions opt;
  opt.observedOutputs = {"out"};
  opt.keepRecords = true;
  opt.engine = sim::EngineKind::Compiled;
  vfit::VfitTool tool(nl, 120, opt);

  CampaignSpec spec;
  spec.model = FaultModel::Indetermination;
  spec.targets = TargetClass::CombinationalLut;
  spec.experiments = 63;
  spec.seed = 5;
  const auto pool = tool.campaignPool(spec);

  std::vector<unsigned> all(63);
  for (unsigned i = 0; i < 63; ++i) all[i] = i;
  const auto full = tool.runCampaignWave(spec, pool, all);

  // Singleton waves.
  for (unsigned i : {0u, 17u, 62u}) {
    const std::vector<unsigned> one{i};
    const auto got = tool.runCampaignWave(spec, pool, one);
    ASSERT_EQ(got.size(), 1u);
    expectOutcomeEq(got[0], full[i], "singleton wave");
  }
  // A sparse subset (resume-gap shape).
  const std::vector<unsigned> sparse{3, 4, 9, 40, 41, 60};
  const auto got = tool.runCampaignWave(spec, pool, sparse);
  ASSERT_EQ(got.size(), sparse.size());
  for (std::size_t k = 0; k < sparse.size(); ++k) {
    expectOutcomeEq(got[k], full[sparse[k]], "sparse wave");
  }
}

// ------------------------------------------ whole-campaign artifact equality -

std::string artifactString(const campaign::CampaignResult& result) {
  return campaign::toRunArtifact(result, "equiv", /*includeMetrics=*/false)
      .toJson()
      .dump(2);
}

TEST(CompiledEquivalence, WaveBoundarySweepArtifactsIdentical) {
  // 1 / 63 / 64 / 65 / 128 experiments: below, at, and straddling wave
  // boundaries, the compiled campaign must serialize byte-identically to
  // the event-driven one.
  const Netlist nl = campaignDesign();
  for (const unsigned n : {1u, 63u, 64u, 65u, 128u}) {
    CampaignSpec spec;
    spec.model = FaultModel::BitFlip;
    spec.targets = TargetClass::SequentialFF;
    spec.experiments = n;
    spec.seed = 1234;

    vfit::VfitOptions ev;
    ev.observedOutputs = {"out"};
    ev.keepRecords = true;
    vfit::VfitTool evTool(nl, 120, ev);

    vfit::VfitOptions cp = ev;
    cp.engine = sim::EngineKind::Compiled;
    vfit::VfitTool cpTool(nl, 120, cp);

    EXPECT_EQ(artifactString(evTool.runCampaign(spec)),
              artifactString(cpTool.runCampaign(spec)))
        << n << " experiments";
  }
}

TEST(CompiledEquivalence, ParallelRunnerJobsAndCheckpointInvariance) {
  // Through the sharded runner: engines x jobs x checkpoint spacing all
  // produce one artifact string.
  const Netlist nl = campaignDesign();
  CampaignSpec spec;
  spec.model = FaultModel::Pulse;
  spec.targets = TargetClass::CombinationalLut;
  spec.experiments = 100;
  spec.seed = 99;

  std::vector<std::string> artifacts;
  for (const auto engine :
       {sim::EngineKind::EventDriven, sim::EngineKind::Compiled}) {
    for (const unsigned jobs : {1u, 8u}) {
      for (const unsigned ck : {32u, 128u}) {
        vfit::VfitOptions opt;
        opt.observedOutputs = {"out"};
        opt.keepRecords = true;
        opt.engine = engine;
        opt.checkpointInterval = ck;
        campaign::ParallelOptions popt;
        popt.jobs = jobs;
        campaign::ParallelCampaignRunner runner(
            vfit::vfitEngineFactory(nl, 120, opt), popt);
        artifacts.push_back(artifactString(runner.run(spec)));
      }
    }
  }
  for (std::size_t i = 1; i < artifacts.size(); ++i) {
    EXPECT_EQ(artifacts[0], artifacts[i]) << "variant " << i;
  }
}

// --------------------------------------------------- MC8051 full workload ----

TEST(CompiledEquivalence, Mc8051BubblesortFfAndRamCampaigns) {
  const auto workload = mc8051::bubblesort(6);
  const Netlist nl = mc8051::buildCore(workload.bytes);

  vfit::VfitOptions ev;
  ev.keepRecords = true;
  vfit::VfitTool evTool(nl, workload.cycles, ev);

  vfit::VfitOptions cp = ev;
  cp.engine = sim::EngineKind::Compiled;
  vfit::VfitTool cpTool(nl, workload.cycles, cp);

  // Compiled golden lane must match the event-driven golden run already at
  // construction time (both tools ran the identical golden).
  ASSERT_EQ(evTool.golden().outputs, cpTool.golden().outputs);

  for (const auto targets :
       {TargetClass::SequentialFF, TargetClass::MemoryBlockBit}) {
    CampaignSpec spec;
    spec.model = FaultModel::BitFlip;
    spec.targets = targets;
    spec.experiments = 40;
    spec.seed = 2006;
    EXPECT_EQ(artifactString(evTool.runCampaign(spec)),
              artifactString(cpTool.runCampaign(spec)))
        << campaign::toString(targets);
  }
}

}  // namespace
}  // namespace fades
