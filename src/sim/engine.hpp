// Abstract netlist execution engine.
//
// Two engines implement this interface: the event-driven Simulator (the
// faithful VFIT-era reference, counts real simulation events) and the
// levelized bit-parallel CompiledSimulator (64 fault machines per machine
// word). The interface is the scalar single-machine view - writes drive all
// lanes of a bit-parallel engine in lockstep and reads report lane 0 - so
// any driver written against Engine behaves identically on either backend;
// the CompiledEquivalence suite proves that net-for-net, cycle-for-cycle.
//
// Checkpoint/restore stays on the concrete Simulator: snapshots encode the
// event-driven representation and the compiled engine's campaigns restart
// from reset instead (a whole wave shares one pass, so replay buys nothing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::sim {

enum class EngineKind : std::uint8_t { EventDriven, Compiled };

const char* toString(EngineKind kind);
/// Inverse of toString(EngineKind) ("event" / "compiled"); false when
/// `text` names no engine.
bool engineKindFromString(std::string_view text, EngineKind& out);

class Engine {
 public:
  virtual ~Engine() = default;

  /// Reset state elements to their declared initial values, clear forces,
  /// zero the inputs, settle combinational logic.
  virtual void reset() = 0;

  // --- inputs / observation ----------------------------------------------
  virtual void setInput(const std::string& portName, std::uint64_t value) = 0;
  virtual std::uint64_t portValue(const std::string& outputPortName) const = 0;
  virtual bool netValue(netlist::NetId id) const = 0;
  virtual std::uint64_t busValue(const std::vector<netlist::NetId>& bus)
      const = 0;
  virtual bool flopState(netlist::FlopId id) const = 0;
  virtual std::uint64_t ramWord(netlist::RamId id, std::size_t row) const = 0;

  // --- execution ---------------------------------------------------------
  virtual void settle() = 0;
  virtual void step() = 0;
  virtual void run(std::uint64_t cycles) = 0;
  virtual std::uint64_t cycle() const = 0;

  // --- simulator commands (the VFIT injection mechanism) ------------------
  virtual void force(netlist::NetId id, bool value) = 0;
  virtual void release(netlist::NetId id) = 0;
  virtual bool isForced(netlist::NetId id) const = 0;
  virtual void depositFlop(netlist::FlopId id, bool value) = 0;
  virtual void depositRam(netlist::RamId id, std::size_t row,
                          std::uint64_t value) = 0;

  // --- activity accounting ------------------------------------------------
  /// Engine work units performed so far. For the event-driven engine this
  /// is real event activity (the VFIT cost model input); for the compiled
  /// engine it counts kernel gate slots and is NOT comparable across
  /// engines - modeled costs always come from the event-driven calibration.
  virtual std::uint64_t eventsProcessed() const = 0;
};

/// Construct an engine of the requested kind over `netlist` (which must be
/// validated and outlive the engine).
std::unique_ptr<Engine> makeEngine(EngineKind kind,
                                   const netlist::Netlist& netlist);

}  // namespace fades::sim
