#include <gtest/gtest.h>

#include <cstdio>

#include "campaign/report.hpp"
#include "common/error.hpp"

namespace fades::campaign {
namespace {

CampaignResult sampleResult() {
  CampaignResult r;
  r.spec.model = FaultModel::Pulse;
  r.spec.targets = TargetClass::CombinationalLut;
  r.spec.band = DurationBand::shortBand();
  r.add(Outcome::Failure, 0.25);
  r.add(Outcome::Silent, 0.30);
  r.add(Outcome::Silent, 0.35);
  r.add(Outcome::Latent, 0.20);
  r.records.push_back(
      ExperimentRecord{"lut:alu_result[3]", 120, 4.5, Outcome::Failure, 0.25});
  r.records.push_back(
      ExperimentRecord{"lut, with comma", 7, 1.0, Outcome::Silent, 0.30});
  return r;
}

TEST(Report, MarkdownContainsAllColumns) {
  const auto md = toMarkdown("Demo", {{"pulse ALU", sampleResult()}});
  EXPECT_NE(md.find("## Demo"), std::string::npos);
  EXPECT_NE(md.find("| pulse ALU | 4 | 1 | 1 | 2 |"), std::string::npos);
  EXPECT_NE(md.find("25.00"), std::string::npos);  // failure %
  EXPECT_NE(md.find("0.275"), std::string::npos);  // mean seconds
}

TEST(Report, CsvRoundableFields) {
  const auto csv = toCsv({{"c1", sampleResult()}});
  EXPECT_NE(csv.find("campaign,model,targets,band"), std::string::npos);
  EXPECT_NE(csv.find("c1,pulse,LUTs,1-10,4,1,1,2,"), std::string::npos);
}

TEST(Report, CsvQuotesCommasInLabels) {
  const auto csv = toCsv({{"a,b", sampleResult()}});
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

TEST(Report, CsvQuotesQuotesInLabels) {
  // RFC 4180: embedded quotes force quoting and are doubled.
  const auto csv = toCsv({{"the \"fast\" path", sampleResult()}});
  EXPECT_NE(csv.find("\"the \"\"fast\"\" path\""), std::string::npos);
}

TEST(Report, RecordsCsvQuotesCommasAndQuotes) {
  auto r = sampleResult();
  r.records.push_back(ExperimentRecord{"line \"q\", comma", 3, 2.0,
                                       Outcome::Latent, 0.11});
  const auto csv = recordsToCsv(r);
  EXPECT_NE(csv.find("\"line \"\"q\"\", comma\",,3,"), std::string::npos);
}

TEST(Report, RecordsCsvListsEveryExperiment) {
  const auto csv = recordsToCsv(sampleResult());
  EXPECT_NE(csv.find("lut:alu_result[3],,120,4.500,failure,0.250000,-1,-1,-1"),
            std::string::npos);
  EXPECT_NE(csv.find("\"lut, with comma\""), std::string::npos);
}

TEST(Report, RecordsCsvCarriesAttributionColumns) {
  auto r = sampleResult();
  r.records[0].component = "alu";
  r.records[0].pc = 0x12;
  r.records[0].opcode = 0x28;
  r.records[0].detectCycle = 130;
  const auto csv = recordsToCsv(r);
  EXPECT_NE(csv.find("target,component,inject_cycle,duration_cycles,outcome,"
                     "seconds,pc,opcode,detect_cycle"),
            std::string::npos);
  EXPECT_NE(csv.find("lut:alu_result[3],alu,120,4.500,failure,0.250000,18,40,"
                     "130"),
            std::string::npos);
}

TEST(Report, RenderCsvQuotesEveryFieldThroughOneImplementation) {
  const auto csv = renderCsv({"a", "b,c"}, {{"plain", "has \"q\""}});
  EXPECT_EQ(csv, "a,\"b,c\"\nplain,\"has \"\"q\"\"\"\n");
}

TEST(Report, RenderMarkdownTablePipes) {
  const auto md = renderMarkdownTable({"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(md, "| x | y |\n|---|---|\n| 1 | 2 |\n| 3 | 4 |\n");
}

TEST(Report, RecordsCsvRequiresRecords) {
  CampaignResult empty;
  empty.add(Outcome::Silent, 0.1);
  EXPECT_THROW(recordsToCsv(empty), common::FadesError);
}

TEST(Report, WriteTextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fades_report.md";
  writeTextFile(path, "hello report\n");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const auto n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "hello report\n");
}

}  // namespace
}  // namespace fades::campaign
