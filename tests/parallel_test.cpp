// Determinism-equivalence suite for the sharded campaign runner: the same
// campaign run serially, and sharded across 1, 2 and 8 workers, must
// produce identical outcome tallies, per-experiment records and modeled
// cost - bit-for-bit. Sharding is allowed to change wall-clock and nothing
// else.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/error.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"

namespace fades {
namespace {

using campaign::CampaignResult;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::EngineFactory;
using campaign::ExperimentOutcome;
using campaign::FaultModel;
using campaign::Outcome;
using campaign::ParallelCampaignRunner;
using campaign::ParallelOptions;
using campaign::TargetClass;
using core::FadesOptions;
using core::FadesTool;
using netlist::Unit;

// Same mini multi-unit design as the fault tests: an 8-bit LFSR, a 4-bit
// counter, their sum on "out", and a small write-only RAM log.
struct MiniDesign {
  netlist::Netlist nl;
  synth::Implementation impl;
  std::uint64_t cycles = 64;

  static netlist::Netlist build() {
    rtl::Builder b;
    b.setUnit(Unit::Registers);
    rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
    b.setUnit(Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.setUnit(Unit::Registers);
    auto fb = b.lxor(lfsr.q[7],
                     b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    rtl::Bus next{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.setUnit(Unit::Fsm);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(Unit::Alu);
    auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
    b.setUnit(Unit::Ram);
    b.ram("log", 4, 8, cnt.q, lfsr.q, b.one());
    b.output("out", sum.sum);
    return b.finish();
  }

  MiniDesign()
      : nl(build()), impl(synth::implement(nl, fpga::DeviceSpec::small())) {}

  static const MiniDesign& instance() {
    static MiniDesign d;
    return d;
  }
};

FadesOptions miniOptions() {
  FadesOptions o;
  o.observedOutputs = {"out"};
  o.keepRecords = true;
  o.progressInterval = 0;
  return o;
}

EngineFactory miniFactory(FadesOptions opt = miniOptions()) {
  const auto& d = MiniDesign::instance();
  return core::fadesEngineFactory(d.impl, d.cycles, std::move(opt));
}

/// Field-for-field, bit-for-bit comparison of two campaign results.
void expectSameResult(const CampaignResult& a, const CampaignResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.latents, b.latents);
  EXPECT_EQ(a.silents, b.silents);
  EXPECT_EQ(a.modeledSeconds.count(), b.modeledSeconds.count());
  // EXPECT_EQ on doubles asserts exact (bitwise) equality - the point of
  // the index-ordered fold.
  EXPECT_EQ(a.modeledSeconds.sum(), b.modeledSeconds.sum());
  EXPECT_EQ(a.modeledSeconds.mean(), b.modeledSeconds.mean());
  EXPECT_EQ(a.modeledSeconds.stddev(), b.modeledSeconds.stddev());
  EXPECT_EQ(a.modeledSeconds.min(), b.modeledSeconds.min());
  EXPECT_EQ(a.modeledSeconds.max(), b.modeledSeconds.max());
  EXPECT_EQ(a.cost.configSeconds, b.cost.configSeconds);
  EXPECT_EQ(a.cost.workloadSeconds, b.cost.workloadSeconds);
  EXPECT_EQ(a.cost.hostSeconds, b.cost.hostSeconds);
  EXPECT_EQ(a.cost.bytesToDevice, b.cost.bytesToDevice);
  EXPECT_EQ(a.cost.bytesFromDevice, b.cost.bytesFromDevice);
  EXPECT_EQ(a.cost.sessions, b.cost.sessions);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.records[i].targetName, b.records[i].targetName);
    EXPECT_EQ(a.records[i].injectCycle, b.records[i].injectCycle);
    EXPECT_EQ(a.records[i].durationCycles, b.records[i].durationCycles);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
    EXPECT_EQ(a.records[i].modeledSeconds, b.records[i].modeledSeconds);
  }
}

CampaignSpec miniSpec(FaultModel model, TargetClass targets,
                      unsigned experiments = 24) {
  CampaignSpec spec;
  spec.model = model;
  spec.targets = targets;
  spec.unit = static_cast<int>(Unit::None);
  spec.band = DurationBand::shortBand();
  spec.experiments = experiments;
  spec.seed = 77;
  return spec;
}

// ------------------------------------------- shard-count invariance -----

class ShardInvariance
    : public ::testing::TestWithParam<std::pair<FaultModel, TargetClass>> {};

TEST_P(ShardInvariance, OneTwoAndEightShardsAgreeWithSerial) {
  const auto [model, targets] = GetParam();
  const auto spec = miniSpec(model, targets);

  // Serial reference straight through the tool.
  const auto& d = MiniDesign::instance();
  fpga::Device device(d.impl.spec);
  FadesTool tool(device, d.impl, d.cycles, miniOptions());
  const CampaignResult serial = tool.runCampaign(spec);
  ASSERT_EQ(serial.total(), spec.experiments);
  ASSERT_EQ(serial.records.size(), spec.experiments);

  for (unsigned jobs : {1u, 2u, 8u}) {
    ParallelOptions popt;
    popt.jobs = jobs;
    ParallelCampaignRunner runner(miniFactory(), popt);
    const CampaignResult sharded = runner.run(spec);
    expectSameResult(serial, sharded, "jobs=" + std::to_string(jobs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, ShardInvariance,
    ::testing::Values(
        std::pair{FaultModel::BitFlip, TargetClass::SequentialFF},
        std::pair{FaultModel::BitFlip, TargetClass::MemoryBlockBit},
        std::pair{FaultModel::Pulse, TargetClass::CombinationalLut},
        std::pair{FaultModel::Indetermination, TargetClass::SequentialFF},
        std::pair{FaultModel::Delay, TargetClass::CombinationalLine}));

TEST(ParallelCampaign, RepeatedRunsOnOneRunnerStayIdentical) {
  // Engine replicas are reused across run() calls; the stateless derivation
  // means a reused (dirty) replica still reproduces the campaign exactly.
  ParallelOptions popt;
  popt.jobs = 3;
  ParallelCampaignRunner runner(miniFactory(), popt);
  const auto spec = miniSpec(FaultModel::Pulse, TargetClass::CombinationalLut);
  const auto first = runner.run(spec);
  const auto second = runner.run(spec);
  expectSameResult(first, second, "rerun on reused replicas");
}

TEST(ParallelCampaign, MoreShardsThanExperiments) {
  ParallelOptions popt;
  popt.jobs = 8;
  ParallelCampaignRunner runner(miniFactory(), popt);
  auto spec = miniSpec(FaultModel::BitFlip, TargetClass::SequentialFF, 3);
  const auto r = runner.run(spec);
  EXPECT_EQ(r.total(), 3u);
  EXPECT_EQ(r.records.size(), 3u);
}

TEST(ParallelCampaign, JobsZeroResolvesToHardwareConcurrency) {
  ParallelOptions popt;
  popt.jobs = 0;
  ParallelCampaignRunner runner(miniFactory(), popt);
  EXPECT_GE(runner.jobs(), 1u);
}

// ---------------------------------------------- synthetic engine tests -----

/// Deterministic engine computed from the index alone - no device behind
/// it, so these tests exercise the runner's scheduling and merge logic in
/// isolation (and fast).
class SyntheticEngine final : public campaign::CampaignEngine {
 public:
  explicit SyntheticEngine(unsigned failAt = ~0u) : failAt_(failAt) {}

  std::vector<std::uint32_t> enumeratePool(const CampaignSpec& spec) override {
    return {0, 1, 2, static_cast<std::uint32_t>(spec.seed & 0xff)};
  }

  ExperimentOutcome runExperimentAt(const CampaignSpec& /*spec*/,
                                    std::span<const std::uint32_t> pool,
                                    unsigned index,
                                    unsigned /*rerun*/) override {
    if (index == failAt_) throw std::runtime_error("synthetic failure");
    ExperimentOutcome out;
    out.index = index;
    out.outcome = index % 3 == 0   ? Outcome::Failure
                  : index % 3 == 1 ? Outcome::Latent
                                   : Outcome::Silent;
    out.modeledSeconds = 0.25 + 0.001 * index;
    out.configSeconds = 0.1 * index;
    out.workloadSeconds = 0.5;
    out.hostSeconds = 0.025;
    out.bytesToDevice = 10 + index;
    out.bytesFromDevice = pool.size();
    out.sessions = 1;
    out.hasRecord = true;
    out.record = {"t" + std::to_string(index), index, 1.5, out.outcome,
                  out.modeledSeconds};
    return out;
  }

 private:
  unsigned failAt_;
};

TEST(ParallelCampaign, MergePreservesIndexOrderAcrossShardCounts) {
  CampaignSpec spec;
  spec.experiments = 57;  // deliberately not a multiple of the job counts
  spec.seed = 9;
  CampaignResult reference;
  for (unsigned jobs : {1u, 2u, 5u, 8u}) {
    ParallelOptions popt;
    popt.jobs = jobs;
    ParallelCampaignRunner runner(
        [] { return std::make_unique<SyntheticEngine>(); }, popt);
    const auto r = runner.run(spec);
    ASSERT_EQ(r.records.size(), 57u);
    for (unsigned i = 0; i < 57; ++i) {
      EXPECT_EQ(r.records[i].targetName, "t" + std::to_string(i));
    }
    if (jobs == 1) {
      reference = r;
    } else {
      expectSameResult(reference, r, "jobs=" + std::to_string(jobs));
    }
  }
}

TEST(ParallelCampaign, WorkerExceptionPropagates) {
  ParallelOptions popt;
  popt.jobs = 4;
  ParallelCampaignRunner runner(
      [] { return std::make_unique<SyntheticEngine>(/*failAt=*/13); }, popt);
  CampaignSpec spec;
  spec.experiments = 40;
  EXPECT_THROW(runner.run(spec), std::runtime_error);
}

TEST(ParallelCampaign, FactoryExceptionPropagates) {
  ParallelOptions popt;
  popt.jobs = 4;
  ParallelCampaignRunner runner(
      []() -> std::unique_ptr<campaign::CampaignEngine> {
        throw std::runtime_error("no replica for you");
      },
      popt);
  CampaignSpec spec;
  spec.experiments = 8;
  EXPECT_THROW(runner.run(spec), std::runtime_error);
}

TEST(ParallelCampaign, NullEngineFromFactoryIsRejected) {
  ParallelOptions popt;
  popt.jobs = 2;
  ParallelCampaignRunner runner(
      []() -> std::unique_ptr<campaign::CampaignEngine> { return nullptr; },
      popt);
  CampaignSpec spec;
  spec.experiments = 4;
  EXPECT_THROW(runner.run(spec), common::FadesError);
}

TEST(ParallelCampaign, EmptyFactoryIsRejected) {
  EXPECT_THROW(ParallelCampaignRunner(EngineFactory{}), common::FadesError);
}

// ------------------------------------------------- progress heartbeat -----

/// Capture structured log records for the duration of a test.
class SinkCapture {
 public:
  SinkCapture() {
    obs::Logger::global().setSink(
        [this](const obs::LogRecord& r) { records_.push_back(r); });
  }
  ~SinkCapture() { obs::Logger::global().setSink({}); }
  const std::vector<obs::LogRecord>& records() const { return records_; }

 private:
  std::vector<obs::LogRecord> records_;
};

TEST(ParallelCampaign, HeartbeatAggregatesAcrossShards) {
  SinkCapture capture;
  CampaignSpec spec;
  spec.experiments = 20;
  ParallelOptions popt;
  popt.jobs = 4;
  popt.progressInterval = 5;
  ParallelCampaignRunner runner(
      [] { return std::make_unique<SyntheticEngine>(); }, popt);
  const auto r = runner.run(spec);
  ASSERT_EQ(r.total(), 20u);

  // One campaign-level heartbeat per interval - not one per shard - with
  // strictly increasing campaign-wide "done" counts.
  std::vector<unsigned> done;
  for (const auto& rec : capture.records()) {
    if (rec.message != "campaign progress") continue;
    for (const auto& f : rec.fields) {
      if (f.key == "done") {
        done.push_back(static_cast<unsigned>(std::stoul(f.value)));
      }
    }
  }
  EXPECT_EQ(done, (std::vector<unsigned>{5, 10, 15, 20}));
  EXPECT_DOUBLE_EQ(
      obs::Registry::global().gauge("campaign.progress_pct").value(), 100.0);
}

TEST(ParallelCampaign, HeartbeatFinalLineCarriesFullTallies) {
  SinkCapture capture;
  CampaignSpec spec;
  spec.experiments = 12;
  ParallelOptions popt;
  popt.jobs = 3;
  popt.progressInterval = 12;
  ParallelCampaignRunner runner(
      [] { return std::make_unique<SyntheticEngine>(); }, popt);
  const auto r = runner.run(spec);

  const obs::LogRecord* last = nullptr;
  for (const auto& rec : capture.records()) {
    if (rec.message == "campaign progress") last = &rec;
  }
  ASSERT_NE(last, nullptr);
  auto field = [&](const std::string& key) -> std::string {
    for (const auto& f : last->fields) {
      if (f.key == key) return f.value;
    }
    return "";
  };
  EXPECT_EQ(field("done"), "12");
  EXPECT_EQ(field("total"), "12");
  EXPECT_EQ(field("failures"), std::to_string(r.failures));
  EXPECT_EQ(field("latents"), std::to_string(r.latents));
  EXPECT_EQ(field("silents"), std::to_string(r.silents));
}

}  // namespace
}  // namespace fades
