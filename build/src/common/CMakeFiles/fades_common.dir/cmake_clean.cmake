file(REMOVE_RECURSE
  "CMakeFiles/fades_common.dir/bitvector.cpp.o"
  "CMakeFiles/fades_common.dir/bitvector.cpp.o.d"
  "CMakeFiles/fades_common.dir/stats.cpp.o"
  "CMakeFiles/fades_common.dir/stats.cpp.o.d"
  "libfades_common.a"
  "libfades_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
