// Routing-fabric adjacency: which pass transistor connects two routing
// nodes, and enumeration of all potential neighbours of a node. The router
// explores this graph; bitgen turns chosen edges into configuration bits;
// the delay-fault injectors toggle individual bits of it at run time.
#pragma once

#include <cstdint>
#include <optional>

#include "fpga/layout.hpp"
#include "fpga/spec.hpp"

namespace fades::synth {

using fpga::CbCoord;
using fpga::CbInPin;
using fpga::CbOutPin;
using fpga::ConfigLayout;
using fpga::DeviceSpec;
using fpga::NodeInfo;
using fpga::NodeKind;
using fpga::PmCoord;
using fpga::PmSwitch;
using fpga::RoutingNodes;

/// Enumerate every node adjacent to `node` through a (potential) pass
/// transistor: fn(neighborNode, configBitAddress).
template <typename Fn>
void forEachNeighbor(const ConfigLayout& layout, const RoutingNodes& nodes,
                     std::uint32_t node, Fn&& fn) {
  const DeviceSpec& spec = layout.spec();
  const unsigned rows = spec.rows, cols = spec.cols, tracks = spec.tracks;
  const NodeInfo n = nodes.info(node);

  auto pmBit = [&](unsigned px, unsigned py, unsigned t, PmSwitch sw) {
    return layout.pmSwitchBit(
        PmCoord{static_cast<std::uint16_t>(px), static_cast<std::uint16_t>(py)},
        t, sw);
  };

  switch (n.kind) {
    case NodeKind::HSeg: {
      const unsigned x = n.x, y = n.y, t = n.track;
      // West end: PM(x, y); this segment is the PM's E side.
      if (x >= 1) fn(nodes.hseg(x - 1, y, t), pmBit(x, y, t, PmSwitch::WE));
      if (y < rows) fn(nodes.vseg(x, y, t), pmBit(x, y, t, PmSwitch::EN));
      if (y >= 1) fn(nodes.vseg(x, y - 1, t), pmBit(x, y, t, PmSwitch::ES));
      // East end: PM(x+1, y); this segment is the PM's W side.
      if (x + 1 < cols) {
        fn(nodes.hseg(x + 1, y, t), pmBit(x + 1, y, t, PmSwitch::WE));
      }
      if (y < rows) {
        fn(nodes.vseg(x + 1, y, t), pmBit(x + 1, y, t, PmSwitch::WN));
      }
      if (y >= 1) {
        fn(nodes.vseg(x + 1, y - 1, t), pmBit(x + 1, y, t, PmSwitch::WS));
      }
      // Connection boxes: CB(x, y) touches its south horizontal channel.
      if (y < rows) {
        const CbCoord cb{static_cast<std::uint16_t>(x),
                         static_cast<std::uint16_t>(y)};
        for (unsigned p = 0; p < fpga::kCbInPins; ++p) {
          fn(nodes.cbIn(cb, static_cast<CbInPin>(p)),
             layout.cbInConnBit(cb, static_cast<CbInPin>(p), false, t));
        }
        for (unsigned p = 0; p < fpga::kCbOutPins; ++p) {
          fn(nodes.cbOut(cb, static_cast<CbOutPin>(p)),
             layout.cbOutConnBit(cb, static_cast<CbOutPin>(p), false, t));
        }
      }
      // Pads on the west / east edges.
      if (x == 0 && y < rows) fn(nodes.pad(y), layout.padConnBit(y, false, t));
      if (x == cols - 1 && y < rows) {
        fn(nodes.pad(rows + y), layout.padConnBit(rows + y, false, t));
      }
      // Memory-block pins along the north boundary channel.
      if (y == rows) {
        const unsigned cpb = layout.bramColsPerBlock();
        const unsigned block = x / cpb;
        if (block < spec.memBlocks) {
          for (unsigned k = x % cpb; k < DeviceSpec::kBramPins; k += cpb) {
            fn(nodes.bramPin(block, k),
               layout.bramPinConnBit(block, k, false, t));
          }
        }
      }
      break;
    }
    case NodeKind::VSeg: {
      const unsigned x = n.x, y = n.y, t = n.track;
      // South end: PM(x, y); this segment is the PM's N side.
      if (y >= 1) fn(nodes.vseg(x, y - 1, t), pmBit(x, y, t, PmSwitch::NS));
      if (x >= 1) fn(nodes.hseg(x - 1, y, t), pmBit(x, y, t, PmSwitch::WN));
      if (x < cols) fn(nodes.hseg(x, y, t), pmBit(x, y, t, PmSwitch::EN));
      // North end: PM(x, y+1); this segment is the PM's S side.
      if (y + 1 < rows) {
        fn(nodes.vseg(x, y + 1, t), pmBit(x, y + 1, t, PmSwitch::NS));
      }
      if (x >= 1) {
        fn(nodes.hseg(x - 1, y + 1, t), pmBit(x, y + 1, t, PmSwitch::WS));
      }
      if (x < cols) {
        fn(nodes.hseg(x, y + 1, t), pmBit(x, y + 1, t, PmSwitch::ES));
      }
      // Connection boxes: CB(x, y) touches its west vertical channel.
      if (x < cols) {
        const CbCoord cb{static_cast<std::uint16_t>(x),
                         static_cast<std::uint16_t>(y)};
        for (unsigned p = 0; p < fpga::kCbInPins; ++p) {
          fn(nodes.cbIn(cb, static_cast<CbInPin>(p)),
             layout.cbInConnBit(cb, static_cast<CbInPin>(p), true, t));
        }
        for (unsigned p = 0; p < fpga::kCbOutPins; ++p) {
          fn(nodes.cbOut(cb, static_cast<CbOutPin>(p)),
             layout.cbOutConnBit(cb, static_cast<CbOutPin>(p), true, t));
        }
      }
      if (x == 0) fn(nodes.pad(y), layout.padConnBit(y, true, t));
      if (x == cols) {
        fn(nodes.pad(rows + y), layout.padConnBit(rows + y, true, t));
      }
      if (y == rows - 1) {
        const unsigned cpb = layout.bramColsPerBlock();
        const unsigned block = x / cpb;
        if (x < cols && block < spec.memBlocks) {
          for (unsigned k = x % cpb; k < DeviceSpec::kBramPins; k += cpb) {
            fn(nodes.bramPin(block, k),
               layout.bramPinConnBit(block, k, true, t));
          }
        }
      }
      break;
    }
    case NodeKind::CbIn: {
      const CbCoord cb{static_cast<std::uint16_t>(n.x),
                       static_cast<std::uint16_t>(n.y)};
      const auto pin = static_cast<CbInPin>(n.track);
      for (unsigned t = 0; t < tracks; ++t) {
        fn(nodes.hseg(n.x, n.y, t), layout.cbInConnBit(cb, pin, false, t));
        fn(nodes.vseg(n.x, n.y, t), layout.cbInConnBit(cb, pin, true, t));
      }
      break;
    }
    case NodeKind::CbOut: {
      const CbCoord cb{static_cast<std::uint16_t>(n.x),
                       static_cast<std::uint16_t>(n.y)};
      const auto pin = static_cast<CbOutPin>(n.track);
      for (unsigned t = 0; t < tracks; ++t) {
        fn(nodes.hseg(n.x, n.y, t), layout.cbOutConnBit(cb, pin, false, t));
        fn(nodes.vseg(n.x, n.y, t), layout.cbOutConnBit(cb, pin, true, t));
      }
      break;
    }
    case NodeKind::Pad: {
      const unsigned p = n.x;
      const unsigned row = layout.padRow(p);
      for (unsigned t = 0; t < tracks; ++t) {
        if (layout.padIsWest(p)) {
          fn(nodes.hseg(0, row, t), layout.padConnBit(p, false, t));
          fn(nodes.vseg(0, row, t), layout.padConnBit(p, true, t));
        } else {
          fn(nodes.hseg(cols - 1, row, t), layout.padConnBit(p, false, t));
          fn(nodes.vseg(cols, row, t), layout.padConnBit(p, true, t));
        }
      }
      break;
    }
    case NodeKind::BramPin: {
      const unsigned block = n.x, k = n.track;
      const unsigned xb = layout.bramPinColumn(block, k);
      for (unsigned t = 0; t < tracks; ++t) {
        fn(nodes.hseg(xb, rows, t), layout.bramPinConnBit(block, k, false, t));
        fn(nodes.vseg(xb, rows - 1, t),
           layout.bramPinConnBit(block, k, true, t));
      }
      break;
    }
  }
}

/// Configuration bit of the transistor joining two adjacent nodes, if any.
inline std::optional<std::size_t> transistorBit(const ConfigLayout& layout,
                                                const RoutingNodes& nodes,
                                                std::uint32_t a,
                                                std::uint32_t b) {
  std::optional<std::size_t> result;
  forEachNeighbor(layout, nodes, a,
                  [&](std::uint32_t nb, std::size_t bit) {
                    if (nb == b && !result) result = bit;
                  });
  return result;
}

}  // namespace fades::synth
