# Empty dependencies file for fades_common.
# This may be replaced when dependencies are built.
