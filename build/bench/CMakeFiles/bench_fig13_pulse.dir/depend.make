# Empty dependencies file for bench_fig13_pulse.
# This may be replaced when dependencies are built.
