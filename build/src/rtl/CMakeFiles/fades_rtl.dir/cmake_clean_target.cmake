file(REMOVE_RECURSE
  "libfades_rtl.a"
)
