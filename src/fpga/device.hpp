// The generic SRAM-based FPGA device (paper Section 3), simulated.
//
// The device is entirely defined by its configuration memory: LUT truth
// tables, CB multiplexer settings, PM pass transistors, pad and memory-block
// setup (plane A) and memory-block contents (plane B). Execution semantics:
//
//  * Combinational logic: each used CB evaluates its 4-input LUT over the
//    values carried by the routing fabric; connectivity is resolved from the
//    ON pass transistors, exactly as the electrical structure would dictate.
//  * Sequential logic: each used FF samples its D input (own LUT output or
//    the BYP pin through InvertFFinMux) on the positive clock edge. GSR
//    drives every FF to its PRMux/CLRMux-selected value; InvertLSRMux
//    asserts one FF's local set/reset continuously until reconfigured back.
//  * Memory blocks: synchronous read-first RAM whose storage bits ARE
//    configuration-plane-B bits, which is precisely the property the paper
//    exploits for run-time bit-flip injection into memories (Section 4.1).
//  * Timing (optional mode): per-net delays derived from the routed path
//    (segments, pass transistors, loads). A flip-flop whose data arrival
//    exceeds the clock period captures the previous cycle's value, which is
//    how emulated delay faults (Section 4.3) manifest as errors.
//
// The device deliberately exposes NO netlist-level structure: everything is
// derived from configuration bits, so the fault injectors are forced to work
// the way the paper's tool works - through reconfiguration.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "fpga/layout.hpp"
#include "fpga/spec.hpp"

namespace fades::fpga {

/// A full configuration image (the "configuration file" of Figure 1).
struct Bitstream {
  common::BitVector logic;
  common::BitVector bram;
};

/// What a configuration bit means; produced by Device::decodeLogicBit and
/// used by the connectivity rebuild and by diagnostic tooling.
struct BitMeaning {
  enum class Kind : std::uint8_t {
    LutTable,
    CbField,
    CbInConn,
    CbOutConn,
    PmSwitch,
    PadField,
    PadConn,
    BramField,
    BramPinConn,
  };
  Kind kind{};
  // Transistor bits connect two routing nodes:
  std::uint32_t nodeA = 0;
  std::uint32_t nodeB = 0;
  bool isTransistor = false;
};

/// Host-side checkpoint of dynamic device state (FF states, memory contents,
/// output latches, cycle counter, pad stimuli). Used by the campaign engine
/// to replay the workload from the injection instant; it does not model a
/// hardware interface and carries no reconfiguration cost.
struct DeviceState {
  std::vector<std::uint8_t> ffState;
  common::BitVector bramContent;
  std::vector<std::uint32_t> bramLatch;
  std::vector<std::uint8_t> padInput;
  std::uint64_t cycle = 0;
};

/// How multi-driver (shorted) nets behave. Normal designs treat a short as
/// a configuration error; the permanent-fault extension (bridging faults)
/// switches to a wired-AND/OR resolution, matching the dominant-logic model.
enum class ShortPolicy : std::uint8_t { Error, WiredAnd, WiredOr };

struct TimingReport {
  double maxArrivalNs = 0.0;
  unsigned lateFfCount = 0;
  std::vector<CbCoord> lateFfs;
};

class Device {
 public:
  explicit Device(const DeviceSpec& spec);

  const DeviceSpec& spec() const { return spec_; }
  const ConfigLayout& layout() const { return layout_; }
  const RoutingNodes& nodes() const { return nodes_; }

  // --- raw configuration access (metering lives in bits::ConfigPort) -------
  bool logicBit(std::size_t addr) const { return logicCfg_.get(addr); }
  void setLogicBit(std::size_t addr, bool v);
  bool bramBit(std::size_t addr) const { return bramCfg_.get(addr); }
  void setBramBit(std::size_t addr, bool v) { bramCfg_.set(addr, v); }

  std::vector<std::uint8_t> readLogicFrame(FrameAddr f) const;
  void writeLogicFrame(FrameAddr f, std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> readBramFrame(unsigned block, unsigned minor) const;
  void writeBramFrame(unsigned block, unsigned minor,
                      std::span<const std::uint8_t> bytes);
  /// Capture plane: live FF state of one CB column (read-only).
  std::vector<std::uint8_t> readCaptureFrame(unsigned col) const;

  // Allocation-free frame reads: fill exactly spec().frameBytes bytes of
  // `out` (frame payload, zero-padded). The vector overloads above wrap
  // these; the ConfigPort shadow cache reads through them so the campaign
  // hot loop carries no per-operation heap traffic.
  void readLogicFrameInto(FrameAddr f, std::span<std::uint8_t> out) const;
  void readBramFrameInto(unsigned block, unsigned minor,
                         std::span<std::uint8_t> out) const;
  void readCaptureFrameInto(unsigned col, std::span<std::uint8_t> out) const;

  void writeFullBitstream(const Bitstream& bs);
  Bitstream readbackBitstream() const;

  /// Pulse the Global Set/Reset line: every FF assumes its SrMode value.
  void pulseGsr();

  BitMeaning decodeLogicBit(std::size_t addr) const;

  // --- execution -------------------------------------------------------------
  void setPadInput(unsigned pad, bool v);
  bool padValue(unsigned pad) const;  // settled value seen at an output pad
  /// Propagate combinational logic (also recompiles if configuration
  /// changed since the last evaluation).
  void settle();
  /// One positive clock edge, then settle.
  void step();
  std::uint64_t cycle() const { return cycle_; }

  bool ffState(CbCoord cb) const { return ffState_[cbIndex(cb)] != 0; }
  /// Raw memory-block word as currently stored (row-major at given width).
  std::uint64_t bramWord(unsigned block, unsigned width, std::size_t row) const;

  DeviceState captureState() const;
  void restoreState(const DeviceState& s);

  // --- timing ------------------------------------------------------------------
  void setTimingEnabled(bool on);
  bool timingEnabled() const { return timingEnabled_; }
  const TimingReport& timingReport();

  void setShortPolicy(ShortPolicy p) {
    shortPolicy_ = p;
    topoDirty_ = true;
  }

  // --- introspection (tests / diagnostics) ----------------------------------
  unsigned usedLutCount();
  unsigned usedFfCount();
  /// Net-level wire delay (ns) from the driver of the component containing
  /// `sinkNode` to that sink; 0 if unrouted. Requires timing mode.
  double sinkDelayNs(std::uint32_t sinkNode);

 private:
  // ----- compiled model ------------------------------------------------------
  struct LutEntry {
    std::uint16_t table = 0;
    std::uint32_t in[4] = {0, 0, 0, 0};  // value indices
    std::uint32_t cbIdx = 0;
    std::uint32_t val = 0;  // output value index
  };
  struct JoinEntry {
    std::vector<std::uint32_t> drivers;
    std::uint32_t val = 0;
    bool wiredOr = false;
  };
  struct Step {
    enum class Kind : std::uint8_t { Lut, Join } kind;
    std::uint32_t index = 0;
  };
  struct FfEntry {
    std::uint32_t cbIdx = 0;
    std::uint32_t val = 0;        // output value index
    std::uint32_t lutVal = 0;     // value index of own-CB LUT output (or 0)
    std::uint32_t bypSrc = 0;     // value index feeding BYP pin
    bool hasLut = false;
    bool fromByp = false;  // FFIN_SRC
    bool invByp = false;
    bool srMode = false;
    bool lsrForced = false;
    bool late = false;  // timing: data arrival exceeds the clock period
  };
  struct BramEntry {
    unsigned block = 0;
    unsigned width = 1;
    unsigned addrBits = 0;
    std::uint32_t addrSrc[DeviceSpec::kBramAddrPins] = {};
    std::uint32_t dinSrc[DeviceSpec::kBramDataPins] = {};
    std::uint32_t weSrc = 0;
    std::uint32_t doutValBase = 0;  // width consecutive value indices
  };
  struct PadOutEntry {
    unsigned pad = 0;
    std::uint32_t src = 0;
  };
  struct Compiled {
    std::vector<LutEntry> luts;  // in topological order interleaved via steps
    std::vector<JoinEntry> joins;
    std::vector<Step> steps;
    std::vector<FfEntry> ffs;
    std::vector<BramEntry> brams;
    std::vector<PadOutEntry> padOuts;
    std::vector<std::uint32_t> padInVal;   // per pad: value index or 0
    std::vector<std::uint32_t> lutOfCb;    // cbIdx -> lut entry index+1, 0=none
    std::vector<std::uint32_t> ffOfCb;     // cbIdx -> ff entry index+1, 0=none
    std::uint32_t valueCount = 1;          // index 0 = constant 0
  };

  std::uint32_t cbIndex(CbCoord cb) const {
    return static_cast<std::uint32_t>(cb.x) * spec_.rows + cb.y;
  }
  CbCoord cbFromIndex(std::uint32_t idx) const {
    return CbCoord{static_cast<std::uint16_t>(idx / spec_.rows),
                   static_cast<std::uint16_t>(idx % spec_.rows)};
  }

  void ensureCompiled();
  void rebuildTopology();   // connectivity + compiled model
  void refreshMisc();       // mux fields only
  void refreshLutTables();  // LUT contents only
  void computeTiming();
  void refreshLevel0();
  void runSteps();

  std::uint32_t find(std::uint32_t node) const;  // union-find lookup
  void unite(std::uint32_t a, std::uint32_t b);
  std::uint32_t sourceOfComponent(std::uint32_t pinNode);

  bool cbField(CbCoord cb, CbField f) const {
    return logicCfg_.get(layout_.cbFieldBit(cb, f));
  }

  DeviceSpec spec_;
  ConfigLayout layout_;
  RoutingNodes nodes_;

  common::BitVector logicCfg_;
  common::BitVector bramCfg_;

  // dynamic state
  std::vector<std::uint8_t> ffState_;       // per CB
  std::vector<std::uint32_t> bramLatch_;    // per block (read port register)
  std::vector<std::uint8_t> padInput_;      // per pad
  std::uint64_t cycle_ = 0;

  // compiled model + dirtiness
  Compiled compiled_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> prevD_;  // per ff entry; timing-mode stale values
  bool topoDirty_ = true;
  bool miscDirty_ = false;
  bool lutDirty_ = false;
  bool timingDirty_ = true;
  bool timingEnabled_ = false;
  ShortPolicy shortPolicy_ = ShortPolicy::Error;
  TimingReport timingReport_;

  // connectivity scratch (valid after rebuildTopology)
  mutable std::vector<std::uint32_t> parent_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::vector<std::uint32_t> compSource_;  // component root -> value index
  std::vector<double> sinkDelay_;          // per node, ns (timing mode)
};

}  // namespace fades::fpga
