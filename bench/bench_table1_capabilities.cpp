// Table 1: which FPGA resources each transient fault model targets and how
// the fault is emulated through run-time reconfiguration. Generated from
// the live injector registry (targets() probes the real location map), so
// the table reflects what the tool can actually do, not documentation.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("table1_capabilities", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();

  auto count = [&](FaultModel m, TargetClass c) -> std::string {
    try {
      return std::to_string(fades.targets(m, c, Unit::None).size());
    } catch (const common::FadesError&) {
      // Valid mechanism, but this particular implementation has no such
      // site (e.g. every FF is packed with its D-input LUT, so no routed
      // bypass inputs exist).
      return "0 in this SUT";
    }
  };

  printTable(
      "Table 1 - emulation of transient fault models with FPGAs",
      {"fault model", "FPGA target", "mechanism", "observations",
       "targets in SUT"},
      {
          {"bit-flip", "FFs", "pulse GSR line (set/reset muxes for all FFs)",
           "slower than LSR", count(FaultModel::BitFlip,
                                    TargetClass::SequentialFF)},
          {"bit-flip", "FFs", "pulse LSR line (InvertLSRMux)",
           "faster than GSR", count(FaultModel::BitFlip,
                                    TargetClass::SequentialFF)},
          {"bit-flip", "memory blocks", "modify memory bit (plane B frame)",
           "persists until rewritten",
           count(FaultModel::BitFlip, TargetClass::MemoryBlockBit)},
          {"pulse", "CB inputs", "use the input inverter mux",
           "not applicable to LUT inputs",
           count(FaultModel::Pulse, TargetClass::CbInputLine)},
          {"pulse", "LUTs", "modify LUT contents (circuit extraction)",
           "output / input / internal lines",
           count(FaultModel::Pulse, TargetClass::CombinationalLut)},
          {"delay", "PMs", "increase fan-out (ON unused pass transistor)",
           "good for small delays",
           count(FaultModel::Delay, TargetClass::CombinationalLine)},
          {"delay", "PMs", "increase routing path (detour reroute)",
           "good for large delays",
           count(FaultModel::Delay, TargetClass::SequentialLine)},
          {"indetermination", "FFs", "see bit-flip + random final value",
           "hold via LSR for the duration",
           count(FaultModel::Indetermination, TargetClass::SequentialFF)},
          {"indetermination", "LUTs", "see pulse + random final value",
           "optional per-cycle oscillation",
           count(FaultModel::Indetermination,
                 TargetClass::CombinationalLut)},
      });
  return 0;
}
