file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mbu.dir/bench_ext_mbu.cpp.o"
  "CMakeFiles/bench_ext_mbu.dir/bench_ext_mbu.cpp.o.d"
  "bench_ext_mbu"
  "bench_ext_mbu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mbu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
