file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_edge.dir/fpga_edge_test.cpp.o"
  "CMakeFiles/test_fpga_edge.dir/fpga_edge_test.cpp.o.d"
  "test_fpga_edge"
  "test_fpga_edge.pdb"
  "test_fpga_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
