#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace fades::common {

BitVector::BitVector(std::size_t bitCount, bool fill)
    : bitCount_(bitCount), words_((bitCount + 63) / 64, fill ? ~0ULL : 0ULL) {
  if (fill && (bitCount & 63) != 0) {
    // Keep unused high bits zero so operator== and popcount stay exact.
    words_.back() &= (1ULL << (bitCount & 63)) - 1;
  }
}

void BitVector::clearAll() { std::fill(words_.begin(), words_.end(), 0ULL); }

void BitVector::setAll() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  if ((bitCount_ & 63) != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (bitCount_ & 63)) - 1;
  }
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void BitVector::copyBits(const BitVector& src, std::size_t srcOff,
                         BitVector& dst, std::size_t dstOff, std::size_t n) {
  assert(srcOff + n <= src.size() && dstOff + n <= dst.size());
  for (std::size_t k = 0; k < n; ++k) dst.set(dstOff + k, src.get(srcOff + k));
}

std::vector<std::uint8_t> BitVector::exportBytes(std::size_t bitOff,
                                                 std::size_t n) const {
  std::vector<std::uint8_t> out((n + 7) / 8, 0);
  exportBytesInto(bitOff, n, out);
  return out;
}

void BitVector::exportBytesInto(std::size_t bitOff, std::size_t n,
                                std::span<std::uint8_t> out) const {
  assert(bitOff + n <= bitCount_);
  const std::size_t nBytes = (n + 7) / 8;
  assert(out.size() >= nBytes);
  const unsigned shift = static_cast<unsigned>(bitOff & 63);
  std::size_t w = bitOff >> 6;
  std::size_t k = 0;
  while (k < nBytes) {
    std::uint64_t v = words_[w] >> shift;
    if (shift != 0 && w + 1 < words_.size()) {
      v |= words_[w + 1] << (64 - shift);
    }
    const std::size_t group = std::min<std::size_t>(8, nBytes - k);
    for (std::size_t j = 0; j < group; ++j) {
      out[k + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
    k += group;
    ++w;
  }
  if ((n & 7) != 0) {
    // Zero the tail bits past n, matching the per-bit exporter.
    out[nBytes - 1] &= static_cast<std::uint8_t>((1u << (n & 7)) - 1);
  }
}

void BitVector::importBytes(std::size_t bitOff, std::size_t n,
                            std::span<const std::uint8_t> bytes) {
  assert(bitOff + n <= bitCount_);
  assert(bytes.size() >= (n + 7) / 8);
  for (std::size_t k = 0; k < n; ++k) {
    set(bitOff + k, (bytes[k >> 3] >> (k & 7)) & 1u);
  }
}

std::uint64_t BitVector::getWord(std::size_t bitOff, unsigned n) const {
  assert(n <= 64 && bitOff + n <= bitCount_);
  std::uint64_t v = 0;
  for (unsigned k = 0; k < n; ++k) {
    v |= static_cast<std::uint64_t>(get(bitOff + k)) << k;
  }
  return v;
}

void BitVector::setWord(std::size_t bitOff, unsigned n, std::uint64_t value) {
  assert(n <= 64 && bitOff + n <= bitCount_);
  for (unsigned k = 0; k < n; ++k) set(bitOff + k, (value >> k) & 1ULL);
}

std::vector<std::size_t> BitVector::diff(const BitVector& other) const {
  assert(bitCount_ == other.bitCount_);
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t x = words_[w] ^ other.words_[w];
    while (x != 0) {
      const int b = std::countr_zero(x);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      x &= x - 1;
    }
  }
  return out;
}

std::string BitVector::toString(std::size_t bitOff, std::size_t n) const {
  std::string s;
  s.reserve(n);
  for (std::size_t k = 0; k < n; ++k) s.push_back(get(bitOff + k) ? '1' : '0');
  return s;
}

}  // namespace fades::common
