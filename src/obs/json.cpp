#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fades::obs {

Json& Json::set(const std::string& key, Json value) {
  type_ = Type::Object;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string numberToString(double d, bool isInt, bool isUnsigned,
                           std::int64_t i) {
  char buf[40];
  if (isInt) {
    if (isUnsigned) {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(i));
    } else {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(i));
    }
    return buf;
  }
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim the %.17g representation when a shorter one round-trips.
  char shorter[40];
  std::snprintf(shorter, sizeof shorter, "%.15g", d);
  if (std::strtod(shorter, nullptr) == d) return shorter;
  return buf;
}

}  // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string closePad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: out += numberToString(num_, isInt_, isUnsigned_, int_); break;
    case Type::String:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += closePad;
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(members_[i].first);
        out += '"';
        out += colon;
        members_[i].second.dumpTo(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += closePad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error{};

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parseValue(Json& out) {
    skipWs();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parseObject(out);
    if (c == '[') return parseArray(out);
    if (c == '"') {
      std::string s;
      if (!parseString(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == 't' || c == 'f') return parseKeyword(out);
    if (c == 'n') return parseKeyword(out);
    return parseNumber(out);
  }

  bool parseKeyword(Json& out) {
    auto match = [&](std::string_view kw) {
      if (text.substr(pos, kw.size()) == kw) {
        pos += kw.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      out = Json(true);
      return true;
    }
    if (match("false")) {
      out = Json(false);
      return true;
    }
    if (match("null")) {
      out = Json(nullptr);
      return true;
    }
    return fail("invalid keyword");
  }

  bool parseNumber(Json& out) {
    const std::size_t start = pos;
    bool isInt = true;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      isInt = false;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      isInt = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start) return fail("invalid number");
    const std::string token(text.substr(start, pos - start));
    if (isInt) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out = Json(static_cast<std::int64_t>(v));
        return true;
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    out = Json(d);
    return true;
  }

  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs are not produced by
            // our writers).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("invalid escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parseArray(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    skipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json v;
      if (!parseValue(v)) return false;
      out.push(std::move(v));
      skipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parseObject(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    skipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      if (!consume(':')) return false;
      Json v;
      if (!parseValue(v)) return false;
      out.set(key, std::move(v));
      skipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text};
  Json out;
  if (!p.parseValue(out)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skipWs();
  if (p.pos != text.size()) {
    if (error != nullptr) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return out;
}

}  // namespace fades::obs
