#include "core/fades.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/lut_circuit.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "synth/fabric.hpp"

namespace fades::core {

using common::ErrorKind;
using common::raise;
using common::require;
using common::Rng;
using fpga::CbCoord;
using fpga::CbField;
using fpga::NodeKind;

FadesTool::FadesTool(fpga::Device& device, const synth::Implementation& impl,
                     std::uint64_t runCycles, FadesOptions options)
    : dev_(device),
      impl_(impl),
      runCycles_(runCycles),
      opt_(std::move(options)),
      port_(device),
      system_(device, impl),
      ctrFailures_(obs::Registry::global().counter(
          "campaign.experiments{outcome=failure}")),
      ctrLatents_(obs::Registry::global().counter(
          "campaign.experiments{outcome=latent}")),
      ctrSilents_(obs::Registry::global().counter(
          "campaign.experiments{outcome=silent}")),
      modeledSecondsHist_(obs::Registry::global().histogram(
          "experiment.modeled_seconds",
          {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0})) {
  obs::Span setupSpan{"setup", {{"device", dev_.spec().name}}};
  port_.setCacheEnabled(opt_.sessionFrameCache);
  // One-time download of the configuration file (Figure 1).
  port_.writeFullBitstream(impl_.bitstream);
  setupSeconds_ = opt_.link.seconds(port_.meter());
  port_.resetMeter();

  // Location-map derived indexes.
  {
    std::vector<std::uint8_t> colUsed(dev_.spec().cols, 0);
    for (const auto& f : impl_.flops) colUsed[f.cb.x] = 1;
    for (unsigned c = 0; c < dev_.spec().cols; ++c) {
      if (colUsed[c]) usedCaptureCols_.push_back(c);
    }
    std::vector<std::uint8_t> blockUsed(dev_.spec().memBlocks, 0);
    for (const auto& r : impl_.rams) {
      for (const auto& s : r.slices) blockUsed[s.block] = 1;
    }
    for (unsigned b = 0; b < dev_.spec().memBlocks; ++b) {
      if (blockUsed[b]) usedBramBlocks_.push_back(b);
    }
    for (const auto& r : impl_.routes) {
      usedNodes_.insert(r.sourceNode);
      usedNodes_.insert(r.sinkNodes.begin(), r.sinkNodes.end());
      usedNodes_.insert(r.wireNodes.begin(), r.wireNodes.end());
    }
    fullStateReadBytes_ =
        usedCaptureCols_.size() * dev_.spec().frameBytes +
        std::uint64_t{usedBramBlocks_.size()} *
            dev_.layout().bramFramesPerBlock() * dev_.spec().frameBytes;
  }

  // Golden run: trace, checkpoints, final state.
  golden_.outputs.reserve(runCycles_);
  for (std::uint64_t c = 0; c < runCycles_; ++c) {
    if (c % opt_.checkpointInterval == 0) {
      checkpoints_.push_back(dev_.captureState());
    }
    golden_.outputs.push_back(outputWord());
    dev_.step();
  }
  captureFinalStateViaPort(golden_, /*chargeOnly=*/false);
  port_.resetMeter();

  // The unreliable-link model arms only now: setup (bitstream download +
  // golden run) happens on a quiet link, so replica construction never
  // raises LinkError and every fault lands inside a retryable experiment.
  port_.setRetryPolicy(opt_.linkRetry);
  port_.setLinkFaults(opt_.linkFaults);
}

void FadesTool::recoverLink() {
  // A link fault can abandon a reconfiguration session mid-write, leaving a
  // partially updated configuration plane that no checkpoint restore can
  // repair (checkpoints hold dynamic state, not configuration). Drop the
  // wedged session - pending shadow writes must NOT be flushed - and
  // re-download the configuration file. The recovery transfer runs with the
  // fault model suspended (the modeled operator re-initializes a quiet
  // board) and the meter is reset afterwards, so recovery cost never leaks
  // into the next experiment's modeled seconds.
  const bits::LinkFaultOptions faults = port_.linkFaults();
  port_.setLinkFaults({});
  port_.dropSession();
  port_.writeFullBitstream(impl_.bitstream);
  port_.setLinkFaults(faults);
  port_.resetMeter();
}

std::uint64_t FadesTool::outputWord() const {
  std::uint64_t w = 0;
  unsigned shift = 0;
  for (const auto& p : opt_.observedOutputs) {
    w |= system_.portValue(p) << shift;
    shift += 16;
  }
  return w;
}

void FadesTool::captureFinalStateViaPort(Observation& obs, bool chargeOnly) {
  if (chargeOnly) {
    port_.chargeCapture(fullStateReadBytes_);
    return;
  }
  // One batched read-back of the capture plane plus the content plane; the
  // meter charges it as a single capture operation of the combined size.
  obs.finalFlops.clear();
  obs.finalFlops.reserve(impl_.flops.size());
  std::map<unsigned, std::vector<std::uint8_t>> captureByCol;
  for (unsigned col : usedCaptureCols_) {
    captureByCol[col] = dev_.readCaptureFrame(col);  // content; cost below
  }
  for (const auto& f : impl_.flops) {
    const auto& bytes = captureByCol[f.cb.x];
    obs.finalFlops.push_back((bytes[f.cb.y >> 3] >> (f.cb.y & 7)) & 1u);
  }
  obs.finalMemory.clear();
  for (unsigned block : usedBramBlocks_) {
    for (unsigned m = 0; m < dev_.layout().bramFramesPerBlock(); ++m) {
      const auto bytes = dev_.readBramFrame(block, m);
      for (std::size_t k = 0; k + 7 < bytes.size(); k += 8) {
        std::uint64_t w = 0;
        for (unsigned j = 0; j < 8; ++j) {
          w |= static_cast<std::uint64_t>(bytes[k + j]) << (8 * j);
        }
        obs.finalMemory.push_back(w);
      }
    }
  }
  port_.chargeCapture(fullStateReadBytes_);
}

void FadesTool::chargeExperimentBaseline() {
  // Reset to the initial state (Figure 1 "new experiment"): GSR pulse plus
  // re-initialisation of the memory-block contents, which faults and the
  // workload itself may have dirtied (Section 4.1: memory bit-flips persist
  // until rewritten).
  port_.chargeCommand();  // GSR
  port_.chargeWrite(std::uint64_t{usedBramBlocks_.size()} *
                    dev_.layout().bramFramesPerBlock() *
                    dev_.spec().frameBytes);
  // Output-trace upload from the on-board capture buffer (2 bytes/cycle).
  port_.chargeRead(runCycles_ * 2);
}

double FadesTool::meterSeconds() const {
  return opt_.link.seconds(port_.meter());
}

const fpga::DeviceState& FadesTool::checkpointAtOrBefore(
    std::uint64_t cycle, std::uint64_t& ckCycle) const {
  const std::size_t idx = std::min<std::size_t>(
      cycle / opt_.checkpointInterval, checkpoints_.size() - 1);
  ckCycle = idx * opt_.checkpointInterval;
  return checkpoints_[idx];
}

// ---------------------------------------------------------------------------
// Target enumeration (the fault-location process, Section 2)
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> FadesTool::targets(FaultModel model,
                                              TargetClass cls,
                                              Unit unit) const {
  std::vector<std::uint32_t> out;
  switch (cls) {
    case TargetClass::SequentialFF:
      out = impl_.flopsInUnit(unit);
      break;
    case TargetClass::MemoryBlockBit: {
      for (const auto& r : impl_.rams) {
        if (r.isRom) continue;  // the paper targets RAM, not program store
        if (unit != Unit::None && r.unit != unit) continue;
        for (const auto& s : r.slices) {
          const unsigned rows = 1u << r.addrBits;
          for (unsigned bit = 0; bit < rows * s.width; ++bit) {
            out.push_back((s.block << 16) | bit);
          }
        }
      }
      break;
    }
    case TargetClass::CombinationalLut:
      for (auto i : impl_.lutsInUnit(unit)) {
        if (impl_.luts[i].out.valid()) out.push_back(i);  // skip const LUTs
      }
      break;
    case TargetClass::CbInputLine:
      for (auto i : impl_.flopsInUnit(unit)) {
        if (impl_.flops[i].bypassInput) out.push_back(i);
      }
      break;
    case TargetClass::SequentialLine:
    case TargetClass::CombinationalLine: {
      const bool seq = (cls == TargetClass::SequentialLine);
      for (auto i : impl_.routesInUnit(unit, seq)) {
        if (!impl_.routes[i].wireNodes.empty()) out.push_back(i);
      }
      break;
    }
  }
  require(!out.empty(), ErrorKind::InjectionError,
          std::string("no FADES targets: ") + toString(model) + " on " +
              toString(cls));
  return out;
}

std::string FadesTool::targetName(TargetClass cls,
                                  std::uint32_t target) const {
  switch (cls) {
    case TargetClass::SequentialFF:
      return impl_.flops[target].name;
    case TargetClass::MemoryBlockBit:
      return "bram" + std::to_string(target >> 16) + ".bit" +
             std::to_string(target & 0xFFFF);
    case TargetClass::CombinationalLut:
      return "lut:" + impl_.luts[target].signalName;
    case TargetClass::CbInputLine:
      return "byp:" + impl_.flops[target].name;
    case TargetClass::SequentialLine:
    case TargetClass::CombinationalLine:
      return "net:" + impl_.routes[target].signalName;
  }
  return "?";
}

Unit FadesTool::targetUnit(TargetClass cls, std::uint32_t target) const {
  switch (cls) {
    case TargetClass::SequentialFF:
    case TargetClass::CbInputLine:
      return impl_.flops[target].unit;
    case TargetClass::MemoryBlockBit: {
      const unsigned block = target >> 16;
      for (const auto& r : impl_.rams) {
        for (const auto& s : r.slices) {
          if (s.block == block) return r.unit;
        }
      }
      return Unit::None;
    }
    case TargetClass::CombinationalLut:
      return impl_.luts[target].unit;
    case TargetClass::SequentialLine:
    case TargetClass::CombinationalLine:
      return impl_.routes[target].unit;
  }
  return Unit::None;
}

// ---------------------------------------------------------------------------
// Injection mechanisms (Section 4 / Table 1)
// ---------------------------------------------------------------------------

void FadesTool::inject(ActiveFault& fault, Rng& rng, double durationCycles) {
  const auto& layout = dev_.layout();
  switch (fault.model) {
    case FaultModel::BitFlip: {
      if (fault.cls == TargetClass::SequentialFF) {
        fault.cb = impl_.flops[fault.target].cb;
        port_.beginSession();
        if (opt_.bitFlipVia == BitFlipVia::Lsr) {
          // Fast path (Section 4.1): read the FF state, select the opposite
          // level on PRMux/CLRMux, pulse the local set/reset by toggling
          // InvertLSRMux.
          const bool state = port_.readFfState(fault.cb);
          const std::pair<CbField, bool> set[] = {{CbField::SrMode, !state},
                                                  {CbField::InvLsr, true}};
          port_.updateCbFields(fault.cb, set);
          port_.settle();
          // Deassert the LSR and put SrMode back in one pass.
          const std::pair<CbField, bool> clr[] = {
              {CbField::InvLsr, false},
              {CbField::SrMode, impl_.flops[fault.target].init}};
          port_.updateCbFieldsBlind(fault.cb, clr);
          port_.endSession();
        } else {
          // GSR path: read back ALL flip-flop states, configure every FF's
          // set/reset mux to reproduce its state (target inverted), pulse
          // the global line, then restore the mux selections. This is the
          // high-traffic approach the paper advises against.
          std::map<unsigned, std::vector<std::uint8_t>> capture;
          for (unsigned col : usedCaptureCols_) {
            capture[col] = port_.readCaptureFrame(col);
          }
          std::vector<std::pair<std::size_t, bool>> setBits, restoreBits;
          for (std::uint32_t i = 0; i < impl_.flops.size(); ++i) {
            const auto& site = impl_.flops[i];
            const auto& bytes = capture[site.cb.x];
            bool state = (bytes[site.cb.y >> 3] >> (site.cb.y & 7)) & 1u;
            if (i == fault.target) state = !state;
            setBits.emplace_back(layout.cbFieldBit(site.cb, CbField::SrMode),
                                 state);
            restoreBits.emplace_back(
                layout.cbFieldBit(site.cb, CbField::SrMode), site.init);
          }
          port_.setLogicBits(setBits);
          port_.pulseGsr();
          port_.setLogicBitsBlind(restoreBits);
          port_.endSession();
          dev_.settle();
        }
        fault.needsRemoval = false;  // bit-flips persist until rewritten
      } else {
        // Memory-block bit-flip (Section 4.1, Figure 4): read the stored
        // bit from the configuration memory and write it back inverted.
        const unsigned block = fault.target >> 16;
        const unsigned bit = fault.target & 0xFFFF;
        port_.beginSession();
        const bool v = port_.getBramBit(block, bit);
        port_.setBramBit(block, bit, !v);
        port_.endSession();
        fault.needsRemoval = false;
      }
      break;
    }
    case FaultModel::Pulse: {
      if (fault.cls == TargetClass::CombinationalLut) {
        fault.cb = impl_.luts[fault.target].cb;
        port_.beginSession();
        // Section 4.2 / Figure 5: read the table, extract the circuit,
        // invert one line (output, input or internal), download.
        fault.originalTable = port_.getLutTable(fault.cb);
        const ExtractedCircuit circuit(fault.originalTable);
        const unsigned line =
            static_cast<unsigned>(rng.below(circuit.candidateLineCount()));
        port_.setLutTable(fault.cb, circuit.tableWithFaultedLine(line));
        port_.settle();
        fault.needsRemoval = true;
      } else {
        // CB input through its inverter multiplexer (Figure 6).
        fault.cb = impl_.flops[fault.target].cb;
        port_.beginSession();
        const std::pair<CbField, bool> set[] = {{CbField::InvByp, true}};
        port_.updateCbFields(fault.cb, set);
        port_.settle();
        fault.needsRemoval = true;
      }
      (void)durationCycles;
      break;
    }
    case FaultModel::Delay: {
      const auto& route = impl_.routes[fault.target];
      const auto& nodes = dev_.nodes();
      std::vector<std::pair<std::size_t, bool>> changes;  // (bit, newValue)

      auto trySegment = [&](std::uint32_t node) {
        const auto k = nodes.info(node).kind;
        return k == NodeKind::HSeg || k == NodeKind::VSeg;
      };

      if (opt_.delayVia == DelayVia::ShiftRegister) {
        // Figure 7: break the line at its driver and re-route it through an
        // unused CB whose flip-flop acts as a shift-register stage - the
        // signal arrives whole clock cycles late while the fault is active.
        auto bfsTo = [&](std::uint32_t from, std::uint32_t to,
                         std::size_t forbiddenBit,
                         const std::set<std::uint32_t>& avoid)
            -> std::pair<std::vector<std::size_t>,
                         std::vector<std::uint32_t>> {
          std::map<std::uint32_t, std::pair<std::uint32_t, std::size_t>> prev;
          std::vector<std::uint32_t> queue{from};
          prev[from] = {from, 0};
          bool found = false;
          for (std::size_t h = 0; h < queue.size() && !found; ++h) {
            const std::uint32_t n = queue[h];
            synth::forEachNeighbor(
                dev_.layout(), nodes, n,
                [&](std::uint32_t nb, std::size_t bit) {
                  if (found || bit == forbiddenBit || prev.count(nb)) return;
                  if (nb == to) {
                    prev[nb] = {n, bit};
                    found = true;
                    return;
                  }
                  if (!trySegment(nb) || usedNodes_.count(nb) ||
                      avoid.count(nb) || queue.size() > 6000) {
                    return;
                  }
                  prev[nb] = {n, bit};
                  queue.push_back(nb);
                });
          }
          std::vector<std::size_t> bits;
          std::vector<std::uint32_t> pathNodes;
          if (!found) return {bits, pathNodes};
          std::uint32_t n = to;
          while (n != from) {
            const auto [p, bit] = prev[n];
            bits.push_back(bit);
            pathNodes.push_back(n);
            n = p;
          }
          return {bits, pathNodes};
        };

        // The source pin must hang off the tree through exactly one edge.
        std::size_t srcEdge = route.edgeNodes.size();
        unsigned srcEdgeCount = 0;
        for (std::size_t ei = 0; ei < route.edgeNodes.size(); ++ei) {
          if (route.edgeNodes[ei].first == route.sourceNode ||
              route.edgeNodes[ei].second == route.sourceNode) {
            srcEdge = ei;
            ++srcEdgeCount;
          }
        }
        if (srcEdgeCount == 1) {
          const auto [ea, eb] = route.edgeNodes[srcEdge];
          const std::uint32_t s0 = (ea == route.sourceNode) ? eb : ea;
          const std::size_t directBit = route.transistorBits[srcEdge];

          // Find a fully unused CB near the first segment.
          double sx, sy;
          nodes.position(s0, sx, sy);
          const auto& layout = dev_.layout();
          fpga::CbCoord spare{};
          bool haveSpare = false;
          for (int radius = 1; radius <= 6 && !haveSpare; ++radius) {
            for (int dy = -radius; dy <= radius && !haveSpare; ++dy) {
              for (int dx = -radius; dx <= radius && !haveSpare; ++dx) {
                const int x = static_cast<int>(sx) + dx;
                const int y = static_cast<int>(sy) + dy;
                if (x < 0 || y < 0 || x >= int(dev_.spec().cols) ||
                    y >= int(dev_.spec().rows)) {
                  continue;
                }
                const fpga::CbCoord cb{static_cast<std::uint16_t>(x),
                                       static_cast<std::uint16_t>(y)};
                if (dev_.logicBit(layout.cbFieldBit(cb, CbField::FfUsed)) ||
                    dev_.logicBit(layout.cbFieldBit(cb, CbField::LutUsed))) {
                  continue;
                }
                spare = cb;
                haveSpare = true;
              }
            }
          }
          if (haveSpare) {
            const auto bypPin = nodes.cbIn(spare, fpga::CbInPin::Byp);
            const auto ffPin = nodes.cbOut(spare, fpga::CbOutPin::Ff);
            const auto [leg1, leg1Nodes] =
                bfsTo(route.sourceNode, bypPin, directBit, {});
            std::set<std::uint32_t> avoid(leg1Nodes.begin(),
                                          leg1Nodes.end());
            const auto [leg2, leg2Nodes] =
                bfsTo(ffPin, s0, directBit, avoid);
            (void)leg2Nodes;
            if (!leg1.empty() && !leg2.empty()) {
              changes.emplace_back(directBit, false);
              for (auto bit : leg1) changes.emplace_back(bit, true);
              for (auto bit : leg2) changes.emplace_back(bit, true);
              changes.emplace_back(layout.cbFieldBit(spare, CbField::FfUsed),
                                   true);
              changes.emplace_back(
                  layout.cbFieldBit(spare, CbField::FfInSrc), true);
            }
          }
        }
      } else if (opt_.delayVia == DelayVia::Reroute) {
        // Open one wire-to-wire hop of the route and close a longer detour
        // through unused fabric (Table 1: "increase routing path"). The
        // detour passes through a random via waypoint several tiles away,
        // so the added wire length - and therefore the injected delay -
        // varies from fault to fault, like a physical delay distribution.
        auto bfs = [&](std::uint32_t from, std::uint32_t to,
                       std::size_t forbiddenBit,
                       const std::map<std::uint32_t, bool>& avoid)
            -> std::vector<std::pair<std::size_t, std::uint32_t>> {
          // Returns (transistorBit, node) hops from `from` to `to`.
          std::map<std::uint32_t, std::pair<std::uint32_t, std::size_t>> prev;
          std::vector<std::uint32_t> queue{from};
          prev[from] = {from, 0};
          bool found = false;
          for (std::size_t h = 0; h < queue.size() && !found; ++h) {
            const std::uint32_t n = queue[h];
            synth::forEachNeighbor(
                dev_.layout(), nodes, n,
                [&](std::uint32_t nb, std::size_t bit) {
                  if (found || bit == forbiddenBit) return;
                  if (prev.count(nb)) return;
                  if (nb == to) {
                    prev[nb] = {n, bit};
                    found = true;
                    return;
                  }
                  if (!trySegment(nb) || usedNodes_.count(nb) ||
                      avoid.count(nb) || queue.size() > 6000) {
                    return;
                  }
                  prev[nb] = {n, bit};
                  queue.push_back(nb);
                });
          }
          std::vector<std::pair<std::size_t, std::uint32_t>> path;
          if (!found) return path;
          std::uint32_t n = to;
          while (n != from) {
            const auto [p, bit] = prev[n];
            path.emplace_back(bit, n);
            n = p;
          }
          return path;
        };

        std::vector<std::size_t> edgeOrder(route.edgeNodes.size());
        for (std::size_t i = 0; i < edgeOrder.size(); ++i) edgeOrder[i] = i;
        for (std::size_t i = edgeOrder.size(); i > 1; --i) {
          std::swap(edgeOrder[i - 1], edgeOrder[rng.below(i)]);
        }
        for (std::size_t ei : edgeOrder) {
          const auto [a, b] = route.edgeNodes[ei];
          if (!trySegment(a) || !trySegment(b)) continue;
          const std::size_t directBit = route.transistorBits[ei];

          double ax, ay;
          nodes.position(a, ax, ay);
          const auto& spec = dev_.spec();
          const int radius = 2 + static_cast<int>(rng.below(11));
          bool done = false;
          for (int attempt = 0; attempt < 16 && !done; ++attempt) {
            const int vx = std::clamp<int>(
                static_cast<int>(ax) + static_cast<int>(rng.below(2u * radius + 1)) - radius,
                0, static_cast<int>(spec.cols) - 1);
            const int vy = std::clamp<int>(
                static_cast<int>(ay) + static_cast<int>(rng.below(2u * radius + 1)) - radius,
                0, static_cast<int>(spec.rows) - 1);
            const unsigned t = static_cast<unsigned>(rng.below(spec.tracks));
            const std::uint32_t via =
                rng.coin() ? nodes.hseg(static_cast<unsigned>(vx),
                                        static_cast<unsigned>(vy), t)
                           : nodes.vseg(static_cast<unsigned>(vx),
                                        static_cast<unsigned>(vy), t);
            if (usedNodes_.count(via) || via == a || via == b) continue;

            const auto leg1 = bfs(a, via, directBit, {});
            if (leg1.empty()) continue;
            std::map<std::uint32_t, bool> avoid;
            for (const auto& [bit, n] : leg1) avoid[n] = true;
            avoid.erase(via);
            const auto leg2 = bfs(via, b, directBit, avoid);
            if (leg2.empty()) continue;

            changes.emplace_back(directBit, false);
            for (const auto& [bit, n] : leg1) changes.emplace_back(bit, true);
            for (const auto& [bit, n] : leg2) changes.emplace_back(bit, true);
            done = true;
          }
          if (done) break;
        }
      }
      if (changes.empty()) {
        // Fan-out increase (Figure 8): switch ON an unused pass transistor
        // touching the line; fallback when no detour exists.
        std::vector<std::uint32_t> wireOrder = route.wireNodes;
        for (std::size_t i = wireOrder.size(); i > 1; --i) {
          std::swap(wireOrder[i - 1], wireOrder[rng.below(i)]);
        }
        for (std::uint32_t w : wireOrder) {
          bool done = false;
          synth::forEachNeighbor(dev_.layout(), nodes, w,
                                 [&](std::uint32_t nb, std::size_t bit) {
                                   if (done || !trySegment(nb)) return;
                                   if (usedNodes_.count(nb)) return;
                                   if (dev_.logicBit(bit)) return;
                                   changes.emplace_back(bit, true);
                                   done = true;
                                 });
          if (done) break;
        }
      }
      require(!changes.empty(), ErrorKind::InjectionError,
              "no delay-fault site available on net " + route.signalName);

      port_.beginSession();
      if (opt_.fullDownloadForDelay) {
        // Replicates the paper's JBits/driver limitation: the whole
        // configuration file is transferred even for a handful of bits.
        for (const auto& [bit, v] : changes) dev_.setLogicBit(bit, v);
        port_.invalidate();  // logic plane changed behind the port's back
        port_.chargeFullImage();
      } else {
        std::vector<std::pair<std::size_t, bool>> updates(changes.begin(),
                                                          changes.end());
        port_.setLogicBits(updates);
      }
      port_.settle();
      for (const auto& [bit, v] : changes) {
        fault.restoreBits.emplace_back(bit, !v);
      }
      fault.needsRemoval = true;
      break;
    }
    case FaultModel::Indetermination: {
      fault.indetValue = rng.coin();
      if (fault.cls == TargetClass::SequentialFF) {
        // Section 4.4: the undetermined level resolves to a random final
        // logic value; the FF's local set/reset holds it for the duration.
        fault.cb = impl_.flops[fault.target].cb;
        port_.beginSession();
        const std::pair<CbField, bool> set[] = {
            {CbField::SrMode, fault.indetValue}, {CbField::InvLsr, true}};
        port_.updateCbFieldsBlind(fault.cb, set);
        port_.settle();
        fault.needsRemoval = true;
      } else {
        fault.cb = impl_.luts[fault.target].cb;
        fault.originalTable = impl_.luts[fault.target].table;  // host mirror
        port_.beginSession();
        port_.setLutTableBlind(
            fault.cb, static_cast<std::uint16_t>(rng.below(0x10000)));
        port_.settle();
        fault.needsRemoval = true;
      }
      break;
    }
  }
}

void FadesTool::oscillate(ActiveFault& fault, Rng& rng) {
  if (fault.model != FaultModel::Indetermination) return;
  // Re-randomizing mid-fault is a fresh reconfiguration pass each cycle -
  // the mechanism behind the paper's ~4605 s oscillating campaigns.
  port_.beginSession();
  if (fault.cls == TargetClass::SequentialFF) {
    const std::pair<CbField, bool> set[] = {{CbField::SrMode, rng.coin()}};
    port_.updateCbFieldsBlind(fault.cb, set);
  } else {
    port_.setLutTableBlind(fault.cb,
                           static_cast<std::uint16_t>(rng.below(0x10000)));
  }
  port_.settle();
}

void FadesTool::remove(ActiveFault& fault) {
  if (!fault.needsRemoval) return;
  switch (fault.model) {
    case FaultModel::Pulse:
      // Pulses spanning whole cycles need a second reconfiguration pass;
      // sub-cycle ones were injected and removed within one (Section 6.2).
      if (!fault.subCycle) port_.beginSession();
      if (fault.cls == TargetClass::CombinationalLut) {
        if (!fault.subCycle) {
          // Separate pass: the tool re-reads the (faulted) table to verify
          // the injection before writing the original back.
          (void)port_.getLutTable(fault.cb);
        }
        port_.setLutTable(fault.cb, fault.originalTable);
      } else {
        const std::pair<CbField, bool> clr[] = {{CbField::InvByp, false}};
        port_.updateCbFields(fault.cb, clr);
      }
      break;
    case FaultModel::Delay:
      port_.beginSession();
      if (opt_.fullDownloadForDelay) {
        for (const auto& [bit, v] : fault.restoreBits) {
          dev_.setLogicBit(bit, v);
        }
        port_.invalidate();  // logic plane changed behind the port's back
        port_.chargeFullImage();
      } else {
        port_.setLogicBits(fault.restoreBits);
      }
      break;
    case FaultModel::Indetermination:
      if (fault.cls == TargetClass::SequentialFF) {
        // The LSR line holds the random level for the whole duration, so
        // releasing it is a fresh driver round-trip at expiry.
        if (!fault.subCycle) port_.beginSession();
        const std::pair<CbField, bool> clr[] = {
            {CbField::InvLsr, false},
            {CbField::SrMode, impl_.flops[fault.target].init}};
        port_.updateCbFieldsBlind(fault.cb, clr);
      } else {
        // LUT restore needs no fresh device data (the randomizer works
        // from the host mirror), so it rides the open session.
        port_.setLutTableBlind(fault.cb, fault.originalTable);
      }
      break;
    case FaultModel::BitFlip:
      break;  // persists until rewritten
  }
  port_.endSession();
  dev_.settle();
  fault.needsRemoval = false;
}

// ---------------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------------

Outcome FadesTool::runExperiment(FaultModel model, TargetClass cls,
                                 std::uint32_t target,
                                 std::uint64_t injectCycle,
                                 double durationCycles, Rng& rng,
                                 double* modeledSeconds,
                                 bits::TransferMeter* meterOut,
                                 std::int64_t* detectCycleOut) {
  require(injectCycle < runCycles_, ErrorKind::InvalidArgument,
          "injection instant beyond workload");
  // Fan-out and detour delays work through the timing model (they make
  // paths miss setup); the shift-register mechanism is functional and needs
  // no timing analysis.
  if (model == FaultModel::Delay &&
      opt_.delayVia != DelayVia::ShiftRegister && !dev_.timingEnabled()) {
    dev_.setTimingEnabled(true);
    dev_.settle();
    require(dev_.timingReport().lateFfCount == 0, ErrorKind::ConfigError,
            "fault-free design misses timing; increase clockPeriodNs");
  }

  port_.resetMeter();
  chargeExperimentBaseline();

  {
    // Host-side replay from the nearest checkpoint (the modeled flow runs the
    // workload from reset; its duration is charged via fpgaClockHz below).
    obs::Span locateSpan{"locate", {{"target", std::to_string(target)}}};
    std::uint64_t ckCycle = 0;
    dev_.restoreState(checkpointAtOrBefore(injectCycle, ckCycle));
    for (std::uint64_t c = ckCycle; c < injectCycle; ++c) dev_.step();
  }

  // Sub-cycle faults overlap a sampling edge with probability = duration.
  std::uint64_t effectiveCycles;
  if (durationCycles < 1.0) {
    effectiveCycles = rng.uniform01() < durationCycles ? 1 : 0;
  } else {
    effectiveCycles = static_cast<std::uint64_t>(durationCycles + 0.5);
  }

  Observation faulty;
  faulty.outputs.assign(
      golden_.outputs.begin(),
      golden_.outputs.begin() + static_cast<std::ptrdiff_t>(injectCycle));
  bool diverged = false;
  std::int64_t detectCycle = -1;
  auto stepObserved = [&] {
    const std::uint64_t w = outputWord();
    if (!diverged && w != golden_.outputs[faulty.outputs.size()]) {
      diverged = true;
      detectCycle = static_cast<std::int64_t>(faulty.outputs.size());
    }
    faulty.outputs.push_back(w);
    dev_.step();
  };

  ActiveFault fault;
  fault.model = model;
  fault.cls = cls;
  fault.target = target;
  fault.subCycle = durationCycles < 1.0;
  {
    obs::Span injectSpan{"inject", {{"model", campaign::toString(model)}}};
    inject(fault, rng, durationCycles);
  }

  if (model == FaultModel::BitFlip) {
    // Transient in cause, persistent in effect: nothing to remove.
  } else if (effectiveCycles == 0) {
    // Sub-cycle fault missing every edge: inject + remove back-to-back
    // within the same reconfiguration pass where the mechanism allows.
    obs::Span removeSpan{"remove"};
    remove(fault);
  } else {
    {
      obs::Span emulateSpan{
          "emulate", {{"cycles", std::to_string(effectiveCycles)}}};
      for (std::uint64_t k = 0;
           k < effectiveCycles && dev_.cycle() < runCycles_; ++k) {
        if (k > 0 && opt_.oscillatingIndetermination) oscillate(fault, rng);
        stepObserved();
      }
    }
    obs::Span removeSpan{"remove"};
    remove(fault);
  }

  Outcome outcome;
  {
    // Observe to the end of the workload; once the trace has diverged the
    // outcome is already Failure and the remaining observation is charged
    // without being executed.
    obs::Span observeSpan{"observe"};
    while (!diverged && dev_.cycle() < runCycles_) stepObserved();

    if (diverged) {
      captureFinalStateViaPort(faulty, /*chargeOnly=*/true);
      outcome = Outcome::Failure;
    } else {
      faulty.outputs.resize(runCycles_);
      captureFinalStateViaPort(faulty, /*chargeOnly=*/false);
      outcome = campaign::classify(golden_, faulty);
    }
  }

  const double seconds = meterSeconds() +
                         static_cast<double>(runCycles_) / opt_.fpgaClockHz +
                         opt_.hostPerExperimentSeconds;
  modeledSecondsHist_.observe(seconds);
  switch (outcome) {
    case Outcome::Failure: ctrFailures_.inc(); break;
    case Outcome::Latent: ctrLatents_.inc(); break;
    case Outcome::Silent: ctrSilents_.inc(); break;
  }
  if (modeledSeconds != nullptr) *modeledSeconds = seconds;
  if (meterOut != nullptr) *meterOut = port_.meter();
  if (detectCycleOut != nullptr) *detectCycleOut = detectCycle;
  return outcome;
}

std::vector<std::uint32_t> FadesTool::campaignPool(
    const CampaignSpec& spec) const {
  return spec.targetPool.empty()
             ? targets(spec.model, spec.targets, static_cast<Unit>(spec.unit))
             : spec.targetPool;
}

campaign::ExperimentOutcome FadesTool::runCampaignExperiment(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, unsigned rerun) {
  // The link fault stream is keyed by (campaign seed, index, rerun) with a
  // salt separating it from the experiment streams below: faults are a pure
  // function of the spec (same pattern at any --jobs, cache on or off,
  // because the logical operation sequence never varies), yet a rerun after
  // a transient failure draws fresh faults and can succeed - which is what
  // keeps a faulted campaign's artifacts identical to a fault-free run.
  port_.seedLinkStream(common::streamSeed(
      spec.seed ^ 0x6c696e6b5f726e67ULL,  // "link_rng"
      std::uint64_t{index} * 131 + rerun));
  // A handful of sites cannot host certain faults (e.g. a net with no free
  // fabric around it for a delay detour); redraw like the paper's tool
  // would skip an unusable location. Each attempt derives its own stream
  // from (seed, index, attempt) alone, so redraws never perturb any other
  // experiment - the invariant sharded execution relies on. The stride
  // keeps attempt streams clear of neighbouring experiments (attempts cap
  // at 20 << 131).
  for (unsigned attempt = 0;; ++attempt) {
    Rng erng(common::streamSeed(spec.seed,
                                std::uint64_t{index} * 131 + attempt));
    const auto target = pool[erng.below(pool.size())];
    const auto injectCycle = erng.below(runCycles_);
    const double duration =
        spec.band.minCycles +
        erng.uniform01() * (spec.band.maxCycles - spec.band.minCycles);
    campaign::ExperimentOutcome out;
    bits::TransferMeter meter;
    std::int64_t detectCycle = -1;
    try {
      out.outcome = runExperiment(spec.model, spec.targets, target,
                                  injectCycle, duration, erng,
                                  &out.modeledSeconds, &meter, &detectCycle);
    } catch (const common::FadesError& err) {
      if (err.kind() != common::ErrorKind::InjectionError || attempt >= 20) {
        throw;
      }
      continue;
    }
    out.index = index;
    out.configSeconds = opt_.link.seconds(meter);
    out.workloadSeconds = static_cast<double>(runCycles_) / opt_.fpgaClockHz;
    out.hostSeconds = opt_.hostPerExperimentSeconds;
    out.bytesToDevice = meter.bytesToDevice;
    out.bytesFromDevice = meter.bytesFromDevice;
    out.sessions = meter.sessions;
    if (opt_.keepRecords) {
      out.hasRecord = true;
      out.record = campaign::ExperimentRecord{
          targetName(spec.targets, target), injectCycle, duration,
          out.outcome, out.modeledSeconds};
      out.record.component =
          netlist::toString(targetUnit(spec.targets, target));
      out.record.detectCycle = detectCycle;
      if (opt_.instructionTrace != nullptr &&
          injectCycle < opt_.instructionTrace->size()) {
        const auto& sample = (*opt_.instructionTrace)[injectCycle];
        out.record.pc = sample.pc;
        out.record.opcode = sample.opcode;
      }
    }
    return out;
  }
}

campaign::ExperimentOutcome FadesTool::synthesizeCampaignExperiment(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, const campaign::ExperimentOutcome& representative) {
  // Replay attempt 0 of this experiment's own stream for the planned
  // fields. Prunable target kinds (FF state, BRAM content, LUT outputs,
  // dead nets) never raise InjectionError, so attempt 0 is the experiment.
  Rng erng(common::streamSeed(spec.seed, std::uint64_t{index} * 131));
  const auto target = pool[erng.below(pool.size())];
  const auto injectCycle = erng.below(runCycles_);
  const double duration =
      spec.band.minCycles +
      erng.uniform01() * (spec.band.maxCycles - spec.band.minCycles);

  // The measured half - behavior and reconfiguration traffic - is exactly
  // the representative's (that equivalence is what the plan proved; traffic
  // is value-independent, so it matches even when instants differ).
  campaign::ExperimentOutcome out = representative;
  out.index = index;
  out.attempts = 0;
  out.hasRecord = false;
  out.record = campaign::ExperimentRecord{};
  if (opt_.keepRecords) {
    out.hasRecord = true;
    out.record = campaign::ExperimentRecord{
        targetName(spec.targets, target), injectCycle, duration, out.outcome,
        out.modeledSeconds};
    out.record.component = netlist::toString(targetUnit(spec.targets, target));
    out.record.detectCycle =
        representative.hasRecord ? representative.record.detectCycle : -1;
    if (opt_.instructionTrace != nullptr &&
        injectCycle < opt_.instructionTrace->size()) {
      const auto& sample = (*opt_.instructionTrace)[injectCycle];
      out.record.pc = sample.pc;
      out.record.opcode = sample.opcode;
    }
    out.record.prunedFrom = static_cast<std::int64_t>(representative.index);
  }
  return out;
}

CampaignResult FadesTool::runCampaign(const CampaignSpec& spec) {
  CampaignResult result;
  result.spec = spec;
  obs::Span campaignSpan{"campaign",
                         {{"model", campaign::toString(spec.model)},
                          {"targets", campaign::toString(spec.targets)}}};
  const auto pool = campaignPool(spec);
  campaign::ProgressTracker progress(campaign::toString(spec.model),
                                     spec.experiments, opt_.progressInterval);
  // Same isolate/retry/quarantine discipline as the sharded runner: a
  // transient error re-runs the experiment (fresh link fault stream via
  // `rerun`) after link recovery; exhausting the budget quarantines that
  // one experiment instead of discarding the whole campaign.
  const unsigned attempts = std::max(1u, opt_.experimentAttempts);
  obs::Counter& cQuarantined =
      obs::Registry::global().counter("campaign.quarantined");
  for (unsigned e = 0; e < spec.experiments; ++e) {
    campaign::ExperimentOutcome outcome;
    for (unsigned rerun = 0;; ++rerun) {
      try {
        outcome = runCampaignExperiment(spec, pool, e, rerun);
        outcome.attempts = rerun + 1;
        break;
      } catch (const common::FadesError& err) {
        if (!common::isTransientError(err.kind())) throw;
        recoverLink();
        if (rerun + 1 >= attempts) {
          outcome = campaign::ExperimentOutcome{};
          outcome.index = e;
          outcome.quarantined = true;
          outcome.failureKind = err.kind();
          outcome.failureMessage = err.what();
          outcome.attempts = rerun + 1;
          cQuarantined.inc();
          break;
        }
      }
    }
    result.fold(outcome);
    progress.record(outcome);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Sharded-campaign engine adapter
// ---------------------------------------------------------------------------

FadesCampaignEngine::FadesCampaignEngine(const synth::Implementation& impl,
                                         std::uint64_t runCycles,
                                         FadesOptions options,
                                         const fpga::DeviceSpec& deviceSpec)
    : device_(deviceSpec),
      tool_(std::make_unique<FadesTool>(device_, impl, runCycles,
                                        std::move(options))) {}

std::vector<std::uint32_t> FadesCampaignEngine::enumeratePool(
    const CampaignSpec& spec) {
  return tool_->campaignPool(spec);
}

campaign::ExperimentOutcome FadesCampaignEngine::runExperimentAt(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, unsigned rerun) {
  return tool_->runCampaignExperiment(spec, pool, index, rerun);
}

campaign::ExperimentOutcome FadesCampaignEngine::synthesizeOutcome(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, const campaign::ExperimentOutcome& representative) {
  return tool_->synthesizeCampaignExperiment(spec, pool, index,
                                             representative);
}

void FadesCampaignEngine::recover() { tool_->recoverLink(); }

campaign::EngineFactory fadesEngineFactory(
    const synth::Implementation& impl, std::uint64_t runCycles,
    FadesOptions options, std::optional<fpga::DeviceSpec> deviceSpec) {
  return [&impl, runCycles, options = std::move(options),
          deviceSpec = std::move(deviceSpec)] {
    return std::make_unique<FadesCampaignEngine>(
        impl, runCycles, options, deviceSpec ? *deviceSpec : impl.spec);
  };
}

Outcome FadesTool::runMultipleBitFlipExperiment(
    std::span<const std::uint32_t> flopTargets, std::uint64_t injectCycle,
    double* modeledSeconds) {
  require(!flopTargets.empty(), ErrorKind::InvalidArgument,
          "empty MBU target set");
  require(injectCycle < runCycles_, ErrorKind::InvalidArgument,
          "injection instant beyond workload");

  port_.resetMeter();
  chargeExperimentBaseline();
  std::uint64_t ckCycle = 0;
  dev_.restoreState(checkpointAtOrBefore(injectCycle, ckCycle));
  for (std::uint64_t c = ckCycle; c < injectCycle; ++c) dev_.step();

  // GSR-based multiple flip: read back all FF states, program every FF's
  // set/reset mux with its current value - the targets inverted - and pulse
  // the global line once.
  port_.beginSession();
  std::map<unsigned, std::vector<std::uint8_t>> capture;
  for (unsigned col : usedCaptureCols_) {
    capture[col] = port_.readCaptureFrame(col);
  }
  std::vector<std::pair<std::size_t, bool>> setBits, restoreBits;
  for (std::uint32_t i = 0; i < impl_.flops.size(); ++i) {
    const auto& site = impl_.flops[i];
    const auto& bytes = capture[site.cb.x];
    bool state = (bytes[site.cb.y >> 3] >> (site.cb.y & 7)) & 1u;
    for (auto t : flopTargets) {
      if (t == i) state = !state;
    }
    setBits.emplace_back(dev_.layout().cbFieldBit(site.cb, CbField::SrMode),
                         state);
    restoreBits.emplace_back(
        dev_.layout().cbFieldBit(site.cb, CbField::SrMode), site.init);
  }
  port_.setLogicBits(setBits);
  port_.pulseGsr();
  port_.setLogicBitsBlind(restoreBits);
  port_.endSession();
  dev_.settle();

  Observation faulty;
  faulty.outputs.assign(
      golden_.outputs.begin(),
      golden_.outputs.begin() + static_cast<std::ptrdiff_t>(injectCycle));
  bool diverged = false;
  while (!diverged && dev_.cycle() < runCycles_) {
    const std::uint64_t w = outputWord();
    diverged |= (w != golden_.outputs[faulty.outputs.size()]);
    faulty.outputs.push_back(w);
    dev_.step();
  }

  Outcome outcome;
  if (diverged) {
    captureFinalStateViaPort(faulty, /*chargeOnly=*/true);
    outcome = Outcome::Failure;
  } else {
    faulty.outputs.resize(runCycles_);
    captureFinalStateViaPort(faulty, /*chargeOnly=*/false);
    outcome = campaign::classify(golden_, faulty);
  }
  const double seconds = meterSeconds() +
                         static_cast<double>(runCycles_) / opt_.fpgaClockHz +
                         opt_.hostPerExperimentSeconds;
  modeledSecondsHist_.observe(seconds);
  switch (outcome) {
    case Outcome::Failure: ctrFailures_.inc(); break;
    case Outcome::Latent: ctrLatents_.inc(); break;
    case Outcome::Silent: ctrSilents_.inc(); break;
  }
  if (modeledSeconds != nullptr) *modeledSeconds = seconds;
  return outcome;
}

// ---------------------------------------------------------------------------
// Table 4 probe
// ---------------------------------------------------------------------------

std::vector<RegisterEffect> FadesTool::multiBitFlipProbe(
    std::uint32_t lutIndex, std::uint64_t cycle, Rng& rng) {
  require(lutIndex < impl_.luts.size(), ErrorKind::InvalidArgument,
          "lut index out of range");
  (void)rng;

  auto registerValues = [&] {
    // Group flip-flop states into registers by HDL name ("acc[3]" -> acc).
    std::map<std::string, std::uint64_t> regs;
    for (const auto& f : impl_.flops) {
      std::string reg = f.name;
      unsigned bit = 0;
      if (const auto p = reg.find('['); p != std::string::npos) {
        bit = static_cast<unsigned>(std::stoul(reg.substr(p + 1)));
        reg = reg.substr(0, p);
      }
      auto& value = regs[reg];
      if (dev_.ffState(f.cb)) value |= 1ULL << bit;
    }
    return regs;
  };

  // Golden next-state.
  std::uint64_t ckCycle = 0;
  dev_.restoreState(checkpointAtOrBefore(cycle, ckCycle));
  for (std::uint64_t c = ckCycle; c < cycle; ++c) dev_.step();
  const fpga::DeviceState atCycle = dev_.captureState();
  dev_.step();
  const auto goldenRegs = registerValues();

  // Faulty next-state: invert the LUT output for exactly one edge.
  dev_.restoreState(atCycle);
  const CbCoord cb = impl_.luts[lutIndex].cb;
  const std::uint16_t original = impl_.luts[lutIndex].table;
  port_.setLutTable(cb, ExtractedCircuit::tableWithInvertedOutput(original));
  dev_.settle();
  dev_.step();
  const auto faultyRegs = registerValues();
  port_.setLutTable(cb, original);
  dev_.settle();

  std::vector<RegisterEffect> out;
  for (const auto& [name, gv] : goldenRegs) {
    const auto it = faultyRegs.find(name);
    if (it != faultyRegs.end() && it->second != gv) {
      out.push_back(RegisterEffect{name, gv, it->second});
    }
  }
  return out;
}

}  // namespace fades::core
