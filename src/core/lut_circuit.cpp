#include "core/lut_circuit.hpp"

#include <map>

#include "common/error.hpp"

namespace fades::core {

using common::ErrorKind;
using common::require;

ExtractedCircuit::ExtractedCircuit(std::uint16_t table) : table_(table) {
  // Bottom-up reduced Shannon decomposition over variables 3..0. `funcs`
  // maps a (sub)function on k variables, encoded as a truth table over the
  // full 16 minterms, to a node reference.
  std::map<std::uint16_t, int> unique;

  // Recursive build over cofactor masks.
  struct Builder {
    std::map<std::pair<std::uint32_t, unsigned>, int> memo;
    std::vector<Node>& nodes;
    std::map<std::uint64_t, int> uniqueNodes;

    explicit Builder(std::vector<Node>& n) : nodes(n) {}

    /// f: 2^vars-bit function over variables [0, vars).
    int build(std::uint32_t f, unsigned vars) {
      const std::uint32_t full = (vars == 5) ? 0 : ((1u << (1u << vars)) - 1);
      (void)full;
      if (vars == 0) return (f & 1u) ? 1 : 0;
      const auto key = std::make_pair(f, vars);
      if (const auto it = memo.find(key); it != memo.end()) {
        return it->second;
      }
      // Split on the highest variable: low half = var 0, ...
      const unsigned half = 1u << (vars - 1);
      const std::uint32_t mask = (1u << half) - 1;
      const std::uint32_t lo = f & mask;
      const std::uint32_t hi = (f >> half) & mask;
      int result;
      if (lo == hi) {
        result = build(lo, vars - 1);
      } else {
        const int loRef = build(lo, vars - 1);
        const int hiRef = build(hi, vars - 1);
        const std::uint64_t nodeKey =
            (static_cast<std::uint64_t>(vars - 1) << 40) |
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(loRef))
             << 20) |
            static_cast<std::uint32_t>(hiRef);
        if (const auto it = uniqueNodes.find(nodeKey);
            it != uniqueNodes.end()) {
          result = it->second;
        } else {
          nodes.push_back(Node{vars - 1, loRef, hiRef});
          result = static_cast<int>(nodes.size()) - 1 + 2;
          uniqueNodes[nodeKey] = result;
        }
      }
      memo[key] = result;
      return result;
    }
  };

  Builder builder(nodes_);
  root_ = builder.build(table, 4);
}

bool ExtractedCircuit::evalRef(int ref, unsigned minterm,
                               int invertedNode) const {
  bool v;
  if (ref == 0) {
    v = false;
  } else if (ref == 1) {
    v = true;
  } else {
    const Node& n = nodes_[static_cast<std::size_t>(ref - 2)];
    const bool sel = (minterm >> n.var) & 1u;
    v = evalRef(sel ? n.hi : n.lo, minterm, invertedNode);
  }
  if (ref >= 2 && ref - 2 == invertedNode) v = !v;
  return v;
}

std::uint16_t ExtractedCircuit::tableWithInvertedInternalLine(
    unsigned line) const {
  require(line < nodes_.size(), ErrorKind::InvalidArgument,
          "internal line out of range");
  std::uint16_t out = 0;
  for (unsigned m = 0; m < 16; ++m) {
    if (evalRef(root_, m, static_cast<int>(line))) {
      out |= static_cast<std::uint16_t>(1u << m);
    }
  }
  return out;
}

std::uint16_t ExtractedCircuit::tableWithInvertedInput(std::uint16_t table,
                                                       unsigned input) {
  require(input < 4, ErrorKind::InvalidArgument, "input line out of range");
  std::uint16_t out = 0;
  for (unsigned m = 0; m < 16; ++m) {
    if ((table >> (m ^ (1u << input))) & 1u) {
      out |= static_cast<std::uint16_t>(1u << m);
    }
  }
  return out;
}

std::uint16_t ExtractedCircuit::tableWithFaultedLine(unsigned candidate) const {
  if (candidate == 0) return tableWithInvertedOutput(table_);
  if (candidate <= 4) return tableWithInvertedInput(table_, candidate - 1);
  return tableWithInvertedInternalLine(candidate - 5);
}

}  // namespace fades::core
