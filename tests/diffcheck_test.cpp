#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "diffcheck/case_spec.hpp"
#include "diffcheck/corpus.hpp"
#include "diffcheck/gen.hpp"
#include "diffcheck/shrink.hpp"
#include "mc8051/assembler.hpp"

namespace fades::diffcheck {
namespace {

using common::FadesError;

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------------ case spec -----

CaseSpec sampleRtlCase() {
  CaseSpec c;
  c.name = "sample-rtl";
  c.kind = DesignKind::Rtl;
  c.rtl = {5, 3, 4, 24, true, 4};
  c.runCycles = 48;
  c.inject.model = campaign::FaultModel::BitFlip;
  c.inject.targets = campaign::TargetClass::SequentialFF;
  c.inject.experiments = 5;
  c.inject.seed = 9;
  c.inject.band = campaign::DurationBand::shortBand();
  return c;
}

TEST(CaseSpecJson, RoundTripRtl) {
  const CaseSpec c = sampleRtlCase();
  const CaseSpec back = CaseSpec::fromJson(c.toJson());
  EXPECT_EQ(c.toJson().dump(), back.toJson().dump());
}

TEST(CaseSpecJson, RoundTripMc8051) {
  CaseSpec c;
  c.name = "sample-mc";
  c.kind = DesignKind::Mc8051;
  c.program = {"MOV A, #1", "; a comment", "idle: SJMP idle"};
  c.runCycles = 40;
  c.inject.model = campaign::FaultModel::Pulse;
  c.inject.targets = campaign::TargetClass::CombinationalLut;
  c.inject.experiments = 2;
  const CaseSpec back = CaseSpec::fromJson(c.toJson());
  EXPECT_EQ(c.toJson().dump(), back.toJson().dump());
  EXPECT_EQ(back.program, c.program);
}

TEST(CaseSpecJson, RejectsWrongSchema) {
  obs::Json j = sampleRtlCase().toJson();
  j.set("schema", obs::Json("bogus/9"));
  EXPECT_THROW(CaseSpec::fromJson(j), FadesError);
}

TEST(CaseSpecJson, RejectsUnknownEnumNames) {
  EXPECT_THROW(faultModelFromString("gamma-ray"), FadesError);
  EXPECT_THROW(targetClassFromString("everything"), FadesError);
  EXPECT_THROW(designKindFromString("analog"), FadesError);
}

TEST(CaseSpec, InstructionCountSkipsLabelsAndComments) {
  CaseSpec c;
  c.kind = DesignKind::Mc8051;
  c.program = {"MOV A, #1", "; pure comment", "lbl:", "lbl2: ADD A, #2",
               "idle: SJMP idle"};
  EXPECT_EQ(c.instructionCount(), 3u);
  EXPECT_EQ(sampleRtlCase().instructionCount(), 0u);
}

// ------------------------------------------------------------ generator -----

TEST(Gen, GenerateCaseIsDeterministic) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    EXPECT_EQ(generateCase(seed).toJson().dump(),
              generateCase(seed).toJson().dump());
  }
  EXPECT_NE(generateCase(1).toJson().dump(), generateCase(2).toJson().dump());
}

TEST(Gen, GeneratedDesignsBuild) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CaseSpec c = generateCase(seed);
    const auto nl = buildDesign(c);
    EXPECT_GT(nl.flopCount(), 0u) << c.describe();
    for (const auto& port : observedOutputs(c)) {
      EXPECT_NE(nl.findOutput(port), nullptr) << c.name << " port " << port;
    }
  }
}

TEST(Gen, SeedCorpusCoversTheFaultMatrix) {
  const auto corpus = seedCorpus();
  EXPECT_EQ(corpus.size(), 20u);
  std::set<std::pair<int, int>> combos;
  bool sawRtl = false, sawMc = false;
  std::set<std::string> names;
  for (const auto& c : corpus) {
    combos.insert({static_cast<int>(c.inject.model),
                   static_cast<int>(c.inject.targets)});
    sawRtl = sawRtl || c.kind == DesignKind::Rtl;
    sawMc = sawMc || c.kind == DesignKind::Mc8051;
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
  }
  // Two target classes for each of the four fault models (Table 1).
  EXPECT_EQ(combos.size(), 8u);
  EXPECT_TRUE(sawRtl);
  EXPECT_TRUE(sawMc);
}

TEST(Gen, GeneratedProgramsSurviveLineRemoval) {
  // The shrinker removes arbitrary body lines; generated programs must stay
  // assemblable under any such removal (straight-line code, no cross-line
  // label references except the final self-loop).
  common::Rng rng(42);
  const auto prog = generateProgram(rng, 12);
  ASSERT_GE(prog.size(), 3u);
  EXPECT_NO_THROW(mc8051::assemble(joinLines(prog)));
  for (std::size_t i = 0; i + 1 < prog.size(); ++i) {
    auto reduced = prog;
    reduced.erase(reduced.begin() + static_cast<long>(i));
    EXPECT_NO_THROW(mc8051::assemble(joinLines(reduced))) << "line " << i;
  }
}

// -------------------------------------------------------------- shrinker ----

Violation plantViolation() { return {"plant", "synthetic"}; }

/// Synthetic oracle with a planted minimal failure: the violation fires iff
/// the circuit still has >= 3 gates and the workload >= 10 cycles.
std::vector<Violation> plantedRtlOracle(const CaseSpec& s) {
  if (s.kind == DesignKind::Rtl && s.rtl.gates >= 3 && s.runCycles >= 10) {
    return {plantViolation()};
  }
  return {};
}

TEST(Shrink, ReducesToThePlantedMinimum) {
  const CaseSpec start = sampleRtlCase();
  ASSERT_FALSE(plantedRtlOracle(start).empty());
  const ShrinkResult r =
      shrinkCase(start, plantViolation(), plantedRtlOracle, {1, 500});
  EXPECT_FALSE(r.budgetExhausted);
  // Exactly the planted minimum: every parameter not needed to reproduce is
  // at its floor, and the two that are needed sit on their thresholds.
  EXPECT_EQ(r.minimal.rtl.gates, 3u);
  EXPECT_EQ(r.minimal.runCycles, 10u);
  EXPECT_EQ(r.minimal.rtl.regs, 1u);
  EXPECT_EQ(r.minimal.rtl.regWidth, 1u);
  EXPECT_EQ(r.minimal.rtl.namedSignals, 1u);
  EXPECT_FALSE(r.minimal.rtl.withRam);
  EXPECT_EQ(r.minimal.inject.experiments, 1u);
  EXPECT_EQ(r.violation.rule, "plant");
}

TEST(Shrink, TrajectoryIsIdenticalAtAnyJobCount) {
  const CaseSpec start = sampleRtlCase();
  ShrinkResult base;
  for (unsigned jobs : {1u, 3u, 8u}) {
    const ShrinkResult r =
        shrinkCase(start, plantViolation(), plantedRtlOracle, {jobs, 500});
    if (jobs == 1) {
      base = r;
      continue;
    }
    EXPECT_EQ(r.minimal.toJson().dump(), base.minimal.toJson().dump())
        << "jobs=" << jobs;
    EXPECT_EQ(r.evaluated, base.evaluated) << "jobs=" << jobs;
    EXPECT_EQ(r.accepted, base.accepted) << "jobs=" << jobs;
    EXPECT_EQ(r.budgetExhausted, base.budgetExhausted) << "jobs=" << jobs;
  }
}

TEST(Shrink, ChargesOnlyTheSequentialScanAtJobsOne) {
  std::atomic<unsigned> calls{0};
  const auto counting = [&](const CaseSpec& s) {
    ++calls;
    return plantedRtlOracle(s);
  };
  const ShrinkResult r =
      shrinkCase(sampleRtlCase(), plantViolation(), counting, {1, 500});
  EXPECT_EQ(calls.load(), r.evaluated);
}

TEST(Shrink, ProgramShrinksToThePlantedInstruction) {
  CaseSpec c;
  c.name = "planted-mc";
  c.kind = DesignKind::Mc8051;
  common::Rng rng(7);
  c.program = generateProgram(rng, 14);
  // Plant the failure on an instruction the generator always leaves room
  // for: insert MUL AB in the middle of the body.
  c.program.insert(c.program.begin() + static_cast<long>(c.program.size() / 2),
                   "        MUL  AB");
  c.runCycles = 64;
  const auto oracle = [](const CaseSpec& s) -> std::vector<Violation> {
    for (const auto& line : s.program) {
      if (line.find("MUL") != std::string::npos) return {plantViolation()};
    }
    return {};
  };
  const ShrinkResult r = shrinkCase(c, plantViolation(), oracle, {4, 500});
  EXPECT_FALSE(r.budgetExhausted);
  ASSERT_EQ(r.minimal.program.size(), 2u);
  EXPECT_NE(r.minimal.program[0].find("MUL"), std::string::npos);
  EXPECT_EQ(r.minimal.program.back(), c.program.back());
  // The acceptance bar: reproducers stay within 8 instructions.
  EXPECT_LE(r.minimal.instructionCount(), 8u);
}

TEST(Shrink, BudgetBoundsOracleCalls) {
  std::atomic<unsigned> calls{0};
  const auto counting = [&](const CaseSpec& s) {
    ++calls;
    return plantedRtlOracle(s);
  };
  const ShrinkResult r =
      shrinkCase(sampleRtlCase(), plantViolation(), counting, {1, 3});
  EXPECT_TRUE(r.budgetExhausted);
  EXPECT_LE(r.evaluated, 3u);
  // Best-so-far must still reproduce the rule.
  EXPECT_FALSE(plantedRtlOracle(r.minimal).empty());
}

TEST(Shrink, OracleExceptionMeansNotReproducing) {
  const auto throwing = [](const CaseSpec& s) -> std::vector<Violation> {
    if (s.rtl.gates < 24) throw FadesError(common::ErrorKind::InvalidArgument,
                                           "unbuildable");
    return {plantViolation()};
  };
  const ShrinkResult r =
      shrinkCase(sampleRtlCase(), plantViolation(), throwing, {2, 200});
  // Gate reductions all throw, so gates stay put; the other axes shrink.
  EXPECT_EQ(r.minimal.rtl.gates, 24u);
  EXPECT_EQ(r.minimal.inject.experiments, 1u);
}

TEST(Shrink, CandidateOrderHalvesFirst) {
  const auto cands = shrinkCandidates(sampleRtlCase());
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].rtl.gates, 12u);  // big step first (ddmin ordering)
  EXPECT_EQ(cands[1].rtl.gates, 23u);
}

// ---------------------------------------------------------------- corpus ----

TEST(Corpus, SaveLoadListRoundTrip) {
  const std::string dir = ::testing::TempDir() + "diffcheck-corpus-test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const CaseSpec a = generateCase(3);
  const CaseSpec b = generateCase(4);
  saveCase(b, dir + "/b.json");
  saveCase(a, dir + "/a.json");

  const auto files = listCorpusFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_LT(files[0], files[1]);  // sorted for deterministic replay order

  EXPECT_EQ(loadCase(dir + "/a.json").toJson().dump(), a.toJson().dump());
  EXPECT_EQ(loadCase(dir + "/b.json").toJson().dump(), b.toJson().dump());
  std::filesystem::remove_all(dir);
}

TEST(Corpus, MissingDirectoryAndBadFilesThrow) {
  EXPECT_THROW(listCorpusFiles(::testing::TempDir() + "no-such-dir-xyz"),
               FadesError);
  const std::string dir = ::testing::TempDir() + "diffcheck-bad-corpus";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/bad.json");
    out << "{ not json";
  }
  EXPECT_THROW(loadCase(dir + "/bad.json"), FadesError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fades::diffcheck
