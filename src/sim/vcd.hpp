// VCD (Value Change Dump) trace writer for the event-driven simulator.
//
// The paper's observation process stores "a trace of the outputs and state
// of the system for its ulterior analysis" (Section 2). VcdWriter produces
// that trace in the standard IEEE 1364 VCD format, viewable in GTKWave and
// friends: register the signals to watch, call sample() once per cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace fades::sim {

class VcdWriter {
 public:
  /// `timescaleNs` is the nominal duration of one clock cycle.
  VcdWriter(const Simulator& simulator, const netlist::Netlist& netlist,
            double timescaleNs = 40.0);

  /// Watch a single net or a whole bus (MSB-first in the VCD).
  void addSignal(const std::string& name, netlist::NetId net);
  void addBus(const std::string& name,
              const std::vector<netlist::NetId>& bus);
  /// Watch every output port of the netlist.
  void addAllOutputs();

  /// Record the current values at the given cycle; only changes are
  /// emitted, per the VCD format.
  void sample(std::uint64_t cycle);

  /// Complete VCD text (header + change stream so far).
  std::string str() const;
  /// Write to a file; throws on I/O failure.
  void save(const std::string& path) const;

 private:
  struct Signal {
    std::string name;
    std::vector<netlist::NetId> nets;  // LSB first
    std::string id;                    // VCD identifier code
    std::uint64_t lastValue = ~0ULL;
    bool everSampled = false;
  };

  std::string header() const;
  std::uint64_t valueOf(const Signal& s) const;

  const Simulator& sim_;
  const netlist::Netlist& nl_;
  double timescaleNs_;
  std::vector<Signal> signals_;
  std::string changes_;
  std::int64_t lastEmittedCycle_ = -1;
};

}  // namespace fades::sim
