// Error handling conventions for the project.
//
// Following the C++ Core Guidelines (E.2, E.14) we throw exceptions for
// errors that the immediate caller cannot be expected to handle (malformed
// netlists, unroutable designs, invalid configuration addresses) and use
// assertions for internal invariants. FadesError carries a category so test
// code can assert on the *kind* of failure, not a message string.
#pragma once

#include <stdexcept>
#include <string>

namespace fades::common {

enum class ErrorKind {
  InvalidArgument,   // caller passed something structurally wrong
  NetlistError,      // malformed IR (undriven net, combinational cycle, ...)
  SynthesisError,    // mapping/placement failure
  RoutingError,      // unroutable net / congestion not resolved
  ConfigError,       // bad frame address, size mismatch, short circuit
  CapacityError,     // design does not fit the device
  WorkloadError,     // assembler / program errors
  InjectionError,    // fault target not applicable / not found
  LinkError,         // host <-> board link failure (CRC, timeout, retry
                     // budget exhausted)
};

const char* toString(ErrorKind kind);

/// Transient errors are retryable at the experiment level: rerunning the
/// same experiment (with a fresh link-fault stream or a redrawn target) can
/// legitimately succeed. Everything else indicates a broken spec, design or
/// host and must abort the campaign.
inline bool isTransientError(ErrorKind kind) {
  return kind == ErrorKind::LinkError || kind == ErrorKind::InjectionError;
}

class FadesError : public std::runtime_error {
 public:
  FadesError(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(toString(kind)) + ": " + message),
        kind_(kind) {}

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

[[noreturn]] inline void raise(ErrorKind kind, const std::string& message) {
  throw FadesError(kind, message);
}

inline void require(bool condition, ErrorKind kind,
                    const std::string& message) {
  if (!condition) raise(kind, message);
}

inline const char* toString(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::InvalidArgument: return "invalid argument";
    case ErrorKind::NetlistError: return "netlist error";
    case ErrorKind::SynthesisError: return "synthesis error";
    case ErrorKind::RoutingError: return "routing error";
    case ErrorKind::ConfigError: return "configuration error";
    case ErrorKind::CapacityError: return "capacity error";
    case ErrorKind::WorkloadError: return "workload error";
    case ErrorKind::InjectionError: return "injection error";
    case ErrorKind::LinkError: return "link error";
  }
  return "unknown error";
}

}  // namespace fades::common
