// Campaign coordinator daemon.
//
// Listens on loopback for fades.wire/1 workers and clients, leases blocks
// of experiments, folds streamed outcomes into per-campaign journals and
// writes the merged fades.run/1 artifact into a content-addressed store.
//
// Usage:
//   fades_coordinator [--port P] [--store DIR] [--block-size N]
//                     [--lease-ms N] [--audit-every N] [--resume] [--once]
//                     [--fsync] [--progress-interval N] [--port-file FILE]
//     --port P     listen port (default 0 = ephemeral; see --port-file)
//     --port-file  write the resolved port to FILE (for scripts using
//                  --port 0)
//     --store DIR  artifact store directory (default fades-store)
//     --block-size experiments per lease (default 16)
//     --lease-ms   lease deadline; a worker must complete or heartbeat
//                  within this (default 10000)
//     --audit-every N  every Nth block needs two agreeing workers even
//                  without a dispute (default 0 = only on dispute)
//     --resume     re-register every campaign found in the store and resume
//                  its journal (the crash-recovery path)
//     --once       exit once every submitted campaign is complete, telling
//                  idle workers to shut down
//     --fsync      fsync journals after every record
//     --progress-interval N  campaign progress heartbeat every N
//                  experiments (default 25)
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "obs/artifact.hpp"
#include "service/coordinator.hpp"

using namespace fades;

namespace {

std::sig_atomic_t gStop = 0;

void onSignal(int) { gStop = 1; }

[[noreturn]] void usageError(const char* message) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: fades_coordinator [--port P] [--store DIR]\n"
               "                         [--block-size N] [--lease-ms N]\n"
               "                         [--audit-every N] [--resume]\n"
               "                         [--once] [--fsync]\n"
               "                         [--progress-interval N]\n"
               "                         [--port-file FILE]\n",
               message);
  std::exit(2);
}

unsigned parseUnsigned(const char* text, const char* what) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') {
    usageError((std::string(what) + " expects a number").c_str());
  }
  return static_cast<unsigned>(value);
}

}  // namespace

int main(int argc, char** argv) {
  service::CoordinatorOptions opt;
  opt.progressInterval = 25;
  bool resume = false;
  bool once = false;
  std::string portFile;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usageError((a + " needs a value").c_str());
      return argv[++i];
    };
    if (a == "--port") {
      opt.port = static_cast<std::uint16_t>(parseUnsigned(value(), "--port"));
    } else if (a == "--port-file") {
      portFile = value();
    } else if (a == "--store") {
      opt.storeDir = value();
    } else if (a == "--block-size") {
      opt.blockSize = parseUnsigned(value(), "--block-size");
    } else if (a == "--lease-ms") {
      opt.leaseMs = static_cast<int>(parseUnsigned(value(), "--lease-ms"));
    } else if (a == "--audit-every") {
      opt.auditEvery = parseUnsigned(value(), "--audit-every");
    } else if (a == "--progress-interval") {
      opt.progressInterval = parseUnsigned(value(), "--progress-interval");
    } else if (a == "--resume") {
      resume = true;
    } else if (a == "--once") {
      once = true;
    } else if (a == "--fsync") {
      opt.fsync = campaign::FsyncPolicy::EachRecord;
    } else {
      usageError(("unknown flag '" + a + "'").c_str());
    }
  }
  opt.shutdownWhenDone = once;

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  try {
    service::Coordinator coordinator(opt);
    coordinator.start();
    std::printf("coordinator listening on 127.0.0.1:%u (store %s)\n",
                coordinator.port(), opt.storeDir.c_str());
    std::fflush(stdout);
    if (!portFile.empty()) {
      obs::writeFile(portFile, std::to_string(coordinator.port()) + "\n");
    }
    if (resume) {
      const auto resumed = coordinator.resumeFromStore();
      std::printf("resumed %zu campaign(s) from the store\n", resumed.size());
      std::fflush(stdout);
    }
    // --once waits for completion; otherwise run until a signal arrives.
    bool drained = false;
    while (gStop == 0) {
      if (coordinator.waitForAllComplete(/*timeoutMs=*/200) && once) {
        drained = true;
        break;
      }
    }
    if (drained) {
      // Linger one lease-request cycle so idle workers see the shutdown
      // answer instead of a closed socket.
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    coordinator.stop();
    return 0;
  } catch (const common::FadesError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
