#include "campaign/types.hpp"

namespace fades::campaign {

const char* toString(FaultModel m) {
  switch (m) {
    case FaultModel::BitFlip: return "bit-flip";
    case FaultModel::Pulse: return "pulse";
    case FaultModel::Delay: return "delay";
    case FaultModel::Indetermination: return "indetermination";
  }
  return "?";
}

const char* toString(TargetClass t) {
  switch (t) {
    case TargetClass::SequentialFF: return "FFs";
    case TargetClass::MemoryBlockBit: return "memory blocks";
    case TargetClass::CombinationalLut: return "LUTs";
    case TargetClass::CbInputLine: return "CB inputs";
    case TargetClass::SequentialLine: return "sequential lines";
    case TargetClass::CombinationalLine: return "combinational lines";
  }
  return "?";
}

bool faultModelFromString(std::string_view text, FaultModel& out) {
  for (const FaultModel m : {FaultModel::BitFlip, FaultModel::Pulse,
                             FaultModel::Delay, FaultModel::Indetermination}) {
    if (text == toString(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

bool targetClassFromString(std::string_view text, TargetClass& out) {
  for (const TargetClass t :
       {TargetClass::SequentialFF, TargetClass::MemoryBlockBit,
        TargetClass::CombinationalLut, TargetClass::CbInputLine,
        TargetClass::SequentialLine, TargetClass::CombinationalLine}) {
    if (text == toString(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

const char* toString(Outcome o) {
  switch (o) {
    case Outcome::Silent: return "silent";
    case Outcome::Latent: return "latent";
    case Outcome::Failure: return "failure";
  }
  return "?";
}

bool outcomeFromString(std::string_view text, Outcome& out) {
  for (const Outcome o : {Outcome::Silent, Outcome::Latent, Outcome::Failure}) {
    if (text == toString(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

bool errorKindFromString(std::string_view text, common::ErrorKind& out) {
  using common::ErrorKind;
  for (const ErrorKind k :
       {ErrorKind::InvalidArgument, ErrorKind::NetlistError,
        ErrorKind::SynthesisError, ErrorKind::RoutingError,
        ErrorKind::ConfigError, ErrorKind::CapacityError,
        ErrorKind::WorkloadError, ErrorKind::InjectionError,
        ErrorKind::LinkError}) {
    if (text == common::toString(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

Outcome classify(const Observation& golden, const Observation& faulty) {
  // Failure: the traces present different outputs (paper Section 5).
  if (golden.outputs != faulty.outputs) return Outcome::Failure;
  // Latent: same outputs but a different final state.
  if (golden.finalFlops != faulty.finalFlops ||
      golden.finalMemory != faulty.finalMemory) {
    return Outcome::Latent;
  }
  return Outcome::Silent;
}

}  // namespace fades::campaign
