file(REMOVE_RECURSE
  "libfades_campaign.a"
)
