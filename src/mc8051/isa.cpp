#include "mc8051/isa.hpp"

namespace fades::mc8051 {

unsigned instructionLength(std::uint8_t op) {
  // Register forms (low three bits = n) and indirect forms (low bit = i).
  const std::uint8_t fam = op & 0xF8;
  const std::uint8_t ind = op & 0xFE;

  switch (op) {
    case OP_NOP:
    case OP_RR_A:
    case OP_INC_A:
    case OP_RRC_A:
    case OP_DEC_A:
    case OP_RET:
    case OP_RL_A:
    case OP_RLC_A:
    case OP_CPL_C:
    case OP_CLR_C:
    case OP_SETB_C:
    case OP_CLR_A:
    case OP_CPL_A:
    case OP_MUL_AB:
    case OP_DIV_AB:
      return 1;
    case OP_INC_DIR:
    case OP_DEC_DIR:
    case OP_ADD_IMM:
    case OP_ADD_DIR:
    case OP_ADDC_IMM:
    case OP_ADDC_DIR:
    case OP_JC:
    case OP_ORL_A_IMM:
    case OP_ORL_A_DIR:
    case OP_JNC:
    case OP_ANL_A_IMM:
    case OP_ANL_A_DIR:
    case OP_JZ:
    case OP_XRL_A_IMM:
    case OP_XRL_A_DIR:
    case OP_JNZ:
    case OP_MOV_A_IMM:
    case OP_SJMP:
    case OP_SUBB_IMM:
    case OP_SUBB_DIR:
    case OP_PUSH:
    case OP_XCH_A_DIR:
    case OP_POP:
    case OP_MOV_A_DIR:
    case OP_MOV_DIR_A:
      return 2;
    case OP_LJMP:
    case OP_LCALL:
    case OP_MOV_DIR_IMM:
    case OP_MOV_DIR_DIR:
    case OP_CJNE_A_IMM:
    case OP_CJNE_A_DIR:
    case OP_DJNZ_DIR:
      return 3;
    default:
      break;
  }
  if (ind == OP_INC_IND || ind == OP_DEC_IND || ind == OP_ADD_IND ||
      ind == OP_ADDC_IND || ind == OP_SUBB_IND || ind == OP_MOV_A_IND ||
      ind == OP_MOV_IND_A) {
    return 1;
  }
  if (ind == OP_MOV_IND_IMM) return 2;
  if (ind == OP_CJNE_IND_IMM) return 3;
  if (fam == OP_INC_RN || fam == OP_DEC_RN || fam == OP_ADD_RN ||
      fam == OP_ADDC_RN || fam == OP_ORL_A_RN || fam == OP_ANL_A_RN ||
      fam == OP_XRL_A_RN || fam == OP_SUBB_RN || fam == OP_XCH_A_RN ||
      fam == OP_MOV_A_RN || fam == OP_MOV_RN_A) {
    return 1;
  }
  if (fam == OP_MOV_RN_IMM || fam == OP_MOV_DIR_RN || fam == OP_MOV_RN_DIR ||
      fam == OP_DJNZ_RN) {
    return 2;
  }
  if (fam == OP_CJNE_RN_IMM) return 3;
  return 0;
}

}  // namespace fades::mc8051
