#include "sim/trace.hpp"

namespace fades::sim {

GoldenTrace GoldenTrace::record(Engine& engine,
                                const netlist::Netlist& netlist,
                                std::uint64_t cycles) {
  GoldenTrace trace;
  trace.cycles_ = cycles;
  trace.netCount_ = netlist.netCount();
  trace.wordsPerCycle_ = (trace.netCount_ + 63) / 64;
  trace.words_.assign((cycles + 1) * trace.wordsPerCycle_, 0);

  engine.reset();
  for (std::uint64_t c = 0; c <= cycles; ++c) {
    std::uint64_t* row = trace.words_.data() + c * trace.wordsPerCycle_;
    for (std::uint32_t n = 0; n < trace.netCount_; ++n) {
      if (engine.netValue(netlist::NetId{n})) row[n >> 6] |= 1ull << (n & 63u);
    }
    if (c < cycles) engine.step();
  }
  return trace;
}

}  // namespace fades::sim
