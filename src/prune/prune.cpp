#include "prune/prune.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fades::prune {

using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::PruneClass;
using campaign::PrunePlan;
using campaign::PruneReason;
using campaign::TargetClass;
using common::ErrorKind;
using common::require;
using netlist::FlopId;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;

// ---------------------------------------------------------------------------
// Target decoders
// ---------------------------------------------------------------------------

TargetDecoder fadesDecoder(const synth::Implementation& impl,
                           TargetClass cls) {
  switch (cls) {
    case TargetClass::SequentialFF:
      return [&impl](std::uint32_t handle) {
        TargetSite s;
        s.kind = TargetSite::Kind::Flop;
        s.flop = impl.flops[handle].flop;
        return s;
      };
    case TargetClass::MemoryBlockBit:
      // Handle layout from FadesTool::targets: (block << 16) | contentBit,
      // where contentBit walks row-major over one slice's rows * width.
      return [&impl](std::uint32_t handle) {
        const unsigned block = handle >> 16;
        const unsigned contentBit = handle & 0xFFFFu;
        for (const auto& r : impl.rams) {
          for (const auto& sl : r.slices) {
            if (sl.block != block) continue;
            TargetSite s;
            s.kind = TargetSite::Kind::RamBit;
            s.ram = r.ram;
            s.row = contentBit / sl.width;
            s.bit = sl.bitLo + contentBit % sl.width;
            return s;
          }
        }
        return TargetSite{};
      };
    case TargetClass::CombinationalLut:
      return [&impl](std::uint32_t handle) {
        TargetSite s;
        if (impl.luts[handle].out.valid()) {
          s.kind = TargetSite::Kind::Net;
          s.net = impl.luts[handle].out;
        }
        return s;
      };
    default:
      // CB input lines rewire a flop's data path and routed-line targets are
      // delay mechanisms; neither reduces to a state bit or a net value.
      return [](std::uint32_t) { return TargetSite{}; };
  }
}

TargetDecoder vfitDecoder(const Netlist& netlist, TargetClass cls) {
  switch (cls) {
    case TargetClass::SequentialFF:
      return [](std::uint32_t handle) {
        TargetSite s;
        s.kind = TargetSite::Kind::Flop;
        s.flop = FlopId{handle};
        return s;
      };
    case TargetClass::MemoryBlockBit:
      // Handle layout from VfitTool::campaignPool: (ram << 24) | (row << 8)
      // | bit.
      return [](std::uint32_t handle) {
        TargetSite s;
        s.kind = TargetSite::Kind::RamBit;
        s.ram = RamId{handle >> 24};
        s.row = (handle >> 8) & 0xFFFFu;
        s.bit = handle & 0xFFu;
        return s;
      };
    case TargetClass::CombinationalLut:
    case TargetClass::CbInputLine:
    case TargetClass::CombinationalLine:
    case TargetClass::SequentialLine:
      // All VFIT line-like targets are HDL signals faulted by value.
      return [&netlist](std::uint32_t handle) {
        TargetSite s;
        if (handle < netlist.netCount()) {
          s.kind = TargetSite::Kind::Net;
          s.net = NetId{handle};
        }
        return s;
      };
  }
  return [](std::uint32_t) { return TargetSite{}; };
}

namespace {

// ---------------------------------------------------------------------------
// Golden-trajectory analyzer
// ---------------------------------------------------------------------------

/// Per-cycle fate of "flop f holds the wrong value at cycle c":
///  Silent  - the flip is overwritten before anything reads it;
///  Exposed - the flip first influences something beyond f's own state bit
///            at a fixed golden cycle (all instants sharing that exposure
///            cycle reach it with the identical machine state);
///  Latent  - the flip survives untouched into the final state capture.
enum class Fate : std::uint8_t { Silent, Exposed, Latent };

struct FlopFates {
  bool deadQ = false;  // q reaches nothing observable, statically
  std::vector<Fate> fate;                  // per injection cycle
  std::vector<std::uint32_t> exposeCycle;  // valid where fate == Exposed
};

class Analyzer {
 public:
  Analyzer(const Netlist& nl, const sim::GoldenTrace& trace,
           std::uint64_t runCycles,
           const std::vector<std::string>& observedOutputs)
      : nl_(nl), trace_(trace), runCycles_(runCycles) {
    const std::size_t nets = nl.netCount();
    observed_.assign(nets, 0);
    ramInput_.assign(nets, 0);
    flopDOffsets_.assign(nets + 1, 0);

    for (const auto& name : observedOutputs) {
      const netlist::Port* port = nl.findOutput(name);
      require(port != nullptr, ErrorKind::InvalidArgument,
              "prune analysis: observed output port not found: " + name);
      for (const NetId n : port->nets) observed_[n.value] = 1;
    }
    for (const auto& ram : nl.rams()) {
      for (const NetId n : ram.addr) ramInput_[n.value] = 1;
      for (const NetId n : ram.dataIn) ramInput_[n.value] = 1;
      if (ram.writeEnable.valid()) ramInput_[ram.writeEnable.value] = 1;
    }

    // CSR of flop data inputs per net (which flops read this net as d).
    for (const auto& f : nl.flops()) ++flopDOffsets_[f.d.value + 1];
    for (std::size_t n = 0; n < nets; ++n) {
      flopDOffsets_[n + 1] += flopDOffsets_[n];
    }
    flopDs_.resize(nl.flops().size());
    {
      std::vector<std::uint32_t> cursor(flopDOffsets_.begin(),
                                        flopDOffsets_.end() - 1);
      for (std::uint32_t i = 0; i < nl.flops().size(); ++i) {
        flopDs_[cursor[nl.flops()[i].d.value]++] = i;
      }
    }

    // CSR of consumer gates per net.
    const auto& gates = nl.gates();
    consumerOffsets_.assign(nets + 1, 0);
    for (const auto& g : gates) {
      for (unsigned pin = 0; pin < netlist::arity(g.op); ++pin) {
        ++consumerOffsets_[g.in[pin].value + 1];
      }
    }
    for (std::size_t n = 0; n < nets; ++n) {
      consumerOffsets_[n + 1] += consumerOffsets_[n];
    }
    std::size_t edges = consumerOffsets_[nets];
    consumers_.resize(edges);
    {
      std::vector<std::uint32_t> cursor(consumerOffsets_.begin(),
                                        consumerOffsets_.end() - 1);
      for (std::uint32_t gi = 0; gi < gates.size(); ++gi) {
        for (unsigned pin = 0; pin < netlist::arity(gates[gi].op); ++pin) {
          consumers_[cursor[gates[gi].in[pin].value]++] = gi;
        }
      }
    }

    // Topological position of every gate (sparse propagation pops gates in
    // this order so each gate is evaluated once per injection).
    topoPos_.assign(gates.size(), 0);
    const auto order = nl.topoOrder();
    gateAtPos_.resize(order.size());
    for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
      topoPos_[order[pos].value] = pos;
      gateAtPos_[pos] = order[pos].value;
    }

    // Static liveness: a net is live when its forward cone reaches a flop
    // data input, a memory input or an observed output. One reverse-topo
    // pass over the gates.
    live_.assign(nets, 0);
    for (std::size_t n = 0; n < nets; ++n) {
      if (observed_[n] || ramInput_[n] ||
          flopDOffsets_[n + 1] != flopDOffsets_[n]) {
        live_[n] = 1;
      }
    }
    for (std::size_t i = order.size(); i-- > 0;) {
      const auto& g = gates[order[i].value];
      if (!live_[g.out.value]) continue;
      for (unsigned pin = 0; pin < netlist::arity(g.op); ++pin) {
        live_[g.in[pin].value] = 1;
      }
    }

    faultyStamp_.assign(nets, 0);
    faultyVal_.assign(nets, 0);
    pushedStamp_.assign(gates.size(), 0);
  }

  bool netLive(NetId n) const { return live_[n.value] != 0; }
  bool flopDeadQ(std::uint32_t flopIndex) const {
    return !netLive(nl_.flops()[flopIndex].q);
  }

  const FlopFates& flopFates(std::uint32_t flopIndex) {
    auto it = flopCache_.find(flopIndex);
    if (it != flopCache_.end()) return it->second;
    FlopFates fates;
    fates.deadQ = flopDeadQ(flopIndex);
    fates.fate.resize(runCycles_);
    fates.exposeCycle.assign(runCycles_, 0);
    if (fates.deadQ) {
      // Nothing ever reads q: every injection instant is provably Silent
      // (the next clock edge reloads d, whose cone excludes q).
      std::fill(fates.fate.begin(), fates.fate.end(), Fate::Silent);
    } else {
      for (std::uint64_t c = runCycles_; c-- > 0;) {
        std::uint64_t exposedAt = 0;
        switch (stepClass(flopIndex, c, exposedAt)) {
          case Step::Escape:
            fates.fate[c] = Fate::Exposed;
            fates.exposeCycle[c] = static_cast<std::uint32_t>(c);
            break;
          case Step::Vanish:
            fates.fate[c] = Fate::Silent;
            break;
          case Step::Persist:
            // The machine reaches cycle c+1 as "golden except f flipped":
            // the fate is whatever injecting at c+1 would meet; persisting
            // through the last edge lands the flip in the final capture.
            if (c + 1 == runCycles_) {
              fates.fate[c] = Fate::Latent;
            } else {
              fates.fate[c] = fates.fate[c + 1];
              fates.exposeCycle[c] = fates.exposeCycle[c + 1];
            }
            break;
        }
      }
    }
    return flopCache_.emplace(flopIndex, std::move(fates)).first->second;
  }

  /// First golden cycle >= `cycle` at which the ram presents `row` on its
  /// address bus (every such cycle both exposes a stored flip through the
  /// registered read port and, when writing, erases it); runCycles when the
  /// row is never addressed again.
  std::uint64_t nextAddressEvent(RamId ram, std::uint32_t row,
                                 std::uint64_t cycle) {
    const auto& events = ramEvents(ram);
    const auto& rowEvents = events[row];
    const auto it =
        std::lower_bound(rowEvents.begin(), rowEvents.end(),
                         static_cast<std::uint32_t>(cycle));
    return it == rowEvents.end() ? runCycles_ : *it;
  }

 private:
  enum class Step : std::uint8_t { Escape, Vanish, Persist };

  /// One-cycle consequence of "flop f flipped at cycle c": propagate the
  /// flip through the combinational cone against the golden values of cycle
  /// c. Escape = something beyond f's own next state changed (observed
  /// output, memory input, or another flop's d); Persist = only f's own d
  /// picked it up (state stays "golden except f" after the edge); Vanish =
  /// nothing picked it up (the edge reloads the golden value).
  Step stepClass(std::uint32_t f, std::uint64_t c, std::uint64_t& exposedAt) {
    ++epoch_;
    bool escape = false;
    bool dChanged = false;

    // Min-heap of dirty gates by topological position: every gate pops
    // after all of its (possibly faulty) input drivers.
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<std::uint32_t>>& heap = heap_;
    while (!heap.empty()) heap.pop();

    auto markChanged = [&](NetId n, bool faulty) {
      faultyStamp_[n.value] = epoch_;
      faultyVal_[n.value] = faulty ? 1 : 0;
      if (observed_[n.value] || ramInput_[n.value]) escape = true;
      for (std::uint32_t k = flopDOffsets_[n.value];
           k < flopDOffsets_[n.value + 1]; ++k) {
        if (flopDs_[k] == f) {
          dChanged = true;
        } else {
          escape = true;
        }
      }
      for (std::uint32_t k = consumerOffsets_[n.value];
           k < consumerOffsets_[n.value + 1]; ++k) {
        const std::uint32_t gi = consumers_[k];
        if (pushedStamp_[gi] == epoch_) continue;
        pushedStamp_[gi] = epoch_;
        heap.push(topoPos_[gi]);
      }
    };
    auto valueAt = [&](NetId n) {
      return faultyStamp_[n.value] == epoch_ ? faultyVal_[n.value] != 0
                                             : trace_.netAt(c, n);
    };

    const NetId q = nl_.flops()[f].q;
    markChanged(q, !trace_.netAt(c, q));

    while (!escape && !heap.empty()) {
      const auto& g = nl_.gates()[gateAtPos_[heap.top()]];
      heap.pop();
      const unsigned n = netlist::arity(g.op);
      const bool out = netlist::evalGate(
          g.op, n > 0 && valueAt(g.in[0]), n > 1 && valueAt(g.in[1]),
          n > 2 && valueAt(g.in[2]));
      if (out != trace_.netAt(c, g.out)) markChanged(g.out, out);
    }

    if (escape) {
      exposedAt = c;
      return Step::Escape;
    }
    return dChanged ? Step::Persist : Step::Vanish;
  }

  const std::vector<std::vector<std::uint32_t>>& ramEvents(RamId ram) {
    auto it = ramCache_.find(ram.value);
    if (it != ramCache_.end()) return it->second;
    const auto& r = nl_.ram(ram);
    std::vector<std::vector<std::uint32_t>> events(r.depth());
    for (std::uint64_t c = 0; c < runCycles_; ++c) {
      events[trace_.busAt(c, r.addr)].push_back(static_cast<std::uint32_t>(c));
    }
    return ramCache_.emplace(ram.value, std::move(events)).first->second;
  }

  const Netlist& nl_;
  const sim::GoldenTrace& trace_;
  std::uint64_t runCycles_;

  std::vector<std::uint8_t> observed_;   // per net
  std::vector<std::uint8_t> ramInput_;   // per net
  std::vector<std::uint8_t> live_;       // per net
  std::vector<std::uint32_t> flopDOffsets_;  // per net, CSR into flopDs_
  std::vector<std::uint32_t> flopDs_;
  std::vector<std::uint32_t> consumerOffsets_;  // per net, CSR
  std::vector<std::uint32_t> consumers_;
  std::vector<std::uint32_t> topoPos_;    // per gate
  std::vector<std::uint32_t> gateAtPos_;  // inverse of topoPos_

  // Epoch-stamped scratch state (one stepClass call per epoch).
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> faultyStamp_;  // per net
  std::vector<std::uint8_t> faultyVal_;     // per net
  std::vector<std::uint64_t> pushedStamp_;  // per gate
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<std::uint32_t>>
      heap_;

  std::unordered_map<std::uint32_t, FlopFates> flopCache_;
  std::unordered_map<std::uint32_t, std::vector<std::vector<std::uint32_t>>>
      ramCache_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Plan construction
// ---------------------------------------------------------------------------

PrunePlan buildPlan(const CampaignSpec& spec,
                    std::span<const std::uint32_t> pool,
                    const AnalysisInputs& in) {
  require(in.netlist != nullptr && in.trace != nullptr, ErrorKind::InvalidArgument,
          "prune analysis needs a netlist and a golden trace");
  require(static_cast<bool>(in.decode) && static_cast<bool>(in.name),
          ErrorKind::InvalidArgument,
          "prune analysis needs a target decoder and namer");
  require(in.runCycles > 0 && in.trace->cycles() >= in.runCycles,
          ErrorKind::InvalidArgument,
          "golden trace shorter than the workload");
  require(in.trace->netCount() == in.netlist->netCount(),
          ErrorKind::InvalidArgument,
          "golden trace recorded from a different netlist");
  require(!pool.empty(), ErrorKind::InvalidArgument,
          "prune analysis needs a non-empty target pool");

  PrunePlan plan;
  plan.spec = spec;
  plan.runCycles = in.runCycles;
  plan.poolSize = pool.size();

  const bool bitflip = spec.model == FaultModel::BitFlip;
  const bool windowed = spec.model == FaultModel::Pulse ||
                        spec.model == FaultModel::Indetermination;
  if (!bitflip && !windowed) return plan;  // delay faults: nothing provable

  Analyzer analyzer(*in.netlist, *in.trace, in.runCycles,
                    in.observedOutputs);

  // Group key: (handle, kind, param, costSig). `param` carries the exposure
  // cycle for window classes; `costSig` carries the (window, sub-cycle)
  // cost signature of dead-target classes so every member's modeled cost
  // matches the representative's exactly. Ordered map + representative-
  // order output keeps plan construction deterministic.
  enum Kind : std::uint8_t { kDead, kSilent, kExposed, kLatent };
  using Key = std::tuple<std::uint32_t, std::uint8_t, std::uint64_t,
                         std::uint64_t>;
  struct Group {
    std::vector<std::uint64_t> indices;  // ascending (iteration order)
    PruneReason reason = PruneReason::DeadTarget;
    std::uint32_t handle = 0;
    bool anyTarget = false;  // merged across targets (uniform-cost tools)
    std::uint64_t minCycle = 0;
    std::uint64_t maxCycle = 0;
  };
  std::map<Key, Group> groups;

  // With a target-independent cost model (VFIT), fates that pin down the
  // outcome no matter which element is faulted - provably Silent, provably
  // Latent, dead targets - share one class across the whole pool: the
  // synthesized members re-derive their own record fields (target name,
  // instant, duration) from their own draws, so only the shared measured
  // fields need to match. Keyed per target otherwise (FADES traffic is
  // metered per frame address).
  const bool uniform = in.uniformCostAcrossTargets;

  auto record = [&](Key key, PruneReason reason, std::uint32_t handle,
                    bool anyTarget, std::uint64_t index,
                    std::uint64_t injectCycle) {
    Group& g = groups[key];
    if (g.indices.empty()) {
      g.reason = reason;
      g.handle = handle;
      g.anyTarget = anyTarget;
      g.minCycle = g.maxCycle = injectCycle;
    } else {
      g.minCycle = std::min(g.minCycle, injectCycle);
      g.maxCycle = std::max(g.maxCycle, injectCycle);
    }
    g.indices.push_back(index);
  };

  for (unsigned i = 0; i < spec.experiments; ++i) {
    // Replicate the campaign draw order exactly (FadesTool::
    // runCampaignExperiment attempt 0 == VfitTool::planExperiment): target,
    // instant, duration, then the sub-cycle sampling draw. Supported target
    // kinds never redraw, so attempt 0 is the experiment.
    common::Rng erng(common::streamSeed(spec.seed, std::uint64_t{i} * 131));
    const std::uint32_t handle =
        pool[erng.below(pool.size())];
    const std::uint64_t injectCycle = erng.below(in.runCycles);
    const double duration =
        spec.band.minCycles +
        erng.uniform01() * (spec.band.maxCycles - spec.band.minCycles);
    std::uint64_t effectiveCycles;
    if (duration < 1.0) {
      effectiveCycles = erng.uniform01() < duration ? 1 : 0;
    } else {
      effectiveCycles = static_cast<std::uint64_t>(duration + 0.5);
    }
    const std::uint64_t window =
        std::min(effectiveCycles, in.runCycles - injectCycle);
    const bool subCycle = duration < 1.0;
    const std::uint64_t costSig =
        (window << 1) | static_cast<std::uint64_t>(subCycle);

    const TargetSite site = in.decode(handle);
    if (bitflip && site.kind == TargetSite::Kind::Flop) {
      // Duration never matters for a bit-flip (transient in cause,
      // persistent in effect), so the fate alone is the class key.
      if (analyzer.flopDeadQ(site.flop.value)) {
        record({uniform ? 0 : handle, kDead, 0, 0}, PruneReason::DeadTarget,
               handle, uniform, i, injectCycle);
        continue;
      }
      const FlopFates& fates = analyzer.flopFates(site.flop.value);
      switch (fates.fate[injectCycle]) {
        case Fate::Silent:
          record({uniform ? 0 : handle, kSilent, 0, 0},
                 PruneReason::OverwriteBeforeRead, handle, uniform, i,
                 injectCycle);
          break;
        case Fate::Exposed:
          // The exposure cycle fixes the machine state the flip meets, but
          // WHAT happens from there depends on the flop - never merged
          // across targets.
          record({handle, kExposed, fates.exposeCycle[injectCycle], 0},
                 PruneReason::QuiescentUntilRead, handle, false, i,
                 injectCycle);
          break;
        case Fate::Latent:
          record({uniform ? 0 : handle, kLatent, 0, 0},
                 PruneReason::OutOfWindow, handle, uniform, i, injectCycle);
          break;
      }
    } else if (bitflip && site.kind == TargetSite::Kind::RamBit) {
      const std::uint64_t event =
          analyzer.nextAddressEvent(site.ram, site.row, injectCycle);
      if (event < in.runCycles) {
        record({handle, kExposed, event, 0},
               PruneReason::QuiescentUntilRead, handle, false, i,
               injectCycle);
      } else {
        record({uniform ? 0 : handle, kLatent, 0, 0},
               PruneReason::OutOfWindow, handle, uniform, i, injectCycle);
      }
    } else if (windowed && site.kind == TargetSite::Kind::Net) {
      // Forcing a dead net can never reach a state element or an output,
      // and forces leave no state behind - Silent at any instant. Cost
      // depends on the active window, hence the cost signature in the key.
      if (!analyzer.netLive(site.net)) {
        record({uniform ? 0 : handle, kDead, 0, costSig},
               PruneReason::DeadTarget, handle, uniform, i, injectCycle);
      }
    } else if (spec.model == FaultModel::Indetermination &&
               site.kind == TargetSite::Kind::Flop) {
      // A dead-q flop held at a random level recovers its golden value on
      // the first clock edge after the fault ends (d's cone excludes q) -
      // provided at least one edge remains before the final capture.
      if (analyzer.flopDeadQ(site.flop.value) &&
          injectCycle + window < in.runCycles) {
        record({uniform ? 0 : handle, kDead, 0, costSig},
               PruneReason::DeadTarget, handle, uniform, i, injectCycle);
      }
    }
    // Every other combination runs normally.
  }

  for (auto& [key, group] : groups) {
    if (group.indices.size() < 2) continue;  // nothing to collapse
    PruneClass c;
    c.representative = group.indices.front();
    c.members.assign(group.indices.begin() + 1, group.indices.end());
    c.reason = group.reason;
    c.target = group.anyTarget ? "*" : in.name(group.handle);
    c.windowBegin = static_cast<std::int64_t>(group.minCycle);
    c.windowEnd = static_cast<std::int64_t>(group.maxCycle);
    plan.classes.push_back(std::move(c));
  }
  std::sort(plan.classes.begin(), plan.classes.end(),
            [](const PruneClass& a, const PruneClass& b) {
              return a.representative < b.representative;
            });
  plan.validate();
  return plan;
}

}  // namespace fades::prune
