# Empty dependencies file for permanent_faults.
# This may be replaced when dependencies are built.
