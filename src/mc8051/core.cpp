#include "mc8051/core.hpp"

#include "common/error.hpp"
#include "mc8051/isa.hpp"
#include "rtl/builder.hpp"

namespace fades::mc8051 {

using netlist::NetId;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;
using rtl::Register;

namespace {

// Control FSM states.
constexpr std::uint64_t S_FETCH = 0;
constexpr std::uint64_t S_DECODE = 1;
constexpr std::uint64_t S_OP1 = 2;
constexpr std::uint64_t S_OP2 = 3;
constexpr std::uint64_t S_RDRI = 4;
constexpr std::uint64_t S_RD = 5;
constexpr std::uint64_t S_EXEC = 6;
constexpr std::uint64_t S_WR2 = 7;
constexpr std::uint64_t S_RET1 = 8;
constexpr std::uint64_t S_RET2 = 9;
constexpr std::uint64_t S_RET3 = 10;

}  // namespace

netlist::Netlist buildCore(const std::vector<std::uint8_t>& program,
                           const CoreConfig& config) {
  common::require(program.size() <= (std::size_t{1} << config.romAddrBits),
                  common::ErrorKind::WorkloadError,
                  "program does not fit in ROM");
  Builder b;

  // ----------------------------------------------------------- registers --
  b.setUnit(Unit::Registers);
  Register acc = b.makeRegister("acc", 8, 0);
  Register breg = b.makeRegister("b", 8, 0);
  Register sp = b.makeRegister("sp", 8, 7);
  Register dpl = b.makeRegister("dpl", 8, 0);
  Register dph = b.makeRegister("dph", 8, 0);
  Register p0 = b.makeRegister("p0", 8, 0);
  Register p1 = b.makeRegister("p1", 8, 0);
  // PSW stored bits: CY, AC, F0, RS1, RS0, OV (P computed from ACC).
  Register cy = b.makeRegister("psw_cy", 1, 0);
  Register ac = b.makeRegister("psw_ac", 1, 0);
  Register f0 = b.makeRegister("psw_f0", 1, 0);
  Register rs1 = b.makeRegister("psw_rs1", 1, 0);
  Register rs0 = b.makeRegister("psw_rs0", 1, 0);
  Register ov = b.makeRegister("psw_ov", 1, 0);

  b.setUnit(Unit::Fsm);
  Register state = b.makeRegister("state", 4, S_FETCH);
  Register ir = b.makeRegister("ir", 8, 0);
  Register op1 = b.makeRegister("op1", 8, 0);
  Register op2 = b.makeRegister("op2", 8, 0);

  b.setUnit(Unit::MemCtrl);
  Register pc = b.makeRegister("pc", 16, 0);
  Register riAddr = b.makeRegister("ri_addr", 7, 0);
  Register tmp = b.makeRegister("tmp", 8, 0);

  // --------------------------------------------------------- state decode --
  b.setUnit(Unit::Fsm);
  const NetId inFetch = b.eqConst(state.q, S_FETCH);
  const NetId inDecode = b.eqConst(state.q, S_DECODE);
  const NetId inOp1 = b.eqConst(state.q, S_OP1);
  const NetId inOp2 = b.eqConst(state.q, S_OP2);
  const NetId inRdri = b.eqConst(state.q, S_RDRI);
  const NetId inRd = b.eqConst(state.q, S_RD);
  const NetId inExec = b.eqConst(state.q, S_EXEC);
  const NetId inWr2 = b.eqConst(state.q, S_WR2);
  const NetId inRet1 = b.eqConst(state.q, S_RET1);
  const NetId inRet2 = b.eqConst(state.q, S_RET2);
  const NetId inRet3 = b.eqConst(state.q, S_RET3);

  // ------------------------------------------------------------- memories --
  // The ROM address depends only on PC, so the ROM is instantiated directly.
  // The IRAM's address/data/write-enable depend on decode logic built later,
  // so placeholder nets are allocated now and driven by buffers at the end.
  b.setUnit(Unit::MemCtrl);
  Bus romAddr = b.slice(pc.q, 0, config.romAddrBits);
  b.setUnit(Unit::Ram);
  std::vector<std::uint8_t> romInit = program;
  romInit.resize(std::size_t{1} << config.romAddrBits, 0);
  Bus romData = b.rom("rom", config.romAddrBits, 8, romAddr, romInit);

  // IRAM needs address/din/we nets that depend on decode logic; allocate
  // placeholder nets now and connect with buffers later.
  Bus iramAddr, iramDin;
  auto& nl = b.netlist();
  for (int i = 0; i < 7; ++i) iramAddr.push_back(nl.addNet("iram_addr[" + std::to_string(i) + "]"));
  for (int i = 0; i < 8; ++i) iramDin.push_back(nl.addNet("iram_din[" + std::to_string(i) + "]"));
  NetId iramWe = nl.addNet("iram_we");
  Bus iramData = b.ram("iram", 7, 8, iramAddr, iramDin, iramWe);

  // ------------------------------------------------------ opcode decoding --
  b.setUnit(Unit::Fsm);
  // During DECODE the opcode is still on the ROM output; afterwards in IR.
  Bus curOp = b.bMux(inDecode, romData, ir.q);

  auto opIs = [&](std::uint8_t v) { return b.eqConst(curOp, v); };
  auto famIs = [&](std::uint8_t v) {
    return b.eqConst(b.slice(curOp, 3, 5), v >> 3);
  };
  auto indIs = [&](std::uint8_t v) {
    return b.eqConst(b.slice(curOp, 1, 7), v >> 1);
  };
  auto orOf = [&](const std::vector<NetId>& xs) { return b.orAll(xs); };

  const NetId isNop = opIs(OP_NOP);
  const NetId isLjmp = opIs(OP_LJMP);
  const NetId isLcall = opIs(OP_LCALL);
  const NetId isRet = opIs(OP_RET);
  const NetId isRrA = opIs(OP_RR_A);
  const NetId isRlA = opIs(OP_RL_A);
  const NetId isRrcA = opIs(OP_RRC_A);
  const NetId isRlcA = opIs(OP_RLC_A);
  const NetId isIncA = opIs(OP_INC_A);
  const NetId isDecA = opIs(OP_DEC_A);
  const NetId isClrA = opIs(OP_CLR_A);
  const NetId isCplA = opIs(OP_CPL_A);
  const NetId isClrC = opIs(OP_CLR_C);
  const NetId isSetbC = opIs(OP_SETB_C);
  const NetId isCplC = opIs(OP_CPL_C);
  const NetId isIncDir = opIs(OP_INC_DIR);
  const NetId isDecDir = opIs(OP_DEC_DIR);
  const NetId isAddImm = opIs(OP_ADD_IMM);
  const NetId isAddDir = opIs(OP_ADD_DIR);
  const NetId isAddcImm = opIs(OP_ADDC_IMM);
  const NetId isAddcDir = opIs(OP_ADDC_DIR);
  const NetId isSubbImm = opIs(OP_SUBB_IMM);
  const NetId isSubbDir = opIs(OP_SUBB_DIR);
  const NetId isJc = opIs(OP_JC);
  const NetId isJnc = opIs(OP_JNC);
  const NetId isJz = opIs(OP_JZ);
  const NetId isJnz = opIs(OP_JNZ);
  const NetId isSjmp = opIs(OP_SJMP);
  const NetId isOrlImm = opIs(OP_ORL_A_IMM);
  const NetId isOrlDir = opIs(OP_ORL_A_DIR);
  const NetId isAnlImm = opIs(OP_ANL_A_IMM);
  const NetId isAnlDir = opIs(OP_ANL_A_DIR);
  const NetId isXrlImm = opIs(OP_XRL_A_IMM);
  const NetId isXrlDir = opIs(OP_XRL_A_DIR);
  const NetId isMovAImm = opIs(OP_MOV_A_IMM);
  const NetId isMovADir = opIs(OP_MOV_A_DIR);
  const NetId isMovDirA = opIs(OP_MOV_DIR_A);
  const NetId isMovDirImm = opIs(OP_MOV_DIR_IMM);
  const NetId isMovDirDir = opIs(OP_MOV_DIR_DIR);
  const NetId isCjneAImm = opIs(OP_CJNE_A_IMM);
  const NetId isCjneADir = opIs(OP_CJNE_A_DIR);
  const NetId isPush = opIs(OP_PUSH);
  const NetId isPop = opIs(OP_POP);
  const NetId isXchDir = opIs(OP_XCH_A_DIR);
  const NetId isDjnzDir = opIs(OP_DJNZ_DIR);

  const NetId isMulAB = opIs(OP_MUL_AB);
  const NetId isDivAB = opIs(OP_DIV_AB);

  const NetId isMovARn = famIs(OP_MOV_A_RN);
  const NetId isMovRnA = famIs(OP_MOV_RN_A);
  const NetId isMovRnImm = famIs(OP_MOV_RN_IMM);
  const NetId isMovRnDir = famIs(OP_MOV_RN_DIR);
  const NetId isMovDirRn = famIs(OP_MOV_DIR_RN);
  const NetId isAddRn = famIs(OP_ADD_RN);
  const NetId isAddcRn = famIs(OP_ADDC_RN);
  const NetId isSubbRn = famIs(OP_SUBB_RN);
  const NetId isAnlRn = famIs(OP_ANL_A_RN);
  const NetId isOrlRn = famIs(OP_ORL_A_RN);
  const NetId isXrlRn = famIs(OP_XRL_A_RN);
  const NetId isIncRn = famIs(OP_INC_RN);
  const NetId isDecRn = famIs(OP_DEC_RN);
  const NetId isXchRn = famIs(OP_XCH_A_RN);
  const NetId isDjnzRn = famIs(OP_DJNZ_RN);
  const NetId isCjneRn = famIs(OP_CJNE_RN_IMM);

  const NetId isMovAInd = indIs(OP_MOV_A_IND);
  const NetId isMovIndA = indIs(OP_MOV_IND_A);
  const NetId isMovIndImm = indIs(OP_MOV_IND_IMM);
  const NetId isAddInd = indIs(OP_ADD_IND);
  const NetId isAddcInd = indIs(OP_ADDC_IND);
  const NetId isSubbInd = indIs(OP_SUBB_IND);
  const NetId isIncInd = indIs(OP_INC_IND);
  const NetId isDecInd = indIs(OP_DEC_IND);
  const NetId isCjneInd = indIs(OP_CJNE_IND_IMM);

  // ----------------------------------------------------- instruction sets --
  const NetId len2 = orOf(
      {isIncDir, isDecDir, isAddImm, isAddDir, isAddcImm, isAddcDir,
       isSubbImm, isSubbDir, isJc, isJnc, isJz, isJnz, isSjmp, isOrlImm,
       isOrlDir, isAnlImm, isAnlDir, isXrlImm, isXrlDir, isMovAImm,
       isMovADir, isMovDirA, isPush, isPop, isXchDir, isMovRnImm, isMovRnDir,
       isMovDirRn, isDjnzRn, isMovIndImm});
  const NetId len3 =
      orOf({isLjmp, isLcall, isMovDirImm, isMovDirDir, isCjneAImm,
            isCjneADir, isDjnzDir, isCjneRn, isCjneInd});

  const NetId isIndirect =
      orOf({isMovAInd, isMovIndA, isMovIndImm, isAddInd, isAddcInd,
            isSubbInd, isIncInd, isDecInd, isCjneInd});
  const NetId indWrites = orOf({isMovIndA, isMovIndImm});
  const NetId indNeedsRd = b.land(isIndirect, b.lnot(indWrites));

  const NetId dirSrc =
      orOf({isMovADir, isAddDir, isAddcDir, isSubbDir, isAnlDir, isOrlDir,
            isXrlDir, isIncDir, isDecDir, isXchDir, isMovRnDir, isMovDirDir,
            isCjneADir, isDjnzDir, isPush});
  const NetId rnSrc =
      orOf({isMovARn, isAddRn, isAddcRn, isSubbRn, isAnlRn, isOrlRn,
            isXrlRn, isIncRn, isDecRn, isXchRn, isDjnzRn, isCjneRn,
            isMovDirRn});
  const NetId needsRd = orOf({dirSrc, rnSrc, isPop});

  // ---------------------------------------------------------- FSM control --
  Bus stFetch = b.constant(S_FETCH, 4);
  Bus stDecode = b.constant(S_DECODE, 4);
  Bus stOp1 = b.constant(S_OP1, 4);
  Bus stOp2 = b.constant(S_OP2, 4);
  Bus stRdri = b.constant(S_RDRI, 4);
  Bus stRd = b.constant(S_RD, 4);
  Bus stExec = b.constant(S_EXEC, 4);
  Bus stWr2 = b.constant(S_WR2, 4);
  Bus stRet1 = b.constant(S_RET1, 4);
  Bus stRet2 = b.constant(S_RET2, 4);
  Bus stRet3 = b.constant(S_RET3, 4);

  // Where to go once all operand bytes are in.
  Bus afterOps = b.select(
      stExec, {{isIndirect, stRdri}, {needsRd, stRd}});
  Bus decodeNext = b.select(
      afterOps,
      {{b.lor(len2, len3), stOp1}, {isRet, stRet1}, {isNop, stFetch}});
  Bus op1Next = b.select(afterOps, {{len3, stOp2}});
  Bus rdriNext = b.bMux(indNeedsRd, stRd, stExec);
  Bus execNext = b.bMux(isLcall, stWr2, stFetch);

  Bus stateNext = b.select(
      stFetch,
      {{inFetch, stDecode},
       {inDecode, decodeNext},
       {inOp1, op1Next},
       {inOp2, afterOps},
       {inRdri, rdriNext},
       {inRd, stExec},
       {inExec, execNext},
       {inRet1, stRet2},
       {inRet2, stRet3}});
  b.nameBus("state_next", stateNext);
  b.nameBus("cur_op", curOp);
  b.nameBus("len2", Bus{len2});
  b.nameBus("len3", Bus{len3});
  b.nameBus("needs_rd", Bus{needsRd});
  b.connect(state, stateNext);

  // Operand latches.
  b.connect(ir, b.bMux(inDecode, romData, ir.q));
  b.connect(op1, b.bMux(inOp1, romData, op1.q));
  b.connect(op2, b.bMux(inOp2, romData, op2.q));
  b.setUnit(Unit::MemCtrl);
  b.connect(tmp, b.bMux(inRet2, iramData, tmp.q));
  // The IRAM read launched in RDRI lands on iramData one cycle later (the
  // RAM is synchronous, read-first), i.e. during RD - latching in RDRI
  // would capture the previous read instead of Ri's content.
  b.connect(riAddr,
            b.bMux(b.land(inRd, isIndirect), b.slice(iramData, 0, 7),
                   riAddr.q));

  // ------------------------------------------------------------- ALU -------
  b.setUnit(Unit::Alu);
  // Operand (resolved memory/SFR source value), valid in EXEC.
  // SFR read multiplexer.
  Bus parityBit{b.lxor(
      b.lxor(b.lxor(acc.q[0], acc.q[1]), b.lxor(acc.q[2], acc.q[3])),
      b.lxor(b.lxor(acc.q[4], acc.q[5]), b.lxor(acc.q[6], acc.q[7])))};
  Bus pswByte{parityBit[0], b.zero(),  ov.q[0], rs0.q[0],
              rs1.q[0],     f0.q[0],   ac.q[0], cy.q[0]};
  auto sfrRead = [&](const Bus& addr) {
    return b.select(b.constant(0, 8),
                    {{b.eqConst(addr, SFR_P0), p0.q},
                     {b.eqConst(addr, SFR_SP), sp.q},
                     {b.eqConst(addr, SFR_DPL), dpl.q},
                     {b.eqConst(addr, SFR_DPH), dph.q},
                     {b.eqConst(addr, SFR_P1), p1.q},
                     {b.eqConst(addr, SFR_PSW), pswByte},
                     {b.eqConst(addr, SFR_ACC), acc.q},
                     {b.eqConst(addr, SFR_B), breg.q}});
  };
  const NetId srcIsSfr = b.land(dirSrc, op1.q[7]);
  Bus operand = b.bMux(srcIsSfr, sfrRead(op1.q), iramData);

  // ALU input selection.
  const NetId aMem = orOf({isIncDir, isIncRn, isIncInd, isDecDir, isDecRn,
                           isDecInd, isDjnzRn, isDjnzDir, isCjneRn,
                           isCjneInd});
  Bus aluA = b.bMux(aMem, operand, acc.q);

  const NetId bImmOp1 =
      orOf({isAddImm, isAddcImm, isSubbImm, isAnlImm, isOrlImm, isXrlImm,
            isMovAImm, isMovRnImm, isMovIndImm, isCjneAImm, isCjneRn,
            isCjneInd});
  const NetId bAcc = orOf({isMovDirA, isMovRnA, isMovIndA});
  const NetId bOne = orOf({isIncA, isDecA, isIncDir, isDecDir, isIncRn,
                           isDecRn, isIncInd, isDecInd, isDjnzRn, isDjnzDir});
  Bus aluB = b.select(operand, {{bImmOp1, op1.q},
                                {isMovDirImm, op2.q},
                                {bAcc, acc.q},
                                {bOne, b.constant(1, 8)},
                                {isClrA, b.constant(0, 8)}});

  const NetId isAddc = orOf({isAddcImm, isAddcDir, isAddcRn, isAddcInd});
  const NetId isSubb = orOf({isSubbImm, isSubbDir, isSubbRn, isSubbInd});
  const NetId isCjne = orOf({isCjneAImm, isCjneADir, isCjneRn, isCjneInd});
  const NetId addGrp = orOf({isAddImm, isAddDir, isAddRn, isAddInd, isAddc,
                             isIncA, isIncDir, isIncRn, isIncInd});
  const NetId subGrp = orOf({isSubb, isDecA, isDecDir, isDecRn, isDecInd,
                             isDjnzRn, isDjnzDir, isCjne});
  const NetId andGrp = orOf({isAnlImm, isAnlDir, isAnlRn});
  const NetId orGrp = orOf({isOrlImm, isOrlDir, isOrlRn});
  const NetId xorGrp = orOf({isXrlImm, isXrlDir, isXrlRn});

  auto addRes = b.add(aluA, aluB, b.land(isAddc, cy.q[0]));
  auto subRes = b.sub(aluA, aluB, b.land(isSubb, cy.q[0]));

  Bus rlc = b.concat(Bus{cy.q[0]}, b.slice(acc.q, 0, 7));
  Bus rrc = b.concat(b.slice(acc.q, 1, 7), Bus{cy.q[0]});

  // MUL AB: 16-bit shift-add array multiplier, {B,A} = A * B.
  Bus product = b.constant(0, 16);
  for (unsigned i = 0; i < 8; ++i) {
    Bus partial = b.constant(0, 16);
    for (unsigned k = 0; k < 8; ++k) {
      partial[i + k] = b.land(acc.q[k], breg.q[i]);
    }
    product = b.add(product, partial, {}).sum;
  }
  Bus mulLow = b.slice(product, 0, 8);
  Bus mulHigh = b.slice(product, 8, 8);
  const NetId mulOverflow = b.orAll(mulHigh);

  // DIV AB: 8-step restoring divider, A = A / B, B = A % B. With a zero
  // divisor the trial subtraction never borrows, so the quotient saturates
  // to 0xFF and the dividend falls through as the remainder (the ISS's
  // reference semantics for the architecturally-undefined case).
  Bus divRem = b.constant(0, 9);
  Bus divQuot = b.constant(0, 8);
  for (int i = 7; i >= 0; --i) {
    Bus shifted = b.concat(Bus{acc.q[static_cast<unsigned>(i)]},
                           b.slice(divRem, 0, 8));
    auto trial = b.sub(shifted, b.zeroExtend(breg.q, 9), {});
    const NetId fits = b.lnot(trial.carryOut);  // no borrow: divisor fits
    divQuot[static_cast<unsigned>(i)] = fits;
    divRem = b.bMux(fits, trial.sum, shifted);
  }
  Bus divRem8 = b.slice(divRem, 0, 8);
  const NetId divByZero = b.isZero(breg.q);

  Bus aluResult = b.select(
      aluB,  // default: pass-through (MOV/PUSH/POP/XCH/CLR)
      {{addGrp, addRes.sum},
       {subGrp, subRes.sum},
       {andGrp, b.bAnd(acc.q, aluB)},
       {orGrp, b.bOr(acc.q, aluB)},
       {xorGrp, b.bXor(acc.q, aluB)},
       {isRlA, b.rotateLeft1(acc.q)},
       {isRrA, b.rotateRight1(acc.q)},
       {isRlcA, rlc},
       {isRrcA, rrc},
       {isMulAB, mulLow},
       {isDivAB, divQuot},
       {isCplA, b.bNot(acc.q)}});

  const NetId aluZero = b.isZero(aluResult);

  // HDL-visible signal names (what a VHDL model would declare; these are
  // the targets a simulator-command tool like VFIT can force).
  b.nameBus("alu_a", aluA);
  b.nameBus("alu_b", aluB);
  b.nameBus("alu_result", aluResult);
  b.nameBus("alu_add", addRes.sum);
  b.nameBus("alu_sub", subRes.sum);
  b.nameBus("alu_carry", Bus{addRes.carryOut});
  b.nameBus("alu_borrow", Bus{subRes.carryOut});
  b.nameBus("operand", operand);
  b.nameBus("psw_byte", pswByte);

  // ------------------------------------------------------- program counter --
  b.setUnit(Unit::MemCtrl);
  Bus pcPlus1 = b.increment(pc.q);
  Bus relByte = b.bMux(orOf({isCjne, isDjnzDir}), op2.q, op1.q);
  Bus relExt = b.concat(relByte, Bus(8, relByte[7]));  // sign extension
  Bus pcRel = b.add(pc.q, relExt, {}).sum;
  Bus jumpTarget = b.concat(op2.q, op1.q);  // {hi=op1, lo=op2}

  const NetId accZero = b.isZero(acc.q);
  const NetId takenRel = orOf(
      {isSjmp, b.land(isJc, cy.q[0]), b.land(isJnc, b.lnot(cy.q[0])),
       b.land(isJz, accZero), b.land(isJnz, b.lnot(accZero)),
       b.land(isCjne, b.lnot(aluZero)),
       b.land(orOf({isDjnzRn, isDjnzDir}), b.lnot(aluZero))});

  Bus retTarget = b.concat(iramData, tmp.q);  // {hi=tmp, lo=mem[sp-1]}

  b.nameBus("pc_rel", pcRel);
  b.nameBus("pc_plus1", pcPlus1);
  b.nameBus("taken_rel", Bus{takenRel});
  Bus pcNext = b.select(
      pc.q,
      {{inFetch, pcPlus1},
       {b.land(inDecode, b.lor(len2, len3)), pcPlus1},
       {b.land(inOp1, len3), pcPlus1},
       {b.land(inExec, b.land(takenRel, b.lnot(isLcall))), pcRel},
       {b.land(inExec, isLjmp), jumpTarget},
       {inWr2, jumpTarget},
       {inRet3, retTarget}});
  b.connect(pc, pcNext);

  // ------------------------------------------------------- IRAM addressing --
  Bus bank{ir.q[0], ir.q[1], ir.q[2], rs0.q[0], rs1.q[0], b.zero(), b.zero()};
  Bus riSel{ir.q[0], b.zero(), b.zero(), rs0.q[0],
            rs1.q[0], b.zero(), b.zero()};
  Bus spLow = b.slice(sp.q, 0, 7);
  Bus spPlus1 = b.increment(sp.q);
  Bus spMinus1 = b.decrement(sp.q);
  Bus spMinus2 = b.decrement(spMinus1);

  const NetId dstRn = orOf({isMovRnA, isMovRnImm, isMovRnDir, isIncRn,
                            isDecRn, isXchRn, isDjnzRn});
  const NetId dstInd = orOf({isMovIndA, isMovIndImm, isIncInd, isDecInd});
  Bus dstDirAddr = b.bMux(isMovDirDir, op2.q, op1.q);

  // Read-state address: POP reads @SP; Rn forms read the banked register;
  // indirect forms read @riAddr-value (sitting on the IRAM output); direct
  // forms read op1.
  Bus rdAddr = b.select(b.slice(op1.q, 0, 7),
                        {{isPop, spLow},
                         {rnSrc, bank},
                         {isIndirect, b.slice(iramData, 0, 7)}});
  // Exec-state (write) address.
  // Write-only indirect forms (MOV @Ri,A / MOV @Ri,#imm) skip the RD state,
  // so at EXEC Ri's content is still sitting on the IRAM output; the
  // read-modify forms latched it into riAddr during RD.
  Bus indWrAddr =
      b.bMux(indWrites, b.slice(iramData, 0, 7), riAddr.q);
  Bus wrAddr = b.select(b.slice(dstDirAddr, 0, 7),
                        {{dstRn, bank},
                         {dstInd, indWrAddr},
                         {orOf({isPush, isLcall}), b.slice(spPlus1, 0, 7)}});

  Bus iramAddrValue = b.select(
      b.constant(0, 7),
      {{inRdri, riSel},
       {inRd, rdAddr},
       {inExec, wrAddr},
       {inWr2, b.slice(spPlus1, 0, 7)},
       {inRet1, spLow},
       {inRet2, b.slice(spMinus1, 0, 7)}});

  // Write strobes.
  const NetId dstDir = orOf({isMovDirA, isMovDirImm, isMovDirDir, isMovDirRn,
                             isIncDir, isDecDir, isDjnzDir, isXchDir, isPop});
  const NetId dstIsSfr = dstDirAddr[7];
  const NetId wrDirIram = b.land(dstDir, b.lnot(dstIsSfr));
  const NetId wrIram =
      orOf({wrDirIram, dstRn, dstInd, isPush, isLcall, isXchRn});
  NetId iramWeValue = b.lor(b.land(inExec, wrIram), inWr2);

  // Write data: LCALL pushes PCL then PCH; XCH writes the old ACC back.
  Bus iramDinValue = b.select(
      aluResult, {{b.land(inExec, isLcall), b.slice(pc.q, 0, 8)},
                  {inWr2, b.slice(pc.q, 8, 8)},
                  {orOf({isXchDir, isXchRn}), acc.q}});

  // Drive the placeholder IRAM nets.
  b.setUnit(Unit::MemCtrl);
  for (int i = 0; i < 7; ++i) {
    nl.addGate(netlist::GateOp::Buf, iramAddrValue[i], {}, {}, Unit::MemCtrl,
               iramAddr[i]);
  }
  for (int i = 0; i < 8; ++i) {
    nl.addGate(netlist::GateOp::Buf, iramDinValue[i], {}, {}, Unit::MemCtrl,
               iramDin[i]);
  }
  nl.addGate(netlist::GateOp::Buf, iramWeValue, {}, {}, Unit::MemCtrl, iramWe);

  // ------------------------------------------------------ register updates --
  b.setUnit(Unit::Registers);
  const NetId sfrWrite = b.land(inExec, b.land(dstDir, dstIsSfr));
  auto sfrWriteTo = [&](std::uint8_t a) {
    return b.land(sfrWrite, b.eqConst(dstDirAddr, a));
  };
  Bus writeValue =
      b.bMux(orOf({isXchDir, isXchRn}), acc.q, aluResult);

  const NetId accOp = orOf(
      {isMovAImm, isMovADir, isMovARn, isMovAInd, isAddImm, isAddDir,
       isAddRn, isAddInd, isAddc, isSubb, isAnlImm, isAnlDir, isAnlRn,
       isOrlImm, isOrlDir, isOrlRn, isXrlImm, isXrlDir, isXrlRn, isIncA,
       isDecA, isClrA, isCplA, isRlA, isRrA, isRlcA, isRrcA, isXchDir,
       isXchRn, isMovAInd, isMulAB, isDivAB});
  const NetId accWe = b.lor(b.land(inExec, accOp), sfrWriteTo(SFR_ACC));
  b.connect(acc, b.bMux(accWe,
                        b.bMux(b.land(inExec, accOp), aluResult, writeValue),
                        acc.q));

  b.connect(breg, b.select(breg.q,
                           {{b.land(inExec, isMulAB), mulHigh},
                            {b.land(inExec, isDivAB), divRem8},
                            {sfrWriteTo(SFR_B), writeValue}}));
  b.connect(dpl, b.bMux(sfrWriteTo(SFR_DPL), writeValue, dpl.q));
  b.connect(dph, b.bMux(sfrWriteTo(SFR_DPH), writeValue, dph.q));
  b.connect(p0, b.bMux(sfrWriteTo(SFR_P0), writeValue, p0.q));
  b.connect(p1, b.bMux(sfrWriteTo(SFR_P1), writeValue, p1.q));

  Bus spNext = b.select(
      sp.q, {{sfrWriteTo(SFR_SP), writeValue},
             {b.land(inExec, orOf({isPush, isLcall})), spPlus1},
             {b.land(inExec, isPop), spMinus1},
             {inWr2, spPlus1},
             {inRet3, spMinus2}});
  b.connect(sp, spNext);

  // PSW bits.
  const NetId pswWr = sfrWriteTo(SFR_PSW);
  const NetId flagArith = b.land(inExec, orOf({addGrp, isSubb}));
  // INC/DEC do not touch flags on MCS-51; exclude them from CY/AC/OV.
  const NetId cyArith = b.land(
      inExec, orOf({isAddImm, isAddDir, isAddRn, isAddInd, isAddc, isSubb}));
  (void)flagArith;
  const NetId carrySel = b.lmux(isSubb, subRes.carryOut, addRes.carryOut);
  const NetId acSel = b.lmux(isSubb, subRes.auxCarry, addRes.auxCarry);
  const NetId ovSel = b.lmux(isSubb, subRes.overflow, addRes.overflow);

  NetId cyNext = b.selectBit(
      cy.q[0], {{pswWr, writeValue[7]},
                {cyArith, carrySel},
                {b.land(inExec, isCjne), subRes.carryOut},
                {b.land(inExec, isRlcA), acc.q[7]},
                {b.land(inExec, isRrcA), acc.q[0]},
                {b.land(inExec, isSetbC), b.one()},
                {b.land(inExec, isClrC), b.zero()},
                {b.land(inExec, b.lor(isMulAB, isDivAB)), b.zero()},
                {b.land(inExec, isCplC), b.lnot(cy.q[0])}});
  b.connect(cy, Bus{cyNext});
  b.connect(ac, Bus{b.selectBit(ac.q[0], {{pswWr, writeValue[6]},
                                          {cyArith, acSel}})});
  b.connect(ov, Bus{b.selectBit(ov.q[0], {{pswWr, writeValue[2]},
                                          {cyArith, ovSel},
                                          {b.land(inExec, isMulAB),
                                           mulOverflow},
                                          {b.land(inExec, isDivAB),
                                           divByZero}})});
  b.connect(f0, Bus{b.selectBit(f0.q[0], {{pswWr, writeValue[5]}})});
  b.connect(rs1, Bus{b.selectBit(rs1.q[0], {{pswWr, writeValue[4]}})});
  b.connect(rs0, Bus{b.selectBit(rs0.q[0], {{pswWr, writeValue[3]}})});

  // -------------------------------------------------------------- outputs --
  b.output("p0", p0.q);
  b.output("p1", p1.q);
  b.output("pc", pc.q);
  b.output("sp", sp.q);
  b.output("acc", acc.q);

  return b.finish();
}

}  // namespace fades::mc8051
