file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_permanent.dir/bench_ext_permanent.cpp.o"
  "CMakeFiles/bench_ext_permanent.dir/bench_ext_permanent.cpp.o.d"
  "bench_ext_permanent"
  "bench_ext_permanent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_permanent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
