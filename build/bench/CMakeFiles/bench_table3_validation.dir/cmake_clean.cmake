file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_validation.dir/bench_table3_validation.cpp.o"
  "CMakeFiles/bench_table3_validation.dir/bench_table3_validation.cpp.o.d"
  "bench_table3_validation"
  "bench_table3_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
