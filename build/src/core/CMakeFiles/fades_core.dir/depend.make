# Empty dependencies file for fades_core.
# This may be replaced when dependencies are built.
