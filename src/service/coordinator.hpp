// Campaign coordinator - the server half of the distributed service.
//
// The coordinator owns the campaign: it partitions each submitted job's
// experiment range into contiguous blocks, leases blocks to workers with a
// deadline, and folds the streamed-back outcomes in index order into the
// same merge every other execution plane uses. Workers are assumed
// unreliable in every way the paper's board links are, plus one more: they
// can lie. The defenses, in order of escalation:
//
//  - A lease that misses its deadline (no heartbeat, no completion) is
//    requeued for another worker; the late worker earns a strike and an
//    exponentially growing backoff, and enough strikes ban it outright.
//  - Duplicate completions of one block are resolved deterministically:
//    the first committed result wins, the second is verified equal by
//    digest. A mismatch is a byzantine signal - the block is re-run until
//    two distinct workers agree, every worker whose result disagrees with
//    the agreed digest is banned, its uncorroborated blocks are re-queued
//    and its journal lines are expunged by an atomic rewrite.
//  - An audit mode (auditEvery = N) forces every Nth block through the
//    two-agreeing-workers rule even without a dispute, bounding how long a
//    quiet liar can survive.
//
// Crash safety: the coordinator's durable state is a superset of the
// single-process journal format - per-campaign fades.journal/1 files plus a
// fades.store/1 meta file per campaign in a content-addressed store
// directory. Killing the coordinator at any instant and restarting it with
// --resume replays the journals through the standard resume path; the merged
// artifact stays byte-identical to an uninterrupted single-process run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "obs/metrics.hpp"
#include "service/jobspec.hpp"
#include "service/wire.hpp"

namespace fades::service {

struct CoordinatorOptions {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Artifact-store directory: campaigns/ (job meta), journals/ (crash-safe
  /// outcome journals), objects/ (content-addressed artifacts), service/
  /// (worker ban events).
  std::string storeDir = "fades-store";
  /// Experiments per lease block.
  unsigned blockSize = 16;
  /// Lease lifetime; a worker must complete or heartbeat within this.
  int leaseMs = 10000;
  /// Per-frame read stall bound on coordinator sockets.
  int recvTimeoutMs = 5000;
  /// Lease-expiry scan period.
  int reaperTickMs = 100;
  /// Service progress log period; 0 disables the periodic line.
  int progressLogMs = 2000;
  /// Every Nth block (per campaign) requires two agreeing results from
  /// distinct workers before committing; 0 trusts single results unless a
  /// duplicate completion disagrees.
  unsigned auditEvery = 0;
  /// First-strike backoff; doubles per strike (capped at 2^6 times this).
  int strikeBackoffBaseMs = 250;
  /// Strikes (missed deadlines / released leases) before a permanent ban.
  unsigned strikeBanThreshold = 8;
  /// ProgressTracker heartbeat interval in experiments; 0 disables.
  std::uint64_t progressInterval = 0;
  /// fsync policy for the campaign journals.
  campaign::FsyncPolicy fsync = campaign::FsyncPolicy::Never;
  /// Reply "shutdown" to lease requests once every campaign is complete
  /// (lets a fixed worker fleet drain and exit; used by --once).
  bool shutdownWhenDone = false;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind the listener and start the accept + reaper threads.
  void start();
  /// Close the listener, join every thread, close journals. Idempotent.
  void stop();

  /// Resolved listen port (after start()).
  std::uint16_t port() const { return port_; }

  /// Register a campaign; idempotent on the job fingerprint, which it
  /// returns. An existing journal for this fingerprint is resumed (the
  /// store is content-addressed: same fingerprint = same campaign).
  std::string submit(const JobSpec& job);

  /// Re-submit every campaign recorded in the store's campaigns/ directory;
  /// returns their fingerprints. The --resume path after a coordinator kill.
  std::vector<std::string> resumeFromStore();

  bool campaignComplete(const std::string& fingerprint) const;
  bool allComplete() const;
  /// Block until every submitted campaign is complete (false on timeout;
  /// timeoutMs < 0 waits forever).
  bool waitForAllComplete(int timeoutMs);

  /// Path of the merged artifact object; empty until the campaign
  /// completes.
  std::string artifactPath(const std::string& fingerprint) const;

  /// Banned (byzantine or chronically late) worker names.
  std::vector<std::string> bannedWorkers() const;

 private:
  struct BlockResult {
    std::string worker;
    std::string digest;
    std::vector<campaign::ExperimentOutcome> outcomes;
  };

  enum class BlockState : std::uint8_t { Pending, Leased, Done };

  struct Block {
    unsigned first = 0;
    unsigned count = 0;
    BlockState state = BlockState::Pending;
    std::uint64_t leaseId = 0;
    std::string lessee;
    std::chrono::steady_clock::time_point deadline{};
    /// Two agreeing results from distinct workers required before commit
    /// (audit blocks, and any block that ever saw a digest dispute).
    bool needsAgreement = false;
    std::vector<BlockResult> results;
    std::string winnerWorker;
    std::string winnerDigest;
  };

  struct Campaign {
    JobSpec job;
    std::string fp;
    std::vector<Block> blocks;
    std::deque<std::size_t> queue;
    std::map<std::uint64_t, campaign::ExperimentOutcome> committed;
    std::set<std::uint64_t> journaled;
    std::unique_ptr<campaign::CampaignJournal> journal;
    std::unique_ptr<campaign::ProgressTracker> progress;
    std::size_t doneBlocks = 0;
    bool complete = false;
    std::string artifactObject;
  };

  struct WorkerState {
    std::string name;
    unsigned strikes = 0;
    std::chrono::steady_clock::time_point backoffUntil{};
    bool banned = false;
    std::string banReason;
  };

  void acceptLoop();
  void reaperLoop();
  void handleConnection(Socket sock);
  obs::Json dispatch(const obs::Json& msg, std::string& helloWorker);

  obs::Json handleLease(const std::string& worker);
  obs::Json handleHeartbeat(const obs::Json& msg);
  obs::Json handleComplete(const obs::Json& msg);
  obs::Json handleRelease(const obs::Json& msg);
  obs::Json handleSubmit(const obs::Json& msg);
  obs::Json handleStatus(const obs::Json& msg);
  obs::Json handleFetch(const obs::Json& msg);

  // All of the below require mu_ held.
  WorkerState& workerLocked(const std::string& name);
  void strikeLocked(WorkerState& w, const std::string& why);
  void banLocked(WorkerState& w, const std::string& reason);
  void requeueLocked(Campaign& c, std::size_t blockIdx, bool front);
  void uncommitLocked(Campaign& c, Block& block);
  void commitLocked(Campaign& c, std::size_t blockIdx,
                    const BlockResult& result);
  void resolveLocked(Campaign& c, std::size_t blockIdx);
  void finalizeLocked(Campaign& c);
  void writeMetaLocked(const Campaign& c);
  void appendEventLocked(const obs::Json& event);
  void logProgressLocked();
  Campaign* findCampaignLocked(const std::string& fp);
  Block* findBlockLocked(Campaign& c, unsigned first);

  static std::string resultDigest(
      const std::vector<campaign::ExperimentOutcome>& outcomes);

  CoordinatorOptions opt_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Listener> listener_;
  std::atomic<bool> stop_{false};
  std::thread acceptThread_;
  std::thread reaperThread_;
  std::mutex handlersMu_;
  std::map<std::uint64_t, std::thread> handlers_;
  std::vector<std::uint64_t> finishedHandlers_;
  std::uint64_t handlerSeq_ = 0;
  std::atomic<int> activeWorkers_{0};

  mutable std::mutex mu_;
  std::condition_variable allDoneCv_;
  std::uint64_t leaseSeq_ = 0;
  std::vector<std::string> order_;
  std::map<std::string, std::unique_ptr<Campaign>> campaigns_;
  std::map<std::string, WorkerState> workers_;
  std::size_t rrCursor_ = 0;

  obs::Counter& cLeasesGranted_;
  obs::Counter& cLeasesExpired_;
  obs::Counter& cLeasesRequeued_;
  obs::Counter& cBytesStreamed_;
  obs::Gauge& gWorkersActive_;
  obs::Gauge& gWorkersQuarantined_;
};

}  // namespace fades::service
