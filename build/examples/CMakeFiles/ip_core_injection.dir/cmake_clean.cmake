file(REMOVE_RECURSE
  "CMakeFiles/ip_core_injection.dir/ip_core_injection.cpp.o"
  "CMakeFiles/ip_core_injection.dir/ip_core_injection.cpp.o.d"
  "ip_core_injection"
  "ip_core_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_core_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
