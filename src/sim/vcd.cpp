#include "sim/vcd.hpp"

#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace fades::sim {

using common::ErrorKind;
using common::require;

namespace {

/// Printable VCD identifier codes: base-94 over '!'..'~'.
std::string idCode(std::size_t index) {
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return s;
}

}  // namespace

VcdWriter::VcdWriter(const Simulator& simulator,
                     const netlist::Netlist& netlist, double timescaleNs)
    : sim_(simulator), nl_(netlist), timescaleNs_(timescaleNs) {}

void VcdWriter::addSignal(const std::string& name, netlist::NetId net) {
  addBus(name, {net});
}

void VcdWriter::addBus(const std::string& name,
                       const std::vector<netlist::NetId>& bus) {
  require(!bus.empty() && bus.size() <= 64, ErrorKind::InvalidArgument,
          "VCD bus width out of range");
  require(changes_.empty(), ErrorKind::InvalidArgument,
          "signals must be registered before the first sample");
  Signal s;
  s.name = name;
  s.nets = bus;
  s.id = idCode(signals_.size());
  signals_.push_back(std::move(s));
}

void VcdWriter::addAllOutputs() {
  for (const auto& p : nl_.outputs()) addBus(p.name, p.nets);
}

std::uint64_t VcdWriter::valueOf(const Signal& s) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < s.nets.size(); ++i) {
    if (sim_.netValue(s.nets[i])) v |= 1ULL << i;
  }
  return v;
}

void VcdWriter::sample(std::uint64_t cycle) {
  std::string batch;
  for (auto& s : signals_) {
    const std::uint64_t v = valueOf(s);
    if (s.everSampled && v == s.lastValue) continue;
    s.everSampled = true;
    s.lastValue = v;
    if (s.nets.size() == 1) {
      batch += (v ? '1' : '0');
      batch += s.id;
      batch += '\n';
    } else {
      batch += 'b';
      for (std::size_t i = s.nets.size(); i-- > 0;) {
        batch += ((v >> i) & 1) ? '1' : '0';
      }
      batch += ' ';
      batch += s.id;
      batch += '\n';
    }
  }
  if (batch.empty()) return;
  if (static_cast<std::int64_t>(cycle) != lastEmittedCycle_) {
    changes_ += '#' + std::to_string(cycle) + '\n';
    lastEmittedCycle_ = static_cast<std::int64_t>(cycle);
  }
  changes_ += batch;
}

std::string VcdWriter::header() const {
  std::string h;
  h += "$date reproduced FADES trace $end\n";
  h += "$version fades VcdWriter $end\n";
  h += "$timescale " + std::to_string(static_cast<int>(timescaleNs_)) +
       " ns $end\n";
  h += "$scope module system $end\n";
  for (const auto& s : signals_) {
    h += "$var wire " + std::to_string(s.nets.size()) + " " + s.id + " " +
         s.name + " $end\n";
  }
  h += "$upscope $end\n$enddefinitions $end\n";
  return h;
}

std::string VcdWriter::str() const { return header() + changes_; }

void VcdWriter::save(const std::string& path) const {
  const std::string text = str();
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  require(f != nullptr, ErrorKind::InvalidArgument,
          "cannot open '" + path + "' for writing");
  require(std::fwrite(text.data(), 1, text.size(), f.get()) == text.size(),
          ErrorKind::InvalidArgument, "short write to '" + path + "'");
}

}  // namespace fades::sim
