#include "synth/implement.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/error.hpp"
#include "synth/fabric.hpp"
#include "synth/place.hpp"
#include "synth/route.hpp"

namespace fades::synth {

using common::ErrorKind;
using common::raise;
using common::require;
using fpga::CbCoord;
using fpga::CbField;
using fpga::CbInPin;
using fpga::CbOutPin;
using fpga::DeviceSpec;
using netlist::Netlist;

std::pair<unsigned, unsigned> RamSite::bitAddress(std::size_t row,
                                                  unsigned bit) const {
  for (const auto& s : slices) {
    if (bit >= s.bitLo && bit < s.bitLo + s.width) {
      return {s.block,
              static_cast<unsigned>(row * s.width + (bit - s.bitLo))};
    }
  }
  raise(ErrorKind::InvalidArgument, "ram bit out of range");
}

const FlopSite* Implementation::findFlop(const std::string& name) const {
  for (const auto& f : flops) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::uint32_t> Implementation::flopsInUnit(Unit unit) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < flops.size(); ++i) {
    if (flops[i].unit == unit || unit == Unit::None) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> Implementation::lutsInUnit(Unit unit) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < luts.size(); ++i) {
    if (luts[i].unit == unit || unit == Unit::None) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> Implementation::routesInUnit(
    Unit unit, bool sequential) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < routes.size(); ++i) {
    if (routes[i].sequentialSource != sequential) continue;
    if (routes[i].unit == unit || unit == Unit::None) out.push_back(i);
  }
  return out;
}

const RamSite* Implementation::findRam(const std::string& name) const {
  for (const auto& r : rams) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

const PadBinding* Implementation::findPad(const std::string& port,
                                          unsigned bit) const {
  for (const auto& p : pads) {
    if (p.port == port && p.bitIndex == bit) return &p;
  }
  return nullptr;
}

std::optional<std::uint32_t> Implementation::routeOfNet(NetId source) const {
  for (std::uint32_t i = 0; i < routes.size(); ++i) {
    if (routes[i].sourceNet == source) return i;
  }
  return std::nullopt;
}

namespace {

/// Abstract endpoint references, concretized after placement.
struct SourceRef {
  enum class Kind : std::uint8_t { LutOut, FfOut, Pad, BramDout } kind;
  std::uint32_t index = 0;  // lut idx / flop site idx / pad / block
  unsigned sub = 0;         // BramDout: pin number
};
struct SinkRef {
  enum class Kind : std::uint8_t { LutLeaf, FfByp, OutPad, BramPin } kind;
  std::uint32_t index = 0;  // lut idx / flop site idx / pad / block
  unsigned sub = 0;         // leaf position or bram pin
};

struct PhysNet {
  NetId source{};  // invalid for synthetic const-1 nets
  SourceRef src{};
  std::vector<SinkRef> sinks;
  Unit unit = Unit::None;
  bool sequential = false;
  std::string name;
};

}  // namespace

Implementation implement(const Netlist& nl, const DeviceSpec& spec,
                         const SynthOptions& options) {
  nl.validate();
  MappedDesign mapped = techmap(nl);
  common::Rng rng(options.seed);

  Implementation impl;
  impl.spec = spec;

  // ------------------------------------------------------------- LUT sites
  // mapped.luts become LutSites 1:1 (plus an optional shared const-1 LUT).
  for (const auto& m : mapped.luts) {
    LutSite site;
    site.unit = m.unit;
    site.out = m.out;
    site.signalName = nl.netName(m.out);
    site.table = m.table;
    site.leafCount = m.leafCount;
    impl.luts.push_back(site);
  }
  std::int32_t constOneLut = -1;  // created on demand
  auto getConstOneLut = [&]() {
    if (constOneLut < 0) {
      LutSite site;
      site.unit = Unit::None;
      site.signalName = "<const1>";
      site.table = 0xFFFF;
      site.leafCount = 0;
      constOneLut = static_cast<std::int32_t>(impl.luts.size());
      impl.luts.push_back(site);
    }
    return static_cast<std::uint32_t>(constOneLut);
  };

  // ------------------------------------------------------------ flop sites
  for (std::uint32_t fi = 0; fi < nl.flopCount(); ++fi) {
    const auto& f = nl.flops()[fi];
    FlopSite site;
    site.unit = f.unit;
    site.name = f.name;
    site.flop = FlopId{fi};
    site.init = f.init;
    impl.flops.push_back(site);
  }

  // ------------------------------------------------------------- ram sites
  {
    // Allocate memory blocks nearest the horizontal centre first: placed
    // logic is centred, so this keeps memory routes short and spreads pin
    // congestion instead of funnelling everything to one device corner.
    std::vector<unsigned> blockOrder(spec.memBlocks);
    for (unsigned i = 0; i < spec.memBlocks; ++i) blockOrder[i] = i;
    const double mid = (spec.memBlocks - 1) / 2.0;
    std::sort(blockOrder.begin(), blockOrder.end(),
              [&](unsigned a, unsigned b) {
                return std::abs(a - mid) < std::abs(b - mid);
              });
    unsigned nextBlock = 0;
    for (std::uint32_t ri = 0; ri < nl.ramCount(); ++ri) {
      const auto& r = nl.rams()[ri];
      RamSite site;
      site.name = r.name;
      site.unit = r.unit;
      site.ram = RamId{ri};
      site.addrBits = r.addrBits;
      site.dataBits = r.dataBits;
      site.isRom = r.isRom();
      unsigned remaining = r.dataBits;
      unsigned bitLo = 0;
      while (remaining > 0) {
        unsigned w = spec.memMaxWidth;
        while (w > remaining) w >>= 1;
        require((std::size_t{1} << r.addrBits) * w <= spec.memBlockBits,
                ErrorKind::CapacityError,
                "memory '" + r.name + "' too deep for a memory block");
        require(nextBlock < spec.memBlocks, ErrorKind::CapacityError,
                "out of memory blocks for '" + r.name + "'");
        site.slices.push_back(RamSite::Slice{blockOrder[nextBlock++], bitLo, w});
        bitLo += w;
        remaining -= w;
      }
      impl.rams.push_back(std::move(site));
    }
  }

  // ------------------------------------------------------------- pad sites
  {
    // Inputs fill pads from the west edge upward, outputs from the east
    // edge downward; the two regions may spill into each other's side as
    // long as the total fits.
    unsigned nextIn = 0;
    unsigned nextOut = spec.padCount() - 1;
    for (const auto& p : nl.inputs()) {
      for (unsigned b = 0; b < p.nets.size(); ++b) {
        require(nextIn <= nextOut, ErrorKind::CapacityError, "out of pads");
        impl.pads.push_back(PadBinding{p.name, b, nextIn++, true});
      }
    }
    for (const auto& p : nl.outputs()) {
      for (unsigned b = 0; b < p.nets.size(); ++b) {
        require(nextOut >= nextIn && nextOut != 0u - 1u,
                ErrorKind::CapacityError, "out of pads");
        impl.pads.push_back(PadBinding{p.name, b, nextOut--, false});
      }
    }
  }
  auto padOfInputNet = [&](NetId canonical) -> std::uint32_t {
    // canonical is driven by an input port; find its binding.
    const auto d = nl.driverOf(canonical);
    const auto& port = nl.inputs()[d.index];
    for (unsigned b = 0; b < port.nets.size(); ++b) {
      if (port.nets[b] == canonical) {
        return impl.findPad(port.name, b)->pad;
      }
    }
    raise(ErrorKind::SynthesisError, "input net without pad binding");
  };

  // ----------------------------------------------------------- pack cells
  // Cell = one CB: a LUT, an FF, or an FF packed with the LUT computing its
  // D input (internal FFIN path, no routing needed).
  struct Cell {
    std::int32_t lut = -1;
    std::int32_t flop = -1;
  };
  std::vector<Cell> cells;
  std::vector<std::int32_t> cellOfLut(impl.luts.size(), -1);
  std::vector<std::int32_t> cellOfFlop(impl.flops.size(), -1);
  std::vector<std::uint8_t> flopInternal(impl.flops.size(), 0);
  std::vector<std::int32_t> lutClaimedBy(impl.luts.size(), -1);

  for (std::uint32_t fi = 0; fi < nl.flopCount(); ++fi) {
    const NetId s = mapped.resolve(nl.flops()[fi].d);
    const std::uint32_t li = mapped.lutOfNet[s.value];
    if (li != 0 && lutClaimedBy[li - 1] < 0) {
      lutClaimedBy[li - 1] = static_cast<std::int32_t>(fi);
      flopInternal[fi] = 1;
      Cell c;
      c.lut = static_cast<std::int32_t>(li - 1);
      c.flop = static_cast<std::int32_t>(fi);
      cellOfLut[li - 1] = static_cast<std::int32_t>(cells.size());
      cellOfFlop[fi] = static_cast<std::int32_t>(cells.size());
      cells.push_back(c);
    }
  }
  for (std::uint32_t li = 0; li < impl.luts.size(); ++li) {
    if (cellOfLut[li] < 0) {
      cellOfLut[li] = static_cast<std::int32_t>(cells.size());
      cells.push_back(Cell{static_cast<std::int32_t>(li), -1});
    }
  }
  for (std::uint32_t fi = 0; fi < impl.flops.size(); ++fi) {
    if (cellOfFlop[fi] < 0) {
      cellOfFlop[fi] = static_cast<std::int32_t>(cells.size());
      cells.push_back(Cell{-1, static_cast<std::int32_t>(fi)});
    }
  }

  // -------------------------------------------------------- physical nets
  std::unordered_map<std::uint32_t, std::uint32_t> netOfSource;  // net -> idx
  std::vector<PhysNet> phys;
  std::int32_t constOneNet = -1;

  auto sourceRefOf = [&](NetId canonical) -> SourceRef {
    const std::uint32_t li = mapped.lutOfNet[canonical.value];
    if (li != 0) return SourceRef{SourceRef::Kind::LutOut, li - 1, 0};
    const auto d = nl.driverOf(canonical);
    switch (d.kind) {
      case Netlist::DriverKind::Flop:
        return SourceRef{SourceRef::Kind::FfOut, d.index, 0};
      case Netlist::DriverKind::Input:
        return SourceRef{SourceRef::Kind::Pad, padOfInputNet(canonical), 0};
      case Netlist::DriverKind::Ram: {
        const auto& ram = nl.ram(RamId{d.index});
        for (unsigned b = 0; b < ram.dataBits; ++b) {
          if (ram.dataOut[b] == canonical) {
            const auto& site = impl.rams[d.index];
            for (const auto& sl : site.slices) {
              if (b >= sl.bitLo && b < sl.bitLo + sl.width) {
                return SourceRef{SourceRef::Kind::BramDout, sl.block,
                                 DeviceSpec::kBramAddrPins +
                                     DeviceSpec::kBramDataPins +
                                     (b - sl.bitLo)};
              }
            }
          }
        }
        raise(ErrorKind::SynthesisError, "ram output without slice");
      }
      default:
        raise(ErrorKind::SynthesisError,
              "net '" + nl.netName(canonical) + "' has no physical source");
    }
  };

  auto addSink = [&](NetId rawNet, SinkRef sink) -> bool {
    // Returns false if the sink stays unconnected (constant 0).
    const NetId canonical = mapped.resolve(rawNet);
    const std::int8_t cv = mapped.constVal[canonical.value];
    if (cv == 0) return false;  // floating fabric reads 0
    if (cv == 1) {
      // Route from the shared constant-1 LUT.
      const std::uint32_t li = getConstOneLut();
      if (constOneNet < 0) {
        constOneNet = static_cast<std::int32_t>(phys.size());
        PhysNet n;
        n.src = SourceRef{SourceRef::Kind::LutOut, li, 0};
        n.name = "<const1>";
        phys.push_back(n);
      }
      phys[static_cast<std::size_t>(constOneNet)].sinks.push_back(sink);
      return true;
    }
    auto [it, inserted] =
        netOfSource.try_emplace(canonical.value,
                                static_cast<std::uint32_t>(phys.size()));
    if (inserted) {
      PhysNet n;
      n.source = canonical;
      n.src = sourceRefOf(canonical);
      n.name = nl.netName(canonical);
      const auto d = nl.driverOf(canonical);
      n.sequential = (d.kind == Netlist::DriverKind::Flop);
      if (d.kind == Netlist::DriverKind::Gate) {
        n.unit = nl.gates()[d.index].unit;
      } else if (d.kind == Netlist::DriverKind::Flop) {
        n.unit = nl.flops()[d.index].unit;
      } else if (d.kind == Netlist::DriverKind::Ram) {
        n.unit = nl.rams()[d.index].unit;
      }
      phys.push_back(std::move(n));
    }
    phys[it->second].sinks.push_back(sink);
    return true;
  };

  // LUT leaves.
  for (std::uint32_t li = 0; li < mapped.luts.size(); ++li) {
    const auto& m = mapped.luts[li];
    for (unsigned k = 0; k < m.leafCount; ++k) {
      addSink(m.leaves[k], SinkRef{SinkRef::Kind::LutLeaf, li, k});
    }
  }
  // FF bypass inputs.
  for (std::uint32_t fi = 0; fi < nl.flopCount(); ++fi) {
    if (flopInternal[fi]) continue;
    addSink(nl.flops()[fi].d, SinkRef{SinkRef::Kind::FfByp, fi, 0});
  }
  // Output pads.
  for (const auto& p : nl.outputs()) {
    for (unsigned b = 0; b < p.nets.size(); ++b) {
      const auto* binding = impl.findPad(p.name, b);
      addSink(p.nets[b], SinkRef{SinkRef::Kind::OutPad, binding->pad, 0});
    }
  }
  // Memory-block pins.
  for (std::uint32_t ri = 0; ri < nl.ramCount(); ++ri) {
    const auto& r = nl.rams()[ri];
    for (const auto& sl : impl.rams[ri].slices) {
      for (unsigned a = 0; a < r.addrBits; ++a) {
        addSink(r.addr[a], SinkRef{SinkRef::Kind::BramPin, sl.block, a});
      }
      for (unsigned b = 0; b < sl.width; ++b) {
        if (!r.isRom()) {
          addSink(r.dataIn[sl.bitLo + b],
                  SinkRef{SinkRef::Kind::BramPin, sl.block,
                          DeviceSpec::kBramAddrPins + b});
        }
      }
      if (r.writeEnable.valid()) {
        addSink(r.writeEnable, SinkRef{SinkRef::Kind::BramPin, sl.block,
                                       DeviceSpec::kBramPins - 1});
      }
    }
  }

  // The shared constant-1 LUT may have been created during sink collection;
  // give it a cell like any other LUT.
  while (cellOfLut.size() < impl.luts.size()) {
    const auto li = static_cast<std::int32_t>(cellOfLut.size());
    cellOfLut.push_back(static_cast<std::int32_t>(cells.size()));
    cells.push_back(Cell{li, -1});
  }

  // ------------------------------------------------------------ placement
  const fpga::RoutingNodes nodes(spec);
  const fpga::ConfigLayout layout(spec);

  auto nodePos = [&](std::uint32_t n) {
    double x, y;
    nodes.position(n, x, y);
    return std::pair<double, double>{x, y};
  };

  std::vector<PlacerNet> placerNets;
  placerNets.reserve(phys.size());
  for (const auto& n : phys) {
    PlacerNet pn;
    auto addCellOrFixed = [&](std::int32_t cell, std::uint32_t fixedNode) {
      if (cell >= 0) {
        pn.cells.push_back(static_cast<std::uint32_t>(cell));
      } else {
        pn.fixed.push_back(nodePos(fixedNode));
      }
    };
    switch (n.src.kind) {
      case SourceRef::Kind::LutOut:
        addCellOrFixed(cellOfLut[n.src.index], 0);
        break;
      case SourceRef::Kind::FfOut:
        addCellOrFixed(cellOfFlop[n.src.index], 0);
        break;
      case SourceRef::Kind::Pad:
        addCellOrFixed(-1, nodes.pad(n.src.index));
        break;
      case SourceRef::Kind::BramDout:
        addCellOrFixed(-1, nodes.bramPin(n.src.index, n.src.sub));
        break;
    }
    for (const auto& s : n.sinks) {
      switch (s.kind) {
        case SinkRef::Kind::LutLeaf:
          addCellOrFixed(cellOfLut[s.index], 0);
          break;
        case SinkRef::Kind::FfByp:
          addCellOrFixed(cellOfFlop[s.index], 0);
          break;
        case SinkRef::Kind::OutPad:
          addCellOrFixed(-1, nodes.pad(s.index));
          break;
        case SinkRef::Kind::BramPin:
          addCellOrFixed(-1, nodes.bramPin(s.index, s.sub));
          break;
      }
    }
    placerNets.push_back(std::move(pn));
  }

  const PlacerResult placed =
      place(spec, static_cast<std::uint32_t>(cells.size()), placerNets, rng,
            options.placementSwapMultiplier);

  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    if (cells[ci].lut >= 0) impl.luts[cells[ci].lut].cb = placed.cellSite[ci];
    if (cells[ci].flop >= 0) {
      impl.flops[cells[ci].flop].cb = placed.cellSite[ci];
    }
  }

  // -------------------------------------------------------------- routing
  auto concreteSource = [&](const SourceRef& s) -> std::uint32_t {
    switch (s.kind) {
      case SourceRef::Kind::LutOut:
        return nodes.cbOut(impl.luts[s.index].cb, CbOutPin::Lut);
      case SourceRef::Kind::FfOut:
        return nodes.cbOut(impl.flops[s.index].cb, CbOutPin::Ff);
      case SourceRef::Kind::Pad:
        return nodes.pad(s.index);
      case SourceRef::Kind::BramDout:
        return nodes.bramPin(s.index, s.sub);
    }
    raise(ErrorKind::SynthesisError, "bad source ref");
  };
  auto concreteSink = [&](const SinkRef& s) -> std::uint32_t {
    switch (s.kind) {
      case SinkRef::Kind::LutLeaf:
        return nodes.cbIn(impl.luts[s.index].cb,
                          static_cast<CbInPin>(s.sub));
      case SinkRef::Kind::FfByp:
        return nodes.cbIn(impl.flops[s.index].cb, CbInPin::Byp);
      case SinkRef::Kind::OutPad:
        return nodes.pad(s.index);
      case SinkRef::Kind::BramPin:
        return nodes.bramPin(s.index, s.sub);
    }
    raise(ErrorKind::SynthesisError, "bad sink ref");
  };

  std::vector<RouteRequest> requests;
  requests.reserve(phys.size());
  for (const auto& n : phys) {
    RouteRequest r;
    r.source = concreteSource(n.src);
    for (const auto& s : n.sinks) r.sinks.push_back(concreteSink(s));
    requests.push_back(std::move(r));
  }
  RouteStats rstats;
  const auto routed =
      routeAll(layout, nodes, requests, options.maxRouteIterations, &rstats);

  // --------------------------------------------------------------- bitgen
  fpga::Bitstream bs{common::BitVector(layout.logicPlaneBits()),
                     common::BitVector(layout.bramPlaneBits())};

  for (std::uint32_t ci = 0; ci < cells.size(); ++ci) {
    const CbCoord cb = placed.cellSite[ci];
    if (cells[ci].lut >= 0) {
      const auto& site = impl.luts[cells[ci].lut];
      for (unsigned i = 0; i < 16; ++i) {
        bs.logic.set(layout.cbLutBit(cb, i), (site.table >> i) & 1u);
      }
      bs.logic.set(layout.cbFieldBit(cb, CbField::LutUsed), true);
    }
    if (cells[ci].flop >= 0) {
      const auto fi = static_cast<std::uint32_t>(cells[ci].flop);
      bs.logic.set(layout.cbFieldBit(cb, CbField::FfUsed), true);
      bs.logic.set(layout.cbFieldBit(cb, CbField::SrMode),
                   impl.flops[fi].init);
      bs.logic.set(layout.cbFieldBit(cb, CbField::FfInSrc),
                   !flopInternal[fi]);
      impl.flops[fi].bypassInput = !flopInternal[fi];
    }
  }
  for (const auto& p : impl.pads) {
    bs.logic.set(layout.padFieldBit(p.pad, fpga::PadField::Used), true);
    if (!p.isInput) {
      bs.logic.set(layout.padFieldBit(p.pad, fpga::PadField::IsOutput), true);
    }
  }
  for (std::uint32_t ri = 0; ri < impl.rams.size(); ++ri) {
    const auto& site = impl.rams[ri];
    const auto& r = nl.ram(site.ram);
    for (const auto& sl : site.slices) {
      bs.logic.set(layout.bramFieldBit(sl.block, fpga::BramField::Used), true);
      unsigned widthSel = 0;
      while ((1u << widthSel) < sl.width) ++widthSel;
      for (unsigned b = 0; b < 3; ++b) {
        bs.logic.set(
            layout.bramFieldBit(sl.block, fpga::BramField::WidthSelLo) + b,
            (widthSel >> b) & 1u);
      }
      for (std::size_t row = 0; row < r.depth(); ++row) {
        const std::uint64_t word = r.initWord(row);
        for (unsigned b = 0; b < sl.width; ++b) {
          bs.bram.set(layout.bramContentBit(sl.block, row * sl.width + b),
                      (word >> (sl.bitLo + b)) & 1u);
        }
      }
    }
  }
  // Routing bits.
  for (std::size_t i = 0; i < routed.size(); ++i) {
    for (const auto& [a, b] : routed[i].edges) {
      const auto bit = transistorBit(layout, nodes, a, b);
      require(bit.has_value(), ErrorKind::SynthesisError,
              "routed edge without a pass transistor");
      bs.logic.set(*bit, true);
    }
  }

  // -------------------------------------------------- assemble the result
  impl.bitstream = std::move(bs);
  impl.routes.reserve(phys.size());
  for (std::size_t i = 0; i < phys.size(); ++i) {
    NetRouteInfo info;
    info.signalName = phys[i].name;
    info.sourceNet = phys[i].source;
    info.unit = phys[i].unit;
    info.sequentialSource = phys[i].sequential;
    info.sourceNode = requests[i].source;
    info.sinkNodes = requests[i].sinks;
    for (auto n : routed[i].nodes) {
      const auto k = nodes.info(n).kind;
      if (k == fpga::NodeKind::HSeg || k == fpga::NodeKind::VSeg) {
        info.wireNodes.push_back(n);
      }
    }
    for (const auto& [a, b] : routed[i].edges) {
      info.transistorBits.push_back(*transistorBit(layout, nodes, a, b));
    }
    info.edgeNodes = routed[i].edges;
    impl.routes.push_back(std::move(info));
  }

  impl.stats.luts = static_cast<unsigned>(impl.luts.size());
  impl.stats.flops = static_cast<unsigned>(impl.flops.size());
  for (const auto& r : impl.rams) {
    impl.stats.memBlocks += static_cast<unsigned>(r.slices.size());
  }
  impl.stats.pads = static_cast<unsigned>(impl.pads.size());
  impl.stats.routedNets = static_cast<unsigned>(impl.routes.size());
  impl.stats.wireSegments = rstats.totalWireNodes;
  impl.stats.configBits = impl.bitstream.logic.popcount();
  impl.stats.routeIterations = rstats.iterations;
  return impl;
}

// ---------------------------------------------------------------------------

EmulatedSystem::EmulatedSystem(fpga::Device& device, const Implementation& impl)
    : dev_(device), impl_(impl) {}

void EmulatedSystem::setInput(const std::string& port, std::uint64_t value) {
  bool any = false;
  for (const auto& p : impl_.pads) {
    if (p.port == port && p.isInput) {
      dev_.setPadInput(p.pad, (value >> p.bitIndex) & 1u);
      any = true;
    }
  }
  require(any, ErrorKind::InvalidArgument, "no input port '" + port + "'");
}

std::uint64_t EmulatedSystem::portValue(const std::string& port) const {
  std::uint64_t v = 0;
  bool any = false;
  for (const auto& p : impl_.pads) {
    if (p.port == port && !p.isInput) {
      if (dev_.padValue(p.pad)) v |= 1ULL << p.bitIndex;
      any = true;
    }
  }
  require(any, ErrorKind::InvalidArgument, "no output port '" + port + "'");
  return v;
}

}  // namespace fades::synth
