// End-to-end integration: the full MC8051 core synthesized onto the generic
// FPGA must behave cycle-for-cycle like the netlist simulator and like the
// instruction-set reference across complete workloads. This is the property
// that makes the paper's FADES-vs-VFIT comparison meaningful: both tools
// execute the *same* system.
#include <gtest/gtest.h>

#include <memory>

#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "sim/simulator.hpp"
#include "synth/implement.hpp"

namespace fades {
namespace {

using fpga::Device;
using fpga::DeviceSpec;
using mc8051::Workload;
using sim::Simulator;
using synth::EmulatedSystem;
using synth::Implementation;

struct Rig {
  netlist::Netlist nl;
  std::unique_ptr<Implementation> impl;
  std::unique_ptr<Device> device;
  std::unique_ptr<Simulator> simulator;
  std::unique_ptr<EmulatedSystem> system;

  Rig(const Workload& w, const DeviceSpec& spec)
      : nl(mc8051::buildCore(w.bytes)) {
    impl = std::make_unique<Implementation>(synth::implement(nl, spec));
    device = std::make_unique<Device>(spec);
    device->writeFullBitstream(impl->bitstream);
    simulator = std::make_unique<Simulator>(nl);
    system = std::make_unique<EmulatedSystem>(*device, *impl);
  }
};

class WorkloadOnFpga : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadOnFpga, LockstepWithSimulatorAndIss) {
  const std::string which = GetParam();
  const Workload w = which == "bubblesort" ? mc8051::bubblesort(6)
                     : which == "checksum" ? mc8051::checksum(10)
                                           : mc8051::fibonacci(8);
  Rig rig(w, DeviceSpec::virtex1000Like());
  mc8051::Iss iss(w.bytes);

  for (std::uint64_t c = 0; c < w.cycles; ++c) {
    ASSERT_EQ(rig.simulator->portValue("p1"), rig.system->portValue("p1"))
        << "cycle " << c;
    ASSERT_EQ(rig.simulator->portValue("pc"), rig.system->portValue("pc"))
        << "cycle " << c;
    rig.simulator->step();
    rig.system->step();
  }
  iss.runCycles(w.cycles);
  EXPECT_EQ(rig.system->portValue("p0"), w.expectedP0);
  EXPECT_EQ(rig.system->portValue("p1"), w.expectedP1);
  EXPECT_EQ(rig.system->portValue("p1"), iss.p1());
  EXPECT_EQ(rig.system->portValue("acc"), iss.acc());
  EXPECT_EQ(rig.system->portValue("sp"), iss.sp());
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadOnFpga,
                         ::testing::Values("bubblesort", "checksum",
                                           "fibonacci"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Integration, IramContentsMatchAfterRun) {
  const Workload w = mc8051::bubblesort(6);
  Rig rig(w, DeviceSpec::virtex1000Like());
  rig.simulator->run(w.cycles);
  for (std::uint64_t c = 0; c < w.cycles; ++c) rig.system->step();

  // Compare the sorted array inside the device's memory block against the
  // simulator's RAM model, through the location map.
  const auto* ramSite = rig.impl->findRam("iram");
  ASSERT_NE(ramSite, nullptr);
  netlist::RamId iramId{};
  for (std::uint32_t r = 0; r < rig.nl.ramCount(); ++r) {
    if (rig.nl.ram(netlist::RamId{r}).name == "iram") {
      iramId = netlist::RamId{r};
    }
  }
  for (unsigned a = 0; a < 128; ++a) {
    std::uint64_t devWord = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      const auto [block, cbit] = ramSite->bitAddress(a, bit);
      if (rig.device->bramBit(
              rig.device->layout().bramContentBit(block, cbit))) {
        devWord |= 1ULL << bit;
      }
    }
    ASSERT_EQ(devWord, rig.simulator->ramWord(iramId, a)) << "iram[" << a << "]";
  }
  // And the array is actually sorted ascending 1..6.
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(rig.simulator->ramWord(iramId, 0x30 + i), i + 1);
  }
}

TEST(Integration, SynthesisStatisticsOnV1000) {
  // The paper reports its core used 637 of 24576 FFs and 5310 of 24576 LUTs
  // on a Virtex-1000 (Section 7.1). Our leaner core must still fit with a
  // comparable low utilization, leaving the same "small design" regime that
  // Section 7.1's speed-up discussion assumes.
  const Workload w = mc8051::bubblesort(6);
  const auto nl = mc8051::buildCore(w.bytes);
  const auto impl = synth::implement(nl, DeviceSpec::virtex1000Like());
  EXPECT_GT(impl.stats.luts, 500u);
  EXPECT_LT(impl.stats.luts, 24576u / 2);
  EXPECT_GT(impl.stats.flops, 100u);
  EXPECT_LT(impl.stats.flops, 637u * 2);
  EXPECT_EQ(impl.stats.memBlocks, 2u);  // IRAM + ROM
  // Location map covers the architectural registers.
  for (const char* reg : {"acc[0]", "acc[7]", "b[3]", "sp[0]", "psw_cy",
                          "pc[0]", "state[0]", "ir[5]"}) {
    EXPECT_NE(impl.findFlop(reg), nullptr) << reg;
  }
}

TEST(Integration, GsrResetRestartsTheWorkload) {
  const Workload w = mc8051::fibonacci(5);
  Rig rig(w, DeviceSpec::virtex1000Like());
  for (std::uint64_t c = 0; c < w.cycles; ++c) rig.system->step();
  EXPECT_EQ(rig.system->portValue("p0"), w.expectedP0);

  // GSR returns every FF to its power-on value; memory contents keep their
  // (dirty) state - exactly why the campaign controller must rewrite the
  // memory frames between experiments (paper Section 4.1).
  rig.device->pulseGsr();
  EXPECT_EQ(rig.system->portValue("pc"), 0u);
  EXPECT_EQ(rig.system->portValue("p0"), 0u);
  // The program re-executes and reconverges to the same result (fibonacci
  // rewrites all state it reads).
  for (std::uint64_t c = 0; c < w.cycles; ++c) rig.system->step();
  EXPECT_EQ(rig.system->portValue("p0"), w.expectedP0);
  EXPECT_EQ(rig.system->portValue("p1"), w.expectedP1);
}

}  // namespace
}  // namespace fades
