#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "mc8051/assembler.hpp"
#include "mc8051/core.hpp"
#include "mc8051/isa.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace fades::mc8051 {
namespace {

using common::FadesError;
using sim::Simulator;

// ------------------------------------------------------------ assembler -----

TEST(Assembler, BasicEncodings) {
  const auto p = assemble(R"(
    MOV A, #0x42
    MOV R3, #7
    ADD A, R3
    MOV 0x30, A
    NOP
  )");
  EXPECT_EQ(p.bytes, (std::vector<std::uint8_t>{0x74, 0x42, 0x78 + 3, 7,
                                                0x28 + 3, 0xF5, 0x30, 0x00}));
}

TEST(Assembler, IndirectAndExchange) {
  const auto p = assemble(R"(
    MOV R0, #0x30
    MOV @R0, #5
    MOV A, @R0
    XCH A, R1
    XCH A, 0x31
  )");
  EXPECT_EQ(p.bytes,
            (std::vector<std::uint8_t>{0x78, 0x30, 0x76, 5, 0xE6, 0xC8 + 1,
                                       0xC5, 0x31}));
}

TEST(Assembler, BranchesAndLabels) {
  const auto p = assemble(R"(
    start: DJNZ R2, start
           SJMP start
    end:   SJMP $
  )");
  // DJNZ R2,start: offset -2 (back to its own start).
  EXPECT_EQ(p.bytes[0], 0xD8 + 2);
  EXPECT_EQ(p.bytes[1], 0xFE);
  // SJMP start at address 2: target 0, offset -4.
  EXPECT_EQ(p.bytes[2], 0x80);
  EXPECT_EQ(p.bytes[3], 0xFC);
  // SJMP $: offset -2.
  EXPECT_EQ(p.bytes[5], 0xFE);
  EXPECT_EQ(p.symbol("end"), 4u);
}

TEST(Assembler, SfrNamesAndMovDirDirOperandOrder) {
  const auto p = assemble("MOV P1, PSW");
  // MCS-51 encodes MOV dir,dir as: 0x85, src, dst.
  EXPECT_EQ(p.bytes, (std::vector<std::uint8_t>{0x85, SFR_PSW, SFR_P1}));
}

TEST(Assembler, DirectivesOrgDbEqu) {
  const auto p = assemble(R"(
    val: .equ 0x2A
         MOV A, #val
         .org 0x10
         .db 1, 2, 0xFF
  )");
  EXPECT_EQ(p.bytes.size(), 0x13u);
  EXPECT_EQ(p.bytes[1], 0x2A);
  EXPECT_EQ(p.bytes[0x10], 1);
  EXPECT_EQ(p.bytes[0x12], 0xFF);
}

TEST(Assembler, ErrorsAreDiagnosed) {
  EXPECT_THROW(assemble("FROB A, #1"), FadesError);
  EXPECT_THROW(assemble("MOV A"), FadesError);
  EXPECT_THROW(assemble("SJMP missing_label"), FadesError);
  // Branch out of range.
  std::string longSrc = "start: NOP\n";
  for (int i = 0; i < 200; ++i) longSrc += "NOP\n";
  longSrc += "SJMP start\n";
  EXPECT_THROW(assemble(longSrc), FadesError);
}

TEST(Isa, LengthsMatchAssembledSizes) {
  // Cross-check instructionLength against what the assembler emits.
  struct Case {
    const char* src;
    unsigned len;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"NOP", 1},      {"RET", 1},          {"INC A", 1},
           {"MOV A, R5", 1}, {"MOV A, @R1", 1},  {"ADD A, #1", 2},
           {"MOV A, 0x30", 2}, {"PUSH PSW", 2},  {"DJNZ R1, $", 2},
           {"LJMP $", 3},   {"MOV 0x30, #1", 3}, {"CJNE A, #5, $", 3}}) {
    const auto p = assemble(c.src);
    EXPECT_EQ(p.bytes.size(), c.len) << c.src;
    EXPECT_EQ(instructionLength(p.bytes[0]), c.len) << c.src;
  }
  EXPECT_EQ(instructionLength(0xA5), 0u);  // a hole in the map
}

// ------------------------------------------------------------------ ISS -----

TEST(Iss, ArithmeticFlags) {
  const auto p = assemble(R"(
    MOV A, #0x7F
    ADD A, #0x01
  )");
  Iss iss(p.bytes);
  iss.stepInstruction();
  iss.stepInstruction();
  EXPECT_EQ(iss.acc(), 0x80);
  EXPECT_FALSE(iss.carry());
  EXPECT_TRUE(iss.psw() & (1 << PSW_OV));  // 0x7F + 1 overflows signed
  EXPECT_TRUE(iss.psw() & (1 << PSW_AC));  // carry out of bit 3
  EXPECT_TRUE(iss.psw() & (1 << PSW_P));   // 0x80 has odd parity
}

TEST(Iss, SubbBorrowChain) {
  const auto p = assemble(R"(
    CLR C
    MOV A, #0x10
    SUBB A, #0x20
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 3; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.acc(), 0xF0);
  EXPECT_TRUE(iss.carry());  // borrow
}

TEST(Iss, BankedRegisters) {
  const auto p = assemble(R"(
    MOV R0, #0x11      ; bank 0: iram[0]
    MOV PSW, #0x08     ; RS0=1 -> bank 1
    MOV R0, #0x22      ; bank 1: iram[8]
    MOV PSW, #0x00
    MOV A, R0
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 5; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.iram(0), 0x11);
  EXPECT_EQ(iss.iram(8), 0x22);
  EXPECT_EQ(iss.acc(), 0x11);
}

TEST(Iss, StackCallReturn) {
  const auto p = assemble(R"(
          MOV  SP, #0x50
          LCALL sub
          MOV  P0, #1
    end:  SJMP $
    sub:  MOV  P1, #9
          RET
  )");
  Iss iss(p.bytes);
  while (iss.p0() != 1) iss.stepInstruction();
  EXPECT_EQ(iss.p1(), 9);
  EXPECT_EQ(iss.sp(), 0x50);  // balanced
}

TEST(Iss, CjneSetsCarryLikeCompare) {
  const auto p = assemble(R"(
    MOV A, #5
    CJNE A, #9, low
    low: NOP
  )");
  Iss iss(p.bytes);
  iss.stepInstruction();
  iss.stepInstruction();
  EXPECT_TRUE(iss.carry());  // 5 < 9
}

TEST(Iss, MultiplyAndDivide) {
  const auto p = assemble(R"(
    MOV A, #0xC9     ; 201
    MOV B, #0x2A     ; 42
    MUL AB           ; 8442 = 0x20FA
    MOV 0x30, A      ; low
    MOV A, B
    MOV 0x31, A      ; high
    MOV A, #201
    MOV B, #42
    DIV AB           ; q=4, r=33
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 9; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.iram(0x30), 0xFA);
  EXPECT_EQ(iss.iram(0x31), 0x20);
  EXPECT_EQ(iss.acc(), 4);
  EXPECT_EQ(iss.b(), 33);
  EXPECT_FALSE(iss.carry());
  EXPECT_FALSE(iss.psw() & (1 << PSW_OV));
}

TEST(Iss, MulOverflowAndDivByZeroFlags) {
  {
    Iss iss(assemble("MOV A,#16\nMOV B,#16\nMUL AB").bytes);
    for (int i = 0; i < 3; ++i) iss.stepInstruction();
    EXPECT_EQ(iss.acc(), 0);
    EXPECT_EQ(iss.b(), 1);
    EXPECT_TRUE(iss.psw() & (1 << PSW_OV));  // product exceeds 8 bits
  }
  {
    Iss iss(assemble("MOV A,#77\nMOV B,#0\nDIV AB").bytes);
    for (int i = 0; i < 3; ++i) iss.stepInstruction();
    EXPECT_TRUE(iss.psw() & (1 << PSW_OV));  // division by zero
    EXPECT_EQ(iss.acc(), 0xFF);
    EXPECT_EQ(iss.b(), 77);
  }
}

TEST(Iss, RotatesThroughCarry) {
  const auto p = assemble(R"(
    SETB C
    MOV A, #0x80
    RLC A
  )");
  Iss iss(p.bytes);
  for (int i = 0; i < 3; ++i) iss.stepInstruction();
  EXPECT_EQ(iss.acc(), 0x01);
  EXPECT_TRUE(iss.carry());
}

TEST(Iss, CycleCountsFollowTheFsm) {
  struct Case {
    const char* src;
    unsigned cycles;
  };
  for (const auto& c : std::initializer_list<Case>{
           {"NOP", 2},            // FETCH, DECODE
           {"INC A", 3},          // + EXEC
           {"MOV A, #1", 4},      // + OP1
           {"MOV A, 0x30", 5},    // + OP1 + RD
           {"MOV A, R2", 4},      // + RD
           {"MOV A, @R0", 5},     // + RDRI + RD
           {"MOV @R0, A", 4},     // + RDRI
           {"MOV 0x30, #1", 5},   // + OP1 + OP2
           {"MOV 0x30, 0x31", 6}, // + OP1 + OP2 + RD
           {"CJNE A, #1, $", 5},  // + OP1 + OP2
           {"DJNZ R0, $", 5},     // + OP1 + RD  (R0 starts 0 -> wraps, jumps)
           {"LJMP $", 5},
           {"LCALL $", 6},
           {"RET", 5}}) {
    Iss iss(assemble(c.src).bytes);
    EXPECT_EQ(iss.stepInstruction(), c.cycles) << c.src;
  }
}

// ----------------------------------------------------------- workloads -----

TEST(Workloads, BubblesortSortsAndChecksums) {
  const Workload w = bubblesort(8);
  Iss iss(w.bytes);
  iss.runCycles(w.cycles);
  // Array ascending 1..8 at 0x30.
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(iss.iram(static_cast<std::uint8_t>(0x30 + i)), i + 1);
  }
  EXPECT_EQ(iss.p0(), w.expectedP0);
  EXPECT_EQ(iss.p1(), w.expectedP1);
}

TEST(Workloads, BubblesortCycleScaleMatchesPaperBallpark) {
  // The paper's Bubblesort took 1303 cycles on their 8051; ours should be
  // the same order of magnitude at a comparable size.
  const Workload w = bubblesort(8);
  EXPECT_GT(w.cycles, 400u);
  EXPECT_LT(w.cycles, 6000u);
}

TEST(Workloads, ChecksumAndFibonacci) {
  const Workload c = checksum(12);
  Iss issC(c.bytes);
  issC.runCycles(c.cycles);
  EXPECT_EQ(issC.p0(), c.expectedP0);
  EXPECT_EQ(issC.p1(), c.expectedP1);

  const Workload f = fibonacci(10);
  Iss issF(f.bytes);
  issF.runCycles(f.cycles);
  EXPECT_EQ(issF.p0(), 0x5A);
  EXPECT_EQ(issF.p1(), 89);  // fib(11) = 89
}

// ---------------------------------------------------------- RTL vs ISS -----

struct RtlIss {
  netlist::Netlist nl;
  std::unique_ptr<Simulator> simulator;
  Iss iss;

  explicit RtlIss(const std::vector<std::uint8_t>& program)
      : nl(buildCore(program)), iss(program) {
    simulator = std::make_unique<Simulator>(nl);
  }

  void compareAfter(std::uint64_t cycles) {
    simulator->run(cycles);
    iss.runCycles(cycles);
    EXPECT_EQ(simulator->portValue("acc"), iss.acc());
    EXPECT_EQ(simulator->portValue("sp"), iss.sp());
    EXPECT_EQ(simulator->portValue("p0"), iss.p0());
    EXPECT_EQ(simulator->portValue("p1"), iss.p1());
    EXPECT_EQ(simulator->portValue("pc"), iss.pc());
    netlist::RamId iramId{};
    for (std::uint32_t r = 0; r < nl.ramCount(); ++r) {
      if (nl.ram(netlist::RamId{r}).name == "iram") iramId = netlist::RamId{r};
    }
    ASSERT_TRUE(iramId.valid());
    for (unsigned a = 0; a < 128; ++a) {
      ASSERT_EQ(simulator->ramWord(iramId, a), iss.iram(a))
          << "iram[" << a << "]";
    }
  }
};

TEST(Core, BubblesortMatchesIssExactly) {
  const Workload w = bubblesort(8);
  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
  EXPECT_EQ(rig.simulator->portValue("p1"), w.expectedP1);
}

TEST(Core, ChecksumMatchesIss) {
  const Workload w = checksum(10);
  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
}

TEST(Core, FibonacciMatchesIss) {
  const Workload w = fibonacci(9);
  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
}

TEST(Core, CycleAccurateAgainstIss) {
  // Compare at several intermediate cuts, not only the quiescent end.
  const Workload w = bubblesort(4);
  for (std::uint64_t cut : {11ull, 47ull, 101ull, 257ull}) {
    RtlIss rig(w.bytes);
    rig.iss.runCycles(cut);
    rig.simulator->run(rig.iss.cycleCount());  // align to the ISS boundary
    EXPECT_EQ(rig.simulator->portValue("pc"), rig.iss.pc()) << cut;
    EXPECT_EQ(rig.simulator->portValue("acc"), rig.iss.acc()) << cut;
  }
}

TEST(Core, InstructionStressProgram) {
  // Exercise every implemented instruction family at least once.
  const char* src = R"(
        MOV  SP, #0x58
        MOV  A, #0x3C
        MOV  B, A
        MOV  0x30, #0x11
        MOV  0x31, 0x30
        MOV  R0, #0x31
        INC  @R0
        MOV  A, @R0
        ADD  A, #0x01
        ADDC A, 0x30
        SUBB A, R0
        ANL  A, #0xF7
        ORL  A, #0x08
        XRL  A, 0x30
        RL   A
        RLC  A
        RR   A
        RRC  A
        CPL  A
        XCH  A, 0x30
        XCH  A, R3
        PUSH 0x30
        POP  0x32
        MOV  R5, #3
    lp: INC  0x33
        DEC  A
        DJNZ R5, lp
        CJNE A, #0, ne
        NOP
    ne: LCALL sub
        MOV  A, R7
        MOV  P1, A
        MOV  P0, #0x77
    end: SJMP $
    sub: MOV  R7, #0x66
        SETB C
        CPL  C
        CLR  C
        RET
  )";
  const auto p = assemble(src);
  RtlIss rig(p.bytes);
  Iss probe(p.bytes);
  std::uint64_t guard = 0;
  while (probe.p0() != 0x77 && ++guard < 10000) probe.stepInstruction();
  ASSERT_EQ(probe.p0(), 0x77);
  rig.compareAfter(probe.cycleCount() + 8);
}

TEST(Core, MulDivMatchIssExhaustively) {
  // Sweep a grid of operand pairs through MUL and DIV on the RTL core and
  // compare both result registers against the ISS.
  for (unsigned a = 3; a < 256; a += 41) {
    for (unsigned c = 0; c < 256; c += 37) {
      std::ostringstream src;
      src << "MOV A,#" << a << "\nMOV B,#" << c << "\nMUL AB\n"
          << "MOV 0x40, A\nMOV A,B\nMOV 0x41, A\n"
          << "MOV A,#" << a << "\nMOV B,#" << c << "\nDIV AB\n"
          << "MOV P1, A\nMOV P0,#1\nend: SJMP $\n";
      const auto p = assemble(src.str());
      RtlIss rig(p.bytes);
      Iss probe(p.bytes);
      while (probe.p0() != 1) probe.stepInstruction();
      rig.compareAfter(probe.cycleCount() + 4);
    }
  }
}

TEST(Workloads, DotProductUsesMultiplier) {
  const Workload w = dotproduct(6);
  Iss iss(w.bytes);
  iss.runCycles(w.cycles);
  EXPECT_EQ(iss.p0(), w.expectedP0);
  EXPECT_EQ(iss.p1(), w.expectedP1);

  RtlIss rig(w.bytes);
  rig.compareAfter(w.cycles);
  EXPECT_EQ(rig.simulator->portValue("p1"), w.expectedP1);
}


}  // namespace
}  // namespace fades::mc8051
