#include "vfit/vfit.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fades::vfit {

using common::ErrorKind;
using common::raise;
using common::require;
using common::Rng;

VfitTool::VfitTool(const Netlist& netlist, std::uint64_t runCycles,
                   VfitOptions options)
    : nl_(netlist), runCycles_(runCycles), opt_(std::move(options)) {
  sim_ = std::make_unique<sim::Simulator>(nl_);

  // Observed output bit layout (outputWord packs 16 bits per port), cached
  // as (packed position, net) pairs for the bit-parallel wave inner loop.
  unsigned shift = 0;
  for (const auto& portName : opt_.observedOutputs) {
    const auto* port = nl_.findOutput(portName);
    require(port != nullptr, ErrorKind::InvalidArgument,
            "no output port '" + portName + "'");
    for (std::size_t j = 0; j < port->nets.size(); ++j) {
      obsBits_.emplace_back(shift + static_cast<unsigned>(j),
                            port->nets[j].value);
    }
    shift += 16;
  }

  // Golden run: trace, checkpoints, final state, event count. Always on
  // the event-driven engine - it is the cost-model calibration (real event
  // counts) and the reference the compiled engine is checked against.
  sim_->reset();
  const auto eventsBefore = sim_->eventsProcessed();
  golden_.outputs.reserve(runCycles_);
  for (std::uint64_t c = 0; c < runCycles_; ++c) {
    if (c % opt_.checkpointInterval == 0) {
      checkpoints_.push_back(sim_->snapshot());
    }
    golden_.outputs.push_back(outputWord());
    sim_->step();
  }
  captureFinalState(golden_);
  goldenEvents_ = sim_->eventsProcessed() - eventsBefore;
  goldenSeconds_ = static_cast<double>(goldenEvents_) * opt_.secondsPerEvent;

  if (opt_.engine == sim::EngineKind::Compiled) {
    csim_ = std::make_unique<sim::CompiledSimulator>(nl_);
  }
}

std::uint64_t VfitTool::outputWord() const {
  std::uint64_t w = 0;
  unsigned shift = 0;
  for (const auto& port : opt_.observedOutputs) {
    w |= sim_->portValue(port) << shift;
    shift += 16;
  }
  return w;
}

void VfitTool::captureFinalState(Observation& obs) const {
  obs.finalFlops.clear();
  obs.finalFlops.reserve(nl_.flopCount());
  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    obs.finalFlops.push_back(sim_->flopState(FlopId{f}) ? 1 : 0);
  }
  obs.finalMemory.clear();
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{r});
    for (std::size_t row = 0; row < ram.depth(); ++row) {
      obs.finalMemory.push_back(sim_->ramWord(RamId{r}, row));
    }
  }
}

std::vector<FlopId> VfitTool::flopTargets(Unit unit) const {
  std::vector<FlopId> out;
  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    if (unit == Unit::None || nl_.flops()[f].unit == unit) {
      out.push_back(FlopId{f});
    }
  }
  return out;
}

std::vector<NetId> VfitTool::signalTargets(Unit unit) const {
  // HDL-level signals: nets with a name, driven by combinational logic.
  std::vector<NetId> out;
  for (const auto& g : nl_.gates()) {
    if (g.op == netlist::GateOp::Const0 || g.op == netlist::GateOp::Const1) {
      continue;
    }
    if (unit != Unit::None && g.unit != unit) continue;
    if (!nl_.netName(g.out).empty()) out.push_back(g.out);
  }
  return out;
}

std::vector<RamId> VfitTool::ramTargets() const {
  std::vector<RamId> out;
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    if (!nl_.ram(RamId{r}).isRom()) out.push_back(RamId{r});
  }
  return out;
}

const sim::Snapshot& VfitTool::checkpointAtOrBefore(
    std::uint64_t cycle, std::uint64_t& ckCycle) const {
  const std::size_t idx =
      std::min<std::size_t>(cycle / opt_.checkpointInterval,
                            checkpoints_.size() - 1);
  ckCycle = idx * opt_.checkpointInterval;
  return checkpoints_[idx];
}

Outcome VfitTool::runExperiment(FaultModel model, TargetClass targets,
                                std::uint32_t targetIndex,
                                std::uint64_t injectCycle,
                                double durationCycles, Rng& rng,
                                double* modeledSeconds,
                                unsigned* commandsOut) {
  require(supports(model), ErrorKind::InjectionError,
          "VFIT cannot inject delay faults (no generic delay clauses)");
  require(injectCycle < runCycles_, ErrorKind::InvalidArgument,
          "injection instant beyond workload");

  unsigned commands = 0;

  // Replay from the closest golden checkpoint (wall-clock shortcut; the
  // modeled cost below always charges a complete simulation).
  std::uint64_t ckCycle = 0;
  sim_->restore(checkpointAtOrBefore(injectCycle, ckCycle));
  for (std::uint64_t c = ckCycle; c < injectCycle; ++c) sim_->step();

  // Faulty trace: the pre-injection prefix equals the golden trace by
  // determinism; everything from the injection instant on is observed live,
  // including the cycles stepped while the fault is active.
  Observation faulty;
  faulty.outputs.assign(golden_.outputs.begin(),
                        golden_.outputs.begin() +
                            static_cast<std::ptrdiff_t>(injectCycle));
  auto stepObserved = [&] {
    faulty.outputs.push_back(outputWord());
    sim_->step();
  };

  // Sub-cycle faults hit a sampling edge with probability = duration.
  std::uint64_t effectiveCycles;
  if (durationCycles < 1.0) {
    effectiveCycles = rng.uniform01() < durationCycles ? 1 : 0;
  } else {
    effectiveCycles = static_cast<std::uint64_t>(durationCycles + 0.5);
  }

  switch (model) {
    case FaultModel::BitFlip: {
      if (targets == TargetClass::SequentialFF) {
        const FlopId f{targetIndex};
        sim_->depositFlop(f, !sim_->flopState(f));
        ++commands;
      } else {
        // Memory bit-flip: targetIndex encodes ram<<24 | row<<8 | bit.
        const RamId ram{targetIndex >> 24};
        const std::size_t row = (targetIndex >> 8) & 0xFFFF;
        const unsigned bit = targetIndex & 0xFF;
        sim_->depositRam(ram, row,
                         sim_->ramWord(ram, row) ^ (1ULL << bit));
        ++commands;
      }
      break;
    }
    case FaultModel::Pulse: {
      const NetId net{targetIndex};
      // Invert the driven value across the active window, re-forcing every
      // cycle so the inversion tracks the (changing) fault-free value.
      for (std::uint64_t k = 0;
           k < effectiveCycles && sim_->cycle() < runCycles_; ++k) {
        sim_->release(net);
        ++commands;
        sim_->force(net, !sim_->netValue(net));
        ++commands;
        stepObserved();
      }
      sim_->release(net);
      ++commands;
      break;
    }
    case FaultModel::Indetermination: {
      bool value = rng.coin();
      if (targets == TargetClass::SequentialFF) {
        const FlopId f{targetIndex};
        for (std::uint64_t k = 0;
             k < effectiveCycles && sim_->cycle() < runCycles_; ++k) {
          if (opt_.oscillatingIndetermination && k > 0) value = rng.coin();
          sim_->depositFlop(f, value);
          ++commands;
          stepObserved();
        }
      } else {
        const NetId net{targetIndex};
        for (std::uint64_t k = 0;
             k < effectiveCycles && sim_->cycle() < runCycles_; ++k) {
          if (opt_.oscillatingIndetermination && k > 0) value = rng.coin();
          sim_->force(net, value);
          ++commands;
          stepObserved();
        }
        sim_->release(net);
        ++commands;
      }
      break;
    }
    case FaultModel::Delay:
      raise(ErrorKind::InjectionError, "unreachable");
  }

  // Run to completion, observing outputs.
  while (sim_->cycle() < runCycles_) stepObserved();
  captureFinalState(faulty);

  auto& registry = obs::Registry::global();
  registry.counter(opt_.metricsPrefix + ".commands").add(commands);
  registry.counter(opt_.metricsPrefix + ".experiments").inc();

  if (modeledSeconds != nullptr) {
    *modeledSeconds = opt_.secondsFixedPerExperiment + goldenSeconds_ +
                      commands * opt_.secondsPerCommand;
  }
  if (commandsOut != nullptr) *commandsOut = commands;
  return campaign::classify(golden_, faulty);
}

std::vector<std::uint32_t> VfitTool::campaignPool(
    const CampaignSpec& spec) const {
  const auto unit = static_cast<Unit>(spec.unit);

  // Enumerate targets up front (the fault-location process).
  std::vector<std::uint32_t> targets = spec.targetPool;
  if (targets.empty()) {
    switch (spec.targets) {
    case TargetClass::SequentialFF:
      for (auto f : flopTargets(unit)) targets.push_back(f.value);
      break;
    case TargetClass::MemoryBlockBit: {
      for (auto r : ramTargets()) {
        const auto& ram = nl_.ram(r);
        // Encode every stored bit as a target.
        for (std::size_t row = 0; row < ram.depth(); ++row) {
          for (unsigned bit = 0; bit < ram.dataBits; ++bit) {
            targets.push_back((r.value << 24) |
                              (static_cast<std::uint32_t>(row) << 8) | bit);
          }
        }
      }
      break;
    }
    case TargetClass::CombinationalLut:
    case TargetClass::CbInputLine:
    case TargetClass::CombinationalLine:
      for (auto n : signalTargets(unit)) targets.push_back(n.value);
      break;
    case TargetClass::SequentialLine:
      for (auto f : flopTargets(unit)) {
        targets.push_back(nl_.flops()[f.value].q.value);
      }
      break;
  }
  }
  require(!targets.empty(), ErrorKind::InjectionError,
          "no VFIT targets in the selected unit");
  return targets;
}

Unit VfitTool::targetUnit(const CampaignSpec& spec,
                          std::uint32_t target) const {
  // Component attribution for records: resolve a target back to the unit
  // annotation on its netlist element (flop, ram, or the gate driving the
  // faulted signal), mirroring FadesTool::targetUnit at the HDL level.
  switch (spec.targets) {
    case TargetClass::SequentialFF:
      return nl_.flops()[target].unit;
    case TargetClass::MemoryBlockBit:
      return nl_.ram(RamId{target >> 24}).unit;
    case TargetClass::SequentialLine:
      for (const auto& f : nl_.flops()) {
        if (f.q.value == target) return f.unit;
      }
      return Unit::None;
    case TargetClass::CombinationalLut:
    case TargetClass::CbInputLine:
    case TargetClass::CombinationalLine:
      for (const auto& g : nl_.gates()) {
        if (g.out.value == target) return g.unit;
      }
      return Unit::None;
  }
  return Unit::None;
}

VfitTool::LanePlan VfitTool::planExperiment(const CampaignSpec& spec,
                                            std::span<const std::uint32_t> pool,
                                            unsigned index) const {
  // Replicates the serial path's draw order exactly: the campaign loop's
  // target / instant / duration, then runExperiment's effective-cycle and
  // indetermination draws, all from the same per-experiment stream.
  LanePlan p;
  p.index = index;
  Rng erng(common::streamSeed(spec.seed, std::uint64_t{index} * 131));
  p.target = pool[erng.below(pool.size())];
  p.injectCycle = erng.below(runCycles_);
  p.duration = spec.band.minCycles +
               erng.uniform01() * (spec.band.maxCycles - spec.band.minCycles);

  std::uint64_t effectiveCycles;
  if (p.duration < 1.0) {
    effectiveCycles = erng.uniform01() < p.duration ? 1 : 0;
  } else {
    effectiveCycles = static_cast<std::uint64_t>(p.duration + 0.5);
  }
  p.window = std::min(effectiveCycles, runCycles_ - p.injectCycle);

  switch (spec.model) {
    case FaultModel::BitFlip:
      p.commands = 1;
      break;
    case FaultModel::Pulse:
      // release + force per active cycle, final release.
      p.commands = static_cast<unsigned>(2 * p.window + 1);
      break;
    case FaultModel::Indetermination: {
      bool value = erng.coin();
      p.values.reserve(p.window);
      for (std::uint64_t k = 0; k < p.window; ++k) {
        if (opt_.oscillatingIndetermination && k > 0) value = erng.coin();
        p.values.push_back(value ? 1 : 0);
      }
      // Signals pay a trailing release; deposits do not.
      p.commands = static_cast<unsigned>(
          spec.targets == TargetClass::SequentialFF ? p.window
                                                    : p.window + 1);
      break;
    }
    case FaultModel::Delay:
      raise(ErrorKind::InjectionError,
            "VFIT cannot inject delay faults (no generic delay clauses)");
  }
  return p;
}

campaign::ExperimentOutcome VfitTool::makeOutcome(const CampaignSpec& spec,
                                                  const LanePlan& plan,
                                                  Outcome outcome) const {
  campaign::ExperimentOutcome out;
  out.index = plan.index;
  out.outcome = outcome;
  // Same expression (and operand order) as runExperiment's modeledSeconds,
  // so the sums fold bit-identically.
  out.modeledSeconds = opt_.secondsFixedPerExperiment + goldenSeconds_ +
                       plan.commands * opt_.secondsPerCommand;
  out.configSeconds = plan.commands * opt_.secondsPerCommand;
  out.workloadSeconds = goldenSeconds_;
  out.hostSeconds = opt_.secondsFixedPerExperiment;
  if (opt_.keepRecords) {
    out.hasRecord = true;
    out.record = campaign::ExperimentRecord{
        std::to_string(plan.target), plan.injectCycle, plan.duration, outcome,
        out.modeledSeconds};
    out.record.component = netlist::toString(targetUnit(spec, plan.target));
  }
  return out;
}

campaign::ExperimentOutcome VfitTool::runCampaignExperiment(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index) {
  // Same stream derivation as the FADES campaign loop so that identical
  // specs over identical pools draw identical faults in both tools.
  Rng erng(common::streamSeed(spec.seed, std::uint64_t{index} * 131));
  LanePlan plan;
  plan.index = index;
  plan.target = pool[erng.below(pool.size())];
  plan.injectCycle = erng.below(runCycles_);
  plan.duration =
      spec.band.minCycles +
      erng.uniform01() * (spec.band.maxCycles - spec.band.minCycles);
  const Outcome o =
      runExperiment(spec.model, spec.targets, plan.target, plan.injectCycle,
                    plan.duration, erng, nullptr, &plan.commands);
  return makeOutcome(spec, plan, o);
}

campaign::ExperimentOutcome VfitTool::synthesizeCampaignExperiment(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, const campaign::ExperimentOutcome& representative) const {
  // Costs come from this experiment's OWN plan - VFIT's cost model is a
  // pure function of (target, instant, window) - so only the behavioral
  // outcome is cloned from the representative.
  campaign::ExperimentOutcome out =
      makeOutcome(spec, planExperiment(spec, pool, index),
                  representative.outcome);
  out.attempts = 0;
  if (out.hasRecord) {
    out.record.prunedFrom = static_cast<std::int64_t>(representative.index);
  }
  return out;
}

std::vector<campaign::ExperimentOutcome> VfitTool::runCampaignWave(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    std::span<const unsigned> indices) {
  require(csim_ != nullptr, ErrorKind::InvalidArgument,
          "runCampaignWave needs VfitOptions::engine == Compiled");
  require(indices.size() <= kWaveExperiments, ErrorKind::InvalidArgument,
          "wave exceeds the lane budget");
  require(supports(spec.model), ErrorKind::InjectionError,
          "VFIT cannot inject delay faults (no generic delay clauses)");

  using Word = sim::CompiledSimulator::Word;
  const unsigned n = static_cast<unsigned>(indices.size());
  std::vector<LanePlan> plans;
  plans.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    plans.push_back(planExperiment(spec, pool, indices[i]));
    require(plans.back().injectCycle < runCycles_, ErrorKind::InvalidArgument,
            "injection instant beyond workload");
  }

  auto& csim = *csim_;
  csim.reset();

  // Per-lane output traces; experiment i lives in lane i+1 (lane 0 stays
  // golden and is checked against the event-driven golden run every cycle).
  std::vector<std::vector<std::uint64_t>> outputs(n);
  for (auto& t : outputs) t.reserve(runCycles_);
  std::vector<std::uint64_t> cw(n + 1, 0);

  for (std::uint64_t c = 0; c < runCycles_; ++c) {
    bool acted = false;
    for (unsigned i = 0; i < n; ++i) {
      const LanePlan& p = plans[i];
      const Word laneBit = Word{1} << (i + 1);
      switch (spec.model) {
        case FaultModel::BitFlip:
          if (c == p.injectCycle) {
            if (spec.targets == TargetClass::SequentialFF) {
              csim.xorFlopLanes(FlopId{p.target}, laneBit);
            } else {
              const RamId ram{p.target >> 24};
              const std::size_t row = (p.target >> 8) & 0xFFFF;
              const unsigned bit = p.target & 0xFF;
              csim.xorRamBitLanes(ram, row, bit, laneBit);
            }
            acted = true;
          }
          break;
        case FaultModel::Pulse:
          // The per-cycle release + force(!value) loop of the serial path
          // is, observably, a persistent inversion across the window.
          if (p.window != 0) {
            if (c == p.injectCycle) {
              csim.xorNetLanes(NetId{p.target}, laneBit);
              acted = true;
            } else if (c == p.injectCycle + p.window) {
              csim.clearXorNetLanes(NetId{p.target}, laneBit);
              acted = true;
            }
          }
          break;
        case FaultModel::Indetermination: {
          const bool ff = spec.targets == TargetClass::SequentialFF;
          if (c >= p.injectCycle && c < p.injectCycle + p.window) {
            const std::uint64_t k = c - p.injectCycle;
            const Word v = p.values[static_cast<std::size_t>(k)] ? laneBit
                                                                 : Word{0};
            if (ff) {
              csim.depositFlopLanes(FlopId{p.target}, laneBit, v);
            } else {
              csim.forceLanes(NetId{p.target}, laneBit, v);
            }
            acted = true;
          } else if (!ff && p.window != 0 && c == p.injectCycle + p.window) {
            csim.releaseLanes(NetId{p.target}, laneBit);
            acted = true;
          }
          break;
        }
        case FaultModel::Delay:
          break;  // rejected above
      }
    }
    if (acted) csim.settle();

    // Observe all lanes in one sweep over the cached output bits.
    std::fill(cw.begin(), cw.end(), 0);
    for (const auto& [pos, net] : obsBits_) {
      const Word word = csim.netWord(NetId{net});
      if (word == 0) continue;
      const std::uint64_t bit = std::uint64_t{1} << pos;
      for (unsigned l = 0; l <= n; ++l) {
        if ((word >> l) & 1) cw[l] |= bit;
      }
    }
    require(cw[0] == golden_.outputs[c], ErrorKind::ConfigError,
            "compiled golden lane diverged from the event-driven golden run");
    for (unsigned i = 0; i < n; ++i) outputs[i].push_back(cw[i + 1]);

    csim.step();
  }

  // Final-state signatures and classification, per lane.
  auto& registry = obs::Registry::global();
  std::vector<campaign::ExperimentOutcome> out;
  out.reserve(n);
  Observation faulty;
  for (unsigned i = 0; i <= n; ++i) {
    const unsigned lane = i;  // experiment i-1 lives in lane i; lane 0 golden
    faulty.finalFlops.clear();
    faulty.finalFlops.reserve(nl_.flopCount());
    for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
      faulty.finalFlops.push_back(csim.flopStateLane(FlopId{f}, lane) ? 1 : 0);
    }
    faulty.finalMemory.clear();
    for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
      const auto& ram = nl_.ram(RamId{r});
      for (std::size_t row = 0; row < ram.depth(); ++row) {
        faulty.finalMemory.push_back(csim.ramWordLane(RamId{r}, row, lane));
      }
    }
    if (i == 0) {
      // Golden-lane self check: the compiled machine nobody perturbed must
      // finish in exactly the event-driven golden state.
      require(faulty.finalFlops == golden_.finalFlops &&
                  faulty.finalMemory == golden_.finalMemory,
              ErrorKind::ConfigError,
              "compiled golden lane final state diverged from the "
              "event-driven golden run");
      continue;
    }
    faulty.outputs = std::move(outputs[i - 1]);
    const Outcome o = campaign::classify(golden_, faulty);
    registry.counter(opt_.metricsPrefix + ".commands").add(plans[i - 1].commands);
    registry.counter(opt_.metricsPrefix + ".experiments").inc();
    out.push_back(makeOutcome(spec, plans[i - 1], o));
  }
  return out;
}

CampaignResult VfitTool::runCampaign(const CampaignSpec& spec) {
  const std::vector<std::uint32_t> targets = campaignPool(spec);

  obs::Span campaignSpan{opt_.metricsPrefix + ".campaign",
                         {{"model", campaign::toString(spec.model)},
                          {"targets", campaign::toString(spec.targets)},
                          {"engine", sim::toString(opt_.engine)}}};
  CampaignResult result;
  result.spec = spec;
  auto note = [&](unsigned done) {
    if (done % 100 == 0 || done == spec.experiments) {
      FADES_LOG(Debug) << "vfit campaign progress" << obs::kv("done", done)
                       << obs::kv("total", spec.experiments)
                       << obs::kv("failures", result.failures);
    }
  };
  if (opt_.engine == sim::EngineKind::Compiled) {
    std::vector<unsigned> indices;
    for (unsigned first = 0; first < spec.experiments;
         first += kWaveExperiments) {
      const unsigned count =
          std::min(kWaveExperiments, spec.experiments - first);
      indices.resize(count);
      std::iota(indices.begin(), indices.end(), first);
      for (auto& o : runCampaignWave(spec, targets, indices)) {
        result.fold(o);
        note(static_cast<unsigned>(o.index) + 1);
      }
    }
  } else {
    for (unsigned e = 0; e < spec.experiments; ++e) {
      result.fold(runCampaignExperiment(spec, targets, e));
      note(e + 1);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// VfitCampaignEngine
// ---------------------------------------------------------------------------

VfitCampaignEngine::VfitCampaignEngine(const Netlist& netlist,
                                       std::uint64_t runCycles,
                                       VfitOptions options)
    : tool_(netlist, runCycles, std::move(options)) {}

std::vector<std::uint32_t> VfitCampaignEngine::enumeratePool(
    const CampaignSpec& spec) {
  return tool_.campaignPool(spec);
}

campaign::ExperimentOutcome VfitCampaignEngine::runExperimentAt(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, unsigned rerun) {
  // No link model on the simulator side: reruns replay identically.
  (void)rerun;
  return tool_.runCampaignExperiment(spec, pool, index);
}

unsigned VfitCampaignEngine::waveWidth() const {
  return tool_.engine() == sim::EngineKind::Compiled
             ? VfitTool::kWaveExperiments
             : 1;
}

std::vector<campaign::ExperimentOutcome> VfitCampaignEngine::runWaveAt(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    std::span<const unsigned> indices, unsigned rerun) {
  if (tool_.engine() == sim::EngineKind::Compiled) {
    return tool_.runCampaignWave(spec, pool, indices);
  }
  return CampaignEngine::runWaveAt(spec, pool, indices, rerun);
}

campaign::ExperimentOutcome VfitCampaignEngine::synthesizeOutcome(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, const campaign::ExperimentOutcome& representative) {
  return tool_.synthesizeCampaignExperiment(spec, pool, index, representative);
}

campaign::EngineFactory vfitEngineFactory(const Netlist& netlist,
                                          std::uint64_t runCycles,
                                          VfitOptions options) {
  return [&netlist, runCycles, options] {
    return std::make_unique<VfitCampaignEngine>(netlist, runCycles, options);
  };
}

}  // namespace fades::vfit
