// Small statistics helpers used by campaign reports and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fades::common {

/// Online mean/min/max/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double variance() const;  // sample variance
  double stddev() const;
  /// Accumulated directly rather than reconstructed as mean*n, so campaign
  /// totals don't compound Welford rounding across thousands of samples.
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentage with guard against empty denominators.
double percent(std::size_t part, std::size_t whole);

/// Fixed-point formatting helper ("12.34") used by bench tables; std::format
/// is avoided to keep the toolchain requirements minimal.
std::string fixed(double value, int decimals);

/// Render a simple aligned ASCII table; row cells are pre-formatted strings.
std::string renderTable(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace fades::common
