file(REMOVE_RECURSE
  "libfades_common.a"
)
