#include "mc8051/workloads.hpp"

#include <sstream>

#include "common/error.hpp"
#include "mc8051/assembler.hpp"
#include "mc8051/iss.hpp"

namespace fades::mc8051 {

using common::ErrorKind;
using common::require;

namespace {

/// Assemble, execute on the ISS until the program parks at its `end` label,
/// and record the cycle budget (with a small settle margin) plus the final
/// port values. Also asserts the program against the expected outputs, so a
/// broken workload fails fast rather than corrupting campaign baselines.
Workload finalize(std::string name, std::string source,
                  std::uint8_t expectedP0, std::uint8_t expectedP1) {
  Workload w;
  w.name = std::move(name);
  w.source = std::move(source);
  const AssembledProgram prog = assemble(w.source);
  w.bytes = prog.bytes;
  const std::uint16_t endAddr = prog.symbol("end");

  Iss iss(w.bytes);
  std::uint64_t guard = 0;
  while (iss.pc() != endAddr) {
    iss.stepInstruction();
    require(++guard < 2'000'000, ErrorKind::WorkloadError,
            "workload '" + w.name + "' did not reach its end label");
  }
  // A small margin so the final writes are visibly stable in traces.
  w.cycles = iss.cycleCount() + 12;
  w.expectedP0 = iss.p0();
  w.expectedP1 = iss.p1();
  require(w.expectedP0 == expectedP0 && w.expectedP1 == expectedP1,
          ErrorKind::WorkloadError,
          "workload '" + w.name + "' self-check failed: P0=" +
              std::to_string(iss.p0()) + " P1=" + std::to_string(iss.p1()));
  return w;
}

std::uint8_t rl8(std::uint8_t v) {
  return static_cast<std::uint8_t>((v << 1) | (v >> 7));
}

}  // namespace

Workload bubblesort(unsigned n) {
  require(n >= 2 && n <= 32, ErrorKind::InvalidArgument,
          "bubblesort size out of range");
  // Reference: array holds n..1, sorted ascending; rotating checksum.
  std::uint8_t check = 0;
  for (unsigned i = 1; i <= n; ++i) {
    check = rl8(static_cast<std::uint8_t>(check + i));
  }

  std::ostringstream s;
  s << "arr:    .equ 0x30\n"
    << "; ---- fill arr with n..1 (worst case: descending) ----\n"
    << "        MOV  R0, #arr\n"
    << "        MOV  R1, #" << n << "\n"
    << "        MOV  R3, #" << n << "\n"
    << "init:   MOV  A, R1\n"
    << "        MOV  @R0, A\n"
    << "        INC  R0\n"
    << "        DEC  R1\n"
    << "        DJNZ R3, init\n"
    << "; ---- bubble sort, " << n - 1 << " passes ----\n"
    << "        MOV  R2, #" << n - 1 << "\n"
    << "outer:  MOV  R0, #arr\n"
    << "        MOV  R3, #" << n - 1 << "\n"
    << "inner:  MOV  A, @R0\n"
    << "        MOV  R4, A\n"
    << "        INC  R0\n"
    << "        MOV  A, @R0\n"
    << "        MOV  R5, A\n"
    << "        CLR  C\n"
    << "        SUBB A, R4\n"
    << "        JNC  noswap\n"
    << "        MOV  A, R4\n"
    << "        MOV  @R0, A\n"
    << "        DEC  R0\n"
    << "        MOV  A, R5\n"
    << "        MOV  @R0, A\n"
    << "        INC  R0\n"
    << "noswap: DJNZ R3, inner\n"
    << "        DJNZ R2, outer\n"
    << "; ---- rotating checksum of the sorted array ----\n"
    << "        MOV  R0, #arr\n"
    << "        MOV  R3, #" << n << "\n"
    << "        CLR  A\n"
    << "csum:   ADD  A, @R0\n"
    << "        RL   A\n"
    << "        INC  R0\n"
    << "        DJNZ R3, csum\n"
    << "        MOV  P1, A\n"
    << "        MOV  P0, #0xA5\n"
    << "end:    SJMP $\n";
  return finalize("bubblesort" + std::to_string(n), s.str(), 0xA5, check);
}

Workload checksum(unsigned n) {
  require(n >= 1 && n <= 32, ErrorKind::InvalidArgument,
          "checksum size out of range");
  std::ostringstream t;
  t << "buf:    .equ 0x40\n";
  for (unsigned i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint8_t>(i * 37 + 11);
    t << "        MOV 0x" << std::hex << (0x40 + i) << std::dec << ", #"
      << unsigned(v) << "\n";
  }
  t << "tmp:    .equ 0x3F\n"
    << "        MOV  R0, #buf\n"
    << "        MOV  R3, #" << n << "\n"
    << "        MOV  R6, #0\n"     // running checksum
    << "loop:   MOV  A, @R0\n"
    << "        MOV  tmp, A\n"
    << "        MOV  A, R6\n"
    << "        XRL  A, tmp\n"
    << "        RL   A\n"
    << "        ADD  A, tmp\n"
    << "        MOV  R6, A\n"
    << "        INC  R0\n"
    << "        DJNZ R3, loop\n"
    << "        MOV  P1, A\n"
    << "        MOV  P0, #0x3C\n"
    << "end:    SJMP $\n";
  // Reference checksum.
  std::uint8_t c = 0;
  for (unsigned i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint8_t>(i * 37 + 11);
    c = rl8(static_cast<std::uint8_t>(c ^ v));
    c = static_cast<std::uint8_t>(c + v);
  }
  return finalize("checksum" + std::to_string(n), t.str(), 0x3C, c);
}

Workload fibonacci(unsigned steps) {
  require(steps >= 1 && steps <= 40, ErrorKind::InvalidArgument,
          "fibonacci steps out of range");
  unsigned f0 = 0, f1 = 1;
  for (unsigned i = 0; i < steps; ++i) {
    const unsigned next = (f0 + f1) & 0xFF;
    f0 = f1;
    f1 = next;
  }
  std::ostringstream s;
  s << "        MOV  SP, #0x60\n"
    << "        MOV  R2, #" << steps << "\n"
    << "        MOV  0x20, #0\n"
    << "        MOV  0x21, #1\n"
    << "loop:   LCALL step\n"
    << "        DJNZ R2, loop\n"
    << "        MOV  A, 0x21\n"
    << "        MOV  P1, A\n"
    << "        MOV  P0, #0x5A\n"
    << "end:    SJMP $\n"
    << "step:   MOV  A, 0x20\n"
    << "        ADD  A, 0x21\n"
    << "        PUSH 0x21\n"
    << "        POP  0x20\n"
    << "        MOV  0x21, A\n"
    << "        RET\n";
  return finalize("fibonacci" + std::to_string(steps), s.str(), 0x5A,
                  static_cast<std::uint8_t>(f1));
}

Workload dotproduct(unsigned n) {
  require(n >= 1 && n <= 16, ErrorKind::InvalidArgument,
          "dotproduct size out of range");
  // Reference: 16-bit accumulation of x[i]*y[i], then (hi ^ lo) / 3.
  unsigned sum = 0;
  for (unsigned i = 0; i < n; ++i) {
    const unsigned x = (i * 29 + 5) & 0xFF;
    const unsigned y = (i * 53 + 11) & 0xFF;
    sum = (sum + x * y) & 0xFFFF;
  }
  const std::uint8_t mix = static_cast<std::uint8_t>((sum >> 8) ^ sum);
  const std::uint8_t expected = static_cast<std::uint8_t>(mix / 3);

  std::ostringstream s;
  s << "xvec:   .equ 0x30\n"
    << "yvec:   .equ 0x48\n"
    << "sumlo:  .equ 0x60\n"
    << "sumhi:  .equ 0x61\n";
  for (unsigned i = 0; i < n; ++i) {
    s << "        MOV 0x" << std::hex << (0x30 + i) << std::dec << ", #"
      << ((i * 29 + 5) & 0xFF) << "\n";
    s << "        MOV 0x" << std::hex << (0x48 + i) << std::dec << ", #"
      << ((i * 53 + 11) & 0xFF) << "\n";
  }
  s << "        MOV  sumlo, #0\n"
    << "        MOV  sumhi, #0\n"
    << "        MOV  R0, #xvec\n"
    << "        MOV  R1, #yvec\n"
    << "        MOV  R3, #" << n << "\n"
    << "loop:   MOV  A, @R1\n"
    << "        MOV  B, A\n"
    << "        MOV  A, @R0\n"
    << "        MUL  AB\n"
    << "        ADD  A, sumlo\n"
    << "        MOV  sumlo, A\n"
    << "        MOV  A, B\n"
    << "        ADDC A, sumhi\n"
    << "        MOV  sumhi, A\n"
    << "        INC  R0\n"
    << "        INC  R1\n"
    << "        DJNZ R3, loop\n"
    << "        MOV  A, sumhi\n"
    << "        XRL  A, sumlo\n"
    << "        MOV  B, #3\n"
    << "        DIV  AB\n"
    << "        MOV  P1, A\n"
    << "        MOV  P0, #0xD7\n"
    << "end:    SJMP $\n";
  return finalize("dotproduct" + std::to_string(n), s.str(), 0xD7, expected);
}

}  // namespace fades::mc8051
