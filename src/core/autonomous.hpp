// Autonomous emulation - the third injector (Lopez-Ongil et al.,
// "Techniques for Fast Transient Fault Grading Based on Autonomous
// Emulation", see PAPERS.md).
//
// Where the paper's RTR technique moves configuration frames for every
// injection and VFIT scripts a host simulator, autonomous emulation compiles
// the injection support into the design itself (synth::instrumentAutonomous):
// per-flip-flop injection masks behind a scan chain, a shadow golden-state
// copy per flip-flop and memory block, and a single-cycle faulty->golden
// restore. One injection then costs
//
//     mask-load (chainBits cycles) + fault activation (command cycles)
//     + restore sweep (1 + shadow-memory rows cycles)
//
// all at emulator clock speed, with ZERO configuration bytes moved - which
// is exactly what this tool's cost model charges, so the RTR-vs-autonomous
// speedup is measured from the meters rather than asserted.
//
// Semantically an injection is the same state perturbation FADES and VFIT
// apply, so AutonomousTool reuses VfitTool as its semantic engine (under the
// "autonomous" metrics prefix) and re-meters every outcome under the
// emulator-cycle cost model above. Outcome classification is therefore
// field-for-field identical to VFIT by construction, and the 4-way diffcheck
// oracle (FADES / VFIT / autonomous / golden ISS) pins it that way.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "netlist/netlist.hpp"
#include "sim/engine.hpp"
#include "synth/instrument.hpp"
#include "vfit/vfit.hpp"

namespace fades::core {

struct AutonomousOptions {
  /// Emulator clock. The instrumented design runs in hardware, so the
  /// workload, the mask load and the restore sweep are all charged at this
  /// rate (same 25 MHz class of device as the RTR tool's).
  double fpgaClockHz = 25.0e6;
  /// Host-side cost per injection: pushing the next mask pattern and
  /// reading the outcome word back over the control link. Orders of
  /// magnitude below the RTR tool's per-experiment host cost because no
  /// readback/re-download of configuration frames happens.
  double hostPerInjectionSeconds = 0.0005;
  /// Output ports whose traces define Failure (forwarded to the semantic
  /// engine and used by the instrumentation transparency check).
  std::vector<std::string> observedOutputs = {"p0", "p1"};
  /// Host-side replay checkpoint spacing of the semantic engine.
  unsigned checkpointInterval = 128;
  /// Re-randomize indetermination values every cycle of the fault.
  bool oscillatingIndetermination = false;
  /// Keep per-experiment records in the campaign result.
  bool keepRecords = false;
  /// Execution engine for campaign experiments (EventDriven, or Compiled
  /// for 63-experiments-per-wave bit-parallel execution). Outcomes are
  /// bit-identical either way, as for VfitTool.
  sim::EngineKind engine = sim::EngineKind::EventDriven;
  /// Simulate the instrumented netlist with every control input at 0 for
  /// the whole workload and require its observed outputs to match the
  /// golden run cycle-for-cycle (ConfigError otherwise). Catches a broken
  /// instrumentation pass before any campaign runs on top of it.
  bool verifyInstrumentation = true;
};

class AutonomousTool {
 public:
  /// `netlist` is the SOURCE model; the constructor builds the autonomous
  /// instrumentation itself (see model()) and the semantic engine over the
  /// source. The netlist must outlive the tool.
  AutonomousTool(const netlist::Netlist& netlist, std::uint64_t runCycles,
                 AutonomousOptions options = {});

  /// Same support matrix as VFIT: delay faults would need timing
  /// annotations neither the instrumentation nor the engine carries.
  bool supports(campaign::FaultModel m) const {
    return m != campaign::FaultModel::Delay;
  }

  campaign::CampaignResult runCampaign(const campaign::CampaignSpec& spec);

  /// Deterministic target enumeration; identical to VFIT's for the same
  /// spec, so aligned campaigns draw identical faults.
  std::vector<std::uint32_t> campaignPool(
      const campaign::CampaignSpec& spec) const;

  /// Campaign experiment `index` as a pure function of (spec, pool, index):
  /// the VFIT semantic outcome re-metered under the autonomous cost model.
  campaign::ExperimentOutcome runCampaignExperiment(
      const campaign::CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index);

  static constexpr unsigned kWaveExperiments = vfit::VfitTool::kWaveExperiments;

  /// Bit-parallel wave (requires engine == Compiled); per-index results are
  /// exactly runCampaignExperiment's, as for VfitTool.
  std::vector<campaign::ExperimentOutcome> runCampaignWave(
      const campaign::CampaignSpec& spec, std::span<const std::uint32_t> pool,
      std::span<const unsigned> indices);

  sim::EngineKind engine() const { return opt_.engine; }
  const campaign::Observation& golden() const { return vfit_.golden(); }

  /// The instrumented netlist with its exact area overhead (gates/flops
  /// added, shadow memory bits) and the mask scan-chain layout.
  const synth::AutonomousModel& model() const { return model_; }

  /// Emulator cycles one restore sweep takes: one cycle copies every shadow
  /// flip-flop back at once, then each shadow memory row is replayed.
  std::uint64_t restoreCycles() const { return restoreCycles_; }

  /// Modeled per-injection overhead beyond the workload itself (mask load +
  /// `commands` activation cycles + restore, plus the host-side turnaround).
  double injectionOverheadSeconds(unsigned commands) const;

 private:
  campaign::ExperimentOutcome remeter(campaign::ExperimentOutcome out,
                                      unsigned commands) const;
  void verifyInstrumentation();

  std::uint64_t runCycles_;
  AutonomousOptions opt_;
  synth::AutonomousModel model_;
  vfit::VfitTool vfit_;  // semantic engine, metered under prefix "autonomous"
  std::uint64_t restoreCycles_ = 1;
};

/// One worker's replica for the sharded campaign runner; with the compiled
/// engine it leases whole 63-experiment waves. Outcomes are byte-identical
/// at any --jobs and across engines.
class AutonomousCampaignEngine final : public campaign::CampaignEngine {
 public:
  AutonomousCampaignEngine(const netlist::Netlist& netlist,
                           std::uint64_t runCycles, AutonomousOptions options);

  std::vector<std::uint32_t> enumeratePool(
      const campaign::CampaignSpec& spec) override;
  campaign::ExperimentOutcome runExperimentAt(
      const campaign::CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, unsigned rerun) override;
  unsigned waveWidth() const override;
  std::vector<campaign::ExperimentOutcome> runWaveAt(
      const campaign::CampaignSpec& spec, std::span<const std::uint32_t> pool,
      std::span<const unsigned> indices, unsigned rerun) override;

  AutonomousTool& tool() { return tool_; }

 private:
  AutonomousTool tool_;
};

/// Factory for the parallel campaign runner: every worker gets its own
/// AutonomousTool replica. The netlist reference must outlive the runner.
campaign::EngineFactory autonomousEngineFactory(const netlist::Netlist& netlist,
                                                std::uint64_t runCycles,
                                                AutonomousOptions options = {});

}  // namespace fades::core
