file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_multibitflip.dir/bench_table4_multibitflip.cpp.o"
  "CMakeFiles/bench_table4_multibitflip.dir/bench_table4_multibitflip.cpp.o.d"
  "bench_table4_multibitflip"
  "bench_table4_multibitflip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_multibitflip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
