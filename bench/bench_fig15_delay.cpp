// Figure 15: delay faults into combinational logic by unit and duration.
// Paper trend: delays are the least damaging model (ALU failures
// 0 / 0.57 / 2.1 %), growing slowly with duration; the FSM remains the
// most sensitive unit.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("fig15_delay", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = std::min(classifyCount(300), 150u);

  const char* bands[3] = {"<1", "1-10", "11-20"};
  struct UnitRow {
    const char* name;
    Unit unit;
    const char* paper;
  };
  const UnitRow units[] = {
      {"ALU", Unit::Alu, "0 / 0.57 / 2.10"},
      {"MEM", Unit::MemCtrl, "(trend only)"},
      {"FSM", Unit::Fsm, "(most sensitive)"},
  };

  auto& tool = sys.fadesForDelay();
  std::vector<std::vector<std::string>> rows;
  for (const auto& u : units) {
    const auto sweep = bandSweep(tool, FaultModel::Delay,
                                 TargetClass::CombinationalLine, u.unit, n);
    for (int b = 0; b < 3; ++b) {
      rows.push_back({u.name, bands[b], pct3(sweep[b]),
                      b == 1 ? u.paper : ""});
    }
  }
  printTable("Figure 15 - delay emulation into combinational logic (" +
                 std::to_string(n) + " faults per cell)",
             {"unit", "duration (cycles)", "failure / latent / silent %",
              "paper failure % (<1/1-10/11-20)"},
             rows);
  return 0;
}
