#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/artifact.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fades::obs {
namespace {

// --- JSON model -----------------------------------------------------------

TEST(Json, DumpPreservesMemberOrderAndIntegers) {
  Json j = Json::object();
  j.set("z", Json(std::uint64_t{18446744073709551615ULL}));
  j.set("a", Json(std::int64_t{-7}));
  j.set("pi", Json(3.25));
  j.set("s", Json("x"));
  // Insertion order, not lexical order, and integers print without a
  // fractional part.
  EXPECT_EQ(j.dump(),
            "{\"z\":18446744073709551615,\"a\":-7,\"pi\":3.25,\"s\":\"x\"}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"name":"run","n":42,"neg":-3,"f":0.5,"ok":true,"none":null,)"
      R"("list":[1,"two",{"k":"v"}]})";
  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), text);
}

TEST(Json, ParseRejectsMalformed) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"\\x\"", "1 2"}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, EscapeControlCharactersAndQuotes) {
  Json j(std::string("a\"b\\c\nd\te"));
  const auto text = j.dump();
  EXPECT_EQ(text, "\"a\\\"b\\\\c\\nd\\te\"");
  const auto back = Json::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->asString(), "a\"b\\c\nd\te");
}

// --- logger ---------------------------------------------------------------

/// Swap in a capturing sink for the duration of a test.
class SinkCapture {
 public:
  SinkCapture() {
    Logger::global().setSink(
        [this](const LogRecord& r) { records_.push_back(r); });
  }
  ~SinkCapture() { Logger::global().setSink({}); }
  const std::vector<LogRecord>& records() const { return records_; }

 private:
  std::vector<LogRecord> records_;
};

TEST(Log, ThresholdFiltersLowerLevels) {
  SinkCapture capture;
  const LogLevel before = Logger::global().threshold();
  Logger::global().setThreshold(LogLevel::Warn);
  FADES_LOG(Debug) << "dropped";
  FADES_LOG(Info) << "also dropped";
  FADES_LOG(Warn) << "kept";
  FADES_LOG(Error) << "kept too";
  Logger::global().setThreshold(before);
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].message, "kept");
  EXPECT_EQ(capture.records()[0].level, LogLevel::Warn);
  EXPECT_EQ(capture.records()[1].message, "kept too");
}

TEST(Log, StreamCollectsMessageAndFields) {
  SinkCapture capture;
  FADES_LOG(Info) << "progress " << 3 << "/" << 10 << kv("done", 3)
                  << kv("ratio", 0.3) << kv("label", "x y");
  ASSERT_EQ(capture.records().size(), 1u);
  const auto& r = capture.records()[0];
  EXPECT_EQ(r.message, "progress 3/10");
  ASSERT_EQ(r.fields.size(), 3u);
  EXPECT_EQ(r.fields[0].key, "done");
  EXPECT_EQ(r.fields[0].value, "3");
  EXPECT_EQ(r.fields[2].value, "x y");
}

TEST(Log, FormatEscapesFieldValues) {
  LogRecord r;
  r.level = LogLevel::Info;
  r.message = "msg";
  r.fields = {{"plain", "abc"},
              {"spaced", "a b"},
              {"quoted", "say \"hi\""},
              {"eq", "k=v"},
              {"multi", "line1\nline2"}};
  const auto line = Logger::format(r);
  EXPECT_NE(line.find(" INFO msg"), std::string::npos);
  EXPECT_NE(line.find("plain=abc"), std::string::npos);
  EXPECT_NE(line.find("spaced=\"a b\""), std::string::npos);
  EXPECT_NE(line.find("quoted=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(line.find("eq=\"k=v\""), std::string::npos);
  EXPECT_NE(line.find("multi=\"line1\\nline2\""), std::string::npos);
}

TEST(Log, ParseLogLevelNamesAndFallback) {
  EXPECT_EQ(parseLogLevel("debug", LogLevel::Info), LogLevel::Debug);
  EXPECT_EQ(parseLogLevel("WARN", LogLevel::Info), LogLevel::Warn);
  EXPECT_EQ(parseLogLevel("off", LogLevel::Info), LogLevel::Off);
  EXPECT_EQ(parseLogLevel("bogus", LogLevel::Error), LogLevel::Error);
}

// --- metrics --------------------------------------------------------------

TEST(Metrics, HistogramBucketBoundaries) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // boundary lands in its own bucket (le semantics)
  h.observe(1.001); // <= 2.0
  h.observe(5.0);   // <= 5.0
  h.observe(7.0);   // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 7.0);
}

TEST(Metrics, HistogramSortsAndDedupesBounds) {
  Histogram h({5.0, 1.0, 5.0, 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(Metrics, HistogramDropsNaNObservations) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);  // the NaN did NOT land in the first bucket
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(h.count(), 1u);     // dropped observations are not counted
  EXPECT_EQ(h.nanCount(), 1u);  // ...but tallied separately
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);  // sum is not poisoned to NaN
  h.reset();
  EXPECT_EQ(h.nanCount(), 0u);
}

TEST(Metrics, RegistryWiresHistogramNanCounter) {
  Registry reg;
  Histogram& h = reg.histogram("h.nan", {1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(0.5);
  EXPECT_EQ(reg.counter("obs.histogram_nan_dropped").value(), 1u);
  const Json snap = reg.snapshotJson();
  const Json* hist = snap.find("histograms")->find("h.nan");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("nan_dropped")->asInt(), 1);
  EXPECT_EQ(hist->find("count")->asInt(), 1);
}

TEST(Metrics, RegistryFindOrCreateKeepsIdentity) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);  // reset zeroes but does not invalidate
  a.inc();
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(Metrics, SnapshotJsonShape) {
  Registry reg;
  reg.counter("c.one").add(2);
  reg.gauge("g.pct").set(62.5);
  reg.histogram("h.secs", {1.0, 10.0}).observe(3.0);
  const Json snap = reg.snapshotJson();
  const Json* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("c.one"), nullptr);
  EXPECT_EQ(counters->find("c.one")->asInt(), 2);
  EXPECT_DOUBLE_EQ(snap.find("gauges")->find("g.pct")->asNumber(), 62.5);
  const Json* hist = snap.find("histograms")->find("h.secs");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->asInt(), 1);
  EXPECT_EQ(hist->find("counts")->items().size(), 3u);
  // Snapshot text parses back - the artifact pipeline depends on it.
  EXPECT_TRUE(Json::parse(snap.dump(2)).has_value());
}

// --- trace ----------------------------------------------------------------

TEST(Trace, ChromeTraceJsonRoundTrips) {
  TraceBuffer buffer(16);
  {
    Span outer{"campaign", {{"model", "pulse"}}, buffer};
    Span inner{"inject", {}, buffer};
  }
  ASSERT_EQ(buffer.size(), 2u);

  const std::string text = buffer.chromeTraceJson().dump();
  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 2u);
  // Spans close innermost-first.
  const Json& first = events->items()[0];
  EXPECT_EQ(first.find("name")->asString(), "inject");
  EXPECT_EQ(first.find("ph")->asString(), "X");
  ASSERT_NE(first.find("ts"), nullptr);
  ASSERT_NE(first.find("dur"), nullptr);
  const Json& second = events->items()[1];
  EXPECT_EQ(second.find("name")->asString(), "campaign");
  EXPECT_EQ(second.find("args")->find("model")->asString(), "pulse");
  EXPECT_EQ(parsed->find("displayTimeUnit")->asString(), "ms");
}

TEST(Trace, RingBufferEvictsOldestAndCounts) {
  TraceBuffer buffer(2);
  for (int i = 0; i < 5; ++i) {
    Span s{"s" + std::to_string(i), {}, buffer};
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  const auto spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "s3");
  EXPECT_EQ(spans[1].name, "s4");
}

TEST(Trace, DisabledBufferRecordsNothing) {
  TraceBuffer buffer(8);
  buffer.setEnabled(false);
  { Span s{"ignored", {}, buffer}; }
  EXPECT_EQ(buffer.size(), 0u);
}

// --- concurrency stress ---------------------------------------------------
//
// The sharded campaign runner hammers the metrics registry, trace buffer
// and logger from every worker; these tests pin down the exact-total
// guarantees the instruments make under concurrency (and give TSan
// something to chew on).

TEST(MetricsStress, ConcurrentUpdatesProduceExactTotals) {
  Registry reg;
  Counter& counter = reg.counter("stress.count");
  Gauge& gauge = reg.gauge("stress.gauge");
  Histogram& hist = reg.histogram("stress.hist", {1.0, 4.0});

  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 5000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        counter.inc();
        gauge.set(static_cast<double>(t));
        hist.observe(1.0);  // integral values sum exactly in a double
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kThreads * kPerThread));
  const auto counts = hist.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], kThreads * kPerThread);  // every observation <= 1.0
  const double g = gauge.value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, static_cast<double>(kThreads));
  // A snapshot taken after the storm reflects the settled totals.
  const Json snap = reg.snapshotJson();
  EXPECT_EQ(snap.find("counters")->find("stress.count")->asInt(),
            static_cast<std::int64_t>(kThreads * kPerThread));
}

TEST(MetricsStress, ConcurrentFindOrCreateYieldsOneInstrument) {
  Registry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Counter& c = reg.counter("shared.counter");
      c.add(100);
      seen[t] = &c;
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(reg.counter("shared.counter").value(), 800u);
}

TEST(TraceStress, ConcurrentSpansWithEnableToggleStayConsistent) {
  TraceBuffer buffer(1024);
  std::atomic<bool> stop{false};
  // One thread flips the enable flag (the path that used to be a plain
  // bool - a data race under concurrent record()) while workers emit spans.
  std::thread toggler([&] {
    while (!stop.load()) {
      buffer.setEnabled(false);
      buffer.setEnabled(true);
    }
  });
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (unsigned i = 0; i < 2000; ++i) {
        Span s{"w" + std::to_string(t), {{"i", std::to_string(i)}}, buffer};
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true);
  toggler.join();
  buffer.setEnabled(true);

  // Disabled windows may have swallowed spans, but the accounting must
  // stay coherent: size bounded by capacity, recorded + dropped <= emitted,
  // and the snapshot serializes cleanly.
  EXPECT_LE(buffer.size(), 1024u);
  EXPECT_LE(buffer.size() + buffer.dropped(), 4u * 2000u);
  EXPECT_TRUE(Json::parse(buffer.chromeTraceJson().dump()).has_value());
}

TEST(LogStress, ConcurrentLoggingDeliversEveryRecord) {
  SinkCapture capture;
  constexpr unsigned kThreads = 6;
  constexpr unsigned kPerThread = 500;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        FADES_LOG(Info) << "stress" << kv("thread", t) << kv("i", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(capture.records().size(), kThreads * kPerThread);
}

// --- run artifacts --------------------------------------------------------

RunArtifact sampleArtifact() {
  RunArtifact a("campaign", "demo");
  Json spec = Json::object();
  spec.set("model", Json("pulse"));
  spec.set("experiments", Json(2));
  a.setSpec(spec);
  for (int i = 0; i < 2; ++i) {
    Json rec = Json::object();
    rec.set("target", Json("lut:" + std::to_string(i)));
    rec.set("outcome", Json("silent"));
    a.addRecord(rec);
  }
  Json metrics = Json::object();
  metrics.set("counters", Json::object());
  a.setMetrics(metrics);
  Json cost = Json::object();
  cost.set("config_seconds", Json(1.5));
  a.setCost(cost);
  return a;
}

TEST(Artifact, SchemaAndSectionOrderAreStable) {
  const Json j = sampleArtifact().toJson();
  EXPECT_EQ(j.find("schema")->asString(), "fades.run/1");
  EXPECT_EQ(j.find("kind")->asString(), "campaign");
  EXPECT_EQ(j.find("name")->asString(), "demo");
  // Consumers rely on the top-level member order staying put.
  std::vector<std::string> keys;
  for (const auto& [k, v] : j.members()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"schema", "kind", "name", "spec",
                                            "records", "metrics", "cost"}));
  EXPECT_EQ(j.find("records")->items().size(), 2u);
}

TEST(Artifact, JsonlLinesAllParse) {
  const std::string jsonl = sampleArtifact().toJsonl();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const auto nl = jsonl.find('\n', start);
    lines.push_back(jsonl.substr(start, nl - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 2 records + summary
  for (const auto& line : lines) {
    EXPECT_TRUE(Json::parse(line).has_value()) << line;
  }
  const auto header = Json::parse(lines[0]);
  EXPECT_EQ(header->find("schema")->asString(), "fades.run/1");
  const auto record = Json::parse(lines[1]);
  ASSERT_NE(record->find("record"), nullptr);
  EXPECT_EQ(record->find("record")->find("target")->asString(), "lut:0");
}

TEST(Artifact, WriteJsonRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/fades_artifact.json";
  sampleArtifact().writeJson(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("schema")->asString(), "fades.run/1");
}

}  // namespace
}  // namespace fades::obs
