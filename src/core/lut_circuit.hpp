// Circuit extraction from LUT truth tables (paper Section 4.2, Figure 5).
//
// A pulse (or indetermination) fault can hit not only the LUT's output or
// input lines but also an *internal* line of the combinational circuit the
// LUT implements. Following the paper's approach (derived from Parreira et
// al.), the tool reconstructs a structural representation of the circuit
// purely from the truth table - here a reduced ordered BDD, whose nodes are
// the internal lines - recomputes the table with one line inverted, and
// downloads the faulted table.
#pragma once

#include <cstdint>
#include <vector>

namespace fades::core {

class ExtractedCircuit {
 public:
  /// Build the structural representation of the 4-input function.
  explicit ExtractedCircuit(std::uint16_t table);

  std::uint16_t table() const { return table_; }

  /// Number of internal lines (structure nodes) in the extracted circuit.
  unsigned internalLineCount() const {
    return static_cast<unsigned>(nodes_.size());
  }

  /// Truth table with internal line `line` (< internalLineCount) inverted.
  std::uint16_t tableWithInvertedInternalLine(unsigned line) const;

  /// Truth table with input line `input` (< 4) inverted.
  static std::uint16_t tableWithInvertedInput(std::uint16_t table,
                                              unsigned input);

  /// Truth table with the output line inverted.
  static std::uint16_t tableWithInvertedOutput(std::uint16_t table) {
    return static_cast<std::uint16_t>(~table);
  }

  /// All candidate pulse lines: output, inputs 0-3, then internal lines.
  /// Returns the faulted table for candidate index `k`
  /// (k == 0: output, 1..4: inputs, 5..: internal lines).
  unsigned candidateLineCount() const { return 5 + internalLineCount(); }
  std::uint16_t tableWithFaultedLine(unsigned candidate) const;

 private:
  struct Node {
    unsigned var = 0;  // splitting input variable
    int lo = 0;        // reference: 0/1 = terminals, k+2 = node k
    int hi = 0;
  };

  bool evalRef(int ref, unsigned minterm, int invertedNode) const;

  std::uint16_t table_ = 0;
  std::vector<Node> nodes_;
  int root_ = 0;
};

}  // namespace fades::core
