file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_delay.dir/bench_fig15_delay.cpp.o"
  "CMakeFiles/bench_fig15_delay.dir/bench_fig15_delay.cpp.o.d"
  "bench_fig15_delay"
  "bench_fig15_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
