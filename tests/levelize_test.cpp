// Levelizer unit tests: schedule legality on random designs, cycle
// diagnostics, and a golden dump pinning the MC8051 kernel shape.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "rtl/builder.hpp"

namespace fades::netlist {
namespace {

using common::FadesError;
using common::Rng;
using rtl::Builder;
using rtl::Bus;

// Random register+logic design, same flavour as the property suite's.
Builder randomDesign(std::uint64_t seed, unsigned gates) {
  Rng rng(seed);
  Builder b;
  Bus in = b.input("in", 8);
  std::vector<rtl::NetId> pool = in;
  std::vector<rtl::Register> regs;
  for (unsigned r = 0; r < 4; ++r) {
    regs.push_back(b.makeRegister("q" + std::to_string(r), 4, 0));
    pool.insert(pool.end(), regs.back().q.begin(), regs.back().q.end());
  }
  for (unsigned g = 0; g < gates; ++g) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    pool.push_back(rng.coin() ? b.lxor(pick(), pick())
                              : b.lmux(pick(), pick(), pick()));
  }
  for (auto& r : regs) {
    Bus d;
    for (int k = 0; k < 4; ++k) d.push_back(pool[rng.below(pool.size())]);
    b.connect(r, d);
  }
  Bus out;
  for (int k = 0; k < 8; ++k) out.push_back(pool[rng.below(pool.size())]);
  b.output("out", out);
  return b;
}

// ------------------------------------------------------- schedule shape -----

TEST(Levelize, ScheduleRespectsCombinationalDepth) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Builder b = randomDesign(seed, 60);
    const Netlist nl = b.finish();
    const Levelization lv = levelize(nl);

    ASSERT_EQ(lv.schedule.size(), nl.gateCount());
    ASSERT_EQ(lv.level.size(), nl.gateCount());

    // Level exactness: a gate's level is 1 + max over gate-driven inputs
    // (0 when it reads only sources), and the schedule is ascending
    // (level, gate index).
    std::vector<int> driverGate(nl.netCount(), -1);
    for (std::size_t g = 0; g < nl.gateCount(); ++g) {
      driverGate[nl.gates()[g].out.value] = static_cast<int>(g);
    }
    for (std::size_t g = 0; g < nl.gateCount(); ++g) {
      std::uint32_t want = 0;
      for (const NetId in : nl.gates()[g].in) {
        if (!in.valid()) continue;
        const int d = driverGate[in.value];
        if (d >= 0) want = std::max(want, lv.level[d] + 1);
      }
      EXPECT_EQ(lv.level[g], want) << "gate " << g << " seed " << seed;
    }
    for (std::size_t i = 1; i < lv.schedule.size(); ++i) {
      const auto a = lv.schedule[i - 1], bb = lv.schedule[i];
      const bool ordered =
          lv.level[a.value] < lv.level[bb.value] ||
          (lv.level[a.value] == lv.level[bb.value] && a.value < bb.value);
      EXPECT_TRUE(ordered) << "schedule not canonical at slot " << i;
    }
    // CSR offsets partition the schedule.
    ASSERT_GE(lv.levelOffsets.size(), 2u);
    EXPECT_EQ(lv.levelOffsets.front(), 0u);
    EXPECT_EQ(lv.levelOffsets.back(), nl.gateCount());
    for (unsigned l = 0; l < lv.depth(); ++l) {
      for (std::uint32_t s = lv.levelOffsets[l]; s < lv.levelOffsets[l + 1];
           ++s) {
        EXPECT_EQ(lv.level[lv.schedule[s].value], l);
      }
    }
  }
}

TEST(Levelize, EveryGateScheduledExactlyOnce) {
  Builder b = randomDesign(99, 80);
  const Netlist nl = b.finish();
  const Levelization lv = levelize(nl);
  std::vector<char> seen(nl.gateCount(), 0);
  for (const GateId g : lv.schedule) {
    EXPECT_FALSE(seen[g.value]) << "gate " << g.value << " scheduled twice";
    seen[g.value] = 1;
  }
}

// ------------------------------------------------------ cycle detection -----

TEST(Levelize, CombinationalCycleRaisesConfigErrorNamingNets) {
  // a = AND(b, x); b = OR(a, y) - a two-gate combinational loop.
  Netlist nl;
  const NetId x = nl.addNet("x");
  const NetId y = nl.addNet("y");
  const NetId a = nl.addNet("loop_a");
  const NetId b = nl.addNet("loop_b");
  nl.addInputPort("x", {x});
  nl.addInputPort("y", {y});
  nl.addGate(GateOp::And, b, x, {}, Unit::None, a);
  nl.addGate(GateOp::Or, a, y, {}, Unit::None, b);
  nl.addOutputPort("o", {a});

  try {
    levelize(nl);
    FAIL() << "levelize accepted a combinational cycle";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), common::ErrorKind::ConfigError);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("loop_a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("loop_b"), std::string::npos) << msg;
  }
}

TEST(Levelize, SelfLoopRaisesConfigError) {
  Netlist nl;
  const NetId x = nl.addNet("x");
  const NetId s = nl.addNet("self");
  nl.addInputPort("x", {x});
  nl.addGate(GateOp::Or, s, x, {}, Unit::None, s);
  nl.addOutputPort("o", {s});
  try {
    levelize(nl);
    FAIL() << "levelize accepted a self-loop";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), common::ErrorKind::ConfigError);
    EXPECT_NE(std::string(e.what()).find("self"), std::string::npos);
  }
}

TEST(Levelize, FlopFeedbackIsNotACycle) {
  // Sequential feedback through a register is legal; only combinational
  // loops are rejected.
  Builder b;
  rtl::Register r = b.makeRegister("st", 4, 1);
  b.connect(r, b.increment(r.q));
  b.output("st", r.q);
  const Netlist nl = b.finish();
  EXPECT_NO_THROW(levelize(nl));
}

// ----------------------------------------------------------- golden dump -----

TEST(Levelize, Mc8051DumpMatchesGoldenFile) {
  // Pins the exact kernel shape (gate/flop/ram counts, per-level histogram,
  // schedule hash) of the MC8051 core. Any change to the builder, the IR or
  // the levelizer that alters the compiled kernel shows up as a reviewable
  // diff. To regenerate after an intentional change:
  //   FADES_REGEN_GOLDEN=1 ./tests/test_levelize
  //     --gtest_filter='Levelize.Mc8051Dump*'
  const auto workload = mc8051::bubblesort(6);
  const Netlist nl = mc8051::buildCore(workload.bytes);
  const std::string dump = levelize(nl).dump(nl);

  const std::string goldenPath =
      std::string(FADES_TEST_DATA_DIR) + "/mc8051_levels.txt";
  if (std::getenv("FADES_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath, std::ios::binary);
    out << dump;
    GTEST_SKIP() << "regenerated " << goldenPath;
  }
  std::ifstream in(goldenPath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << goldenPath
                         << " (run with FADES_REGEN_GOLDEN=1 to create)";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(dump, golden.str());
}

}  // namespace
}  // namespace fades::netlist
