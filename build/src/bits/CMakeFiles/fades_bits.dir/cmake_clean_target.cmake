file(REMOVE_RECURSE
  "libfades_bits.a"
)
