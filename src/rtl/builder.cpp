#include "rtl/builder.hpp"

#include <cassert>

#include "common/error.hpp"

namespace fades::rtl {

using common::ErrorKind;
using common::require;

void Builder::nameBus(const std::string& name, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (nl_.netName(bus[i]).empty()) {
      nl_.setNetName(bus[i],
                     bus.size() == 1
                         ? name
                         : name + "[" + std::to_string(i) + "]");
    }
  }
}

Bus Builder::input(const std::string& name, unsigned width) {
  Bus bus;
  bus.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bus.push_back(nl_.addNet(width == 1 ? name
                                        : name + "[" + std::to_string(i) + "]"));
  }
  nl_.addInputPort(name, bus);
  return bus;
}

NetId Builder::inputBit(const std::string& name) { return input(name, 1)[0]; }

void Builder::output(const std::string& name, const Bus& value) {
  // Give anonymous driven nets the port's name: they are now HDL-visible
  // signals (e.g. fault-injection targets for simulator-command tools).
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (nl_.netName(value[i]).empty()) {
      nl_.setNetName(value[i],
                     value.size() == 1
                         ? name
                         : name + "[" + std::to_string(i) + "]");
    }
  }
  nl_.addOutputPort(name, value);
}

void Builder::output(const std::string& name, NetId value) {
  nl_.addOutputPort(name, Bus{value});
}

NetId Builder::zero() {
  if (!zero_.valid()) {
    zero_ = nl_.addNet("const0");
    nl_.addGate(GateOp::Const0, {}, {}, {}, Unit::None, zero_);
  }
  return zero_;
}

NetId Builder::one() {
  if (!one_.valid()) {
    one_ = nl_.addNet("const1");
    nl_.addGate(GateOp::Const1, {}, {}, {}, Unit::None, one_);
  }
  return one_;
}

Bus Builder::constant(std::uint64_t value, unsigned width) {
  Bus bus;
  bus.reserve(width);
  for (unsigned i = 0; i < width; ++i) bus.push_back(bit((value >> i) & 1));
  return bus;
}

NetId Builder::land(NetId a, NetId b) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::And, a, b, {}, unit_, out);
  return out;
}
NetId Builder::lor(NetId a, NetId b) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Or, a, b, {}, unit_, out);
  return out;
}
NetId Builder::lxor(NetId a, NetId b) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Xor, a, b, {}, unit_, out);
  return out;
}
NetId Builder::lnot(NetId a) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Not, a, {}, {}, unit_, out);
  return out;
}
NetId Builder::lnand(NetId a, NetId b) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Nand, a, b, {}, unit_, out);
  return out;
}
NetId Builder::lnor(NetId a, NetId b) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Nor, a, b, {}, unit_, out);
  return out;
}
NetId Builder::lxnor(NetId a, NetId b) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Xnor, a, b, {}, unit_, out);
  return out;
}
NetId Builder::lmux(NetId sel, NetId whenTrue, NetId whenFalse) {
  NetId out = nl_.addNet();
  nl_.addGate(GateOp::Mux, whenFalse, whenTrue, sel, unit_, out);
  return out;
}

NetId Builder::andAll(const Bus& bits) {
  require(!bits.empty(), ErrorKind::InvalidArgument, "andAll on empty bus");
  NetId acc = bits[0];
  for (std::size_t i = 1; i < bits.size(); ++i) acc = land(acc, bits[i]);
  return acc;
}

NetId Builder::orAll(const Bus& bits) {
  require(!bits.empty(), ErrorKind::InvalidArgument, "orAll on empty bus");
  NetId acc = bits[0];
  for (std::size_t i = 1; i < bits.size(); ++i) acc = lor(acc, bits[i]);
  return acc;
}

void Builder::checkWidths(const Bus& a, const Bus& b, const char* what) const {
  require(a.size() == b.size(), ErrorKind::InvalidArgument,
          std::string("bus width mismatch in ") + what);
}

Bus Builder::bAnd(const Bus& a, const Bus& b) {
  checkWidths(a, b, "bAnd");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(land(a[i], b[i]));
  return out;
}
Bus Builder::bOr(const Bus& a, const Bus& b) {
  checkWidths(a, b, "bOr");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(lor(a[i], b[i]));
  return out;
}
Bus Builder::bXor(const Bus& a, const Bus& b) {
  checkWidths(a, b, "bXor");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(lxor(a[i], b[i]));
  return out;
}
Bus Builder::bNot(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (NetId n : a) out.push_back(lnot(n));
  return out;
}
Bus Builder::bMux(NetId sel, const Bus& whenTrue, const Bus& whenFalse) {
  checkWidths(whenTrue, whenFalse, "bMux");
  Bus out;
  out.reserve(whenTrue.size());
  for (std::size_t i = 0; i < whenTrue.size(); ++i) {
    out.push_back(lmux(sel, whenTrue[i], whenFalse[i]));
  }
  return out;
}

Bus Builder::select(const Bus& defaultValue,
                    const std::vector<std::pair<NetId, Bus>>& cases) {
  Bus acc = defaultValue;
  // Build from lowest priority upward so the first case wins.
  for (auto it = cases.rbegin(); it != cases.rend(); ++it) {
    acc = bMux(it->first, it->second, acc);
  }
  return acc;
}

NetId Builder::selectBit(NetId defaultValue,
                         const std::vector<std::pair<NetId, NetId>>& cases) {
  NetId acc = defaultValue;
  for (auto it = cases.rbegin(); it != cases.rend(); ++it) {
    acc = lmux(it->first, it->second, acc);
  }
  return acc;
}

Builder::AddResult Builder::add(const Bus& a, const Bus& b, NetId carryIn) {
  checkWidths(a, b, "add");
  require(!a.empty(), ErrorKind::InvalidArgument, "add on empty bus");
  AddResult r;
  r.sum.reserve(a.size());
  NetId carry = carryIn.valid() ? carryIn : zero();
  NetId carryIntoMsb = carry;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = lxor(a[i], b[i]);
    r.sum.push_back(lxor(axb, carry));
    // carry-out = (a & b) | (carry & (a ^ b))
    carryIntoMsb = carry;
    carry = lor(land(a[i], b[i]), land(carry, axb));
    if (i == 3) r.auxCarry = carry;
  }
  r.carryOut = carry;
  if (!r.auxCarry.valid()) r.auxCarry = zero();
  r.overflow = lxor(carryIntoMsb, carry);
  return r;
}

Builder::AddResult Builder::sub(const Bus& a, const Bus& b, NetId borrowIn) {
  // a - b - borrow == a + ~b + (1 - borrow); carry out of that addition is
  // the complement of the borrow.
  NetId cin = borrowIn.valid() ? lnot(borrowIn) : one();
  AddResult r = add(a, bNot(b), cin);
  r.carryOut = lnot(r.carryOut);  // borrow flag
  r.auxCarry = lnot(r.auxCarry);  // aux borrow (8051 AC on subtraction)
  return r;
}

Bus Builder::increment(const Bus& a) {
  return add(a, constant(0, static_cast<unsigned>(a.size())), one()).sum;
}

Bus Builder::decrement(const Bus& a) {
  // a - 1 = a + all-ones.
  return add(a, constant(~0ULL, static_cast<unsigned>(a.size())), {}).sum;
}

NetId Builder::eq(const Bus& a, const Bus& b) {
  checkWidths(a, b, "eq");
  Bus eqBits;
  eqBits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eqBits.push_back(lxnor(a[i], b[i]));
  }
  return andAll(eqBits);
}

NetId Builder::eqConst(const Bus& a, std::uint64_t value) {
  Bus bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits.push_back(((value >> i) & 1) ? a[i] : lnot(a[i]));
  }
  return andAll(bits);
}

NetId Builder::isZero(const Bus& a) { return lnot(orAll(a)); }

Bus Builder::rotateLeft1(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  out.push_back(a.back());
  for (std::size_t i = 0; i + 1 < a.size(); ++i) out.push_back(a[i]);
  return out;
}

Bus Builder::rotateRight1(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 1; i < a.size(); ++i) out.push_back(a[i]);
  out.push_back(a.front());
  return out;
}

Bus Builder::slice(const Bus& a, unsigned lo, unsigned width) const {
  require(lo + width <= a.size(), ErrorKind::InvalidArgument,
          "slice out of range");
  return Bus(a.begin() + lo, a.begin() + lo + width);
}

Bus Builder::concat(const Bus& low, const Bus& high) const {
  Bus out = low;
  out.insert(out.end(), high.begin(), high.end());
  return out;
}

Bus Builder::zeroExtend(const Bus& a, unsigned width) {
  require(width >= a.size(), ErrorKind::InvalidArgument,
          "zeroExtend narrows bus");
  Bus out = a;
  while (out.size() < width) out.push_back(zero());
  return out;
}

Bus Builder::decodeOneHot(const Bus& a) {
  const std::size_t n = std::size_t{1} << a.size();
  Bus out;
  out.reserve(n);
  for (std::size_t v = 0; v < n; ++v) out.push_back(eqConst(a, v));
  return out;
}

Register Builder::makeRegister(const std::string& name, unsigned width,
                               std::uint64_t init) {
  Register reg;
  reg.q.reserve(width);
  reg.dStub.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    const std::string bitName =
        width == 1 ? name : name + "[" + std::to_string(i) + "]";
    const NetId d = nl_.addNet(bitName + ".d");
    reg.dStub.push_back(d);
    const NetId q = nl_.addNet(bitName);
    nl_.addFlop(d, (init >> i) & 1, unit_, bitName, q);
    reg.q.push_back(q);
  }
  return reg;
}

void Builder::connect(Register& reg, const Bus& d) {
  require(!reg.connected, ErrorKind::InvalidArgument,
          "register connected twice");
  checkWidths(reg.dStub, d, "connect");
  for (std::size_t i = 0; i < d.size(); ++i) {
    // Drive the placeholder with a buffer; synthesis absorbs it.
    nl_.addGate(GateOp::Buf, d[i], {}, {}, unit_, reg.dStub[i]);
  }
  reg.connected = true;
}

Bus Builder::registered(const std::string& name, const Bus& d,
                        std::uint64_t init) {
  Register reg = makeRegister(name, static_cast<unsigned>(d.size()), init);
  connect(reg, d);
  return reg.q;
}

Bus Builder::ram(const std::string& name, unsigned addrBits, unsigned dataBits,
                 const Bus& addr, const Bus& dataIn, NetId writeEnable,
                 std::vector<std::uint8_t> init) {
  const auto id = nl_.addRam(addrBits, dataBits, addr, dataIn, writeEnable,
                             std::move(init), unit_, name);
  return nl_.ram(id).dataOut;
}

Bus Builder::rom(const std::string& name, unsigned addrBits, unsigned dataBits,
                 const Bus& addr, std::vector<std::uint8_t> init) {
  const auto id = nl_.addRam(addrBits, dataBits, addr, {}, NetId{},
                             std::move(init), unit_, name);
  return nl_.ram(id).dataOut;
}

Netlist Builder::finish() {
  nl_.validate();
  return std::move(nl_);
}

std::uint64_t busValue(const Bus& bus, const std::vector<bool>& netValues) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    if (netValues[bus[i].value]) v |= 1ULL << i;
  }
  return v;
}

}  // namespace fades::rtl
