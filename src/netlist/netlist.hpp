// Gate-level netlist intermediate representation.
//
// This is the single source of truth for the system under test: the same
// netlist is (a) simulated directly by the event-driven simulator that the
// VFIT baseline drives, and (b) synthesized (LUT-mapped, placed, routed) onto
// the generic FPGA that FADES reconfigures at run time. Keeping one IR for
// both paths is what makes the paper's side-by-side validation experiment
// (Section 6) meaningful: both tools inject faults into the *same* model.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace fades::netlist {

/// Strongly-typed handles. A default-constructed id is invalid.
struct NetId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  bool valid() const { return value != kInvalid; }
  friend bool operator==(NetId, NetId) = default;
};

struct GateId {
  std::uint32_t value = 0xffffffffu;
  bool valid() const { return value != 0xffffffffu; }
  friend bool operator==(GateId, GateId) = default;
};

struct FlopId {
  std::uint32_t value = 0xffffffffu;
  bool valid() const { return value != 0xffffffffu; }
  friend bool operator==(FlopId, FlopId) = default;
};

struct RamId {
  std::uint32_t value = 0xffffffffu;
  bool valid() const { return value != 0xffffffffu; }
  friend bool operator==(RamId, RamId) = default;
};

enum class GateOp : std::uint8_t {
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Or,
  Xor,
  Nand,
  Nor,
  Xnor,
  Mux,  // in[2] ? in[1] : in[0]
};

unsigned arity(GateOp op);
const char* toString(GateOp op);

/// Evaluate a gate function on already-resolved input bits.
bool evalGate(GateOp op, bool a, bool b, bool c);

/// Functional unit a circuit element belongs to. Mirrors the fault-location
/// granularity of the paper's experiments: registers, RAM memory, the ALU,
/// the memory-control unit and the FSM/control unit.
enum class Unit : std::uint8_t {
  None,
  Registers,
  Ram,
  Alu,
  MemCtrl,
  Fsm,
};

const char* toString(Unit unit);

struct Gate {
  GateOp op = GateOp::Buf;
  std::array<NetId, 3> in{};
  NetId out{};
  Unit unit = Unit::None;
};

/// Positive-edge D flip-flop in the single implicit clock domain. `init` is
/// the power-on / reset value (maps onto the FPGA's set/reset mux choice).
struct Flop {
  NetId d{};
  NetId q{};
  bool init = false;
  Unit unit = Unit::None;
  std::string name;  // HDL-level name, e.g. "acc[3]"; used for fault location
};

/// Synchronous-read, synchronous-write memory (models an embedded memory
/// block). `dataOut` is registered: a read of address A presented in cycle t
/// appears on dataOut in cycle t+1. Write-enable gated writes happen on the
/// clock edge; read-during-write returns the OLD value (read-first port).
struct Ram {
  std::vector<NetId> addr;     // LSB first
  std::vector<NetId> dataIn;   // empty for ROM
  std::vector<NetId> dataOut;  // LSB first
  NetId writeEnable{};         // invalid for ROM
  unsigned addrBits = 0;
  unsigned dataBits = 0;
  std::vector<std::uint8_t> init;  // 2^addrBits entries of dataBits (byte/entry rows)
  Unit unit = Unit::None;
  std::string name;

  bool isRom() const { return !writeEnable.valid(); }
  std::size_t depth() const { return std::size_t{1} << addrBits; }
  /// Initial contents of `addr` entry (init stores one value per row packed
  /// little-endian in ceil(dataBits/8) bytes).
  std::uint64_t initWord(std::size_t row) const;
  void setInitWord(std::size_t row, std::uint64_t value);
};

struct Port {
  std::string name;
  std::vector<NetId> nets;  // LSB first
  bool isInput = false;
};

struct NetlistStats {
  std::size_t nets = 0;
  std::size_t gates = 0;
  std::size_t flops = 0;
  std::size_t rams = 0;
  std::size_t ramBits = 0;
  std::size_t inputBits = 0;
  std::size_t outputBits = 0;
  std::unordered_map<Unit, std::size_t> gatesPerUnit;
  std::unordered_map<Unit, std::size_t> flopsPerUnit;
};

/// The netlist container. Nets are single-bit. Construction is append-only;
/// `validate()` checks global well-formedness before the netlist is used.
class Netlist {
 public:
  NetId addNet(std::string name = {});
  GateId addGate(GateOp op, NetId a, NetId b = {}, NetId c = {},
                 Unit unit = Unit::None, NetId out = {});
  FlopId addFlop(NetId d, bool init, Unit unit, std::string name,
                 NetId q = {});
  RamId addRam(unsigned addrBits, unsigned dataBits,
               const std::vector<NetId>& addr,
               const std::vector<NetId>& dataIn, NetId writeEnable,
               std::vector<std::uint8_t> init, Unit unit, std::string name);

  void addInputPort(std::string name, std::vector<NetId> nets);
  void addOutputPort(std::string name, std::vector<NetId> nets);

  std::size_t netCount() const { return netNames_.size(); }
  std::size_t gateCount() const { return gates_.size(); }
  std::size_t flopCount() const { return flops_.size(); }
  std::size_t ramCount() const { return rams_.size(); }

  const Gate& gate(GateId id) const { return gates_[id.value]; }
  const Flop& flop(FlopId id) const { return flops_[id.value]; }
  const Ram& ram(RamId id) const { return rams_[id.value]; }
  Ram& ram(RamId id) { return rams_[id.value]; }

  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Flop>& flops() const { return flops_; }
  const std::vector<Ram>& rams() const { return rams_; }
  const std::vector<Port>& inputs() const { return inputs_; }
  const std::vector<Port>& outputs() const { return outputs_; }

  const std::string& netName(NetId id) const { return netNames_[id.value]; }
  void setNetName(NetId id, std::string name) {
    netNames_[id.value] = std::move(name);
  }
  /// First net with the given (non-empty) name, if any.
  std::optional<NetId> findNet(const std::string& name) const;
  std::optional<FlopId> findFlop(const std::string& name) const;
  const Port* findInput(const std::string& name) const;
  const Port* findOutput(const std::string& name) const;

  // --- consumer rewiring (instrumentation support) -------------------------
  // Redirect what an element READS; drivers are untouched, so the netlist
  // stays well-formed. Used by saboteur instrumentation (synth/instrument).
  void replaceGateInput(GateId id, unsigned pin, NetId newNet);
  void replaceFlopInput(FlopId id, NetId newNet);
  void replaceRamInput(RamId id, NetId oldNet, NetId newNet);
  void replaceOutputPortNet(std::size_t port, unsigned bit, NetId newNet);

  /// Driver bookkeeping: which element drives each net.
  enum class DriverKind : std::uint8_t { None, Gate, Flop, Ram, Input };
  struct Driver {
    DriverKind kind = DriverKind::None;
    std::uint32_t index = 0;  // gate/flop/ram/port index
  };
  Driver driverOf(NetId id) const { return drivers_[id.value]; }

  /// Checks: every net driven exactly once, all referenced nets exist,
  /// combinational logic is acyclic. Throws FadesError on violation.
  void validate() const;

  /// Topological order of gate ids (inputs/flops/rams are level 0 sources).
  /// Requires a validated (acyclic) netlist.
  std::vector<GateId> topoOrder() const;

  NetlistStats stats() const;

 private:
  void setDriver(NetId net, DriverKind kind, std::uint32_t index);

  std::vector<std::string> netNames_;
  std::vector<Driver> drivers_;
  std::vector<Gate> gates_;
  std::vector<Flop> flops_;
  std::vector<Ram> rams_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
};

}  // namespace fades::netlist

template <>
struct std::hash<fades::netlist::NetId> {
  std::size_t operator()(fades::netlist::NetId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
