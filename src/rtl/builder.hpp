// RTL construction kit.
//
// A thin hardware-construction layer over the netlist IR: buses, registers
// with deferred feedback, adders, comparators, muxes and decoders. The 8051
// microcontroller model (src/mc8051) is written entirely against this API,
// which plays the role the VHDL source plays in the paper - the description
// that is both simulated (VFIT path) and synthesized onto the FPGA (FADES
// path).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::rtl {

using netlist::GateOp;
using netlist::NetId;
using netlist::Netlist;
using netlist::Unit;

/// A bus is an ordered list of nets, LSB first.
using Bus = std::vector<NetId>;

/// A register created before its D input is known (so state machines can
/// reference their own outputs). Call Builder::connect() exactly once.
struct Register {
  Bus q;        // flip-flop outputs
  Bus dStub;    // placeholder nets to be driven via Builder::connect
  bool connected = false;
};

class Builder {
 public:
  explicit Builder(std::string topName = "top") : topName_(std::move(topName)) {}

  /// Scoped unit tagging: every gate/flop/ram created while a unit is set is
  /// attributed to that functional unit (fault-location granularity).
  void setUnit(Unit unit) { unit_ = unit; }
  Unit unit() const { return unit_; }

  /// Name the (still unnamed) nets of a bus: they become HDL-visible
  /// signals, e.g. targets for simulator-command fault injection.
  void nameBus(const std::string& name, const Bus& bus);

  // --- ports -------------------------------------------------------------
  Bus input(const std::string& name, unsigned width);
  NetId inputBit(const std::string& name);
  void output(const std::string& name, const Bus& value);
  void output(const std::string& name, NetId value);

  // --- constants ---------------------------------------------------------
  NetId zero();
  NetId one();
  NetId bit(bool value) { return value ? one() : zero(); }
  Bus constant(std::uint64_t value, unsigned width);

  // --- single-bit logic --------------------------------------------------
  NetId land(NetId a, NetId b);
  NetId lor(NetId a, NetId b);
  NetId lxor(NetId a, NetId b);
  NetId lnot(NetId a);
  NetId lnand(NetId a, NetId b);
  NetId lnor(NetId a, NetId b);
  NetId lxnor(NetId a, NetId b);
  NetId lmux(NetId sel, NetId whenTrue, NetId whenFalse);
  NetId andAll(const Bus& bits);
  NetId orAll(const Bus& bits);

  // --- bus logic ---------------------------------------------------------
  Bus bAnd(const Bus& a, const Bus& b);
  Bus bOr(const Bus& a, const Bus& b);
  Bus bXor(const Bus& a, const Bus& b);
  Bus bNot(const Bus& a);
  Bus bMux(NetId sel, const Bus& whenTrue, const Bus& whenFalse);

  /// Priority selector: returns cases[k].second for the first true
  /// cases[k].first, else defaultValue. All buses must share a width.
  Bus select(const Bus& defaultValue,
             const std::vector<std::pair<NetId, Bus>>& cases);
  NetId selectBit(NetId defaultValue,
                  const std::vector<std::pair<NetId, NetId>>& cases);

  // --- arithmetic (ripple-carry; widths must match) -----------------------
  struct AddResult {
    Bus sum;
    NetId carryOut;
    NetId auxCarry;  // carry out of bit 3 (8051 AC flag); valid when w >= 4
    NetId overflow;  // signed overflow (carry into MSB xor carry out)
  };
  AddResult add(const Bus& a, const Bus& b, NetId carryIn);
  /// a - b - borrowIn. carryOut is the BORROW flag (1 = borrow occurred),
  /// matching the 8051 SUBB convention.
  AddResult sub(const Bus& a, const Bus& b, NetId borrowIn);
  Bus increment(const Bus& a);
  Bus decrement(const Bus& a);

  // --- comparison ---------------------------------------------------------
  NetId eq(const Bus& a, const Bus& b);
  NetId eqConst(const Bus& a, std::uint64_t value);
  NetId isZero(const Bus& a);

  // --- shifts / rotates / structure ---------------------------------------
  Bus rotateLeft1(const Bus& a);
  Bus rotateRight1(const Bus& a);
  Bus slice(const Bus& a, unsigned lo, unsigned width) const;
  Bus concat(const Bus& low, const Bus& high) const;
  Bus zeroExtend(const Bus& a, unsigned width);

  /// One-hot decoder: out[i] = (a == i), for 2^width(a) outputs.
  Bus decodeOneHot(const Bus& a);

  // --- state --------------------------------------------------------------
  /// Register whose D input is supplied later via connect(). Bit i is named
  /// "<name>[i]" (or just "<name>" when width == 1) for fault location.
  Register makeRegister(const std::string& name, unsigned width,
                        std::uint64_t init = 0);
  void connect(Register& reg, const Bus& d);
  /// Register with input-enable: keeps its value when enable is low.
  /// Built on makeRegister/connect.
  Bus registered(const std::string& name, const Bus& d, std::uint64_t init = 0);

  /// Synchronous-read RAM / ROM mapped to an FPGA memory block.
  Bus ram(const std::string& name, unsigned addrBits, unsigned dataBits,
          const Bus& addr, const Bus& dataIn, NetId writeEnable,
          std::vector<std::uint8_t> init = {});
  Bus rom(const std::string& name, unsigned addrBits, unsigned dataBits,
          const Bus& addr, std::vector<std::uint8_t> init);

  // --- finalisation --------------------------------------------------------
  /// Validates and yields the netlist. The builder must not be reused.
  Netlist finish();

  Netlist& netlist() { return nl_; }
  const Netlist& netlist() const { return nl_; }

 private:
  void checkWidths(const Bus& a, const Bus& b, const char* what) const;

  std::string topName_;
  Netlist nl_;
  Unit unit_ = Unit::None;
  NetId zero_{};
  NetId one_{};
  std::vector<Register*> pending_;  // diagnostics only; not owned
};

/// Little-endian value helpers used by tests and reference models.
std::uint64_t busValue(const Bus& bus, const std::vector<bool>& netValues);

}  // namespace fades::rtl
