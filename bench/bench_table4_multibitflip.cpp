// Table 4: effects of a single pulse in combinational logic manifesting as
// a MULTIPLE bit-flip in the registers it drives (Section 7.2). The paper
// pulses two specific LUTs of its Virtex implementation and lists every
// affected register with its fault-free and faulty values.
//
// This bench selects the LUTs whose routed output drives the most sinks
// (maximising the chance of multiplicity), probes them at several instants,
// and prints the diverging registers in the paper's format.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("table4_multibitflip", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  const auto& impl = sys.implementation();
  common::Rng rng(4);

  // Rank LUTs by the fan-out of their routed output.
  struct Cand {
    std::uint32_t lut;
    std::size_t sinks;
  };
  std::vector<Cand> cands;
  for (std::uint32_t i = 0; i < impl.luts.size(); ++i) {
    if (!impl.luts[i].out.valid()) continue;
    const auto route = impl.routeOfNet(impl.luts[i].out);
    if (!route) continue;
    cands.push_back(Cand{i, impl.routes[*route].sinkNodes.size()});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.sinks > b.sinks; });

  std::vector<std::vector<std::string>> rows;
  int printed = 0;
  for (const auto& c : cands) {
    if (printed >= 2) break;
    // Probe a few instants until the pulse disturbs multiple registers.
    for (int probe = 0; probe < 12; ++probe) {
      const auto cycle = 40 + rng.below(fades.runCycles() - 80);
      const auto effects = fades.multiBitFlipProbe(c.lut, cycle, rng);
      if (effects.size() < 2) continue;
      const auto& site = impl.luts[c.lut];
      char where[96];
      std::snprintf(where, sizeof where, "CB(%u,%u) LUT [%s], cycle %llu",
                    site.cb.x, site.cb.y, site.signalName.c_str(),
                    static_cast<unsigned long long>(cycle));
      bool first = true;
      for (const auto& e : effects) {
        char gold[24], faulty[24];
        std::snprintf(gold, sizeof gold, "%02llX",
                      static_cast<unsigned long long>(e.golden));
        std::snprintf(faulty, sizeof faulty, "%02llX",
                      static_cast<unsigned long long>(e.faulty));
        rows.push_back({first ? where : "", e.reg, gold, faulty});
        first = false;
      }
      ++printed;
      break;
    }
  }

  printTable("Table 4 - one pulse in combinational logic observed as a "
             "multiple bit-flip (paper: e.g. 4 and 6 registers affected)",
             {"injection point", "affected register", "fault-free hex",
              "faulty hex"},
             rows);
  std::printf(
      "Like the paper concludes, the affected-register set depends on the\n"
      "combinational path hit, so pulses cannot simply be replaced by\n"
      "single bit-flips (Section 7.2).\n");
  return 0;
}
