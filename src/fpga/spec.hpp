// Device specification for the generic FPGA architecture of the paper's
// Section 3: a grid of configurable blocks (4-input LUT + D flip-flop +
// configuration multiplexers), programmable matrices (PM) holding pass
// transistors, embedded memory blocks, perimeter pads, and global/local
// set-reset lines. Timing parameters follow the Virtex numbers quoted in
// Section 4.3 (LUT delay 0.29-0.8 ns, fan-out increment 0.001-0.018 ns).
#pragma once

#include <cstdint>
#include <string>

namespace fades::fpga {

struct DeviceSpec {
  std::string name = "generic";

  // --- geometry -----------------------------------------------------------
  unsigned rows = 16;    // CB rows
  unsigned cols = 16;    // CB columns
  unsigned tracks = 16;  // routing tracks per channel (horizontal & vertical)

  // --- embedded memory ------------------------------------------------------
  unsigned memBlocks = 4;        // number of embedded memory blocks
  unsigned memBlockBits = 4096;  // storage bits per block
  unsigned memMaxWidth = 16;     // widest configurable aspect ratio

  // --- configuration plane ---------------------------------------------------
  unsigned frameBytes = 64;  // partial-reconfiguration granularity

  // --- timing model ------------------------------------------------------------
  double clockPeriodNs = 40.0;      // 25 MHz system clock
  double lutDelayNs = 0.6;          // CB function-generator delay
  double clkToQNs = 0.5;            // FF clock-to-output
  double ffSetupNs = 0.4;           // FF setup time
  double segmentDelayNs = 0.30;     // per routing segment traversed
  double passTransistorNs = 0.10;   // per ON pass transistor along the path
  double fanoutLoadNs = 0.012;      // added delay per extra load on a line
  double padDelayNs = 0.8;          // IOB delay

  unsigned padCount() const { return 2 * rows; }  // west + east edges
  unsigned cbCount() const { return rows * cols; }
  unsigned lutCount() const { return cbCount(); }
  unsigned ffCount() const { return cbCount(); }

  /// Memory-block geometry: pins are ADDR[0..11] DIN[0..15] DOUT[0..15] WE.
  static constexpr unsigned kBramAddrPins = 12;
  static constexpr unsigned kBramDataPins = 16;
  static constexpr unsigned kBramPins = kBramAddrPins + 2 * kBramDataPins + 1;
  static constexpr unsigned kBramPinsPerRow = 6;
  static constexpr unsigned kBramRowSpan =
      (kBramPins + kBramPinsPerRow - 1) / kBramPinsPerRow;  // rows per block

  /// A Virtex-1000-class device: 24576 LUTs / 24576 FFs (paper Section 7.1)
  /// and 32 embedded memory blocks of 4 Kbit.
  static DeviceSpec virtex1000Like() {
    DeviceSpec s;
    s.name = "virtex1000-like";
    s.rows = 128;
    s.cols = 192;
    s.tracks = 16;
    s.memBlocks = 32;
    s.memBlockBits = 4096;
    return s;
  }

  /// A small device for unit tests: fast to route, fast to emulate.
  static DeviceSpec small() {
    DeviceSpec s;
    s.name = "small";
    s.rows = 12;
    s.cols = 12;
    s.tracks = 12;
    s.memBlocks = 2;
    s.memBlockBits = 2048;
    return s;
  }

  /// Mid-size device for integration tests of medium circuits.
  static DeviceSpec medium() {
    DeviceSpec s;
    s.name = "medium";
    s.rows = 48;
    s.cols = 64;
    s.tracks = 16;
    s.memBlocks = 8;
    s.memBlockBits = 4096;
    return s;
  }
};

/// Coordinates of a configurable block.
struct CbCoord {
  std::uint16_t x = 0;
  std::uint16_t y = 0;
  friend bool operator==(CbCoord, CbCoord) = default;
};

/// Coordinates of a programmable matrix (PM). PMs sit at tile corners, so
/// the PM grid is (cols+1) x (rows+1).
struct PmCoord {
  std::uint16_t x = 0;
  std::uint16_t y = 0;
  friend bool operator==(PmCoord, PmCoord) = default;
};

/// Configurable-block input pins. LUT inputs have no inverting multiplexer
/// (paper Section 4.2); the bypass input feeding the FF does (InvertFFinMux).
enum class CbInPin : std::uint8_t { I0 = 0, I1 = 1, I2 = 2, I3 = 3, Byp = 4 };
constexpr unsigned kCbInPins = 5;

enum class CbOutPin : std::uint8_t { Lut = 0, Ff = 1 };
constexpr unsigned kCbOutPins = 2;

/// Pass-transistor positions inside a PM, per track. Letters refer to the
/// four incident segments: W = HSeg(x-1,y), E = HSeg(x,y), S = VSeg(x,y-1),
/// N = VSeg(x,y).
enum class PmSwitch : std::uint8_t { WE = 0, NS = 1, WN = 2, WS = 3, EN = 4, ES = 5 };
constexpr unsigned kPmSwitches = 6;

}  // namespace fades::fpga

template <>
struct std::hash<fades::fpga::CbCoord> {
  std::size_t operator()(fades::fpga::CbCoord c) const noexcept {
    return (static_cast<std::size_t>(c.x) << 16) | c.y;
  }
};
