// Netlist levelization: schedule every combinational gate into topological
// levels so a compiled simulator can evaluate the whole cloud as one
// straight-line kernel (no event queue). Level 0 gates read only sources
// (input ports, flop Q outputs, RAM data outputs, constants); level L gates
// read at least one level L-1 gate output and nothing deeper.
//
// Unlike Netlist::topoOrder() - whose DFS-flavoured Kahn order depends on
// stack pops - the levelized schedule is canonical: gates are ordered by
// (level, gate index), so the same netlist always yields the same kernel
// and the golden dump below is stable across platforms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::netlist {

struct Levelization {
  /// Gate evaluation order: ascending (level, gate index).
  std::vector<GateId> schedule;
  /// Combinational level per gate, indexed by gate id.
  std::vector<std::uint32_t> level;
  /// CSR offsets into `schedule`: level L spans
  /// [levelOffsets[L], levelOffsets[L + 1]).
  std::vector<std::uint32_t> levelOffsets;

  unsigned depth() const {
    return levelOffsets.empty()
               ? 0
               : static_cast<unsigned>(levelOffsets.size() - 1);
  }
  std::size_t gatesAtLevel(unsigned l) const {
    return levelOffsets[l + 1] - levelOffsets[l];
  }

  /// Deterministic summary of the levelization - element counts, per-level
  /// gate counts and an FNV-1a hash of the full schedule - used by the
  /// golden-file test that pins the MC8051 kernel shape.
  std::string dump(const Netlist& nl) const;
};

/// Levelize `nl`'s combinational gates. Throws a ConfigError naming the nets
/// on one offending cycle if the combinational logic is cyclic (works on
/// unvalidated netlists, so it doubles as a diagnostic sharper than
/// validate()'s bare "combinational cycle detected").
Levelization levelize(const Netlist& nl);

}  // namespace fades::netlist
