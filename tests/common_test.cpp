#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bitvector.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace fades::common {
namespace {

// ---------------------------------------------------------------- Rng -----

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    sawLo |= (v == 3);
    sawHi |= (v == 6);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, Uniform01HalfOpenRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(99), parent2(99);
  Rng childA = parent1.fork(5);
  Rng childB = parent2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA(), childB());

  Rng parent3(99);
  Rng other = parent3.fork(6);
  int equal = 0;
  Rng childC = Rng(99).fork(5);
  for (int i = 0; i < 100; ++i) equal += (childC() == other());
  EXPECT_LT(equal, 3);
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng rng(21);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin();
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

// ---------------------------------------------------------- BitVector -----

TEST(BitVector, StartsCleared) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.get(i));
}

TEST(BitVector, FillConstructorKeepsTailZero) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.popcount(), 70u);
  BitVector other(70);
  other.setAll();
  EXPECT_EQ(bv, other);
}

TEST(BitVector, SetGetFlipRoundTrip) {
  BitVector bv(200);
  bv.set(0, true);
  bv.set(63, true);
  bv.set(64, true);
  bv.set(199, true);
  EXPECT_TRUE(bv.get(0));
  EXPECT_TRUE(bv.get(63));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(199));
  EXPECT_EQ(bv.popcount(), 4u);
  bv.flip(63);
  EXPECT_FALSE(bv.get(63));
  bv.flip(62);
  EXPECT_TRUE(bv.get(62));
}

TEST(BitVector, WordAccessRoundTrip) {
  BitVector bv(128);
  bv.setWord(5, 16, 0xBEEF);
  EXPECT_EQ(bv.getWord(5, 16), 0xBEEFu);
  // Neighbouring bits untouched.
  EXPECT_FALSE(bv.get(4));
  EXPECT_FALSE(bv.get(21));
}

TEST(BitVector, WordAccessAcrossWordBoundary) {
  BitVector bv(256);
  bv.setWord(60, 10, 0x3FF);
  EXPECT_EQ(bv.getWord(60, 10), 0x3FFu);
  EXPECT_EQ(bv.popcount(), 10u);
}

TEST(BitVector, ByteExportImportRoundTrip) {
  Rng rng(5);
  BitVector bv(333);
  for (std::size_t i = 0; i < bv.size(); ++i) bv.set(i, rng.coin());
  const auto bytes = bv.exportBytes(17, 200);
  BitVector copy(333);
  copy.importBytes(17, 200, bytes);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(copy.get(17 + i), bv.get(17 + i)) << "bit " << i;
  }
}

TEST(BitVector, DiffFindsExactlyTheFlippedBits) {
  BitVector a(500), b(500);
  b.flip(3);
  b.flip(64);
  b.flip(499);
  const auto d = a.diff(b);
  EXPECT_EQ(d, (std::vector<std::size_t>{3, 64, 499}));
}

TEST(BitVector, CopyBits) {
  BitVector src(64), dst(64);
  src.setWord(0, 8, 0xA5);
  BitVector::copyBits(src, 0, dst, 32, 8);
  EXPECT_EQ(dst.getWord(32, 8), 0xA5u);
  EXPECT_EQ(dst.popcount(), 4u);
}

TEST(BitVector, ToStringRendersBits) {
  BitVector bv(8);
  bv.set(1, true);
  bv.set(2, true);
  EXPECT_EQ(bv.toString(0, 4), "0110");
}

// -------------------------------------------------------------- errors -----

TEST(Error, RequireThrowsWithKind) {
  try {
    require(false, ErrorKind::RoutingError, "net n42 unroutable");
    FAIL() << "expected throw";
  } catch (const FadesError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::RoutingError);
    EXPECT_NE(std::string(e.what()).find("n42"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(require(true, ErrorKind::ConfigError, "unused"));
}

// --------------------------------------------------------------- stats -----

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, SumAccumulatesDirectly) {
  RunningStats s;
  double expect = 0.0;
  for (int i = 0; i < 60000; ++i) {
    const double x = 0.125 * ((i % 3) + 1);  // exact binary fractions
    s.add(x);
    expect += x;
  }
  // Exact equality: the sum is accumulated directly, not reconstructed as
  // mean * n, which would compound Welford rounding over the campaign.
  EXPECT_EQ(s.sum(), expect);
  EXPECT_EQ(s.sum(), 15000.0);  // 20000 triples of 0.125 + 0.25 + 0.375
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, PercentHandlesZeroDenominator) {
  EXPECT_EQ(percent(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
}

TEST(Stats, FixedFormatting) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(10.0, 0), "10");
}

TEST(Stats, RenderTableAligns) {
  const auto t = renderTable({"a", "bbbb"}, {{"xx", "y"}});
  EXPECT_NE(t.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(t.find("| xx | y    |"), std::string::npos);
}

TEST(Stats, FixedHandlesValuesWiderThanStackBuffer) {
  // 1e300 at 3 decimals is 305 characters - far past the 64-byte snprintf
  // buffer; the result must be the full rendering, not a truncation.
  const std::string s = fixed(1e300, 3);
  EXPECT_EQ(s.size(), 305u);
  EXPECT_EQ(s.front(), '1');
  EXPECT_EQ(s.substr(s.size() - 4), ".000");
  EXPECT_EQ(fixed(-1e300, 0).size(), 302u);
  EXPECT_EQ(fixed(2.5, 1), "2.5");  // narrow path unchanged
}

TEST(Stats, RenderTableKeepsExtraRowCells) {
  // Rows wider than the header must keep their extra cells and size the
  // extra columns to the widest cell, not silently drop them.
  const auto t = renderTable({"a"}, {{"x", "wide-cell"}, {"y"}});
  EXPECT_NE(t.find("wide-cell"), std::string::npos);
  EXPECT_NE(t.find("| x | wide-cell |"), std::string::npos);
  EXPECT_NE(t.find("| y |           |"), std::string::npos);
  EXPECT_NE(t.find("| a |           |"), std::string::npos);
}

}  // namespace
}  // namespace fades::common
