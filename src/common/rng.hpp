// Deterministic pseudo-random number generation for fault-injection campaigns.
//
// All randomness in the project flows through Xoshiro256StarStar so that a
// campaign seed fully determines target selection, injection instants and
// indetermination values. Reproducibility is a correctness requirement: the
// golden-run comparison methodology (paper Section 5, results analysis module)
// only makes sense when experiments can be replayed bit-exactly.
#pragma once

#include <cstdint>
#include <limits>

namespace fades::common {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Reference: Vigna, "Further scramblings of Marsaglia's xorshift
/// generators" (public-domain algorithm).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (public domain).
/// Satisfies the std uniform_random_bit_generator concept so it can be used
/// with <random> distributions when needed, though the helpers below cover
/// everything the campaigns require.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 is a precondition violation.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  constexpr std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply; rejection loop runs < 2 iterations in expectation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  constexpr bool coin() { return ((*this)() >> 63) != 0; }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child stream (e.g. one per experiment) so that
  /// experiments can be replayed individually without running predecessors.
  /// NOTE: fork() advances the parent generator, so the derived stream
  /// depends on how many forks preceded it. Campaign runners use the
  /// stateless streamSeed() below instead, which has no such coupling.
  constexpr Xoshiro256StarStar fork(std::uint64_t stream) {
    return Xoshiro256StarStar((*this)() ^ (stream * 0x9e3779b97f4a7c15ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

using Rng = Xoshiro256StarStar;

/// Stateless per-stream seed derivation: hash (seed, stream) into an
/// independent generator seed. A pure function of its arguments, so
/// experiment N of a campaign draws exactly the same faults no matter which
/// worker runs it, in what order, or how many redraws earlier experiments
/// needed - the determinism contract behind sharded campaign execution
/// (merged N-shard results must be bit-identical to the serial run).
constexpr std::uint64_t streamSeed(std::uint64_t seed, std::uint64_t stream) {
  // Two SplitMix64 rounds: the first decorrelates the campaign seed, the
  // second avalanches the stream index into all 64 bits.
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() ^ (stream + 0x632be59bd9b4e019ULL));
  return inner.next();
}

}  // namespace fades::common
