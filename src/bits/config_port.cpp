#include "bits/config_port.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace fades::bits {

using common::ErrorKind;
using common::require;
using fpga::Plane;

std::vector<std::uint8_t> ConfigPort::readLogicFrame(FrameAddr f) {
  auto bytes = dev_.readLogicFrame(f);
  noteRead(bytes.size());
  return bytes;
}

void ConfigPort::writeLogicFrame(FrameAddr f,
                                 std::span<const std::uint8_t> bytes) {
  dev_.writeLogicFrame(f, bytes);
  noteWrite(bytes.size());
}

std::vector<std::uint8_t> ConfigPort::readBramFrame(unsigned block,
                                                    unsigned minor) {
  auto bytes = dev_.readBramFrame(block, minor);
  noteRead(bytes.size());
  return bytes;
}

void ConfigPort::writeBramFrame(unsigned block, unsigned minor,
                                std::span<const std::uint8_t> bytes) {
  dev_.writeBramFrame(block, minor, bytes);
  noteWrite(bytes.size());
}

std::vector<std::uint8_t> ConfigPort::readCaptureFrame(unsigned col) {
  auto bytes = dev_.readCaptureFrame(col);
  noteCapture(bytes.size());
  return bytes;
}

void ConfigPort::writeFullBitstream(const fpga::Bitstream& bs) {
  dev_.writeFullBitstream(bs);
  noteWrite(dev_.layout().totalConfigBytes());
}

fpga::Bitstream ConfigPort::readbackFull() {
  auto bs = dev_.readbackBitstream();
  noteRead(dev_.layout().totalConfigBytes());
  return bs;
}

void ConfigPort::pulseGsr() {
  dev_.pulseGsr();
  noteCommand(8);  // control packet
}

// ---------------------------------------------------------------------------
// Helpers (each does genuine frame traffic)
// ---------------------------------------------------------------------------

std::uint16_t ConfigPort::getLutTable(CbCoord cb) {
  const auto& layout = dev_.layout();
  std::uint16_t table = 0;
  std::size_t bit = layout.cbLutBit(cb, 0);
  unsigned k = 0;
  while (k < 16) {
    const FrameAddr f = layout.frameOfLogicBit(bit);
    const auto bytes = readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    const unsigned inFrame = layout.logicFrameBitCount(f);
    while (k < 16 && bit - first < inFrame) {
      const std::size_t rel = bit - first;
      if ((bytes[rel >> 3] >> (rel & 7)) & 1u) {
        table |= static_cast<std::uint16_t>(1u << k);
      }
      ++k;
      ++bit;
    }
  }
  return table;
}

void ConfigPort::setLutTable(CbCoord cb, std::uint16_t table) {
  const auto& layout = dev_.layout();
  std::size_t bit = layout.cbLutBit(cb, 0);
  unsigned k = 0;
  while (k < 16) {
    const FrameAddr f = layout.frameOfLogicBit(bit);
    auto bytes = readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    const unsigned inFrame = layout.logicFrameBitCount(f);
    while (k < 16 && bit - first < inFrame) {
      const std::size_t rel = bit - first;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
      if ((table >> k) & 1u) {
        bytes[rel >> 3] |= mask;
      } else {
        bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
      }
      ++k;
      ++bit;
    }
    writeLogicFrame(f, bytes);
  }
}

bool ConfigPort::getLogicBit(std::size_t addr) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfLogicBit(addr);
  const auto bytes = readLogicFrame(f);
  const std::size_t rel = addr - layout.logicFrameFirstBit(f);
  return (bytes[rel >> 3] >> (rel & 7)) & 1u;
}

void ConfigPort::rmwLogicBit(std::size_t addr, bool value) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfLogicBit(addr);
  auto bytes = readLogicFrame(f);
  const std::size_t rel = addr - layout.logicFrameFirstBit(f);
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
  if (value) {
    bytes[rel >> 3] |= mask;
  } else {
    bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
  }
  writeLogicFrame(f, bytes);
}

void ConfigPort::setLogicBit(std::size_t addr, bool value) {
  rmwLogicBit(addr, value);
}

unsigned ConfigPort::setLogicBits(
    std::span<const std::pair<std::size_t, bool>> updates) {
  const auto& layout = dev_.layout();
  // Group updates by frame so each frame is transferred exactly once.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<std::size_t, bool>>>
      byFrame;
  for (const auto& u : updates) {
    const FrameAddr f = layout.frameOfLogicBit(u.first);
    byFrame[{f.major, f.minor}].push_back(u);
  }
  for (const auto& [key, list] : byFrame) {
    const FrameAddr f{Plane::Logic, key.first, key.second};
    auto bytes = readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    for (const auto& [addr, value] : list) {
      const std::size_t rel = addr - first;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
      if (value) {
        bytes[rel >> 3] |= mask;
      } else {
        bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
      }
    }
    writeLogicFrame(f, bytes);
  }
  return static_cast<unsigned>(byFrame.size());
}

void ConfigPort::updateCbFields(
    CbCoord cb, std::span<const std::pair<CbField, bool>> fields) {
  std::vector<std::pair<std::size_t, bool>> updates;
  updates.reserve(fields.size());
  for (const auto& [field, value] : fields) {
    updates.emplace_back(dev_.layout().cbFieldBit(cb, field), value);
  }
  setLogicBits(updates);
}

void ConfigPort::setLogicBitsBlind(
    std::span<const std::pair<std::size_t, bool>> updates) {
  const auto& layout = dev_.layout();
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<std::pair<std::size_t, bool>>>
      byFrame;
  for (const auto& u : updates) {
    const FrameAddr f = layout.frameOfLogicBit(u.first);
    byFrame[{f.major, f.minor}].push_back(u);
  }
  for (const auto& [key, list] : byFrame) {
    const FrameAddr f{Plane::Logic, key.first, key.second};
    // Frame contents come from the host-side mirror (== device config).
    auto bytes = dev_.readLogicFrame(f);
    const std::size_t first = layout.logicFrameFirstBit(f);
    for (const auto& [addr, value] : list) {
      const std::size_t rel = addr - first;
      const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
      if (value) {
        bytes[rel >> 3] |= mask;
      } else {
        bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
      }
    }
    writeLogicFrame(f, bytes);
  }
}

void ConfigPort::setLutTableBlind(CbCoord cb, std::uint16_t table) {
  std::vector<std::pair<std::size_t, bool>> updates;
  updates.reserve(16);
  for (unsigned i = 0; i < 16; ++i) {
    updates.emplace_back(dev_.layout().cbLutBit(cb, i), (table >> i) & 1u);
  }
  setLogicBitsBlind(updates);
}

void ConfigPort::updateCbFieldsBlind(
    CbCoord cb, std::span<const std::pair<CbField, bool>> fields) {
  std::vector<std::pair<std::size_t, bool>> updates;
  updates.reserve(fields.size());
  for (const auto& [field, value] : fields) {
    updates.emplace_back(dev_.layout().cbFieldBit(cb, field), value);
  }
  setLogicBitsBlind(updates);
}

bool ConfigPort::getCbFieldBit(CbCoord cb, CbField field) {
  return getLogicBit(dev_.layout().cbFieldBit(cb, field));
}

void ConfigPort::setCbFieldBit(CbCoord cb, CbField field, bool value) {
  rmwLogicBit(dev_.layout().cbFieldBit(cb, field), value);
}

bool ConfigPort::readFfState(CbCoord cb) {
  const auto bytes = readCaptureFrame(cb.x);
  return (bytes[cb.y >> 3] >> (cb.y & 7)) & 1u;
}

bool ConfigPort::getBramBit(unsigned block, unsigned bit) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfBramBit(block, bit);
  const auto bytes = readBramFrame(block, f.minor);
  const unsigned rel = bit - f.minor * layout.frameBits();
  return (bytes[rel >> 3] >> (rel & 7)) & 1u;
}

void ConfigPort::setBramBit(unsigned block, unsigned bit, bool value) {
  const auto& layout = dev_.layout();
  const FrameAddr f = layout.frameOfBramBit(block, bit);
  auto bytes = readBramFrame(block, f.minor);
  const unsigned rel = bit - f.minor * layout.frameBits();
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (rel & 7));
  if (value) {
    bytes[rel >> 3] |= mask;
  } else {
    bytes[rel >> 3] &= static_cast<std::uint8_t>(~mask);
  }
  writeBramFrame(block, f.minor, bytes);
}

}  // namespace fades::bits
