#include "obs/csv.hpp"

namespace fades::obs {

std::string csvQuote(std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csvLine(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out += ',';
    out += csvQuote(cells[i]);
  }
  out += '\n';
  return out;
}

}  // namespace fades::obs
