// Campaign job specification for the distributed service.
//
// A JobSpec names everything a worker needs to rebuild the exact campaign
// system the submitter meant: the workload (which fixes netlist and run
// length), the injection tool and engine, the campaign spec proper, and the
// execution knobs that are allowed to vary results (keepRecords changes the
// artifact's record list, so it is part of the job identity; frame caching
// and jobs counts are not - they only change wall-clock - and therefore do
// not appear here).
//
// The fingerprint is the FNV-1a64 of the spec's canonical JSON dump. It is
// the job's identity everywhere: the journal filename in the store, the key
// workers cache built systems under, and the check that a lease and its
// completion talk about the same campaign. Everything a worker computes is a
// pure function of (JobSpec, experiment index), which is what makes the
// coordinator's merged artifact byte-identical to a single-process
// `campaign_8051 --jobs 1` run of the same spec: both paths build their
// engines through the same buildSystem() below.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "campaign/parallel.hpp"
#include "campaign/prune_plan.hpp"
#include "campaign/types.hpp"
#include "netlist/netlist.hpp"
#include "obs/json.hpp"
#include "synth/implement.hpp"

namespace fades::service {

struct JobSpec {
  /// Injector: "fades" (run-time reconfiguration), "vfit" (simulator
  /// commands) or "autonomous" (compiled-in injection support).
  std::string tool = "fades";
  /// Simulation engine for vfit/autonomous: "event" or "compiled". Ignored
  /// (and rejected by validate()) for the fades tool.
  std::string engine = "event";
  /// Workload/system: "bubblesort6" (MC8051 + 6-element bubblesort, the
  /// paper's set-up) or "demo" (a tiny multi-unit design for fast tests).
  std::string workload = "bubblesort6";
  /// Model, target class, unit, duration band, experiment count and seed.
  campaign::CampaignSpec spec;
  /// Link-fault rate for the fades tool's board link (0 = reliable link).
  double linkFaultRate = 0.0;
  /// Keep per-experiment records (and, for MC8051 workloads, attach the
  /// golden-run instruction trace for PC attribution).
  bool keepRecords = true;
  /// Liveness-based fault-list pruning: workers fold each campaign through
  /// a fades.prune/1 plan (derived deterministically from this spec), run
  /// one representative per equivalence class and synthesize the collapsed
  /// members from it. Changes the artifact's records (pruned members carry
  /// `pruned_from`), so it is part of the job identity; serialized only
  /// when set, keeping every pre-pruning fingerprint stable.
  bool prune = false;
  /// Artifact name; empty derives the campaign_8051 convention
  /// (model_targets_unit) via defaultName().
  std::string name;
};

obs::Json toJson(const JobSpec& job);
bool jobSpecFromJson(const obs::Json& j, JobSpec& out,
                     std::string* error = nullptr);

/// Raises InvalidArgument on unknown tool/engine/workload names, a zero
/// experiment count, or inconsistent combinations (--engine with fades,
/// link faults without fades).
void validate(const JobSpec& job);

/// The campaign_8051 artifact naming convention: model_targets_unit using
/// the CLI argument spellings (e.g. "bitflip_ff_any").
std::string defaultName(const JobSpec& job);

/// Canonical job identity: fnv1a64Hex of toJson(job).dump().
std::string fingerprint(const JobSpec& job);

/// A fully built campaign system. Owns the netlist (and, for the fades
/// tool, the implementation) that the engine factory captures by reference,
/// so keep the system alive as long as engines built from `factory` run.
struct CampaignSystem {
  JobSpec job;
  std::uint64_t runCycles = 0;
  netlist::Netlist netlist;
  std::optional<synth::Implementation> impl;
  campaign::EngineFactory factory;
  /// Output ports defining Failure for this workload - what the tools
  /// observe, and what the prune analysis treats as externally visible.
  std::vector<std::string> observedOutputs;
};

/// Wall-clock-only build knobs. Deliberately OUTSIDE the JobSpec (and its
/// fingerprint): nothing here may change outcomes, only how fast the same
/// outcomes are produced.
struct BuildKnobs {
  /// Session-scoped frame transaction cache of the fades configuration port.
  bool sessionFrameCache = true;
};

/// Build the system for `job` (validate() first). Both the distributed
/// worker and the single-process reference CLI construct engines through
/// this one function, so "distributed equals single-process byte-for-byte"
/// holds by construction rather than by parallel maintenance of two setups.
std::shared_ptr<CampaignSystem> buildSystem(const JobSpec& job,
                                            const BuildKnobs& knobs = {});

/// The merged fades.run/1 artifact text for a completed campaign: exactly
/// what RunArtifact::writeJson produces for toRunArtifact(result, name,
/// includeMetrics=false) - the byte-identity target of the service.
std::string artifactText(const JobSpec& job,
                         const campaign::CampaignResult& result);

/// The single plan-construction path for job.prune: record the golden trace
/// of the system's workload and fold the campaign through
/// prune::buildPlan with the tool's own decoder/namer. A pure function of
/// the JobSpec, so every worker (and the single-process CLI) derives the
/// identical plan. Requires tool fades or vfit.
campaign::PrunePlan buildPrunePlan(const CampaignSystem& sys);

}  // namespace fades::service
