// Levelized bit-parallel compiled simulator.
//
// Every net carries a 64-bit word: bit L is the net's value in machine
// (lane) L. One straight-line pass over the levelized gate schedule
// evaluates 64 independent simulations at once - the classic fast
// fault-grading layout (Lopez-Ongil et al.'s autonomous emulation reaches
// its speedups the same way: amortize the model evaluation across many
// concurrent fault machines). Lane 0 is reserved for the golden machine;
// lanes 1-63 host faulty machines perturbed through per-lane injection
// masks on gate outputs (pulse inversion / indetermination force), flop
// state and RAM cells.
//
// The scalar Engine interface drives all lanes in lockstep and reads
// lane 0, which makes CompiledSimulator a drop-in replacement for the
// event-driven Simulator - the CompiledEquivalence suite proves identity
// per cycle and per net. The lane API below is what the VFIT wave campaign
// runner uses to pack 63 experiments into one pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "sim/engine.hpp"

namespace fades::sim {

using netlist::FlopId;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;

class CompiledSimulator final : public Engine {
 public:
  /// Lanes per pass: one golden + 63 fault machines.
  static constexpr unsigned kLanes = 64;
  using Word = std::uint64_t;

  /// The netlist must outlive the simulator and must be validated
  /// (levelization re-checks acyclicity and raises ConfigError with the
  /// offending nets otherwise).
  explicit CompiledSimulator(const Netlist& netlist);

  // --- Engine interface (scalar view: all lanes in lockstep, reads are
  // lane 0) ---------------------------------------------------------------
  void reset() override;
  void setInput(const std::string& portName, std::uint64_t value) override;
  std::uint64_t portValue(const std::string& outputPortName) const override;
  bool netValue(NetId id) const override { return values_[id.value] & 1; }
  std::uint64_t busValue(const std::vector<NetId>& bus) const override;
  bool flopState(FlopId id) const override { return flopW_[id.value] & 1; }
  std::uint64_t ramWord(RamId id, std::size_t row) const override {
    return ramWordLane(id, row, 0);
  }
  void settle() override;
  void step() override;
  void run(std::uint64_t cycles) override;
  std::uint64_t cycle() const override { return cycle_; }
  void force(NetId id, bool value) override;
  void release(NetId id) override;
  bool isForced(NetId id) const override {
    return (forceMask_[id.value] & 1) != 0;
  }
  void depositFlop(FlopId id, bool value) override;
  void depositRam(RamId id, std::size_t row, std::uint64_t value) override;
  /// Kernel gate slots evaluated + state updates. Not comparable with the
  /// event-driven count (a compiled pass always touches every gate).
  std::uint64_t eventsProcessed() const override { return events_; }

  // --- lane API (per-bit injection masks) --------------------------------
  // `laneMask` selects the lanes an operation touches; bit 0 is the golden
  // lane and is never set by campaign code (asserted in the wave runner).

  /// Deposit per-lane flop state: lane L of `id` becomes bit L of
  /// `laneValues` wherever `laneMask` selects it; the new state propagates
  /// to the Q net immediately (event-driven depositFlop semantics).
  void depositFlopLanes(FlopId id, Word laneMask, Word laneValues);
  /// Flip flop state in the selected lanes (bit-flip deposit of !state).
  void xorFlopLanes(FlopId id, Word laneMask);
  /// Flip one stored RAM bit in the selected lanes. Does not touch the
  /// registered read port, matching depositRam.
  void xorRamBitLanes(RamId id, std::size_t row, unsigned bit, Word laneMask);
  /// Persistent inversion mask on a net: selected lanes see the complement
  /// of the driven value until cleared. Equivalent to VFIT's per-cycle
  /// release + force(!value) pulse loop (the observable points - outputs,
  /// flop D pins, RAM ports - always sample a settled complement).
  void xorNetLanes(NetId id, Word laneMask);
  void clearXorNetLanes(NetId id, Word laneMask);
  /// Per-lane force: selected lanes of `id` are pinned to the matching bits
  /// of `laneValues` regardless of the driver, until releaseLanes.
  void forceLanes(NetId id, Word laneMask, Word laneValues);
  void releaseLanes(NetId id, Word laneMask);

  // --- lane observation ---------------------------------------------------
  Word netWord(NetId id) const { return values_[id.value]; }
  Word flopWord(FlopId id) const { return flopW_[id.value]; }
  bool netValueLane(NetId id, unsigned lane) const {
    return (values_[id.value] >> lane) & 1;
  }
  bool flopStateLane(FlopId id, unsigned lane) const {
    return (flopW_[id.value] >> lane) & 1;
  }
  std::uint64_t ramWordLane(RamId id, std::size_t row, unsigned lane) const;
  std::uint64_t portValueLane(const std::string& outputPortName,
                              unsigned lane) const;

  const netlist::Levelization& levels() const { return levels_; }

 private:
  // Straight-line kernel step: one gate with pre-resolved operand slots.
  // kNoNet operands read the hardwired zero word (matches the event-driven
  // engine's treatment of invalid input ids).
  struct Step {
    netlist::GateOp op;
    std::uint32_t in0, in1, in2;
    std::uint32_t out;
  };
  static constexpr std::uint32_t kNoNet = 0xffffffffu;

  /// Perturbation blend: inversion mask applies to the driven word, force
  /// overrides everything (the event-driven precedence).
  Word blend(std::uint32_t net, Word driven) const;
  /// Store a freshly driven word, routing it through blend() when the net
  /// carries any perturbation (and keeping driven_ current for re-blends).
  void writeNet(std::uint32_t net, Word driven);
  void markPerturbed(std::uint32_t net);
  /// Recompute the visible value from the remembered driven word after a
  /// mask change; drops the perturbed flag when no mask remains.
  void reblend(std::uint32_t net);
  void applyRamOutput(std::uint32_t ramIndex);
  Word broadcast(bool value) const { return value ? ~Word{0} : Word{0}; }

  const Netlist& nl_;
  netlist::Levelization levels_;
  std::vector<Step> steps_;

  std::vector<Word> values_;     // per net, one bit per lane
  std::vector<Word> driven_;     // per net: pre-blend value (perturbed nets)
  std::vector<Word> flopW_;      // per flop
  // Per-RAM cell storage, one word per (row, data bit): lane L's contents
  // of bit b of row r sit in bit L of ramBits_[ram][r * dataBits + b].
  std::vector<std::vector<Word>> ramBits_;
  std::vector<std::vector<Word>> ramLatch_;  // registered read port, per bit

  std::vector<Word> xorMask_;    // per net: lanes seeing the complement
  std::vector<Word> forceMask_;  // per net: lanes pinned by force
  std::vector<Word> forceVal_;   // per net: pinned values
  std::vector<std::uint8_t> perturbed_;  // per net: any mask nonzero

  // Scratch for step()'s sample phase, kept per RAM so the commit phase
  // can consume it after all sampling finished.
  struct RamScratch {
    std::vector<Word> read;           // per data bit: read-first values
    std::vector<Word> din;            // per data bit: write data
    std::vector<std::uint32_t> rows;  // per lane: addressed row (divergent)
    Word we = 0;
    bool uniform = true;
    std::uint32_t row = 0;  // single row when uniform
  };
  std::vector<Word> nextFlop_;
  std::vector<RamScratch> ramScratch_;

  bool dirty_ = true;   // combinational state needs a settle pass
  std::uint64_t cycle_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace fades::sim
