// JBits-style run-time reconfiguration interface.
//
// The paper's FADES tool manipulates the FPGA through the JBits package and
// the board's XHWIF interface: read a configuration frame back, modify bits,
// write the frame again, or download a complete configuration file. The
// emulation-time results of Section 6.2 are dominated by how much data moves
// across this interface, so ConfigPort meters every byte and every operation;
// the cost model in src/core converts the meter into modeled seconds.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "fpga/device.hpp"
#include "obs/metrics.hpp"

namespace fades::bits {

using fpga::CbCoord;
using fpga::CbField;
using fpga::Device;
using fpga::FrameAddr;

/// Accumulated transfer statistics across the host <-> board link.
struct TransferMeter {
  std::uint64_t bytesToDevice = 0;
  std::uint64_t bytesFromDevice = 0;
  std::uint32_t writeOps = 0;
  std::uint32_t readOps = 0;
  std::uint32_t captureOps = 0;  // state read-back (capture plane) operations
  std::uint32_t commandOps = 0;  // GSR pulses and similar control packets
  std::uint32_t sessions = 0;    // reconfiguration sessions (driver round-trips)

  // Unreliable-link accounting. Kept separate from the logical-operation
  // fields above so that BoardLink::seconds() - and therefore modeled
  // seconds, outcomes and artifacts - stays bit-identical to a fault-free
  // run. Retry overhead is observable here and in the metrics registry, not
  // in the experiment's modeled budget.
  std::uint32_t linkFaults = 0;       // faulted link transfer attempts
  std::uint32_t retryOps = 0;         // re-issued transfer attempts
  std::uint64_t retryBytes = 0;       // bytes moved by re-issued attempts
  double retryBackoffSeconds = 0.0;   // modeled backoff sleep time

  void reset() { *this = TransferMeter{}; }
  TransferMeter& operator+=(const TransferMeter& o) {
    bytesToDevice += o.bytesToDevice;
    bytesFromDevice += o.bytesFromDevice;
    writeOps += o.writeOps;
    readOps += o.readOps;
    captureOps += o.captureOps;
    commandOps += o.commandOps;
    sessions += o.sessions;
    linkFaults += o.linkFaults;
    retryOps += o.retryOps;
    retryBytes += o.retryBytes;
    retryBackoffSeconds += o.retryBackoffSeconds;
    return *this;
  }
};

/// Deterministic unreliable-link model. Each link transfer attempt draws
/// from a dedicated fault stream (seeded via seedLinkStream(), never the
/// experiment RNG): reads/captures can come back with a CRC mismatch,
/// writes/commands can fail transiently, and any operation can hit a
/// stuck/timeout condition. Faulted attempts are retried with bounded
/// exponential backoff per RetryPolicy; a fault surviving the whole retry
/// budget raises common::ErrorKind::LinkError.
struct LinkFaultOptions {
  double readCrcRate = 0.0;   // P(readback CRC mismatch) per read/capture
  double writeFailRate = 0.0; // P(transient write failure) per write/command
  double timeoutRate = 0.0;   // P(stuck link / timeout) per any transfer
  bool enabled() const {
    return readCrcRate > 0.0 || writeFailRate > 0.0 || timeoutRate > 0.0;
  }
};

/// Write-verify-retry policy for faulted link transfers. The backoff is
/// modeled (charged to TransferMeter::retryBackoffSeconds), not slept.
struct RetryPolicy {
  unsigned maxRetries = 8;           // re-issues per operation before LinkError
  double backoffBaseSeconds = 0.002; // first retry delay
  double backoffFactor = 2.0;        // exponential growth per retry
  double backoffCapSeconds = 0.250;  // bound on a single delay
};

/// Transfer-cost model for the host <-> prototyping-board link (the paper's
/// RC1000-PP + XHWIF). Captures per-operation driver latency, sustained
/// bandwidth, the fixed cost of opening a reconfiguration session, and the
/// extra latency of read-back capture (which on Virtex-class parts flushes
/// the capture plane before data can move).
struct BoardLink {
  // Calibrated against the paper's Table 2 decomposition (see
  // EXPERIMENTS.md): the per-fault means they report separate cleanly into
  // a shared floor (reset + trace + state read-back + host bookkeeping),
  // per-frame operation latency, capture-trigger latency, and session
  // (driver round-trip) cost, at a SelectMAP-class sustained bandwidth.
  double bytesPerSecond = 3.5e6;     // sustained configuration bandwidth
  double perOpSeconds = 0.010;       // per read/write/command round-trip
  double perSessionSeconds = 0.060;  // JBits/driver session setup+teardown
  double perCaptureSeconds = 0.050;  // state read-back trigger latency

  double seconds(const TransferMeter& m) const {
    return static_cast<double>(m.bytesToDevice + m.bytesFromDevice) /
               bytesPerSecond +
           perOpSeconds * (m.writeOps + m.readOps + m.commandOps) +
           perCaptureSeconds * m.captureOps +
           perSessionSeconds * m.sessions;
  }
};

// Every meter mutation is mirrored into the process-wide metrics registry
// (config.bytes_written, config.read_ops, ...), so campaign-scale traffic
// shows up in metrics snapshots and run artifacts without any extra
// plumbing. The per-port TransferMeter keeps per-experiment resolution; the
// registry keeps the process totals.
//
// Session-scoped frame transaction cache: with the cache enabled, frames
// read between beginSession() and endSession() are held in a host-side
// shadow keyed by frame address, repeated reads are served from the shadow,
// and dirty frames are written back coalesced at sync points. The
// TransferMeter still charges every LOGICAL operation exactly as the
// uncached port would - the cache changes host wall-clock only, never
// modeled seconds, outcomes or artifacts. Shadow occupancy is reported via
// config.cache_hits / config.cache_misses / config.cache_frames_flushed /
// config.cache_evictions.
class ConfigPort {
 public:
  explicit ConfigPort(Device& device)
      : dev_(device),
        cBytesWritten_(obs::Registry::global().counter("config.bytes_written")),
        cBytesRead_(obs::Registry::global().counter("config.bytes_read")),
        cWriteOps_(obs::Registry::global().counter("config.write_ops")),
        cReadOps_(obs::Registry::global().counter("config.read_ops")),
        cCaptureOps_(obs::Registry::global().counter("config.capture_ops")),
        cCommandOps_(obs::Registry::global().counter("config.command_ops")),
        cSessions_(obs::Registry::global().counter("config.sessions")),
        cCacheHits_(obs::Registry::global().counter("config.cache_hits")),
        cCacheMisses_(obs::Registry::global().counter("config.cache_misses")),
        cCacheFlushed_(
            obs::Registry::global().counter("config.cache_frames_flushed")),
        cCacheEvicted_(
            obs::Registry::global().counter("config.cache_evictions")),
        cLinkFaults_(
            obs::Registry::global().counter("config.link_faults_injected")),
        cRetries_(obs::Registry::global().counter("config.retries")) {}

  Device& device() { return dev_; }
  const TransferMeter& meter() const { return meter_; }
  void resetMeter() { meter_.reset(); }

  /// Enable/disable the deterministic unreliable-link model. Rates of zero
  /// (the default) disable it entirely; the fault-free fast path costs one
  /// branch per operation.
  void setLinkFaults(const LinkFaultOptions& opts) {
    linkFaults_ = opts;
    linkActive_ = opts.enabled();
  }
  const LinkFaultOptions& linkFaults() const { return linkFaults_; }
  void setRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retryPolicy() const { return retry_; }
  /// Re-seed the link fault stream. Campaign runners call this once per
  /// (experiment index, rerun attempt) so the fault pattern an experiment
  /// sees is a pure function of the campaign spec - independent of shard
  /// count, execution order and the frame cache (which never changes the
  /// logical operation sequence).
  void seedLinkStream(std::uint64_t seed) { linkRng_ = common::Rng(seed); }

  /// Enable the session-scoped frame transaction cache. Disabling flushes
  /// and drops any open shadow first, so the device is always current.
  void setCacheEnabled(bool on);
  bool cacheEnabled() const { return cacheEnabled_; }

  /// Mark the start of a reconfiguration session (one injector action such
  /// as "inject fault" or "remove fault" is one session). With the cache
  /// enabled this also opens a fresh frame transaction.
  void beginSession() {
    ++meter_.sessions;
    cSessions_.inc();
    if (cacheEnabled_) {
      sync();
      inTransaction_ = true;
    }
  }

  /// Close the current frame transaction: write dirty frames back coalesced
  /// and drop the volatile shadows. Safe (and free) when no transaction is
  /// open.
  void endSession() {
    sync();
    inTransaction_ = false;
  }
  /// Alias for callers that think in commit/rollback terms.
  void commit() { endSession(); }

  /// Abandon the current frame transaction WITHOUT flushing dirty frames.
  /// Error-recovery only: after a LinkError mid-session the shadow may hold
  /// half-applied writes that must not reach the device. The device is left
  /// with whatever the failed session managed to write before the fault -
  /// exactly the partial state a real flaky link produces - so callers must
  /// re-download or rebuild the configuration before trusting it.
  void dropSession() {
    if (!shadow_.empty()) {
      cCacheEvicted_.add(shadow_.size());
      shadow_.clear();
    }
    inTransaction_ = false;
  }

  /// Flush dirty shadow frames to the device, keeping the transaction open.
  /// Charges nothing: the logical operations that dirtied the frames were
  /// already metered. Capture and BRAM-content shadows are dropped (they
  /// mirror run-time state); clean logic-plane shadows are retained, because
  /// the logic configuration only changes through this port - callers that
  /// write logic bits directly on the Device must call invalidate().
  void sync();

  /// sync() + drop every shadow, retained logic frames included. Required
  /// after mutating the logic configuration plane behind the port's back
  /// (direct Device::setLogicBit writes, external bitstream loads).
  void invalidate();

  /// sync() + Device::settle(): every configuration change made through the
  /// port is guaranteed visible to the emulated fabric afterwards.
  void settle() {
    sync();
    dev_.settle();
  }

  // --- frame-level transfers --------------------------------------------
  std::vector<std::uint8_t> readLogicFrame(FrameAddr f);
  void writeLogicFrame(FrameAddr f, std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> readBramFrame(unsigned block, unsigned minor);
  void writeBramFrame(unsigned block, unsigned minor,
                      std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> readCaptureFrame(unsigned col);

  void writeFullBitstream(const fpga::Bitstream& bs);
  fpga::Bitstream readbackFull();

  void pulseGsr();

  // --- JBits-style convenience helpers ------------------------------------
  // Each helper performs real frame traffic (read-modify-write), so the
  // meter reflects what the operation would actually cost on hardware.

  std::uint16_t getLutTable(CbCoord cb);
  void setLutTable(CbCoord cb, std::uint16_t table);
  bool getCbFieldBit(CbCoord cb, CbField field);
  void setCbFieldBit(CbCoord cb, CbField field, bool value);
  /// Live state of one flip-flop via the capture plane.
  bool readFfState(CbCoord cb);
  /// Read or flip one stored memory-block bit via plane-B frames.
  bool getBramBit(unsigned block, unsigned bit);
  void setBramBit(unsigned block, unsigned bit, bool value);
  /// Set or clear an arbitrary plane-A configuration bit (used by routing
  /// faults to toggle individual pass transistors).
  void setLogicBit(std::size_t addr, bool value);
  bool getLogicBit(std::size_t addr);
  /// Batched plane-A bit update: one read-modify-write PER TOUCHED FRAME,
  /// the way a real tool coalesces JBits updates. Returns frames written.
  unsigned setLogicBits(
      std::span<const std::pair<std::size_t, bool>> updates);
  /// Update several CB fields of one block with a single read-modify-write.
  void updateCbFields(
      CbCoord cb,
      std::span<const std::pair<CbField, bool>> fields);

  // --- mirror-based (blind) writes -----------------------------------------
  // The tool generated the bitstream, so it holds a host-side mirror of the
  // configuration; writes that need no fresh device data (e.g. the
  // randomizer-driven indetermination values of Section 4.4) can skip the
  // read-back half of the read-modify-write.
  void setLutTableBlind(CbCoord cb, std::uint16_t table);
  void updateCbFieldsBlind(
      CbCoord cb, std::span<const std::pair<CbField, bool>> fields);
  void setLogicBitsBlind(
      std::span<const std::pair<std::size_t, bool>> updates);

  // --- pure accounting -----------------------------------------------------
  // Charge the meter for traffic whose effect is handled elsewhere (e.g. the
  // full-bitstream fallback download of the delay injector, or the modeled
  // re-initialization between experiments when the host replays state).
  void chargeWrite(std::uint64_t bytes) { noteWrite(bytes); }
  void chargeRead(std::uint64_t bytes) { noteRead(bytes); }
  void chargeCapture(std::uint64_t bytes) { noteCapture(bytes); }
  void chargeCommand() { noteCommand(8); }
  void chargeFullImage() { chargeWrite(dev_.layout().totalConfigBytes()); }

 private:
  /// Read-modify-write one plane-A bit through its containing frame.
  void rmwLogicBit(std::size_t addr, bool value);

  // --- frame transaction shadow --------------------------------------------
  // Keyed by (plane, major, minor); std::map so the coalesced write-back at
  // sync() walks frames in deterministic address order.
  using FrameKey = std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>;
  struct ShadowFrame {
    std::vector<std::uint8_t> bytes;  // pending frame image
    /// Device content when the frame was first shadowed (refreshed at each
    /// flush). Lets sync() write back differentially - only changed bits
    /// travel to the Device - and turns writes that restore the original
    /// content into no-ops.
    std::vector<std::uint8_t> orig;
    bool dirty = false;
  };

  bool shadowActive() const { return cacheEnabled_ && inTransaction_; }
  static FrameKey logicKey(FrameAddr f) {
    return {static_cast<std::uint8_t>(fpga::Plane::Logic), f.major, f.minor};
  }
  static FrameKey bramKey(unsigned block, unsigned minor) {
    return {static_cast<std::uint8_t>(fpga::Plane::BramContent), block, minor};
  }
  static FrameKey captureKey(unsigned col) {
    return {static_cast<std::uint8_t>(fpga::Plane::Capture), col, 0};
  }
  /// Shadow entry for `key`, populated from the device on first touch.
  /// Counts config.cache_hits / config.cache_misses.
  ShadowFrame& shadowFor(const FrameKey& key);
  /// Store a full frame image in the shadow and mark it dirty, zeroing the
  /// pad bits past `payloadBits` so shadow reads match device read-back.
  void shadowStore(const FrameKey& key, std::span<const std::uint8_t> bytes,
                   unsigned payloadBits);
  /// Unmetered host-mirror frame read used by the blind helpers: sees
  /// pending shadow writes when a transaction is open.
  std::vector<std::uint8_t> mirrorLogicFrame(FrameAddr f);

  // Unreliable-link attempt loop: draws from the dedicated link fault
  // stream, charges retries to the retry-only meter fields, raises
  // LinkError once the retry budget is spent. Called before the successful
  // attempt is accounted, so a metered operation is always one that (after
  // zero or more modeled retries) completed.
  enum class LinkOp { Write, Read, Capture, Command };
  void linkTransfer(LinkOp op, std::uint64_t bytes);

  // Meter + registry accounting for one operation of each class.
  void noteWrite(std::uint64_t bytes) {
    if (linkActive_) linkTransfer(LinkOp::Write, bytes);
    ++meter_.writeOps;
    meter_.bytesToDevice += bytes;
    cWriteOps_.inc();
    cBytesWritten_.add(bytes);
  }
  void noteRead(std::uint64_t bytes) {
    if (linkActive_) linkTransfer(LinkOp::Read, bytes);
    ++meter_.readOps;
    meter_.bytesFromDevice += bytes;
    cReadOps_.inc();
    cBytesRead_.add(bytes);
  }
  void noteCapture(std::uint64_t bytes) {
    if (linkActive_) linkTransfer(LinkOp::Capture, bytes);
    ++meter_.captureOps;
    meter_.bytesFromDevice += bytes;
    cCaptureOps_.inc();
    cBytesRead_.add(bytes);
  }
  void noteCommand(std::uint64_t bytes) {
    if (linkActive_) linkTransfer(LinkOp::Command, bytes);
    ++meter_.commandOps;
    meter_.bytesToDevice += bytes;
    cCommandOps_.inc();
    cBytesWritten_.add(bytes);
  }

  Device& dev_;
  TransferMeter meter_;
  bool cacheEnabled_ = false;
  bool inTransaction_ = false;
  std::map<FrameKey, ShadowFrame> shadow_;
  bool linkActive_ = false;
  LinkFaultOptions linkFaults_;
  RetryPolicy retry_;
  common::Rng linkRng_{0};
  obs::Counter& cBytesWritten_;
  obs::Counter& cBytesRead_;
  obs::Counter& cWriteOps_;
  obs::Counter& cReadOps_;
  obs::Counter& cCaptureOps_;
  obs::Counter& cCommandOps_;
  obs::Counter& cSessions_;
  obs::Counter& cCacheHits_;
  obs::Counter& cCacheMisses_;
  obs::Counter& cCacheFlushed_;
  obs::Counter& cCacheEvicted_;
  obs::Counter& cLinkFaults_;
  obs::Counter& cRetries_;
};

}  // namespace fades::bits
