# Empty compiler generated dependencies file for test_crosstool.
# This may be replaced when dependencies are built.
