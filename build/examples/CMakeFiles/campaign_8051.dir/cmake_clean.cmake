file(REMOVE_RECURSE
  "CMakeFiles/campaign_8051.dir/campaign_8051.cpp.o"
  "CMakeFiles/campaign_8051.dir/campaign_8051.cpp.o.d"
  "campaign_8051"
  "campaign_8051.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_8051.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
