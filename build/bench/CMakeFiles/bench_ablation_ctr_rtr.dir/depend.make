# Empty dependencies file for bench_ablation_ctr_rtr.
# This may be replaced when dependencies are built.
