file(REMOVE_RECURSE
  "CMakeFiles/fades_synth.dir/implement.cpp.o"
  "CMakeFiles/fades_synth.dir/implement.cpp.o.d"
  "CMakeFiles/fades_synth.dir/instrument.cpp.o"
  "CMakeFiles/fades_synth.dir/instrument.cpp.o.d"
  "CMakeFiles/fades_synth.dir/place.cpp.o"
  "CMakeFiles/fades_synth.dir/place.cpp.o.d"
  "CMakeFiles/fades_synth.dir/route.cpp.o"
  "CMakeFiles/fades_synth.dir/route.cpp.o.d"
  "CMakeFiles/fades_synth.dir/techmap.cpp.o"
  "CMakeFiles/fades_synth.dir/techmap.cpp.o.d"
  "libfades_synth.a"
  "libfades_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
