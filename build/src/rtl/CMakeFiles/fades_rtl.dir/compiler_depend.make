# Empty compiler generated dependencies file for fades_rtl.
# This may be replaced when dependencies are built.
