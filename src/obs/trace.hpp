// RAII wall-clock trace spans with Chrome trace_event export.
//
//   { obs::Span s{"inject", {{"model", "pulse"}}}; ... }
//
// records one complete ("ph":"X") event into a bounded ring buffer; the
// buffer serializes to the Chrome trace-event JSON format, so a campaign's
// timeline can be opened directly in chrome://tracing or Perfetto. Tracing
// is on by default (two clock reads plus one mutexed ring-buffer store per
// span); FADES_TRACE=0 disables it process-wide.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace fades::obs {

struct SpanArg {
  std::string key;
  std::string value;
};

struct SpanRecord {
  std::string name;
  std::uint64_t beginMicros = 0;  // since process start (steady clock)
  std::uint64_t durMicros = 0;
  std::uint32_t tid = 0;
  std::vector<SpanArg> args;
};

class TraceBuffer {
 public:
  /// Process-wide buffer; enabled unless FADES_TRACE=0.
  static TraceBuffer& global();

  explicit TraceBuffer(std::size_t capacity = 65536);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void record(SpanRecord record);

  std::size_t size() const;
  /// Events recorded but evicted by the ring buffer.
  std::uint64_t dropped() const;
  void clear();

  /// Buffered spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} - the Chrome
  /// trace-event JSON object format.
  Json chromeTraceJson() const;

  /// Microseconds since process start on the span clock (steady).
  static std::uint64_t nowMicros();

 private:
  // Atomic: toggled while other threads record spans (the ring itself is
  // guarded by mu_, but the enabled check happens outside the lock).
  std::atomic<bool> enabled_{true};
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;     // ring insertion cursor once full
  std::uint64_t total_ = 0;  // records ever seen
};

/// RAII span: construction stamps the begin time, destruction records the
/// completed event. Cheap no-op while tracing is disabled.
class Span {
 public:
  explicit Span(std::string name,
                std::initializer_list<std::pair<std::string, std::string>>
                    args = {},
                TraceBuffer& buffer = TraceBuffer::global());
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attach or update an argument after construction.
  void setArg(const std::string& key, std::string value);

 private:
  TraceBuffer& buffer_;
  SpanRecord record_;
  bool active_ = false;
};

}  // namespace fades::obs
