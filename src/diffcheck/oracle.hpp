// Four-way differential oracle: FADES emulation vs VFIT simulation vs the
// autonomous-emulation backend vs the golden ISS reference.
//
// checkCase() rebuilds a case's design, implements it, runs the identical
// injection campaign through the tools (over explicitly aligned target
// pools where a bit-level correspondence exists) and applies structural
// agreement rules:
//
//   golden.trace-agree     fault-free FADES and VFIT traces match word-for-word
//   golden.iss-agree       the emulated core's final port word matches the ISS
//   golden.autonomous-agree the autonomous instrumentation is transparent:
//                          with controls at 0 the instrumented model's trace
//                          equals the golden run cycle-for-cycle
//   draw.agree             aligned campaigns draw the same (cycle, duration)
//   outcome.bitflip-agree  bit-flips on FFs / memory bits classify identically
//   outcome.autonomous-agree every autonomous experiment matches VFIT's
//                          draw, target and classification field-for-field
//   cost.decomposition     modeledSeconds == config + workload + host exactly,
//                          all components and meter readings non-negative
//   cost.workload          workload seconds = runCycles / fpgaClockHz exactly
//   cost.autonomous-decomposition same exact-sum rule for the autonomous
//                          meters, plus zero configuration bytes moved
//   run.deterministic      re-running an experiment is bit-identical
//   retry.exclusion        a faulty board link never changes outcomes or cost
//   tally.consistent       outcome tallies sum to the experiment count
//
// Exact per-experiment outcome equality against FADES is only asserted where
// the fault semantics is exact on both sides (bit-flips; the paper's Table 3
// shows pulse / indetermination populations legitimately differ between the
// device-level and the model-level view, and VFIT cannot inject delays).
// Autonomous-vs-VFIT agreement is asserted for EVERY supported model: the
// two share the fault semantics by construction, so any divergence is a bug.
#pragma once

#include <string>
#include <vector>

#include "campaign/types.hpp"
#include "diffcheck/case_spec.hpp"
#include "obs/json.hpp"
#include "sim/engine.hpp"

namespace fades::diffcheck {

/// One failed agreement rule. `rule` is a stable identifier (the shrinker
/// reduces a case while preserving the rule id); `detail` is diagnostics.
struct Violation {
  std::string rule;
  std::string detail;

  obs::Json toJson() const;
};

struct OracleOptions {
  /// Re-run experiment 0 and require a bit-identical ExperimentOutcome.
  bool checkDeterminism = true;
  /// Re-run experiment 0 against a deliberately unreliable board link and
  /// require identical outcome and modeled cost (RTL cases only: the second
  /// tool instance would double an MC8051 case's multi-second setup).
  bool checkRetryExclusion = true;
  /// VFIT execution engine. The oracle verdict must be engine-invariant:
  /// replaying a case with the compiled engine yields the byte-identical
  /// report (the corpus test asserts exactly that).
  sim::EngineKind vfitEngine = sim::EngineKind::EventDriven;
  /// Execution engine of the autonomous backend; engine-invariant the same
  /// way.
  sim::EngineKind autonomousEngine = sim::EngineKind::EventDriven;
};

/// Per-case verdict plus enough summary data for reports and artifacts.
struct CaseReport {
  CaseSpec spec;
  std::vector<Violation> violations;
  unsigned experiments = 0;
  std::size_t fadesFailures = 0, fadesLatents = 0, fadesSilents = 0;
  std::size_t vfitFailures = 0, vfitLatents = 0, vfitSilents = 0;
  std::size_t autonomousFailures = 0, autonomousLatents = 0,
              autonomousSilents = 0;
  double fadesModeledSeconds = 0;
  double autonomousModeledSeconds = 0;
  bool vfitRan = false;
  bool autonomousRan = false;

  bool ok() const { return violations.empty(); }
  /// Self-contained JSON: the case spec plus the verdict, so a report file
  /// alone suffices to reproduce the run.
  obs::Json toJson() const;
};

/// Run the full oracle on one case. Pure function of (spec, options) - a
/// given case always produces the identical report, which is what makes
/// corpus replay and shrinking deterministic at any job count. Bumps the
/// diffcheck.* metrics as a side effect.
CaseReport checkCase(const CaseSpec& c, const OracleOptions& opt = {});

}  // namespace fades::diffcheck
