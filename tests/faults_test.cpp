// Fault-injection layer tests: campaign vocabulary, the VFIT baseline, the
// FADES injectors, and cross-tool agreement on identical faults.
#include <gtest/gtest.h>

#include <memory>

#include "campaign/types.hpp"
#include "core/fades.hpp"
#include "core/lut_circuit.hpp"
#include "core/permanent.hpp"
#include "fpga/device.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"
#include "vfit/vfit.hpp"

namespace fades {
namespace {

using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::Observation;
using campaign::Outcome;
using campaign::TargetClass;
using common::Rng;
using core::FadesOptions;
using core::FadesTool;
using netlist::Unit;
using vfit::VfitOptions;
using vfit::VfitTool;

// ---------------------------------------------------------- campaign -----

TEST(Campaign, ClassifyTrichotomy) {
  Observation golden{{1, 2, 3}, {0, 1}, {5}};
  EXPECT_EQ(campaign::classify(golden, golden), Outcome::Silent);
  Observation failOut = golden;
  failOut.outputs[1] = 9;
  EXPECT_EQ(campaign::classify(golden, failOut), Outcome::Failure);
  Observation latent = golden;
  latent.finalFlops[0] = 1;
  EXPECT_EQ(campaign::classify(golden, latent), Outcome::Latent);
  Observation latentMem = golden;
  latentMem.finalMemory[0] = 6;
  EXPECT_EQ(campaign::classify(golden, latentMem), Outcome::Latent);
  // Output divergence dominates state divergence.
  Observation both = failOut;
  both.finalFlops[0] = 1;
  EXPECT_EQ(campaign::classify(golden, both), Outcome::Failure);
}

TEST(Campaign, PaperDurationBands) {
  const auto bands = DurationBand::paperBands();
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].label, "<1");
  EXPECT_EQ(bands[1].minCycles, 1.0);
  EXPECT_EQ(bands[1].maxCycles, 10.0);
  EXPECT_EQ(bands[2].minCycles, 11.0);
  EXPECT_EQ(bands[2].maxCycles, 20.0);
}

TEST(Campaign, ResultAccounting) {
  campaign::CampaignResult r;
  r.add(Outcome::Failure, 1.0);
  r.add(Outcome::Failure, 2.0);
  r.add(Outcome::Silent, 3.0);
  r.add(Outcome::Latent, 4.0);
  EXPECT_EQ(r.total(), 4u);
  EXPECT_DOUBLE_EQ(r.failurePct(), 50.0);
  EXPECT_DOUBLE_EQ(r.latentPct(), 25.0);
  EXPECT_NEAR(r.modeledSeconds.mean(), 2.5, 1e-12);
}

// --------------------------------------------------------- lut circuit -----

TEST(LutCircuit, InvertedOutputIsComplement) {
  core::ExtractedCircuit c(0xCAFE);
  EXPECT_EQ(core::ExtractedCircuit::tableWithInvertedOutput(0xCAFE),
            static_cast<std::uint16_t>(~0xCAFE));
}

TEST(LutCircuit, InvertedInputPermutesTable) {
  // AND of i0,i1: table 0x8888 (bits where i0&i1... enumerate: idx with
  // i0=1,i1=1: 3,7,11,15 -> 0x8888).
  const std::uint16_t andTable = 0x8888;
  const auto inv0 =
      core::ExtractedCircuit::tableWithInvertedInput(andTable, 0);
  // NOT(i0) AND i1: idx with i0=0,i1=1: 2,6,10,14 -> 0x4444.
  EXPECT_EQ(inv0, 0x4444);
}

class LutCircuitProperty : public ::testing::TestWithParam<int> {};

TEST_P(LutCircuitProperty, ExtractionIsFaithfulAndLinesFlipSomething) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const auto table = static_cast<std::uint16_t>(rng.below(0x10000));
    core::ExtractedCircuit c(table);
    EXPECT_EQ(c.table(), table);
    // Inverting the same internal line twice must round-trip; inverting it
    // once must change the table (a BDD node always influences some
    // minterm) unless the function is constant.
    for (unsigned line = 0; line < c.internalLineCount(); ++line) {
      const auto faulted = c.tableWithInvertedInternalLine(line);
      EXPECT_NE(faulted, table) << "line " << line << " table " << table;
    }
    // Candidate API covers output + 4 inputs + internals.
    EXPECT_EQ(c.candidateLineCount(), 5 + c.internalLineCount());
    EXPECT_EQ(c.tableWithFaultedLine(0),
              static_cast<std::uint16_t>(~table));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LutCircuitProperty, ::testing::Range(1, 5));

// -------------------------------------------------------- mini system -----

/// Small multi-unit design used by fast fault tests:
///  - Registers: 8-bit LFSR
///  - Fsm:       4-bit counter
///  - Alu:       sum = lfsr + counter
///  - Ram:       16x8 write-only log of LFSR values (never read back)
struct MiniDesign {
  netlist::Netlist nl;
  synth::Implementation impl;
  std::uint64_t cycles = 64;

  static netlist::Netlist build() {
    rtl::Builder b;
    b.setUnit(Unit::Registers);
    rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
    b.setUnit(Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.setUnit(Unit::Registers);
    auto fb = b.lxor(lfsr.q[7],
                     b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    rtl::Bus next{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.setUnit(Unit::Fsm);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(Unit::Alu);
    auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
    b.setUnit(Unit::Ram);
    b.ram("log", 4, 8, cnt.q, lfsr.q, b.one());
    b.output("out", sum.sum);
    return b.finish();
  }

  MiniDesign()
      : nl(build()), impl(synth::implement(nl, fpga::DeviceSpec::small())) {}

  static const MiniDesign& instance() {
    static MiniDesign d;
    return d;
  }
};

FadesOptions miniFadesOptions() {
  FadesOptions o;
  o.observedOutputs = {"out"};
  o.keepRecords = true;
  return o;
}

VfitOptions miniVfitOptions() {
  VfitOptions o;
  o.observedOutputs = {"out"};
  return o;
}

// --------------------------------------------------------------- VFIT -----

TEST(Vfit, FlopBitFlipCausesImmediateFailure) {
  const auto& d = MiniDesign::instance();
  VfitTool tool(d.nl, d.cycles, miniVfitOptions());
  const auto flops = tool.flopTargets(Unit::Registers);
  ASSERT_EQ(flops.size(), 8u);  // the LFSR bits
  Rng rng(1);
  double seconds = 0;
  const auto o =
      tool.runExperiment(FaultModel::BitFlip, TargetClass::SequentialFF,
                         flops[0].value, 10, 1.0, rng, &seconds);
  // The LFSR feeds the output combinationally: divergence is immediate.
  EXPECT_EQ(o, Outcome::Failure);
  EXPECT_GT(seconds, miniVfitOptions().secondsFixedPerExperiment);
}

TEST(Vfit, RamBitFlipIsLatentOrSilentNeverFailure) {
  const auto& d = MiniDesign::instance();
  VfitTool tool(d.nl, d.cycles, miniVfitOptions());
  Rng rng(2);
  // The RAM log is never read: flips can linger (Latent) or be overwritten
  // (Silent) but cannot reach the outputs.
  int latent = 0, silent = 0;
  for (int i = 0; i < 24; ++i) {
    const std::uint32_t target =
        (0u << 24) | (static_cast<std::uint32_t>(rng.below(16)) << 8) |
        static_cast<std::uint32_t>(rng.below(8));
    const auto o =
        tool.runExperiment(FaultModel::BitFlip, TargetClass::MemoryBlockBit,
                           target, rng.below(d.cycles), 1.0, rng);
    EXPECT_NE(o, Outcome::Failure);
    latent += (o == Outcome::Latent);
    silent += (o == Outcome::Silent);
  }
  EXPECT_GT(latent, 0);
  EXPECT_GT(silent, 0);
}

TEST(Vfit, DelayUnsupportedLikeThePaper) {
  const auto& d = MiniDesign::instance();
  VfitTool tool(d.nl, d.cycles, miniVfitOptions());
  EXPECT_FALSE(tool.supports(FaultModel::Delay));
  Rng rng(3);
  EXPECT_THROW(tool.runExperiment(FaultModel::Delay,
                                  TargetClass::CombinationalLine, 0, 5, 1.0,
                                  rng),
               common::FadesError);
}

TEST(Vfit, CostIsFlatAcrossModelsAndDurations) {
  // Paper Section 6.2: VFIT's time is dominated by model simulation and is
  // "very similar for any type and length of the studied fault models".
  const auto& d = MiniDesign::instance();
  VfitTool tool(d.nl, d.cycles, miniVfitOptions());
  Rng rng(4);
  double sBitflip = 0, sPulseShort = 0, sPulseLong = 0;
  const auto sig = tool.signalTargets(Unit::Alu);
  ASSERT_FALSE(sig.empty());
  tool.runExperiment(FaultModel::BitFlip, TargetClass::SequentialFF, 0, 5,
                     1.0, rng, &sBitflip);
  tool.runExperiment(FaultModel::Pulse, TargetClass::CombinationalLut,
                     sig[0].value, 5, 2.0, rng, &sPulseShort);
  tool.runExperiment(FaultModel::Pulse, TargetClass::CombinationalLut,
                     sig[0].value, 5, 18.0, rng, &sPulseLong);
  EXPECT_NEAR(sBitflip, sPulseShort, 0.15 * sBitflip);
  EXPECT_NEAR(sPulseShort, sPulseLong, 0.15 * sPulseShort);
}

TEST(Vfit, CampaignIsDeterministic) {
  const auto& d = MiniDesign::instance();
  VfitTool tool(d.nl, d.cycles, miniVfitOptions());
  CampaignSpec spec;
  spec.model = FaultModel::BitFlip;
  spec.targets = TargetClass::SequentialFF;
  spec.unit = static_cast<int>(Unit::Registers);
  spec.experiments = 40;
  spec.seed = 77;
  const auto r1 = tool.runCampaign(spec);
  const auto r2 = tool.runCampaign(spec);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.latents, r2.latents);
  EXPECT_EQ(r1.silents, r2.silents);
  EXPECT_EQ(r1.total(), 40u);
}

// -------------------------------------------------------------- FADES -----

struct FadesRig {
  std::unique_ptr<fpga::Device> device;
  std::unique_ptr<FadesTool> tool;

  explicit FadesRig(FadesOptions opt = miniFadesOptions()) {
    const auto& d = MiniDesign::instance();
    device = std::make_unique<fpga::Device>(d.impl.spec);
    tool = std::make_unique<FadesTool>(*device, d.impl, d.cycles, opt);
  }
};

TEST(Fades, GoldenRunMatchesSimulator) {
  const auto& d = MiniDesign::instance();
  FadesRig rig;
  sim::Simulator simulator(d.nl);
  for (std::uint64_t c = 0; c < d.cycles; ++c) {
    EXPECT_EQ(rig.tool->golden().outputs[c], simulator.portValue("out"));
    simulator.step();
  }
}

TEST(Fades, FlopBitFlipViaLsrMatchesVfitOutcomes) {
  const auto& d = MiniDesign::instance();
  FadesRig rig;
  VfitTool vfitTool(d.nl, d.cycles, miniVfitOptions());

  // Same flop, same instant, both tools: identical classification.
  for (const char* name :
       {"lfsr[0]", "lfsr[3]", "lfsr[7]", "cnt[0]", "cnt[3]"}) {
    const auto* site = d.impl.findFlop(name);
    ASSERT_NE(site, nullptr) << name;
    std::uint32_t fadesTarget = 0;
    for (std::uint32_t i = 0; i < d.impl.flops.size(); ++i) {
      if (d.impl.flops[i].name == name) fadesTarget = i;
    }
    const auto vfitTarget = d.nl.findFlop(name);
    ASSERT_TRUE(vfitTarget.has_value());
    for (std::uint64_t cycle : {3ull, 17ull, 40ull}) {
      Rng r1(9), r2(9);
      const auto of = rig.tool->runExperiment(
          FaultModel::BitFlip, TargetClass::SequentialFF, fadesTarget, cycle,
          1.0, r1);
      const auto ov = vfitTool.runExperiment(
          FaultModel::BitFlip, TargetClass::SequentialFF, vfitTarget->value,
          cycle, 1.0, r2);
      EXPECT_EQ(of, ov) << name << " @" << cycle;
    }
  }
}

TEST(Fades, GsrAndLsrBitFlipAgreeButGsrMovesMoreData) {
  const auto& d = MiniDesign::instance();
  FadesOptions lsrOpt = miniFadesOptions();
  FadesOptions gsrOpt = miniFadesOptions();
  gsrOpt.bitFlipVia = core::BitFlipVia::Gsr;
  FadesRig lsr(lsrOpt), gsr(gsrOpt);

  bits::TransferMeter lsrMeter, gsrMeter;
  Rng r1(5), r2(5);
  double sLsr = 0, sGsr = 0;
  const auto o1 = lsr.tool->runExperiment(FaultModel::BitFlip,
                                          TargetClass::SequentialFF, 2, 20,
                                          1.0, r1, &sLsr, &lsrMeter);
  const auto o2 = gsr.tool->runExperiment(FaultModel::BitFlip,
                                          TargetClass::SequentialFF, 2, 20,
                                          1.0, r2, &sGsr, &gsrMeter);
  EXPECT_EQ(o1, o2);
  // Section 4.1: the GSR approach transfers much more information.
  EXPECT_GT(gsrMeter.bytesToDevice + gsrMeter.bytesFromDevice,
            2 * (lsrMeter.bytesToDevice + lsrMeter.bytesFromDevice));
  EXPECT_GT(sGsr, sLsr);
}

TEST(Fades, RemovableFaultsRestoreTheConfiguration) {
  const auto& d = MiniDesign::instance();
  FadesRig rig;
  Rng rng(11);
  const auto luts = rig.tool->targets(FaultModel::Pulse,
                                      TargetClass::CombinationalLut,
                                      Unit::Alu);
  rig.tool->runExperiment(FaultModel::Pulse, TargetClass::CombinationalLut,
                          luts[0], 12, 5.0, rng);
  EXPECT_EQ(rig.device->readbackBitstream().logic, d.impl.bitstream.logic);

  rig.tool->runExperiment(FaultModel::Indetermination,
                          TargetClass::SequentialFF, 1, 8, 4.0, rng);
  EXPECT_EQ(rig.device->readbackBitstream().logic, d.impl.bitstream.logic);

  rig.tool->runExperiment(FaultModel::Delay, TargetClass::CombinationalLine,
                          rig.tool->targets(FaultModel::Delay,
                                            TargetClass::CombinationalLine,
                                            Unit::None)[0],
                          9, 6.0, rng);
  EXPECT_EQ(rig.device->readbackBitstream().logic, d.impl.bitstream.logic);

  // Bit-flips persist in STATE, never in configuration.
  rig.tool->runExperiment(FaultModel::BitFlip, TargetClass::SequentialFF, 0,
                          5, 1.0, rng);
  EXPECT_EQ(rig.device->readbackBitstream().logic, d.impl.bitstream.logic);
}

TEST(Fades, MemoryBitFlipNeverFailsOnWriteOnlyLog) {
  FadesRig rig;
  Rng rng(13);
  const auto targets = rig.tool->targets(
      FaultModel::BitFlip, TargetClass::MemoryBlockBit, Unit::None);
  ASSERT_FALSE(targets.empty());
  int latent = 0;
  for (int i = 0; i < 16; ++i) {
    const auto o = rig.tool->runExperiment(
        FaultModel::BitFlip, TargetClass::MemoryBlockBit,
        targets[rng.below(targets.size())], rng.below(60), 1.0, rng);
    EXPECT_NE(o, Outcome::Failure);
    latent += (o == Outcome::Latent);
  }
  EXPECT_GT(latent, 0);
}

TEST(Fades, PulseSubCycleCheaperThanLongPulse) {
  FadesRig rig;
  Rng rng(17);
  const auto luts = rig.tool->targets(FaultModel::Pulse,
                                      TargetClass::CombinationalLut,
                                      Unit::None);
  bits::TransferMeter mShort, mLong;
  double sShort = 0, sLong = 0;
  rig.tool->runExperiment(FaultModel::Pulse, TargetClass::CombinationalLut,
                          luts[0], 10, 0.4, rng, &sShort, &mShort);
  rig.tool->runExperiment(FaultModel::Pulse, TargetClass::CombinationalLut,
                          luts[0], 10, 8.0, rng, &sLong, &mLong);
  // Section 6.2: durations under one cycle need a single reconfiguration
  // pass; longer pulses need two.
  EXPECT_EQ(mShort.sessions + 1, mLong.sessions);
  EXPECT_LT(sShort, sLong);
}

TEST(Fades, DelayCostsDominateViaFullDownload) {
  FadesRig rig;
  Rng rng(19);
  double sDelay = 0, sFlip = 0;
  bits::TransferMeter mDelay;
  const auto lines = rig.tool->targets(
      FaultModel::Delay, TargetClass::SequentialLine, Unit::None);
  rig.tool->runExperiment(FaultModel::Delay, TargetClass::SequentialLine,
                          lines[0], 15, 5.0, rng, &sDelay, &mDelay);
  rig.tool->runExperiment(FaultModel::BitFlip, TargetClass::SequentialFF, 0,
                          15, 1.0, rng, &sFlip);
  // On this tiny test device the full image is small, so only demand a
  // strict ordering; the V1000-scale benches verify the large gap.
  EXPECT_GT(sDelay, sFlip);
  EXPECT_GE(mDelay.bytesToDevice,
            2 * rig.device->layout().totalConfigBytes());
}

TEST(Fades, OscillatingIndeterminationCostsMore) {
  FadesOptions fixed = miniFadesOptions();
  FadesOptions osc = miniFadesOptions();
  osc.oscillatingIndetermination = true;
  FadesRig rigF(fixed), rigO(osc);
  Rng r1(23), r2(23);
  double sF = 0, sO = 0;
  rigF.tool->runExperiment(FaultModel::Indetermination,
                           TargetClass::SequentialFF, 3, 10, 15.0, r1, &sF);
  rigO.tool->runExperiment(FaultModel::Indetermination,
                           TargetClass::SequentialFF, 3, 10, 15.0, r2, &sO);
  EXPECT_GT(sO, 1.5 * sF);  // Section 6.2: ~4605 s vs ~1065 s
}

TEST(Fades, CampaignDeterministicAndComplete) {
  FadesRig rig;
  CampaignSpec spec;
  spec.model = FaultModel::Pulse;
  spec.targets = TargetClass::CombinationalLut;
  spec.unit = static_cast<int>(Unit::Alu);
  spec.band = DurationBand::shortBand();
  spec.experiments = 25;
  spec.seed = 99;
  const auto r1 = rig.tool->runCampaign(spec);
  const auto r2 = rig.tool->runCampaign(spec);
  EXPECT_EQ(r1.total(), 25u);
  EXPECT_EQ(r1.failures, r2.failures);
  EXPECT_EQ(r1.latents, r2.latents);
  EXPECT_EQ(r1.records.size(), 25u);
}

TEST(Fades, CbInputPulseTargetsExist) {
  FadesRig rig;
  const auto targets = rig.tool->targets(
      FaultModel::Pulse, TargetClass::CbInputLine, Unit::None);
  // At least some FFs take their data through the routed bypass pin.
  EXPECT_FALSE(targets.empty());
  Rng rng(29);
  const auto o = rig.tool->runExperiment(
      FaultModel::Pulse, TargetClass::CbInputLine, targets[0], 20, 3.0, rng);
  (void)o;  // any outcome is legal; the mechanism must just not corrupt
  EXPECT_EQ(rig.device->readbackBitstream().logic,
            MiniDesign::instance().impl.bitstream.logic);
}

TEST(Fades, MultiBitFlipProbeFindsRegisterEffects) {
  FadesRig rig;
  Rng rng(31);
  const auto luts =
      rig.tool->targets(FaultModel::Pulse, TargetClass::CombinationalLut,
                        Unit::Registers);
  ASSERT_FALSE(luts.empty());
  bool anyEffect = false;
  for (auto lut : luts) {
    const auto effects = rig.tool->multiBitFlipProbe(lut, 20, rng);
    for (const auto& e : effects) {
      EXPECT_NE(e.golden, e.faulty);
      anyEffect = true;
    }
  }
  // Pulsing the LFSR's feedback cones must disturb at least one register.
  EXPECT_TRUE(anyEffect);
}

// ---------------------------------------------- permanent faults (ext) -----

TEST(Permanent, StuckAtFlopForcesLevelForWholeRun) {
  FadesRig rig;
  core::PermanentFaults permanent(*rig.tool);
  Rng rng(41);
  // Stuck-at on an LFSR flip-flop: the register can never hold its proper
  // sequence, so the combinational output must diverge.
  std::uint32_t lfsrBit0 = 0;
  const auto& impl = MiniDesign::instance().impl;
  for (std::uint32_t i = 0; i < impl.flops.size(); ++i) {
    if (impl.flops[i].name == "lfsr[0]") lfsrBit0 = i;
  }
  const auto o = permanent.runExperiment(
      core::PermanentFaultModel::StuckAt1,
      lfsrBit0 | core::PermanentFaults::kFlopFlag, rng);
  EXPECT_EQ(o, campaign::Outcome::Failure);
  // Configuration restored for the next experiment.
  EXPECT_EQ(rig.device->readbackBitstream().logic,
            MiniDesign::instance().impl.bitstream.logic);
}

TEST(Permanent, StuckAtLutOnConstantlyActiveLogicFails) {
  FadesRig rig;
  core::PermanentFaults permanent(*rig.tool);
  Rng rng(43);
  const auto pool =
      permanent.targets(core::PermanentFaultModel::StuckAt0, Unit::Alu);
  int failures = 0;
  for (std::size_t k = 0; k < pool.size() && k < 12; ++k) {
    if ((pool[k] & core::PermanentFaults::kFlopFlag) != 0) continue;
    const auto o = permanent.runExperiment(core::PermanentFaultModel::StuckAt0,
                                           pool[k], rng);
    failures += (o == campaign::Outcome::Failure);
  }
  EXPECT_GT(failures, 0);  // the adder output bits are always observed
}

TEST(Permanent, OpenAndStuckOpenSplitTheNet) {
  FadesRig rig;
  core::PermanentFaults permanent(*rig.tool);
  Rng rng(47);
  for (const auto model : {core::PermanentFaultModel::OpenLine,
                           core::PermanentFaultModel::StuckOpen}) {
    const auto pool = permanent.targets(model, Unit::None);
    ASSERT_FALSE(pool.empty());
    const auto o =
        permanent.runExperiment(model, pool[rng.below(pool.size())], rng);
    (void)o;  // outcome depends on the net; restoration is the invariant
    EXPECT_EQ(rig.device->readbackBitstream().logic,
              MiniDesign::instance().impl.bitstream.logic)
        << core::toString(model);
  }
}

TEST(Permanent, CampaignCoversAllModelsDeterministically) {
  FadesRig rig;
  core::PermanentFaults permanent(*rig.tool);
  for (const auto model :
       {core::PermanentFaultModel::StuckAt0,
        core::PermanentFaultModel::StuckAt1,
        core::PermanentFaultModel::OpenLine,
        core::PermanentFaultModel::StuckOpen,
        core::PermanentFaultModel::Bridging}) {
    core::PermanentCampaignSpec spec;
    spec.model = model;
    spec.experiments = 8;
    spec.seed = 51;
    const auto r1 = permanent.runCampaign(spec);
    const auto r2 = permanent.runCampaign(spec);
    EXPECT_EQ(r1.total(), 8u) << core::toString(model);
    EXPECT_EQ(r1.failures, r2.failures) << core::toString(model);
  }
  // After everything, the configuration is pristine.
  EXPECT_EQ(rig.device->readbackBitstream().logic,
            MiniDesign::instance().impl.bitstream.logic);
}

TEST(Fades, IndeterminationForcesValueForWholeDuration) {
  // During the fault the FF output is pinned to the random level: check
  // via the sequential-line observation that repeated runs with different
  // seeds give both polarities.
  FadesRig rig;
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto o = rig.tool->runExperiment(FaultModel::Indetermination,
                                           TargetClass::SequentialFF,
                                           /*lfsr[0] site*/ 0, 6, 12.0, rng);
    failures += (o == Outcome::Failure);
  }
  EXPECT_GT(failures, 0);
}

}  // namespace
}  // namespace fades
