file(REMOVE_RECURSE
  "libfades_fpga.a"
)
