// Technology mapping: cover the gate netlist with 4-input LUTs.
//
// Buffers are folded, constants propagated, and fanout-free cones packed
// greedily into LUTs. The result deliberately destroys the one-to-one
// correspondence between HDL signals and physical resources - internal cone
// nets disappear, exactly the effect the paper's Section 2 describes
// ("elements can be renamed, merged together or removed by optimisations"),
// which is why the fault-location process needs the mapping produced here.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::synth {

using netlist::NetId;
using netlist::Netlist;
using netlist::Unit;

struct MappedLut {
  std::uint16_t table = 0;
  std::array<NetId, 4> leaves{};  // invalid entries beyond leafCount
  unsigned leafCount = 0;
  NetId out{};  // the visible netlist net this LUT produces
  Unit unit = Unit::None;
};

struct MappedDesign {
  std::vector<MappedLut> luts;
  /// Which LUT (index+1; 0 = none) produces a given net.
  std::vector<std::uint32_t> lutOfNet;
  /// Buffer-chain resolution: canonical driver net for every net.
  std::vector<NetId> resolved;
  /// Constant-propagation result: 0, 1, or -1 (not constant), per net.
  std::vector<std::int8_t> constVal;

  NetId resolve(NetId n) const { return resolved[n.value]; }
  std::uint32_t lutIndexOf(NetId n) const {  // 0 = none
    return lutOfNet[resolve(n).value];
  }
};

/// Map a validated netlist onto 4-LUTs. Throws on gates that cannot be
/// covered (cannot happen with the IR's max arity of 3).
MappedDesign techmap(const Netlist& netlist);

/// Evaluate a mapped LUT against reference net values (tests).
bool evalMappedLut(const MappedLut& lut,
                   const std::vector<bool>& leafValues);

}  // namespace fades::synth
