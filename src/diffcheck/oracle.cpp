#include "diffcheck/oracle.hpp"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/autonomous.hpp"
#include "core/fades.hpp"
#include "diffcheck/gen.hpp"
#include "fpga/device.hpp"
#include "mc8051/assembler.hpp"
#include "mc8051/iss.hpp"
#include "obs/metrics.hpp"
#include "synth/implement.hpp"
#include "vfit/vfit.hpp"

namespace fades::diffcheck {

using campaign::FaultModel;
using campaign::TargetClass;

obs::Json Violation::toJson() const {
  obs::Json j = obs::Json::object();
  j.set("rule", obs::Json(rule));
  j.set("detail", obs::Json(detail));
  return j;
}

obs::Json CaseReport::toJson() const {
  obs::Json j = obs::Json::object();
  j.set("case", spec.toJson());
  j.set("ok", obs::Json(ok()));
  obs::Json v = obs::Json::array();
  for (const auto& viol : violations) v.push(viol.toJson());
  j.set("violations", v);
  j.set("experiments", obs::Json(experiments));
  obs::Json f = obs::Json::object();
  f.set("failures", obs::Json(static_cast<std::uint64_t>(fadesFailures)));
  f.set("latents", obs::Json(static_cast<std::uint64_t>(fadesLatents)));
  f.set("silents", obs::Json(static_cast<std::uint64_t>(fadesSilents)));
  f.set("modeled_seconds", obs::Json(fadesModeledSeconds));
  j.set("fades", f);
  obs::Json vf = obs::Json::object();
  vf.set("ran", obs::Json(vfitRan));
  vf.set("failures", obs::Json(static_cast<std::uint64_t>(vfitFailures)));
  vf.set("latents", obs::Json(static_cast<std::uint64_t>(vfitLatents)));
  vf.set("silents", obs::Json(static_cast<std::uint64_t>(vfitSilents)));
  j.set("vfit", vf);
  obs::Json au = obs::Json::object();
  au.set("ran", obs::Json(autonomousRan));
  au.set("failures",
         obs::Json(static_cast<std::uint64_t>(autonomousFailures)));
  au.set("latents", obs::Json(static_cast<std::uint64_t>(autonomousLatents)));
  au.set("silents", obs::Json(static_cast<std::uint64_t>(autonomousSilents)));
  au.set("modeled_seconds", obs::Json(autonomousModeledSeconds));
  j.set("autonomous", au);
  return j;
}

namespace {

/// Bit-level target-pool correspondence between the two tools, available
/// exactly where the fault semantics is exact on both sides: flip-flops
/// (paired by HDL register-bit name) and memory content bits (paired through
/// the location map's bitAddress). Campaigns over these aligned pools draw
/// the SAME logical fault at every experiment index.
struct AlignedPools {
  std::vector<std::uint32_t> fades;
  std::vector<std::uint32_t> vfit;
  bool ok = false;
  std::string error;
};

AlignedPools alignPools(const synth::Implementation& impl,
                        const netlist::Netlist& nl, TargetClass cls) {
  AlignedPools p;
  if (cls == TargetClass::SequentialFF) {
    for (std::uint32_t fi = 0; fi < impl.flops.size(); ++fi) {
      const auto vflop = nl.findFlop(impl.flops[fi].name);
      if (!vflop.has_value()) {
        p.error = "flop '" + impl.flops[fi].name + "' missing from netlist";
        return p;
      }
      p.fades.push_back(fi);
      p.vfit.push_back(vflop->value);
    }
  } else {  // MemoryBlockBit
    for (const auto& site : impl.rams) {
      const std::size_t rows = std::size_t{1} << site.addrBits;
      for (std::size_t row = 0; row < rows; ++row) {
        for (unsigned bit = 0; bit < site.dataBits; ++bit) {
          const auto [block, contentBit] = site.bitAddress(row, bit);
          p.fades.push_back((block << 16) | contentBit);
          p.vfit.push_back((site.ram.value << 24) |
                           (static_cast<std::uint32_t>(row) << 8) | bit);
        }
      }
    }
    if (p.fades.empty()) {
      p.error = "design has no memory bits";
      return p;
    }
  }
  p.ok = true;
  return p;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool sameOutcome(const campaign::ExperimentOutcome& a,
                 const campaign::ExperimentOutcome& b) {
  return a.outcome == b.outcome && a.modeledSeconds == b.modeledSeconds &&
         a.configSeconds == b.configSeconds &&
         a.workloadSeconds == b.workloadSeconds &&
         a.hostSeconds == b.hostSeconds &&
         a.bytesToDevice == b.bytesToDevice &&
         a.bytesFromDevice == b.bytesFromDevice && a.sessions == b.sessions &&
         a.quarantined == b.quarantined;
}

}  // namespace

CaseReport checkCase(const CaseSpec& c, const OracleOptions& opt) {
  auto& reg = obs::Registry::global();
  reg.counter("diffcheck.cases").inc();

  CaseReport rep;
  rep.spec = c;
  rep.experiments = c.inject.experiments;
  const auto fail = [&](const char* rule, std::string detail) {
    rep.violations.push_back({rule, std::move(detail)});
  };

  const netlist::Netlist nl = buildDesign(c);
  const fpga::DeviceSpec deviceSpec = c.kind == DesignKind::Rtl
                                          ? fpga::DeviceSpec::small()
                                          : fpga::DeviceSpec::virtex1000Like();
  const auto impl = synth::implement(nl, deviceSpec);

  fpga::Device device(impl.spec);
  core::FadesOptions fOpt;
  fOpt.observedOutputs = observedOutputs(c);
  fOpt.keepRecords = true;
  fOpt.progressInterval = 0;
  core::FadesTool fades(device, impl, c.runCycles, fOpt);

  vfit::VfitOptions vOpt;
  vOpt.observedOutputs = observedOutputs(c);
  vOpt.keepRecords = true;
  vOpt.engine = opt.vfitEngine;
  vfit::VfitTool vfit(nl, c.runCycles, vOpt);

  // The autonomous backend verifies its own instrumentation at construction
  // (the transparency check simulates the instrumented netlist with every
  // control at 0 against the golden trace); a divergence surfaces as a
  // ConfigError here and is exactly the golden.autonomous-agree rule.
  std::unique_ptr<core::AutonomousTool> autonomous;
  core::AutonomousOptions aOpt;
  aOpt.observedOutputs = observedOutputs(c);
  aOpt.keepRecords = true;
  aOpt.engine = opt.autonomousEngine;
  try {
    autonomous = std::make_unique<core::AutonomousTool>(nl, c.runCycles, aOpt);
  } catch (const common::FadesError& err) {
    if (err.kind() != common::ErrorKind::ConfigError) throw;
    fail("golden.autonomous-agree", err.what());
  }
  if (autonomous != nullptr &&
      autonomous->golden().outputs != vfit.golden().outputs) {
    fail("golden.autonomous-agree",
         "autonomous backend golden trace differs from VFIT's");
  }

  // --- golden agreement ----------------------------------------------------
  // Before any fault the emulated and the simulated model must produce the
  // identical output trace; for the microcontroller the instruction-set
  // simulator is the third, independent reference for the final port state.
  if (fades.golden().outputs != vfit.golden().outputs) {
    std::string where = "trace length " +
                        std::to_string(fades.golden().outputs.size()) + " vs " +
                        std::to_string(vfit.golden().outputs.size());
    for (std::size_t i = 0; i < fades.golden().outputs.size() &&
                            i < vfit.golden().outputs.size();
         ++i) {
      if (fades.golden().outputs[i] != vfit.golden().outputs[i]) {
        where = "first divergence at cycle " + std::to_string(i);
        break;
      }
    }
    fail("golden.trace-agree", "fault-free FADES and VFIT traces differ: " + where);
  }
  if (c.kind == DesignKind::Mc8051 && !fades.golden().outputs.empty()) {
    std::string src;
    for (const auto& line : c.program) {
      src += line;
      src += '\n';
    }
    mc8051::Iss iss(mc8051::assemble(src).bytes);
    iss.runCycles(c.runCycles);
    const std::uint64_t want =
        iss.p0() | (static_cast<std::uint64_t>(iss.p1()) << 16);
    const std::uint64_t got = fades.golden().outputs.back();
    if (got != want) {
      fail("golden.iss-agree",
           "final port word: emulated core 0x" + num(static_cast<double>(got)) +
               " vs ISS p0=" + std::to_string(iss.p0()) +
               " p1=" + std::to_string(iss.p1()));
    }
  }

  // --- campaign setup ------------------------------------------------------
  const bool vfitSupported = vfit.supports(c.inject.model);
  const bool exact =
      vfitSupported && c.inject.model == FaultModel::BitFlip &&
      (c.inject.targets == TargetClass::SequentialFF ||
       c.inject.targets == TargetClass::MemoryBlockBit);

  AlignedPools aligned;
  if (exact) {
    aligned = alignPools(impl, nl, c.inject.targets);
    if (!aligned.ok) {
      fail("pool.align", aligned.error);
    }
  }
  // A generated design may legitimately expose no targets of the requested
  // class (e.g. no flop placed through the CB input bypass). That is an
  // uninjectable spec, not a cross-tool disagreement: report zero
  // experiments and let stricter callers (the corpus test) reject it.
  std::vector<std::uint32_t> fPool;
  if (exact && aligned.ok) {
    fPool = aligned.fades;
  } else {
    try {
      fPool = fades.campaignPool(c.inject);
    } catch (const common::FadesError& e) {
      if (e.kind() != common::ErrorKind::InjectionError) throw;
      rep.experiments = 0;
      return rep;
    }
  }

  // --- FADES campaign, one experiment at a time ----------------------------
  std::vector<campaign::ExperimentOutcome> fOut;
  fOut.reserve(c.inject.experiments);
  for (unsigned e = 0; e < c.inject.experiments; ++e) {
    fOut.push_back(fades.runCampaignExperiment(c.inject, fPool, e));
  }
  const double expectedWorkload =
      static_cast<double>(c.runCycles) / fOpt.fpgaClockHz;
  for (const auto& x : fOut) {
    const auto tag = " (experiment " + std::to_string(x.index) + ")";
    if (x.quarantined) {
      fail("tally.consistent",
           "experiment quarantined on a fault-free link: " + x.failureMessage +
               tag);
      continue;
    }
    switch (x.outcome) {
      case campaign::Outcome::Failure: ++rep.fadesFailures; break;
      case campaign::Outcome::Latent: ++rep.fadesLatents; break;
      case campaign::Outcome::Silent: ++rep.fadesSilents; break;
    }
    rep.fadesModeledSeconds += x.modeledSeconds;
    if (x.modeledSeconds !=
        x.configSeconds + x.workloadSeconds + x.hostSeconds) {
      fail("cost.decomposition",
           "modeledSeconds " + num(x.modeledSeconds) + " != config " +
               num(x.configSeconds) + " + workload " + num(x.workloadSeconds) +
               " + host " + num(x.hostSeconds) + tag);
    }
    if (x.configSeconds < 0 || x.workloadSeconds < 0 || x.hostSeconds < 0 ||
        x.modeledSeconds <= 0) {
      fail("cost.decomposition", "negative cost component" + tag);
    }
    if (x.workloadSeconds != expectedWorkload) {
      fail("cost.workload", "workloadSeconds " + num(x.workloadSeconds) +
                                " != runCycles/clock " +
                                num(expectedWorkload) + tag);
    }
    if (x.hostSeconds != fOpt.hostPerExperimentSeconds) {
      fail("cost.workload",
           "hostSeconds " + num(x.hostSeconds) + " != fixed per-experiment " +
               num(fOpt.hostPerExperimentSeconds) + tag);
    }
    if (x.bytesFromDevice == 0 || x.sessions == 0) {
      fail("cost.decomposition",
           "experiment read nothing back from the device" + tag);
    }
  }

  // --- VFIT campaign -------------------------------------------------------
  campaign::CampaignResult vres;
  if (vfitSupported) {
    campaign::CampaignSpec vSpec = c.inject;
    if (exact && aligned.ok) vSpec.targetPool = aligned.vfit;
    bool ran = true;
    try {
      vres = vfit.runCampaign(vSpec);
    } catch (const common::FadesError& err) {
      // "No VFIT targets" is a tool limitation (the HDL view may simply have
      // no named signal of the requested class), not a disagreement.
      if (err.kind() == common::ErrorKind::InjectionError) {
        ran = false;
      } else {
        throw;
      }
    }
    if (ran) {
      rep.vfitRan = true;
      rep.vfitFailures = vres.failures;
      rep.vfitLatents = vres.latents;
      rep.vfitSilents = vres.silents;
      if (vres.total() != c.inject.experiments) {
        fail("tally.consistent",
             "VFIT tally " + std::to_string(vres.total()) + " != " +
                 std::to_string(c.inject.experiments) + " experiments");
      }
    }
  }

  // --- exact per-experiment agreement (bit-flips over aligned pools) -------
  if (exact && aligned.ok && rep.vfitRan &&
      vres.records.size() == fOut.size()) {
    for (std::size_t e = 0; e < fOut.size(); ++e) {
      if (fOut[e].quarantined || !fOut[e].hasRecord) continue;
      const auto& fr = fOut[e].record;
      const auto& vr = vres.records[e];
      const auto tag = " (experiment " + std::to_string(e) + ")";
      if (fr.injectCycle != vr.injectCycle ||
          fr.durationCycles != vr.durationCycles) {
        fail("draw.agree", "campaign draws diverge: FADES cycle " +
                               std::to_string(fr.injectCycle) + " dur " +
                               num(fr.durationCycles) + " vs VFIT cycle " +
                               std::to_string(vr.injectCycle) + " dur " +
                               num(vr.durationCycles) + tag);
        continue;
      }
      if (fr.outcome != vr.outcome) {
        fail("outcome.bitflip-agree",
             std::string("identical bit-flip classified FADES=") +
                 campaign::toString(fr.outcome) + " vs VFIT=" +
                 campaign::toString(vr.outcome) + " target " + fr.targetName +
                 " cycle " + std::to_string(fr.injectCycle) + tag);
      }
    }
  }

  // --- autonomous campaign: same fault semantics, its own meters -----------
  // The backend shares VFIT's semantic engine, so every experiment - not
  // just exact bit-flips - must reproduce VFIT's draw, target and
  // classification; only the cost fields differ, and those must obey the
  // autonomous cost model: exact config+workload+host sum, workload at the
  // emulator clock, and zero configuration bytes moved.
  if (autonomous != nullptr && autonomous->supports(c.inject.model)) {
    campaign::CampaignSpec aSpec = c.inject;
    if (exact && aligned.ok) aSpec.targetPool = aligned.vfit;
    std::vector<std::uint32_t> aPool;
    bool ran = true;
    try {
      aPool = autonomous->campaignPool(aSpec);
    } catch (const common::FadesError& err) {
      if (err.kind() != common::ErrorKind::InjectionError) throw;
      ran = false;
    }
    if (ran) {
      rep.autonomousRan = true;
      std::vector<campaign::ExperimentOutcome> aOut;
      aOut.reserve(c.inject.experiments);
      for (unsigned e = 0; e < c.inject.experiments; ++e) {
        aOut.push_back(autonomous->runCampaignExperiment(aSpec, aPool, e));
      }
      const double aWorkload =
          static_cast<double>(c.runCycles) / aOpt.fpgaClockHz;
      for (const auto& x : aOut) {
        const auto tag = " (experiment " + std::to_string(x.index) + ")";
        switch (x.outcome) {
          case campaign::Outcome::Failure: ++rep.autonomousFailures; break;
          case campaign::Outcome::Latent: ++rep.autonomousLatents; break;
          case campaign::Outcome::Silent: ++rep.autonomousSilents; break;
        }
        rep.autonomousModeledSeconds += x.modeledSeconds;
        if (x.modeledSeconds !=
            x.configSeconds + x.workloadSeconds + x.hostSeconds) {
          fail("cost.autonomous-decomposition",
               "modeledSeconds " + num(x.modeledSeconds) + " != config " +
                   num(x.configSeconds) + " + workload " +
                   num(x.workloadSeconds) + " + host " + num(x.hostSeconds) +
                   tag);
        }
        if (x.configSeconds <= 0 || x.workloadSeconds != aWorkload ||
            x.hostSeconds != aOpt.hostPerInjectionSeconds) {
          fail("cost.autonomous-decomposition",
               "autonomous meters off the cost model: config " +
                   num(x.configSeconds) + " workload " +
                   num(x.workloadSeconds) + " host " + num(x.hostSeconds) +
                   tag);
        }
        if (x.bytesToDevice != 0 || x.bytesFromDevice != 0 ||
            x.sessions != 0) {
          fail("cost.autonomous-decomposition",
               "autonomous injection moved configuration bytes" + tag);
        }
      }
      if (rep.vfitRan && vres.records.size() == aOut.size()) {
        for (std::size_t e = 0; e < aOut.size(); ++e) {
          if (!aOut[e].hasRecord) continue;
          const auto& ar = aOut[e].record;
          const auto& vr = vres.records[e];
          const auto tag = " (experiment " + std::to_string(e) + ")";
          if (ar.targetName != vr.targetName ||
              ar.injectCycle != vr.injectCycle ||
              ar.durationCycles != vr.durationCycles ||
              ar.outcome != vr.outcome) {
            fail("outcome.autonomous-agree",
                 "autonomous target " + ar.targetName + " cycle " +
                     std::to_string(ar.injectCycle) + " outcome " +
                     campaign::toString(ar.outcome) + " vs VFIT target " +
                     vr.targetName + " cycle " +
                     std::to_string(vr.injectCycle) + " outcome " +
                     campaign::toString(vr.outcome) + tag);
          }
        }
      }
      if (opt.checkDeterminism && !aOut.empty()) {
        const auto again = autonomous->runCampaignExperiment(aSpec, aPool, 0);
        if (!sameOutcome(aOut[0], again)) {
          fail("run.deterministic",
               "autonomous experiment 0 re-run diverged: outcome " +
                   std::string(campaign::toString(aOut[0].outcome)) + "/" +
                   num(aOut[0].modeledSeconds) + " then " +
                   campaign::toString(again.outcome) + "/" +
                   num(again.modeledSeconds));
        }
      }
    }
  }

  // --- determinism: replaying an experiment is bit-identical ---------------
  if (opt.checkDeterminism && !fOut.empty()) {
    const auto again = fades.runCampaignExperiment(c.inject, fPool, 0);
    if (!sameOutcome(fOut[0], again)) {
      fail("run.deterministic",
           "experiment 0 re-run diverged: outcome " +
               std::string(campaign::toString(fOut[0].outcome)) + "/" +
               num(fOut[0].modeledSeconds) + " then " +
               campaign::toString(again.outcome) + "/" +
               num(again.modeledSeconds));
    }
  }

  // --- retry exclusion: a flaky link must never leak into results ----------
  // A second tool instance (fresh device, same implementation) faces a
  // deliberately unreliable board link; outcomes, modeled cost and metered
  // payload traffic must be bit-identical to the quiet-link run because all
  // retry work is charged to retry-only meter fields.
  if (opt.checkRetryExclusion && c.kind == DesignKind::Rtl && !fOut.empty()) {
    fpga::Device noisyDevice(impl.spec);
    core::FadesOptions nOpt = fOpt;
    nOpt.linkFaults.readCrcRate = 0.01;
    nOpt.linkFaults.writeFailRate = 0.01;
    core::FadesTool noisy(noisyDevice, impl, c.runCycles, nOpt);
    const auto faulted = noisy.runCampaignExperiment(c.inject, fPool, 0);
    if (!faulted.quarantined && !sameOutcome(fOut[0], faulted)) {
      fail("retry.exclusion",
           "link faults changed experiment 0: outcome " +
               std::string(campaign::toString(fOut[0].outcome)) + " cost " +
               num(fOut[0].modeledSeconds) + " -> " +
               campaign::toString(faulted.outcome) + " cost " +
               num(faulted.modeledSeconds));
    }
  }

  reg.counter("diffcheck.experiments").add(c.inject.experiments);
  if (!rep.ok()) {
    reg.counter("diffcheck.violations").add(rep.violations.size());
    reg.counter("diffcheck.cases_failed").inc();
  }
  return rep;
}

}  // namespace fades::diffcheck
