#include "analytics/analytics.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "campaign/artifact.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "common/error.hpp"
#include "mc8051/isa.hpp"
#include "obs/json.hpp"

namespace fades::analytics {

using common::ErrorKind;
using common::raise;
using common::require;
using obs::Json;

namespace {

constexpr const char* kRunSchema = "fades.run/1";
constexpr const char* kJournalSchema = "fades.journal/1";
constexpr const char* kReportSchema = "fades.report/1";

std::string readFileText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  require(f != nullptr, ErrorKind::ConfigError,
          "cannot open input '" + path + "'");
  std::string content;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) != 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

std::string firstLine(const std::string& content) {
  const std::size_t nl = content.find('\n');
  return nl == std::string::npos ? content : content.substr(0, nl);
}

std::string schemaOf(const Json& j) {
  const Json* s = j.isObject() ? j.find("schema") : nullptr;
  return s != nullptr && s->isString() ? s->asString() : std::string();
}

void foldRecordArray(const Json& records, const std::string& path,
                     CampaignInput& input) {
  for (const auto& r : records.items()) {
    campaign::ExperimentRecord rec;
    require(campaign::recordFromJson(r, rec), ErrorKind::ConfigError,
            "malformed experiment record in '" + path + "'");
    input.records.push_back(std::move(rec));
  }
}

/// Mnemonic bucket for a record: the mc8051 decode of the traced opcode, or
/// a stable placeholder when the experiment ran without a golden-run trace.
std::string mnemonicOf(std::int64_t opcode) {
  if (opcode < 0 || opcode > 0xFF) return "(untraced)";
  return mc8051::opcodeName(static_cast<std::uint8_t>(opcode));
}

/// Basis points rendered as a fixed two-decimal percentage ("12.34").
std::string bpToPct(unsigned bp) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%02u", bp / 100, bp % 100);
  return buf;
}

std::string pcHex(std::int64_t pc) {
  if (pc < 0) return "-";
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%04llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

Json sliceJson(const OutcomeSlice& s) {
  Json j = Json::object();
  j.set("experiments", Json(s.experiments));
  j.set("failures", Json(s.failures));
  j.set("latents", Json(s.latents));
  j.set("silents", Json(s.silents));
  j.set("failure_bp", Json(static_cast<std::uint64_t>(s.failureBp)));
  j.set("latent_bp", Json(static_cast<std::uint64_t>(s.latentBp)));
  j.set("silent_bp", Json(static_cast<std::uint64_t>(s.silentBp)));
  return j;
}

std::vector<std::string> sliceCells(const OutcomeSlice& s) {
  return {std::to_string(s.experiments), std::to_string(s.failures),
          std::to_string(s.latents),     std::to_string(s.silents),
          bpToPct(s.failureBp),          bpToPct(s.latentBp),
          bpToPct(s.silentBp)};
}

const std::vector<std::string> kSliceHeader = {
    "experiments", "failures", "latents",  "silents",
    "failure %",   "latent %", "silent %"};

}  // namespace

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

CampaignInput loadRunArtifact(const std::string& path) {
  const std::string content = readFileText(path);
  CampaignInput input;
  input.path = path;
  input.schema = kRunSchema;

  // Single-document form parses as one JSON value; anything else is JSONL.
  if (auto doc = Json::parse(content)) {
    require(schemaOf(*doc) == kRunSchema, ErrorKind::ConfigError,
            "'" + path + "' is not a " + kRunSchema + " artifact");
    if (const Json* name = doc->find("name")) input.name = name->asString();
    if (const Json* records = doc->find("records")) {
      foldRecordArray(*records, path, input);
    }
    return input;
  }

  std::size_t pos = 0;
  bool haveHeader = false;
  while (pos < content.size()) {
    std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) nl = content.size();
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const auto j = Json::parse(line);
    require(j.has_value(), ErrorKind::ConfigError,
            "malformed JSONL line in '" + path + "'");
    if (!haveHeader) {
      require(schemaOf(*j) == kRunSchema, ErrorKind::ConfigError,
              "'" + path + "' is not a " + kRunSchema + " artifact");
      if (const Json* name = j->find("name")) input.name = name->asString();
      haveHeader = true;
      continue;
    }
    if (const Json* record = j->find("record")) {
      campaign::ExperimentRecord rec;
      require(campaign::recordFromJson(*record, rec), ErrorKind::ConfigError,
              "malformed experiment record in '" + path + "'");
      input.records.push_back(std::move(rec));
    }
    // The trailing summary line carries no records; nothing to fold.
  }
  require(haveHeader, ErrorKind::ConfigError,
          "'" + path + "' has no " + kRunSchema + " header");
  return input;
}

CampaignInput loadJournal(const std::string& path) {
  const std::string content = readFileText(path);
  CampaignInput input;
  input.path = path;
  input.schema = kJournalSchema;
  input.name = path;

  std::size_t pos = 0;
  bool haveHeader = false;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail from a killed writer
    const std::string line = content.substr(pos, nl - pos);
    pos = nl + 1;
    if (!haveHeader) {
      const auto header = Json::parse(line);
      require(header.has_value() && schemaOf(*header) == kJournalSchema,
              ErrorKind::ConfigError,
              "'" + path + "' has no valid " + kJournalSchema + " header");
      haveHeader = true;
      continue;
    }
    campaign::ExperimentOutcome outcome;
    if (!campaign::CampaignJournal::parseOutcomeLine(line, outcome)) {
      break;  // stop at corruption, like campaign resume does
    }
    if (outcome.quarantined) {
      ++input.quarantined;
    } else if (outcome.hasRecord) {
      input.records.push_back(std::move(outcome.record));
    }
  }
  // An empty file (or one whose only line is torn) never saw the header
  // check above; it is not a journal, and silently folding it as zero
  // experiments would hide the broken input.
  require(haveHeader, ErrorKind::ConfigError,
          "'" + path + "' has no valid " + kJournalSchema + " header");
  return input;
}

std::vector<CampaignInput> loadInputs(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;

  std::vector<std::string> files;
  for (const auto& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(p);
    }
  }
  // readdir order is filesystem-dependent; a sorted scan keeps the input
  // manifest (and thus the report) independent of it.
  std::sort(files.begin(), files.end());

  std::vector<CampaignInput> inputs;
  for (const auto& file : files) {
    const std::string content = readFileText(file);
    std::string schema;
    if (auto doc = Json::parse(content)) {
      schema = schemaOf(*doc);
    } else if (auto head = Json::parse(firstLine(content))) {
      schema = schemaOf(*head);
    }
    if (schema == kRunSchema) {
      inputs.push_back(loadRunArtifact(file));
    } else if (schema == kJournalSchema) {
      inputs.push_back(loadJournal(file));
    } else {
      raise(ErrorKind::ConfigError,
            "'" + file + "' is neither a " + std::string(kRunSchema) +
                " artifact nor a " + kJournalSchema + " journal");
    }
  }
  return inputs;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

void OutcomeSlice::add(campaign::Outcome outcome) {
  ++experiments;
  switch (outcome) {
    case campaign::Outcome::Failure: ++failures; break;
    case campaign::Outcome::Latent: ++latents; break;
    case campaign::Outcome::Silent: ++silents; break;
  }
}

void OutcomeSlice::finalize() {
  // Integer basis points, round half up: deterministic across platforms,
  // unlike a double division formatted at print time.
  auto bp = [this](std::uint64_t count) {
    return experiments == 0
               ? 0u
               : static_cast<unsigned>((count * 10000 + experiments / 2) /
                                       experiments);
  };
  failureBp = bp(failures);
  latentBp = bp(latents);
  silentBp = bp(silents);
}

VulnerabilityReport buildReport(const std::vector<CampaignInput>& inputs) {
  VulnerabilityReport report;
  report.inputs = inputs.size();

  std::map<std::string, OutcomeSlice> byComponent;
  std::map<std::pair<std::int64_t, std::int64_t>, OutcomeSlice> byPc;
  std::map<std::string, OutcomeSlice> byMnemonic;
  std::map<std::uint64_t, LatencyBucket> latency;

  for (const auto& input : inputs) {
    report.quarantined += input.quarantined;
    for (const auto& rec : input.records) {
      report.totals.add(rec.outcome);
      const std::string component =
          rec.component.empty() ? "(unknown)" : rec.component;
      byComponent[component].add(rec.outcome);
      byPc[{rec.pc, rec.opcode}].add(rec.outcome);
      byMnemonic[mnemonicOf(rec.opcode)].add(rec.outcome);
      if (rec.pc >= 0) ++report.traced;
      if (rec.detectCycle >= 0) {
        ++report.detected;
        const std::uint64_t detect =
            static_cast<std::uint64_t>(rec.detectCycle);
        const std::uint64_t lat =
            detect > rec.injectCycle ? detect - rec.injectCycle : 0;
        // Power-of-two buckets: 0, 1, 2-3, 4-7, ... - fixed bounds, so the
        // histogram shape never depends on the data's spread.
        LatencyBucket bucket;
        if (lat == 0) {
          bucket.lo = bucket.hi = 0;
        } else {
          std::uint64_t lo = 1;
          while (lo * 2 <= lat) lo *= 2;
          bucket.lo = lo;
          bucket.hi = lo * 2 - 1;
        }
        auto& slot = latency[bucket.lo];
        slot.lo = bucket.lo;
        slot.hi = bucket.hi;
        ++slot.count;
      }
    }
  }

  report.totals.finalize();
  for (auto& [component, slice] : byComponent) {
    slice.finalize();
    report.components.push_back(ComponentStats{component, slice});
  }
  std::sort(report.components.begin(), report.components.end(),
            [](const ComponentStats& a, const ComponentStats& b) {
              if (a.slice.failureBp != b.slice.failureBp) {
                return a.slice.failureBp > b.slice.failureBp;
              }
              return a.component < b.component;
            });
  for (auto& [key, slice] : byPc) {
    slice.finalize();
    PcStats stats;
    stats.pc = key.first;
    stats.opcode = key.second;
    stats.mnemonic = mnemonicOf(key.second);
    stats.slice = slice;
    report.pcs.push_back(std::move(stats));
  }
  // byPc is a std::map keyed (pc, opcode): already ascending.
  for (auto& [mnemonic, slice] : byMnemonic) {
    slice.finalize();
    report.instructions.push_back(InstructionStats{mnemonic, slice});
  }
  std::sort(report.instructions.begin(), report.instructions.end(),
            [](const InstructionStats& a, const InstructionStats& b) {
              if (a.slice.failureBp != b.slice.failureBp) {
                return a.slice.failureBp > b.slice.failureBp;
              }
              return a.mnemonic < b.mnemonic;
            });
  for (const auto& [lo, bucket] : latency) report.latency.push_back(bucket);
  return report;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

Json toJson(const VulnerabilityReport& report) {
  Json j = Json::object();
  j.set("schema", Json(std::string(kReportSchema)));
  Json inputs = Json::object();
  inputs.set("files", Json(report.inputs));
  inputs.set("quarantined", Json(report.quarantined));
  j.set("inputs", inputs);
  j.set("totals", sliceJson(report.totals));
  j.set("traced", Json(report.traced));
  j.set("detected", Json(report.detected));
  Json components = Json::array();
  for (const auto& c : report.components) {
    Json entry = Json::object();
    entry.set("component", Json(c.component));
    entry.set("stats", sliceJson(c.slice));
    components.push(std::move(entry));
  }
  j.set("components", std::move(components));
  Json pcs = Json::array();
  for (const auto& p : report.pcs) {
    Json entry = Json::object();
    entry.set("pc", Json(p.pc));
    entry.set("opcode", Json(p.opcode));
    entry.set("mnemonic", Json(p.mnemonic));
    entry.set("stats", sliceJson(p.slice));
    pcs.push(std::move(entry));
  }
  j.set("pcs", std::move(pcs));
  Json instructions = Json::array();
  for (const auto& i : report.instructions) {
    Json entry = Json::object();
    entry.set("mnemonic", Json(i.mnemonic));
    entry.set("stats", sliceJson(i.slice));
    instructions.push(std::move(entry));
  }
  j.set("instructions", std::move(instructions));
  Json latency = Json::array();
  for (const auto& b : report.latency) {
    Json entry = Json::object();
    entry.set("lo", Json(b.lo));
    entry.set("hi", Json(b.hi));
    entry.set("count", Json(b.count));
    latency.push(std::move(entry));
  }
  j.set("latency", std::move(latency));
  return j;
}

std::string toMarkdown(const VulnerabilityReport& report) {
  std::string out = "# Vulnerability report\n\n";
  out += std::to_string(report.totals.experiments) + " experiments from " +
         std::to_string(report.inputs) + " input(s); " +
         std::to_string(report.traced) + " with PC attribution, " +
         std::to_string(report.detected) + " with an observed divergence";
  if (report.quarantined != 0) {
    out += ", " + std::to_string(report.quarantined) + " quarantined";
  }
  out += ".\n\n";

  out += "## Component ranking\n\n";
  {
    std::vector<std::string> header = {"component"};
    header.insert(header.end(), kSliceHeader.begin(), kSliceHeader.end());
    std::vector<std::vector<std::string>> rows;
    for (const auto& c : report.components) {
      std::vector<std::string> row = {c.component};
      const auto cells = sliceCells(c.slice);
      row.insert(row.end(), cells.begin(), cells.end());
      rows.push_back(std::move(row));
    }
    out += campaign::renderMarkdownTable(header, rows);
  }

  out += "\n## Instruction vulnerability\n\n";
  {
    std::vector<std::string> header = {"instruction"};
    header.insert(header.end(), kSliceHeader.begin(), kSliceHeader.end());
    std::vector<std::vector<std::string>> rows;
    for (const auto& i : report.instructions) {
      std::vector<std::string> row = {i.mnemonic};
      const auto cells = sliceCells(i.slice);
      row.insert(row.end(), cells.begin(), cells.end());
      rows.push_back(std::move(row));
    }
    out += campaign::renderMarkdownTable(header, rows);
  }

  out += "\n## PC attribution\n\n";
  {
    std::vector<std::string> header = {"pc", "instruction"};
    header.insert(header.end(), kSliceHeader.begin(), kSliceHeader.end());
    std::vector<std::vector<std::string>> rows;
    for (const auto& p : report.pcs) {
      std::vector<std::string> row = {pcHex(p.pc), p.mnemonic};
      const auto cells = sliceCells(p.slice);
      row.insert(row.end(), cells.begin(), cells.end());
      rows.push_back(std::move(row));
    }
    out += campaign::renderMarkdownTable(header, rows);
  }

  out += "\n## Fault latency (cycles from injection to first divergence)\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& b : report.latency) {
      const std::string range =
          b.lo == b.hi ? std::to_string(b.lo)
                       : std::to_string(b.lo) + "-" + std::to_string(b.hi);
      rows.push_back({range, std::to_string(b.count)});
    }
    out += campaign::renderMarkdownTable({"latency", "count"}, rows);
  }
  return out;
}

std::string toCsv(const VulnerabilityReport& report) {
  std::vector<std::string> header = {"component",  "experiments", "failures",
                                     "latents",    "silents",     "failure_bp",
                                     "latent_bp",  "silent_bp"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& c : report.components) {
    rows.push_back({c.component, std::to_string(c.slice.experiments),
                    std::to_string(c.slice.failures),
                    std::to_string(c.slice.latents),
                    std::to_string(c.slice.silents),
                    std::to_string(c.slice.failureBp),
                    std::to_string(c.slice.latentBp),
                    std::to_string(c.slice.silentBp)});
  }
  return campaign::renderCsv(header, rows);
}

}  // namespace fades::analytics
