file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_indet.dir/bench_fig14_indet.cpp.o"
  "CMakeFiles/bench_fig14_indet.dir/bench_fig14_indet.cpp.o.d"
  "bench_fig14_indet"
  "bench_fig14_indet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_indet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
