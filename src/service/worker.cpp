#include "service/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace fades::service {

using campaign::CampaignJournal;
using campaign::ExperimentOutcome;
using common::ErrorKind;
using common::FadesError;
using common::require;
using obs::Json;

namespace {

bool readString(const Json& j, const char* key, std::string& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isString()) return false;
  out = f->asString();
  return true;
}

bool readU64(const Json& j, const char* key, std::uint64_t& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = static_cast<std::uint64_t>(f->asInt());
  return true;
}

std::string messageType(const Json& j) {
  std::string type;
  readString(j, "type", type);
  return type;
}

}  // namespace

WorkerDaemon::WorkerDaemon(WorkerOptions options) : opt_(std::move(options)) {
  if (opt_.name.empty()) {
    opt_.name = "worker-" + std::to_string(::getpid());
  }
}

void WorkerDaemon::sleepInterruptible(int ms) {
  // 50 ms slices so stop() takes effect promptly even inside a long backoff.
  while (ms > 0 && !stop_.load()) {
    const int slice = std::min(ms, 50);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    ms -= slice;
  }
}

int WorkerDaemon::run() {
  int backoffMs = opt_.reconnectBaseMs;
  unsigned failures = 0;
  while (!stop_.load()) {
    Socket sock;
    try {
      sock = connectTo(opt_.host, opt_.port, opt_.recvTimeoutMs);
      Json hello = Json::object();
      hello.set("type", Json(std::string("hello")));
      hello.set("schema", Json(std::string(kWireSchema)));
      hello.set("role", Json(std::string("worker")));
      hello.set("worker", Json(opt_.name));
      sendMessage(sock, hello);
      const auto welcome = recvMessage(sock, opt_.recvTimeoutMs);
      require(welcome && messageType(*welcome) == "welcome",
              ErrorKind::LinkError, "coordinator did not answer the hello");
    } catch (const FadesError& e) {
      ++failures;
      if (opt_.maxReconnects != 0 && failures >= opt_.maxReconnects) {
        FADES_LOG(Error) << "worker giving up"
                         << obs::kv("worker", opt_.name)
                         << obs::kv("failures",
                                    static_cast<std::uint64_t>(failures))
                         << obs::kv("error", e.what());
        return 1;
      }
      FADES_LOG(Warn) << "worker reconnect backoff"
                      << obs::kv("worker", opt_.name)
                      << obs::kv("backoff_ms",
                                 static_cast<std::uint64_t>(backoffMs))
                      << obs::kv("error", e.what());
      sleepInterruptible(backoffMs);
      backoffMs = std::min(backoffMs * 2, opt_.reconnectCapMs);
      continue;
    }
    failures = 0;
    backoffMs = opt_.reconnectBaseMs;
    Served served = Served::LinkLost;
    try {
      served = serveConnection(sock);
    } catch (const FadesError& e) {
      // Wire trouble mid-conversation: drop the connection and let the
      // reconnect loop try again. The coordinator re-leases anything we
      // were holding once the deadline passes.
      FADES_LOG(Warn) << "worker link lost" << obs::kv("worker", opt_.name)
                      << obs::kv("error", e.what());
    }
    if (served == Served::Shutdown) {
      FADES_LOG(Info) << "worker shutdown by coordinator"
                      << obs::kv("worker", opt_.name);
      return 0;
    }
    if (served == Served::Stopped) return 0;
  }
  return 0;
}

WorkerDaemon::Served WorkerDaemon::serveConnection(const Socket& sock) {
  while (!stop_.load()) {
    Json request = Json::object();
    request.set("type", Json(std::string("lease_request")));
    request.set("worker", Json(opt_.name));
    sendMessage(sock, request);
    const auto reply = recvMessage(sock, opt_.recvTimeoutMs);
    if (!reply) return Served::LinkLost;
    const std::string type = messageType(*reply);
    if (type == "shutdown") return Served::Shutdown;
    if (type == "lease") {
      runLease(sock, *reply);
      continue;
    }
    if (type == "idle") {
      std::uint64_t retryMs = 200;
      readU64(*reply, "retry_ms", retryMs);
      sleepInterruptible(static_cast<int>(std::min<std::uint64_t>(
          retryMs, 5000)));
      continue;
    }
    // "error" or anything unexpected: pause briefly rather than hot-loop.
    FADES_LOG(Warn) << "unexpected coordinator reply"
                    << obs::kv("worker", opt_.name) << obs::kv("type", type);
    sleepInterruptible(200);
  }
  return Served::Stopped;
}

WorkerDaemon::CachedSystem& WorkerDaemon::systemFor(const JobSpec& job,
                                                    const std::string& fp) {
  const auto it = systems_.find(fp);
  if (it != systems_.end()) {
    it->second.lastUsed = ++useSeq_;
    return it->second;
  }
  if (systems_.size() >= std::max(1u, opt_.maxCachedSystems)) {
    // Evict the least recently used system; campaigns usually arrive in
    // batches of one or two, so thrash here means the operator under-sized
    // the cache, not a correctness problem.
    auto victim = systems_.begin();
    for (auto i = systems_.begin(); i != systems_.end(); ++i) {
      if (i->second.lastUsed < victim->second.lastUsed) victim = i;
    }
    systems_.erase(victim);
  }
  CachedSystem cached;
  cached.system = buildSystem(job);
  cached.engine = cached.system->factory();
  require(cached.engine != nullptr, ErrorKind::InvalidArgument,
          "engine factory returned null");
  cached.pool = cached.engine->enumeratePool(job.spec);
  if (job.prune) {
    // Every worker derives the identical plan (a pure function of the job),
    // so synthesized outcomes still satisfy the byzantine agreement checks.
    cached.plan = buildPrunePlan(*cached.system);
    cached.memberClass = cached.plan.memberClassIndex();
  }
  cached.lastUsed = ++useSeq_;
  return systems_.emplace(fp, std::move(cached)).first->second;
}

campaign::ExperimentOutcome WorkerDaemon::runJobExperiment(
    CachedSystem& sys, const JobSpec& job, std::uint64_t index,
    obs::Counter& quarantined) {
  if (job.prune && index < sys.memberClass.size() &&
      sys.memberClass[index] >= 0) {
    const auto& cls =
        sys.plan.classes[static_cast<std::size_t>(sys.memberClass[index])];
    auto rep = sys.repOutcomes.find(cls.representative);
    if (rep == sys.repOutcomes.end()) {
      // The representative may be leased to another worker (or to this one,
      // later); outcomes are pure functions of (job, index), so running it
      // locally once reproduces the identical result for cloning.
      rep = sys.repOutcomes
                .emplace(cls.representative,
                         campaign::runExperimentWithRetry(
                             *sys.engine, job.spec, sys.pool,
                             static_cast<unsigned>(cls.representative),
                             opt_.experimentAttempts, quarantined))
                .first;
    }
    if (!rep->second.quarantined) {
      return sys.engine->synthesizeOutcome(job.spec, sys.pool,
                                           static_cast<unsigned>(index),
                                           rep->second);
    }
  }
  auto outcome = campaign::runExperimentWithRetry(
      *sys.engine, job.spec, sys.pool, static_cast<unsigned>(index),
      opt_.experimentAttempts, quarantined);
  if (job.prune && index < sys.memberClass.size() &&
      sys.memberClass[index] < 0) {
    // Cache representatives executed through regular leases so members
    // leased later clone instead of re-running them. Classes are sorted by
    // representative index.
    const auto it = std::lower_bound(
        sys.plan.classes.begin(), sys.plan.classes.end(), index,
        [](const campaign::PruneClass& c, std::uint64_t idx) {
          return c.representative < idx;
        });
    if (it != sys.plan.classes.end() && it->representative == index) {
      sys.repOutcomes.emplace(index, outcome);
    }
  }
  return outcome;
}

void WorkerDaemon::runLease(const Socket& sock, const Json& lease) {
  std::string fp;
  std::uint64_t leaseId = 0;
  std::uint64_t first = 0;
  std::uint64_t count = 0;
  const Json* jobJson = lease.find("job");
  std::string error;
  JobSpec job;
  require(readString(lease, "fingerprint", fp) &&
              readU64(lease, "lease_id", leaseId) &&
              readU64(lease, "first", first) &&
              readU64(lease, "count", count) && jobJson != nullptr &&
              jobSpecFromJson(*jobJson, job, &error),
          ErrorKind::LinkError, "malformed lease: " + error);

  auto release = [&](const std::string& why) {
    Json msg = Json::object();
    msg.set("type", Json(std::string("release")));
    msg.set("worker", Json(opt_.name));
    msg.set("fingerprint", Json(fp));
    msg.set("lease_id", Json(leaseId));
    msg.set("first", Json(first));
    msg.set("error", Json(why));
    sendMessage(sock, msg);
    recvMessage(sock, opt_.recvTimeoutMs);  // release_ack / error - ignored
  };

  if (poisoned_.find(fp) != poisoned_.end()) {
    release("worker cannot build this campaign: " + poisoned_[fp]);
    return;
  }

  CachedSystem* sys = nullptr;
  try {
    sys = &systemFor(job, fp);
  } catch (const FadesError& e) {
    // A job this worker cannot build (bad spec for this build, fatal
    // engine setup error) is released back, and remembered so the same
    // lease does not ping-pong here forever.
    poisoned_[fp] = e.what();
    FADES_LOG(Error) << "worker cannot build campaign"
                     << obs::kv("worker", opt_.name)
                     << obs::kv("fingerprint", fp)
                     << obs::kv("error", e.what());
    release(e.what());
    return;
  }

  obs::Counter& quarantined =
      obs::Registry::global().counter("campaign.quarantined");
  std::vector<ExperimentOutcome> outcomes;
  outcomes.reserve(count);
  auto lastBeat = std::chrono::steady_clock::now();
  for (std::uint64_t i = first; i < first + count; ++i) {
    if (stop_.load()) return;  // abandon; the lease expires on its own
    ExperimentOutcome outcome;
    try {
      outcome = runJobExperiment(*sys, job, i, quarantined);
    } catch (const FadesError& e) {
      if (e.kind() == ErrorKind::LinkError) throw;
      poisoned_[fp] = e.what();
      release(e.what());
      return;
    }
    if (opt_.tamper) opt_.tamper(outcome);
    outcomes.push_back(std::move(outcome));

    const auto now = std::chrono::steady_clock::now();
    if (now - lastBeat >= std::chrono::milliseconds(opt_.heartbeatMs)) {
      lastBeat = now;
      Json beat = Json::object();
      beat.set("type", Json(std::string("heartbeat")));
      beat.set("worker", Json(opt_.name));
      beat.set("fingerprint", Json(fp));
      beat.set("lease_id", Json(leaseId));
      beat.set("first", Json(first));
      beat.set("done", Json(static_cast<std::uint64_t>(outcomes.size())));
      sendMessage(sock, beat);
      const auto ack = recvMessage(sock, opt_.recvTimeoutMs);
      if (!ack) {
        common::raise(ErrorKind::LinkError,
                      "coordinator closed during heartbeat");
      }
      if (messageType(*ack) != "heartbeat_ack") {
        // Revoked: the deadline passed and the block belongs to someone
        // else now. Abandon the rest; a late duplicate completion would
        // only burn the digest checker's time.
        FADES_LOG(Warn) << "lease revoked mid-block"
                        << obs::kv("worker", opt_.name)
                        << obs::kv("fingerprint", fp)
                        << obs::kv("first", first);
        return;
      }
    }
  }

  Json complete = Json::object();
  complete.set("type", Json(std::string("complete")));
  complete.set("worker", Json(opt_.name));
  complete.set("fingerprint", Json(fp));
  complete.set("lease_id", Json(leaseId));
  complete.set("first", Json(first));
  Json list = Json::array();
  for (const auto& outcome : outcomes) {
    list.push(CampaignJournal::outcomeJson(outcome));
  }
  complete.set("outcomes", std::move(list));
  sendMessage(sock, complete);
  const auto ack = recvMessage(sock, opt_.recvTimeoutMs);
  if (!ack) {
    common::raise(ErrorKind::LinkError, "coordinator closed during completion");
  }
  if (messageType(*ack) == "error") {
    std::string why;
    readString(*ack, "error", why);
    FADES_LOG(Warn) << "completion rejected" << obs::kv("worker", opt_.name)
                    << obs::kv("fingerprint", fp) << obs::kv("error", why);
  }
}

}  // namespace fades::service
