// Event-driven gate-level simulator.
//
// This is the execution engine of the VFIT baseline: the paper's VFIT tool
// injects faults through "simulator commands" (force / release / deposit)
// while an event-driven HDL simulator executes the model. Gate evaluations
// are counted so the baseline's CPU-time model can be derived from real
// simulation activity instead of a hard-coded constant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace fades::sim {

using netlist::FlopId;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;

/// Full simulator state for checkpoint/restore (used to replay experiments
/// from the injection instant without re-running the prefix).
struct Snapshot {
  std::vector<std::uint8_t> netValues;
  std::vector<std::uint8_t> flopState;
  std::vector<std::vector<std::uint64_t>> ramContents;
  std::vector<std::uint64_t> ramOutputLatch;
  std::vector<std::uint8_t> forced;
  std::vector<std::uint8_t> forcedValue;
  std::uint64_t cycle = 0;
};

class Simulator final : public Engine {
 public:
  /// The netlist must outlive the simulator and must be validated.
  explicit Simulator(const Netlist& netlist);

  /// Reset flops and memories to their declared initial values, clear
  /// forces, zero the inputs, settle combinational logic.
  void reset() override;

  // --- inputs / observation ----------------------------------------------
  void setInput(const std::string& portName, std::uint64_t value) override;
  std::uint64_t portValue(const std::string& outputPortName) const override;
  bool netValue(NetId id) const override { return values_[id.value] != 0; }
  std::uint64_t busValue(const std::vector<NetId>& bus) const override;

  bool flopState(FlopId id) const override {
    return flopState_[id.value] != 0;
  }
  std::uint64_t ramWord(RamId id, std::size_t row) const override {
    return ram_[id.value].mem[row];
  }

  // --- execution ------------------------------------------------------------
  /// Propagate pending combinational events to a fixpoint (delta cycles).
  void settle() override;
  /// One positive clock edge followed by combinational settling.
  void step() override;
  void run(std::uint64_t cycles) override;
  std::uint64_t cycle() const override { return cycle_; }

  // --- simulator commands (the VFIT injection mechanism) -------------------
  /// Override a net's value regardless of its driver, until release().
  void force(NetId id, bool value) override;
  void release(NetId id) override;
  bool isForced(NetId id) const override { return forced_[id.value] != 0; }
  /// Overwrite a flip-flop's stored state (bit-flip style deposit); the new
  /// value propagates immediately.
  void depositFlop(FlopId id, bool value) override;
  /// Overwrite one stored memory word (bit-flips into RAM contents).
  void depositRam(RamId id, std::size_t row, std::uint64_t value) override;

  // --- checkpoint -----------------------------------------------------------
  Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

  // --- activity accounting ----------------------------------------------------
  /// Total gate evaluations + state-element updates performed so far; the
  /// VFIT cost model converts this to modeled CPU seconds.
  std::uint64_t eventsProcessed() const override { return events_; }

 private:
  struct RamState {
    std::vector<std::uint64_t> mem;
    std::uint64_t outputLatch = 0;  // registered read port
  };

  void setNetValue(NetId id, bool value);
  void scheduleFanout(std::uint32_t netIndex);
  void evaluateGate(std::uint32_t gateIndex);
  void applyRamOutput(std::uint32_t ramIndex);

  const Netlist& nl_;

  std::vector<std::uint8_t> values_;       // per net
  std::vector<std::uint8_t> flopState_;    // per flop
  std::vector<RamState> ram_;              // per ram
  std::vector<std::uint8_t> forced_;       // per net
  std::vector<std::uint8_t> forcedValue_;  // per net

  // CSR fanout: net -> gates whose inputs include it.
  std::vector<std::uint32_t> fanoutOffsets_;
  std::vector<std::uint32_t> fanoutGates_;

  std::vector<std::uint32_t> workList_;
  std::vector<std::uint8_t> inWorkList_;  // per gate

  std::uint64_t cycle_ = 0;
  std::uint64_t events_ = 0;
  // Registry mirrors (sim.events / sim.steps): the event count is flushed
  // as a delta once per step so the gate-evaluation inner loop stays free
  // of atomics.
  std::uint64_t eventsFlushed_ = 0;
  obs::Counter& eventsCounter_;
  obs::Counter& stepsCounter_;
};

}  // namespace fades::sim
