// Packed bit storage used for FPGA configuration memory, LUT truth tables,
// memory-block contents and read-back frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fades::common {

/// Fixed-capacity-after-construction packed bit vector with byte-level
/// import/export (configuration frames are transferred as bytes).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bitCount, bool fill = false);

  std::size_t size() const { return bitCount_; }
  bool empty() const { return bitCount_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= 1ULL << (i & 63); }

  void clearAll();
  void setAll();

  /// Number of set bits.
  std::size_t popcount() const;

  /// Bit-granular slice copy: dst[dstOff + k] = src[srcOff + k].
  static void copyBits(const BitVector& src, std::size_t srcOff,
                       BitVector& dst, std::size_t dstOff, std::size_t n);

  /// Export n bits starting at bitOff as packed little-endian bytes
  /// (bit k of the slice lands in byte k/8, bit position k%8).
  std::vector<std::uint8_t> exportBytes(std::size_t bitOff,
                                        std::size_t n) const;

  /// Allocation-free exportBytes: fills out[0 .. (n+7)/8) and leaves any
  /// remaining bytes of `out` untouched. Word-at-a-time, so configuration
  /// frames come out of the plane without a per-bit scan.
  void exportBytesInto(std::size_t bitOff, std::size_t n,
                       std::span<std::uint8_t> out) const;

  /// Import packed bytes (inverse of exportBytes).
  void importBytes(std::size_t bitOff, std::size_t n,
                   std::span<const std::uint8_t> bytes);

  /// Extract up to 64 bits starting at bitOff as an integer (bit 0 = LSB).
  std::uint64_t getWord(std::size_t bitOff, unsigned n) const;
  void setWord(std::size_t bitOff, unsigned n, std::uint64_t value);

  bool operator==(const BitVector& other) const = default;

  /// Indices at which the two vectors differ (for delta-based
  /// reconfiguration and for tests). Sizes must match.
  std::vector<std::size_t> diff(const BitVector& other) const;

  /// Invoke fn(index) for every set bit, ascending. Fast word-skip scan;
  /// used by the device's connectivity rebuild over the configuration plane.
  template <typename Fn>
  void forEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t x = words_[w];
      while (x != 0) {
        fn(w * 64 + static_cast<std::size_t>(countrZero(x)));
        x &= x - 1;
      }
    }
  }

  /// "0101..." debug rendering of a bit range.
  std::string toString(std::size_t bitOff, std::size_t n) const;

 private:
  static int countrZero(std::uint64_t x) { return __builtin_ctzll(x); }

  std::size_t bitCount_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fades::common
