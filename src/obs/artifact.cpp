#include "obs/artifact.hpp"

#include <cstdio>
#include <stdexcept>

namespace fades::obs {

RunArtifact::RunArtifact(std::string kind, std::string name)
    : kind_(std::move(kind)), name_(std::move(name)) {}

void RunArtifact::setSection(const std::string& key, Json value) {
  sections_.set(key, std::move(value));
}

Json RunArtifact::toJson() const {
  Json out = Json::object();
  out.set("schema", kSchema);
  out.set("kind", kind_);
  out.set("name", name_);
  out.set("spec", spec_);
  out.set("records", records_);
  out.set("metrics", metrics_);
  out.set("cost", cost_);
  for (const auto& [key, value] : sections_.members()) out.set(key, value);
  return out;
}

std::string RunArtifact::toJsonl() const {
  Json header = Json::object();
  header.set("schema", kSchema);
  header.set("kind", kind_);
  header.set("name", name_);
  header.set("spec", spec_);
  std::string out = header.dump() + "\n";
  for (const auto& r : records_.items()) {
    Json line = Json::object();
    line.set("record", r);
    out += line.dump() + "\n";
  }
  Json summary = Json::object();
  summary.set("metrics", metrics_);
  summary.set("cost", cost_);
  for (const auto& [key, value] : sections_.members()) summary.set(key, value);
  out += summary.dump() + "\n";
  return out;
}

void writeFile(const std::string& path, const std::string& text) {
  // Crash-safe: write the whole artifact to <path>.tmp, then rename() it
  // into place (atomic on POSIX). A process killed mid-write leaves either
  // the previous complete file or a stray .tmp - never a truncated file
  // that parses as a complete artifact.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != text.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

void RunArtifact::writeJson(const std::string& path, int indent) const {
  writeFile(path, toJson().dump(indent) + "\n");
}

void RunArtifact::writeJsonl(const std::string& path) const {
  writeFile(path, toJsonl());
}

}  // namespace fades::obs
