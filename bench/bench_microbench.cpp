// Google-benchmark microbenchmarks of the substrate itself: how fast the
// host machine emulates the configured FPGA, simulates the netlist, and
// performs reconfiguration operations. These are the wall-clock numbers a
// user needs to size real campaigns (the modeled 2006 times come from the
// board-link cost model instead).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bits/config_port.hpp"
#include "campaign/types.hpp"
#include "core/autonomous.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "campaign/prune_plan.hpp"
#include "rtl/builder.hpp"
#include "service/jobspec.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "synth/implement.hpp"
#include "vfit/vfit.hpp"

namespace {

using namespace fades;

struct Shared {
  mc8051::Workload workload = mc8051::bubblesort(6);
  netlist::Netlist nl = mc8051::buildCore(workload.bytes);
  synth::Implementation impl =
      synth::implement(nl, fpga::DeviceSpec::virtex1000Like());

  static const Shared& get() {
    static Shared s;
    return s;
  }
};

void BM_IssCycle(benchmark::State& state) {
  mc8051::Iss iss(Shared::get().workload.bytes);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles += iss.stepInstruction();
    if (iss.cycleCount() > Shared::get().workload.cycles) iss.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_IssCycle);

void BM_NetlistSimulatorCycle(benchmark::State& state) {
  sim::Simulator simulator(Shared::get().nl);
  for (auto _ : state) simulator.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetlistSimulatorCycle);

// The compiled engine advances 64 fault machines per step, so one iteration
// processes 64 machine-cycles; items/s is therefore directly comparable to
// BM_NetlistSimulatorCycle's (one machine-cycle per iteration). CI's
// regression gate requires the ratio to stay >= 10x.
void BM_CompiledNetlistCycle(benchmark::State& state) {
  sim::CompiledSimulator cs(Shared::get().nl);
  for (auto _ : state) cs.step();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              sim::CompiledSimulator::kLanes));
}
BENCHMARK(BM_CompiledNetlistCycle);

// Whole VFIT campaigns (MC8051 + Bubblesort) at wave-relevant experiment
// counts: 1 (degenerate wave), 8 (partial wave), 64 (one full 63-lane wave
// plus one spill). items/s = experiments per second, the number behind the
// EXPERIMENTS.md event-vs-compiled throughput table. The golden run is paid
// once in the fixture, not per iteration, on both engines.
struct VfitShared {
  vfit::VfitTool event;
  vfit::VfitTool compiled;

  static vfit::VfitOptions options(sim::EngineKind kind) {
    vfit::VfitOptions opt;
    opt.engine = kind;
    return opt;
  }
  VfitShared()
      : event(Shared::get().nl, Shared::get().workload.cycles,
              options(sim::EngineKind::EventDriven)),
        compiled(Shared::get().nl, Shared::get().workload.cycles,
                 options(sim::EngineKind::Compiled)) {}
  static VfitShared& get() {
    static VfitShared s;
    return s;
  }
};

void runVfitCampaign(benchmark::State& state, vfit::VfitTool& tool) {
  campaign::CampaignSpec spec;
  spec.model = campaign::FaultModel::BitFlip;
  spec.targets = campaign::TargetClass::SequentialFF;
  spec.experiments = static_cast<unsigned>(state.range(0));
  spec.seed = 7;
  for (auto _ : state) benchmark::DoNotOptimize(tool.runCampaign(spec));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_VfitCampaignEventDriven(benchmark::State& state) {
  runVfitCampaign(state, VfitShared::get().event);
}
BENCHMARK(BM_VfitCampaignEventDriven)
    ->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_VfitCampaignCompiled(benchmark::State& state) {
  runVfitCampaign(state, VfitShared::get().compiled);
}
BENCHMARK(BM_VfitCampaignCompiled)
    ->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

// Autonomous campaigns on the same workload and experiment counts; the
// semantic engine is shared with VFIT, so items/s differences against the
// VFIT pair above isolate the autonomous metering and instrumentation
// bookkeeping (including the one-time transparency check in the fixture).
struct AutonomousShared {
  core::AutonomousTool event;
  core::AutonomousTool compiled;

  static core::AutonomousOptions options(sim::EngineKind kind) {
    core::AutonomousOptions opt;
    opt.engine = kind;
    return opt;
  }
  AutonomousShared()
      : event(Shared::get().nl, Shared::get().workload.cycles,
              options(sim::EngineKind::EventDriven)),
        compiled(Shared::get().nl, Shared::get().workload.cycles,
                 options(sim::EngineKind::Compiled)) {}
  static AutonomousShared& get() {
    static AutonomousShared s;
    return s;
  }
};

void runAutonomousCampaign(benchmark::State& state,
                           core::AutonomousTool& tool) {
  campaign::CampaignSpec spec;
  spec.model = campaign::FaultModel::BitFlip;
  spec.targets = campaign::TargetClass::SequentialFF;
  spec.experiments = static_cast<unsigned>(state.range(0));
  spec.seed = 7;
  for (auto _ : state) benchmark::DoNotOptimize(tool.runCampaign(spec));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_AutonomousCampaignEventDriven(benchmark::State& state) {
  runAutonomousCampaign(state, AutonomousShared::get().event);
}
BENCHMARK(BM_AutonomousCampaignEventDriven)
    ->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_AutonomousCampaignCompiled(benchmark::State& state) {
  runAutonomousCampaign(state, AutonomousShared::get().compiled);
}
BENCHMARK(BM_AutonomousCampaignCompiled)
    ->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

// RTR vs autonomous, per-injection modeled time on the same MC8051 bit-flip
// campaign. The `modeled_speedup` counter is the number CI gates (>= 5x):
// it compares the board-link cost model (frame readback + partial frames +
// host turnaround per injection) against the autonomous one (mask-chain
// load + restore sweep at emulator clock), so it is machine-independent.
void BM_AutonomousVsRtrModeledSpeedup(benchmark::State& state) {
  const auto& s = Shared::get();
  core::FadesOptions fOpt;
  fOpt.observedOutputs = {"p0", "p1"};
  fpga::Device dev(s.impl.spec);
  core::FadesTool rtr(dev, s.impl, s.workload.cycles, fOpt);
  auto& aut = AutonomousShared::get().event;

  campaign::CampaignSpec spec;
  spec.model = campaign::FaultModel::BitFlip;
  spec.targets = campaign::TargetClass::SequentialFF;
  spec.experiments = 24;
  spec.seed = 7;

  double rtrMean = 0, autMean = 0;
  for (auto _ : state) {
    rtrMean = rtr.runCampaign(spec).modeledSeconds.mean();
    autMean = aut.runCampaign(spec).modeledSeconds.mean();
  }
  state.counters["rtr_injection_seconds"] = rtrMean;
  state.counters["autonomous_injection_seconds"] = autMean;
  state.counters["modeled_speedup"] = rtrMean / autMean;
  state.SetItemsProcessed(state.iterations() * 2 * spec.experiments);
}
BENCHMARK(BM_AutonomousVsRtrModeledSpeedup)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_FpgaEmulationCycle(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  for (auto _ : state) dev.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpgaEmulationCycle);

void BM_LutTableRewrite(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  bits::ConfigPort port(dev);
  const auto cb = s.impl.luts[0].cb;
  const auto original = s.impl.luts[0].table;
  for (auto _ : state) {
    port.setLutTable(cb, static_cast<std::uint16_t>(~original));
    dev.settle();
    port.setLutTable(cb, original);
    dev.settle();
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_LutTableRewrite);

void BM_CaptureFrameReadback(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  bits::ConfigPort port(dev);
  unsigned col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(port.readCaptureFrame(col));
    col = (col + 1) % s.impl.spec.cols;
  }
}
BENCHMARK(BM_CaptureFrameReadback);

void BM_DeviceStateRestore(benchmark::State& state) {
  const auto& s = Shared::get();
  fpga::Device dev(s.impl.spec);
  dev.writeFullBitstream(s.impl.bitstream);
  const auto snapshot = dev.captureState();
  for (auto _ : state) dev.restoreState(snapshot);
}
BENCHMARK(BM_DeviceStateRestore);

// Reconfiguration-dominated single experiments, with and without the
// session-scoped frame transaction cache. The design is deliberately tiny
// and the emulated run short, so wall-clock is dominated by configuration
// frame traffic rather than by cycle emulation - this is the regime the
// cache targets, and the pair below is what CI's regression gate compares
// (cached / uncached throughput ratio, machine-independent).
struct ReconfigDesign {
  netlist::Netlist nl;
  synth::Implementation impl;
  std::uint64_t cycles = 12;

  static netlist::Netlist build() {
    rtl::Builder b;
    b.setUnit(netlist::Unit::Registers);
    rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
    auto fb = b.lxor(lfsr.q[7],
                     b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    rtl::Bus next{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.setUnit(netlist::Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(netlist::Unit::Alu);
    auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
    b.output("out", sum.sum);
    return b.finish();
  }

  ReconfigDesign()
      : nl(build()), impl(synth::implement(nl, fpga::DeviceSpec::small())) {}

  static const ReconfigDesign& get() {
    static ReconfigDesign d;
    return d;
  }
};

void runReconfigExperiments(benchmark::State& state,
                            campaign::FaultModel model,
                            campaign::TargetClass cls, bool cache,
                            core::BitFlipVia via = core::BitFlipVia::Lsr) {
  const auto& d = ReconfigDesign::get();
  core::FadesOptions opt;
  opt.observedOutputs = {"out"};
  opt.sessionFrameCache = cache;
  opt.bitFlipVia = via;
  fpga::Device dev(d.impl.spec);
  core::FadesTool tool(dev, d.impl, d.cycles, opt);
  campaign::CampaignSpec spec;
  spec.model = model;
  spec.targets = cls;
  spec.seed = 11;
  spec.experiments = 1u << 20;  // index wrap bound, never reached
  const auto pool = tool.campaignPool(spec);
  unsigned index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tool.runCampaignExperiment(spec, pool, index++));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ReconfigExperimentPulseCached(benchmark::State& state) {
  runReconfigExperiments(state, campaign::FaultModel::Pulse,
                         campaign::TargetClass::CombinationalLut, true);
}
BENCHMARK(BM_ReconfigExperimentPulseCached);

void BM_ReconfigExperimentPulseUncached(benchmark::State& state) {
  runReconfigExperiments(state, campaign::FaultModel::Pulse,
                         campaign::TargetClass::CombinationalLut, false);
}
BENCHMARK(BM_ReconfigExperimentPulseUncached);

void BM_ReconfigExperimentBitFlipCached(benchmark::State& state) {
  runReconfigExperiments(state, campaign::FaultModel::BitFlip,
                         campaign::TargetClass::SequentialFF, true);
}
BENCHMARK(BM_ReconfigExperimentBitFlipCached);

void BM_ReconfigExperimentBitFlipUncached(benchmark::State& state) {
  runReconfigExperiments(state, campaign::FaultModel::BitFlip,
                         campaign::TargetClass::SequentialFF, false);
}
BENCHMARK(BM_ReconfigExperimentBitFlipUncached);

// The GSR mechanism reads every used capture column and rewrites the
// set/reset mux of every used FF twice per experiment - the most
// reconfiguration-dominated injector, and the pair CI's regression gate
// tracks.
void BM_ReconfigExperimentGsrCached(benchmark::State& state) {
  runReconfigExperiments(state, campaign::FaultModel::BitFlip,
                         campaign::TargetClass::SequentialFF, true,
                         core::BitFlipVia::Gsr);
}
BENCHMARK(BM_ReconfigExperimentGsrCached);

void BM_ReconfigExperimentGsrUncached(benchmark::State& state) {
  runReconfigExperiments(state, campaign::FaultModel::BitFlip,
                         campaign::TargetClass::SequentialFF, false,
                         core::BitFlipVia::Gsr);
}
BENCHMARK(BM_ReconfigExperimentGsrUncached);

// Liveness-based fault-list pruning on the paper's Bubblesort workload:
// derive the fades.prune/1 plan (golden trace + analysis, no campaign
// execution) and report the experiments-executed collapse. Wall-clock times
// the analysis itself; the counters are machine-independent and carry the
// numbers EXPERIMENTS.md tabulates and CI's regression gate tracks - the
// pool-proportional FF+RAM campaign must collapse >= 5x.
campaign::PrunePlan derivePrunePlan(campaign::FaultModel model,
                                    campaign::TargetClass targets,
                                    unsigned experiments) {
  service::JobSpec job;
  job.tool = "vfit";
  job.workload = "bubblesort6";
  job.spec.model = model;
  job.spec.targets = targets;
  job.spec.band = campaign::DurationBand::shortBand();
  job.spec.experiments = experiments;
  job.spec.seed = 2006;
  job.prune = true;
  const auto sys = service::buildSystem(job);
  return service::buildPrunePlan(*sys);
}

void reportCollapse(benchmark::State& state, const campaign::PrunePlan& plan) {
  state.counters["experiments"] =
      static_cast<double>(plan.spec.experiments);
  state.counters["executed"] = static_cast<double>(plan.executedCount());
  state.counters["collapsed"] = static_cast<double>(plan.collapsedCount());
  state.counters["collapse_factor"] = plan.collapseFactor();
}

void BM_PruneCollapseFlops(benchmark::State& state) {
  campaign::PrunePlan plan;
  for (auto _ : state) {
    plan = derivePrunePlan(campaign::FaultModel::BitFlip,
                           campaign::TargetClass::SequentialFF, 2000);
    benchmark::DoNotOptimize(plan.classes.size());
  }
  reportCollapse(state, plan);
}
BENCHMARK(BM_PruneCollapseFlops)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PruneCollapseMemory(benchmark::State& state) {
  campaign::PrunePlan plan;
  for (auto _ : state) {
    plan = derivePrunePlan(campaign::FaultModel::BitFlip,
                           campaign::TargetClass::MemoryBlockBit, 2000);
    benchmark::DoNotOptimize(plan.classes.size());
  }
  reportCollapse(state, plan);
}
BENCHMARK(BM_PruneCollapseMemory)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// Pulses into LUTs collapse only through dead-target classes, and synthesis
// already sweeps gates with no path to a visible net - so on a fully
// observed design the factor stays near 1x. The benchmark documents that
// floor rather than gating on it.
void BM_PruneCollapseLutsPulse(benchmark::State& state) {
  campaign::PrunePlan plan;
  for (auto _ : state) {
    plan = derivePrunePlan(campaign::FaultModel::Pulse,
                           campaign::TargetClass::CombinationalLut, 2000);
    benchmark::DoNotOptimize(plan.classes.size());
  }
  reportCollapse(state, plan);
}
BENCHMARK(BM_PruneCollapseLutsPulse)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// The acceptance metric: one FF+RAM campaign pair with experiment counts
// proportional to the two pools (the way a whole-chip campaign would weight
// them), 5000 experiments total. collapse_factor here is the overall
// experiments-executed reduction and must stay >= 5x.
void BM_PruneCollapseFlopsPlusMemory(benchmark::State& state) {
  campaign::PrunePlan ff, ram;
  unsigned total = 5000;
  for (auto _ : state) {
    // Probe pass fixes the two pool sizes; the split is then proportional.
    const auto ffProbe = derivePrunePlan(
        campaign::FaultModel::BitFlip, campaign::TargetClass::SequentialFF, 1);
    const auto ramProbe =
        derivePrunePlan(campaign::FaultModel::BitFlip,
                        campaign::TargetClass::MemoryBlockBit, 1);
    const double ffShare =
        static_cast<double>(ffProbe.poolSize) /
        static_cast<double>(ffProbe.poolSize + ramProbe.poolSize);
    const auto ffCount =
        static_cast<unsigned>(ffShare * static_cast<double>(total) + 0.5);
    ff = derivePrunePlan(campaign::FaultModel::BitFlip,
                         campaign::TargetClass::SequentialFF, ffCount);
    ram = derivePrunePlan(campaign::FaultModel::BitFlip,
                          campaign::TargetClass::MemoryBlockBit,
                          total - ffCount);
    benchmark::DoNotOptimize(ff.classes.size() + ram.classes.size());
  }
  const auto executed = ff.executedCount() + ram.executedCount();
  state.counters["experiments"] = static_cast<double>(total);
  state.counters["executed"] = static_cast<double>(executed);
  state.counters["collapsed"] =
      static_cast<double>(ff.collapsedCount() + ram.collapsedCount());
  state.counters["collapse_factor"] =
      static_cast<double>(total) / static_cast<double>(executed);
}
BENCHMARK(BM_PruneCollapseFlopsPlusMemory)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Synthesize8051(benchmark::State& state) {
  const auto& s = Shared::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::implement(s.nl, fpga::DeviceSpec::virtex1000Like()));
  }
}
BENCHMARK(BM_Synthesize8051)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

// Same `--json [path]` flag as the table benches, translated onto google
// benchmark's native JSON reporter so the artifact carries real timings.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string outFlag, fmtFlag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string(argv[i]) == "--json") {
      std::string path = "BENCH_microbench.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[++i];
      outFlag = "--benchmark_out=" + path;
      args.push_back(outFlag.data());
      args.push_back(fmtFlag.data());
    } else {
      args.push_back(argv[i]);
    }
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
