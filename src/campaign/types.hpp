// Shared fault-injection campaign vocabulary.
//
// Both tools - FADES (run-time reconfiguration on the FPGA) and VFIT
// (simulator commands on the event-driven simulator) - run the same
// experiment design from the paper's Section 6.1: single transient faults,
// injection instants uniformly distributed over the workload, durations
// drawn from three bands (<1, 1-10, 11-20 clock cycles), outcomes classified
// against a golden run as Failure / Latent / Silent (Section 5).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace fades::campaign {

enum class FaultModel : std::uint8_t { BitFlip, Pulse, Delay, Indetermination };
const char* toString(FaultModel m);
/// Inverse of toString(FaultModel); false when `text` names no model.
bool faultModelFromString(std::string_view text, FaultModel& out);

/// Which resource class a campaign draws targets from; mirrors the
/// "FPGA target" column of the paper's Table 1.
enum class TargetClass : std::uint8_t {
  SequentialFF,       // flip-flops (bit-flip / indetermination)
  MemoryBlockBit,     // embedded memory contents (bit-flip)
  CombinationalLut,   // function generators (pulse / indetermination)
  CbInputLine,        // CB input through its inverter mux (pulse)
  SequentialLine,     // routed line driven by a flip-flop (delay)
  CombinationalLine,  // routed line driven by a LUT (delay)
};
const char* toString(TargetClass t);
/// Inverse of toString(TargetClass); false when `text` names no class.
bool targetClassFromString(std::string_view text, TargetClass& out);

/// Fault effect classification (paper Section 5, results analysis module).
enum class Outcome : std::uint8_t { Silent, Latent, Failure };
const char* toString(Outcome o);
/// Inverse of toString(Outcome); false when `text` names no outcome.
bool outcomeFromString(std::string_view text, Outcome& out);
/// Inverse of common::toString(ErrorKind); false when `text` names no kind.
bool errorKindFromString(std::string_view text, common::ErrorKind& out);

/// Fault duration band, in clock cycles. The sub-cycle band models faults
/// shorter than one clock period: they are only captured when they overlap
/// a sampling edge, which happens with probability equal to their fraction
/// of the cycle.
struct DurationBand {
  double minCycles = 1.0;
  double maxCycles = 1.0;
  std::string label;

  static DurationBand subCycle() { return {0.0, 1.0, "<1"}; }
  static DurationBand shortBand() { return {1.0, 10.0, "1-10"}; }
  static DurationBand longBand() { return {11.0, 20.0, "11-20"}; }
  static std::vector<DurationBand> paperBands() {
    return {subCycle(), shortBand(), longBand()};
  }
};

/// Output trace plus final-state signature of one run. Traces hold one word
/// per cycle (the observed output ports packed together); the signature
/// holds every sequential element and memory word.
struct Observation {
  std::vector<std::uint64_t> outputs;
  std::vector<std::uint8_t> finalFlops;
  std::vector<std::uint64_t> finalMemory;
};

/// Compare a faulty run against the golden run.
Outcome classify(const Observation& golden, const Observation& faulty);

struct CampaignSpec {
  FaultModel model = FaultModel::BitFlip;
  TargetClass targets = TargetClass::SequentialFF;
  /// Functional unit to confine faults to; Unit::None = anywhere. Typed as
  /// the netlist Unit in the runners; kept as int here to avoid a cycle.
  int unit = 0;
  DurationBand band = DurationBand::shortBand();
  unsigned experiments = 3000;
  std::uint64_t seed = 1;
  /// When non-empty, faults are drawn from this explicit pool of target
  /// handles instead of the full enumeration - the paper's campaigns over
  /// "eligible" registers / "selected" memory positions work this way.
  std::vector<std::uint32_t> targetPool;
};

/// One golden-run instruction sample: the instruction in flight during a
/// given clock cycle. Produced by an ISS trace hook (mc8051::Iss::
/// tracePcPerCycle) and attached to the injectors via their options so each
/// experiment record carries CFA-style root-cause attribution.
struct InstructionSample {
  std::uint32_t pc = 0;
  std::uint32_t opcode = 0;
};
/// Indexed by cycle: entry c describes the instruction executing at cycle c.
using InstructionTrace = std::vector<InstructionSample>;

struct ExperimentRecord {
  std::string targetName;
  std::uint64_t injectCycle = 0;
  double durationCycles = 0;
  Outcome outcome = Outcome::Silent;
  double modeledSeconds = 0;
  /// Component attribution: the functional unit of the injected site, as a
  /// netlist::toString(Unit) name ("registers", "alu", "fsm", "memctrl",
  /// "ram"; "none" when the site belongs to no unit).
  std::string component;
  /// Golden-run instruction in flight at the injection instant (root-cause
  /// attribution); -1 when no instruction trace was attached to the tool.
  std::int64_t pc = -1;
  std::int64_t opcode = -1;
  /// First cycle whose observed outputs diverged from the golden run, so
  /// detectCycle - injectCycle is the fault latency; -1 when the output
  /// trace never diverged (silent and latent outcomes).
  std::int64_t detectCycle = -1;
  /// Experiment index of the equivalence-class representative this record
  /// was synthesized from under a fades.prune/1 plan; -1 when the
  /// experiment was executed for real (unpruned artifacts never carry the
  /// field, so they stay byte-identical).
  std::int64_t prunedFrom = -1;
};

/// Self-contained result of one campaign experiment. Both the serial
/// campaign loop and the sharded parallel runner produce these and fold
/// them into a CampaignResult strictly in experiment-index order, so every
/// accumulated floating-point sum is bit-identical no matter which worker
/// ran which experiment or in what order the shards finished.
struct ExperimentOutcome {
  std::uint64_t index = 0;  // experiment index within the campaign
  Outcome outcome = Outcome::Silent;
  double modeledSeconds = 0;
  double configSeconds = 0;
  double workloadSeconds = 0;
  double hostSeconds = 0;
  std::uint64_t bytesToDevice = 0;
  std::uint64_t bytesFromDevice = 0;
  std::uint64_t sessions = 0;
  bool hasRecord = false;
  ExperimentRecord record;  // meaningful only when hasRecord is set
  /// Experiment failure: every retry attempt raised a transient error, so
  /// the experiment was quarantined instead of aborting the campaign. A
  /// quarantined outcome contributes nothing to the tallies or the cost
  /// breakdown; it is recorded in CampaignResult::quarantined.
  bool quarantined = false;
  common::ErrorKind failureKind = common::ErrorKind::InvalidArgument;
  std::string failureMessage;  // meaningful only when quarantined is set
  unsigned attempts = 0;       // runs consumed (successful run included)
};

/// One experiment that exhausted its retry budget on transient errors. The
/// quarantined set is part of the campaign result: with link faults the set
/// is a pure function of the spec, so it is identical at any --jobs.
struct QuarantinedExperiment {
  std::uint64_t index = 0;
  common::ErrorKind kind = common::ErrorKind::InvalidArgument;
  std::string error;
  unsigned attempts = 0;
};

/// Modeled cost decomposition of a whole campaign - where the emulation
/// time went (the split behind the paper's Figure 10 / Table 2 numbers).
/// Field meaning per tool: for FADES `configSeconds` is host<->board
/// reconfiguration traffic and `workloadSeconds` is execution at the FPGA
/// clock; for VFIT `configSeconds` is simulator-command scripting and
/// `workloadSeconds` is host-CPU simulation of the model.
struct CostBreakdown {
  double configSeconds = 0;    // injection / reconfiguration mechanism
  double workloadSeconds = 0;  // running the workload itself
  double hostSeconds = 0;      // fixed per-experiment host bookkeeping
  std::uint64_t bytesToDevice = 0;
  std::uint64_t bytesFromDevice = 0;
  std::uint64_t sessions = 0;

  double totalSeconds() const {
    return configSeconds + workloadSeconds + hostSeconds;
  }
};

struct CampaignResult {
  CampaignSpec spec;
  std::size_t failures = 0;
  std::size_t latents = 0;
  std::size_t silents = 0;
  common::RunningStats modeledSeconds;  // per experiment
  CostBreakdown cost;  // campaign-total decomposition of modeledSeconds
  std::vector<ExperimentRecord> records;  // filled when spec asks for detail
  /// Experiments that failed all retry attempts with transient errors, in
  /// index order (the fold order). Not counted in total() or cost.
  std::vector<QuarantinedExperiment> quarantined;

  std::size_t total() const { return failures + latents + silents; }
  double failurePct() const { return common::percent(failures, total()); }
  double latentPct() const { return common::percent(latents, total()); }
  double silentPct() const { return common::percent(silents, total()); }
  void add(Outcome o, double seconds) {
    switch (o) {
      case Outcome::Failure: ++failures; break;
      case Outcome::Latent: ++latents; break;
      case Outcome::Silent: ++silents; break;
    }
    modeledSeconds.add(seconds);
  }
  /// Accumulate one experiment. The canonical fold shared by the serial
  /// runner and the shard merge; keeping it in one place is what makes
  /// "same outcomes in the same order => bit-identical result" hold.
  void fold(const ExperimentOutcome& x) {
    if (x.quarantined) {
      quarantined.push_back(
          {x.index, x.failureKind, x.failureMessage, x.attempts});
      return;  // no result to tally, no modeled cost to accumulate
    }
    add(x.outcome, x.modeledSeconds);
    cost.configSeconds += x.configSeconds;
    cost.workloadSeconds += x.workloadSeconds;
    cost.hostSeconds += x.hostSeconds;
    cost.bytesToDevice += x.bytesToDevice;
    cost.bytesFromDevice += x.bytesFromDevice;
    cost.sessions += x.sessions;
    if (x.hasRecord) records.push_back(x.record);
  }
};

}  // namespace fades::campaign
