#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>

namespace fades::netlist {

using common::ErrorKind;
using common::raise;
using common::require;

unsigned arity(GateOp op) {
  switch (op) {
    case GateOp::Const0:
    case GateOp::Const1:
      return 0;
    case GateOp::Buf:
    case GateOp::Not:
      return 1;
    case GateOp::And:
    case GateOp::Or:
    case GateOp::Xor:
    case GateOp::Nand:
    case GateOp::Nor:
    case GateOp::Xnor:
      return 2;
    case GateOp::Mux:
      return 3;
  }
  return 0;
}

const char* toString(GateOp op) {
  switch (op) {
    case GateOp::Const0: return "const0";
    case GateOp::Const1: return "const1";
    case GateOp::Buf: return "buf";
    case GateOp::Not: return "not";
    case GateOp::And: return "and";
    case GateOp::Or: return "or";
    case GateOp::Xor: return "xor";
    case GateOp::Nand: return "nand";
    case GateOp::Nor: return "nor";
    case GateOp::Xnor: return "xnor";
    case GateOp::Mux: return "mux";
  }
  return "?";
}

bool evalGate(GateOp op, bool a, bool b, bool c) {
  switch (op) {
    case GateOp::Const0: return false;
    case GateOp::Const1: return true;
    case GateOp::Buf: return a;
    case GateOp::Not: return !a;
    case GateOp::And: return a && b;
    case GateOp::Or: return a || b;
    case GateOp::Xor: return a != b;
    case GateOp::Nand: return !(a && b);
    case GateOp::Nor: return !(a || b);
    case GateOp::Xnor: return a == b;
    case GateOp::Mux: return c ? b : a;
  }
  return false;
}

const char* toString(Unit unit) {
  switch (unit) {
    case Unit::None: return "none";
    case Unit::Registers: return "registers";
    case Unit::Ram: return "ram";
    case Unit::Alu: return "alu";
    case Unit::MemCtrl: return "memctrl";
    case Unit::Fsm: return "fsm";
  }
  return "?";
}

std::uint64_t Ram::initWord(std::size_t row) const {
  const std::size_t bytesPerRow = (dataBits + 7) / 8;
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < bytesPerRow; ++b) {
    v |= static_cast<std::uint64_t>(init[row * bytesPerRow + b]) << (8 * b);
  }
  return v & (dataBits >= 64 ? ~0ULL : ((1ULL << dataBits) - 1));
}

void Ram::setInitWord(std::size_t row, std::uint64_t value) {
  const std::size_t bytesPerRow = (dataBits + 7) / 8;
  for (std::size_t b = 0; b < bytesPerRow; ++b) {
    init[row * bytesPerRow + b] = static_cast<std::uint8_t>(value >> (8 * b));
  }
}

NetId Netlist::addNet(std::string name) {
  const NetId id{static_cast<std::uint32_t>(netNames_.size())};
  netNames_.push_back(std::move(name));
  drivers_.push_back({});
  return id;
}

void Netlist::setDriver(NetId net, DriverKind kind, std::uint32_t index) {
  require(net.valid() && net.value < drivers_.size(),
          ErrorKind::NetlistError, "driver assigned to invalid net");
  require(drivers_[net.value].kind == DriverKind::None,
          ErrorKind::NetlistError,
          "net '" + netNames_[net.value] + "' has multiple drivers");
  drivers_[net.value] = {kind, index};
}

GateId Netlist::addGate(GateOp op, NetId a, NetId b, NetId c, Unit unit,
                        NetId out) {
  const unsigned n = arity(op);
  require(n < 1 || a.valid(), ErrorKind::NetlistError, "gate missing input a");
  require(n < 2 || b.valid(), ErrorKind::NetlistError, "gate missing input b");
  require(n < 3 || c.valid(), ErrorKind::NetlistError, "gate missing input c");
  if (!out.valid()) out = addNet();
  const GateId id{static_cast<std::uint32_t>(gates_.size())};
  gates_.push_back(Gate{op, {a, b, c}, out, unit});
  setDriver(out, DriverKind::Gate, id.value);
  return id;
}

FlopId Netlist::addFlop(NetId d, bool init, Unit unit, std::string name,
                        NetId q) {
  require(d.valid(), ErrorKind::NetlistError, "flop missing D input");
  if (!q.valid()) q = addNet(name);
  const FlopId id{static_cast<std::uint32_t>(flops_.size())};
  flops_.push_back(Flop{d, q, init, unit, std::move(name)});
  setDriver(q, DriverKind::Flop, id.value);
  return id;
}

RamId Netlist::addRam(unsigned addrBits, unsigned dataBits,
                      const std::vector<NetId>& addr,
                      const std::vector<NetId>& dataIn, NetId writeEnable,
                      std::vector<std::uint8_t> init, Unit unit,
                      std::string name) {
  require(addrBits > 0 && addrBits <= 20, ErrorKind::NetlistError,
          "ram addrBits out of range");
  require(dataBits > 0 && dataBits <= 64, ErrorKind::NetlistError,
          "ram dataBits out of range");
  require(addr.size() == addrBits, ErrorKind::NetlistError,
          "ram address bus width mismatch");
  const bool isRom = !writeEnable.valid();
  require(isRom ? dataIn.empty() : dataIn.size() == dataBits,
          ErrorKind::NetlistError, "ram data-in bus width mismatch");
  const std::size_t bytesPerRow = (dataBits + 7) / 8;
  const std::size_t rows = std::size_t{1} << addrBits;
  if (init.empty()) init.resize(rows * bytesPerRow, 0);
  require(init.size() == rows * bytesPerRow, ErrorKind::NetlistError,
          "ram init size mismatch");

  Ram ram;
  ram.addr = addr;
  ram.dataIn = dataIn;
  ram.writeEnable = writeEnable;
  ram.addrBits = addrBits;
  ram.dataBits = dataBits;
  ram.init = std::move(init);
  ram.unit = unit;
  ram.name = std::move(name);
  ram.dataOut.reserve(dataBits);
  const RamId id{static_cast<std::uint32_t>(rams_.size())};
  for (unsigned b = 0; b < dataBits; ++b) {
    const NetId out = addNet(ram.name + ".dout[" + std::to_string(b) + "]");
    ram.dataOut.push_back(out);
    setDriver(out, DriverKind::Ram, id.value);
  }
  rams_.push_back(std::move(ram));
  return id;
}

void Netlist::addInputPort(std::string name, std::vector<NetId> nets) {
  const auto portIndex = static_cast<std::uint32_t>(inputs_.size());
  for (NetId n : nets) setDriver(n, DriverKind::Input, portIndex);
  inputs_.push_back(Port{std::move(name), std::move(nets), true});
}

void Netlist::addOutputPort(std::string name, std::vector<NetId> nets) {
  for (NetId n : nets) {
    require(n.valid() && n.value < netNames_.size(), ErrorKind::NetlistError,
            "output port references invalid net");
  }
  outputs_.push_back(Port{std::move(name), std::move(nets), false});
}

std::optional<NetId> Netlist::findNet(const std::string& name) const {
  if (name.empty()) return std::nullopt;
  for (std::uint32_t i = 0; i < netNames_.size(); ++i) {
    if (netNames_[i] == name) return NetId{i};
  }
  return std::nullopt;
}

std::optional<FlopId> Netlist::findFlop(const std::string& name) const {
  for (std::uint32_t i = 0; i < flops_.size(); ++i) {
    if (flops_[i].name == name) return FlopId{i};
  }
  return std::nullopt;
}

const Port* Netlist::findInput(const std::string& name) const {
  for (const auto& p : inputs_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const Port* Netlist::findOutput(const std::string& name) const {
  for (const auto& p : outputs_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void Netlist::replaceGateInput(GateId id, unsigned pin, NetId newNet) {
  require(id.valid() && id.value < gates_.size() && pin < arity(gates_[id.value].op),
          ErrorKind::InvalidArgument, "bad gate input reference");
  gates_[id.value].in[pin] = newNet;
}

void Netlist::replaceFlopInput(FlopId id, NetId newNet) {
  require(id.valid() && id.value < flops_.size(), ErrorKind::InvalidArgument,
          "bad flop reference");
  flops_[id.value].d = newNet;
}

void Netlist::replaceRamInput(RamId id, NetId oldNet, NetId newNet) {
  require(id.valid() && id.value < rams_.size(), ErrorKind::InvalidArgument,
          "bad ram reference");
  auto& ram = rams_[id.value];
  for (auto& n : ram.addr) {
    if (n == oldNet) n = newNet;
  }
  for (auto& n : ram.dataIn) {
    if (n == oldNet) n = newNet;
  }
  if (ram.writeEnable == oldNet) ram.writeEnable = newNet;
}

void Netlist::replaceOutputPortNet(std::size_t port, unsigned bit,
                                   NetId newNet) {
  require(port < outputs_.size() && bit < outputs_[port].nets.size(),
          ErrorKind::InvalidArgument, "bad output port reference");
  outputs_[port].nets[bit] = newNet;
}

void Netlist::validate() const {
  // Every net must have a driver.
  for (std::uint32_t i = 0; i < drivers_.size(); ++i) {
    require(drivers_[i].kind != DriverKind::None, ErrorKind::NetlistError,
            "net '" + netNames_[i] + "' (#" + std::to_string(i) +
                ") has no driver");
  }
  // All gate inputs must reference existing nets.
  for (const auto& g : gates_) {
    for (unsigned k = 0; k < arity(g.op); ++k) {
      require(g.in[k].valid() && g.in[k].value < netNames_.size(),
              ErrorKind::NetlistError, "gate input references invalid net");
    }
  }
  // Acyclicity is established by topoOrder(); it throws on a cycle.
  (void)topoOrder();
}

std::vector<GateId> Netlist::topoOrder() const {
  // Kahn's algorithm over gates only: flop Q outputs, RAM outputs and input
  // ports are sources, so a gate's in-degree counts only gate-driven inputs.
  std::vector<std::uint32_t> indegree(gates_.size(), 0);
  std::vector<std::vector<std::uint32_t>> fanout(gates_.size());
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    for (unsigned k = 0; k < arity(gates_[g].op); ++k) {
      const Driver d = drivers_[gates_[g].in[k].value];
      if (d.kind == DriverKind::Gate) {
        ++indegree[g];
        fanout[d.index].push_back(g);
      }
    }
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<std::uint32_t> ready;
  for (std::uint32_t g = 0; g < gates_.size(); ++g) {
    if (indegree[g] == 0) ready.push_back(g);
  }
  while (!ready.empty()) {
    const std::uint32_t g = ready.back();
    ready.pop_back();
    order.push_back(GateId{g});
    for (std::uint32_t s : fanout[g]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  require(order.size() == gates_.size(), ErrorKind::NetlistError,
          "combinational cycle detected");
  return order;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.nets = netNames_.size();
  s.gates = gates_.size();
  s.flops = flops_.size();
  s.rams = rams_.size();
  for (const auto& r : rams_) s.ramBits += r.depth() * r.dataBits;
  for (const auto& p : inputs_) s.inputBits += p.nets.size();
  for (const auto& p : outputs_) s.outputBits += p.nets.size();
  for (const auto& g : gates_) ++s.gatesPerUnit[g.unit];
  for (const auto& f : flops_) ++s.flopsPerUnit[f.unit];
  return s;
}

}  // namespace fades::netlist
