// Synthesis and implementation driver: netlist -> configured FPGA.
//
// Produces (a) the bitstream ("configuration file" in the paper's Figure 1)
// and (b) the location map relating HDL model elements - registers, memory
// words, combinational signals, routed lines - to physical device resources.
// The location map is the output of the paper's *fault location process*
// (Section 2): fault injectors select targets exclusively through it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fpga/device.hpp"
#include "netlist/netlist.hpp"
#include "synth/techmap.hpp"

namespace fades::synth {

using netlist::FlopId;
using netlist::RamId;

struct SynthOptions {
  std::uint64_t seed = 1;
  unsigned placementSwapMultiplier = 24;
  unsigned maxRouteIterations = 120;
};

/// A LUT site: one visible combinational signal and the CB that computes it.
struct LutSite {
  fpga::CbCoord cb;
  Unit unit = Unit::None;
  std::string signalName;  // netlist name of the produced net (may be empty)
  NetId out{};
  std::uint16_t table = 0;
  unsigned leafCount = 0;
};

/// A flip-flop site: one HDL register bit and the CB holding it.
struct FlopSite {
  fpga::CbCoord cb;
  Unit unit = Unit::None;
  std::string name;
  FlopId flop{};
  bool init = false;
  /// True when the FF's data arrives through the routed BYP pin (so its
  /// input inverter mux is a valid pulse-fault target, paper Figure 6);
  /// false when the D input comes from the co-located LUT.
  bool bypassInput = false;
};

/// A memory: HDL RAM/ROM mapped onto one or more memory-block bit slices.
struct RamSite {
  std::string name;
  Unit unit = Unit::None;
  RamId ram{};
  unsigned addrBits = 0;
  unsigned dataBits = 0;
  bool isRom = false;
  struct Slice {
    unsigned block = 0;
    unsigned bitLo = 0;   // first netlist data bit covered
    unsigned width = 0;   // power of two
  };
  std::vector<Slice> slices;

  /// Physical (block, contentBit) address of data bit `bit` of row `row`.
  std::pair<unsigned, unsigned> bitAddress(std::size_t row,
                                           unsigned bit) const;
};

struct PadBinding {
  std::string port;
  unsigned bitIndex = 0;
  unsigned pad = 0;
  bool isInput = false;
};

/// One routed physical net.
struct NetRouteInfo {
  std::string signalName;  // source net name
  NetId sourceNet{};
  Unit unit = Unit::None;
  bool sequentialSource = false;  // driven by a flip-flop
  std::uint32_t sourceNode = 0;
  std::vector<std::uint32_t> sinkNodes;
  std::vector<std::uint32_t> wireNodes;       // segments along the tree
  std::vector<std::size_t> transistorBits;    // ON config bits of this route
  /// Adjacent node pairs of the routed tree, parallel to transistorBits
  /// (needed by the reroute delay injector to open and detour one hop).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edgeNodes;
};

struct ImplementationStats {
  unsigned luts = 0;
  unsigned flops = 0;
  unsigned memBlocks = 0;
  unsigned pads = 0;
  unsigned routedNets = 0;
  std::size_t wireSegments = 0;
  std::size_t configBits = 0;
  unsigned routeIterations = 0;
};

class Implementation {
 public:
  fpga::DeviceSpec spec;
  fpga::Bitstream bitstream;
  std::vector<LutSite> luts;
  std::vector<FlopSite> flops;
  std::vector<RamSite> rams;
  std::vector<PadBinding> pads;
  std::vector<NetRouteInfo> routes;
  ImplementationStats stats;

  // --- location-map queries (the fault-location process interface) -------
  const FlopSite* findFlop(const std::string& name) const;
  std::vector<std::uint32_t> flopsInUnit(Unit unit) const;   // indices
  std::vector<std::uint32_t> lutsInUnit(Unit unit) const;    // indices
  std::vector<std::uint32_t> routesInUnit(Unit unit, bool sequential) const;
  const RamSite* findRam(const std::string& name) const;
  const PadBinding* findPad(const std::string& port, unsigned bit) const;
  std::optional<std::uint32_t> routeOfNet(NetId source) const;
};

/// Synthesize, map, pack, place, route and generate the bitstream.
Implementation implement(const netlist::Netlist& netlist,
                         const fpga::DeviceSpec& spec,
                         const SynthOptions& options = {});

/// Testbench-style harness binding a configured device to the HDL port
/// names, mirroring sim::Simulator's interface so campaigns can drive the
/// emulated and the simulated model identically.
class EmulatedSystem {
 public:
  EmulatedSystem(fpga::Device& device, const Implementation& impl);

  void setInput(const std::string& port, std::uint64_t value);
  std::uint64_t portValue(const std::string& port) const;
  void step() { dev_.step(); }
  void settle() { dev_.settle(); }
  std::uint64_t cycle() const { return dev_.cycle(); }

  fpga::Device& device() { return dev_; }
  const Implementation& implementation() const { return impl_; }

 private:
  fpga::Device& dev_;
  const Implementation& impl_;
};

}  // namespace fades::synth
