# Empty compiler generated dependencies file for fades_sim.
# This may be replaced when dependencies are built.
