#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <map>

#include "common/stats.hpp"

namespace fades::bench {

namespace {

unsigned envCount(const char* name, unsigned defaultCount) {
  if (const char* v = std::getenv(name)) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return defaultCount;
}

}  // namespace

unsigned classifyCount(unsigned defaultCount) {
  return envCount("FADES_FAULTS", defaultCount);
}

unsigned timingCount(unsigned defaultCount) {
  const unsigned n = envCount("FADES_FAULTS", defaultCount);
  return n < defaultCount ? n : defaultCount;
}

System8051::System8051()
    : workload_(mc8051::bubblesort(6)),
      nl_(mc8051::buildCore(workload_.bytes)),
      impl_(synth::implement(nl_, fpga::DeviceSpec::virtex1000Like())) {}

core::FadesOptions System8051::fadesOptions() const {
  core::FadesOptions opt;
  opt.observedOutputs = {"p0", "p1"};
  return opt;
}

core::FadesTool& System8051::fades() {
  if (!fades_) {
    device_ = std::make_unique<fpga::Device>(impl_.spec);
    fades_ = std::make_unique<core::FadesTool>(*device_, impl_,
                                               workload_.cycles,
                                               fadesOptions());
  }
  return *fades_;
}

core::FadesTool& System8051::fadesForDelay() {
  if (!fadesDelay_) {
    // Measure the fault-free critical path, then rebuild the device with a
    // clock period sitting just above it so that injected delays can push
    // individual paths past setup.
    fpga::Device probe(impl_.spec);
    probe.writeFullBitstream(impl_.bitstream);
    probe.setTimingEnabled(true);
    probe.settle();
    const double maxArrival = probe.timingReport().maxArrivalNs;

    fpga::DeviceSpec spec = impl_.spec;
    spec.clockPeriodNs = maxArrival + spec.ffSetupNs + 0.35;
    delayDevice_ = std::make_unique<fpga::Device>(spec);
    fadesDelay_ = std::make_unique<core::FadesTool>(
        *delayDevice_, impl_, workload_.cycles, fadesOptions());
  }
  return *fadesDelay_;
}

vfit::VfitTool& System8051::vfit() {
  if (!vfit_) {
    vfit::VfitOptions opt;
    opt.observedOutputs = {"p0", "p1"};
    vfit_ = std::make_unique<vfit::VfitTool>(nl_, workload_.cycles, opt);
  }
  return *vfit_;
}

void System8051::printHeadline() const {
  const auto& s = impl_.stats;
  std::printf(
      "System under test: MC8051 subset + %s (%llu cycles; paper: 1303)\n"
      "Implementation on %s: %u LUTs, %u FFs, %u memory blocks "
      "(paper: 5310 LUTs, 637 FFs of 24576)\n\n",
      workload_.name.c_str(),
      static_cast<unsigned long long>(workload_.cycles),
      impl_.spec.name.c_str(), s.luts, s.flops, s.memBlocks);
}

std::string withPaper(double measured, const std::string& paper,
                      int decimals) {
  return common::fixed(measured, decimals) + " (paper: " + paper + ")";
}

std::string pct3(const campaign::CampaignResult& r) {
  return common::fixed(r.failurePct(), 1) + " / " +
         common::fixed(r.latentPct(), 1) + " / " +
         common::fixed(r.silentPct(), 1);
}

void printTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::printf("%s\n%s\n", title.c_str(),
              common::renderTable(header, rows).c_str());
}

std::vector<campaign::CampaignResult> bandSweep(
    core::FadesTool& tool, campaign::FaultModel model,
    campaign::TargetClass targets, netlist::Unit unit, unsigned experiments,
    std::uint64_t seed, std::vector<std::uint32_t> pool) {
  std::vector<campaign::CampaignResult> out;
  for (const auto& band : campaign::DurationBand::paperBands()) {
    campaign::CampaignSpec spec;
    spec.model = model;
    spec.targets = targets;
    spec.unit = static_cast<int>(unit);
    spec.band = band;
    spec.experiments = experiments;
    spec.seed = seed;
    spec.targetPool = pool;
    out.push_back(tool.runCampaign(spec));
  }
  return out;
}

namespace {
std::map<const core::FadesTool*, std::vector<std::uint32_t>> gEligible;
}

std::vector<std::uint32_t> eligibleFlops(core::FadesTool& tool) {
  auto it = gEligible.find(&tool);
  if (it != gEligible.end()) return it->second;
  common::Rng rng(0xE11616);
  const auto all = tool.targets(campaign::FaultModel::BitFlip,
                                campaign::TargetClass::SequentialFF,
                                netlist::Unit::None);
  const int probes =
      static_cast<int>(std::max<std::size_t>(4, 1500 / all.size()));
  std::vector<std::uint32_t> eligible;
  for (auto ff : all) {
    for (int p = 0; p < probes; ++p) {
      common::Rng erng = rng.fork(ff * 37 + p);
      const auto cycle = erng.below(tool.runCycles());
      if (tool.runExperiment(campaign::FaultModel::BitFlip,
                             campaign::TargetClass::SequentialFF, ff, cycle,
                             1.0, erng) == campaign::Outcome::Failure) {
        eligible.push_back(ff);
        break;
      }
    }
  }
  gEligible[&tool] = eligible;
  return eligible;
}

std::vector<std::string> eligibleFlopNames(core::FadesTool& tool) {
  std::vector<std::string> out;
  for (auto ff : eligibleFlops(tool)) {
    out.push_back(tool.targetName(campaign::TargetClass::SequentialFF, ff));
  }
  return out;
}

std::vector<std::uint32_t> eligibleSequentialLines(core::FadesTool& tool) {
  const auto names = eligibleFlopNames(tool);
  std::vector<std::uint32_t> out;
  const auto& impl = tool.implementation();
  for (std::uint32_t i = 0; i < impl.routes.size(); ++i) {
    const auto& r = impl.routes[i];
    if (!r.sequentialSource || r.wireNodes.empty()) continue;
    for (const auto& n : names) {
      if (r.signalName == n) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace fades::bench
