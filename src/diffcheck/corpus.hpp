// Seed-corpus persistence: one self-contained JSON file per case.
//
// The committed corpus under corpus/diffcheck/ is the deterministic tier-1
// regression suite for the differential oracle; the fuzzer appends shrunk
// reproducers to it (locally) when it finds disagreements.
#pragma once

#include <string>
#include <vector>

#include "diffcheck/case_spec.hpp"

namespace fades::diffcheck {

/// Case files (*.json) in `dir`, sorted by filename for deterministic
/// replay order. Throws FadesError(InvalidArgument) when the directory is
/// missing.
std::vector<std::string> listCorpusFiles(const std::string& dir);

/// Strict load; throws FadesError naming the file on parse/spec errors.
CaseSpec loadCase(const std::string& path);

/// Pretty-printed, crash-safe (tmp + rename) write.
void saveCase(const CaseSpec& c, const std::string& path);

}  // namespace fades::diffcheck
