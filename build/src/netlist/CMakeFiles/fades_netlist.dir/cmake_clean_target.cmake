file(REMOVE_RECURSE
  "libfades_netlist.a"
)
