// Configuration-memory layout and routing-resource naming.
//
// Every configurable element of the generic FPGA - LUT truth tables, CB
// multiplexer selects, PM pass transistors, connection-box transistors, pad
// and memory-block setup, memory-block contents - is controlled by a bit in
// the configuration memory (paper Section 3). This file defines where each
// bit lives and how the memory is divided into frames, the unit of partial
// run-time reconfiguration. The fault injectors in src/core operate purely
// in terms of these addresses, exactly as the paper's tool drives JBits.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/spec.hpp"

namespace fades::fpga {

/// Non-content CB configuration fields (bit offsets inside a CB record).
enum class CbField : std::uint8_t {
  FfInSrc = 16,  // 0: FF D input = LUT output; 1: FF D input = BYP pin
  InvByp = 17,   // InvertFFinMux: invert the BYP pin's incoming level
  SrMode = 18,   // PRMux/CLRMux: 0 = GSR/LSR clears FF, 1 = presets it
  InvLsr = 19,   // InvertLSRMux: inverting the (tied-low) LSR line asserts
                 // the FF's local set/reset continuously
  FfUsed = 20,
  LutUsed = 21,
};

enum class PadField : std::uint8_t {
  IsOutput = 0,
  Used = 1,
};

enum class BramField : std::uint8_t {
  WidthSelLo = 0,  // 3 bits: log2 of data width (0..4 -> 1,2,4,8,16)
  Used = 4,
};

/// Frame planes. Plane A holds logic+interconnect configuration, plane B
/// holds memory-block contents (directly addressable, which is what enables
/// the paper's bit-flip injection into memory blocks), plane C is the
/// read-only capture plane exposing live flip-flop state on read-back.
enum class Plane : std::uint8_t { Logic, BramContent, Capture };

struct FrameAddr {
  Plane plane = Plane::Logic;
  std::uint32_t major = 0;  // Logic/Capture: column; BramContent: block
  std::uint32_t minor = 0;
  friend bool operator==(FrameAddr, FrameAddr) = default;
};

class ConfigLayout {
 public:
  explicit ConfigLayout(const DeviceSpec& spec);

  const DeviceSpec& spec() const { return spec_; }

  // --- sizes ----------------------------------------------------------------
  std::size_t logicPlaneBits() const { return logicBits_; }
  std::size_t bramPlaneBits() const {
    return std::size_t{spec_.memBlocks} * spec_.memBlockBits;
  }
  unsigned frameBits() const { return spec_.frameBytes * 8; }
  unsigned logicColumns() const { return spec_.cols + 1; }
  unsigned minorsOfColumn(unsigned col) const;
  unsigned bramFramesPerBlock() const;
  unsigned captureFramesPerColumn() const;
  /// Total frames across all planes (A + B; capture is read-only state).
  std::size_t totalConfigFrames() const;
  std::size_t totalConfigBytes() const {
    return totalConfigFrames() * spec_.frameBytes;
  }

  // --- plane A bit addresses ----------------------------------------------
  std::size_t cbBit(CbCoord cb, unsigned bitInRecord) const;
  std::size_t cbLutBit(CbCoord cb, unsigned tableIndex) const {
    return cbBit(cb, tableIndex);
  }
  std::size_t cbFieldBit(CbCoord cb, CbField f) const {
    return cbBit(cb, static_cast<unsigned>(f));
  }
  /// Connection-box transistor: CB input pin <-> adjacent channel track.
  std::size_t cbInConnBit(CbCoord cb, CbInPin pin, bool vertical,
                          unsigned track) const;
  /// Connection-box transistor: CB output pin -> adjacent channel track.
  std::size_t cbOutConnBit(CbCoord cb, CbOutPin pin, bool vertical,
                           unsigned track) const;
  /// PM pass transistor. PM grid is (cols+1) x (rows+1).
  std::size_t pmSwitchBit(PmCoord pm, unsigned track, PmSwitch sw) const;
  std::size_t padFieldBit(unsigned pad, PadField f) const;
  std::size_t padConnBit(unsigned pad, bool vertical, unsigned track) const;
  std::size_t bramFieldBit(unsigned block, BramField f) const;
  std::size_t bramPinConnBit(unsigned block, unsigned pin, bool vertical,
                             unsigned track) const;

  // --- geometry of edge resources ----------------------------------------
  /// Pads 0..rows-1 sit on the west edge (x = 0) top-to-bottom; pads
  /// rows..2*rows-1 on the east edge (x = cols).
  bool padIsWest(unsigned pad) const { return pad < spec_.rows; }
  unsigned padRow(unsigned pad) const {
    return padIsWest(pad) ? pad : pad - spec_.rows;
  }
  /// Memory blocks line the north edge; block b's pin k attaches at column
  /// bramPinColumn(b,k), reaching HSeg(x, rows, t) and VSeg(x, rows-1, t).
  unsigned bramColsPerBlock() const { return spec_.cols / spec_.memBlocks; }
  unsigned bramPinColumn(unsigned block, unsigned pin) const {
    return block * bramColsPerBlock() + pin % bramColsPerBlock();
  }

  // --- frame mapping --------------------------------------------------------
  /// Which logic-plane frame contains the given plane-A bit address.
  FrameAddr frameOfLogicBit(std::size_t bit) const;
  /// First bit covered by a logic frame.
  std::size_t logicFrameFirstBit(FrameAddr f) const;
  /// Number of valid bits in this logic frame (the last frame of a column
  /// may be partial).
  unsigned logicFrameBitCount(FrameAddr f) const;

  std::size_t bramContentBit(unsigned block, unsigned bit) const {
    return std::size_t{block} * spec_.memBlockBits + bit;
  }
  FrameAddr frameOfBramBit(unsigned block, unsigned bit) const;

  // --- reverse mapping -------------------------------------------------------
  /// Classify a plane-A bit address back into the resource it configures.
  struct Decoded {
    enum class Region : std::uint8_t { Cb, Pm, Pad, Bram } region;
    CbCoord cb{};            // Region::Cb
    unsigned bitInRecord = 0;
    PmCoord pm{};            // Region::Pm
    unsigned pad = 0;        // Region::Pad
    unsigned block = 0;      // Region::Bram
  };
  Decoded decode(std::size_t bit) const;

  // --- record sizes (exposed for tests) ------------------------------------
  unsigned cbRecordBits() const { return cbRecordBits_; }
  unsigned pmRecordBits() const { return pmRecordBits_; }
  unsigned padRecordBits() const { return padRecordBits_; }
  unsigned bramRecordBits() const { return bramRecordBits_; }

 private:
  std::size_t columnStart(unsigned col) const { return colStart_[col]; }
  std::size_t columnBits(unsigned col) const {
    return colStart_[col + 1] - colStart_[col];
  }

  DeviceSpec spec_;
  unsigned cbRecordBits_ = 0;
  unsigned pmRecordBits_ = 0;
  unsigned padRecordBits_ = 0;
  unsigned bramRecordBits_ = 0;
  std::vector<std::size_t> colStart_;  // size cols+2 (prefix sums)
  std::size_t logicBits_ = 0;
};

// ---------------------------------------------------------------------------
// Routing-resource node ids.
// ---------------------------------------------------------------------------

enum class NodeKind : std::uint8_t { HSeg, VSeg, CbIn, CbOut, Pad, BramPin };

struct NodeInfo {
  NodeKind kind;
  // HSeg/VSeg: x, y, track. CbIn/CbOut: x, y = CB coords, track = pin.
  // Pad: x = pad index. BramPin: x = block, track = pin.
  unsigned x = 0;
  unsigned y = 0;
  unsigned track = 0;
};

/// Dense numbering of all routing nodes: wire segments, CB pins, pad pins
/// and memory-block pins. Shared by the router (which builds paths) and the
/// device (which resolves live connectivity from ON pass transistors).
class RoutingNodes {
 public:
  explicit RoutingNodes(const DeviceSpec& spec);

  std::uint32_t count() const { return total_; }

  std::uint32_t hseg(unsigned x, unsigned y, unsigned t) const;
  std::uint32_t vseg(unsigned x, unsigned y, unsigned t) const;
  std::uint32_t cbIn(CbCoord cb, CbInPin pin) const;
  std::uint32_t cbOut(CbCoord cb, CbOutPin pin) const;
  std::uint32_t pad(unsigned p) const;
  std::uint32_t bramPin(unsigned block, unsigned pin) const;

  NodeInfo info(std::uint32_t node) const;

  /// Approximate (x, y) tile position, used by the router's A* heuristic.
  void position(std::uint32_t node, double& x, double& y) const;

 private:
  DeviceSpec spec_;
  std::uint32_t hsegBase_, vsegBase_, cbInBase_, cbOutBase_, padBase_,
      bramBase_, total_;
};

}  // namespace fades::fpga
