# Empty dependencies file for fades_campaign.
# This may be replaced when dependencies are built.
