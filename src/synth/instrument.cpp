#include "synth/instrument.hpp"

#include <map>

#include "common/error.hpp"

namespace fades::synth {

using common::ErrorKind;
using common::require;
using netlist::FlopId;
using netlist::GateId;
using netlist::GateOp;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;

InstrumentedModel instrumentWithSaboteurs(
    const Netlist& source, const std::vector<NetId>& targets) {
  require(!targets.empty(), ErrorKind::InvalidArgument,
          "no saboteur targets");
  InstrumentedModel out;
  out.netlist = source;  // instrumentation is additive
  Netlist& nl = out.netlist;

  for (NetId t : targets) {
    require(t.valid() && t.value < nl.netCount(), ErrorKind::InvalidArgument,
            "saboteur target net out of range");
    require(nl.driverOf(t).kind != Netlist::DriverKind::Input,
            ErrorKind::InvalidArgument,
            "saboteur targets must not be input-port nets");
  }

  // 1. Collect the ORIGINAL consumers of every target before any saboteur
  //    logic exists (the saboteurs themselves read the unmodified nets).
  struct Slot {
    enum class Kind : std::uint8_t { GateIn, FlopD, RamPin, PortOut } kind;
    std::uint32_t a = 0;  // gate/flop/ram/port index
    std::uint32_t b = 0;  // gate pin / port bit
  };
  std::map<std::uint32_t, std::vector<Slot>> slots;
  for (NetId t : targets) slots[t.value];  // mark
  auto interested = [&](NetId n) { return slots.count(n.value) != 0; };

  for (std::uint32_t g = 0; g < nl.gateCount(); ++g) {
    const auto& gate = nl.gates()[g];
    for (unsigned k = 0; k < netlist::arity(gate.op); ++k) {
      if (interested(gate.in[k])) {
        slots[gate.in[k].value].push_back(
            Slot{Slot::Kind::GateIn, g, k});
      }
    }
  }
  for (std::uint32_t f = 0; f < nl.flopCount(); ++f) {
    if (interested(nl.flops()[f].d)) {
      slots[nl.flops()[f].d.value].push_back(Slot{Slot::Kind::FlopD, f, 0});
    }
  }
  for (std::uint32_t r = 0; r < nl.ramCount(); ++r) {
    const auto& ram = nl.rams()[r];
    auto check = [&](NetId n) {
      if (interested(n)) slots[n.value].push_back(Slot{Slot::Kind::RamPin, r, 0});
    };
    for (NetId n : ram.addr) check(n);
    for (NetId n : ram.dataIn) check(n);
    if (ram.writeEnable.valid()) check(ram.writeEnable);
  }
  for (std::uint32_t p = 0; p < nl.outputs().size(); ++p) {
    const auto& port = nl.outputs()[p];
    for (std::uint32_t b = 0; b < port.nets.size(); ++b) {
      if (interested(port.nets[b])) {
        slots[port.nets[b].value].push_back(Slot{Slot::Kind::PortOut, p, b});
      }
    }
  }

  // 2. Injection control ports.
  out.selectBits = 1;
  while ((std::size_t{1} << out.selectBits) < targets.size()) {
    ++out.selectBits;
  }
  const NetId enable = nl.addNet("sab_enable");
  nl.addInputPort("sab_enable", {enable});
  std::vector<NetId> select;
  for (unsigned b = 0; b < out.selectBits; ++b) {
    select.push_back(nl.addNet("sab_select[" + std::to_string(b) + "]"));
  }
  nl.addInputPort("sab_select", select);

  // 3. Splice one inverting saboteur per target and rewire its consumers.
  const std::size_t gatesBefore = nl.gateCount();
  for (std::uint32_t idx = 0; idx < targets.size(); ++idx) {
    const NetId t = targets[idx];
    // sel == idx
    NetId match{};
    for (unsigned b = 0; b < out.selectBits; ++b) {
      NetId bit = select[b];
      if (((idx >> b) & 1u) == 0) {
        const GateId inv = nl.addGate(GateOp::Not, bit);
        bit = nl.gate(inv).out;
      }
      if (!match.valid()) {
        match = bit;
      } else {
        const GateId andG = nl.addGate(GateOp::And, match, bit);
        match = nl.gate(andG).out;
      }
    }
    const GateId ctl = nl.addGate(GateOp::And, enable, match);
    const GateId sab = nl.addGate(GateOp::Xor, t, nl.gate(ctl).out);
    const NetId sabOut = nl.gate(sab).out;
    nl.setNetName(sabOut, nl.netName(t).empty()
                              ? "sab" + std::to_string(idx)
                              : nl.netName(t) + ".sab");
    out.selectors.emplace_back(t, idx);

    for (const Slot& s : slots[t.value]) {
      switch (s.kind) {
        case Slot::Kind::GateIn:
          nl.replaceGateInput(GateId{s.a}, s.b, sabOut);
          break;
        case Slot::Kind::FlopD:
          nl.replaceFlopInput(FlopId{s.a}, sabOut);
          break;
        case Slot::Kind::RamPin:
          nl.replaceRamInput(RamId{s.a}, t, sabOut);
          break;
        case Slot::Kind::PortOut:
          nl.replaceOutputPortNet(s.a, s.b, sabOut);
          break;
      }
    }
  }
  out.saboteurGates = nl.gateCount() - gatesBefore;
  nl.validate();
  return out;
}

}  // namespace fades::synth
