#include "vfit/vfit.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fades::vfit {

using common::ErrorKind;
using common::raise;
using common::require;
using common::Rng;

VfitTool::VfitTool(const Netlist& netlist, std::uint64_t runCycles,
                   VfitOptions options)
    : nl_(netlist), runCycles_(runCycles), opt_(std::move(options)) {
  sim_ = std::make_unique<sim::Simulator>(nl_);

  // Golden run: trace, checkpoints, final state, event count.
  sim_->reset();
  const auto eventsBefore = sim_->eventsProcessed();
  golden_.outputs.reserve(runCycles_);
  for (std::uint64_t c = 0; c < runCycles_; ++c) {
    if (c % opt_.checkpointInterval == 0) {
      checkpoints_.push_back(sim_->snapshot());
    }
    golden_.outputs.push_back(outputWord());
    sim_->step();
  }
  captureFinalState(golden_);
  goldenEvents_ = sim_->eventsProcessed() - eventsBefore;
  goldenSeconds_ = static_cast<double>(goldenEvents_) * opt_.secondsPerEvent;
}

std::uint64_t VfitTool::outputWord() const {
  std::uint64_t w = 0;
  unsigned shift = 0;
  for (const auto& port : opt_.observedOutputs) {
    w |= sim_->portValue(port) << shift;
    shift += 16;
  }
  return w;
}

void VfitTool::captureFinalState(Observation& obs) const {
  obs.finalFlops.clear();
  obs.finalFlops.reserve(nl_.flopCount());
  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    obs.finalFlops.push_back(sim_->flopState(FlopId{f}) ? 1 : 0);
  }
  obs.finalMemory.clear();
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    const auto& ram = nl_.ram(RamId{r});
    for (std::size_t row = 0; row < ram.depth(); ++row) {
      obs.finalMemory.push_back(sim_->ramWord(RamId{r}, row));
    }
  }
}

std::vector<FlopId> VfitTool::flopTargets(Unit unit) const {
  std::vector<FlopId> out;
  for (std::uint32_t f = 0; f < nl_.flopCount(); ++f) {
    if (unit == Unit::None || nl_.flops()[f].unit == unit) {
      out.push_back(FlopId{f});
    }
  }
  return out;
}

std::vector<NetId> VfitTool::signalTargets(Unit unit) const {
  // HDL-level signals: nets with a name, driven by combinational logic.
  std::vector<NetId> out;
  for (const auto& g : nl_.gates()) {
    if (g.op == netlist::GateOp::Const0 || g.op == netlist::GateOp::Const1) {
      continue;
    }
    if (unit != Unit::None && g.unit != unit) continue;
    if (!nl_.netName(g.out).empty()) out.push_back(g.out);
  }
  return out;
}

std::vector<RamId> VfitTool::ramTargets() const {
  std::vector<RamId> out;
  for (std::uint32_t r = 0; r < nl_.ramCount(); ++r) {
    if (!nl_.ram(RamId{r}).isRom()) out.push_back(RamId{r});
  }
  return out;
}

const sim::Snapshot& VfitTool::checkpointAtOrBefore(
    std::uint64_t cycle, std::uint64_t& ckCycle) const {
  const std::size_t idx =
      std::min<std::size_t>(cycle / opt_.checkpointInterval,
                            checkpoints_.size() - 1);
  ckCycle = idx * opt_.checkpointInterval;
  return checkpoints_[idx];
}

Outcome VfitTool::runExperiment(FaultModel model, TargetClass targets,
                                std::uint32_t targetIndex,
                                std::uint64_t injectCycle,
                                double durationCycles, Rng& rng,
                                double* modeledSeconds,
                                unsigned* commandsOut) {
  require(supports(model), ErrorKind::InjectionError,
          "VFIT cannot inject delay faults (no generic delay clauses)");
  require(injectCycle < runCycles_, ErrorKind::InvalidArgument,
          "injection instant beyond workload");

  unsigned commands = 0;

  // Replay from the closest golden checkpoint (wall-clock shortcut; the
  // modeled cost below always charges a complete simulation).
  std::uint64_t ckCycle = 0;
  sim_->restore(checkpointAtOrBefore(injectCycle, ckCycle));
  for (std::uint64_t c = ckCycle; c < injectCycle; ++c) sim_->step();

  // Faulty trace: the pre-injection prefix equals the golden trace by
  // determinism; everything from the injection instant on is observed live,
  // including the cycles stepped while the fault is active.
  Observation faulty;
  faulty.outputs.assign(golden_.outputs.begin(),
                        golden_.outputs.begin() +
                            static_cast<std::ptrdiff_t>(injectCycle));
  auto stepObserved = [&] {
    faulty.outputs.push_back(outputWord());
    sim_->step();
  };

  // Sub-cycle faults hit a sampling edge with probability = duration.
  std::uint64_t effectiveCycles;
  if (durationCycles < 1.0) {
    effectiveCycles = rng.uniform01() < durationCycles ? 1 : 0;
  } else {
    effectiveCycles = static_cast<std::uint64_t>(durationCycles + 0.5);
  }

  switch (model) {
    case FaultModel::BitFlip: {
      if (targets == TargetClass::SequentialFF) {
        const FlopId f{targetIndex};
        sim_->depositFlop(f, !sim_->flopState(f));
        ++commands;
      } else {
        // Memory bit-flip: targetIndex encodes ram<<24 | row<<8 | bit.
        const RamId ram{targetIndex >> 24};
        const std::size_t row = (targetIndex >> 8) & 0xFFFF;
        const unsigned bit = targetIndex & 0xFF;
        sim_->depositRam(ram, row,
                         sim_->ramWord(ram, row) ^ (1ULL << bit));
        ++commands;
      }
      break;
    }
    case FaultModel::Pulse: {
      const NetId net{targetIndex};
      // Invert the driven value across the active window, re-forcing every
      // cycle so the inversion tracks the (changing) fault-free value.
      for (std::uint64_t k = 0;
           k < effectiveCycles && sim_->cycle() < runCycles_; ++k) {
        sim_->release(net);
        ++commands;
        sim_->force(net, !sim_->netValue(net));
        ++commands;
        stepObserved();
      }
      sim_->release(net);
      ++commands;
      break;
    }
    case FaultModel::Indetermination: {
      bool value = rng.coin();
      if (targets == TargetClass::SequentialFF) {
        const FlopId f{targetIndex};
        for (std::uint64_t k = 0;
             k < effectiveCycles && sim_->cycle() < runCycles_; ++k) {
          if (opt_.oscillatingIndetermination && k > 0) value = rng.coin();
          sim_->depositFlop(f, value);
          ++commands;
          stepObserved();
        }
      } else {
        const NetId net{targetIndex};
        for (std::uint64_t k = 0;
             k < effectiveCycles && sim_->cycle() < runCycles_; ++k) {
          if (opt_.oscillatingIndetermination && k > 0) value = rng.coin();
          sim_->force(net, value);
          ++commands;
          stepObserved();
        }
        sim_->release(net);
        ++commands;
      }
      break;
    }
    case FaultModel::Delay:
      raise(ErrorKind::InjectionError, "unreachable");
  }

  // Run to completion, observing outputs.
  while (sim_->cycle() < runCycles_) stepObserved();
  captureFinalState(faulty);

  auto& registry = obs::Registry::global();
  registry.counter("vfit.commands").add(commands);
  registry.counter("vfit.experiments").inc();

  if (modeledSeconds != nullptr) {
    *modeledSeconds = opt_.secondsFixedPerExperiment + goldenSeconds_ +
                      commands * opt_.secondsPerCommand;
  }
  if (commandsOut != nullptr) *commandsOut = commands;
  return campaign::classify(golden_, faulty);
}

CampaignResult VfitTool::runCampaign(const CampaignSpec& spec) {
  CampaignResult result;
  result.spec = spec;
  const auto unit = static_cast<Unit>(spec.unit);

  // Enumerate targets up front (the fault-location process).
  std::vector<std::uint32_t> targets = spec.targetPool;
  if (targets.empty()) {
    switch (spec.targets) {
    case TargetClass::SequentialFF:
      for (auto f : flopTargets(unit)) targets.push_back(f.value);
      break;
    case TargetClass::MemoryBlockBit: {
      for (auto r : ramTargets()) {
        const auto& ram = nl_.ram(r);
        // Encode every stored bit as a target.
        for (std::size_t row = 0; row < ram.depth(); ++row) {
          for (unsigned bit = 0; bit < ram.dataBits; ++bit) {
            targets.push_back((r.value << 24) |
                              (static_cast<std::uint32_t>(row) << 8) | bit);
          }
        }
      }
      break;
    }
    case TargetClass::CombinationalLut:
    case TargetClass::CbInputLine:
    case TargetClass::CombinationalLine:
      for (auto n : signalTargets(unit)) targets.push_back(n.value);
      break;
    case TargetClass::SequentialLine:
      for (auto f : flopTargets(unit)) {
        targets.push_back(nl_.flops()[f.value].q.value);
      }
      break;
  }
  }
  require(!targets.empty(), ErrorKind::InjectionError,
          "no VFIT targets in the selected unit");

  obs::Span campaignSpan{"vfit.campaign",
                         {{"model", campaign::toString(spec.model)},
                          {"targets", campaign::toString(spec.targets)}}};
  // Component attribution for records: resolve a target back to the unit
  // annotation on its netlist element (flop, ram, or the gate driving the
  // faulted signal), mirroring FadesTool::targetUnit at the HDL level.
  auto targetUnit = [&](std::uint32_t target) {
    switch (spec.targets) {
      case TargetClass::SequentialFF:
        return nl_.flops()[target].unit;
      case TargetClass::MemoryBlockBit:
        return nl_.ram(RamId{target >> 24}).unit;
      case TargetClass::SequentialLine:
        for (const auto& f : nl_.flops()) {
          if (f.q.value == target) return f.unit;
        }
        return Unit::None;
      case TargetClass::CombinationalLut:
      case TargetClass::CbInputLine:
      case TargetClass::CombinationalLine:
        for (const auto& g : nl_.gates()) {
          if (g.out.value == target) return g.unit;
        }
        return Unit::None;
    }
    return Unit::None;
  };
  for (unsigned e = 0; e < spec.experiments; ++e) {
    // Same stream derivation as the FADES campaign loop so that identical
    // specs over identical pools draw identical faults in both tools.
    Rng erng(common::streamSeed(spec.seed, std::uint64_t{e} * 131));
    const auto target = targets[erng.below(targets.size())];
    const auto injectCycle = erng.below(runCycles_);
    const double duration =
        spec.band.minCycles +
        erng.uniform01() * (spec.band.maxCycles - spec.band.minCycles);
    double seconds = 0;
    unsigned commands = 0;
    const Outcome o = runExperiment(spec.model, spec.targets, target,
                                    injectCycle, duration, erng, &seconds,
                                    &commands);
    result.add(o, seconds);
    result.cost.configSeconds += commands * opt_.secondsPerCommand;
    result.cost.workloadSeconds += goldenSeconds_;
    result.cost.hostSeconds += opt_.secondsFixedPerExperiment;
    if (opt_.keepRecords) {
      result.records.push_back(campaign::ExperimentRecord{
          std::to_string(target), injectCycle, duration, o, seconds});
      result.records.back().component =
          netlist::toString(targetUnit(target));
    }
    if ((e + 1) % 100 == 0 || e + 1 == spec.experiments) {
      FADES_LOG(Debug) << "vfit campaign progress"
                       << obs::kv("done", e + 1)
                       << obs::kv("total", spec.experiments)
                       << obs::kv("failures", result.failures);
    }
  }
  return result;
}

}  // namespace fades::vfit
