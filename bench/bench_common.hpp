// Shared infrastructure for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (Section 6) on the same system under test: the MC8051 core
// running Bubblesort, implemented on the Virtex-1000-class generic FPGA.
// Campaign sizes default to a fraction of the paper's 3000 faults so the
// whole suite runs in minutes; set FADES_FAULTS=3000 to reproduce at full
// scale (results converge well before that).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "campaign/types.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "netlist/netlist.hpp"
#include "obs/json.hpp"
#include "synth/implement.hpp"
#include "vfit/vfit.hpp"

namespace fades::bench {

/// Per-binary run-artifact guard. Construct first thing in main():
///
///   int main(int argc, char** argv) {
///     bench::BenchRun run("fig10_emulation_time", argc, argv);
///     ...
///
/// With `--json [path]` on the command line (path defaults to
/// BENCH_<name>.json) every printTable / recordCampaign / recordScalar call
/// is captured, and the destructor writes a `fades.run/1` artifact holding
/// the tables, campaign results, scalars, the global metrics snapshot and
/// the Chrome trace of the run. Without the flag the guard is inert and the
/// bench prints exactly as before.
class BenchRun {
 public:
  BenchRun(std::string name, int argc, char** argv);
  ~BenchRun();
  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  bool recording() const { return !jsonPath_.empty(); }
  const std::string& jsonPath() const { return jsonPath_; }

  void addTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);
  void addCampaign(const std::string& label,
                   const campaign::CampaignResult& result);
  void addScalar(const std::string& name, double value);

 private:
  std::string name_;
  std::string jsonPath_;
  obs::Json tables_ = obs::Json::array();
  obs::Json campaigns_ = obs::Json::array();
  obs::Json scalars_ = obs::Json::object();
};

/// Record a campaign result under `label` into the active BenchRun; no-op
/// when no guard is recording.
void recordCampaign(const std::string& label,
                    const campaign::CampaignResult& result);
/// Record a named headline scalar (speedup factor, eligible count, ...).
void recordScalar(const std::string& name, double value);

/// Experiment count for outcome-percentage campaigns (env FADES_FAULTS).
unsigned classifyCount(unsigned defaultCount = 400);
/// Experiment count for emulation-time campaigns (they converge fast).
unsigned timingCount(unsigned defaultCount = 80);

/// FADES campaign worker count: `--jobs N` on the bench command line
/// (captured by BenchRun), env FADES_JOBS as fallback, default 1 (serial).
/// 0 means one worker per hardware thread.
unsigned jobs();

/// Run `spec` with `tool`'s configuration, sharded across jobs() workers.
/// With jobs() <= 1 this is exactly tool.runCampaign(spec); otherwise a
/// cached ParallelCampaignRunner (one per tool, replicating its device spec
/// and options) runs it with bit-identical results - sharding changes the
/// bench's wall-clock, never its numbers.
campaign::CampaignResult runCampaign(core::FadesTool& tool,
                                     const campaign::CampaignSpec& spec);

/// The paper's system under test, built once per bench binary.
class System8051 {
 public:
  System8051();

  const mc8051::Workload& workload() const { return workload_; }
  const netlist::Netlist& netlist() const { return nl_; }
  const synth::Implementation& implementation() const { return impl_; }

  /// FADES over the implementation (functional campaigns).
  core::FadesTool& fades();
  /// FADES on a device whose clock period is calibrated just above the
  /// fault-free critical path, so delay faults can violate timing.
  core::FadesTool& fadesForDelay();
  /// The VFIT baseline on the same HDL model.
  vfit::VfitTool& vfit();

  core::FadesOptions fadesOptions() const;

  void printHeadline() const;

 private:
  mc8051::Workload workload_;
  netlist::Netlist nl_;
  synth::Implementation impl_;
  std::unique_ptr<fpga::Device> device_;
  std::unique_ptr<core::FadesTool> fades_;
  std::unique_ptr<fpga::Device> delayDevice_;
  std::unique_ptr<core::FadesTool> fadesDelay_;
  std::unique_ptr<vfit::VfitTool> vfit_;
};

/// "measured (paper: x)" cell helper.
std::string withPaper(double measured, const std::string& paper,
                      int decimals = 2);

/// Render one outcome row: failure/latent/silent percentages.
std::string pct3(const campaign::CampaignResult& r);

void printTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Run one campaign per duration band (the paper's <1 / 1-10 / 11-20
/// sweep) and return the results in band order. `pool` optionally confines
/// targets (the paper's "eligible registers" campaigns).
std::vector<campaign::CampaignResult> bandSweep(
    core::FadesTool& tool, campaign::FaultModel model,
    campaign::TargetClass targets, netlist::Unit unit, unsigned experiments,
    std::uint64_t seed = 5, std::vector<std::uint32_t> pool = {});

/// The paper's fault-location scan (Section 6.3): flip-flops whose bit-flip
/// can cause a failure. Cached per tool instance.
std::vector<std::uint32_t> eligibleFlops(core::FadesTool& tool);
/// Names of the eligible flip-flops (to confine VFIT to the same pool).
std::vector<std::string> eligibleFlopNames(core::FadesTool& tool);
/// Routed lines driven by eligible flip-flops (delay campaigns into
/// sequential logic).
std::vector<std::uint32_t> eligibleSequentialLines(core::FadesTool& tool);

}  // namespace fades::bench
