// Table 3: results validation - failure percentages obtained by FADES
// compared against VFIT on the same model, targets, and durations.
//
// Paper values (% failures, durations <1 / 1-10 / 11-20 cycles):
//   bit-flip  FFs      FADES 43.86            VFIT 43.70
//   bit-flip  memory   FADES 80.95            VFIT 81.76
//   pulse     ALU      FADES 0.06/3.13/8.86   VFIT 1.36/3.53/7.43
//   delay     FFs      FADES 5.7/18.6/31.67   VFIT - (not supported)
//   delay     ALU      FADES 0/0.57/2.1       VFIT -
//   indet.    FFs      FADES 29.53/45.9/61.4  VFIT 18.87/35.90/52.47
//   indet.    ALU      FADES 0.37/1.37/3.57   VFIT 1.30/3.03/8.23
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

namespace {

std::string sweepPct(const std::vector<campaign::CampaignResult>& sweep) {
  std::string s;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (i) s += " / ";
    s += common::fixed(sweep[i].failurePct(), 2);
  }
  return s;
}

std::vector<campaign::CampaignResult> vfitSweep(
    vfit::VfitTool& tool, FaultModel model, TargetClass targets, Unit unit,
    unsigned n, std::vector<std::uint32_t> pool = {}) {
  std::vector<campaign::CampaignResult> out;
  for (const auto& band : DurationBand::paperBands()) {
    CampaignSpec spec;
    spec.model = model;
    spec.targets = targets;
    spec.unit = static_cast<int>(unit);
    spec.band = band;
    spec.experiments = n;
    spec.seed = 5;
    spec.targetPool = pool;
    out.push_back(tool.runCampaign(spec));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun benchRun("table3_validation", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  auto& vfitTool = sys.vfit();
  const unsigned n = classifyCount(300);
  const unsigned nDelay = std::min(n, 120u);

  // Shared pools so both tools attack the same positions.
  const auto ffPool = eligibleFlops(fades);
  std::vector<std::uint32_t> vfitFfPool;
  for (const auto& name : eligibleFlopNames(fades)) {
    const auto f = sys.netlist().findFlop(name);
    if (f.has_value()) vfitFfPool.push_back(f->value);
  }
  // Failure-causing memory bits + the VFIT encoding of the same positions.
  std::vector<std::uint32_t> memPool, vfitMemPool;
  {
    common::Rng rng(77);
    const auto allMem = fades.targets(FaultModel::BitFlip,
                                      TargetClass::MemoryBlockBit,
                                      Unit::None);
    const auto& impl = sys.implementation();
    for (std::size_t k = 0; k < allMem.size(); ++k) {
      common::Rng erng = rng.fork(k);
      const auto cycle = erng.below(fades.runCycles());
      if (fades.runExperiment(FaultModel::BitFlip,
                              TargetClass::MemoryBlockBit, allMem[k], cycle,
                              1.0, erng) != campaign::Outcome::Failure) {
        continue;
      }
      memPool.push_back(allMem[k]);
      const unsigned block = allMem[k] >> 16;
      const unsigned contentBit = allMem[k] & 0xFFFF;
      for (std::uint32_t ri = 0; ri < impl.rams.size(); ++ri) {
        for (const auto& s : impl.rams[ri].slices) {
          if (s.block != block) continue;
          const unsigned row = contentBit / s.width;
          const unsigned bit = s.bitLo + contentBit % s.width;
          vfitMemPool.push_back((impl.rams[ri].ram.value << 24) |
                                (row << 8) | bit);
        }
      }
    }
  }

  std::vector<std::vector<std::string>> rows;
  auto addRow = [&](const char* model, const char* where,
                    const std::string& fadesPct, const std::string& vfitPct,
                    const char* paperFades, const char* paperVfit) {
    rows.push_back({model, where, fadesPct, vfitPct, paperFades, paperVfit});
  };

  {  // Bit-flips (duration is irrelevant: they persist).
    CampaignSpec fs;
    fs.model = FaultModel::BitFlip;
    fs.targets = TargetClass::SequentialFF;
    fs.experiments = n;
    fs.seed = 5;
    fs.targetPool = ffPool;
    const auto f = bench::runCampaign(fades, fs);
    fs.targetPool = vfitFfPool;
    const auto v = vfitTool.runCampaign(fs);
    addRow("bit-flip", "FFs", common::fixed(f.failurePct(), 2),
           common::fixed(v.failurePct(), 2), "43.86", "43.70");

    fs.targets = TargetClass::MemoryBlockBit;
    fs.targetPool = memPool;
    const auto fm = bench::runCampaign(fades, fs);
    fs.targetPool = vfitMemPool;
    const auto vm = vfitTool.runCampaign(fs);
    addRow("bit-flip", "memory", common::fixed(fm.failurePct(), 2),
           common::fixed(vm.failurePct(), 2), "80.95", "81.76");
  }
  {  // Pulses into the ALU (the only purely combinational unit).
    const auto f = bandSweep(fades, FaultModel::Pulse,
                             TargetClass::CombinationalLut, Unit::Alu, n);
    const auto v = vfitSweep(vfitTool, FaultModel::Pulse,
                             TargetClass::CombinationalLut, Unit::Alu, n);
    addRow("pulse", "ALU", sweepPct(f), sweepPct(v), "0.06/3.13/8.86",
           "1.36/3.53/7.43");
  }
  {  // Delays: FADES only, like the paper (VFIT lacks delay clauses).
    auto& delayTool = sys.fadesForDelay();
    const auto fSeq = bandSweep(delayTool, FaultModel::Delay,
                                TargetClass::SequentialLine, Unit::None,
                                nDelay, 5, eligibleSequentialLines(fades));
    addRow("delay", "FFs", sweepPct(fSeq), "-", "5.7/18.6/31.67", "-");
    const auto fAlu = bandSweep(delayTool, FaultModel::Delay,
                                TargetClass::CombinationalLine, Unit::Alu,
                                nDelay);
    addRow("delay", "ALU", sweepPct(fAlu), "-", "0/0.57/2.1", "-");
  }
  {  // Indeterminations.
    const auto fFf =
        bandSweep(fades, FaultModel::Indetermination,
                  TargetClass::SequentialFF, Unit::None, n, 5, ffPool);
    const auto vFf = vfitSweep(vfitTool, FaultModel::Indetermination,
                               TargetClass::SequentialFF, Unit::None, n,
                               vfitFfPool);
    addRow("indetermination", "FFs", sweepPct(fFf), sweepPct(vFf),
           "29.53/45.9/61.4", "18.87/35.90/52.47");
    const auto fAlu =
        bandSweep(fades, FaultModel::Indetermination,
                  TargetClass::CombinationalLut, Unit::Alu, n);
    const auto vAlu = vfitSweep(vfitTool, FaultModel::Indetermination,
                                TargetClass::CombinationalLut, Unit::Alu, n);
    addRow("indetermination", "ALU", sweepPct(fAlu), sweepPct(vAlu),
           "0.37/1.37/3.57", "1.30/3.03/8.23");
  }

  printTable("Table 3 - percentage of failures, FADES vs VFIT "
             "(durations <1 / 1-10 / 11-20 cycles; " +
                 std::to_string(n) + " faults per cell)",
             {"fault model", "location", "FADES", "VFIT", "paper FADES",
              "paper VFIT"},
             rows);
  std::printf(
      "Note: FADES draws combinational targets from %zu LUTs while VFIT "
      "sees %zu named ALU signals - the paper's observation (ii) about\n"
      "higher logic masking on the FPGA side applies here too.\n",
      fades.targets(FaultModel::Pulse, TargetClass::CombinationalLut,
                    Unit::Alu).size(),
      vfitTool.signalTargets(Unit::Alu).size());
  return 0;
}
