// Vulnerability-analytics suite: loader coverage for fades.run/1 and
// fades.journal/1 inputs, determinism of the fades.report/1 document across
// shard counts and checkpoint/resume, the committed golden report, and the
// Bubblesort acceptance campaign (component ranking + PC attribution).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analytics/analytics.hpp"
#include "campaign/artifact.hpp"
#include "campaign/journal.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/error.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"

namespace fades {
namespace {

using analytics::CampaignInput;
using analytics::VulnerabilityReport;
using campaign::CampaignResult;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::ExperimentRecord;
using campaign::FaultModel;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::Unit;

// Same mini multi-unit design as the fault/parallel tests: an 8-bit LFSR,
// a 4-bit counter, their sum on "out", and a small write-only RAM log.
struct MiniDesign {
  netlist::Netlist nl;
  synth::Implementation impl;
  std::uint64_t cycles = 64;

  static netlist::Netlist build() {
    rtl::Builder b;
    b.setUnit(Unit::Registers);
    rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
    b.setUnit(Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.setUnit(Unit::Registers);
    auto fb = b.lxor(lfsr.q[7],
                     b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    rtl::Bus next{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.setUnit(Unit::Fsm);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(Unit::Alu);
    auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
    b.setUnit(Unit::Ram);
    b.ram("log", 4, 8, cnt.q, lfsr.q, b.one());
    b.output("out", sum.sum);
    return b.finish();
  }

  MiniDesign()
      : nl(build()), impl(synth::implement(nl, fpga::DeviceSpec::small())) {}

  static const MiniDesign& instance() {
    static MiniDesign d;
    return d;
  }
};

core::FadesOptions miniOptions() {
  core::FadesOptions o;
  o.observedOutputs = {"out"};
  o.keepRecords = true;
  o.progressInterval = 0;
  return o;
}

CampaignSpec miniSpec(unsigned experiments = 24) {
  CampaignSpec spec;
  spec.model = FaultModel::BitFlip;
  spec.targets = TargetClass::SequentialFF;
  spec.unit = static_cast<int>(Unit::None);
  spec.band = DurationBand::shortBand();
  spec.experiments = experiments;
  spec.seed = 77;
  return spec;
}

CampaignResult runMiniCampaign(unsigned jobs, campaign::ParallelOptions popt =
                                                  campaign::ParallelOptions{}) {
  const auto& d = MiniDesign::instance();
  popt.jobs = jobs;
  campaign::ParallelCampaignRunner runner(
      core::fadesEngineFactory(d.impl, d.cycles, miniOptions()), popt);
  return runner.run(miniSpec());
}

/// Scratch file removed (with its .tmp sibling) when the test ends.
struct TempPath {
  std::string str;
  explicit TempPath(const std::string& name)
      : str(::testing::TempDir() + "/" + name) {
    std::remove(str.c_str());
  }
  ~TempPath() {
    std::remove(str.c_str());
    std::remove((str + ".tmp").c_str());
  }
};

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

ExperimentRecord makeRecord(const char* target, const char* component,
                            std::uint64_t inject, Outcome outcome,
                            std::int64_t pc, std::int64_t opcode,
                            std::int64_t detect) {
  ExperimentRecord rec;
  rec.targetName = target;
  rec.injectCycle = inject;
  rec.durationCycles = 2.0;
  rec.outcome = outcome;
  rec.modeledSeconds = 0.25;
  rec.component = component;
  rec.pc = pc;
  rec.opcode = opcode;
  rec.detectCycle = detect;
  return rec;
}

/// Fixed record set used by the aggregation and golden tests.
std::vector<CampaignInput> fixedInputs() {
  CampaignInput input;
  input.path = "(memory)";
  input.schema = "fades.run/1";
  input.name = "fixed";
  // alu: 2/3 failures; registers: 1/4 failures; fsm: all silent.
  input.records.push_back(
      makeRecord("alu_a", "alu", 10, Outcome::Failure, 0x00, 0x74, 12));
  input.records.push_back(
      makeRecord("alu_b", "alu", 11, Outcome::Failure, 0x00, 0x74, 15));
  input.records.push_back(
      makeRecord("alu_c", "alu", 20, Outcome::Silent, 0x02, 0x04, -1));
  input.records.push_back(
      makeRecord("reg_a", "registers", 30, Outcome::Failure, 0x03, 0x80, 31));
  input.records.push_back(
      makeRecord("reg_b", "registers", 31, Outcome::Latent, 0x03, 0x80, -1));
  input.records.push_back(
      makeRecord("reg_c", "registers", 32, Outcome::Silent, 0x03, 0x80, -1));
  input.records.push_back(
      makeRecord("reg_d", "registers", 33, Outcome::Silent, -1, -1, -1));
  input.records.push_back(
      makeRecord("fsm_a", "fsm", 40, Outcome::Silent, 0x02, 0x04, -1));
  return {std::move(input)};
}

// ------------------------------------------------------------ aggregation ---

TEST(Analytics, BasisPointsRoundHalfUpAndRankingsSort) {
  const auto report = analytics::buildReport(fixedInputs());
  EXPECT_EQ(report.totals.experiments, 8u);
  EXPECT_EQ(report.totals.failures, 3u);
  // 3/8 = 37.5 % rounds half up to 3750 bp exactly.
  EXPECT_EQ(report.totals.failureBp, 3750u);

  ASSERT_EQ(report.components.size(), 3u);
  // alu (6667 bp) > registers (2500 bp) > fsm (0 bp).
  EXPECT_EQ(report.components[0].component, "alu");
  EXPECT_EQ(report.components[0].slice.failureBp, 6667u);
  EXPECT_EQ(report.components[1].component, "registers");
  EXPECT_EQ(report.components[1].slice.failureBp, 2500u);
  EXPECT_EQ(report.components[2].component, "fsm");
  EXPECT_EQ(report.components[2].slice.failureBp, 0u);

  // PC table ascends, with the untraced bucket (-1) first.
  ASSERT_GE(report.pcs.size(), 3u);
  EXPECT_EQ(report.pcs[0].pc, -1);
  EXPECT_EQ(report.pcs[0].mnemonic, "(untraced)");
  EXPECT_EQ(report.pcs[1].pc, 0x00);
  EXPECT_EQ(report.pcs[1].mnemonic, "MOV A,#imm");

  // Latency buckets: 12-10=2 and 15-11=4 and 31-30=1 -> buckets 1, 2-3, 4-7.
  ASSERT_EQ(report.latency.size(), 3u);
  EXPECT_EQ(report.latency[0].lo, 1u);
  EXPECT_EQ(report.latency[0].count, 1u);
  EXPECT_EQ(report.latency[1].lo, 2u);
  EXPECT_EQ(report.latency[1].hi, 3u);
  EXPECT_EQ(report.latency[2].lo, 4u);
  EXPECT_EQ(report.latency[2].hi, 7u);
  EXPECT_EQ(report.detected, 3u);
  EXPECT_EQ(report.traced, 7u);
}

TEST(Analytics, MarkdownAndCsvRenderTheRanking) {
  const auto report = analytics::buildReport(fixedInputs());
  const auto md = analytics::toMarkdown(report);
  EXPECT_NE(md.find("## Component ranking"), std::string::npos);
  EXPECT_NE(md.find("| alu |"), std::string::npos);
  EXPECT_NE(md.find("66.67"), std::string::npos);
  EXPECT_NE(md.find("## PC attribution"), std::string::npos);
  EXPECT_NE(md.find("0x0003"), std::string::npos);
  const auto csv = analytics::toCsv(report);
  EXPECT_NE(csv.find("component,experiments,failures"), std::string::npos);
  EXPECT_NE(csv.find("alu,3,2,0,1,6667,0,3333"), std::string::npos);
}

// ----------------------------------------------------------------- loaders --

TEST(Analytics, LoadsArtifactJsonJsonlAndJournal) {
  const auto result = runMiniCampaign(1);
  ASSERT_FALSE(result.records.empty());
  const auto artifact =
      campaign::toRunArtifact(result, "mini", /*includeMetrics=*/false);

  TempPath json("analytics_in.json");
  TempPath jsonl("analytics_in.jsonl");
  artifact.writeJson(json.str);
  artifact.writeJsonl(jsonl.str);

  const auto fromJson = analytics::loadRunArtifact(json.str);
  const auto fromJsonl = analytics::loadRunArtifact(jsonl.str);
  EXPECT_EQ(fromJson.name, "mini");
  EXPECT_EQ(fromJson.records.size(), result.records.size());
  EXPECT_EQ(fromJsonl.records.size(), result.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(fromJson.records[i].targetName, result.records[i].targetName);
    EXPECT_EQ(fromJson.records[i].component, result.records[i].component);
    EXPECT_EQ(fromJson.records[i].detectCycle, result.records[i].detectCycle);
    EXPECT_EQ(fromJsonl.records[i].outcome, result.records[i].outcome);
  }

  // The journal written live by a campaign loads to the same records.
  TempPath journalPath("analytics_in.journal");
  {
    campaign::CampaignJournal journal(journalPath.str);
    campaign::ParallelOptions popt;
    popt.journal = &journal;
    (void)runMiniCampaign(1, popt);
  }
  const auto fromJournal = analytics::loadJournal(journalPath.str);
  EXPECT_EQ(fromJournal.schema, "fades.journal/1");
  EXPECT_EQ(fromJournal.records.size(), result.records.size());

  // Directory scan classifies all three by schema.
  const auto inputs = analytics::loadInputs({json.str, jsonl.str,
                                             journalPath.str});
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(analytics::buildReport(inputs).totals.experiments,
            3 * result.records.size());
}

TEST(Analytics, RejectsForeignFiles) {
  TempPath bogus("analytics_bogus.json");
  writeWholeFile(bogus.str, "{\"schema\": \"something.else/9\"}\n");
  EXPECT_THROW(analytics::loadInputs({bogus.str}), common::FadesError);
  TempPath missing("analytics_missing.json");
  EXPECT_THROW(analytics::loadInputs({missing.str}), common::FadesError);
}

TEST(Analytics, ZeroExperimentArtifactsFoldToZeroBasisPoints) {
  // A campaign that kept no records (or was killed right after the header)
  // must aggregate to a clean all-zero report, not a division by zero.
  TempPath emptyRun("analytics_empty_run.json");
  writeWholeFile(emptyRun.str,
                 "{\"schema\": \"fades.run/1\", \"name\": \"empty\", "
                 "\"records\": []}\n");
  TempPath headerJsonl("analytics_header_only.jsonl");
  writeWholeFile(headerJsonl.str,
                 "{\"schema\": \"fades.run/1\", \"name\": \"empty\"}\n");
  TempPath headerJournal("analytics_header_only.journal");
  writeWholeFile(headerJournal.str,
                 "{\"schema\": \"fades.journal/1\", \"spec\": {}}\n");

  const auto inputs = analytics::loadInputs(
      {emptyRun.str, headerJsonl.str, headerJournal.str});
  ASSERT_EQ(inputs.size(), 3u);
  for (const auto& in : inputs) EXPECT_TRUE(in.records.empty()) << in.path;

  const auto report = analytics::buildReport(inputs);
  EXPECT_EQ(report.totals.experiments, 0u);
  EXPECT_EQ(report.totals.failureBp, 0u);
  EXPECT_EQ(report.totals.latentBp, 0u);
  EXPECT_EQ(report.totals.silentBp, 0u);
  EXPECT_TRUE(report.components.empty());
  // Renderers must survive the empty report too.
  EXPECT_NE(analytics::toMarkdown(report).find("experiments"),
            std::string::npos);
  EXPECT_FALSE(analytics::toCsv(report).empty());
}

TEST(Analytics, EmptyJournalFileIsRejectedNotFoldedAsZero) {
  // No header at all means the file is not a journal; folding it silently
  // as zero experiments would hide the broken input.
  TempPath empty("analytics_empty.journal");
  writeWholeFile(empty.str, "");
  EXPECT_THROW(analytics::loadJournal(empty.str), common::FadesError);
  // A torn header (no newline yet) is equally not loadable.
  TempPath torn("analytics_torn.journal");
  writeWholeFile(torn.str, "{\"schema\": \"fades.jou");
  EXPECT_THROW(analytics::loadJournal(torn.str), common::FadesError);
}

// ------------------------------------------------------------- determinism --

TEST(Analytics, ReportIsByteIdenticalAcrossJobCounts) {
  const auto r1 = runMiniCampaign(1);
  const auto r8 = runMiniCampaign(8);

  TempPath a1("analytics_jobs1.json");
  TempPath a8("analytics_jobs8.json");
  campaign::toRunArtifact(r1, "mini", false).writeJson(a1.str);
  campaign::toRunArtifact(r8, "mini", false).writeJson(a8.str);
  // The artifacts themselves are byte-identical...
  EXPECT_EQ(readWholeFile(a1.str), readWholeFile(a8.str));
  // ...and so are the reports folded from them.
  const auto report1 =
      analytics::buildReport(analytics::loadInputs({a1.str}));
  const auto report8 =
      analytics::buildReport(analytics::loadInputs({a8.str}));
  EXPECT_EQ(analytics::toJson(report1).dump(2),
            analytics::toJson(report8).dump(2));
  EXPECT_EQ(analytics::toMarkdown(report1), analytics::toMarkdown(report8));
  EXPECT_EQ(analytics::toCsv(report1), analytics::toCsv(report8));
}

TEST(Analytics, ReportFromKilledAndResumedJournalIsByteIdentical) {
  // Uninterrupted journal.
  TempPath full("analytics_full.journal");
  {
    campaign::CampaignJournal journal(full.str);
    campaign::ParallelOptions popt;
    popt.journal = &journal;
    (void)runMiniCampaign(1, popt);
  }

  // Simulate a kill after 5 committed outcomes plus a torn line, resume.
  TempPath resumed("analytics_resumed.journal");
  {
    const std::string content = readWholeFile(full.str);
    std::size_t pos = 0;
    for (int lines = 0; lines < 6; ++lines) {  // header + 5 outcomes
      pos = content.find('\n', pos) + 1;
    }
    writeWholeFile(resumed.str, content.substr(0, pos) + "{\"index\": 17, ");
  }
  {
    campaign::CampaignJournal journal(resumed.str);
    campaign::ParallelOptions popt;
    popt.journal = &journal;
    popt.resume = true;
    (void)runMiniCampaign(1, popt);
  }

  const auto reportFull =
      analytics::buildReport(analytics::loadInputs({full.str}));
  const auto reportResumed =
      analytics::buildReport(analytics::loadInputs({resumed.str}));
  EXPECT_EQ(analytics::toJson(reportFull).dump(2),
            analytics::toJson(reportResumed).dump(2));
}

// ------------------------------------------------------------ golden file ---

TEST(Analytics, ReportMatchesGoldenFileByteForByte) {
  // Pins the exact fades.report/1 text for a fixed record set: key order,
  // integer formatting, table sorting. To regenerate after an intentional
  // schema change:
  //   FADES_REGEN_GOLDEN=1 ./tests/test_analytics
  //       --gtest_filter='Analytics.ReportMatchesGolden*'
  const auto report = analytics::buildReport(fixedInputs());
  const std::string text = analytics::toJson(report).dump(2) + "\n";

  const std::string goldenPath =
      std::string(FADES_TEST_DATA_DIR) + "/golden_report.json";
  if (std::getenv("FADES_REGEN_GOLDEN") != nullptr) {
    writeWholeFile(goldenPath, text);
    GTEST_SKIP() << "regenerated " << goldenPath;
  }
  std::ifstream in(goldenPath, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << goldenPath;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str());
}

// ------------------------------------------------- Bubblesort acceptance ----

TEST(Analytics, BubblesortCampaignRanksComponentsWithPcAttribution) {
  // The paper's system under test: MC8051 running Bubblesort. A bit-flip
  // campaign over all flip-flops must attribute experiments to at least
  // four distinct functional units with differing failure fractions, and
  // every experiment must carry golden-run PC attribution.
  const auto workload = mc8051::bubblesort(6);
  const auto nl = mc8051::buildCore(workload.bytes);
  const auto impl = synth::implement(nl, fpga::DeviceSpec::virtex1000Like());

  core::FadesOptions options;
  options.keepRecords = true;
  options.progressInterval = 0;
  {
    mc8051::Iss iss(workload.bytes);
    const auto samples = iss.tracePcPerCycle(workload.cycles);
    auto trace = std::make_shared<campaign::InstructionTrace>();
    for (const auto& s : samples) {
      trace->push_back(campaign::InstructionSample{s.pc, s.opcode});
    }
    options.instructionTrace = std::move(trace);
  }

  // One campaign over the core's flip-flops (registers / FSM / memory
  // controller) and one over the RAM bits, folded into a single report the
  // way fades_report folds an artifact directory.
  fpga::Device device(impl.spec);
  core::FadesTool tool(device, impl, workload.cycles, options);
  CampaignSpec spec;
  spec.model = FaultModel::BitFlip;
  spec.targets = TargetClass::SequentialFF;
  spec.unit = static_cast<int>(Unit::None);
  spec.band = DurationBand::shortBand();
  spec.experiments = 48;
  spec.seed = 2006;
  const auto ffResult = tool.runCampaign(spec);
  spec.targets = TargetClass::MemoryBlockBit;
  spec.experiments = 16;
  const auto ramResult = tool.runCampaign(spec);

  std::vector<CampaignInput> inputs(2);
  inputs[0].schema = "fades.run/1";
  inputs[0].records = ffResult.records;
  inputs[1].schema = "fades.run/1";
  inputs[1].records = ramResult.records;
  const auto report = analytics::buildReport(inputs);
  ASSERT_EQ(report.totals.experiments, 64u);

  // Acceptance: >= 4 distinct components, not all with the same failure
  // fraction.
  EXPECT_GE(report.components.size(), 4u);
  std::set<unsigned> fractions;
  for (const auto& c : report.components) {
    fractions.insert(c.slice.failureBp);
  }
  EXPECT_GE(fractions.size(), 2u);

  // Every mc8051 experiment has PC attribution (the trace covers the whole
  // workload), in particular every non-silent one.
  for (const auto& input : inputs) {
    for (const auto& rec : input.records) {
      EXPECT_GE(rec.pc, 0) << rec.targetName;
      EXPECT_GE(rec.opcode, 0) << rec.targetName;
      // A failure was observed diverging at or after its injection.
      if (rec.outcome == Outcome::Failure) {
        EXPECT_GE(rec.detectCycle,
                  static_cast<std::int64_t>(rec.injectCycle));
      }
    }
  }
  EXPECT_EQ(report.traced, 64u);
}

}  // namespace
}  // namespace fades
