
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_ctr_rtr.cpp" "bench/CMakeFiles/bench_ablation_ctr_rtr.dir/bench_ablation_ctr_rtr.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_ctr_rtr.dir/bench_ablation_ctr_rtr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fades_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/fades_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fades_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/fades_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/vfit/CMakeFiles/fades_vfit.dir/DependInfo.cmake"
  "/root/repo/build/src/campaign/CMakeFiles/fades_campaign.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fades_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mc8051/CMakeFiles/fades_mc8051.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/fades_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fades_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fades_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
