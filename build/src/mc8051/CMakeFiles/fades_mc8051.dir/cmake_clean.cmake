file(REMOVE_RECURSE
  "CMakeFiles/fades_mc8051.dir/assembler.cpp.o"
  "CMakeFiles/fades_mc8051.dir/assembler.cpp.o.d"
  "CMakeFiles/fades_mc8051.dir/core.cpp.o"
  "CMakeFiles/fades_mc8051.dir/core.cpp.o.d"
  "CMakeFiles/fades_mc8051.dir/isa.cpp.o"
  "CMakeFiles/fades_mc8051.dir/isa.cpp.o.d"
  "CMakeFiles/fades_mc8051.dir/iss.cpp.o"
  "CMakeFiles/fades_mc8051.dir/iss.cpp.o.d"
  "CMakeFiles/fades_mc8051.dir/workloads.cpp.o"
  "CMakeFiles/fades_mc8051.dir/workloads.cpp.o.d"
  "libfades_mc8051.a"
  "libfades_mc8051.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_mc8051.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
