#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace fades::obs {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  if (std::isnan(value)) {
    // Drop, don't bucket: lower_bound would put a NaN in the FIRST bucket
    // (every comparison is false) and the CAS below would poison `sum`.
    nanCount_.fetch_add(1, std::memory_order_relaxed);
    if (nanCounter_ != nullptr) nanCounter_->inc();
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of atomic<double>::fetch_add to stay portable across
  // libstdc++ versions.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  nanCount_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upperBounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upperBounds));
    // Find-or-create the shared NaN counter inline: calling counter() here
    // would re-lock the (non-recursive) registry mutex.
    auto& nanSlot = counters_["obs.histogram_nan_dropped"];
    if (!nanSlot) nanSlot = std::make_unique<Counter>();
    slot->setNanCounter(nanSlot.get());
  }
  return *slot;
}

Json Registry::snapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json bounds = Json::array();
    for (double b : h->bounds()) bounds.push(b);
    Json buckets = Json::array();
    for (std::uint64_t c : h->counts()) buckets.push(c);
    Json entry = Json::object();
    entry.set("bounds", std::move(bounds));
    entry.set("counts", std::move(buckets));
    entry.set("count", h->count());
    entry.set("nan_dropped", h->nanCount());
    entry.set("sum", h->sum());
    histograms.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace fades::obs
