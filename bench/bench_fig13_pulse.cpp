// Figure 13: pulse faults into combinational logic, split by functional
// unit (ALU / memory control / FSM) and fault duration. Paper trends:
// failures grow slowly with duration; the FSM is the most failure-sensitive
// unit; pulses into the memory-control unit produce many latent errors and
// the lowest silent rates.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("fig13_pulse", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = classifyCount(300);

  const char* bands[3] = {"<1", "1-10", "11-20"};
  struct UnitRow {
    const char* name;
    Unit unit;
    const char* paperNote;
  };
  const UnitRow units[] = {
      {"ALU", Unit::Alu, "paper failure %: 0.06 / 3.13 / 8.86"},
      {"MEM", Unit::MemCtrl, "paper: most latent errors, lowest silent"},
      {"FSM", Unit::Fsm, "paper: most failure-sensitive unit"},
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& u : units) {
    const auto sweep = bandSweep(sys.fades(), FaultModel::Pulse,
                                 TargetClass::CombinationalLut, u.unit, n);
    for (int b = 0; b < 3; ++b) {
      rows.push_back({u.name, bands[b], pct3(sweep[b]),
                      b == 0 ? u.paperNote : ""});
    }
  }
  printTable("Figure 13 - pulse emulation into combinational logic (" +
                 std::to_string(n) + " faults per cell)",
             {"unit", "duration (cycles)", "failure / latent / silent %",
              "paper reference"},
             rows);
  return 0;
}
