#include "obs/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace fades::obs {

const char* toString(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel parseLogLevel(std::string_view text, LogLevel fallback) {
  std::string lower;
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return fallback;
}

namespace {

/// Quote and escape a field value when needed to keep `key=value` tokens
/// unambiguous: values with spaces, quotes, '=' or control characters are
/// wrapped in double quotes with backslash escapes.
std::string renderFieldValue(const std::string& value) {
  bool needsQuotes = value.empty();
  for (unsigned char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c < 0x20) {
      needsQuotes = true;
      break;
    }
  }
  if (!needsQuotes) return value;
  std::string out = "\"";
  for (unsigned char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += static_cast<char>(c);
    }
  }
  out += '"';
  return out;
}

std::string timestamp(std::uint64_t wallMicros) {
  const std::time_t secs = static_cast<std::time_t>(wallMicros / 1000000);
  const unsigned millis = static_cast<unsigned>((wallMicros / 1000) % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03uZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  return buf;
}

}  // namespace

std::string Logger::format(const LogRecord& record) {
  std::string out = timestamp(record.wallMicros);
  out += ' ';
  out += toString(record.level);
  out += ' ';
  out += record.message;
  for (const auto& f : record.fields) {
    out += ' ';
    out += f.key;
    out += '=';
    out += renderFieldValue(f.value);
  }
  return out;
}

Logger::Logger() {
  if (const char* v = std::getenv("FADES_LOG")) {
    setThreshold(parseLogLevel(v, LogLevel::Info));
  }
  if (const char* v = std::getenv("FADES_LOG_FILE")) {
    filePath_ = v;
  }
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::setSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogRecord record) {
  if (!enabled(record.level)) return;
  record.wallMicros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(record);
    return;
  }
  const std::string line = format(record) + "\n";
  if (!filePath_.empty()) {
    if (std::FILE* f = std::fopen(filePath_.c_str(), "ab")) {
      std::fwrite(line.data(), 1, line.size(), f);
      std::fclose(f);
      return;
    }
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace fades::obs
