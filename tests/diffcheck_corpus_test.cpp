// Replays the committed differential-oracle seed corpus.
//
// Every case file under corpus/diffcheck/ is loaded and driven through the
// full three-way oracle (FADES vs VFIT vs golden ISS); any rule violation
// fails the test. This is the deterministic regression net for the
// differential subsystem: a change to the fault injectors, the cost model,
// the stream derivation or the MC8051 core that breaks cross-tool agreement
// surfaces here, on a fixed and reviewable set of cases.
//
// FADES_CORPUS_DIR is injected by CMake and points at the source tree.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "diffcheck/case_spec.hpp"
#include "diffcheck/corpus.hpp"
#include "diffcheck/oracle.hpp"

namespace fades::diffcheck {
namespace {

const std::vector<std::string>& corpusFiles() {
  static const std::vector<std::string> files =
      listCorpusFiles(FADES_CORPUS_DIR);
  return files;
}

TEST(DiffcheckCorpus, IsPresentAndCoversTheFaultMatrix) {
  const auto& files = corpusFiles();
  ASSERT_GE(files.size(), 20u);
  std::set<std::pair<int, int>> combos;
  std::set<std::string> names;
  for (const auto& path : files) {
    const CaseSpec c = loadCase(path);
    combos.insert({static_cast<int>(c.inject.model),
                   static_cast<int>(c.inject.targets)});
    EXPECT_TRUE(names.insert(c.name).second)
        << "duplicate case name " << c.name << " in " << path;
  }
  EXPECT_EQ(combos.size(), 8u)
      << "corpus no longer covers all fault-model x target-class pairs";
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusReplay, OracleAgrees) {
  const CaseSpec c = loadCase(GetParam());
  const CaseReport report = checkCase(c);
  EXPECT_GT(report.experiments, 0u) << c.describe();
  for (const auto& v : report.violations) {
    ADD_FAILURE() << c.name << ": " << v.rule << ": " << v.detail;
  }
  // Engine invariance: replaying the same case with VFIT on the compiled
  // bit-parallel engine must reproduce the oracle verdict byte-for-byte -
  // same violations (none), same tallies, same modeled costs.
  OracleOptions compiled;
  compiled.vfitEngine = sim::EngineKind::Compiled;
  const CaseReport creport = checkCase(c, compiled);
  EXPECT_EQ(report.toJson().dump(), creport.toJson().dump())
      << c.name << ": oracle report differs between VFIT engines";
}

std::string caseNameFromPath(const std::string& path) {
  std::string stem = path.substr(path.find_last_of('/') + 1);
  stem = stem.substr(0, stem.rfind(".json"));
  for (char& ch : stem) {
    if (ch == '-' || ch == '.') ch = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(All, CorpusReplay,
                         ::testing::ValuesIn(corpusFiles()),
                         [](const auto& info) {
                           return caseNameFromPath(info.param);
                         });

}  // namespace
}  // namespace fades::diffcheck
