#include "synth/instrument.hpp"

#include <map>
#include <set>
#include <string>

#include "common/error.hpp"

namespace fades::synth {

using common::ErrorKind;
using common::raise;
using common::require;
using netlist::FlopId;
using netlist::GateId;
using netlist::GateOp;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;
using netlist::Unit;

namespace {

/// Shared target validation for both instrumentation passes: a duplicate
/// target would chain two saboteurs (or two masks) onto one site, so one
/// selector value / mask bit no longer maps to one injection site. `nameOf`
/// renders the offending target for the error message.
template <typename Id, typename NameOf>
void requireUniqueTargets(const std::vector<Id>& targets, const char* what,
                          NameOf nameOf) {
  std::set<std::uint32_t> seen;
  for (Id t : targets) {
    if (!seen.insert(t.value).second) {
      raise(ErrorKind::ConfigError,
            std::string("duplicate ") + what + " '" + nameOf(t) + "'");
    }
  }
}

}  // namespace

InstrumentedModel instrumentWithSaboteurs(
    const Netlist& source, const std::vector<NetId>& targets) {
  require(!targets.empty(), ErrorKind::InvalidArgument,
          "no saboteur targets");
  InstrumentedModel out;
  out.netlist = source;  // instrumentation is additive
  Netlist& nl = out.netlist;

  for (NetId t : targets) {
    require(t.valid() && t.value < nl.netCount(), ErrorKind::InvalidArgument,
            "saboteur target net out of range");
    require(nl.driverOf(t).kind != Netlist::DriverKind::Input,
            ErrorKind::InvalidArgument,
            "saboteur targets must not be input-port nets");
  }
  requireUniqueTargets(targets, "saboteur target net", [&](NetId t) {
    return nl.netName(t).empty() ? "net#" + std::to_string(t.value)
                                 : nl.netName(t);
  });

  // 1. Collect the ORIGINAL consumers of every target before any saboteur
  //    logic exists (the saboteurs themselves read the unmodified nets).
  struct Slot {
    enum class Kind : std::uint8_t { GateIn, FlopD, RamPin, PortOut } kind;
    std::uint32_t a = 0;  // gate/flop/ram/port index
    std::uint32_t b = 0;  // gate pin / port bit
  };
  std::map<std::uint32_t, std::vector<Slot>> slots;
  for (NetId t : targets) slots[t.value];  // mark
  auto interested = [&](NetId n) { return slots.count(n.value) != 0; };

  for (std::uint32_t g = 0; g < nl.gateCount(); ++g) {
    const auto& gate = nl.gates()[g];
    for (unsigned k = 0; k < netlist::arity(gate.op); ++k) {
      if (interested(gate.in[k])) {
        slots[gate.in[k].value].push_back(
            Slot{Slot::Kind::GateIn, g, k});
      }
    }
  }
  for (std::uint32_t f = 0; f < nl.flopCount(); ++f) {
    if (interested(nl.flops()[f].d)) {
      slots[nl.flops()[f].d.value].push_back(Slot{Slot::Kind::FlopD, f, 0});
    }
  }
  for (std::uint32_t r = 0; r < nl.ramCount(); ++r) {
    const auto& ram = nl.rams()[r];
    auto check = [&](NetId n) {
      if (interested(n)) slots[n.value].push_back(Slot{Slot::Kind::RamPin, r, 0});
    };
    for (NetId n : ram.addr) check(n);
    for (NetId n : ram.dataIn) check(n);
    if (ram.writeEnable.valid()) check(ram.writeEnable);
  }
  for (std::uint32_t p = 0; p < nl.outputs().size(); ++p) {
    const auto& port = nl.outputs()[p];
    for (std::uint32_t b = 0; b < port.nets.size(); ++b) {
      if (interested(port.nets[b])) {
        slots[port.nets[b].value].push_back(Slot{Slot::Kind::PortOut, p, b});
      }
    }
  }

  // 2. Injection control ports. One target needs no selection logic at all:
  //    the lone saboteur is driven straight by `sab_enable`, and no
  //    `sab_select` port is emitted.
  out.selectBits = 0;
  if (targets.size() > 1) {
    out.selectBits = 1;
    while ((std::size_t{1} << out.selectBits) < targets.size()) {
      ++out.selectBits;
    }
  }
  const NetId enable = nl.addNet("sab_enable");
  nl.addInputPort("sab_enable", {enable});
  std::vector<NetId> select;
  for (unsigned b = 0; b < out.selectBits; ++b) {
    select.push_back(nl.addNet("sab_select[" + std::to_string(b) + "]"));
  }
  if (!select.empty()) nl.addInputPort("sab_select", select);

  // 3. Splice one inverting saboteur per target and rewire its consumers.
  const std::size_t gatesBefore = nl.gateCount();
  for (std::uint32_t idx = 0; idx < targets.size(); ++idx) {
    const NetId t = targets[idx];
    // sel == idx; with a single target the enable pin is the whole control.
    NetId ctl = enable;
    if (out.selectBits > 0) {
      NetId match{};
      for (unsigned b = 0; b < out.selectBits; ++b) {
        NetId bit = select[b];
        if (((idx >> b) & 1u) == 0) {
          const GateId inv = nl.addGate(GateOp::Not, bit);
          bit = nl.gate(inv).out;
        }
        if (!match.valid()) {
          match = bit;
        } else {
          const GateId andG = nl.addGate(GateOp::And, match, bit);
          match = nl.gate(andG).out;
        }
      }
      const GateId andCtl = nl.addGate(GateOp::And, enable, match);
      ctl = nl.gate(andCtl).out;
    }
    const GateId sab = nl.addGate(GateOp::Xor, t, ctl);
    const NetId sabOut = nl.gate(sab).out;
    nl.setNetName(sabOut, nl.netName(t).empty()
                              ? "sab" + std::to_string(idx)
                              : nl.netName(t) + ".sab");
    out.selectors.emplace_back(t, idx);

    for (const Slot& s : slots[t.value]) {
      switch (s.kind) {
        case Slot::Kind::GateIn:
          nl.replaceGateInput(GateId{s.a}, s.b, sabOut);
          break;
        case Slot::Kind::FlopD:
          nl.replaceFlopInput(FlopId{s.a}, sabOut);
          break;
        case Slot::Kind::RamPin:
          nl.replaceRamInput(RamId{s.a}, t, sabOut);
          break;
        case Slot::Kind::PortOut:
          nl.replaceOutputPortNet(s.a, s.b, sabOut);
          break;
      }
    }
  }
  out.saboteurGates = nl.gateCount() - gatesBefore;
  nl.validate();
  return out;
}

AutonomousModel instrumentAutonomous(const Netlist& source,
                                     const std::vector<FlopId>& flops) {
  AutonomousModel out;
  out.netlist = source;  // instrumentation is additive
  Netlist& nl = out.netlist;
  const auto sourceFlops = static_cast<std::uint32_t>(nl.flopCount());
  const auto sourceRams = static_cast<std::uint32_t>(nl.ramCount());
  require(sourceFlops > 0, ErrorKind::InvalidArgument,
          "autonomous instrumentation needs at least one flip-flop");

  out.chain = flops;
  if (out.chain.empty()) {
    for (std::uint32_t f = 0; f < sourceFlops; ++f) {
      out.chain.push_back(FlopId{f});
    }
  }
  for (FlopId f : out.chain) {
    require(f.valid() && f.value < sourceFlops, ErrorKind::InvalidArgument,
            "autonomous mask target flop out of range");
  }
  requireUniqueTargets(out.chain, "autonomous mask target flop", [&](FlopId f) {
    const std::string& name = nl.flops()[f.value].name;
    return name.empty() ? "flop#" + std::to_string(f.value) : name;
  });
  out.chainBits = static_cast<unsigned>(out.chain.size());

  const std::size_t gatesBefore = nl.gateCount();
  const std::size_t flopsBefore = nl.flopCount();

  auto controlPort = [&](const char* name) {
    require(nl.findInput(name) == nullptr && nl.findOutput(name) == nullptr,
            ErrorKind::ConfigError,
            std::string("source model already has a port named '") + name +
                "'");
    const NetId n = nl.addNet(name);
    nl.addInputPort(name, {n});
    return n;
  };
  const NetId scanIn = controlPort("am_scan_in");
  const NetId shift = controlPort("am_shift");
  const NetId inject = controlPort("am_inject");
  const NetId capture = controlPort("am_capture");
  const NetId restore = controlPort("am_restore");

  // 1. Injection-mask registers, threaded into a scan chain: while
  //    `am_shift` is high each mask takes the previous chain bit, otherwise
  //    it holds. Masks reset to 0, so the unloaded chain is inert.
  std::vector<NetId> maskQ(sourceFlops, NetId{});
  NetId prev = scanIn;
  for (FlopId f : out.chain) {
    const std::string base = nl.flops()[f.value].name.empty()
                                 ? "flop" + std::to_string(f.value)
                                 : nl.flops()[f.value].name;
    const NetId q = nl.addNet(base + ".mask");
    const GateId mux = nl.addGate(GateOp::Mux, q, prev, shift);
    nl.addFlop(nl.gate(mux).out, false, Unit::None, base + ".mask", q);
    maskQ[f.value] = q;
    prev = q;
  }
  nl.addOutputPort("am_scan_out", {prev});

  // 2. Per-flop injection XOR, shadow golden copy and single-cycle restore:
  //
  //      d_eff     = am_restore ? shadow_q : d XOR (am_inject AND mask_q)
  //      shadow_d  = am_capture ? d_eff : shadow_q
  //
  //    While capturing, the shadow's next state equals the main flop's, so
  //    it mirrors the golden run cycle-for-cycle; dropping `am_capture`
  //    freezes the golden state, and one cycle of `am_restore` copies it
  //    back into every main flop at once. Every flop gets a shadow (restore
  //    must be complete) even when only a subset carries a mask.
  for (std::uint32_t f = 0; f < sourceFlops; ++f) {
    const auto& flop = nl.flops()[f];
    const std::string base =
        flop.name.empty() ? "flop" + std::to_string(f) : flop.name;
    const NetId shadowQ = nl.addNet(base + ".shadow");
    NetId effD = flop.d;
    if (maskQ[f].valid()) {
      const GateId arm = nl.addGate(GateOp::And, inject, maskQ[f]);
      const GateId flip = nl.addGate(GateOp::Xor, effD, nl.gate(arm).out);
      effD = nl.gate(flip).out;
    }
    const GateId rmux = nl.addGate(GateOp::Mux, effD, shadowQ, restore);
    const NetId dEff = nl.gate(rmux).out;
    nl.replaceFlopInput(FlopId{f}, dEff);
    const GateId smux = nl.addGate(GateOp::Mux, shadowQ, dEff, capture);
    nl.addFlop(nl.gate(smux).out, flop.init, Unit::None, base + ".shadow",
               shadowQ);
  }

  // 3. Shadow memory blocks: same address/data/write stream as the source
  //    block, but writes are gated by `am_capture` - while capturing the
  //    shadow mirrors the golden contents, afterwards it holds them for the
  //    restore sweep. ROMs are immutable and need no shadow.
  for (std::uint32_t r = 0; r < sourceRams; ++r) {
    const auto& ram = nl.rams()[r];
    if (ram.isRom()) continue;
    const GateId weGate = nl.addGate(GateOp::And, ram.writeEnable, capture);
    nl.addRam(ram.addrBits, ram.dataBits, ram.addr, ram.dataIn,
              nl.gate(weGate).out, ram.init, Unit::None,
              ram.name + ".shadow");
    out.shadowRamBits += ram.depth() * ram.dataBits;
  }

  out.addedGates = nl.gateCount() - gatesBefore;
  out.addedFlops = nl.flopCount() - flopsBefore;
  nl.validate();
  return out;
}

}  // namespace fades::synth
