#include "mc8051/isa.hpp"

namespace fades::mc8051 {

unsigned instructionLength(std::uint8_t op) {
  // Register forms (low three bits = n) and indirect forms (low bit = i).
  const std::uint8_t fam = op & 0xF8;
  const std::uint8_t ind = op & 0xFE;

  switch (op) {
    case OP_NOP:
    case OP_RR_A:
    case OP_INC_A:
    case OP_RRC_A:
    case OP_DEC_A:
    case OP_RET:
    case OP_RL_A:
    case OP_RLC_A:
    case OP_CPL_C:
    case OP_CLR_C:
    case OP_SETB_C:
    case OP_CLR_A:
    case OP_CPL_A:
    case OP_MUL_AB:
    case OP_DIV_AB:
      return 1;
    case OP_INC_DIR:
    case OP_DEC_DIR:
    case OP_ADD_IMM:
    case OP_ADD_DIR:
    case OP_ADDC_IMM:
    case OP_ADDC_DIR:
    case OP_JC:
    case OP_ORL_A_IMM:
    case OP_ORL_A_DIR:
    case OP_JNC:
    case OP_ANL_A_IMM:
    case OP_ANL_A_DIR:
    case OP_JZ:
    case OP_XRL_A_IMM:
    case OP_XRL_A_DIR:
    case OP_JNZ:
    case OP_MOV_A_IMM:
    case OP_SJMP:
    case OP_SUBB_IMM:
    case OP_SUBB_DIR:
    case OP_PUSH:
    case OP_XCH_A_DIR:
    case OP_POP:
    case OP_MOV_A_DIR:
    case OP_MOV_DIR_A:
      return 2;
    case OP_LJMP:
    case OP_LCALL:
    case OP_MOV_DIR_IMM:
    case OP_MOV_DIR_DIR:
    case OP_CJNE_A_IMM:
    case OP_CJNE_A_DIR:
    case OP_DJNZ_DIR:
      return 3;
    default:
      break;
  }
  if (ind == OP_INC_IND || ind == OP_DEC_IND || ind == OP_ADD_IND ||
      ind == OP_ADDC_IND || ind == OP_SUBB_IND || ind == OP_MOV_A_IND ||
      ind == OP_MOV_IND_A) {
    return 1;
  }
  if (ind == OP_MOV_IND_IMM) return 2;
  if (ind == OP_CJNE_IND_IMM) return 3;
  if (fam == OP_INC_RN || fam == OP_DEC_RN || fam == OP_ADD_RN ||
      fam == OP_ADDC_RN || fam == OP_ORL_A_RN || fam == OP_ANL_A_RN ||
      fam == OP_XRL_A_RN || fam == OP_SUBB_RN || fam == OP_XCH_A_RN ||
      fam == OP_MOV_A_RN || fam == OP_MOV_RN_A) {
    return 1;
  }
  if (fam == OP_MOV_RN_IMM || fam == OP_MOV_DIR_RN || fam == OP_MOV_RN_DIR ||
      fam == OP_DJNZ_RN) {
    return 2;
  }
  if (fam == OP_CJNE_RN_IMM) return 3;
  return 0;
}

const char* opcodeName(std::uint8_t op) {
  const std::uint8_t fam = op & 0xF8;
  const std::uint8_t ind = op & 0xFE;

  switch (op) {
    case OP_NOP: return "NOP";
    case OP_LJMP: return "LJMP addr16";
    case OP_RR_A: return "RR A";
    case OP_INC_A: return "INC A";
    case OP_INC_DIR: return "INC dir";
    case OP_LCALL: return "LCALL addr16";
    case OP_RRC_A: return "RRC A";
    case OP_DEC_A: return "DEC A";
    case OP_DEC_DIR: return "DEC dir";
    case OP_RET: return "RET";
    case OP_RL_A: return "RL A";
    case OP_ADD_IMM: return "ADD A,#imm";
    case OP_ADD_DIR: return "ADD A,dir";
    case OP_RLC_A: return "RLC A";
    case OP_ADDC_IMM: return "ADDC A,#imm";
    case OP_ADDC_DIR: return "ADDC A,dir";
    case OP_JC: return "JC rel";
    case OP_ORL_A_IMM: return "ORL A,#imm";
    case OP_ORL_A_DIR: return "ORL A,dir";
    case OP_JNC: return "JNC rel";
    case OP_DIV_AB: return "DIV AB";
    case OP_MUL_AB: return "MUL AB";
    case OP_ANL_A_IMM: return "ANL A,#imm";
    case OP_ANL_A_DIR: return "ANL A,dir";
    case OP_JZ: return "JZ rel";
    case OP_XRL_A_IMM: return "XRL A,#imm";
    case OP_XRL_A_DIR: return "XRL A,dir";
    case OP_JNZ: return "JNZ rel";
    case OP_MOV_A_IMM: return "MOV A,#imm";
    case OP_MOV_DIR_IMM: return "MOV dir,#imm";
    case OP_SJMP: return "SJMP rel";
    case OP_MOV_DIR_DIR: return "MOV dir,dir";
    case OP_SUBB_IMM: return "SUBB A,#imm";
    case OP_SUBB_DIR: return "SUBB A,dir";
    case OP_CPL_C: return "CPL C";
    case OP_CJNE_A_IMM: return "CJNE A,#imm,rel";
    case OP_CJNE_A_DIR: return "CJNE A,dir,rel";
    case OP_PUSH: return "PUSH dir";
    case OP_CLR_C: return "CLR C";
    case OP_XCH_A_DIR: return "XCH A,dir";
    case OP_POP: return "POP dir";
    case OP_SETB_C: return "SETB C";
    case OP_DJNZ_DIR: return "DJNZ dir,rel";
    case OP_CLR_A: return "CLR A";
    case OP_MOV_A_DIR: return "MOV A,dir";
    case OP_CPL_A: return "CPL A";
    case OP_MOV_DIR_A: return "MOV dir,A";
    default:
      break;
  }
  if (ind == OP_INC_IND) return "INC @Ri";
  if (ind == OP_DEC_IND) return "DEC @Ri";
  if (ind == OP_ADD_IND) return "ADD A,@Ri";
  if (ind == OP_ADDC_IND) return "ADDC A,@Ri";
  if (ind == OP_SUBB_IND) return "SUBB A,@Ri";
  if (ind == OP_MOV_IND_IMM) return "MOV @Ri,#imm";
  if (ind == OP_CJNE_IND_IMM) return "CJNE @Ri,#imm,rel";
  if (ind == OP_MOV_A_IND) return "MOV A,@Ri";
  if (ind == OP_MOV_IND_A) return "MOV @Ri,A";
  if (fam == OP_INC_RN) return "INC Rn";
  if (fam == OP_DEC_RN) return "DEC Rn";
  if (fam == OP_ADD_RN) return "ADD A,Rn";
  if (fam == OP_ADDC_RN) return "ADDC A,Rn";
  if (fam == OP_ORL_A_RN) return "ORL A,Rn";
  if (fam == OP_ANL_A_RN) return "ANL A,Rn";
  if (fam == OP_XRL_A_RN) return "XRL A,Rn";
  if (fam == OP_MOV_RN_IMM) return "MOV Rn,#imm";
  if (fam == OP_MOV_DIR_RN) return "MOV dir,Rn";
  if (fam == OP_SUBB_RN) return "SUBB A,Rn";
  if (fam == OP_MOV_RN_DIR) return "MOV Rn,dir";
  if (fam == OP_CJNE_RN_IMM) return "CJNE Rn,#imm,rel";
  if (fam == OP_XCH_A_RN) return "XCH A,Rn";
  if (fam == OP_DJNZ_RN) return "DJNZ Rn,rel";
  if (fam == OP_MOV_A_RN) return "MOV A,Rn";
  if (fam == OP_MOV_RN_A) return "MOV Rn,A";
  return "?";
}

}  // namespace fades::mc8051
