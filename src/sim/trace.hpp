// Golden-run liveness trace.
//
// The fault-list pruning analysis (src/prune) needs the complete fault-free
// trajectory of the workload: per cycle, the value of every net. From those
// bits it derives which flops are overwritten before their next read, which
// RAM rows are never addressed inside an injection window and which nets can
// never reach an observable point - the equivalences that collapse a
// campaign's fault list. The trace is recorded through the generic
// sim::Engine observation interface, so any engine (event-driven or
// compiled) can supply it; one recording costs one extra golden run.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/engine.hpp"

namespace fades::sim {

/// Bit-packed per-cycle snapshot of every net of a golden run.
///
/// Entry c holds the settled pre-edge state of cycle c - exactly the state
/// an injector sees when it stops at injectCycle == c to apply a fault - and
/// entry cycles() (one past the workload) holds the final captured state
/// after the last clock edge.
class GoldenTrace {
 public:
  /// Run `engine` from reset for `cycles` clock edges, recording every net
  /// before each edge plus the final post-run state. Leaves the engine at
  /// cycle `cycles` (end of workload), like any golden run.
  static GoldenTrace record(Engine& engine, const netlist::Netlist& netlist,
                            std::uint64_t cycles);

  /// Workload length in clock edges; valid sample indices are 0..cycles().
  std::uint64_t cycles() const { return cycles_; }
  std::size_t netCount() const { return netCount_; }

  bool netAt(std::uint64_t cycle, netlist::NetId id) const {
    return (words_[cycle * wordsPerCycle_ + (id.value >> 6)] >>
            (id.value & 63u)) &
           1u;
  }

  /// LSB-first bus value at `cycle` (the Engine::busValue convention).
  std::uint64_t busAt(std::uint64_t cycle,
                      const std::vector<netlist::NetId>& bus) const {
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < bus.size(); ++b) {
      value |= static_cast<std::uint64_t>(netAt(cycle, bus[b])) << b;
    }
    return value;
  }

 private:
  std::uint64_t cycles_ = 0;
  std::size_t netCount_ = 0;
  std::size_t wordsPerCycle_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fades::sim
