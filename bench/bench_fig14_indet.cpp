// Figure 14: indetermination faults into combinational logic by unit and
// duration. Paper trend: failure percentages rise slowly with duration
// (ALU: 0.37 / 1.37 / 3.57 %), with heavy logic masking because faults can
// strike any of thousands of LUTs (Section 6.3, observation ii).
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("fig14_indet", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = classifyCount(300);

  const char* bands[3] = {"<1", "1-10", "11-20"};
  struct UnitRow {
    const char* name;
    Unit unit;
    const char* paper;
  };
  const UnitRow units[] = {
      {"ALU", Unit::Alu, "0.37 / 1.37 / 3.57"},
      {"MEM", Unit::MemCtrl, "(trend only)"},
      {"FSM", Unit::Fsm, "(most sensitive)"},
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& u : units) {
    const auto sweep =
        bandSweep(sys.fades(), FaultModel::Indetermination,
                  TargetClass::CombinationalLut, u.unit, n);
    for (int b = 0; b < 3; ++b) {
      rows.push_back({u.name, bands[b], pct3(sweep[b]),
                      b == 1 ? u.paper : ""});
    }
  }
  printTable(
      "Figure 14 - indetermination emulation into combinational logic (" +
          std::to_string(n) + " faults per cell)",
      {"unit", "duration (cycles)", "failure / latent / silent %",
       "paper failure % (<1/1-10/11-20)"},
      rows);
  return 0;
}
