// CSV quoting for the observability layer.
//
// Every CSV the tree emits - campaign reports, analytics tables, bench
// exports - quotes fields through this one implementation, so the quoting
// rules (RFC 4180: wrap when a field contains a comma, quote or newline;
// double embedded quotes) cannot drift between writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fades::obs {

/// Quote one CSV field if needed; fields without specials pass unchanged.
std::string csvQuote(std::string_view field);

/// Join pre-formatted cells into one newline-terminated CSV line.
std::string csvLine(const std::vector<std::string>& cells);

}  // namespace fades::obs
