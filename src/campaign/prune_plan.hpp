// Liveness-based fault-list pruning plan (the `fades.prune/1` artifact).
//
// A pruning plan collapses a campaign's experiment list into equivalence
// classes: every member of a class provably produces the same outcome (and
// the same measured cost fields) as the class representative, because the
// golden-run liveness analysis shows the injected fault cannot influence
// anything observable before the two trajectories merge. Consumers run the
// representative normally and materialize each member as a synthesized
// record cloned from it (flagged `pruned_from`), so the folded campaign
// result stays byte-identical in outcome totals to the unpruned campaign
// while only `experiments - collapsed` experiments actually execute.
//
// The plan is pure data: the analysis that builds it lives in src/prune
// (it needs the netlist and a golden simulation), while the consumers -
// ParallelCampaignRunner, the distributed worker and campaign_8051 - only
// need this vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/types.hpp"
#include "obs/json.hpp"

namespace fades::campaign {

/// Why a class's members could be collapsed onto the representative.
enum class PruneReason : std::uint8_t {
  /// The target's forward cone reaches no flop input, no memory input and
  /// no observed output: faults on it can never become visible.
  DeadTarget,
  /// The flipped state element is overwritten before anything reads it, so
  /// the machine returns to the golden trajectory (provably Silent).
  OverwriteBeforeRead,
  /// The fault sits dormant (golden-except-target) until a fixed golden
  /// cycle first exposes it; all injection instants sharing that exposure
  /// cycle reach the exposure with identical machine state.
  QuiescentUntilRead,
  /// The fault is never consumed before the workload ends: it survives
  /// untouched into the final state capture (provably Latent).
  OutOfWindow,
};

const char* toString(PruneReason reason);
/// Inverse of toString(PruneReason); false when `text` names no reason.
bool pruneReasonFromString(std::string_view text, PruneReason& out);

/// One equivalence class. `members` holds the collapsed experiment indices
/// only - the representative is not repeated there - so a class is worth
/// carrying exactly when `members` is non-empty.
struct PruneClass {
  std::uint64_t representative = 0;
  std::vector<std::uint64_t> members;
  PruneReason reason = PruneReason::DeadTarget;
  /// Human-readable name of the shared target (tool naming convention).
  std::string target;
  /// Inclusive golden-cycle window of injection instants this class covers;
  /// [-1, -1] when the class is not a contiguous window (e.g. the union of
  /// every overwrite-before-read instant of one flop).
  std::int64_t windowBegin = -1;
  std::int64_t windowEnd = -1;
};

/// A versioned pruning plan for one campaign spec.
struct PrunePlan {
  static constexpr const char* kSchema = "fades.prune/1";

  /// Echo of the spec the plan was derived for; consumers must verify it
  /// matches the spec they are about to run (specKey() equality).
  CampaignSpec spec;
  std::uint64_t runCycles = 0;
  std::uint64_t poolSize = 0;
  std::vector<PruneClass> classes;

  std::uint64_t collapsedCount() const;
  std::uint64_t executedCount() const {
    return spec.experiments - collapsedCount();
  }
  /// experiments-executed reduction: experiments / executed (1.0 = no win).
  double collapseFactor() const;
  std::uint64_t countForReason(PruneReason reason) const;

  /// Member lookup table: entry i is the class index that collapsed
  /// experiment i, or -1 when experiment i runs normally (representatives
  /// and singletons). Size spec.experiments.
  std::vector<std::int32_t> memberClassIndex() const;

  /// Structural sanity: indices in range, no experiment in two classes, no
  /// representative that is also a member. Throws FadesError on violation.
  void validate() const;
};

/// Canonical spec identity used to bind a plan to a campaign.
std::string specKey(const CampaignSpec& spec);

obs::Json toJson(const PrunePlan& plan);
bool prunePlanFromJson(const obs::Json& j, PrunePlan& out,
                       std::string* error = nullptr);

/// The one-line collapse accounting summary (printed by campaign_8051 and
/// grepped by CI): experiment/executed/collapsed counts, the collapse
/// factor and the per-reason breakdown.
std::string accountingLine(const PrunePlan& plan);

}  // namespace fades::campaign
