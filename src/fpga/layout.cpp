#include "fpga/layout.hpp"

#include <algorithm>
#include <cassert>

#include "common/error.hpp"

namespace fades::fpga {

using common::ErrorKind;
using common::require;

namespace {
constexpr unsigned kCbHeaderBits = 24;  // LUT table + multiplexer fields
constexpr unsigned kPadHeaderBits = 8;
constexpr unsigned kBramHeaderBits = 8;
}  // namespace

ConfigLayout::ConfigLayout(const DeviceSpec& spec) : spec_(spec) {
  require(spec.rows >= 2 && spec.cols >= 2, ErrorKind::InvalidArgument,
          "device too small");
  require(spec.cols % spec.memBlocks == 0, ErrorKind::InvalidArgument,
          "cols must be a multiple of memBlocks");
  require(spec.cols / spec.memBlocks >= 3, ErrorKind::InvalidArgument,
          "too many memory blocks for this width");
  cbRecordBits_ = kCbHeaderBits + (2 * kCbInPins + 2 * kCbOutPins) * spec.tracks;
  pmRecordBits_ = kPmSwitches * spec.tracks;
  padRecordBits_ = kPadHeaderBits + 2 * spec.tracks;
  bramRecordBits_ =
      kBramHeaderBits + DeviceSpec::kBramPins * 2 * spec.tracks;

  // Column blob: CB records (x < cols), then PM records for PM(x, 0..rows),
  // then edge pads (col 0: west, col cols: east), then (col cols) BRAM setup.
  colStart_.assign(spec.cols + 2, 0);
  for (unsigned x = 0; x <= spec.cols; ++x) {
    std::size_t bits = 0;
    if (x < spec.cols) bits += std::size_t{spec.rows} * cbRecordBits_;
    bits += std::size_t{spec.rows + 1} * pmRecordBits_;
    if (x == 0 || x == spec.cols) bits += std::size_t{spec.rows} * padRecordBits_;
    if (x == spec.cols) bits += std::size_t{spec.memBlocks} * bramRecordBits_;
    colStart_[x + 1] = colStart_[x] + bits;
  }
  logicBits_ = colStart_[spec.cols + 1];
}

unsigned ConfigLayout::minorsOfColumn(unsigned col) const {
  return static_cast<unsigned>((columnBits(col) + frameBits() - 1) /
                               frameBits());
}

unsigned ConfigLayout::bramFramesPerBlock() const {
  return (spec_.memBlockBits + frameBits() - 1) / frameBits();
}

unsigned ConfigLayout::captureFramesPerColumn() const {
  return (spec_.rows + frameBits() - 1) / frameBits();
}

std::size_t ConfigLayout::totalConfigFrames() const {
  std::size_t n = 0;
  for (unsigned c = 0; c <= spec_.cols; ++c) n += minorsOfColumn(c);
  n += std::size_t{spec_.memBlocks} * bramFramesPerBlock();
  return n;
}

std::size_t ConfigLayout::cbBit(CbCoord cb, unsigned bitInRecord) const {
  assert(cb.x < spec_.cols && cb.y < spec_.rows);
  assert(bitInRecord < cbRecordBits_);
  return columnStart(cb.x) + std::size_t{cb.y} * cbRecordBits_ + bitInRecord;
}

std::size_t ConfigLayout::cbInConnBit(CbCoord cb, CbInPin pin, bool vertical,
                                      unsigned track) const {
  assert(track < spec_.tracks);
  const unsigned p = static_cast<unsigned>(pin);
  const unsigned off = kCbHeaderBits + (vertical ? kCbInPins * spec_.tracks : 0) +
                       p * spec_.tracks + track;
  return cbBit(cb, off);
}

std::size_t ConfigLayout::cbOutConnBit(CbCoord cb, CbOutPin pin, bool vertical,
                                       unsigned track) const {
  assert(track < spec_.tracks);
  const unsigned p = static_cast<unsigned>(pin);
  const unsigned off = kCbHeaderBits + 2 * kCbInPins * spec_.tracks +
                       (vertical ? kCbOutPins * spec_.tracks : 0) +
                       p * spec_.tracks + track;
  return cbBit(cb, off);
}

std::size_t ConfigLayout::pmSwitchBit(PmCoord pm, unsigned track,
                                      PmSwitch sw) const {
  assert(pm.x <= spec_.cols && pm.y <= spec_.rows && track < spec_.tracks);
  const std::size_t base =
      columnStart(pm.x) +
      (pm.x < spec_.cols ? std::size_t{spec_.rows} * cbRecordBits_ : 0);
  return base + std::size_t{pm.y} * pmRecordBits_ + track * kPmSwitches +
         static_cast<unsigned>(sw);
}

std::size_t ConfigLayout::padFieldBit(unsigned pad, PadField f) const {
  assert(pad < spec_.padCount());
  const unsigned col = padIsWest(pad) ? 0 : spec_.cols;
  std::size_t base = columnStart(col) + std::size_t{spec_.rows + 1} * pmRecordBits_;
  if (col < spec_.cols) base += std::size_t{spec_.rows} * cbRecordBits_;
  return base + std::size_t{padRow(pad)} * padRecordBits_ +
         static_cast<unsigned>(f);
}

std::size_t ConfigLayout::padConnBit(unsigned pad, bool vertical,
                                     unsigned track) const {
  assert(track < spec_.tracks);
  return padFieldBit(pad, PadField::IsOutput) + kPadHeaderBits +
         (vertical ? spec_.tracks : 0) + track;
}

std::size_t ConfigLayout::bramFieldBit(unsigned block, BramField f) const {
  assert(block < spec_.memBlocks);
  const std::size_t base = columnStart(spec_.cols) +
                           std::size_t{spec_.rows + 1} * pmRecordBits_ +
                           std::size_t{spec_.rows} * padRecordBits_;
  return base + std::size_t{block} * bramRecordBits_ + static_cast<unsigned>(f);
}

std::size_t ConfigLayout::bramPinConnBit(unsigned block, unsigned pin,
                                         bool vertical, unsigned track) const {
  assert(pin < DeviceSpec::kBramPins && track < spec_.tracks);
  return bramFieldBit(block, static_cast<BramField>(0)) + kBramHeaderBits +
         pin * 2 * spec_.tracks + (vertical ? spec_.tracks : 0) + track;
}

ConfigLayout::Decoded ConfigLayout::decode(std::size_t bit) const {
  require(bit < logicBits_, ErrorKind::ConfigError,
          "logic bit address out of range");
  const auto it = std::upper_bound(colStart_.begin(), colStart_.end(), bit);
  const unsigned col = static_cast<unsigned>(it - colStart_.begin()) - 1;
  std::size_t rel = bit - colStart_[col];

  Decoded d{};
  if (col < spec_.cols) {
    const std::size_t cbRegion = std::size_t{spec_.rows} * cbRecordBits_;
    if (rel < cbRegion) {
      d.region = Decoded::Region::Cb;
      d.cb = CbCoord{static_cast<std::uint16_t>(col),
                     static_cast<std::uint16_t>(rel / cbRecordBits_)};
      d.bitInRecord = static_cast<unsigned>(rel % cbRecordBits_);
      return d;
    }
    rel -= cbRegion;
  }
  const std::size_t pmRegion = std::size_t{spec_.rows + 1} * pmRecordBits_;
  if (rel < pmRegion) {
    d.region = Decoded::Region::Pm;
    d.pm = PmCoord{static_cast<std::uint16_t>(col),
                   static_cast<std::uint16_t>(rel / pmRecordBits_)};
    d.bitInRecord = static_cast<unsigned>(rel % pmRecordBits_);
    return d;
  }
  rel -= pmRegion;
  if (col == 0 || col == spec_.cols) {
    const std::size_t padRegion = std::size_t{spec_.rows} * padRecordBits_;
    if (rel < padRegion) {
      d.region = Decoded::Region::Pad;
      const unsigned row = static_cast<unsigned>(rel / padRecordBits_);
      d.pad = (col == 0) ? row : spec_.rows + row;
      d.bitInRecord = static_cast<unsigned>(rel % padRecordBits_);
      return d;
    }
    rel -= padRegion;
  }
  d.region = Decoded::Region::Bram;
  d.block = static_cast<unsigned>(rel / bramRecordBits_);
  d.bitInRecord = static_cast<unsigned>(rel % bramRecordBits_);
  return d;
}

FrameAddr ConfigLayout::frameOfLogicBit(std::size_t bit) const {
  require(bit < logicBits_, ErrorKind::ConfigError,
          "logic bit address out of range");
  const auto it = std::upper_bound(colStart_.begin(), colStart_.end(), bit);
  const unsigned col = static_cast<unsigned>(it - colStart_.begin()) - 1;
  const std::size_t rel = bit - colStart_[col];
  return FrameAddr{Plane::Logic, col,
                   static_cast<std::uint32_t>(rel / frameBits())};
}

std::size_t ConfigLayout::logicFrameFirstBit(FrameAddr f) const {
  require(f.plane == Plane::Logic && f.major <= spec_.cols &&
              f.minor < minorsOfColumn(f.major),
          ErrorKind::ConfigError, "bad logic frame address");
  return columnStart(f.major) + std::size_t{f.minor} * frameBits();
}

unsigned ConfigLayout::logicFrameBitCount(FrameAddr f) const {
  const std::size_t first = logicFrameFirstBit(f);
  const std::size_t colEnd = colStart_[f.major + 1];
  return static_cast<unsigned>(std::min<std::size_t>(frameBits(),
                                                     colEnd - first));
}

FrameAddr ConfigLayout::frameOfBramBit(unsigned block, unsigned bit) const {
  require(block < spec_.memBlocks && bit < spec_.memBlockBits,
          ErrorKind::ConfigError, "bram bit address out of range");
  return FrameAddr{Plane::BramContent, block, bit / frameBits()};
}

// ---------------------------------------------------------------------------

RoutingNodes::RoutingNodes(const DeviceSpec& spec) : spec_(spec) {
  const std::uint32_t hsegs = spec.cols * (spec.rows + 1) * spec.tracks;
  const std::uint32_t vsegs = (spec.cols + 1) * spec.rows * spec.tracks;
  hsegBase_ = 0;
  vsegBase_ = hsegBase_ + hsegs;
  cbInBase_ = vsegBase_ + vsegs;
  cbOutBase_ = cbInBase_ + spec.cbCount() * kCbInPins;
  padBase_ = cbOutBase_ + spec.cbCount() * kCbOutPins;
  bramBase_ = padBase_ + spec.padCount();
  total_ = bramBase_ + spec.memBlocks * DeviceSpec::kBramPins;
}

std::uint32_t RoutingNodes::hseg(unsigned x, unsigned y, unsigned t) const {
  assert(x < spec_.cols && y <= spec_.rows && t < spec_.tracks);
  return hsegBase_ + (x * (spec_.rows + 1) + y) * spec_.tracks + t;
}

std::uint32_t RoutingNodes::vseg(unsigned x, unsigned y, unsigned t) const {
  assert(x <= spec_.cols && y < spec_.rows && t < spec_.tracks);
  return vsegBase_ + (x * spec_.rows + y) * spec_.tracks + t;
}

std::uint32_t RoutingNodes::cbIn(CbCoord cb, CbInPin pin) const {
  return cbInBase_ + (cb.x * spec_.rows + cb.y) * kCbInPins +
         static_cast<unsigned>(pin);
}

std::uint32_t RoutingNodes::cbOut(CbCoord cb, CbOutPin pin) const {
  return cbOutBase_ + (cb.x * spec_.rows + cb.y) * kCbOutPins +
         static_cast<unsigned>(pin);
}

std::uint32_t RoutingNodes::pad(unsigned p) const {
  assert(p < spec_.padCount());
  return padBase_ + p;
}

std::uint32_t RoutingNodes::bramPin(unsigned block, unsigned pin) const {
  assert(block < spec_.memBlocks && pin < DeviceSpec::kBramPins);
  return bramBase_ + block * DeviceSpec::kBramPins + pin;
}

NodeInfo RoutingNodes::info(std::uint32_t node) const {
  NodeInfo n{};
  if (node < vsegBase_) {
    n.kind = NodeKind::HSeg;
    const std::uint32_t rel = node - hsegBase_;
    n.track = rel % spec_.tracks;
    const std::uint32_t xy = rel / spec_.tracks;
    n.x = xy / (spec_.rows + 1);
    n.y = xy % (spec_.rows + 1);
  } else if (node < cbInBase_) {
    n.kind = NodeKind::VSeg;
    const std::uint32_t rel = node - vsegBase_;
    n.track = rel % spec_.tracks;
    const std::uint32_t xy = rel / spec_.tracks;
    n.x = xy / spec_.rows;
    n.y = xy % spec_.rows;
  } else if (node < cbOutBase_) {
    n.kind = NodeKind::CbIn;
    const std::uint32_t rel = node - cbInBase_;
    n.track = rel % kCbInPins;
    const std::uint32_t xy = rel / kCbInPins;
    n.x = xy / spec_.rows;
    n.y = xy % spec_.rows;
  } else if (node < padBase_) {
    n.kind = NodeKind::CbOut;
    const std::uint32_t rel = node - cbOutBase_;
    n.track = rel % kCbOutPins;
    const std::uint32_t xy = rel / kCbOutPins;
    n.x = xy / spec_.rows;
    n.y = xy % spec_.rows;
  } else if (node < bramBase_) {
    n.kind = NodeKind::Pad;
    n.x = node - padBase_;
  } else {
    n.kind = NodeKind::BramPin;
    const std::uint32_t rel = node - bramBase_;
    n.x = rel / DeviceSpec::kBramPins;
    n.track = rel % DeviceSpec::kBramPins;
  }
  return n;
}

void RoutingNodes::position(std::uint32_t node, double& x, double& y) const {
  const NodeInfo n = info(node);
  switch (n.kind) {
    case NodeKind::HSeg:
      x = n.x + 0.5;
      y = n.y;
      break;
    case NodeKind::VSeg:
      x = n.x;
      y = n.y + 0.5;
      break;
    case NodeKind::CbIn:
    case NodeKind::CbOut:
      x = n.x + 0.5;
      y = n.y + 0.5;
      break;
    case NodeKind::Pad:
      x = n.x < spec_.rows ? 0.0 : static_cast<double>(spec_.cols);
      y = n.x < spec_.rows ? n.x : n.x - spec_.rows;
      break;
    case NodeKind::BramPin: {
      const unsigned colsPerBlock = spec_.cols / spec_.memBlocks;
      x = n.x * colsPerBlock + n.track % colsPerBlock;
      y = spec_.rows;
      break;
    }
  }
}

}  // namespace fades::fpga
