// Campaign worker daemon.
//
// Connects to a fades_coordinator, leases blocks of experiments, runs them
// through the standard retry/recover/quarantine discipline and streams the
// outcomes back. Exits 0 when the coordinator says shutdown, 1 when the
// reconnect budget runs out.
//
// Usage:
//   fades_worker --port P [--host H] [--name NAME] [--attempts N]
//                [--heartbeat-ms N] [--max-reconnects N] [--tamper]
//     --name     stable worker identity (default worker-<pid>); strikes,
//                backoff and bans attach to it across reconnects
//     --attempts retry budget per experiment before quarantining it
//     --max-reconnects give up after N consecutive failed connects
//                (default 0 = keep trying until killed)
//     --tamper   lie about every outcome (byzantine-worker test mode: the
//                experiments run honestly, the streamed results are
//                falsified)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/types.hpp"
#include "common/error.hpp"
#include "service/worker.hpp"

using namespace fades;

namespace {

[[noreturn]] void usageError(const std::string& message) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: fades_worker --port P [--host H] [--name NAME]\n"
               "                    [--attempts N] [--heartbeat-ms N]\n"
               "                    [--max-reconnects N] [--tamper]\n",
               message.c_str());
  std::exit(2);
}

unsigned parseUnsigned(const char* text, const char* what) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') {
    usageError(std::string(what) + " expects a number");
  }
  return static_cast<unsigned>(value);
}

}  // namespace

int main(int argc, char** argv) {
  service::WorkerOptions opt;
  bool tamper = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usageError(a + " needs a value");
      return argv[++i];
    };
    if (a == "--port") {
      opt.port = static_cast<std::uint16_t>(parseUnsigned(value(), "--port"));
    } else if (a == "--host") {
      opt.host = value();
    } else if (a == "--name") {
      opt.name = value();
    } else if (a == "--attempts") {
      opt.experimentAttempts = parseUnsigned(value(), "--attempts");
    } else if (a == "--heartbeat-ms") {
      opt.heartbeatMs =
          static_cast<int>(parseUnsigned(value(), "--heartbeat-ms"));
    } else if (a == "--max-reconnects") {
      opt.maxReconnects = parseUnsigned(value(), "--max-reconnects");
    } else if (a == "--tamper") {
      tamper = true;
    } else {
      usageError("unknown flag '" + a + "'");
    }
  }
  if (opt.port == 0) usageError("--port is required");
  if (tamper) {
    // The canonical lie: report every failure as silent (and vice versa).
    // Honest workers reproduce each other's digests bit-exactly, so any
    // deterministic falsification is detected the same way.
    opt.tamper = [](campaign::ExperimentOutcome& outcome) {
      if (outcome.quarantined) return;
      outcome.outcome = outcome.outcome == campaign::Outcome::Silent
                            ? campaign::Outcome::Failure
                            : campaign::Outcome::Silent;
      if (outcome.hasRecord) outcome.record.outcome = outcome.outcome;
    };
  }

  try {
    service::WorkerDaemon worker(std::move(opt));
    return worker.run();
  } catch (const common::FadesError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
