# Empty dependencies file for fades_fpga.
# This may be replaced when dependencies are built.
