#include "mc8051/iss.hpp"

#include <bit>

#include "common/error.hpp"

namespace fades::mc8051 {

using common::ErrorKind;
using common::raise;
using common::require;

Iss::Iss(std::vector<std::uint8_t> program) : rom_(std::move(program)) {
  reset();
}

void Iss::reset() {
  for (auto& b : iram_) b = 0;
  pc_ = 0;
  acc_ = b_ = 0;
  sp_ = 7;
  dpl_ = dph_ = p0_ = p1_ = 0;
  pswBits_ = 0;
  cy_ = ac_ = ov_ = false;
  cycles_ = 0;
}

std::uint8_t Iss::fetch() {
  const std::uint8_t v = pc_ < rom_.size() ? rom_[pc_] : 0;
  ++pc_;
  return v;
}

std::uint8_t Iss::psw() const {
  std::uint8_t v = 0;
  if (cy_) v |= 1u << PSW_CY;
  if (ac_) v |= 1u << PSW_AC;
  v |= pswBits_ & ((1u << PSW_F0) | (1u << PSW_RS1) | (1u << PSW_RS0));
  if (ov_) v |= 1u << PSW_OV;
  if (std::popcount(acc_) & 1) v |= 1u << PSW_P;
  return v;
}

std::uint8_t Iss::reg(unsigned n) const {
  return iram_[(regBankBase() + n) & 0x7F];
}

std::uint8_t Iss::readDirect(std::uint8_t addr) const {
  if (addr < 0x80) return iram_[addr];
  switch (addr) {
    case SFR_P0: return p0_;
    case SFR_SP: return sp_;
    case SFR_DPL: return dpl_;
    case SFR_DPH: return dph_;
    case SFR_P1: return p1_;
    case SFR_PSW: return psw();
    case SFR_ACC: return acc_;
    case SFR_B: return b_;
    default: return 0;  // unimplemented SFR reads as zero
  }
}

void Iss::writeDirect(std::uint8_t addr, std::uint8_t v) {
  if (addr < 0x80) {
    iram_[addr] = v;
    return;
  }
  switch (addr) {
    case SFR_P0: p0_ = v; break;
    case SFR_SP: sp_ = v; break;
    case SFR_DPL: dpl_ = v; break;
    case SFR_DPH: dph_ = v; break;
    case SFR_P1: p1_ = v; break;
    case SFR_PSW:
      cy_ = (v >> PSW_CY) & 1;
      ac_ = (v >> PSW_AC) & 1;
      ov_ = (v >> PSW_OV) & 1;
      pswBits_ = v & ((1u << PSW_F0) | (1u << PSW_RS1) | (1u << PSW_RS0));
      break;
    case SFR_ACC: acc_ = v; break;
    case SFR_B: b_ = v; break;
    default: break;  // unimplemented SFR writes are dropped
  }
}

void Iss::addToAcc(std::uint8_t operand, bool withCarry, bool subtract) {
  const unsigned a = acc_;
  const unsigned c = withCarry && cy_ ? 1u : 0u;
  unsigned result;
  if (subtract) {
    result = a - operand - c;
    cy_ = a < operand + c;
    ac_ = (a & 0x0F) < (operand & 0x0F) + c;
    const unsigned r8 = result & 0xFF;
    ov_ = ((a ^ operand) & (a ^ r8) & 0x80) != 0;
  } else {
    result = a + operand + c;
    cy_ = result > 0xFF;
    ac_ = (a & 0x0F) + (operand & 0x0F) + c > 0x0F;
    const unsigned r8 = result & 0xFF;
    ov_ = (~(a ^ operand) & (a ^ r8) & 0x80) != 0;
  }
  acc_ = static_cast<std::uint8_t>(result & 0xFF);
}

unsigned Iss::stepInstruction() {
  const std::uint8_t op = fetch();
  const unsigned len = instructionLength(op);
  require(len != 0, ErrorKind::WorkloadError,
          "unimplemented opcode " + std::to_string(op));

  const std::uint8_t fam = op & 0xF8;
  const std::uint8_t ind = op & 0xFE;
  const unsigned nIdx = op & 7;
  const unsigned iIdx = op & 1;

  // Cycle accounting mirrors the RTL FSM: FETCH + DECODE, one state per
  // extra operand byte, RDRI for @Ri forms, RD for memory/SFR reads, EXEC
  // for everything except NOP, plus WR2 (LCALL) / the RET sequence.
  unsigned cycles = 2 + (len >= 2 ? 1 : 0) + (len >= 3 ? 1 : 0);
  bool hasRdri = false, hasRd = false, hasExec = true, hasWr2 = false;

  auto rnAddr = [&](unsigned n) {
    return static_cast<std::uint8_t>((regBankBase() + n) & 0x7F);
  };
  auto sext = [](std::uint8_t b) {
    return static_cast<std::int16_t>(static_cast<std::int8_t>(b));
  };

  switch (op) {
    case OP_NOP: hasExec = false; break;
    case OP_LJMP: {
      const std::uint8_t hi = fetch(), lo = fetch();
      pc_ = static_cast<std::uint16_t>((hi << 8) | lo);
      break;
    }
    case OP_LCALL: {
      const std::uint8_t hi = fetch(), lo = fetch();
      hasWr2 = true;
      iram_[(sp_ + 1) & 0x7F] = static_cast<std::uint8_t>(pc_ & 0xFF);
      iram_[(sp_ + 2) & 0x7F] = static_cast<std::uint8_t>(pc_ >> 8);
      sp_ = static_cast<std::uint8_t>(sp_ + 2);
      pc_ = static_cast<std::uint16_t>((hi << 8) | lo);
      break;
    }
    case OP_RET: {
      cycles = 4;  // FETCH, DECODE, RET1, RET2; +1 below for RET3 ("exec")
      const std::uint8_t hi = iram_[sp_ & 0x7F];
      const std::uint8_t lo = iram_[(sp_ - 1) & 0x7F];
      sp_ = static_cast<std::uint8_t>(sp_ - 2);
      pc_ = static_cast<std::uint16_t>((hi << 8) | lo);
      break;
    }
    case OP_RR_A: acc_ = static_cast<std::uint8_t>((acc_ >> 1) | (acc_ << 7)); break;
    case OP_RL_A: acc_ = static_cast<std::uint8_t>((acc_ << 1) | (acc_ >> 7)); break;
    case OP_RRC_A: {
      const bool newC = acc_ & 1;
      acc_ = static_cast<std::uint8_t>((acc_ >> 1) | (cy_ ? 0x80 : 0));
      cy_ = newC;
      break;
    }
    case OP_RLC_A: {
      const bool newC = acc_ & 0x80;
      acc_ = static_cast<std::uint8_t>((acc_ << 1) | (cy_ ? 1 : 0));
      cy_ = newC;
      break;
    }
    case OP_INC_A: ++acc_; break;
    case OP_DEC_A: --acc_; break;
    case OP_CLR_A: acc_ = 0; break;
    case OP_CPL_A: acc_ = static_cast<std::uint8_t>(~acc_); break;
    case OP_CLR_C: cy_ = false; break;
    case OP_SETB_C: cy_ = true; break;
    case OP_CPL_C: cy_ = !cy_; break;
    case OP_MUL_AB: {
      const unsigned product = unsigned{acc_} * unsigned{b_};
      acc_ = static_cast<std::uint8_t>(product & 0xFF);
      b_ = static_cast<std::uint8_t>(product >> 8);
      cy_ = false;
      ov_ = (product > 0xFF);
      break;
    }
    case OP_DIV_AB: {
      cy_ = false;
      if (b_ == 0) {
        // Matches the RTL's restoring divider with divisor 0: the quotient
        // saturates and the dividend falls through as the remainder.
        ov_ = true;
        b_ = acc_;
        acc_ = 0xFF;
      } else {
        ov_ = false;
        const std::uint8_t q = static_cast<std::uint8_t>(acc_ / b_);
        b_ = static_cast<std::uint8_t>(acc_ % b_);
        acc_ = q;
      }
      break;
    }
    case OP_INC_DIR: {
      hasRd = true;
      const std::uint8_t a = fetch();
      writeDirect(a, static_cast<std::uint8_t>(readDirect(a) + 1));
      break;
    }
    case OP_DEC_DIR: {
      hasRd = true;
      const std::uint8_t a = fetch();
      writeDirect(a, static_cast<std::uint8_t>(readDirect(a) - 1));
      break;
    }
    case OP_ADD_IMM: addToAcc(fetch(), false, false); break;
    case OP_ADDC_IMM: addToAcc(fetch(), true, false); break;
    case OP_SUBB_IMM: addToAcc(fetch(), true, true); break;
    case OP_ADD_DIR: hasRd = true; addToAcc(readDirect(fetch()), false, false); break;
    case OP_ADDC_DIR: hasRd = true; addToAcc(readDirect(fetch()), true, false); break;
    case OP_SUBB_DIR: hasRd = true; addToAcc(readDirect(fetch()), true, true); break;
    case OP_ANL_A_IMM: acc_ &= fetch(); break;
    case OP_ORL_A_IMM: acc_ |= fetch(); break;
    case OP_XRL_A_IMM: acc_ ^= fetch(); break;
    case OP_ANL_A_DIR: hasRd = true; acc_ &= readDirect(fetch()); break;
    case OP_ORL_A_DIR: hasRd = true; acc_ |= readDirect(fetch()); break;
    case OP_XRL_A_DIR: hasRd = true; acc_ ^= readDirect(fetch()); break;
    case OP_JC:
    case OP_JNC:
    case OP_JZ:
    case OP_JNZ:
    case OP_SJMP: {
      const std::uint8_t rel = fetch();
      const bool taken = op == OP_SJMP ? true
                         : op == OP_JC ? cy_
                         : op == OP_JNC ? !cy_
                         : op == OP_JZ ? (acc_ == 0)
                                       : (acc_ != 0);
      if (taken) pc_ = static_cast<std::uint16_t>(pc_ + sext(rel));
      break;
    }
    case OP_MOV_A_IMM: acc_ = fetch(); break;
    case OP_MOV_A_DIR: hasRd = true; acc_ = readDirect(fetch()); break;
    case OP_MOV_DIR_A: writeDirect(fetch(), acc_); break;
    case OP_MOV_DIR_IMM: {
      const std::uint8_t a = fetch(), v = fetch();
      writeDirect(a, v);
      break;
    }
    case OP_MOV_DIR_DIR: {
      hasRd = true;
      const std::uint8_t src = fetch(), dst = fetch();
      writeDirect(dst, readDirect(src));
      break;
    }
    case OP_CJNE_A_IMM:
    case OP_CJNE_A_DIR: {
      hasRd = (op == OP_CJNE_A_DIR);
      const std::uint8_t operandByte = fetch();
      const std::uint8_t rel = fetch();
      const std::uint8_t rhs =
          op == OP_CJNE_A_IMM ? operandByte : readDirect(operandByte);
      cy_ = acc_ < rhs;
      if (acc_ != rhs) pc_ = static_cast<std::uint16_t>(pc_ + sext(rel));
      break;
    }
    case OP_PUSH: {
      hasRd = true;
      const std::uint8_t v = readDirect(fetch());
      sp_ = static_cast<std::uint8_t>(sp_ + 1);
      iram_[sp_ & 0x7F] = v;
      break;
    }
    case OP_POP: {
      hasRd = true;
      const std::uint8_t v = iram_[sp_ & 0x7F];
      sp_ = static_cast<std::uint8_t>(sp_ - 1);
      writeDirect(fetch(), v);
      break;
    }
    case OP_XCH_A_DIR: {
      hasRd = true;
      const std::uint8_t a = fetch();
      const std::uint8_t v = readDirect(a);
      writeDirect(a, acc_);
      acc_ = v;
      break;
    }
    case OP_DJNZ_DIR: {
      hasRd = true;
      const std::uint8_t a = fetch();
      const std::uint8_t rel = fetch();
      const std::uint8_t v = static_cast<std::uint8_t>(readDirect(a) - 1);
      writeDirect(a, v);
      if (v != 0) pc_ = static_cast<std::uint16_t>(pc_ + sext(rel));
      break;
    }
    default: {
      // Register and indirect families.
      if (fam == OP_MOV_A_RN) { hasRd = true; acc_ = iram_[rnAddr(nIdx)]; }
      else if (fam == OP_MOV_RN_A) { iram_[rnAddr(nIdx)] = acc_; }
      else if (fam == OP_MOV_RN_IMM) { iram_[rnAddr(nIdx)] = fetch(); }
      else if (fam == OP_MOV_RN_DIR) { hasRd = true; iram_[rnAddr(nIdx)] = readDirect(fetch()); }
      else if (fam == OP_MOV_DIR_RN) { hasRd = true; writeDirect(fetch(), iram_[rnAddr(nIdx)]); }
      else if (fam == OP_ADD_RN) { hasRd = true; addToAcc(iram_[rnAddr(nIdx)], false, false); }
      else if (fam == OP_ADDC_RN) { hasRd = true; addToAcc(iram_[rnAddr(nIdx)], true, false); }
      else if (fam == OP_SUBB_RN) { hasRd = true; addToAcc(iram_[rnAddr(nIdx)], true, true); }
      else if (fam == OP_ANL_A_RN) { hasRd = true; acc_ &= iram_[rnAddr(nIdx)]; }
      else if (fam == OP_ORL_A_RN) { hasRd = true; acc_ |= iram_[rnAddr(nIdx)]; }
      else if (fam == OP_XRL_A_RN) { hasRd = true; acc_ ^= iram_[rnAddr(nIdx)]; }
      else if (fam == OP_INC_RN) { hasRd = true; ++iram_[rnAddr(nIdx)]; }
      else if (fam == OP_DEC_RN) { hasRd = true; --iram_[rnAddr(nIdx)]; }
      else if (fam == OP_XCH_A_RN) {
        hasRd = true;
        std::swap(acc_, iram_[rnAddr(nIdx)]);
      } else if (fam == OP_DJNZ_RN) {
        hasRd = true;
        const std::uint8_t rel = fetch();
        const std::uint8_t v = --iram_[rnAddr(nIdx)];
        if (v != 0) pc_ = static_cast<std::uint16_t>(pc_ + sext(rel));
      } else if (fam == OP_CJNE_RN_IMM) {
        hasRd = true;
        const std::uint8_t imm = fetch();
        const std::uint8_t rel = fetch();
        const std::uint8_t lhs = iram_[rnAddr(nIdx)];
        cy_ = lhs < imm;
        if (lhs != imm) pc_ = static_cast<std::uint16_t>(pc_ + sext(rel));
      } else if (ind == OP_MOV_A_IND) {
        hasRdri = hasRd = true;
        acc_ = iram_[iram_[rnAddr(iIdx)] & 0x7F];
      } else if (ind == OP_MOV_IND_A) {
        hasRdri = true;
        iram_[iram_[rnAddr(iIdx)] & 0x7F] = acc_;
      } else if (ind == OP_MOV_IND_IMM) {
        hasRdri = true;
        iram_[iram_[rnAddr(iIdx)] & 0x7F] = fetch();
      } else if (ind == OP_ADD_IND) {
        hasRdri = hasRd = true;
        addToAcc(iram_[iram_[rnAddr(iIdx)] & 0x7F], false, false);
      } else if (ind == OP_ADDC_IND) {
        hasRdri = hasRd = true;
        addToAcc(iram_[iram_[rnAddr(iIdx)] & 0x7F], true, false);
      } else if (ind == OP_SUBB_IND) {
        hasRdri = hasRd = true;
        addToAcc(iram_[iram_[rnAddr(iIdx)] & 0x7F], true, true);
      } else if (ind == OP_INC_IND) {
        hasRdri = hasRd = true;
        ++iram_[iram_[rnAddr(iIdx)] & 0x7F];
      } else if (ind == OP_DEC_IND) {
        hasRdri = hasRd = true;
        --iram_[iram_[rnAddr(iIdx)] & 0x7F];
      } else if (ind == OP_CJNE_IND_IMM) {
        hasRdri = hasRd = true;
        const std::uint8_t imm = fetch();
        const std::uint8_t rel = fetch();
        const std::uint8_t lhs = iram_[iram_[rnAddr(iIdx)] & 0x7F];
        cy_ = lhs < imm;
        if (lhs != imm) pc_ = static_cast<std::uint16_t>(pc_ + sext(rel));
      } else {
        raise(ErrorKind::WorkloadError,
              "unhandled opcode " + std::to_string(op));
      }
      break;
    }
  }

  cycles += (hasRdri ? 1 : 0) + (hasRd ? 1 : 0) + (hasExec ? 1 : 0) +
            (hasWr2 ? 1 : 0);
  cycles_ += cycles;
  return cycles;
}

void Iss::runCycles(std::uint64_t cycles) {
  // Whole-instruction granularity: stops at the first instruction boundary
  // at or past the budget. Workloads park in a `SJMP $` idle loop, so the
  // architectural state is quiescent there and small overshoot is harmless.
  while (cycles_ < cycles) stepInstruction();
}

std::vector<PcSample> Iss::tracePcPerCycle(std::uint64_t cycles) {
  reset();
  std::vector<PcSample> trace;
  trace.reserve(cycles);
  while (trace.size() < cycles) {
    const std::uint16_t pc = pc_;
    const std::uint8_t op = pc < rom_.size() ? rom_[pc] : 0;
    const unsigned spent = stepInstruction();
    for (unsigned c = 0; c < spent && trace.size() < cycles; ++c) {
      trace.push_back(PcSample{pc, op});
    }
  }
  reset();
  return trace;
}

}  // namespace fades::mc8051
