// Repo-wide property tests: invariants that must hold across module
// boundaries for any input, exercised with randomized sweeps.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <utility>

#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/error.hpp"
#include "core/fades.hpp"
#include "core/lut_circuit.hpp"
#include "fpga/device.hpp"
#include "mc8051/assembler.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "rtl/builder.hpp"
#include "sim/simulator.hpp"
#include "synth/implement.hpp"

namespace fades {
namespace {

using common::Rng;
using netlist::Netlist;
using rtl::Builder;
using rtl::Bus;

// ------------------------------------------------------ routing legality -----

rtl::Builder randomDesign(std::uint64_t seed, unsigned gates) {
  Rng rng(seed);
  Builder b;
  Bus in = b.input("in", 8);
  std::vector<rtl::NetId> pool = in;
  std::vector<rtl::Register> regs;
  for (unsigned r = 0; r < 4; ++r) {
    regs.push_back(b.makeRegister("q" + std::to_string(r), 4, 0));
    pool.insert(pool.end(), regs.back().q.begin(), regs.back().q.end());
  }
  for (unsigned g = 0; g < gates; ++g) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    pool.push_back(rng.coin() ? b.lxor(pick(), pick())
                              : b.lmux(pick(), pick(), pick()));
  }
  for (auto& r : regs) {
    Bus d;
    for (int k = 0; k < 4; ++k) d.push_back(pool[rng.below(pool.size())]);
    b.connect(r, d);
  }
  Bus out;
  for (int k = 0; k < 8; ++k) out.push_back(pool[rng.below(pool.size())]);
  b.output("out", out);
  return b;
}

class RoutingLegality : public ::testing::TestWithParam<int> {};

TEST_P(RoutingLegality, NoTwoNetsShareAWireSegment) {
  Builder b = randomDesign(static_cast<std::uint64_t>(GetParam()), 50);
  const Netlist nl = b.finish();
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());

  std::set<std::uint32_t> used;
  for (const auto& route : impl.routes) {
    for (auto n : route.wireNodes) {
      EXPECT_TRUE(used.insert(n).second)
          << "wire node " << n << " used by two nets (short circuit)";
    }
  }
  // And every route's transistors are actually ON in the bitstream.
  for (const auto& route : impl.routes) {
    for (auto bit : route.transistorBits) {
      EXPECT_TRUE(impl.bitstream.logic.get(bit));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingLegality, ::testing::Range(1, 7));

TEST(RoutingLegality, DistinctFlopSitesAndLutSites) {
  Builder b = randomDesign(11, 60);
  const Netlist nl = b.finish();
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
  std::set<std::pair<int, int>> cbs;
  for (const auto& l : impl.luts) {
    EXPECT_TRUE(cbs.insert({l.cb.x, l.cb.y}).second)
        << "two LUTs on one CB";
  }
  std::set<std::pair<int, int>> ffs;
  for (const auto& f : impl.flops) {
    EXPECT_TRUE(ffs.insert({f.cb.x, f.cb.y}).second)
        << "two FFs on one CB";
  }
}

// ---------------------------------------------------- LUT circuit algebra -----

TEST(LutCircuitAlgebra, DoubleInversionIsIdentity) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto table = static_cast<std::uint16_t>(rng.below(0x10000));
    for (unsigned input = 0; input < 4; ++input) {
      const auto once =
          core::ExtractedCircuit::tableWithInvertedInput(table, input);
      const auto twice =
          core::ExtractedCircuit::tableWithInvertedInput(once, input);
      EXPECT_EQ(twice, table);
    }
    EXPECT_EQ(core::ExtractedCircuit::tableWithInvertedOutput(
                  core::ExtractedCircuit::tableWithInvertedOutput(table)),
              table);
  }
}

TEST(LutCircuitAlgebra, ExtractionNodeCountBounded) {
  // A reduced 4-variable BDD has at most 2^4 - 1 internal nodes; typical
  // functions are far smaller.
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    const auto table = static_cast<std::uint16_t>(rng.below(0x10000));
    core::ExtractedCircuit c(table);
    EXPECT_LE(c.internalLineCount(), 15u);
  }
}

// ------------------------------------------------------- assembler fuzz -----

/// Generate a random but CONTROL-FLOW-SAFE program: straight-line random
/// data instructions, ending in the idle loop. Branches are excluded so the
/// program cannot wander into garbage.
std::string randomStraightLineProgram(std::uint64_t seed, unsigned count) {
  Rng rng(seed);
  std::ostringstream s;
  s << "  MOV SP, #0x60\n";
  auto dir = [&] {
    // Direct addresses in scratch IRAM.
    return "0x" + std::to_string(30 + rng.below(40));
  };
  for (unsigned i = 0; i < count; ++i) {
    switch (rng.below(16)) {
      case 0: s << "  MOV A, #" << rng.below(256) << "\n"; break;
      case 1: s << "  MOV R" << rng.below(8) << ", #" << rng.below(256) << "\n"; break;
      case 2: s << "  ADD A, R" << rng.below(8) << "\n"; break;
      case 3: s << "  SUBB A, #" << rng.below(256) << "\n"; break;
      case 4: s << "  ANL A, #" << rng.below(256) << "\n"; break;
      case 5: s << "  ORL A, R" << rng.below(8) << "\n"; break;
      case 6: s << "  XRL A, #" << rng.below(256) << "\n"; break;
      case 7: s << "  RL A\n"; break;
      case 8: s << "  RRC A\n"; break;
      case 9: s << "  INC A\n"; break;
      case 10: s << "  DEC R" << rng.below(8) << "\n"; break;
      case 11: s << "  MOV " << dir() << ", A\n"; break;
      case 12: s << "  XCH A, R" << rng.below(8) << "\n"; break;
      case 13: s << "  PUSH PSW\n  POP B\n"; break;
      case 14: s << "  CPL A\n"; break;
      default: s << "  ADDC A, #" << rng.below(256) << "\n"; break;
    }
  }
  s << "  MOV P1, A\n  MOV P0, #0x99\nend: SJMP $\n";
  return s.str();
}

class AssemblerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AssemblerFuzz, IssAndRtlAgreeOnRandomPrograms) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto src = randomStraightLineProgram(seed, 60);
  const auto prog = mc8051::assemble(src);

  mc8051::Iss iss(prog.bytes);
  std::uint64_t guard = 0;
  while (iss.p0() != 0x99 && ++guard < 20000) iss.stepInstruction();
  ASSERT_EQ(iss.p0(), 0x99) << "program did not finish";

  const auto nl = mc8051::buildCore(prog.bytes);
  sim::Simulator simulator(nl);
  simulator.run(iss.cycleCount() + 8);
  iss.runCycles(iss.cycleCount() + 8);

  EXPECT_EQ(simulator.portValue("acc"), iss.acc()) << src;
  EXPECT_EQ(simulator.portValue("p1"), iss.p1());
  EXPECT_EQ(simulator.portValue("sp"), iss.sp());
  EXPECT_EQ(simulator.portValue("pc"), iss.pc());
  for (unsigned a = 0; a < 128; ++a) {
    netlist::RamId iram{};
    for (std::uint32_t r = 0; r < nl.ramCount(); ++r) {
      if (nl.ram(netlist::RamId{r}).name == "iram") iram = netlist::RamId{r};
    }
    ASSERT_EQ(simulator.ramWord(iram, a), iss.iram(static_cast<std::uint8_t>(a)))
        << "iram[" << a << "] seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz, ::testing::Range(1, 11));

// --------------------------------------- sharded campaign equivalence -----

/// For any small random design and any small random campaign spec, the
/// sharded runner merged over 2-5 workers equals the serial FadesTool run
/// field for field - bit-identical floating-point sums included.
TEST(ParallelEquivalence, RandomCampaignsShardedEqualsSerial) {
  using campaign::CampaignSpec;
  using campaign::DurationBand;
  using campaign::FaultModel;
  using campaign::TargetClass;

  const std::pair<FaultModel, TargetClass> kinds[] = {
      {FaultModel::BitFlip, TargetClass::SequentialFF},
      {FaultModel::Pulse, TargetClass::CombinationalLut},
      {FaultModel::Indetermination, TargetClass::SequentialFF},
      {FaultModel::Indetermination, TargetClass::CombinationalLut},
  };
  Rng rng(20260805);
  for (int trial = 0; trial < 5; ++trial) {
    Builder b = randomDesign(100 + trial, 30 + rng.below(25));
    const Netlist nl = b.finish();
    const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
    const std::uint64_t cycles = 32 + rng.below(32);

    core::FadesOptions opt;
    opt.observedOutputs = {"out"};
    opt.keepRecords = true;
    opt.progressInterval = 0;
    // The session frame cache is drawn independently for the serial and the
    // sharded run: results must be identical whichever side caches.
    opt.sessionFrameCache = rng.coin();

    CampaignSpec spec;
    const auto& kind = kinds[rng.below(std::size(kinds))];
    spec.model = kind.first;
    spec.targets = kind.second;
    spec.band = DurationBand::paperBands()[rng.below(3)];
    spec.experiments = 5 + static_cast<unsigned>(rng.below(8));
    spec.seed = rng.below(1u << 30);

    fpga::Device device(impl.spec);
    core::FadesTool tool(device, impl, cycles, opt);
    if (tool.campaignPool(spec).empty()) continue;
    const auto serial = tool.runCampaign(spec);

    campaign::ParallelOptions popt;
    popt.jobs = 2 + static_cast<unsigned>(rng.below(4));
    core::FadesOptions shardedOpt = opt;
    shardedOpt.sessionFrameCache = rng.coin();
    campaign::ParallelCampaignRunner runner(
        core::fadesEngineFactory(impl, cycles, shardedOpt), popt);
    const auto sharded = runner.run(spec);

    SCOPED_TRACE("trial " + std::to_string(trial) + " jobs " +
                 std::to_string(popt.jobs) + " seed " +
                 std::to_string(spec.seed) + " cache " +
                 std::to_string(opt.sessionFrameCache) + "/" +
                 std::to_string(shardedOpt.sessionFrameCache));
    EXPECT_EQ(serial.failures, sharded.failures);
    EXPECT_EQ(serial.latents, sharded.latents);
    EXPECT_EQ(serial.silents, sharded.silents);
    EXPECT_EQ(serial.modeledSeconds.count(), sharded.modeledSeconds.count());
    EXPECT_EQ(serial.modeledSeconds.sum(), sharded.modeledSeconds.sum());
    EXPECT_EQ(serial.modeledSeconds.stddev(), sharded.modeledSeconds.stddev());
    EXPECT_EQ(serial.cost.configSeconds, sharded.cost.configSeconds);
    EXPECT_EQ(serial.cost.workloadSeconds, sharded.cost.workloadSeconds);
    EXPECT_EQ(serial.cost.hostSeconds, sharded.cost.hostSeconds);
    EXPECT_EQ(serial.cost.bytesToDevice, sharded.cost.bytesToDevice);
    EXPECT_EQ(serial.cost.bytesFromDevice, sharded.cost.bytesFromDevice);
    EXPECT_EQ(serial.cost.sessions, sharded.cost.sessions);
    ASSERT_EQ(serial.records.size(), sharded.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      EXPECT_EQ(serial.records[i].targetName, sharded.records[i].targetName);
      EXPECT_EQ(serial.records[i].injectCycle, sharded.records[i].injectCycle);
      EXPECT_EQ(serial.records[i].durationCycles,
                sharded.records[i].durationCycles);
      EXPECT_EQ(serial.records[i].outcome, sharded.records[i].outcome);
      EXPECT_EQ(serial.records[i].modeledSeconds,
                sharded.records[i].modeledSeconds);
    }
  }
}

// ----------------------------------------- unreliable-link equivalence -----

/// For any random design and any random (modest) link fault rates, retried
/// transfers must be invisible in the campaign result: outcomes, records and
/// the modeled cost are bit-identical to a fault-free run of the same spec,
/// serial and sharded alike. Only the telemetry (fault/retry counters) may
/// differ.
TEST(LinkFaultEquivalence, RandomFaultRatesAreInvisibleInResults) {
  using campaign::CampaignSpec;
  using campaign::DurationBand;
  using campaign::FaultModel;
  using campaign::TargetClass;

  Rng rng(8051);
  for (int trial = 0; trial < 3; ++trial) {
    Builder b = randomDesign(300 + trial, 30 + rng.below(20));
    const Netlist nl = b.finish();
    const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
    const std::uint64_t cycles = 32 + rng.below(32);

    core::FadesOptions clean;
    clean.observedOutputs = {"out"};
    clean.keepRecords = true;
    clean.progressInterval = 0;

    CampaignSpec spec;
    spec.model = rng.coin() ? FaultModel::BitFlip : FaultModel::Pulse;
    spec.targets = spec.model == FaultModel::BitFlip
                       ? TargetClass::SequentialFF
                       : TargetClass::CombinationalLut;
    spec.band = DurationBand::paperBands()[rng.below(3)];
    spec.experiments = 6 + static_cast<unsigned>(rng.below(6));
    spec.seed = rng.below(1u << 30);

    fpga::Device device(impl.spec);
    core::FadesTool tool(device, impl, cycles, clean);
    if (tool.campaignPool(spec).empty()) continue;
    const auto baseline = tool.runCampaign(spec);

    // Modest rates with the default generous retry budget: every fault is
    // retried away, nothing quarantines.
    core::FadesOptions faulty = clean;
    faulty.linkFaults.readCrcRate = 0.01 + 0.04 * rng.uniform01();
    faulty.linkFaults.writeFailRate = 0.01 + 0.04 * rng.uniform01();
    faulty.linkFaults.timeoutRate = 0.005 * rng.uniform01();

    SCOPED_TRACE("trial " + std::to_string(trial) + " seed " +
                 std::to_string(spec.seed) + " rates " +
                 std::to_string(faulty.linkFaults.readCrcRate) + "/" +
                 std::to_string(faulty.linkFaults.writeFailRate) + "/" +
                 std::to_string(faulty.linkFaults.timeoutRate));

    fpga::Device faultyDevice(impl.spec);
    core::FadesTool faultyTool(faultyDevice, impl, cycles, faulty);
    const auto serial = faultyTool.runCampaign(spec);

    campaign::ParallelOptions popt;
    popt.jobs = 2 + static_cast<unsigned>(rng.below(3));
    campaign::ParallelCampaignRunner runner(
        core::fadesEngineFactory(impl, cycles, faulty), popt);
    const auto sharded = runner.run(spec);

    for (const auto* r : {&serial, &sharded}) {
      EXPECT_TRUE(r->quarantined.empty());
      EXPECT_EQ(baseline.failures, r->failures);
      EXPECT_EQ(baseline.latents, r->latents);
      EXPECT_EQ(baseline.silents, r->silents);
      EXPECT_EQ(baseline.modeledSeconds.count(), r->modeledSeconds.count());
      EXPECT_EQ(baseline.modeledSeconds.sum(), r->modeledSeconds.sum());
      EXPECT_EQ(baseline.cost.configSeconds, r->cost.configSeconds);
      EXPECT_EQ(baseline.cost.workloadSeconds, r->cost.workloadSeconds);
      EXPECT_EQ(baseline.cost.hostSeconds, r->cost.hostSeconds);
      EXPECT_EQ(baseline.cost.bytesToDevice, r->cost.bytesToDevice);
      EXPECT_EQ(baseline.cost.bytesFromDevice, r->cost.bytesFromDevice);
      EXPECT_EQ(baseline.cost.sessions, r->cost.sessions);
      ASSERT_EQ(baseline.records.size(), r->records.size());
      for (std::size_t i = 0; i < baseline.records.size(); ++i) {
        EXPECT_EQ(baseline.records[i].targetName, r->records[i].targetName);
        EXPECT_EQ(baseline.records[i].injectCycle, r->records[i].injectCycle);
        EXPECT_EQ(baseline.records[i].outcome, r->records[i].outcome);
        EXPECT_EQ(baseline.records[i].modeledSeconds,
                  r->records[i].modeledSeconds);
      }
    }
  }
}

// ------------------------------------------------------ RNG statistical -----

TEST(RngProperty, ForkedStreamsPassChiSquareSmoke) {
  // 256-bucket chi-square on a forked stream; catches gross bias.
  Rng parent(12345);
  Rng rng = parent.fork(3);
  std::vector<unsigned> buckets(256, 0);
  const unsigned draws = 256 * 64;
  for (unsigned i = 0; i < draws; ++i) ++buckets[rng.below(256)];
  double chi2 = 0;
  const double expected = draws / 256.0;
  for (auto c : buckets) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 degrees of freedom: mean 255, stddev ~22.6; allow 5 sigma.
  EXPECT_GT(chi2, 255 - 5 * 22.6);
  EXPECT_LT(chi2, 255 + 5 * 22.6);
}

}  // namespace
}  // namespace fades
