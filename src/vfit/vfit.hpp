// VFIT - the VHDL-simulator fault-injection baseline (paper Section 6).
//
// VFIT applies the "simulator commands" technique: the model executes on an
// event-driven simulator and faults are injected by forcing signals and
// depositing register/memory values. Its execution time is dominated by
// simulating the model on the host CPU, which is why the paper reports very
// similar times for every fault type and length (Section 6.2); the cost
// model reproduces that behaviour from real counted simulation events.
//
// Like the original tool, delay faults are NOT supported: the model would
// need explicit generic delay clauses, which it does not have (the paper
// could not run the delay comparison either, Table 3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/types.hpp"
#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace fades::vfit {

using campaign::CampaignResult;
using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::Observation;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::FlopId;
using netlist::NetId;
using netlist::Netlist;
using netlist::RamId;
using netlist::Unit;

struct VfitOptions {
  /// Host CPU cost per simulation event (gate evaluation / state update).
  /// Calibrated so one full workload simulation lands near the paper's
  /// 7.2 s-per-experiment VFIT average on a 2006-class workstation.
  double secondsPerEvent = 9.6e-7;
  /// Simulator-command (force/release/deposit) scripting overhead.
  double secondsPerCommand = 0.0005;
  /// Fixed per-experiment cost: restart, trace set-up, result dump.
  double secondsFixedPerExperiment = 0.35;
  /// Output ports whose traces define Failure.
  std::vector<std::string> observedOutputs = {"p0", "p1"};
  /// Host-side replay checkpoint spacing (pure wall-clock optimization; does
  /// not affect modeled cost, which always charges the full run).
  unsigned checkpointInterval = 128;
  /// Re-randomize indetermination values every cycle of the fault.
  bool oscillatingIndetermination = false;
  /// Keep per-experiment records in the campaign result.
  bool keepRecords = false;
};

class VfitTool {
 public:
  /// The netlist is the HDL model; runCycles is the workload length.
  VfitTool(const Netlist& netlist, std::uint64_t runCycles,
           VfitOptions options = {});

  bool supports(FaultModel m) const { return m != FaultModel::Delay; }

  // --- fault-location process (model level) -----------------------------
  std::vector<FlopId> flopTargets(Unit unit) const;
  /// Named combinational signals (HDL-level view: only signals that exist
  /// by name in the model, the way a VHDL tool sees them).
  std::vector<NetId> signalTargets(Unit unit) const;
  std::vector<RamId> ramTargets() const;

  CampaignResult runCampaign(const CampaignSpec& spec);

  /// Single experiment; exposed for tests. `commandsOut` reports how many
  /// simulator commands (force / release / deposit) the injection issued.
  Outcome runExperiment(FaultModel model, TargetClass targets,
                        std::uint32_t targetIndex, std::uint64_t injectCycle,
                        double durationCycles, common::Rng& rng,
                        double* modeledSeconds = nullptr,
                        unsigned* commandsOut = nullptr);

  const Observation& golden() const { return golden_; }
  double goldenModelSeconds() const { return goldenSeconds_; }

 private:
  Observation observeRun(std::uint64_t fromCycle,
                         const std::vector<std::uint64_t>& prefixOutputs);
  std::uint64_t outputWord() const;
  void captureFinalState(Observation& obs) const;
  const sim::Snapshot& checkpointAtOrBefore(std::uint64_t cycle,
                                            std::uint64_t& ckCycle) const;

  const Netlist& nl_;
  std::uint64_t runCycles_;
  VfitOptions opt_;
  std::unique_ptr<sim::Simulator> sim_;

  Observation golden_;
  std::vector<sim::Snapshot> checkpoints_;  // every checkpointInterval cycles
  std::uint64_t goldenEvents_ = 0;
  double goldenSeconds_ = 0;
};

}  // namespace fades::vfit
