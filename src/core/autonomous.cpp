#include "core/autonomous.hpp"

#include <numeric>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace fades::core {

using campaign::CampaignResult;
using campaign::CampaignSpec;
using common::ErrorKind;
using common::require;
using netlist::Netlist;
using netlist::RamId;

namespace {

/// The semantic engine runs the SOURCE model under VFIT fault semantics (an
/// injection is the same state perturbation whichever injector applies it);
/// only the metering differs, and remeter() below replaces it wholesale.
vfit::VfitOptions semanticOptions(const AutonomousOptions& o) {
  vfit::VfitOptions v;
  v.observedOutputs = o.observedOutputs;
  v.checkpointInterval = o.checkpointInterval;
  v.oscillatingIndetermination = o.oscillatingIndetermination;
  v.keepRecords = o.keepRecords;
  v.engine = o.engine;
  v.metricsPrefix = "autonomous";
  return v;
}

}  // namespace

AutonomousTool::AutonomousTool(const Netlist& netlist, std::uint64_t runCycles,
                               AutonomousOptions options)
    : runCycles_(runCycles),
      opt_(std::move(options)),
      model_(synth::instrumentAutonomous(netlist)),
      vfit_(netlist, runCycles, semanticOptions(opt_)) {
  // Restore sweep: one cycle writes every shadow flip-flop back at once;
  // each shadow memory row is then replayed through the write port.
  for (std::uint32_t r = 0; r < netlist.ramCount(); ++r) {
    const auto& ram = netlist.ram(RamId{r});
    if (!ram.isRom()) restoreCycles_ += ram.depth();
  }
  if (opt_.verifyInstrumentation) verifyInstrumentation();
}

void AutonomousTool::verifyInstrumentation() {
  // With every am_* control at 0 the instrumented model must be
  // cycle-accurate equivalent to the source: same observed outputs for the
  // whole workload. reset() zeroes all inputs, so not touching the control
  // ports is exactly the all-zeros condition.
  sim::Simulator isim(model_.netlist);
  isim.reset();
  const auto& golden = vfit_.golden().outputs;
  for (std::uint64_t c = 0; c < runCycles_; ++c) {
    std::uint64_t w = 0;
    unsigned shift = 0;
    for (const auto& port : opt_.observedOutputs) {
      w |= isim.portValue(port) << shift;
      shift += 16;
    }
    require(w == golden[c], ErrorKind::ConfigError,
            "instrumented model diverged from the source model with all "
            "autonomous controls at 0 (cycle " +
                std::to_string(c) + ")");
    isim.step();
  }
}

double AutonomousTool::injectionOverheadSeconds(unsigned commands) const {
  return static_cast<double>(model_.chainBits + commands + restoreCycles_) /
             opt_.fpgaClockHz +
         opt_.hostPerInjectionSeconds;
}

campaign::ExperimentOutcome AutonomousTool::remeter(
    campaign::ExperimentOutcome out, unsigned commands) const {
  // Everything the injection does happens inside the emulator at clock
  // speed: load the mask chain, fire the fault (one activation cycle per
  // simulator command the VFIT script would have issued), run the workload,
  // restore the golden state. No configuration frame moves, so the device
  // byte counters stay 0 - the defining property of autonomous emulation.
  const double config =
      static_cast<double>(model_.chainBits + commands + restoreCycles_) /
      opt_.fpgaClockHz;
  const double workload = static_cast<double>(runCycles_) / opt_.fpgaClockHz;
  const double host = opt_.hostPerInjectionSeconds;
  out.configSeconds = config;
  out.workloadSeconds = workload;
  out.hostSeconds = host;
  out.modeledSeconds = config + workload + host;
  out.bytesToDevice = 0;
  out.bytesFromDevice = 0;
  out.sessions = 0;
  if (out.hasRecord) out.record.modeledSeconds = out.modeledSeconds;
  return out;
}

std::vector<std::uint32_t> AutonomousTool::campaignPool(
    const CampaignSpec& spec) const {
  return vfit_.campaignPool(spec);
}

campaign::ExperimentOutcome AutonomousTool::runCampaignExperiment(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index) {
  const auto plan = vfit_.planExperiment(spec, pool, index);
  return remeter(vfit_.runCampaignExperiment(spec, pool, index),
                 plan.commands);
}

std::vector<campaign::ExperimentOutcome> AutonomousTool::runCampaignWave(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    std::span<const unsigned> indices) {
  auto outs = vfit_.runCampaignWave(spec, pool, indices);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    outs[i] = remeter(std::move(outs[i]),
                      vfit_.planExperiment(spec, pool, indices[i]).commands);
  }
  return outs;
}

CampaignResult AutonomousTool::runCampaign(const CampaignSpec& spec) {
  const std::vector<std::uint32_t> targets = campaignPool(spec);

  obs::Span campaignSpan{"autonomous.campaign",
                         {{"model", campaign::toString(spec.model)},
                          {"targets", campaign::toString(spec.targets)},
                          {"engine", sim::toString(opt_.engine)}}};
  CampaignResult result;
  result.spec = spec;
  auto note = [&](unsigned done) {
    if (done % 100 == 0 || done == spec.experiments) {
      FADES_LOG(Debug) << "autonomous campaign progress"
                       << obs::kv("done", done)
                       << obs::kv("total", spec.experiments)
                       << obs::kv("failures", result.failures);
    }
  };
  if (opt_.engine == sim::EngineKind::Compiled) {
    std::vector<unsigned> indices;
    for (unsigned first = 0; first < spec.experiments;
         first += kWaveExperiments) {
      const unsigned count =
          std::min(kWaveExperiments, spec.experiments - first);
      indices.resize(count);
      std::iota(indices.begin(), indices.end(), first);
      for (auto& o : runCampaignWave(spec, targets, indices)) {
        result.fold(o);
        note(static_cast<unsigned>(o.index) + 1);
      }
    }
  } else {
    for (unsigned e = 0; e < spec.experiments; ++e) {
      result.fold(runCampaignExperiment(spec, targets, e));
      note(e + 1);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// AutonomousCampaignEngine
// ---------------------------------------------------------------------------

AutonomousCampaignEngine::AutonomousCampaignEngine(const Netlist& netlist,
                                                   std::uint64_t runCycles,
                                                   AutonomousOptions options)
    : tool_(netlist, runCycles, std::move(options)) {}

std::vector<std::uint32_t> AutonomousCampaignEngine::enumeratePool(
    const CampaignSpec& spec) {
  return tool_.campaignPool(spec);
}

campaign::ExperimentOutcome AutonomousCampaignEngine::runExperimentAt(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    unsigned index, unsigned rerun) {
  // No link model: injections never move bytes, so reruns replay identically.
  (void)rerun;
  return tool_.runCampaignExperiment(spec, pool, index);
}

unsigned AutonomousCampaignEngine::waveWidth() const {
  return tool_.engine() == sim::EngineKind::Compiled
             ? AutonomousTool::kWaveExperiments
             : 1;
}

std::vector<campaign::ExperimentOutcome> AutonomousCampaignEngine::runWaveAt(
    const CampaignSpec& spec, std::span<const std::uint32_t> pool,
    std::span<const unsigned> indices, unsigned rerun) {
  if (tool_.engine() == sim::EngineKind::Compiled) {
    return tool_.runCampaignWave(spec, pool, indices);
  }
  return CampaignEngine::runWaveAt(spec, pool, indices, rerun);
}

campaign::EngineFactory autonomousEngineFactory(const Netlist& netlist,
                                                std::uint64_t runCycles,
                                                AutonomousOptions options) {
  return [&netlist, runCycles, options] {
    return std::make_unique<AutonomousCampaignEngine>(netlist, runCycles,
                                                      options);
  };
}

}  // namespace fades::core
