#include "diffcheck/gen.hpp"

#include <cstdio>
#include <iterator>
#include <string>

#include "common/error.hpp"
#include "mc8051/assembler.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "rtl/builder.hpp"

namespace fades::diffcheck {

using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;
using common::ErrorKind;
using common::Rng;
using common::require;
using netlist::Netlist;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;

namespace {

Netlist buildRtl(const RtlParams& p) {
  require(p.regs >= 1 && p.regWidth >= 1, ErrorKind::InvalidArgument,
          "rtl case needs regs >= 1 and reg_width >= 1");
  Rng rng(p.seed);
  Builder b;
  b.setUnit(Unit::Registers);
  std::vector<rtl::Register> regs;
  const std::uint64_t initBound = 1ull << (p.regWidth < 16 ? p.regWidth : 16);
  for (unsigned r = 0; r < p.regs; ++r) {
    regs.push_back(b.makeRegister("r" + std::to_string(r), p.regWidth,
                                  rng.below(initBound)));
  }
  std::vector<rtl::NetId> pool;
  for (const auto& r : regs) {
    pool.insert(pool.end(), r.q.begin(), r.q.end());
  }
  if (p.withRam) {
    // A written-and-read RAM so memory faults can surface: a free-running
    // counter addresses it and writes on odd counts (crosstool pattern).
    b.setUnit(Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(Unit::Ram);
    Bus dout = b.ram("m", 4, 8, cnt.q, b.zeroExtend(cnt.q, 8), cnt.q[0]);
    pool.insert(pool.end(), dout.begin(), dout.end());
  }
  b.setUnit(Unit::Alu);
  std::vector<rtl::NetId> made;
  for (unsigned g = 0; g < p.gates; ++g) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    rtl::NetId out;
    switch (rng.below(4)) {
      case 0: out = b.land(pick(), pick()); break;
      case 1: out = b.lxor(pick(), pick()); break;
      case 2: out = b.lnot(pick()); break;
      default: out = b.lmux(pick(), pick(), pick()); break;
    }
    pool.push_back(out);
    made.push_back(out);
  }
  // Publish the first few gate outputs as named HDL signals: the simulator
  // tool sees combinational targets the way a VHDL flow would.
  for (unsigned s = 0; s < p.namedSignals && s < made.size(); ++s) {
    b.nameBus("s" + std::to_string(s), {made[s]});
  }
  b.setUnit(Unit::Registers);
  for (auto& r : regs) {
    Bus d;
    for (unsigned k = 0; k < p.regWidth; ++k) {
      d.push_back(pool[rng.below(pool.size())]);
    }
    b.connect(r, d);
  }
  Bus out;
  for (int k = 0; k < 6; ++k) out.push_back(pool[rng.below(pool.size())]);
  b.output("out", out);
  return b.finish();
}

std::string joinProgram(const std::vector<std::string>& lines) {
  std::string src;
  for (const auto& line : lines) {
    src += line;
    src += '\n';
  }
  return src;
}

}  // namespace

Netlist buildDesign(const CaseSpec& c) {
  if (c.kind == DesignKind::Rtl) return buildRtl(c.rtl);
  const auto prog = mc8051::assemble(joinProgram(c.program));
  return mc8051::buildCore(prog.bytes);
}

std::vector<std::string> observedOutputs(const CaseSpec& c) {
  if (c.kind == DesignKind::Rtl) return {"out"};
  return {"p0", "p1"};
}

std::vector<std::string> generateProgram(common::Rng& rng, unsigned maxInstr) {
  std::vector<std::string> lines;
  const auto imm = [&] {
    return "#0x" + [&] {
      char buf[3];
      std::snprintf(buf, sizeof buf, "%02X",
                    static_cast<unsigned>(rng.below(256)));
      return std::string(buf);
    }();
  };
  const auto direct = [&] {
    // Scratch window 0x30-0x3F: clear of the register banks and the stack.
    return "0x3" + std::string(1, "0123456789ABCDEF"[rng.below(16)]);
  };
  const auto reg = [&] { return "R" + std::to_string(rng.below(8)); };
  const auto ind = [&] { return std::string(rng.coin() ? "@R0" : "@R1"); };

  // Point the indirect registers at the scratch window and give the ALU
  // non-trivial starting values. All of this is removable by the shrinker -
  // execution stays deterministic with the power-on defaults.
  lines.push_back("        MOV  SP, #0x60");
  lines.push_back("        MOV  R0, #0x30");
  lines.push_back("        MOV  R1, #0x38");
  lines.push_back("        MOV  A, " + imm());
  lines.push_back("        MOV  B, " + imm());

  for (unsigned i = 0; i < maxInstr; ++i) {
    switch (rng.below(24)) {
      case 0: lines.push_back("        MOV  A, " + imm()); break;
      case 1: lines.push_back("        ADD  A, " + imm()); break;
      case 2: lines.push_back("        ADDC A, " + reg()); break;
      case 3: lines.push_back("        SUBB A, " + direct()); break;
      case 4: lines.push_back("        ANL  A, " + imm()); break;
      case 5: lines.push_back("        ORL  A, " + reg()); break;
      case 6: lines.push_back("        XRL  A, " + direct()); break;
      case 7: lines.push_back("        MOV  " + reg() + ", " + imm()); break;
      case 8: lines.push_back("        MOV  " + direct() + ", A"); break;
      case 9: lines.push_back("        MOV  A, " + reg()); break;
      case 10: lines.push_back("        MOV  " + ind() + ", A"); break;
      case 11: lines.push_back("        MOV  A, " + ind()); break;
      case 12: lines.push_back("        MOV  " + direct() + ", " + imm()); break;
      case 13: lines.push_back("        INC  A"); break;
      case 14: lines.push_back("        DEC  " + reg()); break;
      case 15: lines.push_back("        INC  " + direct()); break;
      case 16: lines.push_back("        RL   A"); break;
      case 17: lines.push_back("        RRC  A"); break;
      case 18: lines.push_back("        CPL  A"); break;
      case 19: lines.push_back("        XCH  A, " + reg()); break;
      case 20: lines.push_back("        MOV  B, " + imm()); break;
      case 21: lines.push_back("        MUL  AB"); break;
      case 22: lines.push_back("        DIV  AB"); break;
      default:
        lines.push_back(rng.coin() ? "        SETB C" : "        ADD  A, " +
                                                            reg());
        break;
    }
  }

  // Expose the ALU result on the ports, then park. The idle loop is the one
  // line the shrinker must keep: without it execution would run off the end
  // of the ROM.
  lines.push_back("        MOV  P1, A");
  lines.push_back("        MOV  P0, #0x55");
  lines.push_back("idle:   SJMP idle");
  return lines;
}

std::uint64_t programCycles(const std::vector<std::string>& program) {
  const auto prog = mc8051::assemble(joinProgram(program));
  mc8051::Iss iss(prog.bytes);
  constexpr std::uint64_t kCap = 20000;
  while (iss.cycleCount() < kCap) {
    const std::uint16_t before = iss.pc();
    iss.stepInstruction();
    if (iss.pc() == before) break;  // parked on the idle loop
  }
  // Margin past the park point so latent state differences get a chance to
  // propagate to the ports, and injection instants can land in the tail.
  return iss.cycleCount() + 8;
}

namespace {

const char* shortName(FaultModel m) {
  switch (m) {
    case FaultModel::BitFlip: return "bitflip";
    case FaultModel::Pulse: return "pulse";
    case FaultModel::Delay: return "delay";
    case FaultModel::Indetermination: return "indet";
  }
  return "?";
}

const char* shortName(TargetClass t) {
  switch (t) {
    case TargetClass::SequentialFF: return "ff";
    case TargetClass::MemoryBlockBit: return "mem";
    case TargetClass::CombinationalLut: return "lut";
    case TargetClass::CbInputLine: return "cbin";
    case TargetClass::SequentialLine: return "seqline";
    case TargetClass::CombinationalLine: return "combline";
  }
  return "?";
}

std::string caseName(FaultModel m, TargetClass t, DesignKind k,
                     std::uint64_t seed) {
  std::string n = std::string(shortName(m)) + "-" + shortName(t) + "-" +
                  toString(k) + "-";
  std::string digits = std::to_string(seed);
  while (digits.size() < 3) digits.insert(digits.begin(), '0');
  return n + digits;
}

CaseSpec makeRtlCase(FaultModel m, TargetClass t, std::uint64_t seed) {
  Rng rng(common::streamSeed(seed, 0xd1ffu));
  CaseSpec c;
  c.kind = DesignKind::Rtl;
  c.name = caseName(m, t, c.kind, seed);
  c.rtl.seed = 1 + rng.below(1u << 20);
  c.rtl.regs = 2 + static_cast<unsigned>(rng.below(3));
  c.rtl.regWidth = 3 + static_cast<unsigned>(rng.below(3));
  c.rtl.gates = 12 + static_cast<unsigned>(rng.below(16));
  c.rtl.withRam = t == TargetClass::MemoryBlockBit || rng.below(4) == 0;
  c.rtl.namedSignals = 3 + static_cast<unsigned>(rng.below(4));
  c.runCycles = 32 + rng.below(33);
  c.inject.model = m;
  c.inject.targets = t;
  c.inject.unit = static_cast<int>(Unit::None);
  c.inject.band = DurationBand::paperBands()[rng.below(3)];
  c.inject.experiments = 2 + static_cast<unsigned>(rng.below(5));
  c.inject.seed = 1 + rng.below(1u << 20);
  return c;
}

CaseSpec makeMcCase(FaultModel m, TargetClass t, std::uint64_t seed) {
  Rng rng(common::streamSeed(seed, 0x8051u));
  CaseSpec c;
  c.kind = DesignKind::Mc8051;
  c.name = caseName(m, t, c.kind, seed);
  c.program =
      generateProgram(rng, 6 + static_cast<unsigned>(rng.below(10)));
  c.runCycles = programCycles(c.program);
  c.inject.model = m;
  c.inject.targets = t;
  c.inject.unit = static_cast<int>(Unit::None);
  c.inject.band = DurationBand::paperBands()[rng.below(3)];
  c.inject.experiments = 2 + static_cast<unsigned>(rng.below(2));
  c.inject.seed = 1 + rng.below(1u << 20);
  return c;
}

struct Combo {
  FaultModel m;
  TargetClass t;
};

// The fault model x target resource matrix of the paper's Table 1, as far
// as each resource class is injectable by both design families.
constexpr Combo kCombos[] = {
    {FaultModel::BitFlip, TargetClass::SequentialFF},
    {FaultModel::BitFlip, TargetClass::MemoryBlockBit},
    {FaultModel::Pulse, TargetClass::CombinationalLut},
    {FaultModel::Pulse, TargetClass::CbInputLine},
    {FaultModel::Delay, TargetClass::SequentialLine},
    {FaultModel::Delay, TargetClass::CombinationalLine},
    {FaultModel::Indetermination, TargetClass::SequentialFF},
    {FaultModel::Indetermination, TargetClass::CombinationalLut},
};

}  // namespace

CaseSpec generateCase(std::uint64_t seed) {
  Rng rng(common::streamSeed(seed, 0xca5eu));
  Combo combo = kCombos[rng.below(std::size(kCombos))];
  // Full microcontroller builds cost ~2s of setup each; keep them a modest
  // slice of the fuzz stream and let cheap RTL circuits carry the volume.
  if (rng.below(8) == 0) {
    // CB-input faults attack flip-flops fed through the CB input bypass,
    // and none of the core's flops place that way - the pool is empty. Aim
    // the pulse at LUTs instead of generating a known-uninjectable case.
    if (combo.t == TargetClass::CbInputLine) {
      combo.t = TargetClass::CombinationalLut;
    }
    return makeMcCase(combo.m, combo.t, seed);
  }
  return makeRtlCase(combo.m, combo.t, seed);
}

std::vector<CaseSpec> seedCorpus() {
  std::vector<CaseSpec> corpus;
  // Two RTL cases per fault model x target pair (different seeds)...
  for (std::size_t i = 0; i < std::size(kCombos); ++i) {
    corpus.push_back(makeRtlCase(kCombos[i].m, kCombos[i].t, 101 + i));
    corpus.push_back(makeRtlCase(kCombos[i].m, kCombos[i].t, 201 + i));
  }
  // ...plus four microcontroller cases covering each fault model once.
  corpus.push_back(makeMcCase(FaultModel::BitFlip, TargetClass::SequentialFF, 301));
  corpus.push_back(makeMcCase(FaultModel::BitFlip, TargetClass::MemoryBlockBit, 302));
  corpus.push_back(makeMcCase(FaultModel::Pulse, TargetClass::CombinationalLut, 303));
  corpus.push_back(makeMcCase(FaultModel::Indetermination, TargetClass::SequentialFF, 304));
  return corpus;
}

}  // namespace fades::diffcheck
