// Sharded campaign execution.
//
// The paper's value proposition is throughput - emulation beats simulation
// because the FPGA grinds through experiments faster (Figure 10 / Table 2) -
// and fault-injection campaigns are embarrassingly parallel: every
// experiment replays the workload from a checkpoint on an otherwise pristine
// device, so N workers with N device replicas multiply throughput without
// touching the methodology. This follows the autonomous-emulation line of
// work (Lopez-Ongil et al.), where many independent fault experiments run
// concurrently against replicas of the same implementation.
//
// Determinism contract: experiment i of a campaign is a pure function of
// (spec, i) - target choice, injection instant, duration and every in-fault
// random draw come from Rng(common::streamSeed(spec.seed, ...)) - and the
// merge folds per-experiment outcomes in index order through the same
// CampaignResult::fold the serial loop uses. Outcome tallies, per-experiment
// records and the modeled CostBreakdown are therefore bit-identical for any
// shard count and any scheduling order; only wall-clock changes. Modeled
// seconds model ONE board: sharding never reduces them.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "campaign/types.hpp"
#include "obs/metrics.hpp"

namespace fades::campaign {

class CampaignJournal;
struct PrunePlan;

/// One worker's private campaign engine. Implementations own whatever
/// replica state they need (a device plus the tool driving it) and run any
/// experiment of a spec by index, independently of all other indices.
class CampaignEngine {
 public:
  virtual ~CampaignEngine() = default;

  /// Enumerate the spec's target pool. Must be deterministic: every replica
  /// built from the same implementation returns the same pool.
  virtual std::vector<std::uint32_t> enumeratePool(const CampaignSpec& spec) = 0;

  /// Run experiment `index` of the spec against `pool`. Must depend only on
  /// (spec, pool, index, rerun) - never on which experiments ran before.
  /// `rerun` counts experiment-level retries after transient errors; engines
  /// with an unreliable-link model fold it into the link fault stream seed
  /// so a retried experiment draws fresh link faults (and can succeed)
  /// while staying a pure function of its arguments.
  virtual ExperimentOutcome runExperimentAt(const CampaignSpec& spec,
                                            std::span<const std::uint32_t> pool,
                                            unsigned index, unsigned rerun) = 0;

  /// Restore the replica to a known-good state after a transient failure
  /// left it suspect (e.g. a link fault mid-reconfiguration abandoned a
  /// half-written configuration plane). Called before every retry and
  /// before continuing past a quarantined experiment. Default: no-op, for
  /// engines whose runExperimentAt cannot leave residue behind.
  virtual void recover() {}

  /// Preferred lease width: how many experiments this engine likes to run
  /// per batch. Bit-parallel engines return their lane count (the runner
  /// then leases contiguous index blocks of this size); the default of 1
  /// keeps the classic per-experiment work stealing.
  virtual unsigned waveWidth() const { return 1; }

  /// Materialize experiment `index` as a synthesized outcome cloned from
  /// its fades.prune/1 equivalence-class representative: measured fields
  /// (outcome, modeled cost, detect cycle) are the representative's, while
  /// the planned fields (target name, injection instant, duration, pc,
  /// opcode) are re-derived for `index` so the record reads exactly as if
  /// the member had run. Engines that support pruning override this; the
  /// default refuses, which makes --prune a hard error on tools whose
  /// equivalence the analysis cannot vouch for.
  virtual ExperimentOutcome synthesizeOutcome(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, const ExperimentOutcome& representative);

  /// Run the experiments named by `indices` as one batch. Every outcome
  /// must still be a pure function of (spec, pool, index, rerun) - batching
  /// may only change wall-clock, never results - so the default simply
  /// loops runExperimentAt. The runner fills in ExperimentOutcome::index
  /// and attempts from `indices`.
  virtual std::vector<ExperimentOutcome> runWaveAt(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      std::span<const unsigned> indices, unsigned rerun) {
    std::vector<ExperimentOutcome> out;
    out.reserve(indices.size());
    for (const unsigned e : indices) {
      out.push_back(runExperimentAt(spec, pool, e, rerun));
    }
    return out;
  }
};

/// Builds one engine replica; called once per worker, concurrently. The
/// factory must be safe to invoke from multiple threads at the same time
/// (replicas share only immutable inputs such as the implementation).
using EngineFactory = std::function<std::unique_ptr<CampaignEngine>()>;

/// The canonical experiment-level fault-tolerance discipline: run experiment
/// `index`, rerunning on transient errors (LinkError / InjectionError) with
/// engine.recover() between attempts and a fresh `rerun` stream each time;
/// exhausting `attempts` yields a quarantined outcome instead of throwing.
/// Fatal error kinds (and non-FadesError exceptions) propagate. Shared by
/// ParallelCampaignRunner's worker loop and the distributed worker daemon,
/// so an experiment produces the same outcome - including its quarantine
/// decision - no matter which execution plane ran it.
ExperimentOutcome runExperimentWithRetry(CampaignEngine& engine,
                                         const CampaignSpec& spec,
                                         std::span<const std::uint32_t> pool,
                                         unsigned index, unsigned attempts,
                                         obs::Counter& quarantineCounter);

/// Campaign-level progress heartbeat: one `campaign.progress_pct` gauge and
/// one structured log line per interval for the whole campaign, regardless
/// of how many shards feed it. Each heartbeat line carries an ETA - both
/// remaining wall-clock seconds (observed completion rate) and remaining
/// modeled board seconds (the CostBreakdown rate accumulated so far) - so an
/// operator can tell "how long until this terminal is free" apart from "how
/// much emulation time is still ahead". Thread-safe; with interval 0 only
/// the gauge reset happens and record() is a cheap no-op.
class ProgressTracker {
 public:
  /// 64-bit totals: distributed campaigns legitimately exceed 2^31
  /// experiments, and every rate below divides by 64-bit counts so the
  /// heartbeat math cannot overflow or divide by zero.
  ProgressTracker(std::string model, std::uint64_t total,
                  std::uint64_t interval);

  void record(const ExperimentOutcome& outcome);

  /// Emit a progress line right now, even with zero completions - the
  /// time-driven heartbeat of the campaign service coordinator. With no
  /// completed experiments yet there is no observed rate, so the line
  /// carries eta_wall_s=null instead of a fabricated (or divide-by-zero)
  /// estimate.
  void heartbeat();

 private:
  void emitLocked();

  std::mutex mu_;
  std::string model_;
  std::uint64_t total_;
  std::uint64_t interval_;
  std::uint64_t done_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t latents_ = 0;
  std::uint64_t silents_ = 0;
  std::uint64_t quarantined_ = 0;
  double modeledSum_ = 0;
  std::chrono::steady_clock::time_point start_;
  obs::Gauge& gauge_;
};

struct ParallelOptions {
  /// Worker (and device-replica) count; 0 = one per hardware thread.
  unsigned jobs = 1;
  /// Campaign heartbeat every N experiments (campaign-wide, not per shard);
  /// 0 disables it.
  unsigned progressInterval = 0;
  /// Runs an experiment gets before a persistent transient error (LinkError,
  /// InjectionError) quarantines it instead of aborting the campaign.
  /// Fatal errors (and non-FadesError exceptions) always abort.
  unsigned experimentAttempts = 3;
  /// Optional crash-safe checkpoint journal. When set, run() opens it for
  /// the campaign spec, appends every completed outcome, and - with resume
  /// also set - folds in previously journaled outcomes instead of
  /// re-running them. Not owned.
  CampaignJournal* journal = nullptr;
  /// Skip experiments already committed to `journal` (requires journal).
  bool resume = false;
  /// Optional fades.prune/1 plan. When set, collapsed members are not
  /// executed: after the representatives finish, each member is
  /// materialized through CampaignEngine::synthesizeOutcome (flagged
  /// pruned_from), journaled like a real outcome, and folded in index
  /// order as usual - so the campaign result is byte-identical in outcome
  /// totals while only the plan's executedCount() experiments run. The
  /// plan's spec must match the spec passed to run() (specKey equality).
  /// Not owned; must outlive the runner's run() calls.
  const PrunePlan* prunePlan = nullptr;
};

/// Partitions a campaign's experiment list across worker threads, each
/// owning its own engine replica, and merges the per-experiment outcomes in
/// index order. Replicas are built lazily on first run() - concurrently, so
/// the one-time setup cost (bitstream download + golden run) is also paid in
/// parallel - and are reused by subsequent run() calls.
class ParallelCampaignRunner {
 public:
  explicit ParallelCampaignRunner(EngineFactory factory,
                                  ParallelOptions options = {});

  /// Resolved worker count (after 0 -> hardware concurrency).
  unsigned jobs() const { return jobs_; }

  CampaignResult run(const CampaignSpec& spec);

 private:
  void ensureEngines(unsigned count);

  EngineFactory factory_;
  ParallelOptions opt_;
  unsigned jobs_;
  std::vector<std::unique_ptr<CampaignEngine>> engines_;
};

}  // namespace fades::campaign
