// Deterministic case generators for differential-oracle fuzzing.
//
// Two design families, both pure functions of the CaseSpec:
//  - parameterized random sequential circuits over the rtl::builder API
//    (registers + combinational soup + optional RAM), with a configurable
//    number of HDL-named intermediate signals so VFIT sees a simulator-level
//    combinational target population;
//  - random-but-valid MC8051 programs (straight-line code over the
//    implemented ISA subset) emitted through src/mc8051/assembler and run on
//    the gate-level core.
//
// generateCase() draws a full CaseSpec - design, workload length and an
// injection spec spanning all four fault models - from a single seed, and
// seedCorpus() enumerates the committed regression corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "diffcheck/case_spec.hpp"
#include "netlist/netlist.hpp"

namespace fades::diffcheck {

/// Build the case's netlist. RTL cases come from the parameterized random
/// generator; MC8051 cases assemble `program` and instantiate the gate-level
/// core with it in ROM. Throws FadesError on an invalid spec (bad program,
/// zero-width registers, ...).
netlist::Netlist buildDesign(const CaseSpec& c);

/// Observed output ports of the case's design ("out" for RTL, p0/p1 for the
/// microcontroller).
std::vector<std::string> observedOutputs(const CaseSpec& c);

/// Generate a random straight-line MC8051 program of roughly `maxInstr`
/// instructions. Always terminates with a completion marker on P0 and an
/// idle loop; every prefix of the body is also a valid program, which is
/// what makes line-removal shrinking sound.
std::vector<std::string> generateProgram(common::Rng& rng, unsigned maxInstr);

/// Workload length for an MC8051 case: ISS cycles until the program parks on
/// its idle loop, plus a small margin (capped for runaway programs).
std::uint64_t programCycles(const std::vector<std::string>& program);

/// Draw one full case from a seed. Deterministic; successive seeds cover the
/// fault-model x target-class matrix (including FADES-only delay cases) with
/// a bias toward cheap RTL designs over full microcontroller builds.
CaseSpec generateCase(std::uint64_t seed);

/// The committed seed corpus: ~20 deterministic cases covering every fault
/// model x target resource pair on both design families. The corpus files
/// under corpus/diffcheck/ are these specs serialized; regenerate them with
/// `fuzz_campaign --emit-corpus`.
std::vector<CaseSpec> seedCorpus();

}  // namespace fades::diffcheck
