file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_speedup.dir/bench_table2_speedup.cpp.o"
  "CMakeFiles/bench_table2_speedup.dir/bench_table2_speedup.cpp.o.d"
  "bench_table2_speedup"
  "bench_table2_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
