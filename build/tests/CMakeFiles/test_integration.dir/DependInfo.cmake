
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/test_integration.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc8051/CMakeFiles/fades_mc8051.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/fades_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fades_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/fades_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/fades_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/fades_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fades_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
