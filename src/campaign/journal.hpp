// Crash-safe campaign checkpoint journal.
//
// A campaign over millions of experiments cannot afford to lose hours of
// completed work to a host crash. The journal is an append-only JSONL file:
// one header line binding the file to a campaign spec, then one line per
// completed experiment outcome keyed by index. Appends are a single
// fwrite() of a full line (atomic with respect to readers on POSIX when the
// line fits the stdio buffer we flush immediately), so a killed process
// leaves at worst one torn trailing line - which load() ignores. Resuming a
// campaign replays the journaled outcomes through the same index-ordered
// fold as live execution, so a resumed run's artifacts are byte-identical
// to an uninterrupted run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "campaign/types.hpp"
#include "obs/json.hpp"

namespace fades::campaign {

/// Durability of each journal append. Never = fflush only (survives process
/// death, not power loss); EachRecord = fflush + fsync per line.
enum class FsyncPolicy : std::uint8_t { Never, EachRecord };

class CampaignJournal {
 public:
  explicit CampaignJournal(std::string path,
                           FsyncPolicy fsync = FsyncPolicy::Never)
      : path_(std::move(path)), fsync_(fsync) {}
  ~CampaignJournal() { close(); }
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Open the journal for `spec`. With resume set, committed outcome lines
  /// of an existing journal for the SAME spec are loaded into completed()
  /// and subsequent appends extend the file; a journal written for a
  /// different spec raises ConfigError (resuming someone else's campaign
  /// would silently fabricate results). Without resume - or when the file
  /// is missing, empty, or lacks a committed header - the journal is
  /// recreated from scratch.
  void open(const CampaignSpec& spec, bool resume);

  /// Append one completed outcome. Thread-safe; the line is committed (at
  /// least to the OS) before this returns.
  void append(const ExperimentOutcome& outcome);

  /// Outcomes recovered by open(resume=true), keyed by experiment index.
  const std::map<std::uint64_t, ExperimentOutcome>& completed() const {
    return completed_;
  }
  bool has(std::uint64_t index) const {
    return completed_.find(index) != completed_.end();
  }

  const std::string& path() const { return path_; }

  void close();

  /// Atomically replace the journal's committed contents (tmp + rename)
  /// with `spec`'s header plus `outcomes` in index order, then reopen for
  /// append. Used when previously committed lines turn out to be wrong -
  /// e.g. a byzantine worker's results being expunged after detection - so
  /// a crash at any instant leaves either the old or the new journal, never
  /// a mix.
  void rewrite(const CampaignSpec& spec,
               const std::map<std::uint64_t, ExperimentOutcome>& outcomes);

  // Serialization used by the journal lines; exposed for tests and reused
  // verbatim by the fades.wire/1 service protocol so outcomes survive the
  // coordinator<->worker trip bit-exactly, like they survive checkpointing.
  static obs::Json outcomeJson(const ExperimentOutcome& outcome);
  static bool outcomeFromJson(const obs::Json& j, ExperimentOutcome& out);
  static std::string outcomeLine(const ExperimentOutcome& outcome);
  static bool parseOutcomeLine(const std::string& line,
                               ExperimentOutcome& out);

  /// Longest line open() accepts before rejecting the file as corrupt or
  /// adversarial (a record line is a few hundred bytes; anything near this
  /// bound is not a journal).
  static constexpr std::size_t kMaxLineBytes = 1u << 20;

 private:
  std::string path_;
  FsyncPolicy fsync_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::map<std::uint64_t, ExperimentOutcome> completed_;
};

}  // namespace fades::campaign
