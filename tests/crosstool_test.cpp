// Cross-tool property tests: FADES (run-time reconfiguration on the FPGA)
// and VFIT (simulator commands on the event-driven simulator) must classify
// IDENTICAL faults identically whenever the fault semantics is exact on
// both sides - the foundation of the paper's Table 3 validation.
//
// Random sequential circuits are generated, implemented, and attacked by
// both tools with the same bit-flips at the same instants.
#include <gtest/gtest.h>

#include <memory>

#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"
#include "vfit/vfit.hpp"

namespace fades {
namespace {

using campaign::FaultModel;
using campaign::Outcome;
using campaign::TargetClass;
using common::Rng;
using netlist::Netlist;
using netlist::Unit;
using rtl::Builder;
using rtl::Bus;

Netlist randomSequentialCircuit(std::uint64_t seed) {
  Rng rng(seed);
  Builder b;
  b.setUnit(Unit::Registers);
  std::vector<rtl::Register> regs;
  const unsigned nRegs = 2 + static_cast<unsigned>(rng.below(3));
  for (unsigned r = 0; r < nRegs; ++r) {
    regs.push_back(
        b.makeRegister("r" + std::to_string(r), 4, rng.below(16)));
  }
  std::vector<rtl::NetId> pool;
  for (const auto& r : regs) {
    pool.insert(pool.end(), r.q.begin(), r.q.end());
  }
  b.setUnit(Unit::Alu);
  for (unsigned g = 0; g < 25; ++g) {
    const auto pick = [&] { return pool[rng.below(pool.size())]; };
    rtl::NetId out;
    switch (rng.below(4)) {
      case 0: out = b.land(pick(), pick()); break;
      case 1: out = b.lxor(pick(), pick()); break;
      case 2: out = b.lnot(pick()); break;
      default: out = b.lmux(pick(), pick(), pick()); break;
    }
    pool.push_back(out);
  }
  b.setUnit(Unit::Registers);
  for (auto& r : regs) {
    Bus d;
    for (int k = 0; k < 4; ++k) d.push_back(pool[rng.below(pool.size())]);
    b.connect(r, d);
  }
  Bus out;
  for (int k = 0; k < 6; ++k) out.push_back(pool[rng.below(pool.size())]);
  b.output("out", out);
  return b.finish();
}

class CrossToolAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CrossToolAgreement, BitFlipsClassifyIdentically) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = randomSequentialCircuit(seed);
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
  const std::uint64_t cycles = 48;

  fpga::Device device(impl.spec);
  core::FadesOptions fOpt;
  fOpt.observedOutputs = {"out"};
  core::FadesTool fades(device, impl, cycles, fOpt);

  vfit::VfitOptions vOpt;
  vOpt.observedOutputs = {"out"};
  vfit::VfitTool vfitTool(nl, cycles, vOpt);

  // Every flop, several instants: identical classification.
  for (std::uint32_t fi = 0; fi < impl.flops.size(); ++fi) {
    const auto vfitFlop = nl.findFlop(impl.flops[fi].name);
    ASSERT_TRUE(vfitFlop.has_value()) << impl.flops[fi].name;
    for (const std::uint64_t cycle : {1ull, 13ull, 30ull, 44ull}) {
      Rng r1(7), r2(7);
      const Outcome of =
          fades.runExperiment(FaultModel::BitFlip, TargetClass::SequentialFF,
                              fi, cycle, 1.0, r1);
      const Outcome ov = vfitTool.runExperiment(
          FaultModel::BitFlip, TargetClass::SequentialFF, vfitFlop->value,
          cycle, 1.0, r2);
      ASSERT_EQ(of, ov) << "seed " << seed << " flop "
                        << impl.flops[fi].name << " cycle " << cycle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossToolAgreement, ::testing::Range(1, 9));

class CrossToolMemory : public ::testing::TestWithParam<int> {};

TEST_P(CrossToolMemory, MemoryBitFlipsClassifyIdentically) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  // A circuit that writes AND reads its RAM so memory faults can surface.
  Builder b;
  b.setUnit(Unit::Fsm);
  rtl::Register cnt = b.makeRegister("cnt", 4, 0);
  b.connect(cnt, b.increment(cnt.q));
  b.setUnit(Unit::Ram);
  Bus dout = b.ram("m", 4, 8, cnt.q, b.zeroExtend(cnt.q, 8),
                   cnt.q[0]);  // write on odd counts
  b.output("out", dout);
  const Netlist nl = b.finish();
  const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
  const std::uint64_t cycles = 40;

  fpga::Device device(impl.spec);
  core::FadesOptions fOpt;
  fOpt.observedOutputs = {"out"};
  core::FadesTool fades(device, impl, cycles, fOpt);
  vfit::VfitOptions vOpt;
  vOpt.observedOutputs = {"out"};
  vfit::VfitTool vfitTool(nl, cycles, vOpt);

  Rng rng(seed);
  const auto* site = impl.findRam("m");
  ASSERT_NE(site, nullptr);
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned row = static_cast<unsigned>(rng.below(16));
    const unsigned bit = static_cast<unsigned>(rng.below(8));
    const auto cycle = rng.below(cycles);
    const auto [block, contentBit] = site->bitAddress(row, bit);
    const std::uint32_t fadesTarget = (block << 16) | contentBit;
    const std::uint32_t vfitTarget =
        (site->ram.value << 24) | (row << 8) | bit;
    Rng r1(3), r2(3);
    const Outcome of = fades.runExperiment(FaultModel::BitFlip,
                                           TargetClass::MemoryBlockBit,
                                           fadesTarget, cycle, 1.0, r1);
    const Outcome ov = vfitTool.runExperiment(FaultModel::BitFlip,
                                              TargetClass::MemoryBlockBit,
                                              vfitTarget, cycle, 1.0, r2);
    ASSERT_EQ(of, ov) << "seed " << seed << " row " << row << " bit " << bit
                      << " cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossToolMemory, ::testing::Range(1, 5));

TEST(CrossTool, GoldenTracesAgree) {
  // Before any fault: both tools' golden observations must match, output
  // word for output word, for every circuit seed.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist nl = randomSequentialCircuit(seed);
    const auto impl = synth::implement(nl, fpga::DeviceSpec::small());
    fpga::Device device(impl.spec);
    core::FadesOptions fOpt;
    fOpt.observedOutputs = {"out"};
    core::FadesTool fades(device, impl, 48, fOpt);
    vfit::VfitOptions vOpt;
    vOpt.observedOutputs = {"out"};
    vfit::VfitTool vfitTool(nl, 48, vOpt);
    ASSERT_EQ(fades.golden().outputs, vfitTool.golden().outputs)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace fades
