// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, snapshotable to JSON.
//
// Instruments are created once through the registry and then updated
// lock-free (relaxed atomics), so hot paths - configuration-port traffic,
// simulator event loops - pay one atomic add per update. Label sets ride in
// the instrument name, Prometheus-style: "campaign.experiments{outcome=failure}".
// References returned by the registry stay valid for the registry's
// lifetime; reset() zeroes values without invalidating them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace fades::obs {

class Counter {
 public:
  void inc() noexcept { add(1); }
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with `le` (less-or-equal) bucket semantics: an
/// observation lands in the first bucket whose upper bound is >= the value;
/// values above the last bound go to the implicit overflow bucket.
///
/// NaN policy: NaN observations are DROPPED, never bucketed. (With
/// std::lower_bound every comparison against NaN is false, so a NaN would
/// silently land in the first bucket and poison `sum`.) Dropped NaNs are
/// tallied per-histogram (nanCount(), surfaced as "nan_dropped" in the JSON
/// snapshot) and in the process-wide "obs.histogram_nan_dropped" counter for
/// registry-created histograms, so a producer emitting NaNs is visible
/// instead of silently skewing the distribution.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; one entry per bound plus the trailing overflow.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// NaN observations dropped (not part of count()).
  std::uint64_t nanCount() const {
    return nanCount_.load(std::memory_order_relaxed);
  }
  /// Process-wide counter bumped alongside the per-histogram NaN tally;
  /// wired by the registry (may be null for standalone histograms).
  void setNanCounter(Counter* c) noexcept { nanCounter_ = c; }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;  // ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> nanCount_{0};
  std::atomic<double> sum_{0.0};
  Counter* nanCounter_ = nullptr;
};

class Registry {
 public:
  /// The process-wide registry every instrumented subsystem reports into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds apply on first creation; later calls return the existing
  /// instrument unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upperBounds);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with names
  /// sorted for stable output.
  Json snapshotJson() const;

  /// Zero every instrument, keeping identities (cached references remain
  /// valid) - used between benchmark sections and in tests.
  void reset();

 private:
  mutable std::mutex mu_;  // guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fades::obs
