file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lsr_gsr.dir/bench_ablation_lsr_gsr.cpp.o"
  "CMakeFiles/bench_ablation_lsr_gsr.dir/bench_ablation_lsr_gsr.cpp.o.d"
  "bench_ablation_lsr_gsr"
  "bench_ablation_lsr_gsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lsr_gsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
