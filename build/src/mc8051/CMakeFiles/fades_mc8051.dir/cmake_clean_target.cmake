file(REMOVE_RECURSE
  "libfades_mc8051.a"
)
