// Quickstart: the complete FADES flow on a small circuit.
//
//   1. Describe a circuit with the RTL kit (the "HDL model").
//   2. Synthesize it onto the generic FPGA (techmap, place, route, bitgen).
//   3. Configure a device and run the golden workload.
//   4. Inject a transient fault through run-time reconfiguration.
//   5. Classify the outcome against the golden run.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "campaign/types.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"

using namespace fades;

int main() {
  // -- 1. The model: an 8-bit counter with a comparator alarm ---------------
  rtl::Builder b;
  b.setUnit(netlist::Unit::Registers);
  rtl::Register count = b.makeRegister("count", 8, 0);
  b.setUnit(netlist::Unit::Alu);
  b.connect(count, b.increment(count.q));
  auto alarm = b.eqConst(count.q, 0xAA);  // fires once per 256 cycles
  b.output("count", count.q);
  b.output("alarm", alarm);
  netlist::Netlist model = b.finish();
  std::printf("model: %zu gates, %zu flip-flops\n", model.gateCount(),
              model.flopCount());

  // -- 2. Synthesis & implementation ---------------------------------------
  const auto impl = synth::implement(model, fpga::DeviceSpec::small());
  std::printf("implemented: %u LUTs, %u FFs, %u routed nets, %zu config "
              "bits set\n",
              impl.stats.luts, impl.stats.flops, impl.stats.routedNets,
              impl.stats.configBits);

  // -- 3. Configure a device; FADES records the golden run -----------------
  fpga::Device device(impl.spec);
  core::FadesOptions options;
  options.observedOutputs = {"count", "alarm"};
  core::FadesTool fades(device, impl, /*runCycles=*/300, options);
  std::printf("golden run recorded: %zu cycles, setup download %.2f s "
              "(modeled)\n",
              fades.golden().outputs.size(), fades.setupSeconds());

  // -- 4+5. Inject one fault of each transient model ------------------------
  common::Rng rng(1);
  struct Shot {
    campaign::FaultModel model;
    campaign::TargetClass cls;
    const char* what;
  };
  for (const Shot& s :
       {Shot{campaign::FaultModel::BitFlip,
             campaign::TargetClass::SequentialFF, "bit-flip in a counter FF"},
        Shot{campaign::FaultModel::Pulse,
             campaign::TargetClass::CombinationalLut,
             "pulse in the comparator logic"},
        Shot{campaign::FaultModel::Indetermination,
             campaign::TargetClass::SequentialFF,
             "indetermination held on a FF"},
        Shot{campaign::FaultModel::Delay,
             campaign::TargetClass::SequentialLine,
             "delay on a registered line"}}) {
    const auto pool = fades.targets(s.model, s.cls, netlist::Unit::None);
    const auto target = pool[rng.below(pool.size())];
    double seconds = 0;
    const auto outcome = fades.runExperiment(
        s.model, s.cls, target, /*injectCycle=*/40, /*duration=*/5.0, rng,
        &seconds);
    std::printf("%-34s -> %-7s (target %s, %.3f s modeled emulation time)\n",
                s.what, campaign::toString(outcome),
                fades.targetName(s.cls, target).c_str(), seconds);
  }
  return 0;
}
