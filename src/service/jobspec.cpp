#include "service/jobspec.hpp"

#include <utility>

#include "campaign/artifact.hpp"
#include "common/error.hpp"
#include "core/autonomous.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/iss.hpp"
#include "mc8051/workloads.hpp"
#include "prune/prune.hpp"
#include "rtl/builder.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "service/wire.hpp"
#include "sim/engine.hpp"
#include "vfit/vfit.hpp"

namespace fades::service {

using campaign::CampaignSpec;
using common::ErrorKind;
using common::require;
using obs::Json;

namespace {

constexpr const char* kJobSchema = "fades.job/1";

bool readString(const Json& j, const char* key, std::string& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isString()) return false;
  out = f->asString();
  return true;
}

bool readNumber(const Json& j, const char* key, double& out) {
  const Json* f = j.find(key);
  if (f == nullptr || !f->isNumber()) return false;
  out = f->asNumber();
  return true;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

Json toJson(const JobSpec& job) {
  Json j = Json::object();
  j.set("schema", Json(std::string(kJobSchema)));
  j.set("tool", Json(job.tool));
  j.set("engine", Json(job.engine));
  j.set("workload", Json(job.workload));
  j.set("spec", campaign::toJson(job.spec));
  j.set("link_fault_rate", Json(job.linkFaultRate));
  j.set("keep_records", Json(job.keepRecords));
  // Emitted only when set so every pre-pruning job keeps its fingerprint
  // (the journal filename and worker cache key).
  if (job.prune) j.set("prune", Json(true));
  j.set("name", Json(job.name));
  return j;
}

bool jobSpecFromJson(const Json& j, JobSpec& out, std::string* error) {
  if (!j.isObject()) return fail(error, "job spec is not an object");
  out = JobSpec{};
  std::string schema;
  if (!readString(j, "schema", schema) || schema != kJobSchema) {
    return fail(error, "job spec is not " + std::string(kJobSchema));
  }
  if (!readString(j, "tool", out.tool) ||
      !readString(j, "engine", out.engine) ||
      !readString(j, "workload", out.workload) ||
      !readString(j, "name", out.name)) {
    return fail(error, "job spec misses tool/engine/workload/name");
  }
  if (!readNumber(j, "link_fault_rate", out.linkFaultRate)) {
    return fail(error, "job spec misses link_fault_rate");
  }
  const Json* keep = j.find("keep_records");
  if (keep == nullptr) return fail(error, "job spec misses keep_records");
  out.keepRecords = keep->asBool();
  if (const Json* prune = j.find("prune")) out.prune = prune->asBool();

  const Json* spec = j.find("spec");
  if (spec == nullptr || !spec->isObject()) {
    return fail(error, "job spec misses spec");
  }
  std::string model;
  std::string targets;
  if (!readString(*spec, "model", model) ||
      !campaign::faultModelFromString(model, out.spec.model)) {
    return fail(error, "spec has no valid fault model");
  }
  if (!readString(*spec, "targets", targets) ||
      !campaign::targetClassFromString(targets, out.spec.targets)) {
    return fail(error, "spec has no valid target class");
  }
  const Json* unit = spec->find("unit");
  const Json* experiments = spec->find("experiments");
  const Json* seed = spec->find("seed");
  if (unit == nullptr || !unit->isNumber() || experiments == nullptr ||
      !experiments->isNumber() || seed == nullptr || !seed->isNumber()) {
    return fail(error, "spec misses unit/experiments/seed");
  }
  out.spec.unit = static_cast<int>(unit->asInt());
  out.spec.experiments = static_cast<unsigned>(experiments->asInt());
  out.spec.seed = static_cast<std::uint64_t>(seed->asInt());
  const Json* band = spec->find("band");
  if (band == nullptr || !band->isObject() ||
      !readString(*band, "label", out.spec.band.label) ||
      !readNumber(*band, "min_cycles", out.spec.band.minCycles) ||
      !readNumber(*band, "max_cycles", out.spec.band.maxCycles)) {
    return fail(error, "spec has no valid duration band");
  }
  return true;
}

void validate(const JobSpec& job) {
  require(job.tool == "fades" || job.tool == "vfit" ||
              job.tool == "autonomous",
          ErrorKind::InvalidArgument, "unknown tool '" + job.tool + "'");
  require(job.engine == "event" || job.engine == "compiled",
          ErrorKind::InvalidArgument, "unknown engine '" + job.engine + "'");
  require(job.tool != "fades" || job.engine == "event",
          ErrorKind::InvalidArgument,
          "the compiled engine requires tool vfit or autonomous (FADES "
          "drives the FPGA)");
  require(job.workload == "bubblesort6" || job.workload == "demo",
          ErrorKind::InvalidArgument,
          "unknown workload '" + job.workload + "'");
  require(job.spec.experiments > 0, ErrorKind::InvalidArgument,
          "campaign needs at least one experiment");
  require(job.linkFaultRate >= 0.0 && job.linkFaultRate < 1.0,
          ErrorKind::InvalidArgument, "link fault rate must be in [0, 1)");
  require(job.linkFaultRate == 0.0 || job.tool == "fades",
          ErrorKind::InvalidArgument,
          "link faults require the fades tool (the other injectors move no "
          "frames over a board link)");
  // The wire format carries the pool size only (matching the journal spec
  // binding); explicit pools stay a single-process feature.
  require(job.spec.targetPool.empty(), ErrorKind::InvalidArgument,
          "explicit target pools are not supported by the service");
  require(!job.prune || job.tool == "fades" || job.tool == "vfit",
          ErrorKind::InvalidArgument,
          "pruning requires the fades or vfit tool (the autonomous backend "
          "cannot synthesize collapsed outcomes)");
  // Link faults can quarantine a representative that its collapsed members
  // would have survived, which would break byte-identity with the unpruned
  // campaign - the property pruning exists to preserve.
  require(!job.prune || job.linkFaultRate == 0.0, ErrorKind::InvalidArgument,
          "pruning requires a reliable link (no --link-faults)");
}

std::string defaultName(const JobSpec& job) {
  std::string model = "bitflip";
  switch (job.spec.model) {
    case campaign::FaultModel::BitFlip: model = "bitflip"; break;
    case campaign::FaultModel::Pulse: model = "pulse"; break;
    case campaign::FaultModel::Delay: model = "delay"; break;
    case campaign::FaultModel::Indetermination: model = "indet"; break;
  }
  std::string targets = "ff";
  switch (job.spec.targets) {
    case campaign::TargetClass::SequentialFF: targets = "ff"; break;
    case campaign::TargetClass::MemoryBlockBit: targets = "memory"; break;
    case campaign::TargetClass::CombinationalLut: targets = "lut"; break;
    case campaign::TargetClass::CbInputLine: targets = "cbinput"; break;
    case campaign::TargetClass::SequentialLine: targets = "seqline"; break;
    case campaign::TargetClass::CombinationalLine: targets = "combline"; break;
  }
  std::string unit = "any";
  switch (static_cast<netlist::Unit>(job.spec.unit)) {
    case netlist::Unit::None: unit = "any"; break;
    case netlist::Unit::Registers: unit = "registers"; break;
    case netlist::Unit::Ram: unit = "ram"; break;
    case netlist::Unit::Alu: unit = "alu"; break;
    case netlist::Unit::MemCtrl: unit = "mem"; break;
    case netlist::Unit::Fsm: unit = "fsm"; break;
  }
  return model + "_" + targets + "_" + unit;
}

std::string fingerprint(const JobSpec& job) {
  return fnv1a64Hex(toJson(job).dump());
}

namespace {

/// The robustness/parallel test-suite mini design: an 8-bit LFSR, a 4-bit
/// counter, their sum on "out", and a small write-only RAM log - every
/// functional unit represented, built in milliseconds. The service's fast
/// workload for protocol and chaos tests.
netlist::Netlist buildDemoNetlist() {
  rtl::Builder b;
  b.setUnit(netlist::Unit::Registers);
  rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
  b.setUnit(netlist::Unit::Fsm);
  rtl::Register cnt = b.makeRegister("cnt", 4, 0);
  b.setUnit(netlist::Unit::Registers);
  auto fb =
      b.lxor(lfsr.q[7], b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
  rtl::Bus next{fb};
  for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
  b.connect(lfsr, next);
  b.setUnit(netlist::Unit::Fsm);
  b.connect(cnt, b.increment(cnt.q));
  b.setUnit(netlist::Unit::Alu);
  auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
  b.setUnit(netlist::Unit::Ram);
  b.ram("log", 4, 8, cnt.q, lfsr.q, b.one());
  b.output("out", sum.sum);
  return b.finish();
}

}  // namespace

std::shared_ptr<CampaignSystem> buildSystem(const JobSpec& job,
                                            const BuildKnobs& knobs) {
  validate(job);
  auto sys = std::make_shared<CampaignSystem>();
  sys->job = job;

  std::vector<std::string> observed;
  std::shared_ptr<campaign::InstructionTrace> trace;
  if (job.workload == "demo") {
    sys->runCycles = 64;
    sys->netlist = buildDemoNetlist();
    observed = {"out"};
  } else {
    const auto workload = mc8051::bubblesort(6);
    sys->runCycles = workload.cycles;
    sys->netlist = mc8051::buildCore(workload.bytes);
    observed = {"p0", "p1"};
    if (job.keepRecords) {
      // Golden-run PC attribution, shared across replicas - the same trace
      // campaign_8051 attaches, so records match field for field.
      mc8051::Iss iss(workload.bytes);
      const auto samples = iss.tracePcPerCycle(workload.cycles);
      trace = std::make_shared<campaign::InstructionTrace>();
      trace->reserve(samples.size());
      for (const auto& s : samples) {
        trace->push_back(campaign::InstructionSample{s.pc, s.opcode});
      }
    }
  }

  sys->observedOutputs = observed;

  sim::EngineKind engineKind = sim::EngineKind::EventDriven;
  if (job.engine == "compiled") {
    const bool ok = sim::engineKindFromString(job.engine, engineKind);
    require(ok, ErrorKind::InvalidArgument, "unknown engine " + job.engine);
  }

  if (job.tool == "vfit") {
    vfit::VfitOptions vopt;
    vopt.observedOutputs = observed;
    vopt.keepRecords = job.keepRecords;
    vopt.engine = engineKind;
    sys->factory =
        vfit::vfitEngineFactory(sys->netlist, sys->runCycles, vopt);
  } else if (job.tool == "autonomous") {
    core::AutonomousOptions aopt;
    aopt.observedOutputs = observed;
    aopt.keepRecords = job.keepRecords;
    aopt.engine = engineKind;
    sys->factory =
        core::autonomousEngineFactory(sys->netlist, sys->runCycles, aopt);
  } else {
    sys->impl = synth::implement(sys->netlist,
                                 job.workload == "demo"
                                     ? fpga::DeviceSpec::small()
                                     : fpga::DeviceSpec::virtex1000Like());
    core::FadesOptions options;
    options.observedOutputs = observed;
    options.keepRecords = job.keepRecords;
    options.sessionFrameCache = knobs.sessionFrameCache;
    options.progressInterval = 0;
    options.instructionTrace = std::move(trace);
    if (job.linkFaultRate > 0.0) {
      options.linkFaults.readCrcRate = job.linkFaultRate;
      options.linkFaults.writeFailRate = job.linkFaultRate;
      options.linkFaults.timeoutRate = job.linkFaultRate / 10.0;
    }
    sys->factory =
        core::fadesEngineFactory(*sys->impl, sys->runCycles, options);
  }
  return sys;
}

campaign::PrunePlan buildPrunePlan(const CampaignSystem& sys) {
  const JobSpec& job = sys.job;
  require(job.tool == "fades" || job.tool == "vfit",
          ErrorKind::InvalidArgument,
          "pruning requires the fades or vfit tool");

  sim::Simulator golden(sys.netlist);
  const sim::GoldenTrace trace =
      sim::GoldenTrace::record(golden, sys.netlist, sys.runCycles);

  prune::AnalysisInputs in;
  in.netlist = &sys.netlist;
  in.trace = &trace;
  in.runCycles = sys.runCycles;
  in.observedOutputs = sys.observedOutputs;

  // One engine replica provides the pool enumeration and (for fades) the
  // target-name convention; both are pure functions of the job, so the
  // resulting plan is too.
  const auto engine = sys.factory();
  require(engine != nullptr, ErrorKind::InvalidArgument,
          "engine factory returned null");
  const auto pool = engine->enumeratePool(job.spec);
  if (job.tool == "fades") {
    auto* fades = static_cast<core::FadesCampaignEngine*>(engine.get());
    in.decode = prune::fadesDecoder(*sys.impl, job.spec.targets);
    in.name = [tool = &fades->tool(), cls = job.spec.targets](
                  std::uint32_t handle) {
      return tool->targetName(cls, handle);
    };
  } else {
    in.decode = prune::vfitDecoder(sys.netlist, job.spec.targets);
    in.name = [](std::uint32_t handle) { return std::to_string(handle); };
    // VFIT's cost is a pure function of (model, window) - command counting
    // - so outcome-pinning fates merge across the whole target pool.
    in.uniformCostAcrossTargets = true;
  }
  return prune::buildPlan(job.spec, pool, in);
}

std::string artifactText(const JobSpec& job,
                         const campaign::CampaignResult& result) {
  const std::string name = job.name.empty() ? defaultName(job) : job.name;
  // Metrics excluded for the same reason campaign_8051 excludes them: they
  // reflect scheduling, which would break byte-identity across worker
  // counts. dump(2) + "\n" is exactly RunArtifact::writeJson's encoding.
  const auto artifact =
      campaign::toRunArtifact(result, name, /*includeMetrics=*/false);
  return artifact.toJson().dump(2) + "\n";
}

}  // namespace fades::service
