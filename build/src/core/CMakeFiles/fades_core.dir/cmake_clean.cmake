file(REMOVE_RECURSE
  "CMakeFiles/fades_core.dir/fades.cpp.o"
  "CMakeFiles/fades_core.dir/fades.cpp.o.d"
  "CMakeFiles/fades_core.dir/lut_circuit.cpp.o"
  "CMakeFiles/fades_core.dir/lut_circuit.cpp.o.d"
  "CMakeFiles/fades_core.dir/permanent.cpp.o"
  "CMakeFiles/fades_core.dir/permanent.cpp.o.d"
  "libfades_core.a"
  "libfades_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
