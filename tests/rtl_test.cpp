#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "rtl/builder.hpp"
#include "sim/simulator.hpp"

namespace fades::rtl {
namespace {

using common::FadesError;
using netlist::Netlist;
using sim::Simulator;

/// Build a two-operand combinational device and exhaustively compare it to a
/// reference function over all (a, b, cin) combinations at the given width.
struct CombFixture {
  Netlist nl;
  std::unique_ptr<Simulator> simulator;

  template <typename BuildFn>
  void build(unsigned width, BuildFn&& fn) {
    Builder b;
    Bus a = b.input("a", width);
    Bus bb = b.input("b", width);
    NetId cin = b.inputBit("cin");
    fn(b, a, bb, cin);
    nl = b.finish();
    simulator = std::make_unique<Simulator>(nl);
  }

  std::uint64_t eval(std::uint64_t a, std::uint64_t b, bool cin,
                     const std::string& out) {
    simulator->setInput("a", a);
    simulator->setInput("b", b);
    simulator->setInput("cin", cin);
    simulator->settle();
    return simulator->portValue(out);
  }
};

class AdderWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdderWidthTest, AddMatchesReferenceExhaustively) {
  const unsigned w = GetParam();
  CombFixture f;
  f.build(w, [](Builder& b, const Bus& a, const Bus& bb, NetId cin) {
    auto r = b.add(a, bb, cin);
    b.output("sum", r.sum);
    b.output("cout", r.carryOut);
    b.output("ov", r.overflow);
  });
  const std::uint64_t mask = (1ULL << w) - 1;
  for (std::uint64_t a = 0; a <= mask; ++a) {
    for (std::uint64_t bb = 0; bb <= mask; ++bb) {
      for (int cin = 0; cin <= 1; ++cin) {
        const std::uint64_t full = a + bb + static_cast<std::uint64_t>(cin);
        EXPECT_EQ(f.eval(a, bb, cin, "sum"), full & mask);
        EXPECT_EQ(f.simulator->portValue("cout"), (full >> w) & 1);
        // Signed overflow reference.
        const auto sign = [&](std::uint64_t v) { return (v >> (w - 1)) & 1; };
        const bool ov =
            sign(a) == sign(bb) && sign(full & mask) != sign(a);
        EXPECT_EQ(f.simulator->portValue("ov"), ov ? 1u : 0u)
            << a << "+" << bb << "+" << cin;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthTest, ::testing::Values(1u, 4u, 6u),
                         ::testing::PrintToStringParamName());

class SubWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SubWidthTest, SubMatchesReferenceExhaustively) {
  const unsigned w = GetParam();
  CombFixture f;
  f.build(w, [](Builder& b, const Bus& a, const Bus& bb, NetId cin) {
    auto r = b.sub(a, bb, cin);
    b.output("diff", r.sum);
    b.output("borrow", r.carryOut);
  });
  const std::uint64_t mask = (1ULL << w) - 1;
  for (std::uint64_t a = 0; a <= mask; ++a) {
    for (std::uint64_t bb = 0; bb <= mask; ++bb) {
      for (int bin = 0; bin <= 1; ++bin) {
        const std::uint64_t ref = a - bb - static_cast<std::uint64_t>(bin);
        EXPECT_EQ(f.eval(a, bb, bin, "diff"), ref & mask);
        const bool borrow = a < bb + static_cast<std::uint64_t>(bin);
        EXPECT_EQ(f.simulator->portValue("borrow"), borrow ? 1u : 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SubWidthTest, ::testing::Values(1u, 4u, 5u),
                         ::testing::PrintToStringParamName());

TEST(Rtl, AuxCarryMatches8051Semantics) {
  CombFixture f;
  f.build(8, [](Builder& b, const Bus& a, const Bus& bb, NetId cin) {
    auto r = b.add(a, bb, cin);
    b.output("ac", r.auxCarry);
  });
  // 0x08 + 0x08 carries out of bit 3.
  f.eval(0x08, 0x08, false, "ac");
  EXPECT_EQ(f.simulator->portValue("ac"), 1u);
  f.eval(0x07, 0x08, false, "ac");
  EXPECT_EQ(f.simulator->portValue("ac"), 0u);
  f.eval(0x0F, 0x01, false, "ac");
  EXPECT_EQ(f.simulator->portValue("ac"), 1u);
}

TEST(Rtl, BitwiseOpsAndMux) {
  CombFixture f;
  f.build(8, [](Builder& b, const Bus& a, const Bus& bb, NetId cin) {
    b.output("and", b.bAnd(a, bb));
    b.output("or", b.bOr(a, bb));
    b.output("xor", b.bXor(a, bb));
    b.output("nota", b.bNot(a));
    b.output("mux", b.bMux(cin, a, bb));
  });
  for (auto [a, bb] : {std::pair<std::uint64_t, std::uint64_t>{0x5A, 0x3C},
                       {0xFF, 0x00},
                       {0x81, 0x7E}}) {
    f.eval(a, bb, false, "and");
    EXPECT_EQ(f.simulator->portValue("and"), a & bb);
    EXPECT_EQ(f.simulator->portValue("or"), a | bb);
    EXPECT_EQ(f.simulator->portValue("xor"), a ^ bb);
    EXPECT_EQ(f.simulator->portValue("nota"), (~a) & 0xFF);
    EXPECT_EQ(f.simulator->portValue("mux"), bb);  // cin=0 selects whenFalse
    f.eval(a, bb, true, "mux");
    EXPECT_EQ(f.simulator->portValue("mux"), a);
  }
}

TEST(Rtl, IncrementDecrementWrap) {
  CombFixture f;
  f.build(8, [](Builder& b, const Bus& a, const Bus&, NetId) {
    b.output("inc", b.increment(a));
    b.output("dec", b.decrement(a));
  });
  for (std::uint64_t a : {0ULL, 1ULL, 0x7FULL, 0xFFULL, 0x80ULL}) {
    f.eval(a, 0, false, "inc");
    EXPECT_EQ(f.simulator->portValue("inc"), (a + 1) & 0xFF);
    EXPECT_EQ(f.simulator->portValue("dec"), (a - 1) & 0xFF);
  }
}

TEST(Rtl, ComparisonHelpers) {
  CombFixture f;
  f.build(8, [](Builder& b, const Bus& a, const Bus& bb, NetId) {
    b.output("eq", b.eq(a, bb));
    b.output("eq42", b.eqConst(a, 42));
    b.output("zero", b.isZero(a));
  });
  f.eval(42, 42, false, "eq");
  EXPECT_EQ(f.simulator->portValue("eq"), 1u);
  EXPECT_EQ(f.simulator->portValue("eq42"), 1u);
  EXPECT_EQ(f.simulator->portValue("zero"), 0u);
  f.eval(0, 42, false, "eq");
  EXPECT_EQ(f.simulator->portValue("eq"), 0u);
  EXPECT_EQ(f.simulator->portValue("eq42"), 0u);
  EXPECT_EQ(f.simulator->portValue("zero"), 1u);
}

TEST(Rtl, RotatesMatchReference) {
  CombFixture f;
  f.build(8, [](Builder& b, const Bus& a, const Bus&, NetId) {
    b.output("rl", b.rotateLeft1(a));
    b.output("rr", b.rotateRight1(a));
  });
  for (std::uint64_t a : {0x01ULL, 0x80ULL, 0xA5ULL, 0xFFULL}) {
    f.eval(a, 0, false, "rl");
    EXPECT_EQ(f.simulator->portValue("rl"), ((a << 1) | (a >> 7)) & 0xFF);
    EXPECT_EQ(f.simulator->portValue("rr"), ((a >> 1) | (a << 7)) & 0xFF);
  }
}

TEST(Rtl, SelectPriorityOrder) {
  Builder b;
  Bus sel = b.input("sel", 2);
  Bus out = b.select(b.constant(0, 4),
                     {{sel[0], b.constant(1, 4)}, {sel[1], b.constant(2, 4)}});
  b.output("out", out);
  Netlist nl = b.finish();
  Simulator s(nl);
  s.setInput("sel", 0b00);
  s.settle();
  EXPECT_EQ(s.portValue("out"), 0u);
  s.setInput("sel", 0b10);
  s.settle();
  EXPECT_EQ(s.portValue("out"), 2u);
  s.setInput("sel", 0b01);
  s.settle();
  EXPECT_EQ(s.portValue("out"), 1u);
  s.setInput("sel", 0b11);  // first case wins
  s.settle();
  EXPECT_EQ(s.portValue("out"), 1u);
}

TEST(Rtl, DecodeOneHot) {
  Builder b;
  Bus a = b.input("a", 3);
  b.output("hot", b.decodeOneHot(a));
  Netlist nl = b.finish();
  Simulator s(nl);
  for (std::uint64_t v = 0; v < 8; ++v) {
    s.setInput("a", v);
    s.settle();
    EXPECT_EQ(s.portValue("hot"), 1ULL << v);
  }
}

TEST(Rtl, RegisterFeedbackCounter) {
  Builder b;
  Register count = b.makeRegister("count", 4, 0);
  b.connect(count, b.increment(count.q));
  b.output("count", count.q);
  Netlist nl = b.finish();
  Simulator s(nl);
  EXPECT_EQ(s.portValue("count"), 0u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    s.step();
    EXPECT_EQ(s.portValue("count"), i & 0xF);
  }
}

TEST(Rtl, RegisterInitValue) {
  Builder b;
  Register r = b.makeRegister("r", 8, 0xC3);
  b.connect(r, r.q);  // hold
  b.output("r", r.q);
  Netlist nl = b.finish();
  Simulator s(nl);
  EXPECT_EQ(s.portValue("r"), 0xC3u);
  s.step();
  EXPECT_EQ(s.portValue("r"), 0xC3u);
}

TEST(Rtl, DoubleConnectRejected) {
  Builder b;
  Register r = b.makeRegister("r", 1, 0);
  b.connect(r, Bus{b.zero()});
  EXPECT_THROW(b.connect(r, Bus{b.one()}), FadesError);
}

TEST(Rtl, WidthMismatchRejected) {
  Builder b;
  Bus a = b.input("a", 4);
  Bus c = b.input("c", 5);
  EXPECT_THROW(b.bAnd(a, c), FadesError);
  EXPECT_THROW((void)b.add(a, c, {}), FadesError);
}

TEST(Rtl, ZeroExtendAndSlice) {
  Builder b;
  Bus a = b.input("a", 4);
  b.output("ext", b.zeroExtend(a, 8));
  b.output("hi", b.slice(a, 2, 2));
  Netlist nl = b.finish();
  Simulator s(nl);
  s.setInput("a", 0b1101);
  s.settle();
  EXPECT_EQ(s.portValue("ext"), 0b1101u);
  EXPECT_EQ(s.portValue("hi"), 0b11u);
}

TEST(Rtl, FlopNamingConvention) {
  Builder b;
  b.setUnit(netlist::Unit::Registers);
  Register acc = b.makeRegister("acc", 8, 0);
  b.connect(acc, acc.q);
  b.output("acc", acc.q);
  Netlist nl = b.finish();
  EXPECT_TRUE(nl.findFlop("acc[0]").has_value());
  EXPECT_TRUE(nl.findFlop("acc[7]").has_value());
  EXPECT_FALSE(nl.findFlop("acc[8]").has_value());
  EXPECT_EQ(nl.flop(*nl.findFlop("acc[3]")).unit, netlist::Unit::Registers);
}

TEST(Rtl, RomReadThroughSimulator) {
  Builder b;
  Bus addr = b.input("addr", 3);
  std::vector<std::uint8_t> init(8);
  for (int i = 0; i < 8; ++i) init[i] = static_cast<std::uint8_t>(i * 17);
  b.output("data", b.rom("rom", 3, 8, addr, init));
  Netlist nl = b.finish();
  Simulator s(nl);
  for (std::uint64_t a = 0; a < 8; ++a) {
    s.setInput("addr", a);
    s.step();  // synchronous read: value appears after the edge
    EXPECT_EQ(s.portValue("data"), (a * 17) & 0xFF);
  }
}

}  // namespace
}  // namespace fades::rtl
