file(REMOVE_RECURSE
  "CMakeFiles/test_crosstool.dir/crosstool_test.cpp.o"
  "CMakeFiles/test_crosstool.dir/crosstool_test.cpp.o.d"
  "test_crosstool"
  "test_crosstool.pdb"
  "test_crosstool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crosstool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
