# Empty dependencies file for test_fpga_edge.
# This may be replaced when dependencies are built.
