// Ablation (paper Section 4.1): LSR-based vs GSR-based bit-flip injection.
// Both must produce identical fault effects; the GSR path reads back and
// rewrites the set/reset configuration of EVERY used flip-flop, while the
// LSR path touches one CB - the reason the paper proposes LSR as the fast
// mechanism.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("ablation_lsr_gsr", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = timingCount(50);

  core::FadesOptions lsrOpt = sys.fadesOptions();
  core::FadesOptions gsrOpt = sys.fadesOptions();
  gsrOpt.bitFlipVia = core::BitFlipVia::Gsr;

  fpga::Device devL(sys.implementation().spec);
  fpga::Device devG(sys.implementation().spec);
  core::FadesTool lsr(devL, sys.implementation(), sys.workload().cycles,
                      lsrOpt);
  core::FadesTool gsr(devG, sys.implementation(), sys.workload().cycles,
                      gsrOpt);

  common::Rng rng(6);
  const auto pool = lsr.targets(FaultModel::BitFlip,
                                TargetClass::SequentialFF, Unit::None);
  unsigned agree = 0;
  double lsrSec = 0, gsrSec = 0;
  std::uint64_t lsrBytes = 0, gsrBytes = 0;
  for (unsigned e = 0; e < n; ++e) {
    common::Rng e1 = rng.fork(e), e2 = rng.fork(e);
    const auto target = pool[e1.below(pool.size())];
    (void)e2.below(pool.size());
    const auto cycle = e1.below(lsr.runCycles());
    (void)e2.below(gsr.runCycles());
    double s1 = 0, s2 = 0;
    bits::TransferMeter m1, m2;
    const auto o1 = lsr.runExperiment(FaultModel::BitFlip,
                                      TargetClass::SequentialFF, target,
                                      cycle, 1.0, e1, &s1, &m1);
    const auto o2 = gsr.runExperiment(FaultModel::BitFlip,
                                      TargetClass::SequentialFF, target,
                                      cycle, 1.0, e2, &s2, &m2);
    agree += (o1 == o2);
    lsrSec += s1;
    gsrSec += s2;
    lsrBytes += m1.bytesToDevice + m1.bytesFromDevice;
    gsrBytes += m2.bytesToDevice + m2.bytesFromDevice;
  }

  printTable(
      "Ablation - LSR vs GSR bit-flip mechanism (" + std::to_string(n) +
          " identical faults)",
      {"mechanism", "mean s/fault", "mean bytes moved/fault",
       "outcome agreement"},
      {{"LSR (paper's fast path)", common::fixed(lsrSec / n, 3),
        common::fixed(double(lsrBytes) / n, 0),
        common::fixed(100.0 * agree / n, 1) + " %"},
       {"GSR (all-FF readback)", common::fixed(gsrSec / n, 3),
        common::fixed(double(gsrBytes) / n, 0), ""}});
  std::printf("Paper Section 4.1: the GSR drawback is \"the high amount of "
              "information to be transferred\"; measured ratio %.1fx.\n",
              double(gsrBytes) / double(lsrBytes));
  return 0;
}
