// CompiledSimulator lane-packing unit tests: per-lane injection masks land
// in exactly one lane, the golden lane is never perturbed, divergent RAM
// addressing keeps lanes independent, and the scalar Engine view is a
// drop-in for the event-driven simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "netlist/netlist.hpp"
#include "rtl/builder.hpp"
#include "sim/compiled.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace fades::sim {
namespace {

using common::Rng;
using netlist::Netlist;
using rtl::Builder;
using rtl::Bus;

using Word = CompiledSimulator::Word;

// Counter-addressed 16x8 RAM with a known init pattern, plus an xor mixer
// net so gate-output perturbations have somewhere to land.
Netlist ramDesign() {
  Builder b;
  const auto we = b.inputBit("we");
  Bus din = b.input("din", 8);
  rtl::Register ptr = b.makeRegister("ptr", 4, 0);
  b.connect(ptr, b.increment(ptr.q));
  std::vector<std::uint8_t> init(16);
  for (unsigned i = 0; i < 16; ++i) {
    init[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  Bus q = b.ram("mem", 4, 8, ptr.q, din, we, init);
  Bus mixed = b.bXor(q, din);
  b.nameBus("mixed", mixed);
  b.output("data", q);
  b.output("mixed", mixed);
  b.output("ptr", ptr.q);
  return b.finish();
}

TEST(CompiledLanes, XorFlopLandsInExactlyOneLane) {
  const Netlist nl = ramDesign();
  CompiledSimulator cs(nl);
  const auto f = nl.findFlop("ptr[1]");
  ASSERT_TRUE(f.has_value());

  const Word before = cs.flopWord(*f);
  cs.xorFlopLanes(*f, Word{1} << 5);
  const Word after = cs.flopWord(*f);
  EXPECT_EQ(before ^ after, Word{1} << 5);
  // Golden lane (bit 0) untouched, scalar view agrees.
  EXPECT_EQ(before & 1, after & 1);
  EXPECT_EQ(cs.flopState(*f), static_cast<bool>(after & 1));
  // The Q net carries the flip to lane 5 only (after settle).
  cs.settle();
  const Word q = cs.netWord(nl.flops()[f->value].q);
  EXPECT_EQ((q >> 5) & 1, ((before >> 5) & 1) ^ 1);
  EXPECT_EQ(q & 1, before & 1);
}

TEST(CompiledLanes, ForceAndReleaseAreLaneLocal) {
  const Netlist nl = ramDesign();
  CompiledSimulator cs(nl);
  cs.setInput("din", 0x00);
  cs.settle();
  const auto net = nl.findNet("mixed[0]");
  ASSERT_TRUE(net.has_value());

  const Word before = cs.netWord(*net);
  // Pin lane 1 to 1 and lane 2 to 0 regardless of the driver.
  cs.forceLanes(*net, (Word{1} << 1) | (Word{1} << 2), Word{1} << 1);
  cs.settle();
  Word w = cs.netWord(*net);
  EXPECT_EQ((w >> 1) & 1, 1u);
  EXPECT_EQ((w >> 2) & 1, 0u);
  // All other lanes still see the driven value.
  const Word others = ~((Word{1} << 1) | (Word{1} << 2));
  EXPECT_EQ(w & others, before & others);

  cs.releaseLanes(*net, (Word{1} << 1) | (Word{1} << 2));
  cs.settle();
  EXPECT_EQ(cs.netWord(*net), before);
}

TEST(CompiledLanes, XorNetInversionIsLaneLocalAndClears) {
  const Netlist nl = ramDesign();
  CompiledSimulator cs(nl);
  cs.setInput("din", 0x3C);
  cs.settle();
  const auto net = nl.findNet("mixed[3]");
  ASSERT_TRUE(net.has_value());

  const Word before = cs.netWord(*net);
  cs.xorNetLanes(*net, Word{1} << 7);
  cs.settle();
  EXPECT_EQ(cs.netWord(*net) ^ before, Word{1} << 7);
  cs.clearXorNetLanes(*net, Word{1} << 7);
  cs.settle();
  EXPECT_EQ(cs.netWord(*net), before);
}

TEST(CompiledLanes, XorRamBitIsLaneLocal) {
  const Netlist nl = ramDesign();
  CompiledSimulator cs(nl);
  const netlist::RamId ram{0};
  const std::uint64_t before = cs.ramWordLane(ram, 6, 3);
  cs.xorRamBitLanes(ram, 6, 4, Word{1} << 3);
  EXPECT_EQ(cs.ramWordLane(ram, 6, 3), before ^ 0x10u);
  for (unsigned lane = 0; lane < CompiledSimulator::kLanes; ++lane) {
    if (lane == 3) continue;
    EXPECT_EQ(cs.ramWordLane(ram, 6, lane), before) << "lane " << lane;
  }
}

TEST(CompiledLanes, DivergentRamAddressesKeepLanesIndependent) {
  const Netlist nl = ramDesign();
  CompiledSimulator cs(nl);
  cs.setInput("we", 0);
  cs.setInput("din", 0);

  // Point each lane's address counter at its own row.
  std::vector<unsigned> rows(CompiledSimulator::kLanes);
  for (unsigned l = 0; l < CompiledSimulator::kLanes; ++l) {
    rows[l] = (l * 5 + 2) % 16;
  }
  for (unsigned bit = 0; bit < 4; ++bit) {
    const auto f = nl.findFlop("ptr[" + std::to_string(bit) + "]");
    ASSERT_TRUE(f.has_value());
    Word values = 0;
    for (unsigned l = 0; l < CompiledSimulator::kLanes; ++l) {
      values |= static_cast<Word>((rows[l] >> bit) & 1) << l;
    }
    cs.depositFlopLanes(*f, ~Word{0}, values);
  }
  cs.step();  // read port latches each lane's own row

  for (unsigned l = 0; l < CompiledSimulator::kLanes; ++l) {
    EXPECT_EQ(cs.portValueLane("data", l),
              static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(rows[l] * 17 + 3)))
        << "lane " << l << " row " << rows[l];
  }

  // Divergent write: lane-local write-enable is not expressible through the
  // scalar ports, but a uniform write with divergent addresses must only
  // touch each lane's own row.
  cs.setInput("we", 1);
  cs.setInput("din", 0xA5);
  // Re-point the (now incremented) counters at the same rows.
  for (unsigned bit = 0; bit < 4; ++bit) {
    const auto f = nl.findFlop("ptr[" + std::to_string(bit) + "]");
    Word values = 0;
    for (unsigned l = 0; l < CompiledSimulator::kLanes; ++l) {
      values |= static_cast<Word>((rows[l] >> bit) & 1) << l;
    }
    cs.depositFlopLanes(*f, ~Word{0}, values);
  }
  cs.step();
  cs.setInput("we", 0);
  for (unsigned l = 0; l < CompiledSimulator::kLanes; ++l) {
    EXPECT_EQ(cs.ramWordLane(netlist::RamId{0}, rows[l], l), 0xA5u)
        << "lane " << l;
    // A row no lane with a different address wrote must be untouched in
    // this lane: check one row this lane did not address.
    const unsigned other = (rows[l] + 1) % 16;
    bool someLaneWroteIt = false;
    for (unsigned m = 0; m < CompiledSimulator::kLanes; ++m) {
      if (m == l && rows[m] == other) someLaneWroteIt = true;
    }
    if (!someLaneWroteIt) {
      EXPECT_EQ(cs.ramWordLane(netlist::RamId{0}, other, l),
                static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(other * 17 + 3)))
          << "lane " << l << " spilled into row " << other;
    }
  }
}

TEST(CompiledLanes, ScalarEngineViewIsDropIn) {
  // Drive both engines through the abstract Engine interface with the same
  // scalar stimulus; every observation must agree cycle for cycle.
  const Netlist nlA = ramDesign();
  const Netlist nlB = ramDesign();
  const std::unique_ptr<Engine> ev = makeEngine(EngineKind::EventDriven, nlA);
  const std::unique_ptr<Engine> cp = makeEngine(EngineKind::Compiled, nlB);

  Rng rng(7);
  for (int c = 0; c < 200; ++c) {
    const std::uint64_t din = rng.below(256);
    const std::uint64_t we = rng.below(2);
    for (Engine* e : {ev.get(), cp.get()}) {
      e->setInput("din", din);
      e->setInput("we", we);
      e->step();
    }
    ASSERT_EQ(ev->portValue("data"), cp->portValue("data")) << "cycle " << c;
    ASSERT_EQ(ev->portValue("mixed"), cp->portValue("mixed"));
    ASSERT_EQ(ev->portValue("ptr"), cp->portValue("ptr"));
    ASSERT_EQ(ev->cycle(), cp->cycle());
  }
  // Final RAM contents agree word for word.
  for (std::size_t row = 0; row < 16; ++row) {
    EXPECT_EQ(ev->ramWord(netlist::RamId{0}, row),
              cp->ramWord(netlist::RamId{0}, row))
        << "row " << row;
  }
}

TEST(CompiledLanes, ScalarCommandsDriveAllLanesInLockstep) {
  const Netlist nl = ramDesign();
  CompiledSimulator cs(nl);
  const auto f = nl.findFlop("ptr[0]");
  ASSERT_TRUE(f.has_value());
  cs.depositFlop(*f, true);
  EXPECT_EQ(cs.flopWord(*f), ~Word{0});
  const auto net = nl.findNet("mixed[1]");
  ASSERT_TRUE(net.has_value());
  cs.force(*net, true);
  EXPECT_EQ(cs.netWord(*net), ~Word{0});
  EXPECT_TRUE(cs.isForced(*net));
  cs.release(*net);
  EXPECT_FALSE(cs.isForced(*net));
}

}  // namespace
}  // namespace fades::sim
