#include <gtest/gtest.h>

#include <string>

#include "bits/config_port.hpp"
#include "common/error.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "rtl/builder.hpp"
#include "synth/implement.hpp"

namespace fades::bits {
namespace {

using fpga::BramField;
using fpga::CbCoord;
using fpga::CbField;
using fpga::Device;
using fpga::DeviceSpec;
using fpga::FrameAddr;
using fpga::Plane;

TEST(ConfigPort, FrameReadWriteRoundTrip) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const FrameAddr f{Plane::Logic, 3, 1};
  auto bytes = port.readLogicFrame(f);
  bytes[5] = 0xA5;
  port.writeLogicFrame(f, bytes);
  const auto back = port.readLogicFrame(f);
  EXPECT_EQ(back[5], 0xA5);
}

TEST(ConfigPort, MeterCountsBytesAndOps) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  EXPECT_EQ(port.meter().readOps, 0u);

  (void)port.readLogicFrame(FrameAddr{Plane::Logic, 0, 0});
  EXPECT_EQ(port.meter().readOps, 1u);
  EXPECT_EQ(port.meter().bytesFromDevice, dev.spec().frameBytes);

  auto bytes = port.readLogicFrame(FrameAddr{Plane::Logic, 0, 0});
  port.writeLogicFrame(FrameAddr{Plane::Logic, 0, 0}, bytes);
  EXPECT_EQ(port.meter().writeOps, 1u);
  EXPECT_EQ(port.meter().bytesToDevice, dev.spec().frameBytes);

  port.pulseGsr();
  EXPECT_EQ(port.meter().commandOps, 1u);

  port.beginSession();
  EXPECT_EQ(port.meter().sessions, 1u);

  port.resetMeter();
  EXPECT_EQ(port.meter().readOps, 0u);
  EXPECT_EQ(port.meter().bytesFromDevice, 0u);
}

TEST(ConfigPort, LutHelperDoesReadModifyWriteTraffic) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const CbCoord cb{4, 4};
  port.setLutTable(cb, 0xBEEF);
  EXPECT_EQ(port.getLutTable(cb), 0xBEEF);
  // RMW traffic happened: at least one read and one write.
  EXPECT_GE(port.meter().readOps, 2u);
  EXPECT_GE(port.meter().writeOps, 1u);
  // And the device agrees bit-by-bit.
  EXPECT_EQ(dev.logicBit(dev.layout().cbLutBit(cb, 0)), true);   // 0xBEEF bit0
  EXPECT_EQ(dev.logicBit(dev.layout().cbLutBit(cb, 4)), false);  // bit4
}

TEST(ConfigPort, CbFieldHelperRoundTrip) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const CbCoord cb{2, 7};
  EXPECT_FALSE(port.getCbFieldBit(cb, CbField::InvLsr));
  port.setCbFieldBit(cb, CbField::InvLsr, true);
  EXPECT_TRUE(port.getCbFieldBit(cb, CbField::InvLsr));
  EXPECT_TRUE(dev.logicBit(dev.layout().cbFieldBit(cb, CbField::InvLsr)));
  port.setCbFieldBit(cb, CbField::InvLsr, false);
  EXPECT_FALSE(port.getCbFieldBit(cb, CbField::InvLsr));
}

TEST(ConfigPort, BramBitHelperRoundTrip) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  EXPECT_FALSE(port.getBramBit(1, 777));
  port.setBramBit(1, 777, true);
  EXPECT_TRUE(port.getBramBit(1, 777));
  EXPECT_TRUE(dev.bramBit(dev.layout().bramContentBit(1, 777)));
}

TEST(ConfigPort, FullBitstreamMetersWholeImage) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  const auto bs = port.readbackFull();
  EXPECT_EQ(port.meter().bytesFromDevice, dev.layout().totalConfigBytes());
  port.writeFullBitstream(bs);
  EXPECT_EQ(port.meter().bytesToDevice, dev.layout().totalConfigBytes());
}

TEST(BoardLink, CostModelComposition) {
  BoardLink link;
  link.bytesPerSecond = 1e6;
  link.perOpSeconds = 0.01;
  link.perSessionSeconds = 0.2;
  TransferMeter m;
  m.bytesToDevice = 500000;
  m.bytesFromDevice = 500000;
  m.writeOps = 3;
  m.readOps = 2;
  m.commandOps = 1;
  m.sessions = 2;
  EXPECT_NEAR(link.seconds(m), 1.0 + 0.06 + 0.4, 1e-9);
}

TEST(BoardLink, MeterAccumulation) {
  TransferMeter a, b;
  a.bytesToDevice = 10;
  a.writeOps = 1;
  b.bytesToDevice = 5;
  b.sessions = 1;
  a += b;
  EXPECT_EQ(a.bytesToDevice, 15u);
  EXPECT_EQ(a.writeOps, 1u);
  EXPECT_EQ(a.sessions, 1u);
}

TEST(ConfigPort, ReadFfStateViaCapturePlane) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  // Configure a standalone FF preset to 1 and read its state back.
  const CbCoord cb{5, 6};
  dev.setLogicBit(dev.layout().cbFieldBit(cb, CbField::FfUsed), true);
  dev.setLogicBit(dev.layout().cbFieldBit(cb, CbField::SrMode), true);
  dev.pulseGsr();
  EXPECT_TRUE(port.readFfState(cb));
  EXPECT_GE(port.meter().captureOps, 1u);
}

// --- session-scoped frame transaction cache -------------------------------

TEST(ConfigPortCache, ShadowDefersWritesUntilSessionEnd) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  port.setCacheEnabled(true);
  const CbCoord cb{4, 4};
  const std::uint16_t before = port.getLutTable(cb);

  port.beginSession();
  port.setLutTable(cb, 0xBEEF);
  // The write is held in the shadow: the device image is still pristine,
  // but reads through the port see the pending value.
  EXPECT_EQ(dev.logicBit(dev.layout().cbLutBit(cb, 0)), before & 1u);
  EXPECT_EQ(port.getLutTable(cb), 0xBEEF);
  port.endSession();
  // Coalesced write-back landed the frame on the device.
  EXPECT_EQ(port.getLutTable(cb), 0xBEEF);
  port.setCacheEnabled(false);
  EXPECT_EQ(port.getLutTable(cb), 0xBEEF);
}

TEST(ConfigPortCache, MeterIdenticalWithAndWithoutCache) {
  // The cache must never change metered traffic: run the same logical
  // operation sequence against two devices and compare every meter field.
  Device devA(DeviceSpec::small());
  Device devB(DeviceSpec::small());
  ConfigPort cached(devA);
  ConfigPort plain(devB);
  cached.setCacheEnabled(true);

  auto drive = [](ConfigPort& port) {
    port.beginSession();
    port.setLutTable(CbCoord{2, 3}, 0x1234);
    (void)port.getLutTable(CbCoord{2, 3});
    port.setCbFieldBit(CbCoord{2, 3}, CbField::FfUsed, true);
    (void)port.getCbFieldBit(CbCoord{2, 3}, CbField::SrMode);
    (void)port.readCaptureFrame(1);
    (void)port.readCaptureFrame(1);
    port.setBramBit(0, 17, true);
    (void)port.getBramBit(0, 17);
    port.pulseGsr();
    port.endSession();
  };
  drive(cached);
  drive(plain);

  const TransferMeter& a = cached.meter();
  const TransferMeter& b = plain.meter();
  EXPECT_EQ(a.bytesToDevice, b.bytesToDevice);
  EXPECT_EQ(a.bytesFromDevice, b.bytesFromDevice);
  EXPECT_EQ(a.writeOps, b.writeOps);
  EXPECT_EQ(a.readOps, b.readOps);
  EXPECT_EQ(a.captureOps, b.captureOps);
  EXPECT_EQ(a.commandOps, b.commandOps);
  EXPECT_EQ(a.sessions, b.sessions);
  // And the devices ended up in the same configuration.
  EXPECT_TRUE(devA.readbackBitstream().logic == devB.readbackBitstream().logic);
  EXPECT_TRUE(devA.readbackBitstream().bram == devB.readbackBitstream().bram);
}

TEST(ConfigPortCache, RepeatedReadsHitTheShadow) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  port.setCacheEnabled(true);
  auto& hits = obs::Registry::global().counter("config.cache_hits");
  auto& flushed =
      obs::Registry::global().counter("config.cache_frames_flushed");
  const auto hits0 = hits.value();
  const auto flushed0 = flushed.value();

  port.beginSession();
  const FrameAddr f{Plane::Logic, 2, 0};
  (void)port.readLogicFrame(f);           // miss: populates the shadow
  (void)port.readLogicFrame(f);           // hit
  auto bytes = port.readLogicFrame(f);    // hit
  bytes[0] ^= 0xFF;
  port.writeLogicFrame(f, bytes);         // dirties the shadow
  port.endSession();                      // one coalesced flush

  EXPECT_EQ(hits.value() - hits0, 2u);
  EXPECT_EQ(flushed.value() - flushed0, 1u);
  // All three reads and the write were still metered individually.
  EXPECT_EQ(port.meter().readOps, 3u);
  EXPECT_EQ(port.meter().writeOps, 1u);
}

TEST(ConfigPortCache, BlindWritesSeePendingShadowFrames) {
  // A blind write works from the host mirror; with a transaction open the
  // mirror must include pending (unflushed) shadow writes of the same frame
  // or the blind RMW would resurrect stale bits.
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  port.setCacheEnabled(true);
  const CbCoord cb{3, 3};
  const std::size_t bitA = dev.layout().cbFieldBit(cb, CbField::FfUsed);
  const std::size_t bitB = dev.layout().cbFieldBit(cb, CbField::LutUsed);

  port.beginSession();
  port.setLogicBit(bitA, true);  // pending in the shadow
  const std::pair<std::size_t, bool> blind[] = {{bitB, true}};
  port.setLogicBitsBlind(blind);  // same frame, blind path
  port.endSession();
  EXPECT_TRUE(dev.logicBit(bitA));
  EXPECT_TRUE(dev.logicBit(bitB));
}

TEST(ConfigPortCache, PulseGsrFlushesPendingWritesFirst) {
  Device dev(DeviceSpec::small());
  ConfigPort port(dev);
  port.setCacheEnabled(true);
  const CbCoord cb{5, 6};
  port.beginSession();
  port.setCbFieldBit(cb, CbField::FfUsed, true);
  port.setCbFieldBit(cb, CbField::SrMode, true);
  // The pulse must observe the SrMode write even though it is still only
  // in the shadow when pulseGsr() is called.
  port.pulseGsr();
  port.endSession();
  EXPECT_TRUE(port.readFfState(cb));
}

// --- cache equivalence across the FADES injectors -------------------------
//
// For every fault model, a campaign run with the session cache ON must be
// indistinguishable from one with it OFF: same outcomes, bit-identical
// modeled seconds, identical transfer meters and identical final device
// configuration. The cache is a host-side wall-clock optimization only.

namespace equiv {

using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::TargetClass;
using core::FadesOptions;
using core::FadesTool;
using netlist::Unit;

/// Small multi-unit design: 8-bit LFSR, 4-bit counter, adder, RAM log.
struct CacheDesign {
  netlist::Netlist nl;
  synth::Implementation impl;
  std::uint64_t cycles = 48;

  static netlist::Netlist build() {
    rtl::Builder b;
    b.setUnit(Unit::Registers);
    rtl::Register lfsr = b.makeRegister("lfsr", 8, 1);
    b.setUnit(Unit::Fsm);
    rtl::Register cnt = b.makeRegister("cnt", 4, 0);
    b.setUnit(Unit::Registers);
    auto fb = b.lxor(lfsr.q[7],
                     b.lxor(lfsr.q[5], b.lxor(lfsr.q[4], lfsr.q[3])));
    rtl::Bus next{fb};
    for (int i = 0; i < 7; ++i) next.push_back(lfsr.q[i]);
    b.connect(lfsr, next);
    b.setUnit(Unit::Fsm);
    b.connect(cnt, b.increment(cnt.q));
    b.setUnit(Unit::Alu);
    auto sum = b.add(lfsr.q, b.zeroExtend(cnt.q, 8), {});
    b.setUnit(Unit::Ram);
    b.ram("log", 4, 8, cnt.q, lfsr.q, b.one());
    b.output("out", sum.sum);
    return b.finish();
  }

  CacheDesign()
      : nl(build()), impl(synth::implement(nl, fpga::DeviceSpec::small())) {}

  static const CacheDesign& instance() {
    static CacheDesign d;
    return d;
  }
};

FadesOptions baseOptions() {
  FadesOptions o;
  o.observedOutputs = {"out"};
  o.keepRecords = true;
  return o;
}

void expectCacheEquivalence(FadesOptions base, FaultModel model,
                            TargetClass cls, Unit unit,
                            unsigned experiments = 5) {
  const auto& d = CacheDesign::instance();
  FadesOptions onOpts = base;
  onOpts.sessionFrameCache = true;
  FadesOptions offOpts = base;
  offOpts.sessionFrameCache = false;
  fpga::Device devOn(d.impl.spec);
  fpga::Device devOff(d.impl.spec);
  FadesTool toolOn(devOn, d.impl, d.cycles, onOpts);
  FadesTool toolOff(devOff, d.impl, d.cycles, offOpts);

  CampaignSpec spec;
  spec.model = model;
  spec.targets = cls;
  spec.unit = static_cast<int>(unit);
  spec.seed = 7;
  spec.experiments = experiments;
  const auto poolOn = toolOn.campaignPool(spec);
  const auto poolOff = toolOff.campaignPool(spec);
  ASSERT_EQ(poolOn, poolOff);

  for (unsigned e = 0; e < experiments; ++e) {
    const auto a = toolOn.runCampaignExperiment(spec, poolOn, e);
    const auto b = toolOff.runCampaignExperiment(spec, poolOff, e);
    SCOPED_TRACE("experiment " + std::to_string(e));
    EXPECT_EQ(a.outcome, b.outcome);
    // Bit-identical, not approximately equal: the meters match exactly, so
    // the derived seconds must too.
    EXPECT_EQ(a.modeledSeconds, b.modeledSeconds);
    EXPECT_EQ(a.configSeconds, b.configSeconds);
    EXPECT_EQ(a.workloadSeconds, b.workloadSeconds);
    EXPECT_EQ(a.bytesToDevice, b.bytesToDevice);
    EXPECT_EQ(a.bytesFromDevice, b.bytesFromDevice);
    EXPECT_EQ(a.sessions, b.sessions);
    ASSERT_EQ(a.hasRecord, b.hasRecord);
    if (a.hasRecord) {
      EXPECT_EQ(a.record.targetName, b.record.targetName);
      EXPECT_EQ(a.record.injectCycle, b.record.injectCycle);
      EXPECT_EQ(a.record.durationCycles, b.record.durationCycles);
      EXPECT_EQ(a.record.outcome, b.record.outcome);
    }
    // The devices must leave every experiment in identical configuration:
    // the coalesced write-back produced the same image as the uncached
    // frame-by-frame RMW sequence.
    const auto bsOn = devOn.readbackBitstream();
    const auto bsOff = devOff.readbackBitstream();
    EXPECT_TRUE(bsOn.logic == bsOff.logic);
    EXPECT_TRUE(bsOn.bram == bsOff.bram);
  }

  // Op-level transfer meters, field for field, on a fixed experiment.
  common::Rng rngOn(99), rngOff(99);
  double secOn = 0, secOff = 0;
  TransferMeter mOn, mOff;
  bool threwOn = false, threwOff = false;
  campaign::Outcome oOn{}, oOff{};
  try {
    oOn = toolOn.runExperiment(model, cls, poolOn[0], 5, 2.0, rngOn, &secOn,
                               &mOn);
  } catch (const common::FadesError&) {
    threwOn = true;
  }
  try {
    oOff = toolOff.runExperiment(model, cls, poolOff[0], 5, 2.0, rngOff,
                                 &secOff, &mOff);
  } catch (const common::FadesError&) {
    threwOff = true;
  }
  ASSERT_EQ(threwOn, threwOff);
  if (!threwOn) {
    EXPECT_EQ(oOn, oOff);
    EXPECT_EQ(secOn, secOff);
    EXPECT_EQ(mOn.bytesToDevice, mOff.bytesToDevice);
    EXPECT_EQ(mOn.bytesFromDevice, mOff.bytesFromDevice);
    EXPECT_EQ(mOn.writeOps, mOff.writeOps);
    EXPECT_EQ(mOn.readOps, mOff.readOps);
    EXPECT_EQ(mOn.captureOps, mOff.captureOps);
    EXPECT_EQ(mOn.commandOps, mOff.commandOps);
    EXPECT_EQ(mOn.sessions, mOff.sessions);
  }
}

TEST(CacheEquivalence, BitFlipFlopLsr) {
  expectCacheEquivalence(baseOptions(), FaultModel::BitFlip,
                         TargetClass::SequentialFF, Unit::Registers);
}

TEST(CacheEquivalence, BitFlipFlopGsr) {
  auto o = baseOptions();
  o.bitFlipVia = core::BitFlipVia::Gsr;
  expectCacheEquivalence(o, FaultModel::BitFlip, TargetClass::SequentialFF,
                         Unit::Registers);
}

TEST(CacheEquivalence, BitFlipMemory) {
  expectCacheEquivalence(baseOptions(), FaultModel::BitFlip,
                         TargetClass::MemoryBlockBit, Unit::Ram);
}

TEST(CacheEquivalence, PulseLut) {
  expectCacheEquivalence(baseOptions(), FaultModel::Pulse,
                         TargetClass::CombinationalLut, Unit::Alu);
}

TEST(CacheEquivalence, PulseCbInput) {
  expectCacheEquivalence(baseOptions(), FaultModel::Pulse,
                         TargetClass::CbInputLine, Unit::None);
}

TEST(CacheEquivalence, DelayFullDownload) {
  expectCacheEquivalence(baseOptions(), FaultModel::Delay,
                         TargetClass::CombinationalLine, Unit::None, 3);
}

TEST(CacheEquivalence, DelayPartialFrames) {
  auto o = baseOptions();
  o.fullDownloadForDelay = false;
  expectCacheEquivalence(o, FaultModel::Delay, TargetClass::SequentialLine,
                         Unit::None, 3);
}

TEST(CacheEquivalence, IndeterminationFlop) {
  expectCacheEquivalence(baseOptions(), FaultModel::Indetermination,
                         TargetClass::SequentialFF, Unit::Registers);
}

TEST(CacheEquivalence, IndeterminationLutOscillating) {
  auto o = baseOptions();
  o.oscillatingIndetermination = true;
  expectCacheEquivalence(o, FaultModel::Indetermination,
                         TargetClass::CombinationalLut, Unit::Alu);
}

}  // namespace equiv

}  // namespace
}  // namespace fades::bits
