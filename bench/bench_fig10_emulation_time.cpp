// Figure 10: mean emulation time of the FADES experiments, per fault model
// and target. The modeled time of every experiment derives from the actual
// configuration traffic on the metered port (frames moved, sessions opened,
// read-backs triggered) through the board-link cost model, plus workload
// execution at the FPGA clock.
//
// Paper values (seconds for 3000 faults): bit-flip FFs 916, bit-flip memory
// 536, pulse <1 cycle 755, pulse otherwise 1520, delay sequential 2487,
// delay combinational 2778, indetermination sequential 1065, combinational
// 805; oscillating indetermination (11-20 cycles) ~4605.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

namespace {

campaign::CampaignResult run(core::FadesTool& tool, FaultModel m,
                             TargetClass c, DurationBand band, unsigned n,
                             std::uint64_t seed = 7) {
  CampaignSpec spec;
  spec.model = m;
  spec.targets = c;
  spec.unit = static_cast<int>(Unit::None);
  spec.band = band;
  spec.experiments = n;
  spec.seed = seed;
  return bench::runCampaign(tool, spec);
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun benchRun("fig10_emulation_time", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  const unsigned n = timingCount();
  const unsigned nDelay = std::min(n, 40u);

  std::vector<std::vector<std::string>> rows;
  auto addRow = [&](const std::string& label,
                    const campaign::CampaignResult& r, const char* paper) {
    recordCampaign(label, r);
    rows.push_back({label, common::fixed(r.modeledSeconds.mean(), 3),
                    common::fixed(r.modeledSeconds.mean() * 3000.0, 0),
                    paper});
  };

  addRow("bit-flip, FFs",
         run(fades, FaultModel::BitFlip, TargetClass::SequentialFF,
             DurationBand::shortBand(), n),
         "916");
  addRow("bit-flip, memory blocks",
         run(fades, FaultModel::BitFlip, TargetClass::MemoryBlockBit,
             DurationBand::shortBand(), n),
         "536");
  addRow("pulse, combinational, <1 cycle",
         run(fades, FaultModel::Pulse, TargetClass::CombinationalLut,
             DurationBand::subCycle(), n),
         "755");
  addRow("pulse, combinational, 1-10 cycles",
         run(fades, FaultModel::Pulse, TargetClass::CombinationalLut,
             DurationBand::shortBand(), n),
         "1520");
  addRow("indetermination, sequential",
         run(fades, FaultModel::Indetermination, TargetClass::SequentialFF,
             DurationBand::shortBand(), n),
         "1065");
  addRow("indetermination, combinational",
         run(fades, FaultModel::Indetermination,
             TargetClass::CombinationalLut, DurationBand::shortBand(), n),
         "805");

  {
    auto& delayTool = sys.fadesForDelay();
    addRow("delay, sequential lines",
           run(delayTool, FaultModel::Delay, TargetClass::SequentialLine,
               DurationBand::shortBand(), nDelay),
           "2487");
    addRow("delay, combinational lines",
           run(delayTool, FaultModel::Delay, TargetClass::CombinationalLine,
               DurationBand::shortBand(), nDelay),
           "2778");
  }

  {
    core::FadesOptions osc = sys.fadesOptions();
    osc.oscillatingIndetermination = true;
    fpga::Device dev(sys.implementation().spec);
    core::FadesTool oscTool(dev, sys.implementation(),
                            sys.workload().cycles, osc);
    addRow("indetermination, sequential, oscillating, 11-20 cycles",
           run(oscTool, FaultModel::Indetermination,
               TargetClass::SequentialFF, DurationBand::longBand(), n),
           "~4605");
  }

  printTable("Figure 10 - mean emulation time via FADES (" +
                 std::to_string(n) + " faults per campaign)",
             {"fault model / target", "mean s/fault",
              "scaled to 3000 faults (s)", "paper (s, 3000 faults)"},
             rows);
  recordScalar("setup_seconds", fades.setupSeconds());
  std::printf("One-time bitstream download (not per-experiment): %.2f s\n",
              fades.setupSeconds());
  return 0;
}
