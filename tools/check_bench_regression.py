#!/usr/bin/env python3
"""Benchmark regression gate for the session frame cache.

Reads a google-benchmark JSON file produced by `bench_microbench --json`
and checks the cached/uncached throughput ratios of the BM_ReconfigExperiment
pairs. Ratios compare two runs of the same binary on the same machine inside
one CI job, so the gate is machine-independent - absolute nanoseconds are
never compared across hosts.

Checks (any failure exits non-zero):
  1. The GSR pair ratio must be >= --min-gsr-ratio (default 1.3): the
     reconfiguration-dominated regime the cache targets must stay fast.
  2. Every *Cached benchmark must not be slower than its *Uncached partner
     by more than --tolerance (default 10%): the cache must never be a
     pessimization.
  3. With --baseline, each pair's ratio must be within --tolerance of the
     committed baseline's ratio for the same pair: a >10% drop in cache
     effectiveness on any pair fails the PR.

Usage:
  tools/check_bench_regression.py current.json [--baseline BENCH_microbench.json]
"""

import argparse
import json
import sys


def throughput(entry):
    # items_per_second when the bench reports it, else inverse real_time.
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    return 1.0 / float(entry["real_time"])


def cache_ratios(path):
    with open(path) as f:
        data = json.load(f)
    by_name = {
        b["name"]: throughput(b)
        for b in data.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration" and "name" in b
    }
    ratios = {}
    for name, ips in by_name.items():
        if not name.endswith("Cached") or name.endswith("Uncached"):
            continue
        partner = name[: -len("Cached")] + "Uncached"
        if partner in by_name and by_name[partner] > 0:
            ratios[name[: -len("Cached")]] = ips / by_name[partner]
    return ratios


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="bench_microbench --json output to check")
    ap.add_argument("--baseline", help="committed baseline JSON to compare against")
    ap.add_argument("--min-gsr-ratio", type=float, default=1.3)
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    ratios = cache_ratios(args.current)
    if not ratios:
        print("error: no Cached/Uncached benchmark pairs found in", args.current)
        return 1
    failed = False
    for pair, ratio in sorted(ratios.items()):
        print(f"{pair}: cached/uncached = {ratio:.2f}x")
        if ratio < 1.0 - args.tolerance:
            print(f"  FAIL: cache is a >{args.tolerance:.0%} pessimization")
            failed = True

    gsr = [r for p, r in ratios.items() if "Gsr" in p]
    if not gsr:
        print("error: GSR benchmark pair missing")
        failed = True
    elif gsr[0] < args.min_gsr_ratio:
        print(
            f"FAIL: GSR pair ratio {gsr[0]:.2f}x below the "
            f"{args.min_gsr_ratio:.1f}x floor"
        )
        failed = True

    if args.baseline:
        base = cache_ratios(args.baseline)
        # A pair present in the baseline but absent from the current run is a
        # hard failure naming the culprit - a silently dropped benchmark must
        # not read as "no regression".
        for pair in sorted(set(base) - set(ratios)):
            print(
                f"FAIL: baseline benchmark pair {pair} "
                f"(e.g. BM_{pair}Cached) is missing from {args.current}"
            )
            failed = True
        for pair, ratio in sorted(ratios.items()):
            if pair not in base:
                print(f"{pair}: new pair, not in baseline - skipping ratio check")
                continue
            floor = base[pair] * (1.0 - args.tolerance)
            status = "ok" if ratio >= floor else "FAIL"
            print(
                f"{pair}: baseline {base[pair]:.2f}x -> current {ratio:.2f}x "
                f"(floor {floor:.2f}x) {status}"
            )
            if ratio < floor:
                failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
