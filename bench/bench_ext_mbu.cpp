// Extension bench (paper Sections 7.2 and 8): multiple bit-flips.
//
// Section 7.2 argues that a combinational fault manifests as a MULTIPLE
// bit-flip in the registers it drives, so single bit-flips cannot replace
// combinational fault models; Section 8 lists multiple bit-flips as future
// work. This bench measures how failure probability scales with flip
// multiplicity, using the GSR-based mechanism (one read-back + one global
// pulse regardless of multiplicity).
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::FaultModel;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::Unit;

int main(int argc, char** argv) {
  BenchRun benchRun("ext_mbu", argc, argv);
  System8051 sys;
  sys.printHeadline();
  auto& fades = sys.fades();
  const unsigned n = classifyCount(200);

  // Flips drawn from the eligible registers, as in Figure 11.
  const auto pool = eligibleFlops(fades);
  std::printf("Eligible FFs: %zu\n\n", pool.size());

  std::vector<std::vector<std::string>> rows;
  for (const unsigned multiplicity : {1u, 2u, 4u, 8u}) {
    campaign::CampaignResult result;
    common::Rng rng(61 + multiplicity);
    for (unsigned e = 0; e < n; ++e) {
      common::Rng erng = rng.fork(e);
      // Draw `multiplicity` distinct targets.
      std::vector<std::uint32_t> targets;
      while (targets.size() < multiplicity && targets.size() < pool.size()) {
        const auto t = pool[erng.below(pool.size())];
        bool dup = false;
        for (auto x : targets) dup |= (x == t);
        if (!dup) targets.push_back(t);
      }
      const auto cycle = erng.below(fades.runCycles());
      double seconds = 0;
      const Outcome o =
          fades.runMultipleBitFlipExperiment(targets, cycle, &seconds);
      result.add(o, seconds);
    }
    rows.push_back({std::to_string(multiplicity), pct3(result),
                    common::fixed(result.modeledSeconds.mean(), 3)});
  }
  printTable("Extension - multiple bit-flips via one GSR pass (" +
                 std::to_string(n) + " faults per multiplicity)",
             {"flips per fault", "failure / latent / silent %",
              "mean s/fault (same traffic for any multiplicity)"},
             rows);
  std::printf("Failure probability grows with multiplicity while the "
              "reconfiguration cost stays flat - the GSR mechanism's "
              "one redeeming quality (Section 4.1).\n");
  return 0;
}
