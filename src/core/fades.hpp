// FADES - FPGA-based framework for the Analysis of the Dependability of
// Embedded Systems (the paper's prototype tool, Section 5).
//
// Emulates transient faults in a synthesized HDL model through run-time
// reconfiguration of the generic FPGA, covering every mechanism of the
// paper's Table 1:
//
//   bit-flip        FFs via the GSR line (slow) or the LSR line (fast);
//                   memory blocks via configuration plane-B writes
//   pulse           LUTs via truth-table recomputation (output / input /
//                   extracted internal line); CB inputs via InvertFFinMux
//   delay           routed lines via fan-out increase (small delays) or
//                   re-routing through a longer path (large delays)
//   indetermination FFs / LUTs via randomly generated final logic values,
//                   optionally re-randomized every cycle of the fault
//
// Every reconfiguration flows through the metered ConfigPort, so the
// emulation-time results (Figure 10 / Table 2) derive from genuine
// configuration traffic plus the board-link cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "bits/config_port.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "synth/implement.hpp"

namespace fades::core {

using campaign::CampaignResult;
using campaign::CampaignSpec;
using campaign::FaultModel;
using campaign::Observation;
using campaign::Outcome;
using campaign::TargetClass;
using netlist::Unit;

enum class BitFlipVia : std::uint8_t { Lsr, Gsr };
/// Delay-fault mechanisms (paper Section 4.3):
///  - Fanout: switch ON an unused pass transistor touching the line; adds a
///    small capacitive delay (Figure 8, "good for small delays").
///  - Reroute: open one hop of the route and close a detour through unused
///    fabric; adds several wire segments of delay.
///  - ShiftRegister: reroute the line through unused flip-flops configured
///    as a shift register (Figure 7), delaying it by whole clock cycles -
///    the paper's "good manner to emulate a large delay in a line".
enum class DelayVia : std::uint8_t { Fanout, Reroute, ShiftRegister };

struct FadesOptions {
  bits::BoardLink link{};
  double fpgaClockHz = 25.0e6;
  /// Host-side work per experiment (trace comparison, bookkeeping).
  double hostPerExperimentSeconds = 0.025;
  /// Replicates the paper's JBits/driver problem: delay faults force a full
  /// configuration-file download instead of partial frames (Section 6.2).
  bool fullDownloadForDelay = true;
  /// Bit-flip mechanism for FFs (the paper proposes LSR as the fast path).
  BitFlipVia bitFlipVia = BitFlipVia::Lsr;
  /// Delay mechanism (Table 1: fan-out = small delays, reroute/shift
  /// register = large). The shift register is the default: its cycle-scale
  /// delays expose the duration-dependent failure rates of Figures 12/15.
  DelayVia delayVia = DelayVia::ShiftRegister;
  /// Re-randomize indetermination values every cycle of the fault duration
  /// (Section 6.2's oscillating variant; much more reconfiguration traffic).
  bool oscillatingIndetermination = false;
  std::vector<std::string> observedOutputs{"p0", "p1"};
  unsigned checkpointInterval = 128;
  bool keepRecords = false;
  /// Campaign progress heartbeat (structured INFO log + campaign.progress_pct
  /// gauge) every N experiments; 0 disables it.
  unsigned progressInterval = 100;
  /// Session-scoped frame transaction cache in the ConfigPort: repeated
  /// frame reads inside one reconfiguration session are served from a
  /// host-side shadow and dirty frames are written back coalesced at session
  /// end. Pure host-side optimization - metered traffic, modeled seconds,
  /// outcomes and artifacts are bit-identical with the cache on or off.
  bool sessionFrameCache = true;
  /// Deterministic unreliable-link emulation: every metered transfer after
  /// setup can hit a readback CRC mismatch, transient write failure or
  /// timeout, and is retried per `linkRetry`. The fault stream is seeded
  /// per (experiment index, rerun) from the campaign seed, never from the
  /// experiment RNG, and retry cost is charged to retry-only meter fields -
  /// so outcomes and artifacts stay bit-identical to a fault-free run.
  bits::LinkFaultOptions linkFaults{};
  bits::RetryPolicy linkRetry{};
  /// Runs one experiment gets in the serial runCampaign loop before a
  /// persistent transient error (LinkError / InjectionError) quarantines it
  /// instead of aborting the campaign. The sharded runner has its own
  /// campaign::ParallelOptions::experimentAttempts.
  unsigned experimentAttempts = 3;
  /// Golden-run instruction trace for root-cause attribution: entry c is the
  /// PC/opcode of the instruction in flight at cycle c (from, e.g.,
  /// mc8051::Iss::tracePcPerCycle). When set and keepRecords is on, every
  /// experiment record carries the PC and opcode under the injection
  /// instant. Shared so device replicas of a sharded campaign reuse one
  /// trace.
  std::shared_ptr<const campaign::InstructionTrace> instructionTrace;
};

/// Register-level effect of a fault, for the paper's Table 4 (one pulse in
/// combinational logic manifesting as a multiple bit-flip).
struct RegisterEffect {
  std::string reg;
  std::uint64_t golden = 0;
  std::uint64_t faulty = 0;
};

class FadesTool {
 public:
  /// Configures the device with the implementation's bitstream (the one-time
  /// download of Figure 1) and records the golden run.
  FadesTool(fpga::Device& device, const synth::Implementation& impl,
            std::uint64_t runCycles, FadesOptions options = {});

  bool supports(FaultModel) const { return true; }

  // --- fault-location process (device level) ------------------------------
  /// Enumerate targets for a campaign. The returned handles are indices into
  /// the implementation's location map, with sub-addressing packed in for
  /// memory bits.
  std::vector<std::uint32_t> targets(FaultModel model, TargetClass cls,
                                     Unit unit) const;
  std::string targetName(TargetClass cls, std::uint32_t target) const;
  /// Component the target belongs to, from the implementation's hierarchy
  /// annotations (rtl::Builder unit tags survive synthesis onto every site).
  Unit targetUnit(TargetClass cls, std::uint32_t target) const;

  CampaignResult runCampaign(const CampaignSpec& spec);

  /// The spec's target pool: its explicit pool when set, otherwise the full
  /// enumeration. Deterministic per implementation, so every device replica
  /// of a sharded campaign sees the same pool.
  std::vector<std::uint32_t> campaignPool(const CampaignSpec& spec) const;

  /// Run campaign experiment `index` of `spec` against `pool`. A pure
  /// function of (spec, pool, index, rerun): the experiment's random stream
  /// is derived statelessly from the campaign seed and index, and unusable
  /// fault sites redraw from per-attempt streams. `rerun` counts
  /// experiment-level retries after transient errors; it only reseeds the
  /// link fault stream, so a retried experiment faces fresh link faults but
  /// computes the identical result. Both the serial runCampaign loop and
  /// the sharded runner execute experiments through this one path.
  campaign::ExperimentOutcome runCampaignExperiment(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, unsigned rerun = 0);

  /// Materialize the outcome of experiment `index` from its fades.prune/1
  /// class representative without touching the device: replays the
  /// experiment's own draws for the planned fields (target, instant,
  /// duration) and clones the measured fields (outcome, costs, detect
  /// cycle) from `representative`. Only valid for experiments a PrunePlan
  /// proved equivalent to the representative.
  campaign::ExperimentOutcome synthesizeCampaignExperiment(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, const campaign::ExperimentOutcome& representative);

  /// Recover from a link failure that may have abandoned a reconfiguration
  /// session mid-write: drop the wedged session and re-download the full
  /// configuration file on a quiet link (fault model suspended, meter reset
  /// afterwards), the way a real host re-initializes a flaky board.
  void recoverLink();

  /// `detectCycleOut`, when non-null, receives the first cycle whose
  /// observed outputs diverge from the golden run (-1 if they never do) -
  /// the fault-latency numerator for the analytics histograms.
  Outcome runExperiment(FaultModel model, TargetClass cls,
                        std::uint32_t target, std::uint64_t injectCycle,
                        double durationCycles, common::Rng& rng,
                        double* modeledSeconds = nullptr,
                        bits::TransferMeter* meterOut = nullptr,
                        std::int64_t* detectCycleOut = nullptr);

  /// Table 4 probe: pulse one LUT for a single cycle at `cycle` and report
  /// every architectural register whose value diverges from the golden run
  /// on the next clock edge.
  std::vector<RegisterEffect> multiBitFlipProbe(std::uint32_t lutIndex,
                                                std::uint64_t cycle,
                                                common::Rng& rng);

  /// Extension (paper Section 8, "the occurrence of multiple bit-flips"):
  /// flip `multiplicity` distinct flip-flops simultaneously. The natural
  /// mechanism is the GSR path - one state read-back, one set/reset-mux
  /// rewrite covering all targets, one global pulse - so an MBU costs the
  /// same reconfiguration traffic as a single GSR bit-flip.
  Outcome runMultipleBitFlipExperiment(
      std::span<const std::uint32_t> flopTargets, std::uint64_t injectCycle,
      double* modeledSeconds = nullptr);

  // --- introspection -------------------------------------------------------
  const Observation& golden() const { return golden_; }
  /// Modeled one-time setup cost (bitstream download).
  double setupSeconds() const { return setupSeconds_; }
  const synth::Implementation& implementation() const { return impl_; }
  fpga::Device& device() { return dev_; }
  std::uint64_t runCycles() const { return runCycles_; }
  const FadesOptions& options() const { return opt_; }

 private:
  friend class PermanentFaults;  // the future-work extension shares the rig

  // Injection state carried from inject to removal.
  struct ActiveFault {
    FaultModel model{};
    TargetClass cls{};
    std::uint32_t target = 0;
    std::uint16_t originalTable = 0;
    fpga::CbCoord cb{};
    std::vector<std::pair<std::size_t, bool>> restoreBits;
    bool needsRemoval = false;
    bool indetValue = false;
    /// Sub-cycle faults: injection and removal ride one reconfiguration
    /// pass (Section 6.2: pulses under one cycle took ~755 s instead of
    /// ~1520 s because a single pass suffices).
    bool subCycle = false;
  };

  void inject(ActiveFault& fault, common::Rng& rng, double durationCycles);
  void remove(ActiveFault& fault);
  void oscillate(ActiveFault& fault, common::Rng& rng);

  std::uint64_t outputWord() const;
  void captureFinalStateViaPort(Observation& obs, bool chargeOnly);
  void chargeExperimentBaseline();
  double meterSeconds() const;

  const fpga::DeviceState& checkpointAtOrBefore(std::uint64_t cycle,
                                                std::uint64_t& ckCycle) const;

  fpga::Device& dev_;
  const synth::Implementation& impl_;
  std::uint64_t runCycles_;
  FadesOptions opt_;
  bits::ConfigPort port_;
  synth::EmulatedSystem system_;

  Observation golden_;
  std::vector<fpga::DeviceState> checkpoints_;
  double setupSeconds_ = 0;

  // Location-map derived indexes.
  std::vector<unsigned> usedCaptureCols_;  // columns containing used FFs
  std::vector<unsigned> usedBramBlocks_;
  std::unordered_set<std::uint32_t> usedNodes_;  // routing nodes in use
  std::uint64_t fullStateReadBytes_ = 0;         // per final-state readback

  // Registry instruments, resolved once so the per-experiment updates are
  // plain relaxed atomic adds.
  obs::Counter& ctrFailures_;
  obs::Counter& ctrLatents_;
  obs::Counter& ctrSilents_;
  obs::Histogram& modeledSecondsHist_;
};

/// One worker's FADES replica for sharded campaigns: a private simulated
/// device configured from the shared (immutable) implementation, plus the
/// tool driving it. Each replica pays the one-time setup - bitstream
/// download and golden run - in its own thread.
class FadesCampaignEngine final : public campaign::CampaignEngine {
 public:
  FadesCampaignEngine(const synth::Implementation& impl,
                      std::uint64_t runCycles, FadesOptions options,
                      const fpga::DeviceSpec& deviceSpec);

  std::vector<std::uint32_t> enumeratePool(const CampaignSpec& spec) override;
  campaign::ExperimentOutcome runExperimentAt(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, unsigned rerun) override;
  campaign::ExperimentOutcome synthesizeOutcome(
      const CampaignSpec& spec, std::span<const std::uint32_t> pool,
      unsigned index, const campaign::ExperimentOutcome& representative)
      override;
  void recover() override;

  FadesTool& tool() { return *tool_; }

 private:
  fpga::Device device_;
  std::unique_ptr<FadesTool> tool_;
};

/// Engine factory for campaign::ParallelCampaignRunner: every call builds a
/// fresh Device + FadesTool replica. `impl` is captured by reference and
/// must outlive the runner. `deviceSpec` overrides the implementation's
/// device spec (e.g. a delay-calibrated clock period); pass nothing to use
/// impl.spec.
campaign::EngineFactory fadesEngineFactory(
    const synth::Implementation& impl, std::uint64_t runCycles,
    FadesOptions options, std::optional<fpga::DeviceSpec> deviceSpec = {});

}  // namespace fades::core
