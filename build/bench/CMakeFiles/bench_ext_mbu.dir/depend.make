# Empty dependencies file for bench_ext_mbu.
# This may be replaced when dependencies are built.
