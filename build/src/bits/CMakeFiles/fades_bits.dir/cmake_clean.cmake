file(REMOVE_RECURSE
  "CMakeFiles/fades_bits.dir/config_port.cpp.o"
  "CMakeFiles/fades_bits.dir/config_port.cpp.o.d"
  "libfades_bits.a"
  "libfades_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fades_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
