#include "diffcheck/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/artifact.hpp"

namespace fades::diffcheck {

using common::ErrorKind;
using common::raise;

std::vector<std::string> listCorpusFiles(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    raise(ErrorKind::InvalidArgument, "corpus directory not found: " + dir);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

CaseSpec loadCase(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) raise(ErrorKind::InvalidArgument, "cannot open case file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto j = obs::Json::parse(text.str(), &error);
  if (!j.has_value()) {
    raise(ErrorKind::InvalidArgument, path + ": malformed JSON: " + error);
  }
  try {
    return CaseSpec::fromJson(*j);
  } catch (const common::FadesError& err) {
    raise(ErrorKind::InvalidArgument, path + ": " + err.what());
  }
}

void saveCase(const CaseSpec& c, const std::string& path) {
  obs::writeFile(path, c.toJson().dump(2) + "\n");
}

}  // namespace fades::diffcheck
