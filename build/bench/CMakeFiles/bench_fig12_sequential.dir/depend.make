# Empty dependencies file for bench_fig12_sequential.
# This may be replaced when dependencies are built.
