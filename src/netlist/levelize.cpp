#include "netlist/levelize.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace fades::netlist {

using common::ErrorKind;
using common::raise;

namespace {

/// Walk gate-to-gate edges from an unscheduled gate until a gate repeats,
/// then render the nets around the cycle for the error message. Kahn left
/// every gate on at least one cycle (or downstream of one), so following
/// unscheduled predecessors must revisit a gate.
[[noreturn]] void raiseCycle(const Netlist& nl,
                             const std::vector<std::uint8_t>& scheduled) {
  std::uint32_t g = 0;
  for (; g < nl.gateCount(); ++g) {
    if (!scheduled[g]) break;
  }
  std::vector<std::uint32_t> path;
  std::vector<std::uint8_t> onPath(nl.gateCount(), 0);
  std::uint32_t cur = g;
  while (!onPath[cur]) {
    onPath[cur] = 1;
    path.push_back(cur);
    const auto& gate = nl.gates()[cur];
    for (unsigned k = 0; k < arity(gate.op); ++k) {
      const auto d = nl.driverOf(gate.in[k]);
      if (d.kind == Netlist::DriverKind::Gate && !scheduled[d.index]) {
        cur = d.index;
        break;
      }
    }
  }
  // Trim the lead-in: keep only the gates from the first occurrence of
  // `cur` onward - those form the actual cycle.
  const auto start = std::find(path.begin(), path.end(), cur);
  std::string nets;
  for (auto it = start; it != path.end(); ++it) {
    const NetId out = nl.gates()[*it].out;
    const std::string& name = nl.netName(out);
    if (!nets.empty()) nets += " -> ";
    nets += name.empty() ? "net#" + std::to_string(out.value) : name;
  }
  raise(ErrorKind::ConfigError,
        "combinational cycle through nets: " + nets);
}

}  // namespace

Levelization levelize(const Netlist& nl) {
  const std::size_t n = nl.gateCount();
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> fanout(n);
  for (std::uint32_t g = 0; g < n; ++g) {
    for (unsigned k = 0; k < arity(nl.gates()[g].op); ++k) {
      const auto d = nl.driverOf(nl.gates()[g].in[k]);
      if (d.kind == Netlist::DriverKind::Gate) {
        ++indegree[g];
        fanout[d.index].push_back(g);
      }
    }
  }

  Levelization out;
  out.level.assign(n, 0);
  std::vector<std::uint8_t> scheduled(n, 0);
  // Breadth-first Kahn: `frontier` holds one complete level at a time, so
  // levels come out exact (longest gate-to-gate path from any source).
  std::vector<std::uint32_t> frontier;
  for (std::uint32_t g = 0; g < n; ++g) {
    if (indegree[g] == 0) frontier.push_back(g);
  }
  std::size_t done = 0;
  std::uint32_t lvl = 0;
  std::vector<std::uint32_t> next;
  while (!frontier.empty()) {
    for (std::uint32_t g : frontier) {
      out.level[g] = lvl;
      scheduled[g] = 1;
      ++done;
      for (std::uint32_t s : fanout[g]) {
        if (--indegree[s] == 0) next.push_back(s);
      }
    }
    frontier.swap(next);
    next.clear();
    ++lvl;
  }
  if (done != n) raiseCycle(nl, scheduled);

  // Canonical schedule: bucket by level, ascending gate index inside each
  // (frontier order already visits indices ascending per level, but rebuild
  // from the level array so the invariant is explicit).
  out.levelOffsets.assign(lvl + 1, 0);
  for (std::uint32_t g = 0; g < n; ++g) ++out.levelOffsets[out.level[g] + 1];
  for (std::uint32_t l = 0; l < lvl; ++l) {
    out.levelOffsets[l + 1] += out.levelOffsets[l];
  }
  out.schedule.assign(n, GateId{});
  std::vector<std::uint32_t> cursor(out.levelOffsets.begin(),
                                    out.levelOffsets.end() - 1);
  for (std::uint32_t g = 0; g < n; ++g) {
    out.schedule[cursor[out.level[g]]++] = GateId{g};
  }
  return out;
}

std::string Levelization::dump(const Netlist& nl) const {
  std::string s;
  s += "levelization gates=" + std::to_string(schedule.size()) +
       " flops=" + std::to_string(nl.flopCount()) +
       " rams=" + std::to_string(nl.ramCount()) +
       " depth=" + std::to_string(depth()) + "\n";
  for (unsigned l = 0; l < depth(); ++l) {
    s += "level " + std::to_string(l) + ": " +
         std::to_string(gatesAtLevel(l)) + "\n";
  }
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the schedule
  for (const GateId g : schedule) {
    for (unsigned byte = 0; byte < 4; ++byte) {
      h ^= (g.value >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  s += "schedule fnv1a=" + std::string(hex) + "\n";
  return s;
}

}  // namespace fades::netlist
