#include "campaign/report.hpp"

#include <cstdio>
#include <memory>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/csv.hpp"

namespace fades::campaign {

using common::ErrorKind;
using common::fixed;
using common::require;
using obs::csvQuote;

std::string toMarkdown(const std::string& title,
                       const std::vector<ReportEntry>& entries) {
  std::string out = "## " + title + "\n\n";
  out +=
      "| campaign | faults | failure | latent | silent | failure % | "
      "latent % | silent % | mean s/fault |\n";
  out += "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& e : entries) {
    const auto& r = e.result;
    out += "| " + e.label + " | " + std::to_string(r.total()) + " | " +
           std::to_string(r.failures) + " | " + std::to_string(r.latents) +
           " | " + std::to_string(r.silents) + " | " +
           fixed(r.failurePct(), 2) + " | " + fixed(r.latentPct(), 2) +
           " | " + fixed(r.silentPct(), 2) + " | " +
           fixed(r.modeledSeconds.mean(), 3) + " |\n";
  }
  return out;
}

std::string toCsv(const std::vector<ReportEntry>& entries) {
  std::string out =
      "campaign,model,targets,band,faults,failures,latents,silents,"
      "failure_pct,latent_pct,silent_pct,mean_seconds\n";
  for (const auto& e : entries) {
    const auto& r = e.result;
    out += csvQuote(e.label) + "," + toString(r.spec.model) + "," +
           csvQuote(toString(r.spec.targets)) + "," +
           csvQuote(r.spec.band.label) + "," + std::to_string(r.total()) +
           "," + std::to_string(r.failures) + "," +
           std::to_string(r.latents) + "," + std::to_string(r.silents) +
           "," + fixed(r.failurePct(), 4) + "," + fixed(r.latentPct(), 4) +
           "," + fixed(r.silentPct(), 4) + "," +
           fixed(r.modeledSeconds.mean(), 6) + "\n";
  }
  return out;
}

std::string recordsToCsv(const CampaignResult& result) {
  require(!result.records.empty(), ErrorKind::InvalidArgument,
          "campaign was run without keepRecords");
  std::string out =
      "target,component,inject_cycle,duration_cycles,outcome,seconds,pc,"
      "opcode,detect_cycle\n";
  for (const auto& rec : result.records) {
    out += csvQuote(rec.targetName) + "," + csvQuote(rec.component) + "," +
           std::to_string(rec.injectCycle) + "," +
           fixed(rec.durationCycles, 3) + "," + toString(rec.outcome) + "," +
           fixed(rec.modeledSeconds, 6) + "," + std::to_string(rec.pc) + "," +
           std::to_string(rec.opcode) + "," +
           std::to_string(rec.detectCycle) + "\n";
  }
  return out;
}

std::string renderCsv(const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::string out = obs::csvLine(header);
  for (const auto& row : rows) out += obs::csvLine(row);
  return out;
}

std::string renderMarkdownTable(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  auto renderRow = [](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (const auto& c : cells) line += " " + c + " |";
    return line + "\n";
  };
  std::string out = renderRow(header);
  out += "|";
  for (std::size_t c = 0; c < header.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows) out += renderRow(row);
  return out;
}

void writeTextFile(const std::string& path, const std::string& text) {
  // Crash-safe tmp + rename, like obs::writeFile: a killed run never leaves
  // a truncated report in place of a complete one.
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
        std::fopen(tmp.c_str(), "wb"), &std::fclose);
    require(f != nullptr, ErrorKind::InvalidArgument,
            "cannot open '" + tmp + "' for writing");
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f.get()) == text.size() &&
        std::fflush(f.get()) == 0;
    if (!ok) {
      f.reset();
      std::remove(tmp.c_str());
      common::raise(ErrorKind::InvalidArgument, "short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    common::raise(ErrorKind::InvalidArgument,
                  "cannot rename '" + tmp + "' to '" + path + "'");
  }
}

}  // namespace fades::campaign
