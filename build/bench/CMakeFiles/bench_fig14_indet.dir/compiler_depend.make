# Empty compiler generated dependencies file for bench_fig14_indet.
# This may be replaced when dependencies are built.
