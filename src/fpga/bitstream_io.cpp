#include "fpga/bitstream_io.hpp"

#include <array>
#include <cstdio>
#include <memory>

#include "common/error.hpp"

namespace fades::fpga {

using common::ErrorKind;
using common::raise;
using common::require;

namespace {

constexpr std::uint32_t kMagic = 0xFADE5B17;
constexpr std::uint32_t kVersion = 1;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct Reader {
  const std::vector<std::uint8_t>& b;
  std::size_t pos = 0;

  std::uint32_t u32() {
    require(pos + 4 <= b.size(), ErrorKind::ConfigError,
            "truncated bitstream container");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[pos++]} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    require(pos + 8 <= b.size(), ErrorKind::ConfigError,
            "truncated bitstream container");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[pos++]} << (8 * i);
    return v;
  }
};

const std::array<std::uint32_t, 256>& crcTable() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = crcTable()[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serializeBitstream(const DeviceSpec& spec,
                                             const Bitstream& bs) {
  std::vector<std::uint8_t> out;
  putU32(out, kMagic);
  putU32(out, kVersion);
  putU32(out, spec.rows);
  putU32(out, spec.cols);
  putU32(out, spec.tracks);
  putU32(out, spec.memBlocks);
  putU32(out, spec.memBlockBits);
  putU64(out, bs.logic.size());
  putU64(out, bs.bram.size());
  const auto logicBytes = bs.logic.exportBytes(0, bs.logic.size());
  const auto bramBytes = bs.bram.exportBytes(0, bs.bram.size());
  const std::size_t payloadStart = out.size();
  out.insert(out.end(), logicBytes.begin(), logicBytes.end());
  out.insert(out.end(), bramBytes.begin(), bramBytes.end());
  putU32(out, crc32(out.data() + payloadStart, out.size() - payloadStart));
  return out;
}

Bitstream deserializeBitstream(const DeviceSpec& expected,
                               std::vector<std::uint8_t> const& bytes) {
  Reader r{bytes};
  require(r.u32() == kMagic, ErrorKind::ConfigError, "bad bitstream magic");
  require(r.u32() == kVersion, ErrorKind::ConfigError,
          "unsupported bitstream version");
  const auto rows = r.u32(), cols = r.u32(), tracks = r.u32();
  const auto memBlocks = r.u32(), memBlockBits = r.u32();
  require(rows == expected.rows && cols == expected.cols &&
              tracks == expected.tracks && memBlocks == expected.memBlocks &&
              memBlockBits == expected.memBlockBits,
          ErrorKind::ConfigError,
          "bitstream was generated for a different device geometry");
  const auto logicBits = r.u64();
  const auto bramBits = r.u64();
  const std::size_t logicBytes = (logicBits + 7) / 8;
  const std::size_t bramBytes = (bramBits + 7) / 8;
  require(r.pos + logicBytes + bramBytes + 4 <= bytes.size(),
          ErrorKind::ConfigError, "truncated bitstream payload");
  const std::size_t payloadStart = r.pos;
  Bitstream bs{common::BitVector(logicBits), common::BitVector(bramBits)};
  bs.logic.importBytes(0, logicBits,
                       {bytes.data() + r.pos, logicBytes});
  r.pos += logicBytes;
  bs.bram.importBytes(0, bramBits, {bytes.data() + r.pos, bramBytes});
  r.pos += bramBytes;
  const std::uint32_t stored = r.u32();
  const std::uint32_t computed =
      crc32(bytes.data() + payloadStart, logicBytes + bramBytes);
  require(stored == computed, ErrorKind::ConfigError,
          "bitstream CRC mismatch (corrupted configuration file)");
  return bs;
}

void saveBitstream(const std::string& path, const DeviceSpec& spec,
                   const Bitstream& bitstream) {
  const auto bytes = serializeBitstream(spec, bitstream);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  require(f != nullptr, ErrorKind::ConfigError,
          "cannot open '" + path + "' for writing");
  require(std::fwrite(bytes.data(), 1, bytes.size(), f.get()) == bytes.size(),
          ErrorKind::ConfigError, "short write to '" + path + "'");
}

Bitstream loadBitstream(const std::string& path, const DeviceSpec& expected) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  require(f != nullptr, ErrorKind::ConfigError,
          "cannot open '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  require(size > 0, ErrorKind::ConfigError, "empty bitstream file");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  require(std::fread(bytes.data(), 1, bytes.size(), f.get()) == bytes.size(),
          ErrorKind::ConfigError, "short read from '" + path + "'");
  return deserializeBitstream(expected, bytes);
}

}  // namespace fades::fpga
