#include "synth/place.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace fades::synth {

using common::ErrorKind;
using common::require;
using fpga::CbCoord;

namespace {

struct Grid {
  unsigned rows, cols;
  std::vector<std::int32_t> cellAt;  // per site index, -1 = empty

  unsigned siteIndex(CbCoord c) const { return c.x * rows + c.y; }
  CbCoord site(unsigned idx) const {
    return CbCoord{static_cast<std::uint16_t>(idx / rows),
                   static_cast<std::uint16_t>(idx % rows)};
  }
};

double netHpwl(const PlacerNet& net,
               const std::vector<CbCoord>& cellSite) {
  double minX = 1e18, maxX = -1e18, minY = 1e18, maxY = -1e18;
  auto extend = [&](double x, double y) {
    minX = std::min(minX, x);
    maxX = std::max(maxX, x);
    minY = std::min(minY, y);
    maxY = std::max(maxY, y);
  };
  for (auto c : net.cells) {
    extend(cellSite[c].x + 0.5, cellSite[c].y + 0.5);
  }
  for (const auto& [x, y] : net.fixed) extend(x, y);
  if (maxX < minX) return 0.0;
  return (maxX - minX) + (maxY - minY);
}

}  // namespace

PlacerResult place(const fpga::DeviceSpec& spec, std::uint32_t cellCount,
                   const std::vector<PlacerNet>& nets, common::Rng& rng,
                   unsigned swapPassMultiplier) {
  require(cellCount <= spec.cbCount(), ErrorKind::CapacityError,
          "design needs " + std::to_string(cellCount) + " CBs, device has " +
              std::to_string(spec.cbCount()));

  // Connectivity-ordered initial placement: BFS over the cell adjacency so
  // connected cells land close together, filling a compact near-square
  // region anchored at the device centre.
  std::vector<std::vector<std::uint32_t>> cellNets(cellCount);
  for (std::uint32_t ni = 0; ni < nets.size(); ++ni) {
    for (auto c : nets[ni].cells) cellNets[c].push_back(ni);
  }
  std::vector<std::uint32_t> order;
  order.reserve(cellCount);
  std::vector<std::uint8_t> seen(cellCount, 0);
  for (std::uint32_t seed = 0; seed < cellCount; ++seed) {
    if (seen[seed]) continue;
    std::vector<std::uint32_t> queue{seed};
    seen[seed] = 1;
    for (std::size_t h = 0; h < queue.size(); ++h) {
      const std::uint32_t c = queue[h];
      order.push_back(c);
      for (auto ni : cellNets[c]) {
        for (auto other : nets[ni].cells) {
          if (!seen[other]) {
            seen[other] = 1;
            queue.push_back(other);
          }
        }
      }
    }
  }

  // Region: a square sized for ~55% occupancy (router headroom), clipped to
  // the grid, centred horizontally and biased toward the north edge (where
  // memory blocks sit). Falls back to tighter packing when the device is
  // nearly full.
  const double targetArea = static_cast<double>(cellCount) / 0.55;
  const unsigned side = std::max<unsigned>(
      1, static_cast<unsigned>(std::ceil(std::sqrt(targetArea))));
  unsigned regionW = std::min(spec.cols, side);
  unsigned regionH = std::min(spec.rows, side);
  while (std::uint64_t{regionW} * regionH < cellCount) {
    if (regionW < spec.cols) {
      ++regionW;
    } else if (regionH < spec.rows) {
      ++regionH;
    } else {
      break;
    }
  }
  const unsigned x0 = (spec.cols - regionW) / 2;
  const unsigned y0 = spec.rows - regionH;  // anchored at the north edge

  Grid grid{spec.rows, spec.cols,
            std::vector<std::int32_t>(spec.cbCount(), -1)};
  std::vector<CbCoord> cellSite(cellCount);
  {
    // Spread cells uniformly across the region (row-major with stride) so
    // the router starts from even congestion.
    const std::uint64_t sites = std::uint64_t{regionW} * regionH;
    require(sites >= cellCount, ErrorKind::CapacityError,
            "initial placement region overflow");
    for (std::uint32_t k = 0; k < cellCount; ++k) {
      const auto s = static_cast<std::uint64_t>(k) * sites / cellCount;
      const unsigned xx = static_cast<unsigned>(s % regionW);
      const unsigned yy = static_cast<unsigned>(s / regionW);
      const CbCoord c{static_cast<std::uint16_t>(x0 + xx),
                      static_cast<std::uint16_t>(y0 + yy)};
      cellSite[order[k]] = c;
      grid.cellAt[grid.siteIndex(c)] = static_cast<std::int32_t>(order[k]);
    }
  }

  // Greedy refinement: random swaps (cell<->cell or cell->empty neighbour
  // site), accepted when they reduce total HPWL of the affected nets.
  auto affectedCost = [&](std::uint32_t cell) {
    double s = 0.0;
    for (auto ni : cellNets[cell]) s += netHpwl(nets[ni], cellSite);
    return s;
  };
  const std::uint64_t attempts =
      cellCount == 0 ? 0 : std::uint64_t{swapPassMultiplier} * cellCount;
  for (std::uint64_t it = 0; it < attempts; ++it) {
    const auto a = static_cast<std::uint32_t>(rng.below(cellCount));
    // Pick a target site near a's current location (local moves converge
    // faster than uniform ones), occasionally anywhere in the region.
    CbCoord target;
    if (rng.below(8) == 0) {
      target = CbCoord{
          static_cast<std::uint16_t>(x0 + rng.below(regionW)),
          static_cast<std::uint16_t>(y0 + rng.below(regionH))};
    } else {
      const int dx = static_cast<int>(rng.below(9)) - 4;
      const int dy = static_cast<int>(rng.below(9)) - 4;
      const int tx = std::clamp<int>(cellSite[a].x + dx, 0, spec.cols - 1);
      const int ty = std::clamp<int>(cellSite[a].y + dy, 0, spec.rows - 1);
      target = CbCoord{static_cast<std::uint16_t>(tx),
                       static_cast<std::uint16_t>(ty)};
    }
    if (target == cellSite[a]) continue;
    const std::int32_t bSigned = grid.cellAt[grid.siteIndex(target)];

    const double before =
        affectedCost(a) +
        (bSigned >= 0 ? affectedCost(static_cast<std::uint32_t>(bSigned)) : 0.0);
    const CbCoord aOld = cellSite[a];
    cellSite[a] = target;
    if (bSigned >= 0) cellSite[static_cast<std::uint32_t>(bSigned)] = aOld;
    const double after =
        affectedCost(a) +
        (bSigned >= 0 ? affectedCost(static_cast<std::uint32_t>(bSigned)) : 0.0);
    if (after <= before) {
      grid.cellAt[grid.siteIndex(aOld)] = bSigned;
      grid.cellAt[grid.siteIndex(target)] = static_cast<std::int32_t>(a);
    } else {
      cellSite[a] = aOld;  // revert
      if (bSigned >= 0) cellSite[static_cast<std::uint32_t>(bSigned)] = target;
    }
  }

  PlacerResult result;
  result.cellSite = std::move(cellSite);
  for (const auto& net : nets) result.finalWirelength += netHpwl(net, result.cellSite);
  return result;
}

}  // namespace fades::synth
