// Permanent fault models - the paper's announced future work (Section 8):
// "the extension of this framework to cover a set of typical permanent
// faults that have not been used for fault emulation of VLSI systems yet,
// such as short, open-line, bridging and stuck-open faults."
//
// All four are emulated with the same run-time reconfiguration machinery:
//
//   stuck-at-0/1  LUT rewritten to a constant (combinational), or the FF's
//                 local set/reset held asserted (sequential)
//   open-line     a connection-box pass transistor of a routed net switched
//                 OFF: downstream sinks float to the weak '0' level
//   stuck-open    like open-line, but a programmable-matrix switch on the
//                 path opens (splits the net mid-route)
//   bridging      an extra pass transistor closes between two DIFFERENT
//                 routed nets; the short resolves as dominant-AND logic
//
// Permanent faults are present from power-on and never removed during the
// run; the device configuration is restored between experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fades.hpp"

namespace fades::core {

enum class PermanentFaultModel : std::uint8_t {
  StuckAt0,
  StuckAt1,
  OpenLine,
  StuckOpen,
  Bridging,
};
const char* toString(PermanentFaultModel m);

struct PermanentCampaignSpec {
  PermanentFaultModel model = PermanentFaultModel::StuckAt0;
  Unit unit = Unit::None;
  unsigned experiments = 200;
  std::uint64_t seed = 1;
};

/// Permanent-fault layer on top of a FadesTool (shares its device, golden
/// run, cost model and configuration port).
class PermanentFaults {
 public:
  explicit PermanentFaults(FadesTool& tool) : tool_(tool) {}

  /// Target handles: LUT site indices for stuck-at, route indices for the
  /// line faults. FF stuck-at targets are flop sites encoded with the MSB
  /// set.
  std::vector<std::uint32_t> targets(PermanentFaultModel model,
                                     Unit unit) const;

  Outcome runExperiment(PermanentFaultModel model, std::uint32_t target,
                        common::Rng& rng, double* modeledSeconds = nullptr);

  campaign::CampaignResult runCampaign(const PermanentCampaignSpec& spec);

  static constexpr std::uint32_t kFlopFlag = 0x80000000u;

 private:
  FadesTool& tool_;
};

}  // namespace fades::core
