// Fault-injection campaign on the MC8051 microcontroller, configurable from
// the command line - the closest analogue of the paper's FADES experiments
// set-up tool (Figure 9).
//
// Usage:
//   campaign_8051 [--jobs N] [--no-cache] [model] [targets] [unit] [faults]
//                 [band] [artifact.json]
//     --jobs N shard the campaign across N worker threads, each with its
//              own device replica (0 = one per hardware thread; env
//              FADES_JOBS is the fallback; default 1). Changes wall-clock
//              only: outcomes, records, modeled times and the written
//              artifact are bit-identical for every N.
//     --no-cache disable the session-scoped frame transaction cache in the
//              configuration port. Like --jobs this changes wall-clock
//              only; the artifact stays bit-identical either way.
//     model    bitflip | pulse | delay | indet        (default bitflip)
//     targets  ff | memory | lut | seqline | combline  (default ff)
//     unit     any | registers | ram | alu | mem | fsm (default any)
//     faults   experiment count                        (default 200)
//     band     sub | short | long                      (default short)
//     artifact write a fades.run/1 JSON (or .jsonl) run artifact here,
//              with one record per experiment
//
// Example: ./build/examples/campaign_8051 --jobs 8 pulse lut alu 300 long
//          run.json
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/artifact.hpp"
#include "campaign/parallel.hpp"
#include "campaign/types.hpp"
#include "core/fades.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "synth/implement.hpp"

using namespace fades;

int main(int argc, char** argv) {
  // --jobs and --no-cache may appear anywhere; everything else is positional.
  unsigned jobs = 1;
  bool frameCache = true;
  if (const char* env = std::getenv("FADES_JOBS")) {
    jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::string(argv[i]) == "--no-cache") {
      frameCache = false;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  auto arg = [&](std::size_t i, const char* def) {
    return i < positional.size() ? positional[i] : std::string(def);
  };
  const std::string modelArg = arg(0, "bitflip");
  const std::string targetArg = arg(1, "ff");
  const std::string unitArg = arg(2, "any");
  const unsigned faults =
      static_cast<unsigned>(std::strtoul(arg(3, "200").c_str(), nullptr, 10));
  const std::string bandArg = arg(4, "short");
  const std::string artifactPath = arg(5, "");

  campaign::CampaignSpec spec;
  spec.experiments = faults;
  spec.seed = 2006;
  spec.model = modelArg == "pulse"   ? campaign::FaultModel::Pulse
               : modelArg == "delay" ? campaign::FaultModel::Delay
               : modelArg == "indet" ? campaign::FaultModel::Indetermination
                                     : campaign::FaultModel::BitFlip;
  spec.targets = targetArg == "memory"     ? campaign::TargetClass::MemoryBlockBit
                 : targetArg == "lut"      ? campaign::TargetClass::CombinationalLut
                 : targetArg == "seqline"  ? campaign::TargetClass::SequentialLine
                 : targetArg == "combline" ? campaign::TargetClass::CombinationalLine
                                           : campaign::TargetClass::SequentialFF;
  spec.unit = static_cast<int>(unitArg == "registers" ? netlist::Unit::Registers
                               : unitArg == "ram"      ? netlist::Unit::Ram
                               : unitArg == "alu"      ? netlist::Unit::Alu
                               : unitArg == "mem"      ? netlist::Unit::MemCtrl
                               : unitArg == "fsm"      ? netlist::Unit::Fsm
                                                       : netlist::Unit::None);
  spec.band = bandArg == "sub"    ? campaign::DurationBand::subCycle()
              : bandArg == "long" ? campaign::DurationBand::longBand()
                                  : campaign::DurationBand::shortBand();

  std::printf("Building the MC8051 + Bubblesort system...\n");
  const auto workload = mc8051::bubblesort(6);
  const auto netlist = mc8051::buildCore(workload.bytes);
  const auto impl =
      synth::implement(netlist, fpga::DeviceSpec::virtex1000Like());
  core::FadesOptions options;
  // Console detail only for small campaigns, but an artifact request keeps
  // the per-experiment records regardless so the JSON carries every row.
  options.keepRecords = faults <= 40 || !artifactPath.empty();
  options.sessionFrameCache = frameCache;

  // Both jobs paths run every experiment through the same stateless
  // per-index derivation, so the runner yields bit-identical results for
  // any worker count - only the wall-clock changes.
  campaign::ParallelOptions popt;
  popt.jobs = jobs;
  popt.progressInterval = options.progressInterval;
  campaign::ParallelCampaignRunner runner(
      core::fadesEngineFactory(impl, workload.cycles, options), popt);

  std::printf("Running %u %s faults on %s",
              spec.experiments, campaign::toString(spec.model),
              campaign::toString(spec.targets));
  std::printf(" (unit %s, duration %s cycles, %u worker%s)...\n",
              unitArg.c_str(), spec.band.label.c_str(), runner.jobs(),
              runner.jobs() == 1 ? "" : "s");
  const auto result = runner.run(spec);

  std::printf("\nResults of %zu experiments:\n", result.total());
  std::printf("  failures: %5zu (%.2f %%)\n", result.failures,
              result.failurePct());
  std::printf("  latent:   %5zu (%.2f %%)\n", result.latents,
              result.latentPct());
  std::printf("  silent:   %5zu (%.2f %%)\n", result.silents,
              result.silentPct());
  std::printf("  modeled emulation time: %.3f s/fault (total %.0f s for the "
              "campaign)\n",
              result.modeledSeconds.mean(), result.modeledSeconds.sum());
  if (faults <= 40) {
    for (const auto& r : result.records) {
      std::printf("    cycle %5llu  %-10s  dur %5.2f  %s\n",
                  static_cast<unsigned long long>(r.injectCycle),
                  r.targetName.c_str(), r.durationCycles,
                  campaign::toString(r.outcome));
    }
  }
  if (!artifactPath.empty()) {
    // Exclude the process metrics snapshot: it reflects replica setup and
    // scheduling, which would break the artifact's --jobs byte-identity.
    const auto artifact = campaign::toRunArtifact(
        result, modelArg + "_" + targetArg + "_" + unitArg,
        /*includeMetrics=*/false);
    // Don't let a bad path abort after minutes of campaign: report and fail.
    try {
      if (artifactPath.size() > 6 &&
          artifactPath.substr(artifactPath.size() - 6) == ".jsonl") {
        artifact.writeJsonl(artifactPath);
      } else {
        artifact.writeJson(artifactPath);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    std::printf("Wrote run artifact: %s (%zu records)\n",
                artifactPath.c_str(), artifact.recordCount());
  }
  return 0;
}
