// Ablation (paper Section 6.2): the delay injector's full-configuration
// download (the JBits/driver workaround that made delay the most expensive
// model) versus proper partial frame reconfiguration. Fault effects are
// identical; only the transfer volume changes.
#include <cstdio>

#include "bench_common.hpp"

using namespace fades;
using namespace fades::bench;
using campaign::CampaignSpec;
using campaign::DurationBand;
using campaign::FaultModel;
using campaign::TargetClass;
using netlist::Unit;

namespace {

campaign::CampaignResult run(core::FadesTool& tool, unsigned n) {
  CampaignSpec spec;
  spec.model = FaultModel::Delay;
  spec.targets = TargetClass::CombinationalLine;
  spec.band = DurationBand::shortBand();
  spec.experiments = n;
  spec.seed = 21;
  return bench::runCampaign(tool, spec);
}

}  // namespace

int main(int argc, char** argv) {
  BenchRun benchRun("ablation_partial_full", argc, argv);
  System8051 sys;
  sys.printHeadline();
  const unsigned n = std::min(timingCount(40), 40u);

  // Calibrated clock so delays are meaningful, as in fig12/15.
  fpga::Device probe(sys.implementation().spec);
  probe.writeFullBitstream(sys.implementation().bitstream);
  probe.setTimingEnabled(true);
  probe.settle();
  fpga::DeviceSpec spec = sys.implementation().spec;
  spec.clockPeriodNs =
      probe.timingReport().maxArrivalNs + spec.ffSetupNs + 0.35;

  core::FadesOptions fullOpt = sys.fadesOptions();
  fullOpt.fullDownloadForDelay = true;
  core::FadesOptions partialOpt = sys.fadesOptions();
  partialOpt.fullDownloadForDelay = false;

  fpga::Device devF(spec), devP(spec);
  core::FadesTool full(devF, sys.implementation(), sys.workload().cycles,
                       fullOpt);
  core::FadesTool partial(devP, sys.implementation(), sys.workload().cycles,
                          partialOpt);

  const auto rFull = run(full, n);
  const auto rPartial = run(partial, n);

  printTable(
      "Ablation - delay faults, full-bitstream download vs partial frames (" +
          std::to_string(n) + " faults each)",
      {"reconfiguration", "mean s/fault", "scaled 3000 faults (s)",
       "failure %"},
      {{"full download (paper's driver workaround)",
        common::fixed(rFull.modeledSeconds.mean(), 3),
        common::fixed(rFull.modeledSeconds.mean() * 3000, 0),
        common::fixed(rFull.failurePct(), 1)},
       {"partial frames (what RTR makes possible)",
        common::fixed(rPartial.modeledSeconds.mean(), 3),
        common::fixed(rPartial.modeledSeconds.mean() * 3000, 0),
        common::fixed(rPartial.failurePct(), 1)}});
  std::printf("The paper attributes delay's 2487-2778 s entirely to this "
              "workaround; partial reconfiguration removes the gap "
              "(%.1fx cheaper) without changing outcomes.\n",
              rFull.modeledSeconds.mean() / rPartial.modeledSeconds.mean());
  return 0;
}
