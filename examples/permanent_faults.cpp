// Permanent-fault emulation - the framework extension announced as future
// work in the paper's Section 8 (short, open-line, bridging and stuck-open
// faults), here applied to the MC8051 system.
//
// Permanent faults exist from power-on and never go away during the run, so
// a single experiment answers "does the system work at all with this
// defect?" rather than "does it ride through a glitch?".
#include <cstdio>

#include "core/permanent.hpp"
#include "fpga/device.hpp"
#include "mc8051/core.hpp"
#include "mc8051/workloads.hpp"
#include "synth/implement.hpp"

using namespace fades;

int main() {
  const auto workload = mc8051::bubblesort(6);
  const auto impl = synth::implement(mc8051::buildCore(workload.bytes),
                                     fpga::DeviceSpec::virtex1000Like());
  fpga::Device device(impl.spec);
  core::FadesTool fades(device, impl, workload.cycles);
  core::PermanentFaults permanent(fades);

  std::printf("Permanent faults on the MC8051 (%llu-cycle Bubblesort):\n\n",
              static_cast<unsigned long long>(workload.cycles));
  std::printf("%-12s %8s %9s %8s %8s\n", "model", "targets", "failure%",
              "latent%", "silent%");

  for (const auto model :
       {core::PermanentFaultModel::StuckAt0,
        core::PermanentFaultModel::StuckAt1,
        core::PermanentFaultModel::OpenLine,
        core::PermanentFaultModel::StuckOpen,
        core::PermanentFaultModel::Bridging}) {
    core::PermanentCampaignSpec spec;
    spec.model = model;
    spec.experiments = 60;
    spec.seed = 17;
    const auto pool = permanent.targets(model, netlist::Unit::None);
    const auto result = permanent.runCampaign(spec);
    std::printf("%-12s %8zu %8.1f%% %7.1f%% %7.1f%%\n",
                core::toString(model), pool.size(), result.failurePct(),
                result.latentPct(), result.silentPct());
  }
  std::printf(
      "\nStuck lines on busy logic break the workload almost always;\n"
      "opens and bridges on lightly-used nets can stay silent - the same\n"
      "location-dependence the transient campaigns show.\n");
  return 0;
}
