#include "service/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"

namespace fades::service {

using common::ErrorKind;
using common::raise;
using common::require;

std::string fnv1a64Hex(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, ErrorKind::LinkError, "cannot create listener socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  require(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
          ErrorKind::LinkError,
          "cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
              std::strerror(errno));
  require(::listen(fd, 64) == 0, ErrorKind::LinkError,
          "cannot listen on port " + std::to_string(port));
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  require(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
          ErrorKind::LinkError, "cannot read listener address");
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept(int timeoutMs) {
  if (!sock_.valid()) return Socket();
  pollfd pfd{sock_.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeoutMs);
  if (rc <= 0) return Socket();
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

Socket connectTo(const std::string& host, std::uint16_t port, int timeoutMs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, ErrorKind::LinkError, "cannot create socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          ErrorKind::LinkError, "bad host address '" + host + "'");
  // Non-blocking connect bounded by poll: a dead coordinator fails the
  // worker's attempt within the timeout instead of the kernel's (minutes
  // long) SYN retry schedule.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    require(errno == EINPROGRESS, ErrorKind::LinkError,
            "connect to " + host + ":" + std::to_string(port) + " failed: " +
                std::strerror(errno));
    pollfd pfd{fd, POLLOUT, 0};
    require(::poll(&pfd, 1, timeoutMs) > 0, ErrorKind::LinkError,
            "connect to " + host + ":" + std::to_string(port) + " timed out");
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    require(err == 0, ErrorKind::LinkError,
            "connect to " + host + ":" + std::to_string(port) + " failed: " +
                std::strerror(err));
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

bool waitReadable(const Socket& s, int timeoutMs) {
  pollfd pfd{s.fd(), POLLIN, 0};
  return ::poll(&pfd, 1, timeoutMs) > 0;
}

namespace {

/// Write all of `data`, waiting up to `timeoutMs` for each slice of socket
/// buffer space. MSG_NOSIGNAL turns a closed peer into EPIPE instead of a
/// process-killing SIGPIPE.
void writeFully(const Socket& s, const char* data, std::size_t size,
                int timeoutMs) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::send(s.fd(), data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{s.fd(), POLLOUT, 0};
      require(::poll(&pfd, 1, timeoutMs) > 0, ErrorKind::LinkError,
              "frame send stalled past " + std::to_string(timeoutMs) + " ms");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    raise(ErrorKind::LinkError,
          std::string("frame send failed: ") + std::strerror(errno));
  }
}

/// Read exactly `size` bytes. Returns false on EOF before the first byte
/// (clean close); raises on EOF mid-buffer or a stall past `timeoutMs`.
bool readFully(const Socket& s, char* data, std::size_t size, int timeoutMs) {
  std::size_t off = 0;
  while (off < size) {
    if (!waitReadable(s, timeoutMs)) {
      raise(ErrorKind::LinkError,
            "frame read stalled past " + std::to_string(timeoutMs) + " ms");
    }
    const ssize_t n = ::recv(s.fd(), data + off, size - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (off == 0) return false;
      raise(ErrorKind::LinkError, "peer closed connection mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    raise(ErrorKind::LinkError,
          std::string("frame read failed: ") + std::strerror(errno));
  }
  return true;
}

}  // namespace

void sendMessage(const Socket& s, const obs::Json& message,
                 obs::Counter* bytesStreamed) {
  require(s.valid(), ErrorKind::LinkError, "send on closed socket");
  const std::string payload = message.dump();
  require(payload.size() <= kMaxFrameBytes, ErrorKind::LinkError,
          "frame payload of " + std::to_string(payload.size()) +
              " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
              "-byte frame bound");
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>(size >> 24),
                    static_cast<char>(size >> 16),
                    static_cast<char>(size >> 8), static_cast<char>(size)};
  // Header and payload go out as one buffer: a frame is either fully queued
  // to the kernel or the send raised, never a header with no body.
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(header, 4);
  frame += payload;
  writeFully(s, frame.data(), frame.size(), /*timeoutMs=*/10000);
  if (bytesStreamed != nullptr) bytesStreamed->add(frame.size());
}

std::optional<obs::Json> recvMessage(const Socket& s, int timeoutMs,
                                     obs::Counter* bytesStreamed) {
  require(s.valid(), ErrorKind::LinkError, "receive on closed socket");
  char header[4];
  if (!readFully(s, header, 4, timeoutMs)) return std::nullopt;
  const std::uint32_t size =
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(header[3]));
  // Bound check before the allocation: a hostile 4 GiB length prefix is an
  // error string, not an out-of-memory.
  require(size <= kMaxFrameBytes, ErrorKind::LinkError,
          "frame length prefix of " + std::to_string(size) +
              " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
              "-byte frame bound");
  std::string payload(size, '\0');
  if (size != 0 && !readFully(s, payload.data(), size, timeoutMs)) {
    raise(ErrorKind::LinkError, "peer closed connection mid-frame");
  }
  if (bytesStreamed != nullptr) bytesStreamed->add(4 + payload.size());
  std::string error;
  auto parsed = obs::Json::parse(payload, &error);
  require(parsed.has_value() && parsed->isObject(), ErrorKind::LinkError,
          "frame payload is not a JSON object: " + error);
  return parsed;
}

}  // namespace fades::service
