// Compile-time reconfiguration (CTR) support: saboteur instrumentation.
//
// The paper contrasts its run-time technique with compile-time
// reconfiguration (Civera et al., discussed in Section 7.3): CTR instruments
// the HDL model with extra "saboteur" logic that can corrupt chosen signals
// under the control of dedicated injection inputs, then implements the
// instrumented model once. Injection is then fast (drive the control pins),
// but the instrumented model is bigger, each change of the target set needs
// a re-implementation, and the saboteurs disturb timing.
//
// instrumentWithSaboteurs() rebuilds a netlist with an inverting saboteur
// spliced into every selected net:
//
//     consumers(net)  <-  net XOR (sab_enable AND sel == index)
//
// plus two new input ports, `sab_enable` and `sab_select`.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace fades::synth {

struct InstrumentedModel {
  netlist::Netlist netlist;
  /// selector value (drive on `sab_select`) per instrumented target net.
  std::vector<std::pair<netlist::NetId, std::uint32_t>> selectors;
  unsigned selectBits = 0;
  std::size_t saboteurGates = 0;  // instrumentation overhead, in gates
};

/// Build the instrumented model. `targets` are nets of the source netlist
/// (they must not be input-port nets). Consumers of each target - gate
/// inputs, flop D pins, RAM pins, output ports - are rewired to the
/// saboteur's output; the original driver is untouched.
InstrumentedModel instrumentWithSaboteurs(
    const netlist::Netlist& source,
    const std::vector<netlist::NetId>& targets);

}  // namespace fades::synth
